// Command dgsim runs a single dual graph broadcast simulation and reports
// the outcome, optionally with a round-by-round trace.
//
// Examples:
//
//	dgsim -topology dualclique -n 256 -alg permuted-global -adversary presample
//	dgsim -topology geogrid -n 64 -alg geo-local -problem local -adversary randomloss -trace
//	dgsim -topology bracelet -n 512 -alg aloha -problem local -adversary presample
//	dgsim -topology geogrid -n 64 -scenario 'epochs=4,len=32,leaves=4,demotions=8' -trace
//	dgsim -topology line -n 48 -scenario 'epochs=6,storms=96' -adversary churnwindow
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/adversary"
	"repro/internal/bitrand"
	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/scenario"
	"repro/internal/trace"
	"repro/internal/viz"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dgsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dgsim", flag.ContinueOnError)
	var (
		topology  = fs.String("topology", "dualclique", "network: dualclique, bracelet, geogrid, line, clique, geo")
		n         = fs.Int("n", 256, "target network size")
		algName   = fs.String("alg", "decay-global", "algorithm: decay-global, permuted-global, decay-local, geo-local, geo-local-noseeds, round-robin, derand, aloha, permuted-local-uncoordinated, gossip-tdm, leader-elect")
		problem   = fs.String("problem", "global", "problem: global, local, or gossip")
		advName   = fs.String("adversary", "none", "adversary: none, all, randomloss, bursty, densesparse, jam, presample; with -scenario also churnwindow, churnwindow-offline, churnwindow-blind")
		lossP     = fs.Float64("loss-p", 0.5, "edge presence probability for randomloss")
		seed      = fs.Uint64("seed", 1, "master seed")
		maxRounds = fs.Int("max-rounds", 0, "round budget (0 = 400·n)")
		doTrace   = fs.Bool("trace", false, "print a per-round trace")
		traceMax  = fs.Int("trace-max", 50, "maximum rounds to trace")
		scenSpec  = fs.String("scenario", "", "replay a generated churn timeline: 'epochs=E,len=L,leaves=X,demotions=Y,flips=Z,storms=S,inject=K' (all keys optional)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	net, spec, err := buildNetwork(*topology, *n, *problem, *seed)
	if err != nil {
		return err
	}
	alg, err := buildAlgorithm(*algName)
	if err != nil {
		return err
	}
	budget := *maxRounds
	if budget <= 0 {
		budget = 400 * net.N()
	}
	var (
		epochs  []radio.Epoch
		windows []bool
		degs    []scenario.Degradation
	)
	if *scenSpec != "" {
		sc, err := buildScenario(*scenSpec, net, &spec, *seed, budget)
		if err != nil {
			return err
		}
		if epochs, err = sc.Compile(); err != nil {
			return err
		}
		windows = sc.DegradedWindows()
		degs = sc.Degradation
	}
	link, err := buildAdversary(*advName, *lossP, net, windows)
	if err != nil {
		return err
	}

	var rec *radio.MemRecorder
	if *doTrace {
		rec = &radio.MemRecorder{}
	}
	cfg := radio.Config{
		Algorithm:      alg,
		Spec:           spec,
		Link:           link,
		Seed:           *seed,
		MaxRounds:      budget,
		UseCliqueCover: true,
	}
	if epochs != nil {
		cfg.Epochs = epochs
	} else {
		cfg.Net = net
	}
	if rec != nil {
		cfg.Recorder = rec
	}
	res, err := radio.Run(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("network   %s (n=%d, |E|=%d, |E'|=%d, Δ=%d)\n",
		*topology, net.N(), net.G().NumEdges(), net.GPrime().NumEdges(), net.MaxDegree())
	fmt.Printf("algorithm %s   problem %s   adversary %s   seed %d\n", alg.Name(), spec.Problem, *advName, *seed)
	if epochs != nil {
		fmt.Printf("scenario  %d epochs (timeline below); %d injections\n", len(epochs), len(spec.Injections))
		for i, ep := range epochs {
			mark := "healthy"
			if windows[i] {
				mark = "DEGRADED"
			}
			d := degs[i]
			fmt.Printf("  epoch %2d  start r=%-5d |E|=%-5d departed=%-3d demoted=%-3d gained=%-4d %s\n",
				i, ep.Start, ep.Net.G().NumEdges(), d.Departed, d.Demoted, d.Gained, mark)
		}
	}
	fmt.Printf("solved    %v in %d rounds (%d transmissions, %d deliveries)\n",
		res.Solved, res.Rounds, res.Transmissions, res.Deliveries)
	if res.InformedAt != nil {
		last, lastAt := -1, -1
		for u, at := range res.InformedAt {
			if at > lastAt {
				last, lastAt = u, at
			}
		}
		fmt.Printf("last node informed: %d at round %d\n", last, lastAt)
	}
	if curve := trace.ProgressFromResult(res); curve.Total > 0 {
		fmt.Printf("progress  %s (%d completions; half by round %d)\n",
			viz.Sparkline(toFloats(curve.Counts), 60), curve.Total, curve.TimeToFraction(0.5))
	}
	if rec != nil {
		cs := trace.AnalyzeChannel(rec)
		fmt.Printf("channel   silent %d · singleton %d · collision %d · delivering %d (utilization %.2f)\n",
			cs.SilentRounds, cs.SingletonRounds, cs.CollisionRounds, cs.DeliveringRounds, cs.Utilization())
		for _, r := range rec.Rounds {
			if r.Round >= *traceMax {
				fmt.Printf("... (%d more rounds)\n", len(rec.Rounds)-*traceMax)
				break
			}
			fmt.Printf("  r=%4d sel=%-7s tx=%3d deliveries=%d\n", r.Round, r.SelectorKind, len(r.Transmitters), len(r.Deliveries))
		}
	}
	return nil
}

func toFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

func buildNetwork(topology string, n int, problem string, seed uint64) (*graph.Dual, radio.Spec, error) {
	var (
		net  *graph.Dual
		spec radio.Spec
		bSet []graph.NodeID
	)
	switch topology {
	case "dualclique":
		d, m := graph.DualClique(n, 3)
		net = d
		for u := 0; u < m.SizeA; u++ {
			bSet = append(bSet, u)
		}
	case "bracelet":
		d, m := graph.Bracelet(n, 1)
		net = d
		bSet = append(append(bSet, m.AHead...), m.BHead...)
	case "geogrid":
		side := 2
		for side*side < n {
			side++
		}
		net = graph.GeographicGrid(bitrand.New(seed), side, side, 0.7, 1.5)
		for u := 0; u < net.N(); u += 3 {
			bSet = append(bSet, u)
		}
	case "geo":
		net = graph.Geographic(bitrand.New(seed), graph.GeographicConfig{
			N: n, Side: float64(n) / 16, Radius: 2, GreyProb: 1,
		})
		for u := 0; u < net.N(); u += 3 {
			bSet = append(bSet, u)
		}
	case "line":
		net = graph.UniformDual(graph.Line(n))
		bSet = []graph.NodeID{0}
	case "clique":
		net = graph.UniformDual(graph.Clique(n))
		bSet = []graph.NodeID{0}
	default:
		return nil, spec, fmt.Errorf("unknown topology %q", topology)
	}
	switch problem {
	case "global":
		spec = radio.Spec{Problem: radio.GlobalBroadcast, Source: 0}
	case "local":
		spec = radio.Spec{Problem: radio.LocalBroadcast, Broadcasters: bSet}
	case "gossip":
		// Use up to four well-spread sources.
		k := 4
		if net.N() < 8 {
			k = 2
		}
		sources := make([]graph.NodeID, 0, k)
		for i := 0; i < k; i++ {
			sources = append(sources, graph.NodeID(i*net.N()/k))
		}
		spec = radio.Spec{Problem: radio.Gossip, Sources: sources}
	default:
		return nil, spec, fmt.Errorf("unknown problem %q", problem)
	}
	return net, spec, nil
}

func buildAlgorithm(name string) (radio.Algorithm, error) {
	switch strings.ToLower(name) {
	case "decay-global":
		return core.DecayGlobal{}, nil
	case "permuted-global":
		return core.PermutedGlobal{}, nil
	case "decay-local":
		return core.DecayLocal{}, nil
	case "geo-local":
		return core.GeoLocal{}, nil
	case "geo-local-noseeds":
		return core.GeoLocal{DisableSeedSharing: true}, nil
	case "round-robin":
		return core.RoundRobin{}, nil
	case "derand":
		return core.DerandBroadcast{}, nil
	case "aloha":
		return core.Aloha{P: 0.5}, nil
	case "permuted-local-uncoordinated":
		return core.PermutedLocalUncoordinated{}, nil
	case "gossip-tdm":
		return gossip.TDM{}, nil
	case "leader-elect":
		return gossip.LeaderElect{RankSeed: 77}, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

func buildAdversary(name string, lossP float64, net *graph.Dual, windows []bool) (any, error) {
	switch strings.ToLower(name) {
	case "none":
		return nil, nil
	case "all":
		return adversary.AlwaysAll(), nil
	case "randomloss":
		return adversary.RandomLoss{P: lossP}, nil
	case "densesparse":
		return adversary.DenseSparse{C: 1}, nil
	case "jam":
		return adversary.Jam{}, nil
	case "presample":
		return adversary.Presample{C: 1, Horizon: 4 * net.N()}, nil
	case "bursty":
		return adversary.BurstyLoss{P: lossP, Burst: 16}, nil
	case "churnwindow":
		if windows == nil {
			return nil, fmt.Errorf("adversary %q needs a churn timeline; add -scenario", name)
		}
		return adversary.ChurnWindow{Windows: windows, C: 1}, nil
	case "churnwindow-offline":
		if windows == nil {
			return nil, fmt.Errorf("adversary %q needs a churn timeline; add -scenario", name)
		}
		return adversary.ChurnWindowOffline{Windows: windows}, nil
	case "churnwindow-blind":
		if windows == nil {
			return nil, fmt.Errorf("adversary %q needs a churn timeline; add -scenario", name)
		}
		return adversary.ChurnWindowOffline{Windows: windows, Invert: true}, nil
	default:
		return nil, fmt.Errorf("unknown adversary %q", name)
	}
}

// buildScenario parses the -scenario spec ('epochs=4,len=32,leaves=2,...'),
// generates the deterministic churn timeline over the run's network, and
// schedules inject=K staggered gossip rumors into spec.
func buildScenario(raw string, net *graph.Dual, spec *radio.Spec, seed uint64, budget int) (scenario.Scenario, error) {
	n := net.N()
	gen := scenario.GenConfig{
		Epochs:    4,
		EpochLen:  2 * bitrand.LogN(n),
		MaxRounds: budget,
	}
	inject := 0
	for _, field := range strings.Split(raw, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return scenario.Scenario{}, fmt.Errorf("-scenario field %q: want key=value", field)
		}
		x, err := strconv.Atoi(val)
		if err != nil {
			return scenario.Scenario{}, fmt.Errorf("-scenario field %q: %v", field, err)
		}
		switch key {
		case "epochs":
			gen.Epochs = x
		case "len":
			gen.EpochLen = x
		case "leaves":
			gen.Leaves = x
		case "demotions":
			gen.Demotions = x
		case "flips":
			gen.ExtraFlips = x
		case "storms":
			gen.Storms = x
		case "inject":
			inject = x
		default:
			return scenario.Scenario{}, fmt.Errorf("-scenario key %q: want epochs, len, leaves, demotions, flips, storms, or inject", key)
		}
	}
	// The problem's protagonists must survive the churn: the source, the
	// broadcasters, and every rumor origin are protected from departure.
	switch spec.Problem {
	case radio.GlobalBroadcast:
		gen.Protected = []graph.NodeID{spec.Source}
	case radio.LocalBroadcast:
		gen.Protected = spec.Broadcasters
	case radio.Gossip:
		gen.Protected = spec.Sources
	}
	if inject > 0 {
		if spec.Problem != radio.Gossip {
			return scenario.Scenario{}, fmt.Errorf("-scenario inject=%d needs -problem gossip", inject)
		}
		if inject > n-len(spec.Sources) {
			return scenario.Scenario{}, fmt.Errorf("-scenario inject=%d: only %d nodes are free to originate a rumor (one rumor per node)", inject, n-len(spec.Sources))
		}
		taken := make(map[graph.NodeID]bool, len(spec.Sources))
		for _, s := range spec.Sources {
			taken[s] = true
		}
		for i := 0; i < inject; i++ {
			u := graph.NodeID((2*i + 1) * n / (2 * inject))
			for taken[u] {
				u = (u + 1) % graph.NodeID(n)
			}
			taken[u] = true
			gen.InjectSources = append(gen.InjectSources, u)
		}
	}
	sc, err := scenario.Generate(net, bitrand.New(seed), gen)
	if err != nil {
		return scenario.Scenario{}, err
	}
	spec.Injections = append(spec.Injections, sc.Injections...)
	return sc, nil
}
