package main

import (
	"testing"

	"repro/internal/radio"
)

func TestBuildAlgorithmKnownNames(t *testing.T) {
	names := []string{
		"decay-global", "permuted-global", "decay-local", "geo-local",
		"geo-local-noseeds", "round-robin", "aloha", "permuted-local-uncoordinated",
	}
	for _, name := range names {
		alg, err := buildAlgorithm(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if alg.Name() == "" {
			t.Fatalf("%s: empty algorithm name", name)
		}
	}
	if _, err := buildAlgorithm("nope"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestBuildNetworkTopologies(t *testing.T) {
	for _, topo := range []string{"dualclique", "bracelet", "geogrid", "geo", "line", "clique"} {
		net, spec, err := buildNetwork(topo, 64, "local", 1)
		if err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		if net.N() < 2 {
			t.Fatalf("%s: degenerate network", topo)
		}
		if spec.Problem != radio.LocalBroadcast || len(spec.Broadcasters) == 0 {
			t.Fatalf("%s: bad local spec", topo)
		}
		_, spec, err = buildNetwork(topo, 64, "global", 1)
		if err != nil || spec.Problem != radio.GlobalBroadcast {
			t.Fatalf("%s global: %v", topo, err)
		}
	}
	if _, _, err := buildNetwork("nope", 64, "global", 1); err == nil {
		t.Fatal("unknown topology accepted")
	}
	if _, _, err := buildNetwork("line", 64, "nope", 1); err == nil {
		t.Fatal("unknown problem accepted")
	}
}

func TestBuildAdversary(t *testing.T) {
	net, _, err := buildNetwork("dualclique", 32, "global", 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"none", "all", "randomloss", "densesparse", "jam", "presample"} {
		if _, err := buildAdversary(name, 0.5, net, nil); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := buildAdversary("nope", 0.5, net, nil); err == nil {
		t.Fatal("unknown adversary accepted")
	}
	// The churn-window adversaries need a timeline's window mask.
	for _, name := range []string{"churnwindow", "churnwindow-offline", "churnwindow-blind"} {
		if _, err := buildAdversary(name, 0.5, net, nil); err == nil {
			t.Fatalf("%s accepted without -scenario", name)
		}
		if _, err := buildAdversary(name, 0.5, net, []bool{false, true}); err != nil {
			t.Fatalf("%s with windows: %v", name, err)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	err := run([]string{
		"-topology", "line", "-n", "16", "-alg", "decay-global",
		"-adversary", "none", "-max-rounds", "4000", "-trace", "-trace-max", "5",
	})
	if err != nil {
		t.Fatalf("dgsim run: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-alg", "nope"}); err == nil {
		t.Fatal("bad algorithm not rejected")
	}
	if err := run([]string{"-topology", "nope"}); err == nil {
		t.Fatal("bad topology not rejected")
	}
	if err := run([]string{"-adversary", "nope"}); err == nil {
		t.Fatal("bad adversary not rejected")
	}
	if err := run([]string{"-adversary", "churnwindow"}); err == nil {
		t.Fatal("churnwindow without -scenario not rejected")
	}
	for _, spec := range []string{"epochs", "epochs=x", "nope=3", "len=0"} {
		if err := run([]string{"-scenario", spec}); err == nil {
			t.Fatalf("-scenario %q not rejected", spec)
		}
	}
	// inject=K must fail loudly (not hang) when fewer than K nodes are free
	// to originate a rumor.
	if err := run([]string{
		"-topology", "line", "-n", "4", "-problem", "gossip", "-alg", "gossip-tdm",
		"-scenario", "epochs=2,len=8,inject=10",
	}); err == nil {
		t.Fatal("oversubscribed inject not rejected")
	}
}

func TestRunScenarioEndToEnd(t *testing.T) {
	err := run([]string{
		"-topology", "line", "-n", "16", "-alg", "decay-global",
		"-scenario", "epochs=2,len=12,leaves=1,demotions=2,storms=8",
		"-adversary", "churnwindow", "-max-rounds", "4000", "-trace", "-trace-max", "3",
	})
	if err != nil {
		t.Fatalf("dgsim scenario run: %v", err)
	}
}
