package main

import (
	"bytes"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFilteredQuick(t *testing.T) {
	// L3.2 is the fastest experiment; a filtered quick run exercises the
	// whole pipeline.
	if err := run(io.Discard, []string{"-run", "L3.2", "-trials", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMarkdownAndCSV(t *testing.T) {
	if err := run(io.Discard, []string{"-run", "L3.2", "-trials", "2", "-markdown"}); err != nil {
		t.Fatal(err)
	}
	if err := run(io.Discard, []string{"-run", "L3.2", "-trials", "2", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFilter(t *testing.T) {
	if err := run(io.Discard, []string{"-run", "no-such-experiment"}); err == nil {
		t.Fatal("unknown filter accepted")
	}
	if err := run(io.Discard, []string{"-all", "-run", "no-such-experiment"}); err == nil {
		t.Fatal("unknown filter accepted in -all mode")
	}
}

func TestRunAllSharedPool(t *testing.T) {
	// "2" selects the two fast lemma checks (L3.2-hitting, L4.2-permdecay);
	// both run through the shared pool with an explicit worker count.
	if err := run(io.Discard, []string{"-all", "-workers", "2", "-run", "2", "-trials", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWorkersSequential(t *testing.T) {
	if err := run(io.Discard, []string{"-workers", "1", "-run", "L3.2", "-trials", "2"}); err != nil {
		t.Fatal(err)
	}
}

// TestShardMergeMatchesAll is the CLI half of the sharding contract: for
// K ∈ {1, 2, 3}, K `-shard i/K` invocations followed by one `-merge`
// produce byte-identical markdown and CSV output to a single-process
// `-all` run at the same seeds.
func TestShardMergeMatchesAll(t *testing.T) {
	base := []string{"-run", "2", "-trials", "2", "-seed", "7"}
	var wantMD, wantCSV bytes.Buffer
	if err := run(&wantMD, append([]string{"-all", "-markdown"}, base...)); err != nil {
		t.Fatal(err)
	}
	if err := run(&wantCSV, append([]string{"-all", "-csv"}, base...)); err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			dir := t.TempDir()
			for i := 1; i <= k; i++ {
				out := filepath.Join(dir, fmt.Sprintf("shard_%d.json", i))
				args := append([]string{"-shard", fmt.Sprintf("%d/%d", i, k), "-out", out}, base...)
				if err := run(io.Discard, args); err != nil {
					t.Fatalf("shard %d/%d: %v", i, k, err)
				}
			}
			glob := filepath.Join(dir, "shard_*.json")
			var gotMD, gotCSV bytes.Buffer
			if err := run(&gotMD, []string{"-merge", glob, "-markdown"}); err != nil {
				t.Fatalf("merge: %v", err)
			}
			if gotMD.String() != wantMD.String() {
				t.Errorf("merged markdown differs from -all\n--- all:\n%s\n--- merged:\n%s", wantMD.String(), gotMD.String())
			}
			if err := run(&gotCSV, []string{"-merge", glob, "-csv"}); err != nil {
				t.Fatalf("merge csv: %v", err)
			}
			if gotCSV.String() != wantCSV.String() {
				t.Errorf("merged CSV differs from -all\n--- all:\n%s\n--- merged:\n%s", wantCSV.String(), gotCSV.String())
			}
		})
	}
}

// TestListExperiments checks -list prints the index (ID + title) without
// executing anything, and that the -run filter composes with it.
func TestListExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, []string{"-list"}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"F1-static-global", "CHURN-gossip", "EXT-contention", "L3.2-hitting"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("-list output missing %s", id)
		}
	}
	var filtered bytes.Buffer
	if err := run(&filtered, []string{"-list", "-run", "CHURN"}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(filtered.String(), "L3.2-hitting") || !strings.Contains(filtered.String(), "CHURN-broadcast") {
		t.Errorf("-list -run CHURN filtered wrong:\n%s", filtered.String())
	}
	if err := run(io.Discard, []string{"-list", "-run", "no-such-experiment"}); err == nil {
		t.Error("-list with unmatched filter accepted")
	}
}

// TestListFlagValidation rejects -list combined with execution modes, the
// same way the other mode flags reject each other.
func TestListFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-list", "-shard", "1/2", "-out", "x.json"},
		{"-list", "-merge", "x*.json"},
		{"-list", "-all"},
		{"-list", "-markdown"},
		{"-list", "-trials", "3"},
	} {
		if err := run(io.Discard, args); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}

// TestMergeEmptyGlobNamesGlob pins the fail-fast contract: a -merge glob
// matching zero files must fail immediately with the glob in the message,
// not surface a downstream artifact error.
func TestMergeEmptyGlobNamesGlob(t *testing.T) {
	const glob = "no-such-dir/shard_*.json"
	err := run(io.Discard, []string{"-merge", glob})
	if err == nil {
		t.Fatal("empty glob accepted")
	}
	if !strings.Contains(err.Error(), glob) {
		t.Fatalf("error %q does not name the glob %q", err, glob)
	}
}

func TestShardFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-shard", "1/2"},                                // missing -out
		{"-shard", "0/2", "-out", "x.json"},              // 0-based index
		{"-shard", "3/2", "-out", "x.json"},              // index beyond K
		{"-shard", "nonsense", "-out", "x.json"},         // unparsable
		{"-shard", "1/2/3", "-out", "x.json"},            // trailing garbage
		{"-shard", "1/2", "-all", "-out", "x.json"},      // -all conflict
		{"-shard", "1/2", "-out", "x.json", "-markdown"}, // formats belong to -merge
		{"-out", "x.json", "-run", "L3.2"},               // -out without -shard
		{"-merge", "x*.json", "-run", "L3.2"},            // -merge with selection
		{"-merge", "x*.json", "-seed", "9"},              // -merge with run config
		{"-merge", "no-such-file-*.json"},                // empty glob
	} {
		if err := run(io.Discard, args); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}

// TestMergeRejectsMixedRuns merges two artifacts produced at different
// seeds and expects a loud header-mismatch error rather than silent junk.
func TestMergeRejectsMixedRuns(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "shard_1.json")
	b := filepath.Join(dir, "shard_2.json")
	if err := run(io.Discard, []string{"-run", "L3.2", "-trials", "2", "-shard", "1/2", "-out", a}); err != nil {
		t.Fatal(err)
	}
	if err := run(io.Discard, []string{"-run", "L3.2", "-trials", "2", "-seed", "9", "-shard", "2/2", "-out", b}); err != nil {
		t.Fatal(err)
	}
	if err := run(io.Discard, []string{"-merge", filepath.Join(dir, "shard_*.json")}); err == nil {
		t.Fatal("merge of artifacts from different seeds accepted")
	}
}
