package main

import "testing"

func TestRunFilteredQuick(t *testing.T) {
	// L3.2 is the fastest experiment; a filtered quick run exercises the
	// whole pipeline.
	if err := run([]string{"-run", "L3.2", "-trials", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMarkdownAndCSV(t *testing.T) {
	if err := run([]string{"-run", "L3.2", "-trials", "2", "-markdown"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-run", "L3.2", "-trials", "2", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFilter(t *testing.T) {
	if err := run([]string{"-run", "no-such-experiment"}); err == nil {
		t.Fatal("unknown filter accepted")
	}
	if err := run([]string{"-all", "-run", "no-such-experiment"}); err == nil {
		t.Fatal("unknown filter accepted in -all mode")
	}
}

func TestRunAllSharedPool(t *testing.T) {
	// "2" selects the two fast lemma checks (L3.2-hitting, L4.2-permdecay);
	// both run through the shared pool with an explicit worker count.
	if err := run([]string{"-all", "-workers", "2", "-run", "2", "-trials", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWorkersSequential(t *testing.T) {
	if err := run([]string{"-workers", "1", "-run", "L3.2", "-trials", "2"}); err != nil {
		t.Fatal(err)
	}
}
