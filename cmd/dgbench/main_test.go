package main

import "testing"

func TestRunFilteredQuick(t *testing.T) {
	// L3.2 is the fastest experiment; a filtered quick run exercises the
	// whole pipeline.
	if err := run([]string{"-run", "L3.2", "-trials", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMarkdownAndCSV(t *testing.T) {
	if err := run([]string{"-run", "L3.2", "-trials", "2", "-markdown"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-run", "L3.2", "-trials", "2", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFilter(t *testing.T) {
	if err := run([]string{"-run", "no-such-experiment"}); err == nil {
		t.Fatal("unknown filter accepted")
	}
}
