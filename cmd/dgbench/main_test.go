package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/runsvc"
)

func TestRunFilteredQuick(t *testing.T) {
	// L3.2 is the fastest experiment; a filtered quick run exercises the
	// whole pipeline.
	if err := run(io.Discard, []string{"-run", "L3.2", "-trials", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMarkdownAndCSV(t *testing.T) {
	if err := run(io.Discard, []string{"-run", "L3.2", "-trials", "2", "-markdown"}); err != nil {
		t.Fatal(err)
	}
	if err := run(io.Discard, []string{"-run", "L3.2", "-trials", "2", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFilter(t *testing.T) {
	if err := run(io.Discard, []string{"-run", "no-such-experiment"}); err == nil {
		t.Fatal("unknown filter accepted")
	}
	if err := run(io.Discard, []string{"-all", "-run", "no-such-experiment"}); err == nil {
		t.Fatal("unknown filter accepted in -all mode")
	}
}

func TestRunAllSharedPool(t *testing.T) {
	// "2" selects the two fast lemma checks (L3.2-hitting, L4.2-permdecay);
	// both run through the shared pool with an explicit worker count.
	if err := run(io.Discard, []string{"-all", "-workers", "2", "-run", "2", "-trials", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWorkersSequential(t *testing.T) {
	if err := run(io.Discard, []string{"-workers", "1", "-run", "L3.2", "-trials", "2"}); err != nil {
		t.Fatal(err)
	}
}

// TestShardMergeMatchesAll is the CLI half of the sharding contract: for
// K ∈ {1, 2, 3}, K `-shard i/K` invocations followed by one `-merge`
// produce byte-identical markdown and CSV output to a single-process
// `-all` run at the same seeds.
func TestShardMergeMatchesAll(t *testing.T) {
	base := []string{"-run", "2", "-trials", "2", "-seed", "7"}
	var wantMD, wantCSV bytes.Buffer
	if err := run(&wantMD, append([]string{"-all", "-markdown"}, base...)); err != nil {
		t.Fatal(err)
	}
	if err := run(&wantCSV, append([]string{"-all", "-csv"}, base...)); err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			dir := t.TempDir()
			for i := 1; i <= k; i++ {
				out := filepath.Join(dir, fmt.Sprintf("shard_%d.json", i))
				args := append([]string{"-shard", fmt.Sprintf("%d/%d", i, k), "-out", out}, base...)
				if err := run(io.Discard, args); err != nil {
					t.Fatalf("shard %d/%d: %v", i, k, err)
				}
			}
			glob := filepath.Join(dir, "shard_*.json")
			var gotMD, gotCSV bytes.Buffer
			if err := run(&gotMD, []string{"-merge", glob, "-markdown"}); err != nil {
				t.Fatalf("merge: %v", err)
			}
			if gotMD.String() != wantMD.String() {
				t.Errorf("merged markdown differs from -all\n--- all:\n%s\n--- merged:\n%s", wantMD.String(), gotMD.String())
			}
			if err := run(&gotCSV, []string{"-merge", glob, "-csv"}); err != nil {
				t.Fatalf("merge csv: %v", err)
			}
			if gotCSV.String() != wantCSV.String() {
				t.Errorf("merged CSV differs from -all\n--- all:\n%s\n--- merged:\n%s", wantCSV.String(), gotCSV.String())
			}
		})
	}
}

// TestListExperiments checks -list prints the index (ID + title) without
// executing anything, and that the -run filter composes with it.
func TestListExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, []string{"-list"}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"F1-static-global", "CHURN-gossip", "EXT-contention", "L3.2-hitting"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("-list output missing %s", id)
		}
	}
	var filtered bytes.Buffer
	if err := run(&filtered, []string{"-list", "-run", "CHURN"}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(filtered.String(), "L3.2-hitting") || !strings.Contains(filtered.String(), "CHURN-broadcast") {
		t.Errorf("-list -run CHURN filtered wrong:\n%s", filtered.String())
	}
	if err := run(io.Discard, []string{"-list", "-run", "no-such-experiment"}); err == nil {
		t.Error("-list with unmatched filter accepted")
	}
}

// TestListFlagValidation rejects -list combined with execution modes, the
// same way the other mode flags reject each other. Plain -list also rejects
// the configuration flags (they cannot change an ID/title index); -json is
// only meaningful under -list.
func TestListFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-list", "-shard", "1/2", "-out", "x.json"},
		{"-list", "-merge", "x*.json"},
		{"-list", "-all"},
		{"-list", "-markdown"},
		{"-list", "-trials", "3"},
		{"-list", "-json", "-markdown"},
		{"-list", "-json", "-all"},
		{"-json", "-run", "L3.2"},
	} {
		if err := run(io.Discard, args); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}

// TestListJSON checks the machine-readable registry: -list -json emits a
// JSON array of catalog entries with IDs and positive task counts, the -run
// filter composes, and the configuration flags are admitted (task counts
// depend on them) even though plain -list rejects them.
func TestListJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, []string{"-list", "-json", "-trials", "3"}); err != nil {
		t.Fatal(err)
	}
	var entries []runsvc.CatalogEntry
	if err := json.Unmarshal(out.Bytes(), &entries); err != nil {
		t.Fatalf("-list -json output is not a catalog: %v\n%s", err, out.String())
	}
	if len(entries) == 0 {
		t.Fatal("-list -json emitted an empty catalog")
	}
	seen := map[string]runsvc.CatalogEntry{}
	for _, e := range entries {
		if e.ID == "" || e.Tasks <= 0 || e.Trials != 3 || !e.Quick {
			t.Errorf("bad catalog entry: %+v", e)
		}
		seen[e.ID] = e
	}
	if _, ok := seen["L3.2-hitting"]; !ok {
		t.Error("-list -json catalog missing L3.2-hitting")
	}

	var filtered bytes.Buffer
	if err := run(&filtered, []string{"-list", "-json", "-run", "CHURN"}); err != nil {
		t.Fatal(err)
	}
	entries = nil
	if err := json.Unmarshal(filtered.Bytes(), &entries); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.Contains(e.ID, "CHURN") {
			t.Errorf("-list -json -run CHURN returned %s", e.ID)
		}
	}
	if len(entries) == 0 {
		t.Error("-list -json -run CHURN returned nothing")
	}
}

// TestRunCacheRepeat drives the CLI cache path: a second -all run against
// the same cache directory produces byte-identical output and reports zero
// executed tasks in the cache line.
func TestRunCacheRepeat(t *testing.T) {
	cache := t.TempDir()
	base := []string{"-all", "-run", "CHURN-broadcast", "-trials", "2", "-cache", cache}
	var cold, warm bytes.Buffer
	if err := run(&cold, base); err != nil {
		t.Fatal(err)
	}
	if err := run(&warm, base); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warm.String(), "tasks served, 0 executed") {
		t.Errorf("warm run did not report zero executed tasks:\n%s", warm.String())
	}
	if !strings.Contains(cold.String(), "0 tasks served") {
		t.Errorf("cold run reported cache hits:\n%s", cold.String())
	}
	// The tables are byte-identical; only the timing/cache trailer lines may
	// differ (wall clock and hit counts).
	strip := func(s string) string {
		var kept []string
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "shared pool:") || strings.HasPrefix(line, "cache:") {
				continue
			}
			kept = append(kept, line)
		}
		return strings.Join(kept, "\n")
	}
	if strip(cold.String()) != strip(warm.String()) {
		t.Errorf("cache-served output differs from cold run\n--- cold:\n%s\n--- warm:\n%s", cold.String(), warm.String())
	}
	// Markdown output has no trailer lines at all, so it is byte-identical.
	var mdCold, mdWarm bytes.Buffer
	md := append(base, "-markdown")
	if err := run(&mdCold, md); err != nil {
		t.Fatal(err)
	}
	if err := run(&mdWarm, md); err != nil {
		t.Fatal(err)
	}
	if mdCold.String() != mdWarm.String() {
		t.Errorf("cached markdown differs from cold markdown\n--- cold:\n%s\n--- warm:\n%s", mdCold.String(), mdWarm.String())
	}
}

// TestMergeEmptyGlobNamesGlob pins the fail-fast contract: a -merge glob
// matching zero files must fail immediately with the glob in the message,
// not surface a downstream artifact error.
func TestMergeEmptyGlobNamesGlob(t *testing.T) {
	const glob = "no-such-dir/shard_*.json"
	err := run(io.Discard, []string{"-merge", glob})
	if err == nil {
		t.Fatal("empty glob accepted")
	}
	if !strings.Contains(err.Error(), glob) {
		t.Fatalf("error %q does not name the glob %q", err, glob)
	}
}

func TestShardFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-shard", "1/2"},                                // missing -out
		{"-shard", "0/2", "-out", "x.json"},              // 0-based index
		{"-shard", "3/2", "-out", "x.json"},              // index beyond K
		{"-shard", "nonsense", "-out", "x.json"},         // unparsable
		{"-shard", "1/2/3", "-out", "x.json"},            // trailing garbage
		{"-shard", "1/2", "-all", "-out", "x.json"},      // -all conflict
		{"-shard", "1/2", "-out", "x.json", "-markdown"}, // formats belong to -merge
		{"-out", "x.json", "-run", "L3.2"},               // -out without -shard
		{"-merge", "x*.json", "-run", "L3.2"},            // -merge with selection
		{"-merge", "x*.json", "-seed", "9"},              // -merge with run config
		{"-merge", "no-such-file-*.json"},                // empty glob
	} {
		if err := run(io.Discard, args); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}

// TestMergeRejectsMixedRuns merges two artifacts produced at different
// seeds and expects a loud header-mismatch error rather than silent junk.
func TestMergeRejectsMixedRuns(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "shard_1.json")
	b := filepath.Join(dir, "shard_2.json")
	if err := run(io.Discard, []string{"-run", "L3.2", "-trials", "2", "-shard", "1/2", "-out", a}); err != nil {
		t.Fatal(err)
	}
	if err := run(io.Discard, []string{"-run", "L3.2", "-trials", "2", "-seed", "9", "-shard", "2/2", "-out", b}); err != nil {
		t.Fatal(err)
	}
	if err := run(io.Discard, []string{"-merge", filepath.Join(dir, "shard_*.json")}); err == nil {
		t.Fatal("merge of artifacts from different seeds accepted")
	}
}
