// Command dgbench runs the reproduction experiment suite — one experiment
// per cell of the paper's Figure 1 plus lemma checks, ablations, the
// epoch-churn scenarios, and the SCALE-n family (decay broadcast at
// n = 10³–10⁵, exercising the engine's word-parallel delivery plan) — and
// prints the measured tables next to the paper's claims.
//
// Examples:
//
//	dgbench                    # quick suite (seconds)
//	dgbench -list              # print the experiment index, run nothing
//	dgbench -all               # whole registry through one shared worker pool
//	dgbench -full              # full suite (minutes)
//	dgbench -run F1-online     # only matching experiment ids
//	dgbench -workers 4         # bound the trial worker pool (0 = GOMAXPROCS)
//	dgbench -csv               # tables as CSV
//	dgbench -markdown          # reference-table markdown output
//
// The suite also runs sharded across machines. Every (experiment ×
// sweep-point × trial) task is independently seeded, so the work queue
// partitions deterministically: shard i of K runs only its own tasks and
// writes their raw results to a portable JSON artifact, and the merge
// reassembles the artifacts and replays the aggregation, producing output
// byte-identical to a single-machine run at the same seeds:
//
//	machine A:  dgbench -shard 1/2 -out shard_1.json
//	machine B:  dgbench -shard 2/2 -out shard_2.json
//	either:     dgbench -merge 'shard_*.json'      # == dgbench -all
//
// The merge reads the run configuration (seed, scale, trial count) from the
// artifacts themselves; all shards must run the same binary with the same
// -run/-full/-trials/-seed flags, and -merge validates that they did.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/shard"
	"repro/internal/viz"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dgbench:", err)
		os.Exit(1)
	}
}

// printOpts selects the output format for one experiment result.
type printOpts struct {
	markdown bool
	csv      bool
	plot     bool
	// elapsed is printed in the default format when non-zero; the -all and
	// -merge modes omit it because experiments overlap on the shared pool
	// (and so the output stays byte-identical across worker counts and
	// shardings).
	elapsed time.Duration
}

func printResult(w io.Writer, res *experiments.Result, opts printOpts) {
	switch {
	case opts.markdown:
		fmt.Fprintf(w, "### %s — %s\n\n", res.ID, res.Title)
		fmt.Fprintf(w, "Paper claim: %s\n\n```\n%s```\n\n", res.PaperClaim, res.Table)
		for _, n := range res.Notes {
			fmt.Fprintf(w, "- %s\n", n)
		}
		fmt.Fprintf(w, "\n")
	case opts.csv:
		fmt.Fprintf(w, "# %s (%s)\n%s\n", res.ID, res.PaperClaim, res.Table.CSV())
	default:
		if opts.elapsed > 0 {
			fmt.Fprintf(w, "=== %s — %s  [%v]\n", res.ID, res.Title, opts.elapsed.Round(time.Millisecond))
		} else {
			fmt.Fprintf(w, "=== %s — %s\n", res.ID, res.Title)
		}
		fmt.Fprintf(w, "paper claim: %s\n\n%s\n", res.PaperClaim, res.Table)
		for _, n := range res.Notes {
			fmt.Fprintf(w, "  %s\n", n)
		}
		if opts.plot && len(res.Series) > 0 {
			p := viz.NewPlot(56, 12)
			p.LogX, p.LogY = true, true
			for _, s := range res.Series {
				p.Add(viz.Series{Name: s.Name, X: s.X, Y: s.Y})
			}
			fmt.Fprintf(w, "\nscaling (log-log):\n%s", p.Render())
		}
		fmt.Fprintf(w, "\n")
	}
}

// parseShardSpec parses "-shard i/K" (1-based: shard i of K machines). The
// whole spec must parse — trailing garbage like "1/2/3" is rejected, not
// truncated, because a typo here wastes an entire machine's run.
func parseShardSpec(spec string) (index, count int, err error) {
	i, k, ok := strings.Cut(spec, "/")
	if ok {
		index, err = strconv.Atoi(i)
		if err == nil {
			count, err = strconv.Atoi(k)
		}
	}
	if !ok || err != nil {
		return 0, 0, fmt.Errorf("-shard %q: want i/K, e.g. -shard 1/2", spec)
	}
	if count < 1 || index < 1 || index > count {
		return 0, 0, fmt.Errorf("-shard %q: shard index must be in 1..%d", spec, count)
	}
	return index, count, nil
}

// printSummary prints the run's verdict line and converts deviations into
// the process exit error, identically for -all, per-experiment, and -merge
// modes (so merged output is byte-for-byte a single-machine run's).
func printSummary(w io.Writer, ran, failed int) error {
	fmt.Fprintf(w, "%d experiments run, %d matched the paper's claims, %d deviated\n", ran, ran-failed, failed)
	if failed > 0 {
		return fmt.Errorf("%d experiments deviated from the paper's claims", failed)
	}
	return nil
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("dgbench", flag.ContinueOnError)
	var (
		list      = fs.Bool("list", false, "print the experiment index (ID and title) without running anything")
		full      = fs.Bool("full", false, "full-scale sweeps (minutes) instead of quick")
		quick     = fs.Bool("quick", true, "reduced sweeps for fast runs (ignored when -full is set)")
		all       = fs.Bool("all", false, "run every selected experiment concurrently through one shared worker pool")
		workers   = fs.Int("workers", 0, "trial worker pool size (0 = GOMAXPROCS; 1 forces sequential trials)")
		filter    = fs.String("run", "", "only run experiments whose id contains this substring")
		trials    = fs.Int("trials", 0, "trials per sweep point (0 = default)")
		csv       = fs.Bool("csv", false, "emit tables as CSV")
		markdown  = fs.Bool("markdown", false, "emit reference-table markdown")
		plot      = fs.Bool("plot", false, "render scaling curves as log-log ASCII plots")
		seed      = fs.Uint64("seed", 0, "base seed offset")
		shardSpec = fs.String("shard", "", "execute shard i/K of the task plan and write an artifact (requires -out)")
		out       = fs.String("out", "", "artifact path for -shard")
		merge     = fs.String("merge", "", "merge shard artifacts matching this glob and replay the aggregation")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{
		Quick:    *quick && !*full,
		Trials:   *trials,
		BaseSeed: *seed,
		Workers:  *workers,
	}
	opts := printOpts{markdown: *markdown, csv: *csv, plot: *plot}

	if *list {
		// -list is a mode flag like -shard and -merge: it runs nothing, so
		// combining it with an execution mode is a contradiction. Only the
		// -run filter composes with it.
		var conflict []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "list", "run":
			default:
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			return fmt.Errorf("-list prints the experiment index without running anything; drop %s", strings.Join(conflict, " "))
		}
		matched := 0
		for _, e := range experiments.All() {
			if *filter != "" && !strings.Contains(e.ID, *filter) {
				continue
			}
			matched++
			fmt.Fprintf(w, "%-28s %s\n", e.ID, e.Title)
		}
		if matched == 0 {
			return fmt.Errorf("no experiment matches -run %q", *filter)
		}
		return nil
	}
	if *merge != "" {
		// The merge reads its experiment selection and run configuration out
		// of the artifacts; any explicitly set flag besides the output format
		// would be silently overridden, so reject it instead.
		var conflict []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "merge", "csv", "markdown", "plot":
			default:
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			return fmt.Errorf("-merge takes its experiment selection and configuration from the artifacts; drop %s", strings.Join(conflict, " "))
		}
		return runMerge(w, *merge, opts)
	}
	if *out != "" && *shardSpec == "" {
		return fmt.Errorf("-out is only written by -shard; drop it or add -shard i/K")
	}

	var selected []experiments.Experiment
	for _, e := range experiments.All() {
		if *filter != "" && !strings.Contains(e.ID, *filter) {
			continue
		}
		selected = append(selected, e)
	}
	if len(selected) == 0 {
		return fmt.Errorf("no experiment matches -run %q", *filter)
	}

	if *shardSpec != "" {
		if *all {
			return fmt.Errorf("-shard already runs its tasks through one shared pool; drop -all")
		}
		if *out == "" {
			return fmt.Errorf("-shard requires -out (artifact path)")
		}
		// A shard writes an artifact, not tables; the formats come out of
		// the merge. Reject them here like -merge rejects run-config flags,
		// instead of silently ignoring them.
		if *markdown || *csv || *plot {
			return fmt.Errorf("-shard writes an artifact, not tables; pass -markdown/-csv/-plot to -merge instead")
		}
		index, count, err := parseShardSpec(*shardSpec)
		if err != nil {
			return err
		}
		return runShard(w, cfg, selected, index, count, *out)
	}

	ran, failed := 0, 0
	if *all {
		// One shared pool: every (experiment × sweep-point × trial) triple of
		// the selection lands in the same work queue.
		start := time.Now()
		results, errs := experiments.RunAll(cfg, selected)
		for i, e := range selected {
			if errs[i] != nil {
				return fmt.Errorf("%s: %w", e.ID, errs[i])
			}
			ran++
			if !results[i].Pass {
				failed++
			}
			printResult(w, results[i], opts)
		}
		if !*csv && !*markdown {
			fmt.Fprintf(w, "shared pool: %d workers, %v total\n", cfg.EffectiveWorkers(), time.Since(start).Round(time.Millisecond))
		}
	} else {
		for _, e := range selected {
			start := time.Now()
			res, err := e.Run(cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			ran++
			if !res.Pass {
				failed++
			}
			perExp := opts
			perExp.elapsed = time.Since(start)
			printResult(w, res, perExp)
		}
	}
	return printSummary(w, ran, failed)
}

// runShard executes one shard of the selection's task plan and writes the
// artifact: the plan itself, this shard's owned task records, and the run
// configuration the merge will replay under.
func runShard(w io.Writer, cfg experiments.Config, selected []experiments.Experiment, index, count int, outPath string) error {
	art, err := experiments.ExecuteShard(cfg, selected, index, count)
	if err != nil {
		return err
	}
	if err := shard.Write(outPath, art); err != nil {
		return err
	}
	total := 0
	for _, p := range art.Plan {
		total += p.Tasks
	}
	fmt.Fprintf(w, "shard %d/%d: ran %d of %d tasks across %d experiments → %s\n",
		index, count, len(art.Records), total, len(art.Plan), outPath)
	return nil
}

// runMerge loads every artifact matching the glob, validates that they tile
// one run's task plan exactly, replays the aggregation, and prints the
// results exactly as a single-machine run would.
func runMerge(w io.Writer, glob string, opts printOpts) error {
	paths, err := filepath.Glob(glob)
	if err != nil {
		return fmt.Errorf("-merge %q: %w", glob, err)
	}
	if len(paths) == 0 {
		return fmt.Errorf("-merge %q matches no files", glob)
	}
	arts := make([]*shard.Artifact, len(paths))
	for i, p := range paths {
		if arts[i], err = shard.Read(p); err != nil {
			return err
		}
	}
	merged, err := shard.Merge(arts)
	if err != nil {
		return err
	}
	exps, err := experiments.MergedExperiments(merged)
	if err != nil {
		return err
	}
	results, errs := experiments.RunMerged(experiments.ConfigFromMerged(merged), exps, merged)
	ran, failed := 0, 0
	for i, e := range exps {
		if errs[i] != nil {
			return fmt.Errorf("%s: %w", e.ID, errs[i])
		}
		ran++
		if !results[i].Pass {
			failed++
		}
		printResult(w, results[i], opts)
	}
	return printSummary(w, ran, failed)
}
