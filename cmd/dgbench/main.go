// Command dgbench runs the reproduction experiment suite — one experiment
// per cell of the paper's Figure 1 plus lemma checks and ablations — and
// prints the measured tables next to the paper's claims.
//
// Examples:
//
//	dgbench                    # quick suite (seconds)
//	dgbench -full              # full suite (regenerates EXPERIMENTS.md data)
//	dgbench -run F1-online     # only matching experiment ids
//	dgbench -csv               # tables as CSV
//	dgbench -markdown          # EXPERIMENTS.md-style output
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/viz"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dgbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dgbench", flag.ContinueOnError)
	var (
		full     = fs.Bool("full", false, "full-scale sweeps (minutes) instead of quick")
		filter   = fs.String("run", "", "only run experiments whose id contains this substring")
		trials   = fs.Int("trials", 0, "trials per sweep point (0 = default)")
		csv      = fs.Bool("csv", false, "emit tables as CSV")
		markdown = fs.Bool("markdown", false, "emit EXPERIMENTS.md-style markdown")
		plot     = fs.Bool("plot", false, "render scaling curves as log-log ASCII plots")
		seed     = fs.Uint64("seed", 0, "base seed offset")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{Quick: !*full, Trials: *trials, BaseSeed: *seed}

	all := experiments.All()
	ran, failed := 0, 0
	for _, e := range all {
		if *filter != "" && !strings.Contains(e.ID, *filter) {
			continue
		}
		start := time.Now()
		res, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		ran++
		if !res.Pass {
			failed++
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		switch {
		case *markdown:
			fmt.Printf("### %s — %s\n\n", res.ID, res.Title)
			fmt.Printf("Paper claim: %s\n\n```\n%s```\n\n", res.PaperClaim, res.Table)
			for _, n := range res.Notes {
				fmt.Printf("- %s\n", n)
			}
			fmt.Printf("\n")
		case *csv:
			fmt.Printf("# %s (%s)\n%s\n", res.ID, res.PaperClaim, res.Table.CSV())
		default:
			fmt.Printf("=== %s — %s  [%v]\n", res.ID, res.Title, elapsed)
			fmt.Printf("paper claim: %s\n\n%s\n", res.PaperClaim, res.Table)
			for _, n := range res.Notes {
				fmt.Printf("  %s\n", n)
			}
			if *plot && len(res.Series) > 0 {
				p := viz.NewPlot(56, 12)
				p.LogX, p.LogY = true, true
				for _, s := range res.Series {
					p.Add(viz.Series{Name: s.Name, X: s.X, Y: s.Y})
				}
				fmt.Printf("\nscaling (log-log):\n%s", p.Render())
			}
			fmt.Printf("\n")
		}
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matches -run %q", *filter)
	}
	fmt.Printf("%d experiments run, %d matched the paper's claims, %d deviated\n", ran, ran-failed, failed)
	if failed > 0 {
		return fmt.Errorf("%d experiments deviated from the paper's claims", failed)
	}
	return nil
}
