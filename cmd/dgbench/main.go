// Command dgbench runs the reproduction experiment suite — one experiment
// per cell of the paper's Figure 1 plus lemma checks, ablations, the
// epoch-churn scenarios, and the SCALE-n family (decay broadcast at
// n = 10³–10⁵, exercising the engine's word-parallel delivery plan) — and
// prints the measured tables next to the paper's claims.
//
// Examples:
//
//	dgbench                    # quick suite (seconds)
//	dgbench -list              # print the experiment index, run nothing
//	dgbench -list -json        # machine-readable registry (IDs, task counts)
//	dgbench -all               # whole registry through one shared worker pool
//	dgbench -full              # full suite (minutes)
//	dgbench -run F1-online     # only matching experiment ids
//	dgbench -workers 4         # bound the trial worker pool (0 = GOMAXPROCS)
//	dgbench -cache DIR         # content-addressed result cache (see dgserved)
//	dgbench -csv               # tables as CSV
//	dgbench -markdown          # reference-table markdown output
//
// Execution goes through the same run-service core as dgserved
// (internal/runsvc): the run is planned, partitioned against the result
// cache when -cache is set, and the delta executed; output is byte-identical
// to a cache-less run, and a repeated invocation over a warm cache executes
// zero tasks.
//
// The suite also runs sharded across machines. Every (experiment ×
// sweep-point × trial) task is independently seeded, so the work queue
// partitions deterministically: shard i of K runs only its own tasks and
// writes their raw results to a portable JSON artifact, and the merge
// reassembles the artifacts and replays the aggregation, producing output
// byte-identical to a single-machine run at the same seeds:
//
//	machine A:  dgbench -shard 1/2 -out shard_1.json
//	machine B:  dgbench -shard 2/2 -out shard_2.json
//	either:     dgbench -merge 'shard_*.json'      # == dgbench -all
//
// The merge reads the run configuration (seed, scale, trial count) from the
// artifacts themselves; all shards must run the same binary with the same
// -run/-full/-trials/-seed flags, and -merge validates that they did.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/runsvc"
	"repro/internal/shard"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dgbench:", err)
		os.Exit(1)
	}
}

// parseShardSpec parses "-shard i/K" (1-based: shard i of K machines). The
// whole spec must parse — trailing garbage like "1/2/3" is rejected, not
// truncated, because a typo here wastes an entire machine's run.
func parseShardSpec(spec string) (index, count int, err error) {
	i, k, ok := strings.Cut(spec, "/")
	if ok {
		index, err = strconv.Atoi(i)
		if err == nil {
			count, err = strconv.Atoi(k)
		}
	}
	if !ok || err != nil {
		return 0, 0, fmt.Errorf("-shard %q: want i/K, e.g. -shard 1/2", spec)
	}
	if count < 1 || index < 1 || index > count {
		return 0, 0, fmt.Errorf("-shard %q: shard index must be in 1..%d", spec, count)
	}
	return index, count, nil
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("dgbench", flag.ContinueOnError)
	var (
		list      = fs.Bool("list", false, "print the experiment index (ID and title) without running anything")
		jsonOut   = fs.Bool("json", false, "with -list: emit the machine-readable registry (IDs, task counts, trials)")
		full      = fs.Bool("full", false, "full-scale sweeps (minutes) instead of quick")
		quick     = fs.Bool("quick", true, "reduced sweeps for fast runs (ignored when -full is set)")
		all       = fs.Bool("all", false, "run every selected experiment concurrently through one shared worker pool")
		workers   = fs.Int("workers", 0, "trial worker pool size (0 = GOMAXPROCS; 1 forces sequential trials)")
		filter    = fs.String("run", "", "only run experiments whose id contains this substring")
		trials    = fs.Int("trials", 0, "trials per sweep point (0 = default)")
		csv       = fs.Bool("csv", false, "emit tables as CSV")
		markdown  = fs.Bool("markdown", false, "emit reference-table markdown")
		plot      = fs.Bool("plot", false, "render scaling curves as log-log ASCII plots")
		seed      = fs.Uint64("seed", 0, "base seed offset")
		cacheDir  = fs.String("cache", "", "content-addressed result cache directory (shared with dgserved)")
		shardSpec = fs.String("shard", "", "execute shard i/K of the task plan and write an artifact (requires -out)")
		out       = fs.String("out", "", "artifact path for -shard")
		merge     = fs.String("merge", "", "merge shard artifacts matching this glob and replay the aggregation")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{
		Quick:    *quick && !*full,
		Trials:   *trials,
		BaseSeed: *seed,
		Workers:  *workers,
	}
	opts := report.Options{Markdown: *markdown, CSV: *csv, Plot: *plot}

	if *list {
		// -list is a mode flag like -shard and -merge: it runs nothing, so
		// combining it with an execution mode is a contradiction. The -run
		// filter composes with it; -json additionally admits the
		// configuration flags, because task counts depend on them.
		allowed := map[string]bool{"list": true, "run": true, "json": true}
		if *jsonOut {
			for _, name := range []string{"full", "quick", "trials", "seed"} {
				allowed[name] = true
			}
		}
		var conflict []string
		fs.Visit(func(f *flag.Flag) {
			if !allowed[f.Name] {
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			return fmt.Errorf("-list prints the experiment index without running anything; drop %s", strings.Join(conflict, " "))
		}
		selected, err := selectExperiments(*filter)
		if err != nil {
			return err
		}
		if *jsonOut {
			entries, err := runsvc.Catalog(cfg, selected)
			if err != nil {
				return err
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(entries)
		}
		for _, e := range selected {
			fmt.Fprintf(w, "%-28s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *jsonOut {
		return fmt.Errorf("-json is a -list output format; add -list")
	}
	if *merge != "" {
		// The merge reads its experiment selection and run configuration out
		// of the artifacts; any explicitly set flag besides the output format
		// would be silently overridden, so reject it instead.
		var conflict []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "merge", "csv", "markdown", "plot":
			default:
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			return fmt.Errorf("-merge takes its experiment selection and configuration from the artifacts; drop %s", strings.Join(conflict, " "))
		}
		return runMerge(w, *merge, opts)
	}
	if *out != "" && *shardSpec == "" {
		return fmt.Errorf("-out is only written by -shard; drop it or add -shard i/K")
	}

	selected, err := selectExperiments(*filter)
	if err != nil {
		return err
	}

	if *shardSpec != "" {
		if *all {
			return fmt.Errorf("-shard already runs its tasks through one shared pool; drop -all")
		}
		if *out == "" {
			return fmt.Errorf("-shard requires -out (artifact path)")
		}
		// A shard writes an artifact, not tables; the formats come out of
		// the merge. Reject them here like -merge rejects run-config flags,
		// instead of silently ignoring them.
		if *markdown || *csv || *plot {
			return fmt.Errorf("-shard writes an artifact, not tables; pass -markdown/-csv/-plot to -merge instead")
		}
		index, count, err := parseShardSpec(*shardSpec)
		if err != nil {
			return err
		}
		return runShard(w, cfg, selected, index, count, *out)
	}

	// Both execution modes drive the run-service core: the service resolves
	// the spec, plans, partitions against the cache, executes the delta, and
	// merges — dgbench only selects, renders, and times.
	svc, err := runsvc.New(runsvc.Options{CacheDir: *cacheDir, MaxInFlight: 1})
	if err != nil {
		return err
	}
	defer svc.Close()
	spec := runsvc.Spec{
		Full:    !cfg.Quick,
		Trials:  *trials,
		Seed:    *seed,
		Workers: *workers,
	}

	if *all {
		// One shared pool: every (experiment × sweep-point × trial) triple of
		// the selection lands in the same work queue.
		spec.Experiments = experimentIDs(selected)
		start := time.Now()
		r, err := svc.RunSync(spec)
		if err != nil {
			return err
		}
		results, err := r.Results()
		if err != nil {
			return err
		}
		failed := 0
		for _, res := range results {
			if !res.Pass {
				failed++
			}
			report.Result(w, res, opts)
		}
		if !*csv && !*markdown {
			fmt.Fprintf(w, "shared pool: %d workers, %v total\n", cfg.EffectiveWorkers(), time.Since(start).Round(time.Millisecond))
			if *cacheDir != "" {
				fmt.Fprintf(w, "cache: %d tasks served, %d executed\n", r.CachedTasks(), r.ExecutedTasks())
			}
		}
		return report.Summary(w, len(results), failed)
	}

	ran, failed := 0, 0
	for _, e := range selected {
		perExp := spec
		perExp.Experiments = []string{e.ID}
		start := time.Now()
		r, err := svc.RunSync(perExp)
		if err != nil {
			return err
		}
		results, err := r.Results()
		if err != nil {
			return err
		}
		ran++
		if !results[0].Pass {
			failed++
		}
		perOpts := opts
		perOpts.Elapsed = time.Since(start)
		report.Result(w, results[0], perOpts)
	}
	return report.Summary(w, ran, failed)
}

// selectExperiments resolves the -run substring filter against the
// registry, failing when nothing matches.
func selectExperiments(filter string) ([]experiments.Experiment, error) {
	var selected []experiments.Experiment
	for _, e := range experiments.All() {
		if filter != "" && !strings.Contains(e.ID, filter) {
			continue
		}
		selected = append(selected, e)
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("no experiment matches -run %q", filter)
	}
	return selected, nil
}

func experimentIDs(exps []experiments.Experiment) []string {
	ids := make([]string, len(exps))
	for i, e := range exps {
		ids[i] = e.ID
	}
	return ids
}

// runShard executes one shard of the selection's task plan and writes the
// artifact: the plan itself, this shard's owned task records, and the run
// configuration the merge will replay under.
func runShard(w io.Writer, cfg experiments.Config, selected []experiments.Experiment, index, count int, outPath string) error {
	art, err := runsvc.ExecuteShardSpec(cfg, selected, index, count)
	if err != nil {
		return err
	}
	if err := shard.Write(outPath, art); err != nil {
		return err
	}
	total := 0
	for _, p := range art.Plan {
		total += p.Tasks
	}
	fmt.Fprintf(w, "shard %d/%d: ran %d of %d tasks across %d experiments → %s\n",
		index, count, len(art.Records), total, len(art.Plan), outPath)
	return nil
}

// runMerge loads every artifact matching the glob, validates that they tile
// one run's task plan exactly, replays the aggregation, and prints the
// results exactly as a single-machine run would.
func runMerge(w io.Writer, glob string, opts report.Options) error {
	paths, err := filepath.Glob(glob)
	if err != nil {
		return fmt.Errorf("-merge %q: %w", glob, err)
	}
	if len(paths) == 0 {
		return fmt.Errorf("-merge %q matches no files", glob)
	}
	arts := make([]*shard.Artifact, len(paths))
	for i, p := range paths {
		if arts[i], err = shard.Read(p); err != nil {
			return err
		}
	}
	results, _, err := runsvc.MergeArtifacts(arts)
	if err != nil {
		return err
	}
	failed := 0
	for _, res := range results {
		if !res.Pass {
			failed++
		}
		report.Result(w, res, opts)
	}
	return report.Summary(w, len(results), failed)
}
