// Command dgbench runs the reproduction experiment suite — one experiment
// per cell of the paper's Figure 1 plus lemma checks and ablations — and
// prints the measured tables next to the paper's claims.
//
// Examples:
//
//	dgbench                    # quick suite (seconds)
//	dgbench -all               # whole registry through one shared worker pool
//	dgbench -full              # full suite (minutes)
//	dgbench -run F1-online     # only matching experiment ids
//	dgbench -workers 4         # bound the trial worker pool (0 = GOMAXPROCS)
//	dgbench -csv               # tables as CSV
//	dgbench -markdown          # reference-table markdown output
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/viz"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dgbench:", err)
		os.Exit(1)
	}
}

// printOpts selects the output format for one experiment result.
type printOpts struct {
	markdown bool
	csv      bool
	plot     bool
	// elapsed is printed in the default format when non-zero; the -all mode
	// omits it because experiments overlap on the shared pool (and so the
	// output stays byte-identical across worker counts).
	elapsed time.Duration
}

func printResult(res *experiments.Result, opts printOpts) {
	switch {
	case opts.markdown:
		fmt.Printf("### %s — %s\n\n", res.ID, res.Title)
		fmt.Printf("Paper claim: %s\n\n```\n%s```\n\n", res.PaperClaim, res.Table)
		for _, n := range res.Notes {
			fmt.Printf("- %s\n", n)
		}
		fmt.Printf("\n")
	case opts.csv:
		fmt.Printf("# %s (%s)\n%s\n", res.ID, res.PaperClaim, res.Table.CSV())
	default:
		if opts.elapsed > 0 {
			fmt.Printf("=== %s — %s  [%v]\n", res.ID, res.Title, opts.elapsed.Round(time.Millisecond))
		} else {
			fmt.Printf("=== %s — %s\n", res.ID, res.Title)
		}
		fmt.Printf("paper claim: %s\n\n%s\n", res.PaperClaim, res.Table)
		for _, n := range res.Notes {
			fmt.Printf("  %s\n", n)
		}
		if opts.plot && len(res.Series) > 0 {
			p := viz.NewPlot(56, 12)
			p.LogX, p.LogY = true, true
			for _, s := range res.Series {
				p.Add(viz.Series{Name: s.Name, X: s.X, Y: s.Y})
			}
			fmt.Printf("\nscaling (log-log):\n%s", p.Render())
		}
		fmt.Printf("\n")
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dgbench", flag.ContinueOnError)
	var (
		full     = fs.Bool("full", false, "full-scale sweeps (minutes) instead of quick")
		quick    = fs.Bool("quick", true, "reduced sweeps for fast runs (ignored when -full is set)")
		all      = fs.Bool("all", false, "run every selected experiment concurrently through one shared worker pool")
		workers  = fs.Int("workers", 0, "trial worker pool size (0 = GOMAXPROCS; 1 forces sequential trials)")
		filter   = fs.String("run", "", "only run experiments whose id contains this substring")
		trials   = fs.Int("trials", 0, "trials per sweep point (0 = default)")
		csv      = fs.Bool("csv", false, "emit tables as CSV")
		markdown = fs.Bool("markdown", false, "emit reference-table markdown")
		plot     = fs.Bool("plot", false, "render scaling curves as log-log ASCII plots")
		seed     = fs.Uint64("seed", 0, "base seed offset")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{
		Quick:    *quick && !*full,
		Trials:   *trials,
		BaseSeed: *seed,
		Workers:  *workers,
	}
	opts := printOpts{markdown: *markdown, csv: *csv, plot: *plot}

	var selected []experiments.Experiment
	for _, e := range experiments.All() {
		if *filter != "" && !strings.Contains(e.ID, *filter) {
			continue
		}
		selected = append(selected, e)
	}
	if len(selected) == 0 {
		return fmt.Errorf("no experiment matches -run %q", *filter)
	}

	ran, failed := 0, 0
	if *all {
		// One shared pool: every (experiment × sweep-point × trial) triple of
		// the selection lands in the same work queue.
		start := time.Now()
		results, errs := experiments.RunAll(cfg, selected)
		for i, e := range selected {
			if errs[i] != nil {
				return fmt.Errorf("%s: %w", e.ID, errs[i])
			}
			ran++
			if !results[i].Pass {
				failed++
			}
			printResult(results[i], opts)
		}
		if !*csv && !*markdown {
			fmt.Printf("shared pool: %d workers, %v total\n", cfg.EffectiveWorkers(), time.Since(start).Round(time.Millisecond))
		}
	} else {
		for _, e := range selected {
			start := time.Now()
			res, err := e.Run(cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			ran++
			if !res.Pass {
				failed++
			}
			perExp := opts
			perExp.elapsed = time.Since(start)
			printResult(res, perExp)
		}
	}
	fmt.Printf("%d experiments run, %d matched the paper's claims, %d deviated\n", ran, ran-failed, failed)
	if failed > 0 {
		return fmt.Errorf("%d experiments deviated from the paper's claims", failed)
	}
	return nil
}
