// Command dglint runs the repository's static-invariant analyzers — the
// determinism, view-lifetime, scratch-reset and alloc-gate contracts — over
// the given package patterns and exits non-zero on any finding.
//
// Usage:
//
//	go run ./cmd/dglint ./...
//	go run ./cmd/dglint -run detrand,viewescape ./internal/...
//	go run ./cmd/dglint -list
//
// dglint is a tier-1-adjacent CI gate: the contracts it enforces are the
// ones the sweep scheduler's byte-identical-output invariant and the epoch
// machinery rest on, so a finding is a build break, not advice. Justified
// exceptions are annotated in source with //dglint:allow <analyzer>:
// <reason> — see internal/lint.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	listFlag := flag.Bool("list", false, "list the analyzers and exit")
	runFlag := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	if *listFlag {
		for _, a := range lint.Analyzers {
			scope := ""
			if a.InternalOnly {
				scope = " [internal packages only]"
			}
			fmt.Printf("%-14s %s%s\n", a.Name, a.Doc, scope)
		}
		return
	}

	analyzers := lint.Analyzers
	if *runFlag != "" {
		analyzers = nil
		for _, name := range strings.Split(*runFlag, ",") {
			name = strings.TrimSpace(name)
			a := lint.AnalyzerByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "dglint: unknown analyzer %q (see -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dglint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(cwd, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dglint:", err)
		os.Exit(2)
	}
	if len(diags) > 0 {
		loader, lerr := lint.NewLoader(cwd)
		root := cwd
		if lerr == nil {
			root = loader.ModRoot
		}
		lint.Print(os.Stdout, root, diags)
		os.Exit(1)
	}
}
