package main

import (
	"os"
	"testing"

	"repro/internal/lint"
)

// TestRepoIsClean runs every analyzer over the whole module and requires
// zero findings — the same gate CI runs via `go run ./cmd/dglint ./...`,
// wired into `go test ./...` so a finding fails the ordinary test run too.
func TestRepoIsClean(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(cwd, []string{"./..."}, lint.Analyzers)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestAnalyzerRegistry pins the suite: every analyzer is registered under
// its documented name, resolvable by AnalyzerByName, and documented.
func TestAnalyzerRegistry(t *testing.T) {
	want := []string{"detrand", "viewescape", "scratchreset", "noalloc"}
	if len(lint.Analyzers) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(lint.Analyzers), len(want))
	}
	for i, name := range want {
		a := lint.Analyzers[i]
		if a.Name != name {
			t.Errorf("Analyzers[%d].Name = %q, want %q", i, a.Name, name)
		}
		if lint.AnalyzerByName(name) != a {
			t.Errorf("AnalyzerByName(%q) did not return the registered analyzer", name)
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", name)
		}
	}
	if lint.AnalyzerByName("nope") != nil {
		t.Error("AnalyzerByName of an unknown name should be nil")
	}
}
