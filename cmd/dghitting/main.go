// Command dghitting plays the β-hitting game of the paper's lower-bound
// machinery: directly with the uniform/sweep players, or through the
// Theorem 3.1 reduction by simulating a broadcast algorithm on the dual
// clique.
//
// Examples:
//
//	dghitting -beta 64 -player uniform -trials 1000
//	dghitting -beta 64 -player simulate -alg decay-global
//	dghitting -beta 128 -player simulate -alg round-robin -problem local
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bitrand"
	"repro/internal/core"
	"repro/internal/hitting"
	"repro/internal/radio"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dghitting:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dghitting", flag.ContinueOnError)
	var (
		beta    = fs.Int("beta", 64, "game size β")
		player  = fs.String("player", "uniform", "player: uniform, sweep, simulate")
		algName = fs.String("alg", "decay-global", "algorithm for -player simulate: decay-global, round-robin")
		problem = fs.String("problem", "global", "problem for -player simulate: global or local")
		trials  = fs.Int("trials", 200, "independent games to play")
		budget  = fs.Int("budget", 0, "guess budget per game (0 = 4β² for direct players, 2^22 for simulate)")
		seed    = fs.Uint64("seed", 1, "base seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *beta < 2 {
		return fmt.Errorf("beta must be ≥ 2")
	}

	mkPlayer, err := playerFactory(*player, *algName, *problem, *beta, *seed)
	if err != nil {
		return err
	}
	maxGuesses := *budget
	if maxGuesses <= 0 {
		maxGuesses = 4 * *beta * *beta
		if *player == "simulate" {
			maxGuesses = 1 << 22
		}
	}

	rng := bitrand.New(*seed)
	wins := 0
	var guesses, simRounds []float64
	for trial := 0; trial < *trials; trial++ {
		target := rng.Intn(*beta)
		out := hitting.Play(*beta, target, maxGuesses, mkPlayer(uint64(trial)), rng)
		if out.Won {
			wins++
			guesses = append(guesses, float64(out.Guesses))
			if out.SimRounds > 0 {
				simRounds = append(simRounds, float64(out.SimRounds))
			}
		}
	}

	fmt.Printf("player %s  β=%d  trials=%d  budget=%d\n", *player, *beta, *trials, maxGuesses)
	fmt.Printf("wins   %d/%d (%.1f%%)\n", wins, *trials, 100*float64(wins)/float64(*trials))
	if len(guesses) > 0 {
		g := stats.Summarize(guesses)
		fmt.Printf("guesses to win: median %.0f  mean %.1f  p90 %.0f  max %.0f\n", g.Median, g.Mean, g.P90, g.Max)
	}
	if len(simRounds) > 0 {
		s := stats.Summarize(simRounds)
		fmt.Printf("simulated broadcast rounds: median %.0f  mean %.1f  max %.0f\n", s.Median, s.Mean, s.Max)
		fmt.Printf("Theorem 3.1 frame: guesses ≈ O(f(2β)·log β) with log β = %d\n", bitrand.LogN(*beta))
	}
	return nil
}

func playerFactory(kind, algName, problem string, beta int, seed uint64) (func(trial uint64) hitting.Player, error) {
	switch kind {
	case "uniform":
		return func(uint64) hitting.Player { return &hitting.UniformPlayer{Beta: beta} }, nil
	case "sweep":
		return func(uint64) hitting.Player { return &hitting.SweepPlayer{Beta: beta} }, nil
	case "simulate":
		var alg radio.Algorithm
		switch algName {
		case "decay-global":
			alg = core.DecayGlobal{}
		case "round-robin":
			alg = core.RoundRobin{}
		default:
			return nil, fmt.Errorf("unsupported algorithm %q for the reduction", algName)
		}
		var prob radio.Problem
		switch problem {
		case "global":
			prob = radio.GlobalBroadcast
		case "local":
			prob = radio.LocalBroadcast
		default:
			return nil, fmt.Errorf("unknown problem %q", problem)
		}
		return func(trial uint64) hitting.Player {
			return &hitting.SimulationPlayer{
				Algorithm: alg,
				Beta:      beta,
				Problem:   prob,
				Seed:      seed + trial,
			}
		}, nil
	default:
		return nil, fmt.Errorf("unknown player %q", kind)
	}
}
