package main

import "testing"

func TestPlayerFactory(t *testing.T) {
	for _, kind := range []string{"uniform", "sweep"} {
		mk, err := playerFactory(kind, "", "", 16, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if mk(0) == nil {
			t.Fatalf("%s: nil player", kind)
		}
	}
	mk, err := playerFactory("simulate", "round-robin", "local", 16, 1)
	if err != nil || mk(0) == nil {
		t.Fatalf("simulate: %v", err)
	}
	if _, err := playerFactory("nope", "", "", 16, 1); err == nil {
		t.Fatal("unknown player accepted")
	}
	if _, err := playerFactory("simulate", "nope", "local", 16, 1); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := playerFactory("simulate", "round-robin", "nope", 16, 1); err == nil {
		t.Fatal("unknown problem accepted")
	}
}

func TestRunUniform(t *testing.T) {
	if err := run([]string{"-beta", "16", "-player", "uniform", "-trials", "20"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSimulate(t *testing.T) {
	if err := run([]string{"-beta", "16", "-player", "simulate", "-alg", "round-robin", "-problem", "local", "-trials", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadBeta(t *testing.T) {
	if err := run([]string{"-beta", "1"}); err == nil {
		t.Fatal("beta=1 accepted")
	}
}
