// Command dgserved serves the reproduction suite as a long-lived daemon:
// the same plan/execute/merge core dgbench drives in-process
// (internal/runsvc), behind a small JSON API with a content-addressed
// result cache.
//
// Runs are identified by a content hash over (plan, configuration, seed):
// submitting the same spec twice returns the same run, and with -cache set,
// a spec whose experiments were all executed before — by any earlier run,
// or by dgbench pointed at the same directory — is served without executing
// a single task. Overlapping specs execute only their delta. The served
// tables are byte-identical to a cold `dgbench -all` at the same flags.
//
//	dgserved -addr :8080 -cache /var/cache/dg
//
// Endpoints:
//
//	POST /v1/runs                  submit a spec (JSON body); 201 new, 200 duplicate
//	GET  /v1/runs                  list runs in submission order
//	GET  /v1/runs/{id}             one run's status, counters, and event log
//	GET  /v1/runs/{id}/result      rendered tables; ?format=text|markdown|csv
//	GET  /v1/runs/{id}/events      NDJSON event stream until the run is terminal
//	GET  /v1/experiments           the registry with task counts; ?full=1&trials=N
//
// A spec names registry experiments by exact ID and may add one synthesized
// epoch-churn scenario:
//
//	{"experiments": ["CHURN-broadcast", "L3.2-hitting"], "trials": 3, "seed": 7}
//	{"scenario": {"side": 4, "seed": 9, "gen": {"epochs": 2, "epochLen": 30, "leaves": 1}}}
//
// An empty spec ({}) runs the whole registry, like `dgbench -all`.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/runsvc"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheDir := flag.String("cache", "", "content-addressed result cache directory (shared with dgbench -cache)")
	inflight := flag.Int("inflight", 2, "maximum concurrently executing runs; submissions beyond it queue")
	flag.Parse()

	svc, err := runsvc.New(runsvc.Options{CacheDir: *cacheDir, MaxInFlight: *inflight})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dgserved:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := &http.Server{Addr: *addr, Handler: newServer(svc)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "dgserved: listening on %s\n", *addr)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "dgserved:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting connections, drain handlers, then
	// wait for in-flight runs so cache writes complete.
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "dgserved: shutdown:", err)
	}
	svc.Close()
}

// newServer builds the daemon's handler around a run service. Split from
// main so tests drive the full HTTP surface through httptest.
func newServer(svc *runsvc.Service) http.Handler {
	s := &server{svc: svc}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.submit)
	mux.HandleFunc("GET /v1/runs", s.list)
	mux.HandleFunc("GET /v1/runs/{id}", s.status)
	mux.HandleFunc("GET /v1/runs/{id}/result", s.result)
	mux.HandleFunc("GET /v1/runs/{id}/events", s.events)
	mux.HandleFunc("GET /v1/experiments", s.catalog)
	return mux
}

type server struct {
	svc *runsvc.Service
}

// submitResponse answers POST /v1/runs. Existing reports content-hash
// deduplication: true means an identical submission already owns this
// identity and the caller was handed that run.
type submitResponse struct {
	ID       string       `json:"id"`
	State    runsvc.State `json:"state"`
	Existing bool         `json:"existing"`
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	spec, err := runsvc.ParseSpec(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	run, existing, err := s.svc.Submit(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	code := http.StatusCreated
	if existing {
		code = http.StatusOK
	}
	writeJSON(w, code, submitResponse{ID: run.ID(), State: run.State(), Existing: existing})
}

func (s *server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.Runs())
}

func (s *server) status(w http.ResponseWriter, r *http.Request) {
	run, ok := s.svc.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no run %s", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, run.Status())
}

// result renders the run's tables. The bytes are produced by the same
// renderer dgbench uses, so a served result is byte-identical to the
// equivalent CLI run's output.
func (s *server) result(w http.ResponseWriter, r *http.Request) {
	run, ok := s.svc.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no run %s", r.PathValue("id")))
		return
	}
	var opts report.Options
	switch format := r.URL.Query().Get("format"); format {
	case "", "text":
	case "markdown":
		opts.Markdown = true
	case "csv":
		opts.CSV = true
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q: want text, markdown or csv", format))
		return
	}
	results, err := run.Results()
	if err != nil {
		// Not merged: either still moving through the lifecycle, or failed.
		writeError(w, http.StatusConflict, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	// Render's summary error restates failing experiments; the table bytes
	// are already written, so it is advisory here.
	_ = report.Render(w, results, opts)
}

// events streams the run's event log as NDJSON: everything so far, then new
// events as they land, closing when the run reaches a terminal state or the
// client goes away.
func (s *server) events(w http.ResponseWriter, r *http.Request) {
	run, ok := s.svc.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no run %s", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	next := 0
	for {
		st, changed := run.Watch()
		for ; next < len(st.Events); next++ {
			if err := enc.Encode(st.Events[next]); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if st.State.Terminal() {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// catalog serves the experiment registry with per-configuration task
// counts: the service-side twin of `dgbench -list -json`.
func (s *server) catalog(w http.ResponseWriter, r *http.Request) {
	cfg := experiments.Config{Quick: true}
	q := r.URL.Query()
	if q.Get("full") == "1" || q.Get("full") == "true" {
		cfg.Quick = false
	}
	if t := q.Get("trials"); t != "" {
		n := 0
		if _, err := fmt.Sscanf(t, "%d", &n); err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("trials %q: want a non-negative integer", t))
			return
		}
		cfg.Trials = n
	}
	entries, err := runsvc.Catalog(cfg, s.svc.Catalog())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, entries)
}

type errorResponse struct {
	Error string `json:"error"`
	// Experiments carries per-experiment structure when the failure is a
	// runsvc.RunError: which experiments failed, at which task indices.
	Experiments []errorExperiment `json:"experiments,omitempty"`
}

type errorExperiment struct {
	ID    string `json:"id"`
	Tasks []int  `json:"tasks,omitempty"`
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	resp := errorResponse{Error: err.Error()}
	var rerr *runsvc.RunError
	if errors.As(err, &rerr) {
		for _, ee := range rerr.Experiments {
			resp.Experiments = append(resp.Experiments, errorExperiment{
				ID: ee.ID, Tasks: ee.Tasks, Error: ee.Err.Error(),
			})
		}
	}
	writeJSON(w, code, resp)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The status line is already out; an encode failure here means the
	// connection is gone.
	_ = enc.Encode(v)
}
