package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/runsvc"
	"repro/internal/shard"
)

// newTestServer builds the daemon's handler over a fresh service, with
// MaxInFlight 1 so submission order is execution order.
func newTestServer(t *testing.T, cacheDir string) (*httptest.Server, *runsvc.Service) {
	t.Helper()
	svc, err := runsvc.New(runsvc.Options{CacheDir: cacheDir, MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(svc))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts, svc
}

const specBody = `{"experiments": ["CHURN-broadcast", "L3.2-hitting"], "trials": 2}`

func submitSpec(t *testing.T, ts *httptest.Server, body string) (submitResponse, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("submit response: %v", err)
	}
	return sr, resp.StatusCode
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode
}

// waitMerged blocks until the run is terminal via the NDJSON event stream —
// the streaming endpoint is itself under test here — then asserts Merged.
func waitMerged(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/runs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var last runsvc.Event
	sc := bufio.NewScanner(resp.Body)
	seq := 0
	for sc.Scan() {
		var ev runsvc.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("event stream line %q: %v", sc.Text(), err)
		}
		if ev.Seq != seq {
			t.Fatalf("event stream out of order: seq %d at position %d", ev.Seq, seq)
		}
		seq++
		last = ev
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if last.State != runsvc.StateMerged {
		t.Fatalf("run ended %s: %s", last.State, last.Msg)
	}
}

// TestServeSubmitPollResult is the end-to-end happy path: submit, stream
// events until merged, fetch the rendered tables in every format, and check
// each one is byte-identical to the in-process renderer's output for the
// same results — the daemon adds transport, never bytes.
func TestServeSubmitPollResult(t *testing.T) {
	ts, svc := newTestServer(t, "")

	sr, code := submitSpec(t, ts, specBody)
	if code != http.StatusCreated {
		t.Fatalf("first submission returned %d, want 201", code)
	}
	if sr.Existing {
		t.Fatal("first submission reported existing")
	}
	waitMerged(t, ts, sr.ID)

	run, ok := svc.Get(sr.ID)
	if !ok {
		t.Fatal("run missing from service")
	}
	results, err := run.Results()
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"text", "markdown", "csv"} {
		resp, err := http.Get(ts.URL + "/v1/runs/" + sr.ID + "/result?format=" + format)
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if _, err := got.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("result %s returned %d: %s", format, resp.StatusCode, got.String())
		}
		var want bytes.Buffer
		_ = report.Render(&want, results, report.Options{Markdown: format == "markdown", CSV: format == "csv"})
		if got.String() != want.String() {
			t.Errorf("served %s differs from renderer\n--- served:\n%s\n--- want:\n%s", format, got.String(), want.String())
		}
	}

	var st runsvc.RunStatus
	if code := getJSON(t, ts.URL+"/v1/runs/"+sr.ID, &st); code != http.StatusOK {
		t.Fatalf("status returned %d", code)
	}
	if st.State != runsvc.StateMerged || len(st.Experiments) != 2 || st.ExecutedTasks == 0 {
		t.Errorf("status = %+v", st)
	}
	for _, es := range st.Experiments {
		if es.Source != "executed" || es.Key == "" {
			t.Errorf("experiment status = %+v", es)
		}
	}

	var runs []runsvc.RunStatus
	if code := getJSON(t, ts.URL+"/v1/runs", &runs); code != http.StatusOK || len(runs) != 1 {
		t.Errorf("run list: code %d, %d runs", code, len(runs))
	}
}

// TestServeDeduplicationAndCache pins the service contract the CI smoke job
// rechecks from outside: resubmitting an identical spec returns the same
// run (200, existing, zero new execution), and a fresh daemon over the same
// cache directory serves the spec with zero executed tasks and byte-identical
// tables.
func TestServeDeduplicationAndCache(t *testing.T) {
	cache := t.TempDir()
	ts, _ := newTestServer(t, cache)

	first, code := submitSpec(t, ts, specBody)
	if code != http.StatusCreated {
		t.Fatalf("first submission returned %d", code)
	}
	waitMerged(t, ts, first.ID)

	again, code := submitSpec(t, ts, specBody)
	if code != http.StatusOK || !again.Existing || again.ID != first.ID {
		t.Fatalf("resubmission: code %d, %+v (want 200, existing, id %s)", code, again, first.ID)
	}
	var st runsvc.RunStatus
	getJSON(t, ts.URL+"/v1/runs/"+first.ID, &st)
	if st.ExecutedTasks == 0 {
		t.Error("cold run executed zero tasks")
	}

	var cold bytes.Buffer
	resp, err := http.Get(ts.URL + "/v1/runs/" + first.ID + "/result?format=markdown")
	if err != nil {
		t.Fatal(err)
	}
	cold.ReadFrom(resp.Body)
	resp.Body.Close()

	// A different daemon, same cache directory: the run executes nothing.
	ts2, _ := newTestServer(t, cache)
	warm, code := submitSpec(t, ts2, specBody)
	if code != http.StatusCreated || warm.Existing {
		t.Fatalf("fresh-daemon submission: code %d, %+v", code, warm)
	}
	if warm.ID != first.ID {
		t.Fatalf("run identity differs across daemons: %s vs %s", warm.ID, first.ID)
	}
	waitMerged(t, ts2, warm.ID)
	var wst runsvc.RunStatus
	getJSON(t, ts2.URL+"/v1/runs/"+warm.ID, &wst)
	if wst.ExecutedTasks != 0 {
		t.Errorf("warm run executed %d tasks, want 0", wst.ExecutedTasks)
	}
	if wst.CachedTasks == 0 {
		t.Error("warm run served no tasks from cache")
	}
	for _, es := range wst.Experiments {
		if es.Source != "cache" {
			t.Errorf("experiment %s source = %q, want cache", es.ID, es.Source)
		}
	}
	var warmOut bytes.Buffer
	resp, err = http.Get(ts2.URL + "/v1/runs/" + warm.ID + "/result?format=markdown")
	if err != nil {
		t.Fatal(err)
	}
	warmOut.ReadFrom(resp.Body)
	resp.Body.Close()
	if warmOut.String() != cold.String() {
		t.Errorf("cache-served tables differ from cold run\n--- cold:\n%s\n--- warm:\n%s", cold.String(), warmOut.String())
	}
}

// TestServeValidation covers the 4xx surface: malformed and invalid specs,
// unknown runs, premature results, bad formats.
func TestServeValidation(t *testing.T) {
	ts, _ := newTestServer(t, "")

	for _, tc := range []struct {
		name, body, want string
	}{
		{"not json", `nonsense`, "invalid"},
		{"unknown field", `{"experiemnts": ["L3.2-hitting"]}`, "unknown field"},
		{"unknown experiment", `{"experiments": ["F1"]}`, `unknown experiment "F1"`},
		{"bad scenario", `{"scenario": {"side": 1}}`, "side 1"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			var er errorResponse
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(er.Error, tc.want) {
				t.Errorf("error %q, want mention of %q", er.Error, tc.want)
			}
		})
	}

	for _, path := range []string{"/v1/runs/deadbeef", "/v1/runs/deadbeef/result", "/v1/runs/deadbeef/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s returned %d, want 404", path, resp.StatusCode)
		}
	}

	sr, _ := submitSpec(t, ts, specBody)
	resp, err := http.Get(ts.URL + "/v1/runs/" + sr.ID + "/result?format=yaml")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format returned %d, want 400", resp.StatusCode)
	}
	waitMerged(t, ts, sr.ID)
}

// gatedRunner holds Execute until released, so tests can observe a run in a
// non-terminal state without racing the (fast) quick experiments.
type gatedRunner struct {
	runsvc.EngineRunner
	release chan struct{}
}

func (g gatedRunner) Execute(cfg experiments.Config, exps []experiments.Experiment, index, count int) (*shard.Artifact, error) {
	<-g.release
	return g.EngineRunner.Execute(cfg, exps, index, count)
}

// TestServeResultBeforeMerged gates execution so the run is pinned
// mid-lifecycle, and expects 409 from the result endpoint until it merges.
func TestServeResultBeforeMerged(t *testing.T) {
	gate := gatedRunner{release: make(chan struct{})}
	svc, err := runsvc.New(runsvc.Options{Runner: gate, MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(svc))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})

	sr, code := submitSpec(t, ts, `{"experiments": ["CHURN-broadcast"], "trials": 2}`)
	if code != http.StatusCreated {
		t.Fatalf("submission returned %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/runs/" + sr.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("result before merged returned %d (%s), want 409", resp.StatusCode, body.String())
	}
	close(gate.release)
	waitMerged(t, ts, sr.ID)
}

// TestServeCatalog checks the registry endpoint and its configuration
// query parameters.
func TestServeCatalog(t *testing.T) {
	ts, _ := newTestServer(t, "")

	var entries []runsvc.CatalogEntry
	if code := getJSON(t, ts.URL+"/v1/experiments", &entries); code != http.StatusOK {
		t.Fatalf("catalog returned %d", code)
	}
	if len(entries) != len(experiments.All()) {
		t.Errorf("catalog has %d entries, registry has %d", len(entries), len(experiments.All()))
	}
	byID := map[string]runsvc.CatalogEntry{}
	for _, e := range entries {
		if e.ID == "" || e.Tasks <= 0 || !e.Quick {
			t.Errorf("bad entry %+v", e)
		}
		byID[e.ID] = e
	}

	var trialed []runsvc.CatalogEntry
	getJSON(t, ts.URL+"/v1/experiments?trials=3", &trialed)
	for _, e := range trialed {
		if e.Trials != 3 {
			t.Errorf("entry %s trials = %d, want 3", e.ID, e.Trials)
		}
		if base, ok := byID[e.ID]; ok && base.Trials != 0 && e.Tasks == base.Tasks && base.Trials == e.Trials {
			t.Errorf("entry %s ignored the trials override", e.ID)
		}
	}

	var full []runsvc.CatalogEntry
	getJSON(t, ts.URL+"/v1/experiments?full=1", &full)
	for _, e := range full {
		if e.Quick {
			t.Errorf("full catalog entry %s still quick", e.ID)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/experiments?trials=-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative trials returned %d, want 400", resp.StatusCode)
	}
}

// TestServeScenarioRun submits a synthesized scenario through the HTTP
// surface and checks the run merges with the scenario experiment present.
func TestServeScenarioRun(t *testing.T) {
	ts, _ := newTestServer(t, "")

	body := `{"trials": 2, "scenario": {"side": 3, "seed": 11, "gen": {"epochs": 1, "epochLen": 10, "leaves": 1}}}`
	sr, code := submitSpec(t, ts, body)
	if code != http.StatusCreated {
		t.Fatalf("scenario submission returned %d", code)
	}
	waitMerged(t, ts, sr.ID)
	var st runsvc.RunStatus
	getJSON(t, ts.URL+"/v1/runs/"+sr.ID, &st)
	if len(st.Experiments) != 1 || !strings.HasPrefix(st.Experiments[0].ID, "CUSTOM-churn-") {
		t.Errorf("scenario run experiments = %+v", st.Experiments)
	}
	resp, err := http.Get(ts.URL + "/v1/runs/" + sr.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(out.String(), "CUSTOM-churn-") {
		t.Errorf("scenario result missing custom experiment:\n%s", out.String())
	}
}
