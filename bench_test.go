// Package repro's root benchmarks regenerate every Figure-1 cell and
// supporting result of the paper. Each benchmark wraps one registered
// experiment (DESIGN.md documents the experiment index and the sweep
// scheduler); ns/op measures one full quick-scale experiment sweep, and the
// measured tables are printed once per benchmark so `go test -bench=.`
// doubles as a results report.
package main

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/experiments"
)

// benchCfg keeps benchmark iterations comparable and fast; the full-scale
// sweep lives in cmd/dgbench -full.
var benchCfg = experiments.Config{Quick: true, Trials: 3}

var printOnce sync.Map

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	for i := 0; i < b.N; i++ {
		res, err := exp.Run(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Table.NumRows() == 0 {
			b.Fatal("empty result table")
		}
		if _, done := printOnce.LoadOrStore(id, true); !done {
			b.StopTimer()
			fmt.Printf("\n--- %s (%s)\n%s", res.ID, res.PaperClaim, res.Table)
			for _, n := range res.Notes {
				fmt.Printf("  %s\n", n)
			}
			b.StartTimer()
		}
	}
}

// BenchmarkF1StaticGlobal regenerates Figure 1 row 4, global broadcast:
// Θ(D·log(n/D) + log²n) in the protocol model.
func BenchmarkF1StaticGlobal(b *testing.B) { benchExperiment(b, "F1-static-global") }

// BenchmarkF1StaticLocal regenerates Figure 1 row 4, local broadcast:
// Θ(log n · log Δ) in the protocol model.
func BenchmarkF1StaticLocal(b *testing.B) { benchExperiment(b, "F1-static-local") }

// BenchmarkF1OfflineGlobal regenerates Figure 1 row 1, global broadcast:
// Ω(n) on the dual clique against the offline adaptive jammer.
func BenchmarkF1OfflineGlobal(b *testing.B) { benchExperiment(b, "F1-offline-global") }

// BenchmarkF1OfflineLocal regenerates Figure 1 row 1, local broadcast: Ω(n).
func BenchmarkF1OfflineLocal(b *testing.B) { benchExperiment(b, "F1-offline-local") }

// BenchmarkF1OnlineGlobal regenerates Figure 1 row 2, global broadcast:
// Ω(n/log n) against the Theorem 3.1 dense/sparse adversary.
func BenchmarkF1OnlineGlobal(b *testing.B) { benchExperiment(b, "F1-online-global") }

// BenchmarkF1OnlineLocal regenerates Figure 1 row 2, local broadcast:
// Ω(n/log n).
func BenchmarkF1OnlineLocal(b *testing.B) { benchExperiment(b, "F1-online-local") }

// BenchmarkF1ObliviousGlobal regenerates Figure 1 row 3, global broadcast:
// O(D·log n + log²n) via permuted decay (Theorem 4.1), with plain decay as
// the stalled contrast.
func BenchmarkF1ObliviousGlobal(b *testing.B) { benchExperiment(b, "F1-oblivious-global") }

// BenchmarkF1ObliviousLocalGeneral regenerates Figure 1 row 3, local
// broadcast on general graphs: Ω(√n/log n) on the bracelet (Theorem 4.3).
func BenchmarkF1ObliviousLocalGeneral(b *testing.B) {
	benchExperiment(b, "F1-oblivious-local-general")
}

// BenchmarkF1ObliviousLocalGeo regenerates Figure 1 row 3, local broadcast
// on geographic graphs: O(log²n · log Δ) (Theorem 4.6).
func BenchmarkF1ObliviousLocalGeo(b *testing.B) { benchExperiment(b, "F1-oblivious-local-geo") }

// BenchmarkHittingUniform regenerates the Lemma 3.2 bound check.
func BenchmarkHittingUniform(b *testing.B) { benchExperiment(b, "L3.2-hitting") }

// BenchmarkHittingReduction regenerates the Theorem 3.1 reduction run.
func BenchmarkHittingReduction(b *testing.B) { benchExperiment(b, "T3.1-reduction") }

// BenchmarkLemma42 regenerates the permuted decay delivery probability
// check (Lemma 4.2).
func BenchmarkLemma42(b *testing.B) { benchExperiment(b, "L4.2-permdecay") }

// BenchmarkAblationPermutation regenerates the permutation-bit ablation.
func BenchmarkAblationPermutation(b *testing.B) { benchExperiment(b, "ABL-permutation") }

// BenchmarkAblationSeeds regenerates the seed-sharing ablation.
func BenchmarkAblationSeeds(b *testing.B) { benchExperiment(b, "ABL-seeds") }

// BenchmarkExtGossip regenerates the k-rumor spreading extension study
// (the paper's stated future work).
func BenchmarkExtGossip(b *testing.B) { benchExperiment(b, "EXT-gossip") }

// BenchmarkExtLeader regenerates the leader election extension study.
func BenchmarkExtLeader(b *testing.B) { benchExperiment(b, "EXT-leader") }

// BenchmarkAdvChurnWindow regenerates the churn-window adversary race:
// static vs churn-blind vs churn-exploiting link processes under storm
// epochs.
func BenchmarkAdvChurnWindow(b *testing.B) { benchExperiment(b, "ADV-churnwindow") }

// BenchmarkRegistrySharedPool runs the whole registry through one shared
// worker pool (the `dgbench -all` path): every (experiment × sweep-point ×
// trial) triple lands in one work queue, so ns/op tracks how the full quick
// suite scales with cores.
func BenchmarkRegistrySharedPool(b *testing.B) {
	all := experiments.All()
	for i := 0; i < b.N; i++ {
		results, errs := experiments.RunAll(benchCfg, all)
		for j, err := range errs {
			if err != nil {
				b.Fatalf("%s: %v", all[j].ID, err)
			}
		}
		for j, res := range results {
			if res.Table.NumRows() == 0 {
				b.Fatalf("%s: empty result table", all[j].ID)
			}
		}
	}
}
