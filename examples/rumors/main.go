// Rumors: the paper's future work, running — k-rumor spreading and leader
// election in the dual graph model.
//
// Four rumor sources on a lossy dual clique must get their rumors to every
// node. The TDM algorithm time-multiplexes k permuted-decay broadcasts, one
// rumor per slot, each coordinated by bits its origin drew at runtime (the
// Section 4.1 defense applied per rumor). Then the same machinery elects a
// leader: every node relays the highest rank it has heard, and the execution
// completes when the true maximum's claim has reached everyone.
package main

import (
	"fmt"
	"log"

	"repro/internal/adversary"
	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/viz"
)

func main() {
	const n = 256
	net, _ := graph.DualClique(n, 3)
	link := adversary.RandomLoss{P: 0.5}

	// Part 1: k-rumor spreading, k = 1, 2, 4.
	fmt.Println("k-rumor spreading on a lossy dual clique (n=256):")
	tb := stats.NewTable("k", "median rounds", "rounds/k", "solved")
	for _, k := range []int{1, 2, 4} {
		sources := make([]graph.NodeID, k)
		for i := range sources {
			sources[i] = graph.NodeID(i * n / (2 * k))
		}
		var rounds []float64
		solved := 0
		const trials = 5
		for seed := uint64(1); seed <= trials; seed++ {
			res, err := radio.Run(radio.Config{
				Net:            net,
				Algorithm:      gossip.TDM{},
				Spec:           radio.Spec{Problem: radio.Gossip, Sources: sources},
				Link:           link,
				Seed:           seed,
				MaxRounds:      4000 * n,
				UseCliqueCover: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			if res.Solved {
				solved++
			}
			rounds = append(rounds, float64(res.Rounds))
		}
		med := stats.Summarize(rounds).Median
		tb.AddRow(k, med, med/float64(k), fmt.Sprintf("%d/%d", solved, trials))
	}
	fmt.Println(tb)

	// Part 2: leader election with a progress curve.
	alg := gossip.LeaderElect{RankSeed: 2026}
	leader := alg.Leader(n)
	res, err := radio.Run(radio.Config{
		Net:            net,
		Algorithm:      alg,
		Spec:           radio.Spec{Problem: radio.GlobalBroadcast, Source: leader},
		Link:           link,
		Seed:           9,
		MaxRounds:      400 * n,
		UseCliqueCover: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	curve := trace.ProgressFromResult(res)
	counts := make([]float64, len(curve.Counts))
	for i, c := range curve.Counts {
		counts[i] = float64(c)
	}
	fmt.Printf("leader election: node %d (rank 0x%x) elected in %d rounds\n", leader, alg.Rank(leader), res.Rounds)
	fmt.Printf("adoption curve: %s\n", viz.Sparkline(counts, 60))
	fmt.Printf("half the network knew the leader by round %d\n", curve.TimeToFraction(0.5))
}
