// Hittinggame: the Theorem 3.1 lower-bound machinery, played out.
//
// The β-hitting game: an adversary hides a target t ∈ [β]; a player guesses
// one value per round and learns nothing between guesses. Lemma 3.2 says no
// player can win the k-round game with probability above k/(β−1).
//
// Theorem 3.1 turns any fast dual-clique broadcast algorithm into a fast
// hitting player: the player simulates the algorithm on a bridgeless dual
// clique (it does not know where the hidden bridge is), labels rounds
// dense/sparse from the expected transmitter count, and guesses sparse-round
// transmitters. Because Lemma 3.2 caps how fast any player can win, no
// algorithm can beat Ω(n/log n) rounds against the online adaptive
// adversary. This example runs both halves of that argument.
package main

import (
	"fmt"

	"repro/internal/bitrand"
	"repro/internal/core"
	"repro/internal/hitting"
	"repro/internal/radio"
	"repro/internal/stats"
)

func main() {
	const beta = 64
	const trials = 300
	rng := bitrand.New(11)

	// Half 1: Lemma 3.2. The uniform player's empirical win rate stays
	// under k/(β−1).
	fmt.Printf("Lemma 3.2 — uniform player on β=%d (%d games per k):\n", beta, trials)
	tb := stats.NewTable("k", "win rate", "bound k/(β−1)")
	for _, k := range []int{4, 16, 32} {
		wins := 0
		for i := 0; i < trials; i++ {
			target := rng.Intn(beta)
			if hitting.Play(beta, target, k, &hitting.UniformPlayer{Beta: beta}, rng).Won {
				wins++
			}
		}
		tb.AddRow(k, float64(wins)/trials, float64(k)/float64(beta-1))
	}
	fmt.Println(tb)

	// Half 2: Theorem 3.1. The simulation player wraps a broadcast
	// algorithm and wins within O(f(2β)·log β) guesses.
	fmt.Printf("Theorem 3.1 — simulation players on β=%d:\n", beta)
	tb2 := stats.NewTable("algorithm", "problem", "wins", "median guesses", "median sim rounds")
	for _, tc := range []struct {
		alg     radio.Algorithm
		problem radio.Problem
	}{
		{core.RoundRobin{}, radio.LocalBroadcast},
		{core.DecayGlobal{}, radio.GlobalBroadcast},
	} {
		const games = 40
		wins := 0
		var guesses, sims []float64
		for i := 0; i < games; i++ {
			p := &hitting.SimulationPlayer{
				Algorithm: tc.alg,
				Beta:      beta,
				Problem:   tc.problem,
				Seed:      uint64(i),
			}
			target := (i * 13) % beta
			out := hitting.Play(beta, target, 1<<22, p, bitrand.New(uint64(i)))
			if out.Won {
				wins++
				guesses = append(guesses, float64(out.Guesses))
				sims = append(sims, float64(out.SimRounds))
			}
		}
		tb2.AddRow(tc.alg.Name(), tc.problem.String(),
			fmt.Sprintf("%d/%d", wins, games),
			stats.Summarize(guesses).Median, stats.Summarize(sims).Median)
	}
	fmt.Println(tb2)
	fmt.Println("A fast broadcast algorithm would make these players beat Lemma 3.2 — impossible;")
	fmt.Println("hence broadcast needs Ω(n/log n) rounds against the online adaptive adversary.")
}
