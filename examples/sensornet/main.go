// Sensornet: local broadcast in a simulated sensor deployment.
//
// A 12×12 jittered grid of sensors forms a geographic dual graph: nodes
// within unit range are reliable neighbors, nodes in the grey zone (up to
// r = 1.5) connect intermittently under adversarial control. Every third
// sensor holds a fresh reading to announce to its neighbors.
//
// We compare three local broadcast strategies under an oblivious adversary:
//
//   - geo-local (§4.3): leader-elected shared seeds coordinate neighborhoods
//   - round robin: the adversary-proof but Θ(n) baseline
//   - decay-local [8]: optimal in the protocol model, attackable through its
//     fixed schedule
//
// The paper's promise (Theorem 4.6) is that geo-local stays polylogarithmic
// in the deployment size while round robin pays Θ(n): geo-local's rounds
// barely move as the deployment grows 4× and 9×, while round robin's grow
// in lockstep with n. (At a few hundred sensors round robin is still ahead
// on absolute rounds — polylog constants are real — but its linear growth
// loses at scale.)
package main

import (
	"fmt"
	"log"

	"repro/internal/adversary"
	"repro/internal/bitrand"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/stats"
)

func main() {
	tb := stats.NewTable("algorithm", "n", "Δ", "median rounds", "rounds/n", "solved")
	for _, side := range []int{12, 24, 36} {
		net := graph.GeographicGrid(bitrand.New(3), side, side, 0.7, 1.5)
		if side == 12 {
			regions, err := graph.NewRegions(net)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("deployment (side %d): n=%d sensors, Δ=%d, %d regions (γ_r=%d, theoretical bound %d)\n\n",
				side, net.N(), net.MaxDegree(), regions.NumRegions(), regions.GammaR,
				graph.TheoreticalGammaBound(net.Radius()))
		}
		var readings []graph.NodeID
		for u := 0; u < net.N(); u += 3 {
			readings = append(readings, u)
		}
		spec := radio.Spec{Problem: radio.LocalBroadcast, Broadcasters: readings}

		for _, alg := range []radio.Algorithm{
			core.GeoLocal{},
			core.RoundRobin{},
		} {
			var rounds []float64
			solved := 0
			const trials = 3
			for seed := uint64(1); seed <= trials; seed++ {
				res, err := radio.Run(radio.Config{
					Net:       net,
					Algorithm: alg,
					Spec:      spec,
					Link:      adversary.RandomLoss{P: 0.5},
					Seed:      seed,
					MaxRounds: 400 * net.N(),
				})
				if err != nil {
					log.Fatal(err)
				}
				if res.Solved {
					solved++
				}
				rounds = append(rounds, float64(res.Rounds))
			}
			s := stats.Summarize(rounds)
			tb.AddRow(alg.Name(), net.N(), net.MaxDegree(), s.Median, s.Median/float64(net.N()),
				fmt.Sprintf("%d/%d", solved, trials))
		}
	}
	fmt.Println(tb)
	logN := bitrand.LogN(36 * 36)
	fmt.Printf("geo-local's rounds/n falls as n grows (polylog, Theorem 4.6); round robin's stays ≈1 (Θ(n)).\n")
	fmt.Printf("reference: log²n at n=%d is %d\n", 36*36, logN*logN)
}
