// Adaptive attack: the paper's central separation, live.
//
// On the dual clique network (two reliable cliques joined by one reliable
// bridge, everything else unreliable) we pit two algorithms against two
// adversaries:
//
//   - plain decay [2]: fixed, publicly known probability schedule
//   - permuted decay (§4.1): schedule driven by bits the source draws at
//     runtime
//
// against
//
//   - the online adaptive dense/sparse adversary (Theorem 3.1), which reads
//     the expected transmitter count from the nodes' states each round
//   - the oblivious sampling adversary (Theorem 4.3 machinery), which must
//     commit its schedule before round 1 from presimulations
//
// The outcome reproduces Figure 1's middle rows: the online adaptive
// adversary stalls both algorithms (~linear rounds), while the oblivious
// adversary stalls only plain decay — permuted decay stays polylogarithmic.
//
// Part two extends the separation into the churn regime: on a network whose
// base has no unreliable fringe at all (G' = G), epoch-driven interference
// storms transiently open the G-vs-G' gap, and the churn-window adversary —
// which reads the scenario's degradation metadata and smothers only while
// the topology is degraded — strictly slows broadcast where the same
// machinery pointed at the healthy epochs (the churn-blind control) achieves
// exactly nothing.
package main

import (
	"fmt"
	"log"

	"repro/internal/adversary"
	"repro/internal/bitrand"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/scenario"
	"repro/internal/stats"
)

func main() {
	const n = 2048
	const trials = 3
	net, markers := graph.DualClique(n, 3)
	fmt.Printf("dual clique: n=%d, bridge %d–%d, G' complete\n\n", n, markers.TA, markers.TB)

	algs := []radio.Algorithm{core.DecayGlobal{}, core.PermutedGlobal{}}
	advs := []struct {
		name string
		link any
	}{
		{"(protocol model)", nil},
		{"oblivious sampling", adversary.Presample{C: 1, Horizon: 4 * n}},
		{"online adaptive", adversary.DenseSparse{C: 1}},
	}

	tb := stats.NewTable("algorithm", "adversary", "median rounds")
	for _, alg := range algs {
		for _, adv := range advs {
			var rounds []float64
			for seed := uint64(1); seed <= trials; seed++ {
				res, err := radio.Run(radio.Config{
					Net:            net,
					Algorithm:      alg,
					Spec:           radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
					Link:           adv.link,
					Seed:           seed,
					MaxRounds:      400 * n,
					UseCliqueCover: true,
				})
				if err != nil {
					log.Fatal(err)
				}
				rounds = append(rounds, float64(res.Rounds))
			}
			tb.AddRow(alg.Name(), adv.name, stats.Summarize(rounds).Median)
		}
	}
	fmt.Println(tb)
	fmt.Println("Figure 1 reproduced: adaptivity is what makes unreliable links expensive;")
	fmt.Println("runtime randomness (permuted decay) neutralizes the oblivious adversary only.")
	fmt.Println()
	churnWindowDemo()
}

// churnWindowDemo is the churn-regime extension: the same separation logic,
// but in time instead of in information. Two reliable cliques with one
// reliable bridge and G' = G; ten storm epochs flare transient unreliable
// links; the adversary that knows *when* wins.
func churnWindowDemo() {
	const n = 512
	const trials = 3
	base := graph.TwoCliques(n)

	sc, err := scenario.Generate(base, bitrand.New(3000+n), scenario.GenConfig{
		Epochs:    10,
		EpochLen:  2 * bitrand.LogN(n),
		Demotions: 8,
		Storms:    6 * n,
		Protected: []graph.NodeID{0},
	})
	if err != nil {
		log.Fatal(err)
	}
	epochs, err := sc.Compile()
	if err != nil {
		log.Fatal(err)
	}
	wins := sc.DegradedWindows()
	fmt.Printf("churn windows: two reliable %d-cliques, one bridge, G' = G; %d storm epochs\n\n", n/2, len(sc.Epochs)-1)

	tb := stats.NewTable("adversary", "median rounds")
	for _, adv := range []struct {
		name string
		link any
	}{
		{"(no adversary)", nil},
		{"churn-blind (inverted windows)", adversary.ChurnWindowOffline{Windows: wins, Invert: true}},
		{"churn-window online", adversary.ChurnWindow{Windows: wins, C: 1}},
		{"churn-window offline", adversary.ChurnWindowOffline{Windows: wins}},
	} {
		var rounds []float64
		for seed := uint64(1); seed <= trials; seed++ {
			res, err := radio.Run(radio.Config{
				Epochs:    epochs,
				Algorithm: core.DecayGlobal{},
				Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
				Link:      adv.link,
				Seed:      seed,
				MaxRounds: 400 * n,
			})
			if err != nil {
				log.Fatal(err)
			}
			rounds = append(rounds, float64(res.Rounds))
		}
		tb.AddRow(adv.name, stats.Summarize(rounds).Median)
	}
	fmt.Println(tb)
	fmt.Println("The blind row matches the no-adversary row exactly: outside the degraded")
	fmt.Println("epochs there is no E'\\E to select from. Timing is the whole attack.")
}
