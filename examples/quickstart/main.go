// Quickstart: build a dual graph network, run the paper's oblivious-model
// global broadcast algorithm (permuted decay, Section 4.1) against an
// i.i.d. random link adversary, and print what happened.
package main

import (
	"fmt"
	"log"

	"repro/internal/adversary"
	"repro/internal/bitrand"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
)

func main() {
	// A dual graph (G, G'): G is a random geographic unit disk graph whose
	// links always work; G' adds "grey zone" links (distance in (1, r]) that
	// appear and disappear under adversarial control.
	net := graph.Geographic(bitrand.New(7), graph.GeographicConfig{
		N:        200,
		Side:     7,
		Radius:   2,
		GreyProb: 1,
	})
	fmt.Printf("network: n=%d, reliable edges=%d, unreliable edges=%d, Δ=%d, diameter≈%d\n",
		net.N(), net.G().NumEdges(), net.NumExtraEdges(), net.MaxDegree(),
		graph.DiameterApprox(net.G()))

	// Run global broadcast from node 0. The source appends fresh random bits
	// to its message; receivers use them to permute their decay schedules,
	// which is what defeats an oblivious adversary (Theorem 4.1).
	res, err := radio.Run(radio.Config{
		Net:       net,
		Algorithm: core.PermutedGlobal{},
		Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
		Link:      adversary.RandomLoss{P: 0.5}, // each grey link is up half the time
		Seed:      42,
		MaxRounds: 100 * net.N(),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("solved=%v rounds=%d transmissions=%d\n", res.Solved, res.Rounds, res.Transmissions)
	last, lastAt := 0, 0
	for u, at := range res.InformedAt {
		if at > lastAt {
			last, lastAt = u, at
		}
	}
	fmt.Printf("last node informed: %d at round %d\n", last, lastAt)
}
