package experiments

import (
	"testing"
)

// TestChurnFamilyWorkerDeterminism pins the scenario-layer experiments to
// the scheduler's worker-count invariant at the acceptance bounds: forced
// sequential (Workers: 1) and heavily parallel (Workers: 64) runs must
// produce byte-identical tables, notes, and series. Epoch swaps and
// injections happen inside trials, so nothing about the schedule may leak
// across the worker pool.
func TestChurnFamilyWorkerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite")
	}
	for _, id := range []string{"ADV-churnwindow", "CHURN-broadcast", "CHURN-gossip", "EXT-contention"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			exp, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %q not registered", id)
			}
			seqRes, err := exp.Run(Config{Quick: true, Trials: 2, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			parRes, err := exp.Run(Config{Quick: true, Trials: 2, Workers: 64})
			if err != nil {
				t.Fatal(err)
			}
			seq, par := resultFingerprint(seqRes), resultFingerprint(parRes)
			if seq != par {
				t.Fatalf("output diverges between Workers:1 and Workers:64\n--- sequential:\n%s\n--- parallel:\n%s", seq, par)
			}
		})
	}
}
