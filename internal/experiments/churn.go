package experiments

// The CHURN-*/EXT-contention family: epoch-driven scenario workloads. Where
// every Figure 1 experiment runs one immutable network and one problem
// instance to completion, these stress the engine's scenario layer — the
// topology changes underneath a running execution (node departures and
// rejoins, reliable links demoted to adversarial for an epoch, drift in the
// unreliable fringe), and fresh rumors are injected mid-run so messages
// contend for the channel. Scenarios are generated deterministically from
// fixed seeds and compiled once per sweep point, so every trial shares the
// precompiled revisions and the experiments inherit all the scheduler's
// invariants: byte-identical output at any worker count and under any
// shard/merge partition.

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/bitrand"
	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/scenario"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:         "CHURN-broadcast",
		Title:      "Churn: global broadcast across topology epochs",
		PaperClaim: "decay-style broadcast is self-stabilizing under transient node/edge churn; completion survives every epoch schedule",
		Run:        runChurnBroadcast,
	})
	register(Experiment{
		ID:         "CHURN-gossip",
		Title:      "Churn: k-rumor gossip across topology epochs",
		PaperClaim: "TDM gossip tolerates transient departures and demotions; churned completion is bounded by a small factor over static",
		Run:        runChurnGossip,
	})
	register(Experiment{
		ID:         "EXT-contention",
		Title:      "Extension: multi-message contention via staggered rumor injection",
		PaperClaim: "per-rumor sojourn under TDM grows with the number of live rumors; all rumors complete despite contention",
		Run:        runContention,
	})
}

// churnScenario builds the deterministic churn timeline one sweep point
// runs under: every trial of the point shares the compiled revisions.
func churnScenario(net *graph.Dual, seed uint64, gen scenario.GenConfig) ([]radio.Epoch, []radio.Injection, error) {
	sc, err := scenario.Generate(net, bitrand.New(seed), gen)
	if err != nil {
		return nil, nil, err
	}
	epochs, err := sc.Compile()
	if err != nil {
		return nil, nil, err
	}
	return epochs, sc.Injections, nil
}

func runChurnBroadcast(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "CHURN-broadcast",
		Title:      "Global broadcast under epoch churn (decay)",
		PaperClaim: "completes in every trial; churn slows but never stalls dissemination",
		Table:      stats.NewTable("schedule", "n", "epochs", "median", "p90", "solved"),
	}
	trials := cfg.trials()
	sides := []int{5}
	if !cfg.Quick {
		sides = []int{5, 8, 12}
	}
	res.Pass = true
	var ns, churned []float64
	sw := newSweep(cfg)
	for _, side := range sides {
		net := geoGridNet(side, 77)
		n := net.N()
		// Epoch length is a couple of decay sweeps, so the first churn epoch
		// lands well inside the execution (static completion is a few sweeps);
		// every epoch churns nodes and demotes reliable edges, healing one
		// epoch later.
		gen := scenario.GenConfig{
			Epochs:     4,
			EpochLen:   2 * bitrand.LogN(n),
			Leaves:     max(1, n/8),
			Demotions:  max(1, n/8),
			ExtraFlips: 2,
			Protected:  []graph.NodeID{0},
		}
		epochs, _, err := churnScenario(net, 1000+uint64(side), gen)
		if err != nil {
			return nil, err
		}
		for _, sched := range []struct {
			name   string
			epochs []radio.Epoch
		}{
			{"static", nil},
			{"churn", epochs},
		} {
			sched := sched
			sw.point(trials, func(seed uint64) radio.Config {
				c := radio.Config{
					Algorithm: core.DecayGlobal{},
					Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
					Link:      adversary.RandomLoss{P: 0.5},
					Seed:      seed, MaxRounds: 400 * n,
				}
				if sched.epochs == nil {
					c.Net = net
				} else {
					c.Epochs = sched.epochs
				}
				return c
			}, func(out trialOutcome) {
				if out.Solved < out.Trials {
					res.Pass = false
				}
				res.Table.AddRow(sched.name, n, len(sched.epochs), out.MedianRounds, out.P90,
					fmt.Sprintf("%d/%d", out.Solved, out.Trials))
				if sched.name == "churn" {
					ns = append(ns, float64(n))
					churned = append(churned, out.MedianRounds)
				}
			})
		}
	}
	if err := sw.run(); err != nil {
		return nil, err
	}
	res.addSeries("churned median vs n", ns, churned)
	res.Notes = append(res.Notes,
		"epoch schedule: 4 churn epochs (leaves + demotions, healed one epoch later) and a healing epoch; static rows share seeds with churned rows",
		verdict(res.Pass))
	return res, nil
}

func runChurnGossip(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "CHURN-gossip",
		Title:      "k-rumor gossip under epoch churn (TDM)",
		PaperClaim: "every rumor reaches every node once churn heals; slowdown vs static stays modest",
		Table:      stats.NewTable("schedule", "n", "k", "median", "median/static", "solved"),
	}
	trials := cfg.trials()
	sides := []int{4}
	ks := []int{1, 2}
	if !cfg.Quick {
		sides = []int{4, 6}
		ks = []int{1, 2, 4}
	}
	res.Pass = true
	sw := newSweep(cfg)
	for _, side := range sides {
		net := geoGridNet(side, 21)
		n := net.N()
		for _, k := range ks {
			k := k
			sources := make([]graph.NodeID, k)
			for i := range sources {
				sources[i] = i * (n / k)
			}
			// One epoch ≈ one per-rumor permuted-decay block (k slots per
			// subsequence round), so every trial crosses several churn
			// boundaries before completing.
			gen := scenario.GenConfig{
				Epochs:     3,
				EpochLen:   4 * k * bitrand.LogN(n),
				Leaves:     max(1, n/8),
				Demotions:  max(1, n/8),
				ExtraFlips: 1,
				Protected:  sources,
			}
			epochs, _, err := churnScenario(net, 2000+uint64(100*side+k), gen)
			if err != nil {
				return nil, err
			}
			spec := radio.Spec{Problem: radio.Gossip, Sources: sources}
			var staticMed float64
			for _, sched := range []struct {
				name   string
				epochs []radio.Epoch
			}{
				{"static", nil},
				{"churn", epochs},
			} {
				sched := sched
				sw.point(trials, func(seed uint64) radio.Config {
					c := radio.Config{
						Algorithm: gossip.TDM{},
						Spec:      spec,
						Link:      adversary.RandomLoss{P: 0.5},
						Seed:      seed, MaxRounds: 2000 * n,
					}
					if sched.epochs == nil {
						c.Net = net
					} else {
						c.Epochs = sched.epochs
					}
					return c
				}, func(out trialOutcome) {
					if out.Solved < out.Trials {
						res.Pass = false
					}
					ratio := 1.0
					if sched.name == "churn" {
						// The static sibling's aggregation fired first
						// (declaration order); a zero median means that
						// contract broke, and a silent 0.00 ratio would hide
						// it from the byte-identity tests.
						if staticMed <= 0 {
							panic("experiments: CHURN-gossip churn row aggregated before its static sibling")
						}
						ratio = out.MedianRounds / staticMed
					} else {
						staticMed = out.MedianRounds
					}
					res.Table.AddRow(sched.name, n, k, out.MedianRounds, ratio,
						fmt.Sprintf("%d/%d", out.Solved, out.Trials))
				})
			}
		}
	}
	if err := sw.run(); err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes,
		"churned rows run the same seeds as their static siblings; median/static is the churn slowdown factor",
		verdict(res.Pass))
	return res, nil
}

// runContention measures multi-message contention on a static network:
// beyond the round-0 rumor, k-1 rumors are injected at staggered rounds, and
// the tracked quantity is per-rumor sojourn — completion round minus
// injection round — as the channel fills up. Tasks record raw
// (rounds, solved, max sojourn) vectors, so sharded merges replay exactly.
func runContention(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "EXT-contention",
		Title:      "Multi-message contention (staggered TDM injections)",
		PaperClaim: "all rumors complete; sojourn reflects time-division across live rumors",
		Table:      stats.NewTable("n", "rumors", "stagger", "median rounds", "median max-sojourn", "solved"),
	}
	trials := cfg.trials()
	if trials < 3 {
		trials = 3
	}
	sizes := []int{32}
	ks := []int{1, 2, 4}
	if !cfg.Quick {
		sizes = []int{32, 64}
		ks = []int{1, 2, 4, 8}
	}
	res.Pass = true
	var kXs, kSoj []float64
	sw := newSweep(cfg)
	for _, n := range sizes {
		d, _ := graph.DualClique(n, 3)
		for _, k := range ks {
			k := k
			n := n
			stagger := 8 * bitrand.LogN(n)
			spec := radio.Spec{Problem: radio.Gossip, Sources: []graph.NodeID{0}}
			for j := 1; j < k; j++ {
				spec.Injections = append(spec.Injections, radio.Injection{
					Source: j * (n / (2 * k)),
					Round:  j * stagger,
				})
			}
			maxRounds := 4000 * n
			base := cfg.BaseSeed
			sw.tasks(trials, func(i int) ([]float64, error) {
				r, err := radio.Run(radio.Config{
					Net:       d,
					Algorithm: gossip.TDM{},
					Spec:      spec,
					Link:      adversary.RandomLoss{P: 0.5},
					Seed:      base + uint64(i) + 1,
					MaxRounds: maxRounds, UseCliqueCover: true,
				})
				if err != nil {
					return nil, err
				}
				maxSoj := 0.0
				for idx, done := range r.RumorDoneAt {
					soj := maxRounds - r.RumorStartAt[idx] // censored sojourn
					if done >= 0 {
						soj = done - r.RumorStartAt[idx]
					}
					if float64(soj) > maxSoj {
						maxSoj = float64(soj)
					}
				}
				return []float64{float64(r.Rounds), boolBit(r.Solved), maxSoj}, nil
			}, func(recs []taskRecord) error {
				out, err := aggregateTrials(recs)
				if err != nil {
					return err
				}
				soj := make([]float64, len(recs))
				for i, rec := range recs {
					soj[i] = rec.val(2)
				}
				medSoj := stats.Summarize(soj).Median
				if out.Solved < out.Trials {
					res.Pass = false
				}
				res.Table.AddRow(n, k, stagger, out.MedianRounds, medSoj,
					fmt.Sprintf("%d/%d", out.Solved, out.Trials))
				if n == sizes[len(sizes)-1] {
					kXs = append(kXs, float64(k))
					kSoj = append(kSoj, medSoj)
				}
				return nil
			})
		}
	}
	if err := sw.run(); err != nil {
		return nil, err
	}
	res.addSeries("max sojourn vs rumors (largest n)", kXs, kSoj)
	if len(kSoj) > 1 && kSoj[len(kSoj)-1] <= kSoj[0] {
		// Time-division alone forces sojourn up with contention; a flat or
		// falling curve means injections are not actually contending.
		res.Pass = false
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("sojourn(k=%d)/sojourn(k=1) = %.2f under staggered injection (time-division predicts growth ≈ k)",
			int(kXs[len(kXs)-1]), kSoj[len(kSoj)-1]/max(kSoj[0], 1)),
		verdict(res.Pass))
	return res, nil
}
