package experiments

import (
	"fmt"
	"math"

	"repro/internal/adversary"
	"repro/internal/bitrand"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:         "F1-oblivious-local-general",
		Title:      "Local broadcast vs oblivious adversary, general graphs (bracelet)",
		PaperClaim: "Ω(√n / log n) [Theorem 4.3]",
		Run:        runBracelet,
	})
	register(Experiment{
		ID:         "F1-oblivious-local-geo",
		Title:      "Local broadcast vs oblivious adversary, geographic graphs",
		PaperClaim: "O(log²n · log Δ) via seeded permuted decay [Theorem 4.6]",
		Run:        runObliviousGeoLocal,
	})
}

func runBracelet(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "F1-oblivious-local-general",
		Title:      "Local broadcast on the bracelet network",
		PaperClaim: "Ω(√n / log n)",
		Table:      stats.NewTable("algorithm", "n", "bandLen(√n/2)", "median", "median/√n", "solved"),
	}
	bands := []int{8, 16}
	if !cfg.Quick {
		bands = []int{8, 16, 32}
	}
	var ns, ts []float64
	sw := newSweep(cfg)
	for _, k := range bands {
		d, m := graph.BraceletExplicit(k, k, k/2)
		n := d.N()
		b := append(append([]graph.NodeID(nil), m.AHead...), m.BHead...)
		for _, alg := range []radio.Algorithm{core.Aloha{P: 0.5}, core.PermutedLocalUncoordinated{}} {
			sw.point(cfg.trials(), func(seed uint64) radio.Config {
				return radio.Config{
					Net: d, Algorithm: alg,
					Spec: radio.Spec{Problem: radio.LocalBroadcast, Broadcasters: b},
					Link: adversary.Presample{C: 1, Horizon: m.BandLen},
					Seed: seed, MaxRounds: 100 * n,
				}
			}, func(out trialOutcome) {
				res.Table.AddRow(alg.Name(), n, m.BandLen, out.MedianRounds,
					out.MedianRounds/math.Sqrt(float64(n)), fmt.Sprintf("%d/%d", out.Solved, out.Trials))
				if alg.Name() == "aloha" {
					ns = append(ns, float64(n))
					ts = append(ts, out.MedianRounds)
				}
			})
		}
	}
	if err := sw.run(); err != nil {
		return nil, err
	}
	res.addSeries("aloha on bracelet", ns, ts)
	fit := stats.GrowthExponent(ns, ts)
	res.Notes = append(res.Notes, fmt.Sprintf("aloha on bracelet: T ~ n^%.2f (R²=%.2f); Theorem 4.3 predicts exponent ≈ 0.5 (the √n band-isolation horizon)", fit.Slope, fit.R2))
	res.Pass = fit.Slope > 0.3 && fit.Slope < 0.8
	res.Notes = append(res.Notes, verdict(res.Pass))
	return res, nil
}

func runObliviousGeoLocal(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "F1-oblivious-local-geo",
		Title:      "Seeded local broadcast on geographic graphs",
		PaperClaim: "O(log²n · log Δ)",
		Table:      stats.NewTable("algorithm", "adversary", "n", "Δ", "median", "T/(log²n·logΔ)", "solved"),
	}
	sides := []int{6, 8}
	if !cfg.Quick {
		sides = []int{8, 12, 16}
	}
	var ns, ts []float64
	sw := newSweep(cfg)
	for _, side := range sides {
		net := geoGridNet(side, 55)
		n := net.N()
		delta := net.MaxDegree()
		var b []graph.NodeID
		for u := 0; u < n; u += 2 {
			b = append(b, u)
		}
		links := map[string]any{
			"random-loss": adversary.RandomLoss{P: 0.5},
			"presample":   adversary.Presample{C: 1, Horizon: 2 * n},
		}
		for _, advName := range sortedKeys(links) {
			link := links[advName]
			alg := core.GeoLocal{}
			sw.point(cfg.trials(), func(seed uint64) radio.Config {
				return radio.Config{
					Net: net, Algorithm: alg,
					Spec: radio.Spec{Problem: radio.LocalBroadcast, Broadcasters: b},
					Link: link, Seed: seed, MaxRounds: 400 * n,
				}
			}, func(out trialOutcome) {
				logN := float64(bitrand.LogN(n))
				logD := float64(bitrand.LogN(delta))
				res.Table.AddRow(alg.Name(), advName, n, delta, out.MedianRounds,
					out.MedianRounds/(logN*logN*logD), fmt.Sprintf("%d/%d", out.Solved, out.Trials))
				if advName == "random-loss" {
					ns = append(ns, float64(n))
					ts = append(ts, out.MedianRounds)
				}
			})
		}
	}
	if err := sw.run(); err != nil {
		return nil, err
	}
	res.addSeries("geo-local vs random loss", ns, ts)
	fit := stats.GrowthExponent(ns, ts)
	res.Notes = append(res.Notes, fmt.Sprintf("geo-local: T ~ n^%.2f (R²=%.2f); upper bound predicts polylog growth (exponent near 0)", fit.Slope, fit.R2))
	res.Pass = fit.Slope < 0.5
	res.Notes = append(res.Notes, verdict(res.Pass))
	return res, nil
}
