package experiments

// The ADV-churnwindow family: adversaries against the churn window. The
// scenario opens transient interference storms over a network whose base has
// no unreliable fringe at all (G' = G), so outside the degraded epochs every
// link process is provably powerless — any selector chooses from an empty
// E'\E. The family then races, at shared seeds, the static class against a
// churn-blind adversary (the same window-gated machinery pointed at the
// healthy epochs) and against the churn-exploiting ChurnWindow classes that
// smother only while the topology is degraded. The churn-blind rows come out
// byte-identical to the no-adversary rows — mistimed smothering selects from
// an empty set — while the aligned rows strictly slow completion: the
// dual graph model's G-vs-G' gap is the churn window itself.

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/bitrand"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/scenario"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:         "ADV-churnwindow",
		Title:      "Adversaries vs churn windows (two reliable cliques, storm epochs)",
		PaperClaim: "adaptivity to *when* the topology is degraded — not raw smothering power — is what slows broadcast under churn",
		Run:        runChurnWindowFamily,
	})
}

func runChurnWindowFamily(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "ADV-churnwindow",
		Title:      "Adversaries vs churn windows (storm epochs on two reliable cliques)",
		PaperClaim: "churn-blind smothering ≡ no adversary; churn-aligned smothering strictly slows completion at shared seeds",
		Table:      stats.NewTable("adversary", "n", "median", "p90", "vs blind", "solved"),
	}
	trials := cfg.trials()
	sizes := []int{32, 64}
	if !cfg.Quick {
		sizes = []int{32, 64, 128}
	}
	res.Pass = true
	var ns, ratios []float64
	sw := newSweep(cfg)
	for _, n := range sizes {
		n := n
		// graph.TwoCliques: the dual clique's reliable skeleton with G' = G.
		// No standing unreliable fringe — the only E'\E edges that ever exist
		// are the ones the scenario's storm epochs flare up, so the degraded
		// windows are the adversary's entire attack surface.
		base := graph.TwoCliques(n)
		maxRounds := 400 * n
		// Ten storm epochs of two decay sweeps each: the windows start before
		// the natural bridge crossing and cover its whole distribution, and
		// every epoch flares 6n transient unreliable pairs (the bridge
		// listener gains ~12 interference neighbors) plus a few demotions.
		gen := scenario.GenConfig{
			Epochs:    10,
			EpochLen:  2 * bitrand.LogN(n),
			Demotions: 8,
			Storms:    6 * n,
			Protected: []graph.NodeID{0},
			MaxRounds: maxRounds,
		}
		sc, err := scenario.Generate(base, bitrand.New(3000+uint64(n)), gen)
		if err != nil {
			return nil, err
		}
		epochs, err := sc.Compile()
		if err != nil {
			return nil, err
		}
		wins := sc.DegradedWindows()
		var blindMed float64
		for _, row := range []struct {
			name string
			link any
		}{
			// Declaration order fixes aggregation order: the blind row must
			// aggregate before the aligned rows that report ratios against it.
			{"none", nil},
			{"static-all", adversary.AlwaysAll()},
			{"churn-blind", adversary.ChurnWindowOffline{Windows: wins, Invert: true}},
			{"churnwindow-online", adversary.ChurnWindow{Windows: wins, C: 1}},
			{"churnwindow", adversary.ChurnWindowOffline{Windows: wins}},
		} {
			row := row
			sw.point(trials, func(seed uint64) radio.Config {
				return radio.Config{
					Epochs:    epochs,
					Algorithm: core.DecayGlobal{},
					Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
					Link:      row.link,
					Seed:      seed,
					MaxRounds: maxRounds,
				}
			}, func(out trialOutcome) {
				if out.Solved < out.Trials {
					res.Pass = false
				}
				ratio := 1.0
				switch row.name {
				case "churn-blind":
					blindMed = out.MedianRounds
				case "churnwindow-online", "churnwindow":
					if blindMed <= 0 {
						panic("experiments: ADV-churnwindow aligned row aggregated before its blind sibling")
					}
					ratio = out.MedianRounds / blindMed
					if row.name == "churnwindow" {
						// The acceptance claim: the churn-exploiting offline
						// adversary strictly slows completion vs the
						// churn-blind one at shared seeds.
						if out.MedianRounds <= blindMed {
							res.Pass = false
						}
						ns = append(ns, float64(n))
						ratios = append(ratios, ratio)
					}
				}
				res.Table.AddRow(row.name, n, out.MedianRounds, out.P90, ratio,
					fmt.Sprintf("%d/%d", out.Solved, out.Trials))
			})
		}
	}
	if err := sw.run(); err != nil {
		return nil, err
	}
	res.addSeries("churnwindow/blind slowdown vs n", ns, ratios)
	res.Notes = append(res.Notes,
		"base has G' = G: outside the storm epochs every selector chooses from an empty E'\\E, so the churn-blind rows match the no-adversary rows exactly",
		"all rows share seeds; 'vs blind' is the completion-slowdown factor over the churn-blind control",
		verdict(res.Pass))
	return res, nil
}
