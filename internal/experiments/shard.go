package experiments

// Sharded execution: the sweep scheduler's work queue — every (experiment ×
// sweep-point × trial) task, independently seeded — partitioned across
// machines with no coordination beyond a shared command line. The lifecycle
// has three phases, each a different interpretation of the same declared
// sweeps:
//
//   - plan: run every experiment's declaration code but execute nothing;
//     count the tasks each experiment declares. Every process derives the
//     same plan (experiments are sorted by ID, declaration order is code
//     order), so a task's global index — its experiment's plan offset plus
//     its declaration index — is a cross-machine invariant. Shard i of K
//     owns the tasks whose global index ≡ i-1 (mod K): a stable round-robin
//     partition, no hashing of map order anywhere.
//   - execute: run only the owned tasks (still through this machine's
//     bounded worker pool) and capture their records; aggregation does not
//     fire, because this process holds only a subset of each point's
//     records. The records become a shard.Artifact.
//   - merge: load the validated union of every shard's records, inject them
//     into the declared sweeps, and replay the aggregation closures on one
//     goroutine in declaration order — exactly the path an unsharded run
//     takes after its pool drains. Because aggregation consumes raw task
//     records either way, merged output is byte-identical to a
//     single-machine run at the same seeds, for any K and any assignment.
//
// Plan and execute phases abort each experiment's Run with errPhaseDone
// right after its sweep is declared (resp. executed): the table/notes code
// after sweep.run() would read aggregation state that those phases never
// fill. This assumes an experiment declares all its tasks in a single sweep
// — true for every registered experiment, and violations fail loudly at
// merge (the extra sweep's tasks are missing from every artifact).

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/shard"
)

// errPhaseDone aborts an experiment's Run after its sweep has served a
// plan or execute phase; the sharded runners treat it as success.
var errPhaseDone = errors.New("experiments: sharded phase complete")

type shardPhase int

const (
	phasePlan shardPhase = iota + 1
	phaseExecute
	phaseMerge
)

// shardState carries one sharded phase across every experiment of a run.
// It is shared by the per-experiment Config copies; all maps are guarded by
// mu because execute runs experiments concurrently.
type shardState struct {
	phase shardPhase
	// index is 0-based; count is K. Only set during execute.
	index, count int

	mu sync.Mutex
	// counts accumulates tasks declared per experiment (plan).
	counts map[string]int
	// offsets maps experiment ID to its global task offset (execute).
	offsets map[string]int
	// seq tracks how many tasks each experiment has declared so far, so a
	// sweep's tasks get consecutive per-experiment indices (execute, merge).
	seq map[string]int
	// records collects owned task results (execute).
	records []shard.TaskRecord
	// source supplies the reassembled records (merge).
	source *shard.Merged
}

// nextSeq reserves n consecutive task indices for the experiment and
// returns the first.
func (sc *shardState) nextSeq(exp string, n int) int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	base := sc.seq[exp]
	sc.seq[exp] = base + n
	return base
}

// runSweep interprets a declared sweep under the installed phase; sweep.run
// dispatches here whenever Config.shard is set.
func (sc *shardState) runSweep(s *sweep) error {
	exp := s.cfg.expID
	switch sc.phase {
	case phasePlan:
		sc.mu.Lock()
		sc.counts[exp] += len(s.jobs)
		sc.mu.Unlock()
		return errPhaseDone

	case phaseExecute:
		base := sc.nextSeq(exp, len(s.jobs))
		sc.mu.Lock()
		offset := sc.offsets[exp]
		sc.mu.Unlock()
		var owned []int
		for g := range s.jobs {
			if (offset+base+g)%sc.count == sc.index {
				owned = append(owned, g)
			}
		}
		var wg sync.WaitGroup
		wg.Add(len(owned))
		for _, g := range owned {
			job := s.jobs[g]
			s.cfg.pool.submit(func() {
				defer wg.Done()
				job()
			})
		}
		wg.Wait()
		sc.mu.Lock()
		for _, g := range owned {
			sc.records = append(sc.records, shard.TaskRecord{
				Exp:   exp,
				Index: base + g,
				Vals:  s.recs[g].vals,
				Err:   s.recs[g].errText(),
			})
		}
		sc.mu.Unlock()
		return errPhaseDone

	case phaseMerge:
		base := sc.nextSeq(exp, len(s.jobs))
		recs := sc.source.Records(exp)
		if base+len(s.jobs) > len(recs) {
			return fmt.Errorf("experiments: %s declares %d tasks but the merged artifacts planned %d — artifacts from a different binary or configuration?",
				exp, base+len(s.jobs), len(recs))
		}
		for g := range s.jobs {
			r := recs[base+g]
			// Every executed task records values or an error; a record with
			// neither is a truncated or hand-edited artifact, and replaying
			// it would silently report zeros.
			if r.Err == "" && len(r.Vals) == 0 {
				return fmt.Errorf("experiments: %s task %d has neither values nor an error — truncated artifact?", exp, base+g)
			}
			var err error
			if r.Err != "" {
				err = errors.New(r.Err)
			}
			s.recs[g] = taskRecord{vals: r.Vals, err: err}
		}
		return s.aggregate()
	}
	return fmt.Errorf("experiments: unknown shard phase %d", sc.phase)
}

// phaseRunErr normalizes one experiment's error under a sharded phase:
// errPhaseDone means the phase completed.
func phaseRunErr(err error) error {
	if errors.Is(err, errPhaseDone) {
		return nil
	}
	return err
}

// PlanTasks deterministically enumerates the task plan: how many
// (sweep-point × trial) tasks each experiment declares under cfg, in
// experiment order. Every machine running the same binary at the same
// configuration derives the same plan — it is the shard partition's shared
// frame of reference, and execute embeds it into each artifact so merge can
// verify the shards actually tile it.
func PlanTasks(cfg Config, exps []Experiment) ([]shard.ExperimentPlan, error) {
	sc := &shardState{phase: phasePlan, counts: map[string]int{}}
	cfg.pool = nil
	cfg.shard = sc
	for _, e := range exps {
		if _, err := e.Run(withExp(cfg, e)); phaseRunErr(err) != nil {
			return nil, fmt.Errorf("plan %s: %w", e.ID, err)
		}
	}
	plan := make([]shard.ExperimentPlan, len(exps))
	for i, e := range exps {
		plan[i] = shard.ExperimentPlan{ID: e.ID, Tasks: sc.counts[e.ID]}
	}
	return plan, nil
}

// ExecuteShard runs shard index (1-based) of count: it derives the task
// plan, executes only the tasks this shard owns — concurrently, through one
// shared worker pool sized by cfg, exactly like RunAll — and returns their
// raw records as a portable artifact. Aggregation is deferred to the merge;
// trial failures are recorded in the artifact rather than aborting, so a
// long distributed run surfaces them at merge time instead of losing the
// machine's whole shard.
func ExecuteShard(cfg Config, exps []Experiment, index, count int) (*shard.Artifact, error) {
	if count < 1 || index < 1 || index > count {
		return nil, fmt.Errorf("experiments: shard %d/%d out of range", index, count)
	}
	plan, err := PlanTasks(cfg, exps)
	if err != nil {
		return nil, err
	}
	offsets := make(map[string]int, len(plan))
	offset := 0
	for _, p := range plan {
		offsets[p.ID] = offset
		offset += p.Tasks
	}
	sc := &shardState{
		phase:   phaseExecute,
		index:   index - 1,
		count:   count,
		offsets: offsets,
		seq:     map[string]int{},
	}
	pool := newWorkerPool(cfg.workers())
	defer pool.close()
	cfg.pool = pool
	cfg.shard = sc
	errs := make([]error, len(exps))
	var wg sync.WaitGroup
	for i, e := range exps {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = e.Run(withExp(cfg, e))
		}()
	}
	wg.Wait()
	for i, e := range exps {
		if phaseRunErr(errs[i]) != nil {
			return nil, fmt.Errorf("shard %d/%d %s: %w", index, count, e.ID, errs[i])
		}
	}
	return &shard.Artifact{
		Version:  shard.SchemaVersion,
		Shard:    index,
		Shards:   count,
		BaseSeed: cfg.BaseSeed,
		Quick:    cfg.Quick,
		Trials:   cfg.Trials,
		Plan:     plan,
		Records:  sc.records,
	}, nil
}

// RunMerged replays every experiment over the reassembled task records of a
// validated merge: no trial executes, the aggregation closures consume the
// loaded records on one goroutine in declaration order, and the experiments
// build their tables, notes, and series exactly as an unsharded run would.
// cfg must be the merged run's configuration (ConfigFromMerged); results and
// errors are aligned with exps.
func RunMerged(cfg Config, exps []Experiment, m *shard.Merged) ([]*Result, []error) {
	sc := &shardState{phase: phaseMerge, seq: map[string]int{}, source: m}
	cfg.pool = nil
	cfg.shard = sc
	results := make([]*Result, len(exps))
	errs := make([]error, len(exps))
	for i, e := range exps {
		results[i], errs[i] = e.Run(withExp(cfg, e))
		// The replay must consume the artifacts' records exactly. Declaring
		// more tasks than planned fails inside runSweep; declaring fewer —
		// this binary dropped a sweep point the artifacts still carry —
		// would silently replay records against the wrong (point, trial)
		// pairs, so it is a hard error too.
		if used, have := sc.seq[e.ID], len(m.Records(e.ID)); errs[i] == nil && used != have {
			results[i] = nil
			errs[i] = fmt.Errorf("experiments: %s declares %d tasks but the merged artifacts planned %d — artifacts from a different binary or configuration?",
				e.ID, used, have)
		}
	}
	return results, errs
}

// ConfigFromMerged rebuilds the run configuration a set of merged shards
// executed with, so the merge process replays the very declarations the
// shards enumerated rather than trusting the invoker to repeat the flags.
func ConfigFromMerged(m *shard.Merged) Config {
	return Config{Quick: m.Quick, Trials: m.Trials, BaseSeed: m.BaseSeed}
}

// MergedExperiments resolves a merged plan back to registered experiments,
// in plan order. An unknown ID means the artifacts were produced by a
// different binary version.
func MergedExperiments(m *shard.Merged) ([]Experiment, error) {
	exps := make([]Experiment, len(m.Plan))
	for i, p := range m.Plan {
		e, ok := ByID(p.ID)
		if !ok {
			return nil, fmt.Errorf("experiments: merged artifacts plan unknown experiment %q (artifact from a different binary version?)", p.ID)
		}
		exps[i] = e
	}
	return exps, nil
}
