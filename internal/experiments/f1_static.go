package experiments

import (
	"fmt"

	"repro/internal/bitrand"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:         "F1-static-global",
		Title:      "Global broadcast, no dynamic links (protocol model)",
		PaperClaim: "Θ(D·log(n/D) + log²n) [Bar-Yehuda et al.; Figure 1 row 4]",
		Run:        runStaticGlobal,
	})
	register(Experiment{
		ID:         "F1-static-local",
		Title:      "Local broadcast, no dynamic links (protocol model)",
		PaperClaim: "Θ(log n · log Δ) [Figure 1 row 4]",
		Run:        runStaticLocal,
	})
}

// lineNet returns the path network wrapped as a protocol-model dual graph.
func lineNet(n int) *graph.Dual { return graph.UniformDual(graph.Line(n)) }

// geoGridNet returns a connected jittered-grid geographic dual graph with
// side×side nodes.
func geoGridNet(side int, seed uint64) *graph.Dual {
	return graph.GeographicGrid(bitrand.New(seed), side, side, 0.7, 1.5)
}

func runStaticGlobal(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "F1-static-global",
		Title:      "Global broadcast, no dynamic links",
		PaperClaim: "Θ(D·log(n/D) + log²n)",
		Table:      stats.NewTable("topology", "algorithm", "n", "D", "median", "T/(D·logn+log²n)", "solved"),
	}
	sizes := []int{64, 256}
	if !cfg.Quick {
		sizes = []int{64, 256, 1024}
	}
	algs := []radio.Algorithm{core.DecayGlobal{}, core.PermutedGlobal{}}

	type point struct{ n, d, rounds float64 }
	var linePoints []point
	sw := newSweep(cfg)
	for _, alg := range algs {
		for _, n := range sizes {
			net := lineNet(n)
			d := n - 1
			sw.point(cfg.trials(), func(seed uint64) radio.Config {
				return radio.Config{
					Net: net, Algorithm: alg,
					Spec: radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
					Seed: seed, MaxRounds: 200 * n,
				}
			}, func(out trialOutcome) {
				ratio := stats.PolylogRatio(out.MedianRounds, d, n)
				res.Table.AddRow("line", alg.Name(), n, d, out.MedianRounds, ratio, fmt.Sprintf("%d/%d", out.Solved, out.Trials))
				if alg.Name() == "decay-global" {
					linePoints = append(linePoints, point{float64(n), float64(d), out.MedianRounds})
				}
			})
		}
		// Constant-ish diameter geographic grids exercise the log²n term.
		for _, side := range gridSides(cfg) {
			net := geoGridNet(side, 77)
			n := net.N()
			d := graph.DiameterApprox(net.G())
			sw.point(cfg.trials(), func(seed uint64) radio.Config {
				return radio.Config{
					Net: net, Algorithm: alg,
					Spec: radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
					Seed: seed, MaxRounds: 200 * n,
				}
			}, func(out trialOutcome) {
				ratio := stats.PolylogRatio(out.MedianRounds, d, n)
				res.Table.AddRow("geo-grid", alg.Name(), n, d, out.MedianRounds, ratio, fmt.Sprintf("%d/%d", out.Solved, out.Trials))
			})
		}
	}
	if err := sw.run(); err != nil {
		return nil, err
	}

	// Shape check on lines: T should scale ~linearly with D (exponent ≈1 vs
	// n since D = n-1), and the ratio to the claimed bound should be stable.
	var ns, ts []float64
	for _, p := range linePoints {
		ns = append(ns, p.n)
		ts = append(ts, p.rounds)
	}
	res.addSeries("decay-global on lines", ns, ts)
	fit := stats.GrowthExponent(ns, ts)
	res.Notes = append(res.Notes, fmt.Sprintf("decay on lines: T ~ n^%.2f (R²=%.2f); claim predicts exponent ≈ 1 via the D term", fit.Slope, fit.R2))
	res.Pass = fit.Slope > 0.7 && fit.Slope < 1.3
	res.Notes = append(res.Notes, verdict(res.Pass))
	return res, nil
}

func gridSides(cfg Config) []int {
	if cfg.Quick {
		return []int{7}
	}
	return []int{8, 16}
}

func runStaticLocal(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "F1-static-local",
		Title:      "Local broadcast, no dynamic links",
		PaperClaim: "Θ(log n · log Δ)",
		Table:      stats.NewTable("algorithm", "n", "Δ", "median", "T/(logn·logΔ)", "solved"),
	}
	sides := []int{6, 9}
	if !cfg.Quick {
		sides = []int{8, 16, 24}
	}
	var ns, ts []float64
	sw := newSweep(cfg)
	for _, side := range sides {
		net := geoGridNet(side, 99)
		n := net.N()
		delta := net.MaxDegree()
		var b []graph.NodeID
		for u := 0; u < n; u += 3 {
			b = append(b, u)
		}
		for _, alg := range []radio.Algorithm{core.DecayLocal{}, core.RoundRobin{}} {
			sw.point(cfg.trials(), func(seed uint64) radio.Config {
				return radio.Config{
					Net: net, Algorithm: alg,
					Spec: radio.Spec{Problem: radio.LocalBroadcast, Broadcasters: b},
					Seed: seed, MaxRounds: 64 * n,
				}
			}, func(out trialOutcome) {
				logN := float64(bitrand.LogN(n))
				logD := float64(bitrand.LogN(delta))
				res.Table.AddRow(alg.Name(), n, delta, out.MedianRounds, out.MedianRounds/(logN*logD),
					fmt.Sprintf("%d/%d", out.Solved, out.Trials))
				if alg.Name() == "decay-local" {
					ns = append(ns, float64(n))
					ts = append(ts, out.MedianRounds)
				}
			})
		}
	}
	if err := sw.run(); err != nil {
		return nil, err
	}
	res.addSeries("decay-local on geo grids", ns, ts)
	fit := stats.GrowthExponent(ns, ts)
	res.Notes = append(res.Notes, fmt.Sprintf("decay-local: T ~ n^%.2f (R²=%.2f); polylog claim predicts exponent near 0", fit.Slope, fit.R2))
	res.Pass = fit.Slope < 0.5
	res.Notes = append(res.Notes, verdict(res.Pass))
	return res, nil
}
