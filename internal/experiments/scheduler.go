package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/radio"
	"repro/internal/stats"
)

// workerPool is a bounded pool of goroutines executing opaque jobs. One pool
// serves every (experiment × sweep-point × trial) triple submitted to it:
// sweeps from different experiments interleave on the same workers instead of
// each sweep point spawning (and draining) its own goroutines.
type workerPool struct {
	jobs chan func()
	wg   sync.WaitGroup
}

// newWorkerPool starts a pool with the given number of workers (minimum 1).
func newWorkerPool(workers int) *workerPool {
	if workers < 1 {
		workers = 1
	}
	p := &workerPool{jobs: make(chan func())}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// submit hands a job to the pool, blocking until a worker accepts it. Jobs
// must never submit to their own pool (the workers would deadlock); only
// sweep declarers do.
func (p *workerPool) submit(job func()) { p.jobs <- job }

// close drains the pool: no further submits are allowed, and close returns
// once every accepted job has finished.
func (p *workerPool) close() {
	close(p.jobs)
	p.wg.Wait()
}

// trialResult is one seeded execution's contribution to a sweep point.
type trialResult struct {
	rounds float64
	solved bool
	err    error
}

// sweep is a declared collection of work units. Experiments declare their
// sweep points (a seeded radio.Config factory per point) together with an
// aggregation closure per point, then call run once: every trial of every
// point is flattened onto one worker pool, and after the pool drains the
// aggregation closures fire in declaration order. Each trial's seed fully
// determines its execution, so the output is byte-identical no matter how
// many workers run or in which order trials complete.
type sweep struct {
	cfg  Config
	jobs []func()
	aggs []func() error
}

// newSweep starts an empty sweep under the given run configuration.
func newSweep(cfg Config) *sweep { return &sweep{cfg: cfg} }

// tasks declares n independent jobs plus one aggregation closure that runs
// after every job of the sweep has finished, in declaration order. fn(i) must
// write its result only to task-private captured state.
func (s *sweep) tasks(n int, fn func(i int), agg func() error) {
	for i := 0; i < n; i++ {
		s.jobs = append(s.jobs, func() { fn(i) })
	}
	if agg != nil {
		s.aggs = append(s.aggs, agg)
	}
}

// point declares one sweep point: trials seeded executions of the factory,
// aggregated by agg. Trial i runs with seed BaseSeed+i+1, exactly as the
// sequential reference runner seeds them.
func (s *sweep) point(trials int, mk func(seed uint64) radio.Config, agg func(trialOutcome)) {
	if trials < 0 {
		trials = 0
	}
	results := make([]trialResult, trials)
	base := s.cfg.BaseSeed
	s.tasks(trials, func(i int) {
		res, err := radio.Run(mk(base + uint64(i) + 1))
		results[i] = trialResult{rounds: float64(res.Rounds), solved: res.Solved, err: err}
	}, func() error {
		out, err := aggregateTrials(results)
		if err != nil {
			return err
		}
		agg(out)
		return nil
	})
}

// run executes every declared job on the configured pool — the shared
// cross-experiment pool when one is set (RunAll), otherwise a pool created
// for this sweep — then invokes the aggregation closures in declaration
// order, stopping at the first error.
func (s *sweep) run() error {
	pool := s.cfg.pool
	if pool == nil {
		workers := s.cfg.workers()
		if workers > len(s.jobs) {
			workers = len(s.jobs)
		}
		pool = newWorkerPool(workers)
		defer pool.close()
	}
	var wg sync.WaitGroup
	wg.Add(len(s.jobs))
	for _, job := range s.jobs {
		pool.submit(func() {
			defer wg.Done()
			job()
		})
	}
	wg.Wait()
	for _, agg := range s.aggs {
		if err := agg(); err != nil {
			return err
		}
	}
	return nil
}

// TrialError reports every failed trial of a sweep point, not just the first
// one observed.
type TrialError struct {
	// Failed holds the indices of the failing trials, ascending.
	Failed []int
	// Errs holds the corresponding errors, aligned with Failed.
	Errs []error
}

// Error implements error.
func (e *TrialError) Error() string {
	idx := make([]string, len(e.Failed))
	for i, f := range e.Failed {
		idx[i] = fmt.Sprint(f)
	}
	return fmt.Sprintf("trials [%s] failed: %v", strings.Join(idx, " "), e.Errs[0])
}

// Unwrap exposes the first underlying error for errors.Is/As.
func (e *TrialError) Unwrap() error { return e.Errs[0] }

// aggregateTrials condenses a point's trial results. Every failing trial is
// reported (as a *TrialError); unsolved trials are counted in Censored and
// contribute their executed round budget to the round summary as
// right-censored observations — the medians read "at least this many rounds"
// whenever Censored > 0.
func aggregateTrials(results []trialResult) (trialOutcome, error) {
	out := trialOutcome{Trials: len(results)}
	var te TrialError
	for i, r := range results {
		if r.err != nil {
			te.Failed = append(te.Failed, i)
			te.Errs = append(te.Errs, fmt.Errorf("trial %d: %w", i, r.err))
		}
	}
	if len(te.Failed) > 0 {
		return out, &te
	}
	if len(results) == 0 {
		return out, nil
	}
	rounds := make([]float64, 0, len(results))
	for _, r := range results {
		if r.solved {
			out.Solved++
		}
		rounds = append(rounds, r.rounds)
	}
	out.Censored = out.Trials - out.Solved
	s := stats.Summarize(rounds)
	out.MedianRounds = s.Median
	out.MeanRounds = s.Mean
	out.P90 = s.P90
	return out, nil
}

// RunAll executes the given experiments through one shared worker pool sized
// by cfg (Workers, defaulting to GOMAXPROCS): every trial of every sweep
// point of every experiment lands in the same work queue, so the wall clock
// scales with cores rather than with experiment count. Results and errors are
// returned aligned with exps, and each experiment's output is identical to
// running it alone — trials are independently seeded, and aggregation order
// is fixed by declaration order.
func RunAll(cfg Config, exps []Experiment) ([]*Result, []error) {
	pool := newWorkerPool(cfg.workers())
	defer pool.close()
	cfg.pool = pool
	results := make([]*Result, len(exps))
	errs := make([]error, len(exps))
	var wg sync.WaitGroup
	for i, e := range exps {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = e.Run(cfg)
		}()
	}
	wg.Wait()
	return results, errs
}

// sortedKeys returns a map's keys in ascending order, for deterministic
// iteration over named variants (adversaries, algorithms).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
