package experiments

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/radio"
	"repro/internal/stats"
)

// workerPool is a bounded pool of goroutines executing opaque jobs. One pool
// serves every (experiment × sweep-point × trial) triple submitted to it:
// sweeps from different experiments interleave on the same workers instead of
// each sweep point spawning (and draining) its own goroutines.
type workerPool struct {
	jobs chan func()
	wg   sync.WaitGroup
}

// newWorkerPool starts a pool with the given number of workers (minimum 1).
func newWorkerPool(workers int) *workerPool {
	if workers < 1 {
		workers = 1
	}
	p := &workerPool{jobs: make(chan func())}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// submit hands a job to the pool, blocking until a worker accepts it. Jobs
// must never submit to their own pool (the workers would deadlock); only
// sweep declarers do.
func (p *workerPool) submit(job func()) { p.jobs <- job }

// close drains the pool: no further submits are allowed, and close returns
// once every accepted job has finished.
func (p *workerPool) close() {
	close(p.jobs)
	p.wg.Wait()
}

// taskRecord is one task's complete contribution to its sweep: a small
// vector of raw values plus the task's error, if any. Records are the unit
// of serialization for sharded runs (internal/shard.TaskRecord is the wire
// form), so aggregation closures consume records — never state captured
// from inside the task — and a record loaded from a shard artifact is
// indistinguishable from one produced in-process.
type taskRecord struct {
	vals []float64
	err  error
}

// errText returns the record's error message for serialization ("" when the
// task succeeded).
func (r taskRecord) errText() string {
	if r.err == nil {
		return ""
	}
	return r.err.Error()
}

// val returns the i-th value, tolerating short vectors from foreign
// artifacts (a failed trial may carry no values at all).
func (r taskRecord) val(i int) float64 {
	if i >= len(r.vals) {
		return 0
	}
	return r.vals[i]
}

// boolBit encodes a bool into a record value.
func boolBit(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// aggSpec is one aggregation closure together with the contiguous range of
// the sweep's task records it consumes.
type aggSpec struct {
	start, end int
	fn         func(recs []taskRecord) error
}

// sweep is a declared collection of work units. Experiments declare their
// sweep points (a seeded radio.Config factory per point) together with an
// aggregation closure per point, then call run once: every task of every
// point is flattened onto one worker pool, each task writes exactly one
// taskRecord, and after the pool drains the aggregation closures fire in
// declaration order over their record ranges. Each task's index fully
// determines its execution (seeds are derived from it), so the output is
// byte-identical no matter how many workers run, in which order tasks
// complete — or, for sharded runs, which machine ran which task.
type sweep struct {
	cfg  Config
	jobs []func()
	recs []taskRecord
	aggs []aggSpec
}

// newSweep starts an empty sweep under the given run configuration.
func newSweep(cfg Config) *sweep { return &sweep{cfg: cfg} }

// tasks declares n independent jobs plus one aggregation closure that runs
// after every job of the sweep has finished, in declaration order. fn(i)
// returns task i's record values (and error); it must derive everything from
// i alone so any subset of tasks can run in any process. agg receives the
// point's records in task order.
func (s *sweep) tasks(n int, fn func(i int) ([]float64, error), agg func(recs []taskRecord) error) {
	start := len(s.recs)
	s.recs = append(s.recs, make([]taskRecord, n)...)
	for i := 0; i < n; i++ {
		g := start + i
		s.jobs = append(s.jobs, func() {
			vals, err := fn(g - start)
			s.recs[g] = taskRecord{vals: vals, err: err}
		})
	}
	if agg != nil {
		s.aggs = append(s.aggs, aggSpec{start: start, end: start + n, fn: agg})
	}
}

// point declares one sweep point: trials seeded executions of the factory,
// aggregated by agg. Trial i runs with seed BaseSeed+i+1, exactly as the
// sequential reference runner seeds them. A trial's record is its executed
// round count and a solved bit — the raw data aggregateTrials (and, after a
// sharded merge, the replayed aggregation) condenses into a trialOutcome.
func (s *sweep) point(trials int, mk func(seed uint64) radio.Config, agg func(trialOutcome)) {
	if trials < 0 {
		trials = 0
	}
	base := s.cfg.BaseSeed
	s.tasks(trials, func(i int) ([]float64, error) {
		res, err := radio.Run(mk(base + uint64(i) + 1))
		return []float64{float64(res.Rounds), boolBit(res.Solved)}, err
	}, func(recs []taskRecord) error {
		out, err := aggregateTrials(recs)
		if err != nil {
			return err
		}
		agg(out)
		return nil
	})
}

// run executes the declared sweep. In an unsharded run every job executes on
// the configured pool — the shared cross-experiment pool when one is set
// (RunAll), otherwise a pool created for this sweep — and the aggregation
// closures then fire in declaration order, stopping at the first error. In
// a sharded run (Config.shard set) the installed phase takes over: plan
// counts the tasks, execute runs only the owned subset and captures their
// records, merge injects records loaded from artifacts and replays the
// aggregations. See shard.go.
func (s *sweep) run() error {
	if s.cfg.shard != nil {
		return s.cfg.shard.runSweep(s)
	}
	pool := s.cfg.pool
	if pool == nil {
		workers := s.cfg.workers()
		if workers > len(s.jobs) {
			workers = len(s.jobs)
		}
		pool = newWorkerPool(workers)
		defer pool.close()
	}
	var wg sync.WaitGroup
	wg.Add(len(s.jobs))
	for _, job := range s.jobs {
		pool.submit(func() {
			defer wg.Done()
			job()
		})
	}
	wg.Wait()
	return s.aggregate()
}

// aggregate fires the aggregation closures in declaration order over the
// sweep's records, stopping at the first error. A *TrialError surfacing from
// a closure has its indices rebased from point-local to sweep-local — and,
// because every experiment declares exactly one sweep, sweep-local is the
// experiment's task declaration index, the coordinate sharding and the run
// service's structured errors speak.
func (s *sweep) aggregate() error {
	for _, agg := range s.aggs {
		if err := agg.fn(s.recs[agg.start:agg.end]); err != nil {
			var te *TrialError
			if errors.As(err, &te) {
				for i := range te.Failed {
					te.Failed[i] += agg.start
				}
			}
			return err
		}
	}
	return nil
}

// TrialError reports every failed trial of a sweep point, not just the first
// one observed.
type TrialError struct {
	// Failed holds the indices of the failing trials, ascending.
	Failed []int
	// Errs holds the corresponding errors, aligned with Failed.
	Errs []error
}

// Error implements error.
func (e *TrialError) Error() string {
	idx := make([]string, len(e.Failed))
	for i, f := range e.Failed {
		idx[i] = fmt.Sprint(f)
	}
	return fmt.Sprintf("trials [%s] failed: %v", strings.Join(idx, " "), e.Errs[0])
}

// Unwrap exposes the first underlying error for errors.Is/As.
func (e *TrialError) Unwrap() error { return e.Errs[0] }

// aggregateTrials condenses a point's trial records. Every failing trial is
// reported (as a *TrialError); unsolved trials are counted in Censored and
// contribute their executed round budget to the round summary as
// right-censored observations — the medians read "at least this many rounds"
// whenever Censored > 0. The input is raw per-trial data (rounds, solved
// bit), so the same function reconstructs identical summaries whether the
// records were produced in-process or merged from shard artifacts.
func aggregateTrials(recs []taskRecord) (trialOutcome, error) {
	out := trialOutcome{Trials: len(recs)}
	var te TrialError
	for i, r := range recs {
		if r.err != nil {
			te.Failed = append(te.Failed, i)
			te.Errs = append(te.Errs, fmt.Errorf("trial %d: %w", i, r.err))
		}
	}
	if len(te.Failed) > 0 {
		return out, &te
	}
	if len(recs) == 0 {
		return out, nil
	}
	rounds := make([]float64, len(recs))
	solved := make([]bool, len(recs))
	for i, r := range recs {
		rounds[i] = r.val(0)
		solved[i] = r.val(1) != 0
	}
	cs := stats.SummarizeCensored(rounds, solved)
	out.Solved = cs.Solved
	out.Censored = cs.Censored
	out.MedianRounds = cs.Median
	out.MeanRounds = cs.Mean
	out.P90 = cs.P90
	return out, nil
}

// RunAll executes the given experiments through one shared worker pool sized
// by cfg (Workers, defaulting to GOMAXPROCS): every trial of every sweep
// point of every experiment lands in the same work queue, so the wall clock
// scales with cores rather than with experiment count. Results and errors are
// returned aligned with exps, and each experiment's output is identical to
// running it alone — trials are independently seeded, and aggregation order
// is fixed by declaration order.
func RunAll(cfg Config, exps []Experiment) ([]*Result, []error) {
	pool := newWorkerPool(cfg.workers())
	defer pool.close()
	cfg.pool = pool
	results := make([]*Result, len(exps))
	errs := make([]error, len(exps))
	var wg sync.WaitGroup
	for i, e := range exps {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = e.Run(withExp(cfg, e))
		}()
	}
	wg.Wait()
	return results, errs
}

// withExp stamps the experiment's identity into its config copy, so sharded
// phases can attribute declared tasks to the experiment that owns them.
func withExp(cfg Config, e Experiment) Config {
	cfg.expID = e.ID
	return cfg
}

// sortedKeys returns a map's keys in ascending order, for deterministic
// iteration over named variants (adversaries, algorithms).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
