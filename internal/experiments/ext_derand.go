package experiments

// EXT-derand: where does a *deterministic* broadcast land between the static
// upper bounds and the oblivious lower bounds? DerandBroadcast replaces every
// runtime coin with publicly computable structure — the deterministic network
// decomposition of the reliable graph plus a fixed sweep schedule — so a
// sampling-oblivious adversary that presimulates the algorithm predicts it
// *exactly*. The experiment races derand against decay and round-robin on the
// paper's dual clique under the static model, a committed oblivious fringe
// selection, and the presampling adversary, then replays the churn-window
// attack from ADV-churnwindow against all three. The presample row is the
// headline: against derand the presimulation labels exactly the rounds the
// real execution produces (at most one cluster of the active color transmits
// per slot, always below the dense threshold), so the adversary gains nothing
// it could not precompute and derand's presample row matches its static row
// round for round — while decay, whose dense phases the presample schedule
// smothers, visibly degrades. The price of determinism shows in the static
// column: derand pays its full sweep (≈ the largest cluster) per hop where
// decay pays polylog phases.

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/bitrand"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/scenario"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:         "EXT-derand",
		Title:      "Derandomized broadcast vs the adversary grid (network decomposition)",
		PaperClaim: "a zero-coin schedule concedes nothing to presampling or committed oblivious adversaries; randomized decay concedes a visible factor to presampling",
		Run:        runExtDerand,
	})
}

// derandAdvTolerance is the allowed degradation of a derand adversary row
// over its static row: the schedule is deterministic, so the rows should be
// identical up to completion-detection jitter.
const derandAdvTolerance = 1.1

// decayPresampleFactor is the minimum visible degradation of decay's
// presample row over its static row on the dual clique (measured 2.4x at
// n = 96 and 5.3x at n = 192; the gate leaves wide slack for trial-count
// variance).
const decayPresampleFactor = 1.4

func runExtDerand(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "EXT-derand",
		Title:      "Derandomized broadcast vs the adversary grid",
		PaperClaim: "deterministic structure is exactly what an oblivious adversary can presimulate — and exactly why presimulation buys it nothing",
		Table:      stats.NewTable("substrate", "n", "algorithm", "adversary", "median", "p90", "vs static", "solved"),
	}
	trials := cfg.trials()
	// The decay-presample contrast gate compares two medians of a noisy
	// geometric race; the quick trial count (5) is too few for a stable
	// ratio, so the adversary grid always runs at least 15 trials per cell
	// (full-mode width — the cells are small enough that this stays cheap).
	gridTrials := trials
	if gridTrials < 15 {
		gridTrials = 15
	}
	res.Pass = true
	algs := []radio.Algorithm{core.DerandBroadcast{}, core.DecayGlobal{}, core.RoundRobin{}}

	sizes := []int{96}
	if !cfg.Quick {
		sizes = append(sizes, 192)
	}
	var ns, derandRatios, decayRatios []float64
	sw := newSweep(cfg)
	for _, n := range sizes {
		n := n
		d, _ := graph.DualClique(n, 3)
		fringe := halfFringe(d)
		ns = append(ns, float64(n))
		for _, alg := range algs {
			alg := alg
			// The static row must aggregate before the adversary rows that
			// report ratios against it; declaration order guarantees that.
			var staticMed float64
			for _, adv := range []struct {
				name string
				link any
			}{
				{"static", nil},
				{"oblivious-static", adversary.Static{Selector: fringe}},
				{"presample", adversary.Presample{}},
			} {
				adv := adv
				sw.point(gridTrials, func(seed uint64) radio.Config {
					return radio.Config{
						Net:       d,
						Algorithm: alg,
						Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
						Link:      adv.link,
						Seed:      seed,
						MaxRounds: 400 * n,
					}
				}, func(out trialOutcome) {
					if out.Solved < out.Trials {
						res.Pass = false
					}
					ratio := 1.0
					if adv.name == "static" {
						staticMed = out.MedianRounds
					} else {
						if staticMed <= 0 {
							panic("experiments: EXT-derand adversary row aggregated before its static sibling")
						}
						ratio = out.MedianRounds / staticMed
					}
					switch {
					case alg.Name() == "derand" && adv.name != "static":
						// The headline gate: no adversary in the grid may
						// degrade the deterministic schedule beyond jitter.
						if ratio > derandAdvTolerance {
							res.Pass = false
						}
						if adv.name == "presample" {
							derandRatios = append(derandRatios, ratio)
						}
					case alg.Name() == "decay-global" && adv.name == "presample":
						// The contrast gate: presampling visibly slows decay.
						if ratio < decayPresampleFactor {
							res.Pass = false
						}
						decayRatios = append(decayRatios, ratio)
					}
					res.Table.AddRow("dualclique", n, alg.Name(), adv.name,
						out.MedianRounds, out.P90, fmt.Sprintf("%.2f", ratio),
						fmt.Sprintf("%d/%d", out.Solved, out.Trials))
				})
			}
		}
	}

	// The churn-window replay: the ADV-churnwindow storm scenario (reliable
	// two-clique base, G' = G, transient storm fringe in degraded epochs)
	// against all three algorithms. Derand re-derives its decomposition at
	// every epoch swap (radio.EpochAware), and the aligned offline smother
	// needs two simultaneous transmitters to act — which the decomposition
	// schedule almost never offers it.
	churnN := 64
	base := graph.TwoCliques(churnN)
	gen := scenario.GenConfig{
		Epochs:    10,
		EpochLen:  2 * bitrand.LogN(churnN),
		Demotions: 8,
		Storms:    6 * churnN,
		Protected: []graph.NodeID{0},
		MaxRounds: 400 * churnN,
	}
	sc, err := scenario.Generate(base, bitrand.New(3100+uint64(churnN)), gen)
	if err != nil {
		return nil, err
	}
	epochs, err := sc.Compile()
	if err != nil {
		return nil, err
	}
	wins := sc.DegradedWindows()
	for _, alg := range algs {
		alg := alg
		var noneMed float64
		for _, adv := range []struct {
			name string
			link any
		}{
			{"static", nil},
			{"churnwindow", adversary.ChurnWindowOffline{Windows: wins}},
		} {
			adv := adv
			sw.point(trials, func(seed uint64) radio.Config {
				return radio.Config{
					Epochs:    epochs,
					Algorithm: alg,
					Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
					Link:      adv.link,
					Seed:      seed,
					MaxRounds: 400 * churnN,
				}
			}, func(out trialOutcome) {
				if out.Solved < out.Trials {
					res.Pass = false
				}
				ratio := 1.0
				if adv.name == "static" {
					noneMed = out.MedianRounds
				} else {
					if noneMed <= 0 {
						panic("experiments: EXT-derand churn row aggregated before its static sibling")
					}
					ratio = out.MedianRounds / noneMed
					if alg.Name() == "derand" && ratio > derandAdvTolerance {
						res.Pass = false
					}
				}
				res.Table.AddRow("twocliques+storms", churnN, alg.Name(), adv.name,
					out.MedianRounds, out.P90, fmt.Sprintf("%.2f", ratio),
					fmt.Sprintf("%d/%d", out.Solved, out.Trials))
			})
		}
	}

	if err := sw.run(); err != nil {
		return nil, err
	}
	res.addSeries("derand presample/static ratio vs n", ns, derandRatios)
	res.addSeries("decay presample/static ratio vs n", ns, decayRatios)
	if len(derandRatios) > 0 && len(decayRatios) > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"presample/static degradation at the largest n: derand %.2fx, decay %.2fx — presimulating a zero-coin schedule reproduces it; presimulating decay's coins does not",
			derandRatios[len(derandRatios)-1], decayRatios[len(decayRatios)-1]))
	}
	res.Notes = append(res.Notes,
		"derand's static column pays the deterministic sweep (~largest cluster per hop) where decay pays polylog phases: the cost of moving every coin to construction time",
		verdict(res.Pass))
	return res, nil
}
