package experiments

import (
	"fmt"

	"repro/internal/bitrand"
	"repro/internal/core"
	"repro/internal/hitting"
	"repro/internal/radio"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:         "L3.2-hitting",
		Title:      "β-hitting game bound (Lemma 3.2)",
		PaperClaim: "no player wins k rounds with probability > k/(β−1)",
		Run:        runHittingBound,
	})
	register(Experiment{
		ID:         "T3.1-reduction",
		Title:      "Broadcast → hitting game reduction (Theorem 3.1)",
		PaperClaim: "P_A wins the β-hitting game in O(f(2β)·log β) rounds",
		Run:        runReduction,
	})
	register(Experiment{
		ID:         "L4.2-permdecay",
		Title:      "Permuted decay delivery probability (Lemma 4.2)",
		PaperClaim: "receiver hears a message w.p. > 1/2 per permuted decay call",
		Run:        runLemma42,
	})
}

func runHittingBound(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "L3.2-hitting",
		Title:      "β-hitting game bound",
		PaperClaim: "win probability ≤ k/(β−1)",
		Table:      stats.NewTable("β", "k", "empirical win rate", "bound k/(β−1)", "within bound"),
	}
	trials := 800
	if !cfg.Quick {
		trials = 4000
	}
	// Each trial draws from its own split-derived stream so plays are
	// independent of scheduling order.
	root := bitrand.New(1000 + cfg.BaseSeed)
	res.Pass = true
	sw := newSweep(cfg)
	for _, beta := range []int{16, 64} {
		for _, k := range []int{beta / 8, beta / 4, beta / 2} {
			sw.tasks(trials, func(trial int) ([]float64, error) {
				rng := root.Split(uint64(beta), uint64(k), uint64(trial))
				target := rng.Intn(beta)
				won := hitting.Play(beta, target, k, &hitting.UniformPlayer{Beta: beta}, rng).Won
				return []float64{boolBit(won)}, nil
			}, func(recs []taskRecord) error {
				wins := 0
				for _, r := range recs {
					if r.val(0) != 0 {
						wins++
					}
				}
				rate := float64(wins) / float64(trials)
				bound := float64(k) / float64(beta-1)
				// Allow sampling noise: 4σ of a Bernoulli(bound) estimate.
				ok := rate <= bound+4*0.5/float64(trials)+4*sqrtApprox(bound*(1-bound)/float64(trials))
				if !ok {
					res.Pass = false
				}
				res.Table.AddRow(beta, k, rate, bound, ok)
				return nil
			})
		}
	}
	if err := sw.run(); err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes, verdict(res.Pass))
	return res, nil
}

func sqrtApprox(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton iterations suffice here and avoid importing math for one call.
	g := x
	for i := 0; i < 20; i++ {
		g = 0.5 * (g + x/g)
	}
	return g
}

func runReduction(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "T3.1-reduction",
		Title:      "Broadcast → hitting game reduction",
		PaperClaim: "P_A wins in O(f(2β)·log β) game rounds",
		Table:      stats.NewTable("algorithm", "β", "won", "median guesses", "median sim rounds", "budget f·logβ"),
	}
	betas := []int{16, 32}
	if !cfg.Quick {
		betas = []int{16, 64, 128}
	}
	trials := cfg.trials()
	res.Pass = true
	sw := newSweep(cfg)
	for _, beta := range betas {
		for _, tc := range []struct {
			alg     radio.Algorithm
			problem radio.Problem
			// budget is the O(f(2β)·log β) allowance: round robin has
			// f(n) = O(n); decay's dual clique time vs this player's own
			// dense/sparse link process is O(n) too at these scales.
			budget int
		}{
			{core.RoundRobin{}, radio.LocalBroadcast, 8 * beta * bitrand.LogN(beta)},
			{core.DecayGlobal{}, radio.GlobalBroadcast, 64 * beta * bitrand.LogN(beta)},
		} {
			// Each play is already independently seeded by its trial index,
			// so plays fan out onto the pool (or across shards) directly.
			sw.tasks(trials, func(trial int) ([]float64, error) {
				player := &hitting.SimulationPlayer{
					Algorithm: tc.alg,
					Beta:      beta,
					Problem:   tc.problem,
					Seed:      cfg.BaseSeed + uint64(trial),
				}
				target := (trial * 7) % beta
				out := hitting.Play(beta, target, 1<<22, player, bitrand.New(uint64(trial)))
				return []float64{boolBit(out.Won), float64(out.Guesses), float64(out.SimRounds)}, nil
			}, func(recs []taskRecord) error {
				won := 0
				var guesses, simRounds []int
				for _, r := range recs {
					if r.val(0) != 0 {
						won++
						guesses = append(guesses, int(r.val(1)))
						simRounds = append(simRounds, int(r.val(2)))
					}
				}
				medG := stats.MedianInts(guesses)
				medS := stats.MedianInts(simRounds)
				res.Table.AddRow(tc.alg.Name(), beta, fmt.Sprintf("%d/%d", won, trials), medG, medS, tc.budget)
				if won < trials || medG > float64(tc.budget) {
					res.Pass = false
				}
				return nil
			})
		}
	}
	if err := sw.run(); err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes, verdict(res.Pass))
	return res, nil
}

func runLemma42(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "L4.2-permdecay",
		Title:      "Permuted decay delivery probability",
		PaperClaim: "receive probability > 1/2 per call (γ=16)",
		Table:      stats.NewTable("|I_G|", "|I_G'|", "grey presence", "receive rate", "above 1/2"),
	}
	trials := 300
	if !cfg.Quick {
		trials = 2000
	}
	// Each trial draws from its own split-derived stream so trials are
	// independent of scheduling order.
	root := bitrand.New(4242 + cfg.BaseSeed)
	n := 1024
	res.Pass = true
	sw := newSweep(cfg)
	for si, shape := range []struct {
		ig, igp  int
		presence float64
	}{
		{1, 0, 0}, {8, 0, 0}, {1, 64, 0.5}, {4, 256, 0.5}, {2, 512, 0.9},
	} {
		sw.tasks(trials, func(trial int) ([]float64, error) {
			src := root.Split(uint64(si), uint64(trial))
			bits := bitrand.NewBitString(src, core.GlobalBitsLen(n, 1))
			sched := core.NewPermSchedule(bits, n, 1)
			got := false
			for r := 0; r < sched.BlockLen() && !got; r++ {
				p := sched.Prob(r)
				tx := 0
				for s := 0; s < shape.ig; s++ {
					if src.Coin(p) {
						tx++
					}
				}
				for s := 0; s < shape.igp; s++ {
					present := bitrand.HashFloat(uint64(trial), uint64(r), uint64(s)) < shape.presence
					if present && src.Coin(p) {
						tx++
					}
				}
				if tx == 1 {
					got = true
				}
			}
			return []float64{boolBit(got)}, nil
		}, func(recs []taskRecord) error {
			success := 0
			for _, r := range recs {
				if r.val(0) != 0 {
					success++
				}
			}
			rate := float64(success) / float64(trials)
			ok := rate > 0.5
			if !ok {
				res.Pass = false
			}
			res.Table.AddRow(shape.ig, shape.igp, shape.presence, rate, ok)
			return nil
		})
	}
	if err := sw.run(); err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes, verdict(res.Pass))
	return res, nil
}
