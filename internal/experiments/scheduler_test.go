package experiments

import (
	"errors"
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
)

func testTrialConfig(seed uint64) radio.Config {
	net := graph.UniformDual(graph.Clique(24))
	return radio.Config{
		Net:       net,
		Algorithm: core.DecayGlobal{},
		Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
		Seed:      seed,
		MaxRounds: 10000,
	}
}

func TestSchedulerMatchesSequential(t *testing.T) {
	par, err := runTrials(Config{BaseSeed: 100, Workers: 8}, testTrialConfig, 8)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := runTrialsSequential(testTrialConfig, 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if par.Solved != seq.Solved || par.Trials != seq.Trials || par.Censored != seq.Censored {
		t.Fatalf("scheduler %+v != sequential %+v", par, seq)
	}
	if math.Abs(par.MedianRounds-seq.MedianRounds) > 1e-9 ||
		math.Abs(par.MeanRounds-seq.MeanRounds) > 1e-9 ||
		math.Abs(par.P90-seq.P90) > 1e-9 {
		t.Fatalf("aggregates diverge: scheduler %+v vs sequential %+v", par, seq)
	}
}

func TestSchedulerZeroTrials(t *testing.T) {
	out, err := runTrials(Config{}, testTrialConfig, 0)
	if err != nil || out.Trials != 0 {
		t.Fatalf("zero trials: %+v, %v", out, err)
	}
}

func TestSchedulerAggregatesAllTrialErrors(t *testing.T) {
	bad := func(seed uint64) radio.Config {
		if seed%2 == 0 {
			return radio.Config{} // nil network: invalid
		}
		return testTrialConfig(seed)
	}
	// Seeds are BaseSeed+i+1 = 1..6, so trials 1, 3, 5 get even seeds.
	_, err := runTrials(Config{Workers: 4}, bad, 6)
	if err == nil {
		t.Fatal("invalid config error not propagated")
	}
	var te *TrialError
	if !errors.As(err, &te) {
		t.Fatalf("error %T is not a *TrialError: %v", err, err)
	}
	if len(te.Failed) != 3 || te.Failed[0] != 1 || te.Failed[1] != 3 || te.Failed[2] != 5 {
		t.Fatalf("failed trials = %v, want [1 3 5]", te.Failed)
	}
	if !errors.Is(err, radio.ErrBadConfig) {
		t.Fatalf("error does not unwrap to ErrBadConfig: %v", err)
	}
	if !strings.Contains(err.Error(), "[1 3 5]") {
		t.Fatalf("error message lacks failing indices: %v", err)
	}
}

// TestTrialErrorIndicesAreSweepLocal pins the coordinate system of
// TrialError.Failed: indices are sweep-local (equal to the experiment's task
// declaration indices), not point-local — the failing point here starts at
// offset 2, so its local failures [0 1 2] surface as [2 3 4]. Sharded merges
// and the run service's structured errors both rely on this frame.
func TestTrialErrorIndicesAreSweepLocal(t *testing.T) {
	bad := func(seed uint64) radio.Config { return radio.Config{} } // nil network: invalid
	sw := newSweep(Config{Workers: 2})
	sw.point(2, testTrialConfig, func(trialOutcome) {})
	sw.point(3, bad, func(trialOutcome) {})
	err := sw.run()
	if err == nil {
		t.Fatal("invalid config error not propagated")
	}
	var te *TrialError
	if !errors.As(err, &te) {
		t.Fatalf("error %T is not a *TrialError: %v", err, err)
	}
	if len(te.Failed) != 3 || te.Failed[0] != 2 || te.Failed[1] != 3 || te.Failed[2] != 4 {
		t.Fatalf("failed task indices = %v, want sweep-local [2 3 4]", te.Failed)
	}
}

func TestSchedulerCensoredCounting(t *testing.T) {
	// One round is never enough to cross a 24-node path, so every trial is
	// censored at its budget.
	stall := func(seed uint64) radio.Config {
		cfg := testTrialConfig(seed)
		cfg.Net = graph.UniformDual(graph.Line(24))
		cfg.MaxRounds = 1
		return cfg
	}
	out, err := runTrials(Config{}, stall, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out.Solved != 0 || out.Censored != 4 {
		t.Fatalf("censored accounting: %+v", out)
	}
	if out.MedianRounds != 1 {
		t.Fatalf("censored trials must contribute their budget: %+v", out)
	}
}

// resultFingerprint renders everything the harness reports for an
// experiment; two runs with equal fingerprints produced byte-identical
// output.
func resultFingerprint(res *Result) string {
	var b strings.Builder
	b.WriteString(res.Table.String())
	b.WriteString(res.Table.CSV())
	for _, n := range res.Notes {
		b.WriteString(n)
		b.WriteString("\n")
	}
	for _, s := range res.Series {
		b.WriteString(s.Name)
		for i := range s.X {
			b.WriteString(strconv.FormatUint(math.Float64bits(s.X[i]), 16) + "," +
				strconv.FormatUint(math.Float64bits(s.Y[i]), 16) + ";")
		}
	}
	return b.String()
}

// TestSchedulerDeterminism asserts that forced-sequential (Workers: 1) and
// parallel (Workers: 8) execution produce identical tables, notes, and
// series for one experiment per link model: static (no link process),
// oblivious (committed schedules), and online adaptive.
func TestSchedulerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite")
	}
	for _, id := range []string{
		"F1-static-local",            // static: nil link
		"F1-oblivious-local-general", // oblivious: presample adversary
		"F1-online-global",           // online adaptive: dense/sparse
	} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			exp, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %q not registered", id)
			}
			seqRes, err := exp.Run(Config{Quick: true, Trials: 2, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			parRes, err := exp.Run(Config{Quick: true, Trials: 2, Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			seq, par := resultFingerprint(seqRes), resultFingerprint(parRes)
			if seq != par {
				t.Fatalf("output diverges between Workers:1 and Workers:8\n--- sequential:\n%s\n--- parallel:\n%s", seq, par)
			}
		})
	}
}

// TestRunAllSharedPool runs a slice of the registry through the shared
// cross-experiment pool and checks each result matches a standalone run.
func TestRunAllSharedPool(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite")
	}
	ids := []string{"F1-static-local", "L3.2-hitting"}
	exps := make([]Experiment, len(ids))
	for i, id := range ids {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		exps[i] = e
	}
	cfg := Config{Quick: true, Trials: 2}
	results, errs := RunAll(cfg, exps)
	if len(results) != len(exps) || len(errs) != len(exps) {
		t.Fatalf("RunAll returned %d results, %d errors for %d experiments", len(results), len(errs), len(exps))
	}
	for i, e := range exps {
		if errs[i] != nil {
			t.Fatalf("%s: %v", e.ID, errs[i])
		}
		solo, err := e.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if resultFingerprint(results[i]) != resultFingerprint(solo) {
			t.Errorf("%s: shared-pool output differs from standalone run", e.ID)
		}
	}
}
