package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ABL-permutation",
		"ABL-seeds",
		"ADV-churnwindow",
		"CHURN-broadcast",
		"CHURN-gossip",
		"EXT-contention",
		"EXT-derand",
		"EXT-gossip",
		"EXT-leader",
		"F1-oblivious-global",
		"F1-oblivious-local-general",
		"F1-oblivious-local-geo",
		"F1-offline-global",
		"F1-offline-local",
		"F1-online-global",
		"F1-online-local",
		"F1-static-global",
		"F1-static-local",
		"L3.2-hitting",
		"L4.2-permdecay",
		"SCALE-n",
		"T3.1-reduction",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("registry[%d] = %q, want %q", i, e.ID, want[i])
		}
		if e.Run == nil || e.Title == "" || e.PaperClaim == "" {
			t.Fatalf("experiment %q incompletely registered", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("F1-static-global"); !ok {
		t.Fatal("known id not found")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id found")
	}
}

func TestConfigTrials(t *testing.T) {
	if (Config{Quick: true}).trials() != 5 {
		t.Fatal("quick default trials")
	}
	if (Config{}).trials() != 15 {
		t.Fatal("full default trials")
	}
	if (Config{Trials: 2}).trials() != 2 {
		t.Fatal("explicit trials")
	}
}

// TestQuickExperiments runs every registered experiment in quick mode and
// requires a well-formed result AND a passing verdict: the quick scales are
// chosen so each experiment's shape criterion already holds.
func TestQuickExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			res, err := e.Run(Config{Quick: true, Trials: 3})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.ID != e.ID {
				t.Fatalf("result id %q != %q", res.ID, e.ID)
			}
			if res.Table == nil || res.Table.NumRows() == 0 {
				t.Fatal("empty result table")
			}
			if len(res.Notes) == 0 {
				t.Fatal("no notes")
			}
			last := res.Notes[len(res.Notes)-1]
			if !strings.HasPrefix(last, "PASS") && !strings.HasPrefix(last, "FAIL") {
				t.Fatalf("missing verdict note: %q", last)
			}
			if !res.Pass {
				t.Errorf("experiment did not match the paper's claim:\n%s\nnotes: %v", res.Table, res.Notes)
			}
		})
	}
}
