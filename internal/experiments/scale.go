package experiments

// The SCALE-n family: the same decay broadcast measured across four orders
// of network magnitude, n = 10³ → 10⁶. Every Figure 1 experiment keeps n in
// the hundreds so sweeps finish in seconds; these rows instead stress the
// engine's delivery paths at the sizes the word-parallel plans were built
// for. The substrates deliberately straddle the auto-plan boundaries
// (internal/radio/bitmap.go): n = 10³ sits below the bitmap node floor
// (scalar CSR walk), the dense n = 10⁴ circulant clears both the node and
// density gates (dense word-parallel rounds, 64 candidate senders per word),
// and the sparse n = 10⁵ and 10⁶ ring-with-chords substrates sit above the
// dense-mask node cap with sparse-mask footprints far under the byte budget
// (block-sparse rounds with batched coin fills). The measured tables are
// plan-invariant — the differential equivalence tests pin that bit for bit —
// so the rows read as one scaling curve, not three code paths.
//
// All large configurations state MaxRounds explicitly: above the engine's
// default-budget threshold (4096 nodes) the 64·n² fallback is refused as a
// misconfiguration rather than silently becoming a 10¹¹-round budget.

import (
	"fmt"
	"sync"

	"repro/internal/adversary"
	"repro/internal/bitrand"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:         "SCALE-n",
		Title:      "Scale: decay broadcast from n = 10^3 to 10^6",
		PaperClaim: "decay completes in O(D log n + log^2 n) rounds at every scale; the O(n·D) round-robin foil is left behind by orders of magnitude",
		Run:        runScale,
	})
}

// scaleSubstrate is one network size of the family, with the G' fringe the
// oblivious rows select from.
type scaleSubstrate struct {
	n     int
	label string
	net   *graph.Dual
}

// scaleNetsMemo caches the built substrates per scale for the process
// lifetime. Substrates are immutable and deterministic in their seeds, and a
// service-driven run enumerates the task plan more than once per execution
// (submit-time planning, then the execute phase's own plan) — without the
// memo each pass would rebuild the 10⁵/10⁶-node graphs from scratch.
var scaleNetsMemo struct {
	sync.Mutex
	nets map[bool][]scaleSubstrate
}

func scaleNets(full bool) []scaleSubstrate {
	scaleNetsMemo.Lock()
	defer scaleNetsMemo.Unlock()
	if nets, ok := scaleNetsMemo.nets[full]; ok {
		return nets
	}
	nets := buildScaleNets(full)
	if scaleNetsMemo.nets == nil {
		scaleNetsMemo.nets = make(map[bool][]scaleSubstrate, 2)
	}
	scaleNetsMemo.nets[full] = nets
	return nets
}

// buildScaleNets builds the family's substrates. Diameters are kept
// comparable across sizes (degree scales with n for the circulants; the
// chord expander is logarithmic by construction), so the scaling curve
// isolates the log n factors of the decay bound instead of conflating them
// with D growth.
func buildScaleNets(full bool) []scaleSubstrate {
	build := func(n, deg, extra int, seed uint64) *graph.Dual {
		src := bitrand.New(seed)
		var g *graph.Graph
		if deg > 0 {
			g = graph.Circulant(n, deg)
		} else {
			g = graph.RingChords(src, n, 2*n)
		}
		return graph.AugmentDual(src, g, extra)
	}
	nets := []scaleSubstrate{
		{1000, "circulant d=64", build(1000, 64, 2000, 0x5ca1e03)},
		{10000, "circulant d=512", build(10000, 512, 20000, 0x5ca1e04)},
	}
	if full {
		nets = append(nets, scaleSubstrate{100000, "ring+chords", build(100000, 0, 100000, 0x5ca1e05)})
		nets = append(nets, scaleSubstrate{1000000, "ring+chords", build(1000000, 0, 1000000, 0x5ca1e06)})
	}
	return nets
}

// scaleTrials caps the per-point trial count at the million-node size: one
// trial there walks ~10⁶ rows per round for hundreds of rounds, so the full
// 15-seed default would dominate the whole suite's wall clock for a point
// whose median is already stable at a third of that.
func scaleTrials(trials, n int) int {
	if n >= 1000000 && trials > 5 {
		return 5
	}
	return trials
}

// halfFringe selects every other E'\E edge of the dual: the committed
// oblivious selection of the SCALE adversary rows.
func halfFringe(d *graph.Dual) graph.EdgeSelector {
	var edges []graph.EdgeKey
	keep := true
	for u := 0; u < d.N(); u++ {
		for _, v := range d.ExtraNeighbors(u) {
			if v <= u {
				continue
			}
			if keep {
				edges = append(edges, graph.EdgeKey{U: u, V: v})
			}
			keep = !keep
		}
	}
	return graph.NewSelectSet(edges)
}

// scaleRow is one measured configuration of a substrate: an algorithm, an
// adversary label, and an explicit round budget.
type scaleRow struct {
	alg  radio.Algorithm
	name string
	link any
	max  int
}

func runScale(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "SCALE-n",
		Title:      "Decay broadcast across four orders of magnitude",
		PaperClaim: "round counts stay polylogarithmic-per-hop as n grows 10x-1000x; round robin pays Θ(n) per hop",
		Table:      stats.NewTable("n", "substrate", "algorithm", "adversary", "median", "p90", "solved"),
	}
	trials := cfg.trials()
	nets := scaleNets(!cfg.Quick)
	res.Pass = true

	var ns, decayMed []float64
	var rrNs, rrMeds []float64
	var decaySmall, decayAtRR float64
	sw := newSweep(cfg)
	for _, sub := range nets {
		sub := sub
		// Decay needs a few phases per hop; 500·log n covers every substrate
		// here with an order of magnitude of slack while staying an explicit,
		// finite budget (the engine refuses a default budget above 4096 nodes).
		budget := 500 * bitrand.LogN(sub.n)
		rows := []scaleRow{
			{core.DecayGlobal{}, "none", nil, budget},
		}
		if sub.n < 1000000 {
			// The adversarial row stops at 10⁵: a committed fringe selection
			// forces the engine onto its partial-selector fallback, and at 10⁶
			// the point of the row is the block-sparse fast path itself.
			rows = append(rows, scaleRow{core.DecayGlobal{}, "oblivious-static", adversary.Static{Selector: halfFringe(sub.net)}, budget})
		}
		if sub.n == 1000 {
			// The sampling-oblivious adversary only runs at the smallest size:
			// presampling simulates its whole horizon per trial.
			rows = append(rows, scaleRow{core.DecayGlobal{}, "presample", adversary.Presample{Horizon: 1024}, budget})
		}
		if sub.n <= 10000 {
			// The Θ(n) foil runs on both circulants so its own scaling (~n
			// rounds regardless of diameter) is measured, not assumed; at 10⁵
			// its rounds are pure wall-clock waste.
			rows = append(rows, scaleRow{core.RoundRobin{}, "none", nil, 4 * sub.n})
		}
		for _, row := range rows {
			row := row
			sw.point(scaleTrials(trials, sub.n), func(seed uint64) radio.Config {
				return radio.Config{
					Net:       sub.net,
					Algorithm: row.alg,
					Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
					Link:      row.link,
					Seed:      seed,
					MaxRounds: row.max,
				}
			}, func(out trialOutcome) {
				if out.Solved < out.Trials {
					res.Pass = false
				}
				res.Table.AddRow(sub.n, sub.label, row.alg.Name(), row.name,
					out.MedianRounds, out.P90, fmt.Sprintf("%d/%d", out.Solved, out.Trials))
				switch {
				case row.alg.Name() == "round-robin":
					rrNs = append(rrNs, float64(sub.n))
					rrMeds = append(rrMeds, out.MedianRounds)
				case row.name == "none":
					ns = append(ns, float64(sub.n))
					decayMed = append(decayMed, out.MedianRounds)
					if sub.n == 1000 {
						decaySmall = out.MedianRounds
					}
					if sub.n == 10000 {
						decayAtRR = out.MedianRounds
					}
				}
			})
		}
	}
	if err := sw.run(); err != nil {
		return nil, err
	}
	res.addSeries("decay median vs n (no adversary)", ns, decayMed)
	res.addSeries("round-robin median vs n", rrNs, rrMeds)

	// Shape checks. The foil really is Θ(n): round robin takes at least n/2
	// rounds at every size (a node cannot relay before its own slot comes
	// up). Separation: at n = 10⁴ it pays a wide multiple of decay.
	// Sublinearity: growing n by 10x (100x in full mode) must grow the decay
	// median far slower than linearly — at most half the size ratio is
	// already generous for a polylog-per-hop bound over comparable diameters.
	largest := decayMed[len(decayMed)-1]
	for i, m := range rrMeds {
		if m < rrNs[i]/2 {
			res.Pass = false
		}
	}
	rrLarge := rrMeds[len(rrMeds)-1]
	if rrLarge < 5*decayAtRR {
		res.Pass = false
	}
	sizeRatio := ns[len(ns)-1] / ns[0]
	if largest > decaySmall*sizeRatio/2 {
		res.Pass = false
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("decay median grows %.1fx while n grows %.0fx; round robin pays %.0fx decay at n=10000",
			largest/decaySmall, sizeRatio, rrLarge/decayAtRR),
		"substrates straddle the delivery-plan boundaries (scalar at 10^3, dense bitmap at 10^4, block-sparse bitmap at 10^5 and 10^6); tables are plan-invariant",
		verdict(res.Pass))
	return res, nil
}
