// Package experiments defines the reproduction harness: one registered
// experiment per cell of the paper's Figure 1 plus checks of the supporting
// lemmas and two ablations. Each experiment runs parameter sweeps over
// network size with repeated seeded trials and reports a table whose shape
// is compared against the paper's claim (growth exponents, ratios to the
// claimed bounds, separations between rows).
//
// Experiments run at two scales: Quick (seconds; used by tests and smoke
// runs) and Full (minutes; regenerates the reference tables, exportable with
// `dgbench -full -markdown`). DESIGN.md documents the registry and the sweep
// scheduler that executes it.
package experiments

import (
	"runtime"
	"sort"

	"repro/internal/radio"
	"repro/internal/stats"
)

// Config controls an experiment run.
type Config struct {
	// Quick selects reduced sweeps for fast runs.
	Quick bool
	// Trials is the number of independent seeds per sweep point (default 5
	// quick, 15 full).
	Trials int
	// BaseSeed offsets all trial seeds, for variance studies.
	BaseSeed uint64
	// Workers bounds the trial worker pool (default GOMAXPROCS). Workers: 1
	// forces sequential execution; the measured tables are identical at any
	// setting, only wall clock changes.
	Workers int
	// pool, when non-nil, is the shared cross-experiment pool installed by
	// RunAll; sweeps submit to it instead of creating their own.
	pool *workerPool
	// shard, when non-nil, replaces normal sweep execution with one phase of
	// the sharded lifecycle (plan, execute, or merge); installed by
	// PlanTasks/ExecuteShard/RunMerged. See shard.go.
	shard *shardState
	// expID names the experiment a sweep belongs to, stamped by the runners
	// (withExp) so sharded phases can attribute declared tasks.
	expID string
}

func (c Config) trials() int {
	if c.Trials > 0 {
		return c.Trials
	}
	if c.Quick {
		return 5
	}
	return 15
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// EffectiveWorkers reports the worker pool size this configuration runs
// with: Workers when set, GOMAXPROCS otherwise.
func (c Config) EffectiveWorkers() int { return c.workers() }

// EffectiveTrials reports the per-point trial count this configuration runs
// with: Trials when set, otherwise the scale default (5 quick, 15 full).
// Callers that key derived state on a configuration — the run service's
// content-addressed cache — normalize through this so Trials: 0 and an
// explicit default spell the same run.
func (c Config) EffectiveTrials() int { return c.trials() }

// Series is a named scaling curve measured by an experiment, for plotting.
type Series struct {
	Name string
	X, Y []float64
}

// Result is an experiment's outcome.
type Result struct {
	ID         string
	Title      string
	PaperClaim string
	// Table holds the measured rows.
	Table *stats.Table
	// Series holds the scaling curves behind the shape fits (x = size
	// parameter, y = median rounds), for plotting.
	Series []Series
	// Notes carry derived observations (growth exponents, separations) and
	// the verdict line.
	Notes []string
	// Pass reports whether the measured shape matches the paper's claim
	// under the experiment's own criterion.
	Pass bool
}

// addSeries appends a named scaling curve.
func (r *Result) addSeries(name string, x, y []float64) {
	if len(x) == 0 {
		return
	}
	r.Series = append(r.Series, Series{Name: name, X: x, Y: y})
}

// Experiment is a registered, runnable reproduction unit.
type Experiment struct {
	ID         string
	Title      string
	PaperClaim string
	Run        func(cfg Config) (*Result, error)
}

// registry is populated by register calls in this package's files.
var registry []Experiment

func register(e Experiment) {
	registry = append(registry, e)
}

// All returns every registered experiment, sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// trialOutcome aggregates repeated runs of one configuration. Unsolved
// trials are right-censored: they contribute their executed round budget to
// the round summary, and Censored counts how many rows the summary treats
// that way.
type trialOutcome struct {
	MedianRounds float64
	MeanRounds   float64
	Solved       int
	Censored     int
	Trials       int
	P90          float64
}

// runTrials executes the config-factory over `trials` seeds through the
// sweep scheduler and aggregates. It is the one-point convenience form of
// declaring a sweep; multi-point experiments declare their whole sweep so
// trials from every point interleave on the pool.
func runTrials(cfg Config, mk func(seed uint64) radio.Config, trials int) (trialOutcome, error) {
	sw := newSweep(cfg)
	var out trialOutcome
	sw.point(trials, mk, func(o trialOutcome) { out = o })
	err := sw.run()
	return out, err
}

// runTrialsSequential is the single-threaded reference used to verify the
// scheduler.
func runTrialsSequential(mk func(seed uint64) radio.Config, trials int, baseSeed uint64) (trialOutcome, error) {
	recs := make([]taskRecord, trials)
	for i := 0; i < trials; i++ {
		res, err := radio.Run(mk(baseSeed + uint64(i) + 1))
		recs[i] = taskRecord{vals: []float64{float64(res.Rounds), boolBit(res.Solved)}, err: err}
	}
	return aggregateTrials(recs)
}

func verdict(pass bool) string {
	if pass {
		return "PASS: measured shape matches the paper's claim"
	}
	return "FAIL: measured shape deviates from the paper's claim"
}
