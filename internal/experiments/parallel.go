package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/radio"
	"repro/internal/stats"
)

// runTrialsParallel is runTrials with a bounded worker pool: trials are
// independent seeded executions, so they parallelize embarrassingly. Results
// are identical to the sequential runner (each trial's seed fully determines
// its execution); only wall-clock changes.
func runTrialsParallel(mk func(seed uint64) radio.Config, trials int, baseSeed uint64) (trialOutcome, error) {
	out := trialOutcome{Trials: trials}
	if trials <= 0 {
		return out, nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	type one struct {
		rounds float64
		solved bool
		err    error
	}
	results := make([]one, trials)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				res, err := radio.Run(mk(baseSeed + uint64(i) + 1))
				results[i] = one{rounds: float64(res.Rounds), solved: res.Solved, err: err}
			}
		}()
	}
	for i := 0; i < trials; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	rounds := make([]float64, 0, trials)
	for i, r := range results {
		if r.err != nil {
			return out, fmt.Errorf("trial %d: %w", i, r.err)
		}
		if r.solved {
			out.Solved++
		}
		rounds = append(rounds, r.rounds)
	}
	s := stats.Summarize(rounds)
	out.MedianRounds = s.Median
	out.MeanRounds = s.Mean
	out.P90 = s.P90
	return out, nil
}
