package experiments

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/bitrand"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:         "ABL-permutation",
		Title:      "Ablation: permutation bits (decay vs permuted decay, oblivious adversary)",
		PaperClaim: "runtime randomness in the schedule is what defeats the oblivious adversary (§4.1)",
		Run:        runPermutationAblation,
	})
	register(Experiment{
		ID:         "ABL-seeds",
		Title:      "Ablation: shared seeds in geographic local broadcast",
		PaperClaim: "seed dissemination provides the local coordination of §4.3",
		Run:        runSeedAblation,
	})
}

func runPermutationAblation(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "ABL-permutation",
		Title:      "Permutation-bit ablation",
		PaperClaim: "permuted decay beats the sampling adversary; plain decay does not",
		Table:      stats.NewTable("algorithm", "n", "median", "p90", "solved"),
	}
	n := 1024
	if !cfg.Quick {
		n = 2048
	}
	d, _ := graph.DualClique(n, 3)
	medians := map[string]float64{}
	sw := newSweep(cfg)
	for _, alg := range []radio.Algorithm{core.PermutedGlobal{}, core.DecayGlobal{}} {
		sw.point(cfg.trials(), func(seed uint64) radio.Config {
			return radio.Config{
				Net: d, Algorithm: alg,
				Spec: radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
				Link: adversary.Presample{C: 1, Horizon: 4 * n},
				Seed: seed, MaxRounds: 400 * n, UseCliqueCover: true,
			}
		}, func(out trialOutcome) {
			medians[alg.Name()] = out.MedianRounds
			res.Table.AddRow(alg.Name(), n, out.MedianRounds, out.P90, fmt.Sprintf("%d/%d", out.Solved, out.Trials))
		})
	}
	if err := sw.run(); err != nil {
		return nil, err
	}
	ratio := medians["decay-global"] / medians["permuted-global"]
	res.Notes = append(res.Notes, fmt.Sprintf("plain decay / permuted decay = %.2fx at n=%d (higher = permutation bits matter more)", ratio, n))
	res.Pass = ratio > 1.1
	res.Notes = append(res.Notes, verdict(res.Pass))
	return res, nil
}

func runSeedAblation(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "ABL-seeds",
		Title:      "Seed-sharing ablation",
		PaperClaim: "shared seeds coordinate nearby broadcasters (§4.3)",
		Table:      stats.NewTable("algorithm", "n", "Δ", "median", "p90", "solved"),
	}
	side := 8
	if !cfg.Quick {
		side = 12
	}
	net := geoGridNet(side, 31)
	n := net.N()
	delta := net.MaxDegree()
	// Dense broadcaster set: all nodes broadcast, maximizing contention so
	// coordination has something to do.
	b := make([]graph.NodeID, n)
	for u := range b {
		b[u] = u
	}
	medians := map[string]float64{}
	solvedAll := true
	var seededMedian float64
	sw := newSweep(cfg)
	for _, alg := range []radio.Algorithm{
		core.GeoLocal{},
		core.GeoLocal{DisableSeedSharing: true},
		core.PermutedLocalUncoordinated{},
	} {
		sw.point(cfg.trials(), func(seed uint64) radio.Config {
			return radio.Config{
				Net: net, Algorithm: alg,
				Spec: radio.Spec{Problem: radio.LocalBroadcast, Broadcasters: b},
				Link: adversary.RandomLoss{P: 0.5},
				Seed: seed, MaxRounds: 1000 * n,
			}
		}, func(out trialOutcome) {
			medians[alg.Name()] = out.MedianRounds
			if alg.Name() == "geo-local" {
				seededMedian = out.MedianRounds
				if out.Solved < out.Trials {
					solvedAll = false
				}
			}
			res.Table.AddRow(alg.Name(), n, delta, out.MedianRounds, out.P90, fmt.Sprintf("%d/%d", out.Solved, out.Trials))
		})
	}
	if err := sw.run(); err != nil {
		return nil, err
	}
	ratio := medians["geo-local-noseeds"] / medians["geo-local"]
	res.Notes = append(res.Notes,
		fmt.Sprintf("no-seed variant / seeded = %.2fx under i.i.d. loss", ratio),
		"note: under benign i.i.d. loss at moderate Δ, independent randomness can even win (diversification); "+
			"the coordination payoff appears under adversarial contention — see F1-oblivious-local-general, where "+
			"the uncoordinated variants stall on the bracelet while the geographic algorithm stays polylog on geo graphs")
	// The normative claim checked here is Theorem 4.6's: the seeded
	// algorithm completes reliably within a polylog-scale budget. The
	// seeded-vs-unseeded ratio is reported, not asserted: its sign is
	// contention-dependent.
	logN := float64(bitrand.LogN(n))
	logD := float64(bitrand.LogN(delta))
	budget := 64 * logN * logN * logD
	res.Pass = solvedAll && seededMedian <= budget
	res.Notes = append(res.Notes, verdict(res.Pass))
	return res, nil
}
