package experiments

// CustomChurn builds experiments from serialized scenario specs: the run
// service accepts a scenario.GenConfig over the wire and turns it into one
// unregistered experiment here, reusing the CHURN-broadcast machinery (geo
// grid base, static-vs-churned rows sharing seeds, decay broadcast) with the
// caller's churn timeline instead of the hardcoded one. The experiment is
// deliberately not in the registry — its identity lives in the submitted
// spec, and the caller bakes a content hash of that spec into the ID so the
// result cache keys distinct scenarios apart.

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// CustomChurn returns a runnable experiment executing global decay broadcast
// on a side×side geographic grid under the given churn timeline, alongside a
// static row sharing the same trial seeds. The id must be unique per distinct
// (side, scenarioSeed, gen) triple — callers derive it from a hash of the
// spec. The scenario is broadcast-only: gen.InjectSources is rejected, since
// injections only exist for gossip workloads.
func CustomChurn(id string, side int, scenarioSeed uint64, gen scenario.GenConfig) Experiment {
	return Experiment{
		ID:         id,
		Title:      fmt.Sprintf("Custom churn: decay broadcast on a %d×%d geographic grid", side, side),
		PaperClaim: "decay-style broadcast is self-stabilizing under the submitted epoch schedule",
		Run: func(cfg Config) (*Result, error) {
			return runCustomChurn(cfg, id, side, scenarioSeed, gen)
		},
	}
}

func runCustomChurn(cfg Config, id string, side int, scenarioSeed uint64, gen scenario.GenConfig) (*Result, error) {
	if len(gen.InjectSources) > 0 {
		return nil, fmt.Errorf("experiments: custom churn runs global broadcast only; InjectSources is not supported")
	}
	if side < 2 {
		return nil, fmt.Errorf("experiments: custom churn grid side %d, need at least 2", side)
	}
	net := geoGridNet(side, 77)
	n := net.N()
	// The source must survive every epoch or broadcast can never complete;
	// force-protect it rather than making every spec author remember to.
	gen.Protected = append(append([]graph.NodeID(nil), gen.Protected...), 0)
	epochs, _, err := churnScenario(net, scenarioSeed, gen)
	if err != nil {
		return nil, err
	}
	maxRounds := gen.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 400 * n
	}
	res := &Result{
		ID:         id,
		Title:      fmt.Sprintf("Custom churn: decay broadcast, %d×%d geo grid (scenario seed %d)", side, side, scenarioSeed),
		PaperClaim: "completes in every trial; churn slows but never stalls dissemination",
		Table:      stats.NewTable("schedule", "n", "epochs", "median", "p90", "solved"),
	}
	res.Pass = true
	trials := cfg.trials()
	sw := newSweep(cfg)
	for _, sched := range []struct {
		name   string
		epochs []radio.Epoch
	}{
		{"static", nil},
		{"churn", epochs},
	} {
		sched := sched
		sw.point(trials, func(seed uint64) radio.Config {
			c := radio.Config{
				Algorithm: core.DecayGlobal{},
				Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
				Link:      adversary.RandomLoss{P: 0.5},
				Seed:      seed, MaxRounds: maxRounds,
			}
			if sched.epochs == nil {
				c.Net = net
			} else {
				c.Epochs = sched.epochs
			}
			return c
		}, func(out trialOutcome) {
			if out.Solved < out.Trials {
				res.Pass = false
			}
			res.Table.AddRow(sched.name, n, len(sched.epochs), out.MedianRounds, out.P90,
				fmt.Sprintf("%d/%d", out.Solved, out.Trials))
		})
	}
	if err := sw.run(); err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("submitted schedule: %d churn epochs of %d rounds (+healing); static rows share seeds with churned rows",
			gen.Epochs, gen.EpochLen),
		verdict(res.Pass))
	return res, nil
}
