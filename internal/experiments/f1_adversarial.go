package experiments

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:         "F1-offline-global",
		Title:      "Global broadcast vs offline adaptive adversary (dual clique)",
		PaperClaim: "Ω(n) / O(n·log²n) [Figure 1 row 1]",
		Run: func(cfg Config) (*Result, error) {
			return runDualCliqueScaling(cfg, "F1-offline-global", "Ω(n) / O(n·log²n)",
				radio.GlobalBroadcast, adversary.Jam{}, offlineSizes(cfg), 0.5)
		},
	})
	register(Experiment{
		ID:         "F1-offline-local",
		Title:      "Local broadcast vs offline adaptive adversary (dual clique)",
		PaperClaim: "Ω(n) / O(n·log n) [Figure 1 row 1]",
		Run: func(cfg Config) (*Result, error) {
			return runDualCliqueScaling(cfg, "F1-offline-local", "Ω(n) / O(n·log n)",
				radio.LocalBroadcast, adversary.Jam{}, offlineSizes(cfg), 0.45)
		},
	})
	register(Experiment{
		ID:         "F1-online-global",
		Title:      "Global broadcast vs online adaptive adversary (dual clique)",
		PaperClaim: "Ω(n/log n) [Theorem 3.1]",
		Run: func(cfg Config) (*Result, error) {
			return runDualCliqueScaling(cfg, "F1-online-global", "Ω(n/log n)",
				radio.GlobalBroadcast, adversary.DenseSparse{C: 1}, onlineSizes(cfg), 0.5)
		},
	})
	register(Experiment{
		ID:         "F1-online-local",
		Title:      "Local broadcast vs online adaptive adversary (dual clique)",
		PaperClaim: "Ω(n/log n) [Theorem 3.1]",
		Run: func(cfg Config) (*Result, error) {
			return runDualCliqueScaling(cfg, "F1-online-local", "Ω(n/log n)",
				radio.LocalBroadcast, adversary.DenseSparse{C: 1}, onlineSizes(cfg), 0.5)
		},
	})
	register(Experiment{
		ID:         "F1-oblivious-global",
		Title:      "Global broadcast vs oblivious adversaries (dual clique)",
		PaperClaim: "O(D·log n + log²n) via permuted decay [Theorem 4.1]",
		Run:        runObliviousGlobal,
	})
}

func offlineSizes(cfg Config) []int {
	if cfg.Quick {
		return []int{64, 256}
	}
	return []int{64, 256, 1024}
}

func onlineSizes(cfg Config) []int {
	if cfg.Quick {
		return []int{128, 512}
	}
	return []int{256, 1024, 4096}
}

// dualCliqueSpec builds the problem instance used throughout the dual clique
// experiments: global broadcast from a non-bridge source in A, or local
// broadcast with B = A (as in the Theorem 3.1 proof).
func dualCliqueSpec(problem radio.Problem, m graph.DualCliqueMarkers) radio.Spec {
	if problem == radio.GlobalBroadcast {
		return radio.Spec{Problem: radio.GlobalBroadcast, Source: 0}
	}
	b := make([]graph.NodeID, m.SizeA)
	for i := range b {
		b[i] = i
	}
	return radio.Spec{Problem: radio.LocalBroadcast, Broadcasters: b}
}

// dualCliqueAlg picks the natural algorithm for a problem.
func dualCliqueAlg(problem radio.Problem) radio.Algorithm {
	if problem == radio.GlobalBroadcast {
		return core.DecayGlobal{}
	}
	return core.DecayLocal{}
}

// runDualCliqueScaling measures the round complexity of decay-style
// broadcast on the dual clique against the given adversary over an n-sweep
// and fits the growth exponent; the lower-bound rows of Figure 1 predict
// near-linear growth (exponent well above the polylog regime).
func runDualCliqueScaling(cfg Config, id, claim string, problem radio.Problem, link any, sizes []int, minExp float64) (*Result, error) {
	title := "Global broadcast on the dual clique"
	if problem == radio.LocalBroadcast {
		title = "Local broadcast on the dual clique"
	}
	res := &Result{
		ID:         id,
		Title:      title,
		PaperClaim: claim,
		Table:      stats.NewTable("algorithm", "n", "median", "p90", "median/n", "solved"),
	}
	var ns, ts []float64
	sw := newSweep(cfg)
	for _, n := range sizes {
		d, m := graph.DualClique(n, 3)
		spec := dualCliqueSpec(problem, m)
		alg := dualCliqueAlg(problem)
		sw.point(cfg.trials(), func(seed uint64) radio.Config {
			return radio.Config{
				Net: d, Algorithm: alg, Spec: spec, Link: link,
				Seed: seed, MaxRounds: 400 * n, UseCliqueCover: true,
			}
		}, func(out trialOutcome) {
			res.Table.AddRow(alg.Name(), n, out.MedianRounds, out.P90, out.MedianRounds/float64(n),
				fmt.Sprintf("%d/%d", out.Solved, out.Trials))
			ns = append(ns, float64(n))
			ts = append(ts, out.MedianRounds)
		})
	}
	if err := sw.run(); err != nil {
		return nil, err
	}
	res.addSeries("median rounds", ns, ts)
	fit := stats.GrowthExponent(ns, ts)
	res.Notes = append(res.Notes, fmt.Sprintf("T ~ n^%.2f (R²=%.2f); lower bound predicts near-linear growth (exponent ≥ %.2f at these sizes)", fit.Slope, fit.R2, minExp))
	res.Pass = fit.Slope >= minExp
	res.Notes = append(res.Notes, verdict(res.Pass))
	return res, nil
}

func runObliviousGlobal(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "F1-oblivious-global",
		Title:      "Global broadcast vs oblivious adversaries (dual clique)",
		PaperClaim: "O(D·log n + log²n) via permuted decay",
		Table:      stats.NewTable("algorithm", "adversary", "n", "median", "p90", "solved"),
	}
	sizes := []int{256, 1024}
	if !cfg.Quick {
		sizes = []int{256, 1024, 2048}
	}
	type key struct {
		alg, adv string
		n        int
	}
	medians := map[key]float64{}
	var permNs, permTs []float64
	sw := newSweep(cfg)
	for _, n := range sizes {
		d, _ := graph.DualClique(n, 3)
		links := map[string]any{
			"presample":   adversary.Presample{C: 1, Horizon: 4 * n},
			"random-loss": adversary.RandomLoss{P: 0.5},
		}
		for _, advName := range sortedKeys(links) {
			link := links[advName]
			for _, alg := range []radio.Algorithm{core.PermutedGlobal{}, core.DecayGlobal{}} {
				sw.point(cfg.trials(), func(seed uint64) radio.Config {
					return radio.Config{
						Net: d, Algorithm: alg,
						Spec: radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
						Link: link, Seed: seed, MaxRounds: 400 * n, UseCliqueCover: true,
					}
				}, func(out trialOutcome) {
					res.Table.AddRow(alg.Name(), advName, n, out.MedianRounds, out.P90,
						fmt.Sprintf("%d/%d", out.Solved, out.Trials))
					medians[key{alg.Name(), advName, n}] = out.MedianRounds
					if alg.Name() == "permuted-global" && advName == "presample" {
						permNs = append(permNs, float64(n))
						permTs = append(permTs, out.MedianRounds)
					}
				})
			}
		}
	}
	if err := sw.run(); err != nil {
		return nil, err
	}
	res.addSeries("permuted-global vs presample", permNs, permTs)
	fit := stats.GrowthExponent(permNs, permTs)
	nMax := sizes[len(sizes)-1]
	sep := medians[key{"decay-global", "presample", nMax}] / medians[key{"permuted-global", "presample", nMax}]
	res.Notes = append(res.Notes,
		fmt.Sprintf("permuted decay vs presample: T ~ n^%.2f (R²=%.2f); upper bound predicts polylog growth", fit.Slope, fit.R2),
		fmt.Sprintf("at n=%d, plain decay is %.2fx slower than permuted decay against the sampling adversary (the permutation-bit defense)", nMax, sep))
	res.Pass = fit.Slope < 0.5 && sep > 1.1
	res.Notes = append(res.Notes, verdict(res.Pass))
	return res, nil
}
