package experiments

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
)

func testTrialConfig(seed uint64) radio.Config {
	net := graph.UniformDual(graph.Clique(24))
	return radio.Config{
		Net:       net,
		Algorithm: core.DecayGlobal{},
		Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
		Seed:      seed,
		MaxRounds: 10000,
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	par, err := runTrialsParallel(testTrialConfig, 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := runTrialsSequential(testTrialConfig, 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if par.Solved != seq.Solved || par.Trials != seq.Trials {
		t.Fatalf("parallel %+v != sequential %+v", par, seq)
	}
	if math.Abs(par.MedianRounds-seq.MedianRounds) > 1e-9 ||
		math.Abs(par.MeanRounds-seq.MeanRounds) > 1e-9 ||
		math.Abs(par.P90-seq.P90) > 1e-9 {
		t.Fatalf("aggregates diverge: parallel %+v vs sequential %+v", par, seq)
	}
}

func TestParallelZeroTrials(t *testing.T) {
	out, err := runTrialsParallel(testTrialConfig, 0, 0)
	if err != nil || out.Trials != 0 {
		t.Fatalf("zero trials: %+v, %v", out, err)
	}
}

func TestParallelPropagatesErrors(t *testing.T) {
	bad := func(seed uint64) radio.Config {
		return radio.Config{} // nil network: invalid
	}
	if _, err := runTrialsParallel(bad, 4, 0); err == nil {
		t.Fatal("invalid config error not propagated")
	}
}
