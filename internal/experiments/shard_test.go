package experiments

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/shard"
)

// shardTestExps picks one point-based engine experiment, both tasks-based
// lemma checks, and the scenario-layer families (epoch churn, raw-task
// contention, and the churn-window adversary race), covering every task
// flavor the scheduler shards.
func shardTestExps(t testing.TB) []Experiment {
	t.Helper()
	ids := []string{"ADV-churnwindow", "CHURN-gossip", "EXT-contention", "F1-static-local", "L3.2-hitting", "L4.2-permdecay"}
	exps := make([]Experiment, len(ids))
	for i, id := range ids {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		exps[i] = e
	}
	return exps
}

func TestPlanTasksDeterministic(t *testing.T) {
	cfg := Config{Quick: true, Trials: 2}
	exps := shardTestExps(t)
	p1, err := PlanTasks(cfg, exps)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := PlanTasks(cfg, exps)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != len(exps) {
		t.Fatalf("plan has %d rows for %d experiments", len(p1), len(exps))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("plan not deterministic: %+v vs %+v", p1[i], p2[i])
		}
		if p1[i].ID != exps[i].ID || p1[i].Tasks <= 0 {
			t.Fatalf("plan row %d = %+v, want tasks > 0 for %s", i, p1[i], exps[i].ID)
		}
	}
}

// TestShardMergeMatchesRunAll is the core sharding invariant, table-driven
// over K: executing the plan as K shards and merging produces results whose
// rendered tables, notes, and series are byte-identical to an unsharded
// shared-pool run at the same seeds.
func TestShardMergeMatchesRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite")
	}
	cfg := Config{Quick: true, Trials: 2, BaseSeed: 3}
	exps := shardTestExps(t)
	baseline, errs := RunAll(cfg, exps)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("%s: %v", exps[i].ID, err)
		}
	}
	for _, k := range []int{1, 2, 3} {
		k := k
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			t.Parallel()
			arts := make([]*shard.Artifact, k)
			for i := 1; i <= k; i++ {
				art, err := ExecuteShard(cfg, exps, i, k)
				if err != nil {
					t.Fatalf("shard %d/%d: %v", i, k, err)
				}
				arts[i-1] = art
			}
			// The shards must tile the plan: together they hold every task
			// exactly once (Merge validates this and errors otherwise).
			merged, err := shard.Merge(arts)
			if err != nil {
				t.Fatal(err)
			}
			mergedExps, err := MergedExperiments(merged)
			if err != nil {
				t.Fatal(err)
			}
			results, errs := RunMerged(ConfigFromMerged(merged), mergedExps, merged)
			if len(results) != len(exps) {
				t.Fatalf("merged %d results for %d experiments", len(results), len(exps))
			}
			for i := range mergedExps {
				if errs[i] != nil {
					t.Fatalf("%s: %v", mergedExps[i].ID, errs[i])
				}
				if got, want := resultFingerprint(results[i]), resultFingerprint(baseline[i]); got != want {
					t.Errorf("%s: merged output differs from unsharded run at K=%d\n--- unsharded:\n%s\n--- merged:\n%s",
						mergedExps[i].ID, k, want, got)
				}
			}
		})
	}
}

// TestShardsAreBalanced checks the round-robin partition: no shard owns
// more than ceil(total/K) tasks, so K machines see near-equal queues.
func TestShardsAreBalanced(t *testing.T) {
	cfg := Config{Quick: true, Trials: 2}
	exps := []Experiment{mustByID(t, "L3.2-hitting"), mustByID(t, "L4.2-permdecay")}
	plan, err := PlanTasks(cfg, exps)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range plan {
		total += p.Tasks
	}
	const k = 3
	owned := 0
	for i := 1; i <= k; i++ {
		art, err := ExecuteShard(cfg, exps, i, k)
		if err != nil {
			t.Fatal(err)
		}
		if max := (total + k - 1) / k; len(art.Records) > max {
			t.Errorf("shard %d/%d owns %d of %d tasks, max fair share %d", i, k, len(art.Records), total, max)
		}
		owned += len(art.Records)
	}
	if owned != total {
		t.Fatalf("shards own %d tasks, plan has %d", owned, total)
	}
}

func TestExecuteShardRejectsBadIndex(t *testing.T) {
	exps := []Experiment{mustByID(t, "L3.2-hitting")}
	for _, bad := range [][2]int{{0, 2}, {3, 2}, {1, 0}} {
		if _, err := ExecuteShard(Config{Quick: true}, exps, bad[0], bad[1]); err == nil {
			t.Errorf("shard %d/%d accepted", bad[0], bad[1])
		}
	}
}

// TestMergeReplaysTrialErrors injects a recorded trial failure into an
// artifact and checks the merge surfaces it as the sweep's *TrialError,
// message intact — distributed trial failures report at merge time instead
// of killing the executing machine's whole shard.
func TestMergeReplaysTrialErrors(t *testing.T) {
	cfg := Config{Quick: true, Trials: 2}
	exps := []Experiment{mustByID(t, "F1-static-local")}
	art, err := ExecuteShard(cfg, exps, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	art.Records[0].Err = "injected remote failure"
	merged, err := shard.Merge([]*shard.Artifact{art})
	if err != nil {
		t.Fatal(err)
	}
	_, errs := RunMerged(ConfigFromMerged(merged), exps, merged)
	if errs[0] == nil {
		t.Fatal("recorded trial failure not surfaced by merge")
	}
	var te *TrialError
	if !errors.As(errs[0], &te) {
		t.Fatalf("merge error %T is not a *TrialError: %v", errs[0], errs[0])
	}
	if !strings.Contains(errs[0].Error(), "injected remote failure") {
		t.Fatalf("merge error lost the recorded message: %v", errs[0])
	}
}

// TestMergeRejectsUnconsumedRecords simulates merging artifacts written by
// a binary whose sweep declared more tasks than this one does (plan claims
// extra records): the replay must fail loudly instead of silently matching
// records against the wrong (point, trial) pairs.
func TestMergeRejectsUnconsumedRecords(t *testing.T) {
	cfg := Config{Quick: true, Trials: 2}
	exps := []Experiment{mustByID(t, "L4.2-permdecay")}
	art, err := ExecuteShard(cfg, exps, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	id := exps[0].ID
	n := art.Plan[0].Tasks
	art.Plan[0].Tasks = n + 2
	art.Records = append(art.Records,
		shard.TaskRecord{Exp: id, Index: n, Vals: []float64{1}},
		shard.TaskRecord{Exp: id, Index: n + 1, Vals: []float64{1}})
	merged, err := shard.Merge([]*shard.Artifact{art})
	if err != nil {
		t.Fatal(err)
	}
	results, errs := RunMerged(ConfigFromMerged(merged), exps, merged)
	if errs[0] == nil || results[0] != nil {
		t.Fatalf("surplus planned records accepted: res=%v err=%v", results[0], errs[0])
	}
}

// TestMergeRejectsEmptyRecord strips one record of both values and error
// (a truncated or hand-edited artifact): the replay must refuse rather
// than silently aggregate zeros.
func TestMergeRejectsEmptyRecord(t *testing.T) {
	cfg := Config{Quick: true, Trials: 2}
	exps := []Experiment{mustByID(t, "L4.2-permdecay")}
	art, err := ExecuteShard(cfg, exps, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	art.Records[3].Vals = nil
	art.Records[3].Err = ""
	merged, err := shard.Merge([]*shard.Artifact{art})
	if err != nil {
		t.Fatal(err)
	}
	_, errs := RunMerged(ConfigFromMerged(merged), exps, merged)
	if errs[0] == nil || !strings.Contains(errs[0].Error(), "neither values nor an error") {
		t.Fatalf("value-less record accepted: %v", errs[0])
	}
}

func mustByID(t testing.TB, id string) Experiment {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	return e
}
