package experiments

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:         "EXT-gossip",
		Title:      "Extension: k-rumor spreading in the oblivious dual graph model",
		PaperClaim: "future work per the paper's conclusion; TDM permuted decay predicts ~k·(D·logn+log²n) rounds",
		Run:        runGossipExt,
	})
	register(Experiment{
		ID:         "EXT-leader",
		Title:      "Extension: leader election in the dual graph model",
		PaperClaim: "future work per the paper's conclusion; decay-relayed max dissemination",
		Run:        runLeaderExt,
	})
}

func runGossipExt(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "EXT-gossip",
		Title:      "k-rumor spreading (TDM permuted decay)",
		PaperClaim: "rounds scale ~linearly in k at fixed n; polylog in n at fixed k",
		Table:      stats.NewTable("n", "k", "median", "median/k", "solved"),
	}
	sizes := []int{64}
	ks := []int{1, 2, 4}
	if !cfg.Quick {
		sizes = []int{64, 256}
		ks = []int{1, 2, 4, 8}
	}
	trials := cfg.trials()
	if trials < 8 {
		trials = 8
	}
	var kXs, kTs []float64
	sw := newSweep(cfg)
	for _, n := range sizes {
		d, _ := graph.DualClique(n, 3)
		for _, k := range ks {
			sources := make([]graph.NodeID, k)
			for i := range sources {
				sources[i] = i * (n / (2 * k))
			}
			sw.point(trials, func(seed uint64) radio.Config {
				return radio.Config{
					Net:       d,
					Algorithm: gossip.TDM{},
					Spec:      radio.Spec{Problem: radio.Gossip, Sources: sources},
					Link:      adversary.RandomLoss{P: 0.5},
					Seed:      seed, MaxRounds: 4000 * n, UseCliqueCover: true,
				}
			}, func(out trialOutcome) {
				res.Table.AddRow(n, k, out.MedianRounds, out.MedianRounds/float64(k),
					fmt.Sprintf("%d/%d", out.Solved, out.Trials))
				if n == sizes[len(sizes)-1] {
					kXs = append(kXs, float64(k))
					kTs = append(kTs, out.MedianRounds)
				}
			})
		}
	}
	if err := sw.run(); err != nil {
		return nil, err
	}
	res.addSeries("rounds vs k (largest n)", kXs, kTs)
	fit := stats.GrowthExponent(kXs, kTs)
	res.Notes = append(res.Notes,
		fmt.Sprintf("T ~ k^%.2f (R²=%.2f) at fixed n; time-division predicts ≈ k, plus a ln k factor because completion is the max over k independent per-rumor coupon times", fit.Slope, fit.R2))
	res.Pass = fit.Slope > 0.6 && fit.Slope < 1.8
	res.Notes = append(res.Notes, verdict(res.Pass))
	return res, nil
}

func runLeaderExt(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "EXT-leader",
		Title:      "Leader election (decay-relayed max dissemination)",
		PaperClaim: "completes w.h.p.; cost is topology-dependent: Θ(n) on the dual clique (the first informative solo-round needs the leader itself), sub-linear on geographic graphs with local contention",
		Table:      stats.NewTable("topology", "n", "median", "p90", "solved"),
	}
	trials := cfg.trials()
	if trials < 5 {
		trials = 5
	}
	alg := gossip.LeaderElect{RankSeed: 77}
	res.Pass = true

	// Dual clique: global contention. With everyone on the same decay
	// sweep, useful rounds have one transmitter network-wide, and the
	// leader's claim starts spreading only when the leader itself is that
	// transmitter — a 1/n event: expect ~linear growth.
	dcSizes := []int{64, 256}
	if !cfg.Quick {
		dcSizes = []int{64, 256, 1024}
	}
	sw := newSweep(cfg)
	var dcNs, dcTs []float64
	for _, n := range dcSizes {
		d, _ := graph.DualClique(n, 3)
		leader := alg.Leader(n)
		sw.point(trials, func(seed uint64) radio.Config {
			return radio.Config{
				Net:       d,
				Algorithm: alg,
				Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: leader},
				Link:      adversary.RandomLoss{P: 0.5},
				Seed:      seed, MaxRounds: 400 * n, UseCliqueCover: true,
			}
		}, func(out trialOutcome) {
			if out.Solved < out.Trials {
				res.Pass = false
			}
			res.Table.AddRow("dual-clique", n, out.MedianRounds, out.P90, fmt.Sprintf("%d/%d", out.Solved, out.Trials))
			dcNs = append(dcNs, float64(n))
			dcTs = append(dcTs, out.MedianRounds)
		})
	}

	// Geographic grids: local contention, hop-by-hop spread; expect clearly
	// sub-linear growth (roughly diameter·polylog ≈ √n·polylog).
	sides := []int{8, 16}
	if !cfg.Quick {
		sides = []int{8, 12, 16, 24}
	}
	var geoNs, geoTs []float64
	for _, side := range sides {
		net := geoGridNet(side, 21)
		n := net.N()
		leader := alg.Leader(n)
		sw.point(trials, func(seed uint64) radio.Config {
			return radio.Config{
				Net:       net,
				Algorithm: alg,
				Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: leader},
				Link:      adversary.RandomLoss{P: 0.5},
				Seed:      seed, MaxRounds: 400 * n,
			}
		}, func(out trialOutcome) {
			if out.Solved < out.Trials {
				res.Pass = false
			}
			res.Table.AddRow("geo-grid", n, out.MedianRounds, out.P90, fmt.Sprintf("%d/%d", out.Solved, out.Trials))
			geoNs = append(geoNs, float64(n))
			geoTs = append(geoTs, out.MedianRounds)
		})
	}
	if err := sw.run(); err != nil {
		return nil, err
	}

	res.addSeries("dual clique", dcNs, dcTs)
	res.addSeries("geo grid", geoNs, geoTs)
	dcFit := stats.GrowthExponent(dcNs, dcTs)
	geoFit := stats.GrowthExponent(geoNs, geoTs)
	res.Notes = append(res.Notes,
		fmt.Sprintf("dual clique: T ~ n^%.2f (R²=%.2f) — the predicted ~linear global-contention regime", dcFit.Slope, dcFit.R2),
		fmt.Sprintf("geo grid: T ~ n^%.2f (R²=%.2f) — hop-by-hop spread, predicted sub-linear", geoFit.Slope, geoFit.R2))
	if dcFit.Slope < 0.6 || dcFit.Slope > 1.8 {
		res.Pass = false
	}
	if geoFit.Slope >= 0.9 || geoFit.Slope >= dcFit.Slope-0.2 {
		res.Pass = false
	}
	res.Notes = append(res.Notes, verdict(res.Pass))
	return res, nil
}
