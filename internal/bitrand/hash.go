package bitrand

// mix64 is the SplitMix64 finalizer: a full-avalanche 64-bit mixer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash64 mixes the given values into a single 64-bit hash. It is
// deterministic and stateless: oblivious adversaries use it to derive
// per-(round, edge) decisions from a seed committed before the execution.
func Hash64(vals ...uint64) uint64 {
	h := uint64(0x6a09e667f3bcc909)
	for _, v := range vals {
		h = mix64(h ^ v)
		h += 0x9e3779b97f4a7c15
	}
	return mix64(h)
}

// HashFloat maps the hash of the given values to [0, 1).
func HashFloat(vals ...uint64) float64 {
	return float64(Hash64(vals...)>>11) / (1 << 53)
}
