package bitrand

import (
	"testing"
	"testing/quick"
)

func TestBitStringLenAndAt(t *testing.T) {
	src := New(1)
	b := NewBitString(src, 130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d, want 130", b.Len())
	}
	for i := 0; i < 130; i++ {
		v := b.At(i)
		if v != 0 && v != 1 {
			t.Fatalf("At(%d) = %d", i, v)
		}
	}
}

func TestBitStringAtPanics(t *testing.T) {
	b := NewBitString(New(1), 8)
	defer func() {
		if recover() == nil {
			t.Fatal("At(8) on length-8 string did not panic")
		}
	}()
	b.At(8)
}

func TestBitStringTakeMatchesAt(t *testing.T) {
	src := New(2)
	b := NewBitString(src, 200)
	c := b.Clone()
	for read := 0; read+7 <= 200; read += 7 {
		v := b.Take(7)
		var want uint64
		for i := 0; i < 7; i++ {
			want |= c.At(read+i) << uint(i)
		}
		if v != want {
			t.Fatalf("Take at offset %d = %b, want %b", read, v, want)
		}
	}
}

func TestBitStringTakeWraps(t *testing.T) {
	b := NewBitString(New(3), 10)
	b.Take(10)
	// Next take wraps to the start; must equal the first bits again.
	c := b.Clone()
	if got, want := b.Take(4), c.Take(4); got != want {
		t.Fatalf("wrapped Take = %b, want %b", got, want)
	}
}

func TestBitStringTakeEmpty(t *testing.T) {
	b := NewBitString(New(4), 0)
	if got := b.Take(8); got != 0 {
		t.Fatalf("Take on empty string = %d, want 0", got)
	}
}

func TestBitStringTakeIndexRange(t *testing.T) {
	src := New(5)
	b := NewBitString(src, 4096)
	for _, m := range []int{1, 2, 3, 5, 8, 16, 31} {
		for i := 0; i < 20; i++ {
			v := b.TakeIndex(m)
			if v < 0 || v >= m {
				t.Fatalf("TakeIndex(%d) = %d out of range", m, v)
			}
		}
	}
}

func TestBitStringTakeIndexUniformPowerOfTwo(t *testing.T) {
	b := NewBitString(New(6), 1<<18)
	counts := make([]int, 8)
	const trials = 8000
	for i := 0; i < trials; i++ {
		counts[b.TakeIndex(8)]++
	}
	for i, c := range counts {
		if c < trials/8-300 || c > trials/8+300 {
			t.Fatalf("TakeIndex(8) bucket %d = %d, want ~%d", i, c, trials/8)
		}
	}
}

func TestBitStringCloneIndependentCursor(t *testing.T) {
	b := NewBitString(New(7), 64)
	c := b.Clone()
	b.Take(32)
	if c.Remaining() != 64 {
		t.Fatalf("clone cursor moved: remaining %d", c.Remaining())
	}
	// Contents must match bit for bit.
	b.Rewind()
	for i := 0; i < 64; i++ {
		if b.At(i) != c.At(i) {
			t.Fatalf("clone differs at bit %d", i)
		}
	}
}

func TestBitStringSlice(t *testing.T) {
	b := NewBitString(New(8), 100)
	s := b.Slice(10, 20)
	if s.Len() != 20 {
		t.Fatalf("Slice len = %d, want 20", s.Len())
	}
	for i := 0; i < 20; i++ {
		if s.At(i) != b.At(10+i) {
			t.Fatalf("slice bit %d mismatch", i)
		}
	}
	// Out-of-range slices clamp.
	if got := b.Slice(90, 50).Len(); got != 10 {
		t.Fatalf("clamped slice len = %d, want 10", got)
	}
	if got := b.Slice(-5, 5).Len(); got != 5 {
		t.Fatalf("negative-from slice len = %d, want 5", got)
	}
}

func TestBitStringFromWordsCopies(t *testing.T) {
	words := []uint64{0xff}
	b := BitStringFromWords(words, 8)
	words[0] = 0
	for i := 0; i < 8; i++ {
		if b.At(i) != 1 {
			t.Fatal("BitStringFromWords did not copy input")
		}
	}
}

func TestBitsFor(t *testing.T) {
	cases := []struct{ m, want int }{
		{0, 1}, {1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {16, 4}, {17, 5},
	}
	for _, c := range cases {
		if got := BitsFor(c.m); got != c.want {
			t.Errorf("BitsFor(%d) = %d, want %d", c.m, got, c.want)
		}
	}
}

func TestLogHelpers(t *testing.T) {
	cases := []struct{ n, ceil, floor int }{
		{1, 0, 0}, {2, 1, 1}, {3, 2, 1}, {4, 2, 2}, {5, 3, 2}, {8, 3, 3}, {9, 4, 3}, {1024, 10, 10}, {1025, 11, 10},
	}
	for _, c := range cases {
		if got := Log2Ceil(c.n); got != c.ceil {
			t.Errorf("Log2Ceil(%d) = %d, want %d", c.n, got, c.ceil)
		}
		if got := Log2Floor(c.n); got != c.floor {
			t.Errorf("Log2Floor(%d) = %d, want %d", c.n, got, c.floor)
		}
	}
	if LogN(1) != 1 || LogLogN(2) != 1 {
		t.Error("LogN/LogLogN must floor at 1")
	}
	if LogN(1024) != 10 {
		t.Errorf("LogN(1024) = %d, want 10", LogN(1024))
	}
}

func TestLogPropertyQuick(t *testing.T) {
	err := quick.Check(func(raw uint16) bool {
		n := int(raw) + 1
		c, f := Log2Ceil(n), Log2Floor(n)
		if c < f || c > f+1 {
			return false
		}
		// 2^f <= n <= 2^c
		return (1<<uint(f)) <= n && n <= (1<<uint(c))
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestNaturalLogFloor(t *testing.T) {
	if NaturalLog(1) != 1 {
		t.Fatal("NaturalLog(1) must be floored to 1")
	}
	if v := NaturalLog(1000); v < 6.9 || v > 6.91 {
		t.Fatalf("NaturalLog(1000) = %v", v)
	}
}
