package bitrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: sources with equal seeds diverged: %d != %d", i, got, want)
		}
	}
}

func TestNewDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sources with different seeds produced %d/64 equal values", same)
	}
}

func TestSplitDeterministicAndIndependent(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1, 2)
	c2 := parent.Split(1, 2)
	c3 := parent.Split(1, 3)
	if c1.Uint64() != c2.Uint64() {
		t.Fatal("same labels must give the same child stream")
	}
	diff := false
	for i := 0; i < 16; i++ {
		if c1.Uint64() != c3.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different labels produced identical child streams")
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(11)
	b := New(11)
	_ = a.Split(5)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Split must not consume parent randomness")
	}
}

func TestBitsAccounting(t *testing.T) {
	s := New(3)
	s.Bits(5)
	s.Bits(64)
	s.Bit()
	if got, want := s.Consumed(), uint64(5+64+1); got != want {
		t.Fatalf("Consumed = %d, want %d", got, want)
	}
}

func TestBitsRange(t *testing.T) {
	s := New(9)
	for k := uint(1); k <= 64; k++ {
		v := s.Bits(k)
		if k < 64 && v >= 1<<k {
			t.Fatalf("Bits(%d) = %d out of range", k, v)
		}
	}
	if got := s.Bits(0); got != 0 {
		t.Fatalf("Bits(0) = %d, want 0", got)
	}
}

func TestBitsUniformish(t *testing.T) {
	s := New(12345)
	const trials = 20000
	ones := 0
	for i := 0; i < trials; i++ {
		ones += int(s.Bit())
	}
	// Expect trials/2 +- 5 sigma; sigma = sqrt(trials)/2 ~ 70.
	if math.Abs(float64(ones)-trials/2) > 400 {
		t.Fatalf("bit bias: %d ones of %d", ones, trials)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(8)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 50; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonpositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnRoughlyUniform(t *testing.T) {
	s := New(99)
	const n, trials = 8, 40000
	var counts [n]int
	for i := 0; i < trials; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %f", i, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(4)
	err := quick.Check(func(szRaw uint8) bool {
		n := int(szRaw%50) + 1
		p := s.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCoinEdges(t *testing.T) {
	s := New(5)
	for i := 0; i < 20; i++ {
		if s.Coin(0) {
			t.Fatal("Coin(0) returned true")
		}
		if !s.Coin(1) {
			t.Fatal("Coin(1) returned false")
		}
		if s.Coin(-0.5) {
			t.Fatal("Coin(-0.5) returned true")
		}
		if !s.Coin(1.5) {
			t.Fatal("Coin(1.5) returned false")
		}
	}
}

func TestCoinProbability(t *testing.T) {
	s := New(77)
	const trials = 30000
	hits := 0
	for i := 0; i < trials; i++ {
		if s.Coin(0.25) {
			hits++
		}
	}
	want := 0.25 * trials
	if math.Abs(float64(hits)-want) > 6*math.Sqrt(want) {
		t.Fatalf("Coin(0.25): %d hits of %d", hits, trials)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(6)
	for i := 0; i < 1000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestShuffle(t *testing.T) {
	s := New(10)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, v := range xs {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestReseedMatchesNew(t *testing.T) {
	fresh := New(77)
	reused := New(1)
	reused.Bits(13) // dirty the buffer and the consumed account
	reused.Reseed(77)
	if reused.Consumed() != 0 {
		t.Fatal("Reseed must reset consumed bits")
	}
	for i := 0; i < 100; i++ {
		if fresh.Uint64() != reused.Uint64() {
			t.Fatalf("Reseed stream diverges from New at draw %d", i)
		}
	}
}

func TestSplitSeedMatchesSplit(t *testing.T) {
	parent := New(5)
	split := parent.Split(3, 9)
	derived := New(parent.SplitSeed(3, 9))
	for i := 0; i < 100; i++ {
		if split.Uint64() != derived.Uint64() {
			t.Fatalf("SplitSeed stream diverges from Split at draw %d", i)
		}
	}
}
