package bitrand

import (
	"fmt"
	"math"
)

// BitString is an immutable sequence of random bits with a read cursor. The
// paper's algorithms pass explicit bit strings between nodes: the oblivious
// global broadcast source of Section 4.1 appends 32*log^2(n)*loglog(n) bits
// to its message, and the geo local broadcast leaders of Section 4.3 commit
// to seeds of O(log^3 n (loglog n)^2) bits. BitString models those payloads:
// once generated, the bits are fixed; readers consume prefixes.
type BitString struct {
	bits []uint64 // packed, LSB-first within each word
	n    int      // total number of bits
	pos  int      // read cursor
}

// NewBitString draws n fresh uniform bits from src.
func NewBitString(src *Source, n int) *BitString {
	if n < 0 {
		n = 0
	}
	words := (n + 63) / 64
	b := &BitString{bits: make([]uint64, words), n: n}
	for i := 0; i < words; i++ {
		rem := n - 64*i
		if rem >= 64 {
			b.bits[i] = src.Bits(64)
		} else {
			b.bits[i] = src.Bits(uint(rem))
		}
	}
	return b
}

// Refill redraws the string in place: afterwards b is indistinguishable from
// NewBitString(src, n), drawing exactly the same bits from src, but reuses
// the word storage when it is large enough. It exists for the process arena:
// a reset slab redraws its runtime-generated bit strings without
// reallocating them. Callers must ensure no other live reader still depends
// on the old contents (within one engine slab, every reader is reset
// together).
func (b *BitString) Refill(src *Source, n int) {
	if n < 0 {
		n = 0
	}
	words := (n + 63) / 64
	if cap(b.bits) < words {
		b.bits = make([]uint64, words)
	}
	b.bits = b.bits[:words]
	b.n = n
	b.pos = 0
	for i := 0; i < words; i++ {
		rem := n - 64*i
		if rem >= 64 {
			b.bits[i] = src.Bits(64)
		} else {
			b.bits[i] = src.Bits(uint(rem))
		}
	}
}

// BitStringFromWords constructs a BitString over pre-drawn words. It copies
// the slice so callers cannot mutate the string afterwards.
func BitStringFromWords(words []uint64, n int) *BitString {
	cp := make([]uint64, len(words))
	copy(cp, words)
	return &BitString{bits: cp, n: n}
}

// Len reports the total number of bits.
func (b *BitString) Len() int { return b.n }

// Remaining reports the number of unread bits.
func (b *BitString) Remaining() int { return b.n - b.pos }

// At returns bit i (0 or 1). It panics on out-of-range access, which is a
// programming error in the simulator.
func (b *BitString) At(i int) uint64 {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitrand: BitString index %d out of range [0,%d)", i, b.n))
	}
	return (b.bits[i/64] >> (uint(i) % 64)) & 1
}

// Take consumes the next k bits and returns them in the low bits of the
// result, LSB = first bit. If fewer than k bits remain it wraps around to the
// start of the string; the paper's protocols are sized so this never happens
// in a correct configuration, but wrapping keeps long adversarial runs well
// defined. Use Remaining to detect exhaustion.
func (b *BitString) Take(k int) uint64 {
	if k <= 0 {
		return 0
	}
	if k > 64 {
		k = 64
	}
	var out uint64
	for i := 0; i < k; i++ {
		if b.n == 0 {
			return 0
		}
		if b.pos >= b.n {
			b.pos = 0
		}
		out |= b.At(b.pos) << uint(i)
		b.pos++
	}
	return out
}

// TakeIndex consumes ceil(log2(m)) bits and maps them to a value in [0, m)
// by modular reduction. This matches the paper's "select a value i in
// [log n] using log log n new bits" step: with m a power of two the mapping
// is exactly uniform.
func (b *BitString) TakeIndex(m int) int {
	if m <= 1 {
		return 0
	}
	k := BitsFor(m)
	v := b.Take(k)
	return int(v % uint64(m))
}

// Rewind resets the read cursor to the beginning.
func (b *BitString) Rewind() { b.pos = 0 }

// Clone returns an independent copy with its own cursor, positioned at the
// start. Nodes that receive the same payload each read it independently.
func (b *BitString) Clone() *BitString {
	cp := make([]uint64, len(b.bits))
	copy(cp, b.bits)
	return &BitString{bits: cp, n: b.n}
}

// Slice returns a fresh BitString over bits [from, from+n), with wrapping
// semantics handled by clamping to the available range.
func (b *BitString) Slice(from, n int) *BitString {
	if from < 0 {
		from = 0
	}
	if from > b.n {
		from = b.n
	}
	if n < 0 || from+n > b.n {
		n = b.n - from
	}
	words := (n + 63) / 64
	out := &BitString{bits: make([]uint64, words), n: n}
	for i := 0; i < n; i++ {
		if b.At(from+i) == 1 {
			out.bits[i/64] |= 1 << (uint(i) % 64)
		}
	}
	return out
}

// BitsFor returns ceil(log2(m)) for m >= 2, and 1 for m < 2: the number of
// bits needed to index m values.
func BitsFor(m int) int {
	if m < 2 {
		return 1
	}
	k := 0
	for v := m - 1; v > 0; v >>= 1 {
		k++
	}
	return k
}

// Log2Ceil returns ceil(log2(x)) for x >= 1, and 0 for x <= 1.
func Log2Ceil(x int) int {
	if x <= 1 {
		return 0
	}
	k := 0
	for v := x - 1; v > 0; v >>= 1 {
		k++
	}
	return k
}

// Log2Floor returns floor(log2(x)) for x >= 1, and 0 for x <= 1.
func Log2Floor(x int) int {
	if x <= 1 {
		return 0
	}
	k := -1
	for v := x; v > 0; v >>= 1 {
		k++
	}
	return k
}

// LogN returns max(1, ceil(log2(n))): the "log n" that parameterizes the
// paper's algorithms, floored at 1 so tiny test networks stay well defined.
func LogN(n int) int {
	l := Log2Ceil(n)
	if l < 1 {
		l = 1
	}
	return l
}

// LogLogN returns max(1, ceil(log2(LogN(n)))): the "log log n" bit budget for
// one permuted-decay probability selection.
func LogLogN(n int) int {
	l := Log2Ceil(LogN(n))
	if l < 1 {
		l = 1
	}
	return l
}

// NaturalLog returns ln(n) floored at 1, used where the paper's thresholds
// are stated in natural logs (e.g. the c*ln(n) dense/sparse cut of Lemma 4.5).
func NaturalLog(n int) float64 {
	v := math.Log(float64(n))
	if v < 1 {
		v = 1
	}
	return v
}
