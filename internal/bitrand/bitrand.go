// Package bitrand provides deterministic, splittable pseudo-randomness for
// the dual graph simulator.
//
// Every run of the simulator is driven by a single master seed. Per-node and
// per-adversary randomness is derived with Split, which folds a label into
// the parent seed via SplitMix64 so that streams are statistically
// independent and, crucially, reproducible: the same master seed always
// yields the same execution.
//
// The package also exposes bit-level primitives. The paper's constructions
// consume randomness in counted bits: the permuted decay subroutine of
// Section 4.1 consumes log log n bits per round from a shared string, and the
// isolated broadcast functions of Lemma 4.4 are defined over "support
// sequences" of (delta*n)/2 bits, where delta bounds the bits a node uses per
// round. Source tracks consumed bits so tests can verify those budgets.
package bitrand

import "math/bits"

// splitmix64 advances a SplitMix64 state and returns the next output.
// SplitMix64 is the standard seeding generator recommended for xoshiro.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a deterministic pseudo-random bit source based on xoshiro256**.
// It tracks the number of bits consumed, which the simulator uses to enforce
// the per-round bit budgets that appear in the paper's constructions.
//
// A zero Source is not valid; use New or Split.
type Source struct {
	s        [4]uint64
	consumed uint64 // total bits handed out

	// buffered bits not yet consumed, LSB-first
	buf  uint64
	nbuf uint // number of valid bits in buf
}

// New returns a Source seeded from the given master seed.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed re-initializes s in place, exactly as New(seed) constructs it:
// state, consumed-bit accounting, and buffered bits are all reset. It lets
// callers that run many executions reuse Source storage instead of
// allocating a fresh Source per stream.
func (s *Source) Reseed(seed uint64) {
	sm := seed
	for i := range s.s {
		s.s[i] = splitmix64(&sm)
	}
	// xoshiro requires a nonzero state; splitmix64 output is zero for all
	// four words with negligible probability, but guard anyway.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9e3779b97f4a7c15
	}
	s.consumed = 0
	s.buf, s.nbuf = 0, 0
}

// Split derives an independent child source labeled by the given values.
// Children with distinct labels are independent streams; the same
// (parent seed, labels) pair always yields the same child.
func (s *Source) Split(labels ...uint64) *Source {
	return New(s.SplitSeed(labels...))
}

// SplitSeed returns the child seed Split derives for the given labels:
// New(s.SplitSeed(labels...)) and s.Split(labels...) are equivalent. It does
// not advance s. Combined with Reseed it derives child streams without
// allocating.
func (s *Source) SplitSeed(labels ...uint64) uint64 {
	sm := s.s[0] ^ s.s[3]
	for _, l := range labels {
		sm ^= splitmix64(&sm) + l
		sm = splitmix64(&sm)
	}
	return sm
}

// next64 returns the next raw 64-bit output (xoshiro256**).
func (s *Source) next64() uint64 {
	result := bits.RotateLeft64(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = bits.RotateLeft64(s.s[3], 45)
	return result
}

// Uint64 returns a uniform 64-bit value and accounts 64 consumed bits.
func (s *Source) Uint64() uint64 {
	s.consumed += 64
	s.buf, s.nbuf = 0, 0 // a word draw discards buffered bits for simplicity
	return s.next64()
}

// Bits returns k uniform random bits (0 <= k <= 64) in the low bits of the
// result, consuming exactly k bits of the stream.
func (s *Source) Bits(k uint) uint64 {
	if k == 0 {
		return 0
	}
	if k > 64 {
		k = 64
	}
	s.consumed += uint64(k)
	var out uint64
	var have uint
	for have < k {
		if s.nbuf == 0 {
			s.buf = s.next64()
			s.nbuf = 64
		}
		take := k - have
		if take > s.nbuf {
			take = s.nbuf
		}
		out |= (s.buf & ((1 << take) - 1)) << have
		s.buf >>= take
		s.nbuf -= take
		have += take
	}
	return out
}

// Bit returns a single uniform random bit.
func (s *Source) Bit() uint64 { return s.Bits(1) }

// Consumed reports the total number of bits handed out so far.
func (s *Source) Consumed() uint64 { return s.consumed }

// Float64 returns a uniform value in [0, 1) using 53 random bits.
func (s *Source) Float64() float64 {
	return float64(s.Bits(53)) / (1 << 53)
}

// Coin returns true with probability p. Out-of-range p is clamped.
func (s *Source) Coin(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, mirroring
// math/rand, because a nonpositive bound is a programming error.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("bitrand: Intn bound must be positive")
	}
	// Lemire-style rejection-free-ish sampling with rejection fallback for
	// exact uniformity.
	bound := uint64(n)
	for {
		v := s.next64()
		s.consumed += 64
		hi, lo := bits.Mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// Perm returns a uniform random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
