package bitrand

import "testing"

func TestWordsFor(t *testing.T) {
	cases := [][2]int{{0, 0}, {1, 1}, {63, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3}, {1000, 16}}
	for _, c := range cases {
		if got := WordsFor(c[0]); got != c[1] {
			t.Errorf("WordsFor(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestBitOps(t *testing.T) {
	w := make([]uint64, WordsFor(200))
	for _, i := range []int{0, 1, 63, 64, 127, 128, 199} {
		if TestBit(w, i) {
			t.Fatalf("bit %d set in zero vector", i)
		}
		SetBit(w, i)
		if !TestBit(w, i) {
			t.Fatalf("bit %d not set after SetBit", i)
		}
	}
	if got := OnesCount(w); got != 7 {
		t.Fatalf("OnesCount = %d, want 7", got)
	}
	ClearBit(w, 64)
	if TestBit(w, 64) {
		t.Fatal("bit 64 still set after ClearBit")
	}
	if got := OnesCount(w); got != 6 {
		t.Fatalf("OnesCount after clear = %d, want 6", got)
	}
}

// TestIntersectOneExhaustive cross-checks IntersectOne against a naive
// per-bit scan on random vectors of varied densities and lengths.
func TestIntersectOneExhaustive(t *testing.T) {
	src := New(0xb17)
	for trial := 0; trial < 2000; trial++ {
		n := 1 + src.Intn(260)
		w := WordsFor(n)
		a := make([]uint64, w)
		b := make([]uint64, w)
		// Density varies from near-empty to near-full across trials.
		ka := src.Intn(n + 1)
		kb := src.Intn(n/8 + 2)
		for i := 0; i < kb; i++ {
			SetBit(a, src.Intn(n))
		}
		for i := 0; i < ka; i++ {
			SetBit(b, src.Intn(n))
		}
		wantCount, wantIdx := 0, -1
		for i := 0; i < n; i++ {
			if TestBit(a, i) && TestBit(b, i) {
				wantCount++
				if wantCount == 1 {
					wantIdx = i
				}
			}
		}
		if wantCount > 1 {
			wantCount, wantIdx = 2, -1
		}
		gotCount, gotIdx := IntersectOne(a, b)
		if gotCount != wantCount || gotIdx != wantIdx {
			t.Fatalf("trial %d (n=%d): IntersectOne = (%d, %d), want (%d, %d)",
				trial, n, gotCount, gotIdx, wantCount, wantIdx)
		}
	}
}

// TestIntersectOneIndexedMatchesDense cross-checks the block-sparse kernel
// against IntersectOne: a dense row and its sparse (index, word) form must
// classify every transmitter vector identically.
func TestIntersectOneIndexedMatchesDense(t *testing.T) {
	src := New(0xb18)
	for trial := 0; trial < 2000; trial++ {
		n := 1 + src.Intn(520)
		w := WordsFor(n)
		row := make([]uint64, w)
		b := make([]uint64, w)
		for i, k := 0, src.Intn(n/4+2); i < k; i++ {
			SetBit(row, src.Intn(n))
		}
		for i, k := 0, src.Intn(n+1); i < k; i++ {
			SetBit(b, src.Intn(n))
		}
		var idx []int32
		var words []uint64
		for i, x := range row {
			if x != 0 {
				idx = append(idx, int32(i))
				words = append(words, x)
			}
		}
		wantCount, wantIdx := IntersectOne(row, b)
		gotCount, gotIdx := IntersectOneIndexed(idx, words, b)
		if gotCount != wantCount || gotIdx != wantIdx {
			t.Fatalf("trial %d (n=%d): IntersectOneIndexed = (%d, %d), want (%d, %d)",
				trial, n, gotCount, gotIdx, wantCount, wantIdx)
		}
	}
}

func TestIntersectOneShortA(t *testing.T) {
	// b longer than a: only len(a) words are read.
	a := []uint64{1 << 5}
	b := []uint64{1<<5 | 1<<9, ^uint64(0)}
	count, idx := IntersectOne(a, b)
	if count != 1 || idx != 5 {
		t.Fatalf("IntersectOne = (%d, %d), want (1, 5)", count, idx)
	}
}
