package bitrand

import "math/bits"

// Word-parallel bit-vector helpers for the engine's bitset delivery path: a
// set of n nodes is a []uint64 of WordsFor(n) words, bit i marking node i.
// The kernel the delivery loop runs per listener is IntersectOne — "does the
// transmitter set intersect my neighbor mask in exactly one node, and which
// one" — which is precisely the radio reception rule (one transmitting
// neighbor delivers; zero is silence; two or more is a collision, and the
// two are indistinguishable to the listener).

// WordsFor returns the number of 64-bit words that hold n bits.
func WordsFor(n int) int { return (n + 63) >> 6 }

// SetBit sets bit i of the vector.
func SetBit(w []uint64, i int) { w[i>>6] |= 1 << (uint(i) & 63) }

// ClearBit clears bit i of the vector.
func ClearBit(w []uint64, i int) { w[i>>6] &^= 1 << (uint(i) & 63) }

// TestBit reports whether bit i of the vector is set.
func TestBit(w []uint64, i int) bool { return w[i>>6]>>(uint(i)&63)&1 != 0 }

// OnesCount returns the number of set bits in the vector.
func OnesCount(w []uint64) int {
	total := 0
	for _, x := range w {
		total += bits.OnesCount64(x)
	}
	return total
}

// IntersectOne classifies the intersection a ∧ b, reading len(a) words of
// each (b must be at least as long). It returns (0, -1) for an empty
// intersection, (1, i) when bit i is the single common bit, and (2, -1) for
// two or more common bits — the count saturates, and the scan exits as soon
// as a second bit is seen, so dense intersections cost only a prefix of the
// row.
func IntersectOne(a, b []uint64) (count, idx int) {
	var single uint64
	idx = -1
	for i, w := range a {
		x := w & b[i]
		if x == 0 {
			continue
		}
		if single != 0 || x&(x-1) != 0 {
			return 2, -1
		}
		single = x
		idx = i<<6 + bits.TrailingZeros64(x)
	}
	if single == 0 {
		return 0, -1
	}
	return 1, idx
}

// IntersectOneIndexed is IntersectOne over a block-sparse row: idx lists the
// row's nonzero block indices (ascending) and words the matching block
// values, while b is a dense vector the blocks index into. Classification and
// early exit are identical to IntersectOne; the returned bit index is in b's
// dense bit space.
func IntersectOneIndexed(idx []int32, words []uint64, b []uint64) (count, bitIdx int) {
	var single uint64
	bitIdx = -1
	for i, wi := range idx {
		x := words[i] & b[wi]
		if x == 0 {
			continue
		}
		if single != 0 || x&(x-1) != 0 {
			return 2, -1
		}
		single = x
		bitIdx = int(wi)<<6 + bits.TrailingZeros64(x)
	}
	if single == 0 {
		return 0, -1
	}
	return 1, bitIdx
}
