package viz

import (
	"math"
	"strings"
	"testing"
)

func TestPlotBasic(t *testing.T) {
	p := NewPlot(40, 10)
	p.Add(Series{Name: "linear", X: []float64{1, 2, 3, 4}, Y: []float64{1, 2, 3, 4}})
	out := p.Render()
	if !strings.Contains(out, "*") {
		t.Fatal("no points rendered")
	}
	if !strings.Contains(out, "linear") {
		t.Fatal("legend missing")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Fatalf("too few lines: %d", len(lines))
	}
}

func TestPlotMultiSeriesMarkers(t *testing.T) {
	p := NewPlot(30, 8)
	p.Add(Series{Name: "a", X: []float64{1, 2}, Y: []float64{1, 2}})
	p.Add(Series{Name: "b", X: []float64{1, 2}, Y: []float64{2, 1}})
	out := p.Render()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("distinct markers missing:\n%s", out)
	}
}

func TestPlotLogScales(t *testing.T) {
	p := NewPlot(40, 8)
	p.LogX, p.LogY = true, true
	p.Add(Series{Name: "pow", X: []float64{10, 100, 1000}, Y: []float64{1, 10, 100}})
	out := p.Render()
	if strings.Contains(out, "(no plottable points)") {
		t.Fatal("log plot dropped everything")
	}
	// Non-positive points are dropped rather than crashing.
	p2 := NewPlot(30, 6)
	p2.LogY = true
	p2.Add(Series{Name: "bad", X: []float64{1, 2}, Y: []float64{0, -5}})
	if out := p2.Render(); !strings.Contains(out, "no plottable points") {
		t.Fatalf("expected empty plot, got:\n%s", out)
	}
}

func TestPlotHandlesNaN(t *testing.T) {
	p := NewPlot(30, 6)
	p.Add(Series{Name: "n", X: []float64{1, math.NaN(), 3}, Y: []float64{1, 2, math.Inf(1)}})
	out := p.Render()
	if !strings.Contains(out, "*") {
		t.Fatal("finite point should render")
	}
}

func TestPlotDegenerateRange(t *testing.T) {
	p := NewPlot(30, 6)
	p.Add(Series{Name: "flat", X: []float64{5, 5}, Y: []float64{3, 3}})
	if out := p.Render(); !strings.Contains(out, "*") {
		t.Fatalf("flat series should render:\n%s", out)
	}
}

func TestPlotMinimumSize(t *testing.T) {
	p := NewPlot(1, 1)
	if p.Width < 20 || p.Height < 5 {
		t.Fatal("minimum canvas not enforced")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if len([]rune(s)) != 8 {
		t.Fatalf("sparkline width %d, want 8", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Fatalf("sparkline extremes: %q", s)
	}
	if Sparkline(nil, 5) != "" {
		t.Fatal("empty input must render empty")
	}
	// Flat input renders without panic.
	if got := Sparkline([]float64{2, 2, 2}, 3); len([]rune(got)) != 3 {
		t.Fatalf("flat sparkline %q", got)
	}
}

func TestSparklineDownsamples(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	s := Sparkline(vals, 10)
	if len([]rune(s)) != 10 {
		t.Fatalf("downsampled width %d", len([]rune(s)))
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram([]float64{1, 1, 2, 3, 3, 3}, 3, 20)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("bins = %d", len(lines))
	}
	if !strings.Contains(lines[2], "####") {
		t.Fatalf("largest bin missing bar:\n%s", out)
	}
	if Histogram(nil, 3, 10) != "(empty)\n" {
		t.Fatal("empty histogram")
	}
}
