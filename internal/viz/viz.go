// Package viz renders plain-text plots for experiment output: scatter/line
// charts of (x, y) series with optional log scaling, used by the tools to
// show scaling curves directly in the terminal.
package viz

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named sequence of points.
type Series struct {
	Name string
	X, Y []float64
}

// Plot is an ASCII chart canvas.
type Plot struct {
	Width, Height int
	LogX, LogY    bool
	series        []Series
}

// NewPlot creates a plot with the given canvas size (sensible minimums are
// enforced).
func NewPlot(width, height int) *Plot {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	return &Plot{Width: width, Height: height}
}

// Add appends a series; points with non-finite (or, under log scaling,
// non-positive) coordinates are dropped at render time.
func (p *Plot) Add(s Series) { p.series = append(p.series, s) }

// markers are assigned to series in order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

func (p *Plot) transform(x, y float64) (float64, float64, bool) {
	if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
		return 0, 0, false
	}
	if p.LogX {
		if x <= 0 {
			return 0, 0, false
		}
		x = math.Log10(x)
	}
	if p.LogY {
		if y <= 0 {
			return 0, 0, false
		}
		y = math.Log10(y)
	}
	return x, y, true
}

// Render draws the chart.
func (p *Plot) Render() string {
	type pt struct {
		x, y float64
		m    byte
	}
	var pts []pt
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for si, s := range p.series {
		m := markers[si%len(markers)]
		for i := 0; i < len(s.X) && i < len(s.Y); i++ {
			x, y, ok := p.transform(s.X[i], s.Y[i])
			if !ok {
				continue
			}
			pts = append(pts, pt{x, y, m})
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if len(pts) == 0 {
		return "(no plottable points)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, p.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", p.Width))
	}
	for _, q := range pts {
		col := int((q.x - minX) / (maxX - minX) * float64(p.Width-1))
		row := p.Height - 1 - int((q.y-minY)/(maxY-minY)*float64(p.Height-1))
		grid[row][col] = q.m
	}

	var b strings.Builder
	yLabel := func(v float64) string {
		if p.LogY {
			v = math.Pow(10, v)
		}
		return fmt.Sprintf("%9.4g", v)
	}
	for r, line := range grid {
		switch r {
		case 0:
			fmt.Fprintf(&b, "%s |%s\n", yLabel(maxY), line)
		case p.Height - 1:
			fmt.Fprintf(&b, "%s |%s\n", yLabel(minY), line)
		default:
			fmt.Fprintf(&b, "%9s |%s\n", "", line)
		}
	}
	b.WriteString(strings.Repeat(" ", 10) + "+" + strings.Repeat("-", p.Width) + "\n")
	xl, xr := minX, maxX
	if p.LogX {
		xl, xr = math.Pow(10, xl), math.Pow(10, xr)
	}
	fmt.Fprintf(&b, "%10s %-*.4g%*.4g\n", "", p.Width/2, xl, p.Width/2, xr)
	// Legend.
	for si, s := range p.series {
		fmt.Fprintf(&b, "%10s %c %s\n", "", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// Sparkline renders a compact single-line chart of values using block
// characters, for inlining progress curves into reports.
func Sparkline(values []float64, width int) string {
	if len(values) == 0 {
		return ""
	}
	if width < 1 {
		width = len(values)
	}
	// Downsample to width buckets by max.
	buckets := make([]float64, width)
	for i := range buckets {
		lo := i * len(values) / width
		hi := (i + 1) * len(values) / width
		if hi <= lo {
			hi = lo + 1
		}
		m := math.Inf(-1)
		for j := lo; j < hi && j < len(values); j++ {
			m = math.Max(m, values[j])
		}
		buckets[i] = m
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range buckets {
		min, max = math.Min(min, v), math.Max(max, v)
	}
	if max == min {
		max = min + 1
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, v := range buckets {
		idx := int((v - min) / (max - min) * float64(len(levels)-1))
		b.WriteRune(levels[idx])
	}
	return b.String()
}

// Histogram renders value counts as horizontal bars.
func Histogram(values []float64, bins, width int) string {
	if len(values) == 0 || bins < 1 {
		return "(empty)\n"
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	min, max := sorted[0], sorted[len(sorted)-1]
	if max == min {
		max = min + 1
	}
	counts := make([]int, bins)
	for _, v := range sorted {
		i := int((v - min) / (max - min) * float64(bins))
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range counts {
		lo := min + float64(i)*(max-min)/float64(bins)
		hi := min + float64(i+1)*(max-min)/float64(bins)
		bar := ""
		if maxCount > 0 {
			bar = strings.Repeat("#", c*width/maxCount)
		}
		fmt.Fprintf(&b, "[%9.4g, %9.4g) %4d %s\n", lo, hi, c, bar)
	}
	return b.String()
}
