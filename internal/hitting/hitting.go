// Package hitting implements the β-hitting game of the paper's lower-bound
// machinery (Section 3) and the simulation-based reduction of Theorem 3.1.
//
// In the β-hitting game an adversary secretly fixes a target t ∈ [β]; the
// player outputs one guess per game round and learns nothing except that it
// has not yet won. Lemma 3.2 (from [11]) bounds every player: k rounds win
// with probability at most k/(β−1).
//
// Theorem 3.1 turns a fast broadcast algorithm into a fast hitting player:
// the player simulates the algorithm on a dual clique network of 2β nodes in
// which the hidden bridge (t, t+β) corresponds to the hidden target. Rounds
// are classified dense/sparse from the expected transmitter count E[|X| | S]
// (state only — no coins); sparse-round transmitters are guessed, and a
// dense round with a single transmitter triggers guessing everything. The
// simulation stays valid — without knowing the bridge — until the player has
// already won. This package makes the whole construction executable.
package hitting

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/bitrand"
	"repro/internal/graph"
	"repro/internal/radio"
)

// Outcome reports a play of the hitting game.
type Outcome struct {
	// Won reports whether the target was guessed.
	Won bool
	// Guesses is the number of game rounds (= guesses) consumed, including
	// the winning guess.
	Guesses int
	// SimRounds is the number of simulated broadcast rounds used by
	// simulation players (0 for direct players).
	SimRounds int
}

// Player produces guesses for the hitting game.
type Player interface {
	// NextGuess returns the player's next guess in [0, beta). ok=false means
	// the player gives up. The only feedback a player ever gets is that the
	// game has not ended (it would not be called again otherwise).
	NextGuess(rng *bitrand.Source) (guess int, ok bool)
}

// Play runs the game with a hidden target in [0, beta). A SimulationPlayer
// is finished after Play: its pooled simulation state is released for reuse
// by later players, so each player value must be played at most once.
func Play(beta, target, maxGuesses int, p Player, rng *bitrand.Source) Outcome {
	var out Outcome
	for out.Guesses < maxGuesses {
		g, ok := p.NextGuess(rng)
		if !ok {
			break
		}
		out.Guesses++
		if g == target {
			out.Won = true
			break
		}
	}
	if sp, ok := p.(*SimulationPlayer); ok {
		out.SimRounds = sp.simRounds
		sp.release()
	}
	return out
}

// UniformPlayer guesses uniformly at random without replacement: the optimal
// oblivious strategy, winning k rounds with probability exactly k/β — within
// the Lemma 3.2 bound of k/(β−1).
type UniformPlayer struct {
	Beta int

	order []int
	pos   int
}

var _ Player = (*UniformPlayer)(nil)

// NextGuess implements Player.
func (p *UniformPlayer) NextGuess(rng *bitrand.Source) (int, bool) {
	if p.order == nil {
		p.order = rng.Perm(p.Beta)
	}
	if p.pos >= len(p.order) {
		return 0, false
	}
	g := p.order[p.pos]
	p.pos++
	return g, true
}

// SweepPlayer guesses 0, 1, 2, ... deterministically; the adversarial target
// β−1 forces it to take β rounds.
type SweepPlayer struct {
	Beta int
	pos  int
}

var _ Player = (*SweepPlayer)(nil)

// NextGuess implements Player.
func (p *SweepPlayer) NextGuess(*bitrand.Source) (int, bool) {
	if p.pos >= p.Beta {
		return 0, false
	}
	g := p.pos
	p.pos++
	return g, true
}

// SimulationPlayer is the Theorem 3.1 player P_A: it simulates a broadcast
// algorithm on the bridgeless dual clique of 2β nodes and converts the
// simulated broadcast behavior into hitting game guesses.
type SimulationPlayer struct {
	// Algorithm is the broadcast algorithm A being reduced. Its processes
	// must implement radio.TransmitProber (all algorithms in this repository
	// do); the player needs E[|X| | S].
	Algorithm radio.Algorithm
	// Beta is the game size; the simulated network has 2β nodes.
	Beta int
	// Problem selects global broadcast (source = node 0 ∈ A) or local
	// broadcast (B = all of A), as in the paper's proof.
	Problem radio.Problem
	// C scales the dense threshold C·log₂ β (default 1).
	C float64
	// MaxSimRounds caps the simulation ((2β)² by default, mirroring the
	// paper's w.l.o.g. bound).
	MaxSimRounds int
	// Seed drives the simulated processes' coins.
	Seed uint64

	// Runtime state. sim is pooled across players (see simSlab).
	initialized bool
	initErr     error
	sim         *simSlab
	simRounds   int
	queue       []int // pending guesses for the current simulated round
	txA, txB    []int // realized transmitters (indices) of the current round
	done        bool
}

var _ Player = (*SimulationPlayer)(nil)

// ErrNotProbeable is returned via failed initialization when the algorithm's
// processes do not expose transmit probabilities.
var ErrNotProbeable = errors.New("hitting: algorithm processes do not implement radio.TransmitProber")

// simSlab is the reusable simulation state of one player: the process slab
// with its prober views, the per-node coin streams (reseeded in place each
// play), and the per-round message buffers. Experiments play thousands of
// short games with the same (algorithm, β, problem) shape, so finished
// players return their slab to a pool and the next player resets it instead
// of reallocating — the simulation-side mirror of the engine's process
// arena.
//
//dglint:pooled reset=SimulationPlayer.init
type simSlab struct {
	algName string
	beta    int
	problem radio.Problem

	procs    []radio.Process
	probers  []radio.TransmitProber
	rngs     []*bitrand.Source
	rngBlock []bitrand.Source

	// Per-round transmission state: msgOf[i] is i's transmitted message,
	// txMask[i] whether i transmitted (a transmission may carry a nil
	// message, so membership needs its own mask).
	msgOf  []*radio.Message
	txMask []bool
}

var simSlabPool sync.Pool

// bridgelessNets caches the player's simulated networks by β: cliques A and
// B with no connecting G edge (the player does not know where the bridge
// is), G' complete. Networks are immutable, and every player for the same β
// simulates the same topology.
var bridgelessNets sync.Map // int → *graph.Dual

func bridgelessDualClique(beta int) *graph.Dual {
	if d, ok := bridgelessNets.Load(beta); ok {
		return d.(*graph.Dual)
	}
	n := 2 * beta
	b := graph.NewBuilder(n)
	b.Grow(beta * (beta - 1))
	for i := 0; i < beta; i++ {
		for j := i + 1; j < beta; j++ {
			b.AddEdge(i, j)
			b.AddEdge(beta+i, beta+j)
		}
	}
	d := graph.MustDual(b.Build(), graph.Clique(n))
	// Two goroutines may race to build; both produce equivalent immutable
	// networks and the first store wins.
	actual, _ := bridgelessNets.LoadOrStore(beta, d)
	return actual.(*graph.Dual)
}

func (p *SimulationPlayer) init() error {
	if p.initialized {
		return p.initErr
	}
	p.initialized = true
	if p.Beta < 2 {
		p.initErr = fmt.Errorf("hitting: beta %d too small", p.Beta)
		return p.initErr
	}
	net := bridgelessDualClique(p.Beta)
	spec := radio.Spec{Problem: p.Problem}
	switch p.Problem {
	case radio.GlobalBroadcast:
		spec.Source = 0
	case radio.LocalBroadcast:
		bs := make([]graph.NodeID, p.Beta)
		for i := range bs {
			bs[i] = i
		}
		spec.Broadcasters = bs
	default:
		p.initErr = fmt.Errorf("hitting: unsupported problem %v", p.Problem)
		return p.initErr
	}
	master := bitrand.New(p.Seed)
	n := 2 * p.Beta

	// Take a pooled slab; reuse its process slab when it was built for this
	// exact configuration by a resettable algorithm.
	sim, _ := simSlabPool.Get().(*simSlab)
	if sim == nil {
		sim = &simSlab{}
	}
	reused := false
	if pf, ok := p.Algorithm.(radio.ProcessFactory); ok &&
		sim.algName == p.Algorithm.Name() && sim.beta == p.Beta &&
		sim.problem == p.Problem && len(sim.procs) == n {
		reused = pf.ResetProcesses(sim.procs, net, spec, master.Split(0xa1))
	}
	if !reused {
		sim.procs = p.Algorithm.NewProcesses(net, spec, master.Split(0xa1))
		sim.algName = p.Algorithm.Name()
		sim.beta = p.Beta
		sim.problem = p.Problem
	}
	if cap(sim.probers) < len(sim.procs) {
		sim.probers = make([]radio.TransmitProber, len(sim.procs))
		sim.rngBlock = make([]bitrand.Source, len(sim.procs))
		sim.rngs = make([]*bitrand.Source, len(sim.procs))
		sim.msgOf = make([]*radio.Message, len(sim.procs))
		sim.txMask = make([]bool, len(sim.procs))
		for i := range sim.rngs {
			sim.rngs[i] = &sim.rngBlock[i]
		}
	}
	sim.probers = sim.probers[:len(sim.procs)]
	sim.rngBlock = sim.rngBlock[:len(sim.procs)]
	sim.rngs = sim.rngs[:len(sim.procs)]
	sim.msgOf = sim.msgOf[:len(sim.procs)]
	clear(sim.msgOf[:cap(sim.msgOf)])
	sim.txMask = sim.txMask[:len(sim.procs)]
	clear(sim.txMask)
	for i, proc := range sim.procs {
		tp, ok := proc.(radio.TransmitProber)
		if !ok {
			p.initErr = ErrNotProbeable
			return p.initErr
		}
		sim.probers[i] = tp
	}
	for i := range sim.rngs {
		sim.rngs[i].Reseed(master.SplitSeed(0xb2, uint64(i)))
	}
	p.sim = sim
	if p.MaxSimRounds <= 0 {
		p.MaxSimRounds = 4 * p.Beta * p.Beta
	}
	return nil
}

// release returns the player's simulation slab to the pool. Called by Play
// when the game ends; the player must not be used afterwards.
func (p *SimulationPlayer) release() {
	if p.sim == nil {
		return
	}
	sim := p.sim
	p.sim = nil
	simSlabPool.Put(sim)
}

func (p *SimulationPlayer) threshold() float64 {
	c := p.C
	if c <= 0 {
		c = 1
	}
	return c * float64(bitrand.LogN(p.Beta))
}

// NextGuess implements Player: it drains the pending guess queue, simulating
// further broadcast rounds as needed to generate more guesses.
func (p *SimulationPlayer) NextGuess(rng *bitrand.Source) (int, bool) {
	if err := p.init(); err != nil {
		return 0, false
	}
	for len(p.queue) == 0 {
		if p.done || p.simRounds >= p.MaxSimRounds {
			return 0, false
		}
		p.simulateRound()
	}
	g := p.queue[0]
	p.queue = p.queue[1:]
	return g, true
}

// simulateRound advances the simulated execution by one round, appending any
// generated guesses to the queue, exactly following the proof's rules.
func (p *SimulationPlayer) simulateRound() {
	r := p.simRounds
	p.simRounds++
	beta := p.Beta
	sim := p.sim

	// E[|X| | S]: state-determined, computed before any coin is flipped.
	expected := 0.0
	for _, tp := range sim.probers {
		expected += tp.TransmitProb(r)
	}
	dense := expected > p.threshold()

	// Flip the coins, recording transmissions in the slab's flat buffers
	// (cleared again below; a transmission may carry a nil message, so
	// membership lives in txMask).
	p.txA, p.txB = p.txA[:0], p.txB[:0]
	for i, proc := range sim.procs {
		act := proc.Step(r, sim.rngs[i])
		if !act.Transmit {
			continue
		}
		sim.msgOf[i] = act.Msg
		sim.txMask[i] = true
		if i < beta {
			p.txA = append(p.txA, i)
		} else {
			p.txB = append(p.txB, i)
		}
	}
	total := len(p.txA) + len(p.txB)
	clearTx := func() {
		for _, i := range p.txA {
			sim.msgOf[i] = nil
			sim.txMask[i] = false
		}
		for _, i := range p.txB {
			sim.msgOf[i] = nil
			sim.txMask[i] = false
		}
	}

	// Guess generation.
	switch {
	case dense && total == 1:
		// Guess everything: guaranteed win.
		for t := 0; t < beta; t++ {
			p.queue = append(p.queue, t)
		}
		p.done = true // simulation validity ends here, but we have won
		clearTx()
		return
	case dense:
		// No guesses; dense round with ≥2 (or 0) transmitters.
	default:
		// Sparse: guess every transmitter's id mod β.
		for _, i := range p.txA {
			p.queue = append(p.queue, i)
		}
		for _, i := range p.txB {
			p.queue = append(p.queue, i-beta)
		}
	}

	// Receive simulation. Dense: complete topology, everyone collides (the
	// single-transmitter case ended the game above). Sparse: two isolated
	// cliques; a listener receives iff exactly one node of its own clique
	// transmits. Validity: if the bridge endpoints transmitted in a sparse
	// round, we already guessed t above.
	if dense {
		for _, proc := range sim.procs {
			proc.Deliver(r, nil)
		}
		clearTx()
		return
	}
	var deliverA, deliverB *radio.Message
	if len(p.txA) == 1 {
		deliverA = sim.msgOf[p.txA[0]]
	}
	if len(p.txB) == 1 {
		deliverB = sim.msgOf[p.txB[0]]
	}
	for i, proc := range sim.procs {
		if sim.txMask[i] {
			proc.Deliver(r, nil)
			continue
		}
		if i < beta {
			proc.Deliver(r, deliverA)
		} else {
			proc.Deliver(r, deliverB)
		}
	}
	clearTx()
}
