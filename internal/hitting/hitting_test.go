package hitting

import (
	"testing"

	"repro/internal/bitrand"
	"repro/internal/core"
	"repro/internal/radio"
)

func TestSweepPlayerWinsInTargetPlusOne(t *testing.T) {
	rng := bitrand.New(1)
	for _, target := range []int{0, 3, 7} {
		out := Play(8, target, 100, &SweepPlayer{Beta: 8}, rng)
		if !out.Won || out.Guesses != target+1 {
			t.Fatalf("target %d: %+v", target, out)
		}
	}
}

func TestSweepPlayerGivesUp(t *testing.T) {
	rng := bitrand.New(1)
	p := &SweepPlayer{Beta: 4}
	out := Play(4, 99 /* unhittable */, 100, p, rng)
	if out.Won || out.Guesses != 4 {
		t.Fatalf("sweep should exhaust exactly beta guesses: %+v", out)
	}
}

func TestUniformPlayerAlwaysWinsEventually(t *testing.T) {
	rng := bitrand.New(2)
	for target := 0; target < 16; target++ {
		out := Play(16, target, 16, &UniformPlayer{Beta: 16}, rng)
		if !out.Won {
			t.Fatalf("uniform player must win within beta guesses (target %d)", target)
		}
	}
}

// TestLemma32Bound empirically validates Lemma 3.2: no player wins the
// k-round game with probability exceeding k/(β−1). The uniform player's win
// probability is exactly k/β.
func TestLemma32Bound(t *testing.T) {
	rng := bitrand.New(3)
	const beta = 32
	const trials = 3000
	for _, k := range []int{1, 4, 8, 16} {
		wins := 0
		for trial := 0; trial < trials; trial++ {
			target := rng.Intn(beta)
			out := Play(beta, target, k, &UniformPlayer{Beta: beta}, rng)
			if out.Won {
				wins++
			}
		}
		rate := float64(wins) / trials
		bound := float64(k) / float64(beta-1)
		// Allow 4-sigma sampling noise above the bound.
		sigma := 4 * 0.5 / 54.77 // 4·sqrt(p(1-p)/trials) upper estimate
		if rate > bound+sigma {
			t.Fatalf("k=%d: win rate %.4f exceeds Lemma 3.2 bound %.4f", k, rate, bound)
		}
	}
}

func TestMaxGuessesRespected(t *testing.T) {
	rng := bitrand.New(4)
	out := Play(64, 63, 5, &SweepPlayer{Beta: 64}, rng)
	if out.Won || out.Guesses != 5 {
		t.Fatalf("guess budget ignored: %+v", out)
	}
}

func TestSimulationPlayerRoundRobinWins(t *testing.T) {
	// Round robin transmits one node per round: every round is sparse with
	// exactly one transmitter, whose id gets guessed. The player must win
	// for every target.
	for _, target := range []int{0, 5, 15} {
		p := &SimulationPlayer{
			Algorithm: core.RoundRobin{},
			Beta:      16,
			Problem:   radio.LocalBroadcast,
			Seed:      7,
		}
		out := Play(16, target, 10000, p, bitrand.New(9))
		if !out.Won {
			t.Fatalf("target %d: simulation player lost: %+v", target, out)
		}
		if out.SimRounds == 0 {
			t.Fatal("no simulated rounds recorded")
		}
	}
}

func TestSimulationPlayerDecayGlobalWins(t *testing.T) {
	wins := 0
	const beta = 32
	for seed := uint64(0); seed < 6; seed++ {
		p := &SimulationPlayer{
			Algorithm: core.DecayGlobal{},
			Beta:      beta,
			Problem:   radio.GlobalBroadcast,
			Seed:      seed,
		}
		target := int(seed) * 5 % beta
		out := Play(beta, target, 100000, p, bitrand.New(seed))
		if out.Won {
			wins++
		}
	}
	if wins < 5 {
		t.Fatalf("simulation player wrapping decay won only %d/6 games", wins)
	}
}

func TestSimulationPlayerGuessBudgetTracksTheorem(t *testing.T) {
	// Theorem 3.1: P_A wins in O(f(2β)·log β) game rounds. Round robin has
	// f(n) = O(n); with one guess per sparse round the total guesses should
	// be O(β), far below the (2β)² simulation cap.
	const beta = 64
	p := &SimulationPlayer{
		Algorithm: core.RoundRobin{},
		Beta:      beta,
		Problem:   radio.LocalBroadcast,
		Seed:      3,
	}
	out := Play(beta, beta-1, 1<<20, p, bitrand.New(1))
	if !out.Won {
		t.Fatalf("lost: %+v", out)
	}
	if out.Guesses > 8*beta {
		t.Fatalf("round robin reduction used %d guesses, want O(beta)=~%d", out.Guesses, beta)
	}
}

func TestSimulationPlayerRejectsBadConfig(t *testing.T) {
	p := &SimulationPlayer{Algorithm: core.RoundRobin{}, Beta: 1, Problem: radio.LocalBroadcast}
	if _, ok := p.NextGuess(bitrand.New(1)); ok {
		t.Fatal("beta < 2 must fail")
	}
	p2 := &SimulationPlayer{Algorithm: core.RoundRobin{}, Beta: 8, Problem: radio.Problem(42)}
	if _, ok := p2.NextGuess(bitrand.New(1)); ok {
		t.Fatal("unknown problem must fail")
	}
}

func TestBridgelessDualClique(t *testing.T) {
	d := bridgelessDualClique(8)
	if d.N() != 16 {
		t.Fatalf("N = %d", d.N())
	}
	// No G edge crosses the cliques.
	for u := 0; u < 8; u++ {
		for v := 8; v < 16; v++ {
			if d.G().HasEdge(u, v) {
				t.Fatalf("unexpected cross G edge (%d,%d)", u, v)
			}
		}
	}
	if !d.UnionComplete() {
		t.Fatal("G' must be complete")
	}
}

func TestSimulationPlayerDeterministicGivenSeed(t *testing.T) {
	mk := func() *SimulationPlayer {
		return &SimulationPlayer{
			Algorithm: core.DecayGlobal{},
			Beta:      16,
			Problem:   radio.GlobalBroadcast,
			Seed:      5,
		}
	}
	a := Play(16, 9, 100000, mk(), bitrand.New(1))
	b := Play(16, 9, 100000, mk(), bitrand.New(1))
	if a != b {
		t.Fatalf("same-seed plays diverged: %+v vs %+v", a, b)
	}
}
