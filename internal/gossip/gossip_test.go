package gossip

import (
	"testing"

	"repro/internal/bitrand"
	"repro/internal/graph"
	"repro/internal/radio"
)

func runGossip(t *testing.T, net *graph.Dual, sources []graph.NodeID, link any, seed uint64, maxRounds int) radio.Result {
	t.Helper()
	res, err := radio.Run(radio.Config{
		Net:       net,
		Algorithm: TDM{},
		Spec:      radio.Spec{Problem: radio.Gossip, Sources: sources},
		Link:      link,
		Seed:      seed,
		MaxRounds: maxRounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTDMSingleRumorEqualsGlobalBroadcast(t *testing.T) {
	net := graph.UniformDual(graph.Clique(32))
	res := runGossip(t, net, []graph.NodeID{0}, nil, 1, 100000)
	if !res.Solved {
		t.Fatal("single-rumor gossip incomplete")
	}
	if res.RumorAt == nil || res.RumorAt[5][0] < 0 {
		t.Fatal("RumorAt not filled")
	}
}

func TestTDMMultiRumorClique(t *testing.T) {
	net := graph.UniformDual(graph.Clique(32))
	for _, k := range []int{2, 4} {
		sources := make([]graph.NodeID, k)
		for i := range sources {
			sources[i] = i * 3
		}
		res := runGossip(t, net, sources, nil, 2, 200000)
		if !res.Solved {
			t.Fatalf("k=%d gossip incomplete after %d rounds", k, res.Rounds)
		}
		// Every node holds every rumor.
		for u, row := range res.RumorAt {
			for i, at := range row {
				if at < 0 {
					t.Fatalf("node %d missing rumor %d", u, i)
				}
			}
		}
	}
}

func TestTDMOnLine(t *testing.T) {
	net := graph.UniformDual(graph.Line(24))
	res := runGossip(t, net, []graph.NodeID{0, 23}, nil, 3, 400000)
	if !res.Solved {
		t.Fatalf("line gossip incomplete after %d rounds", res.Rounds)
	}
}

func TestTDMUnderRandomLoss(t *testing.T) {
	d, _ := graph.DualClique(64, 3)
	res, err := radio.Run(radio.Config{
		Net:       d,
		Algorithm: TDM{},
		Spec:      radio.Spec{Problem: radio.Gossip, Sources: []graph.NodeID{1, 40}},
		Link:      hashLoss{p: 0.5},
		Seed:      4,
		MaxRounds: 400000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("gossip incomplete under random loss")
	}
}

// hashLoss is a local oblivious i.i.d. adversary (gossip must not import
// the adversary package to keep the dependency graph acyclic for tests).
type hashLoss struct{ p float64 }

func (h hashLoss) CommitSchedule(env *radio.Env) radio.Schedule {
	seed := env.Rng.Uint64()
	return radio.ScheduleFunc(func(r int) graph.EdgeSelector {
		return graph.SelectFunc{F: func(u, v graph.NodeID) bool {
			k := graph.MakeEdgeKey(u, v)
			return bitrand.HashFloat(seed, uint64(r), uint64(k.U), uint64(k.V)) < h.p
		}}
	})
}

func TestTDMScalesWithK(t *testing.T) {
	net := graph.UniformDual(graph.Clique(32))
	r1 := runGossip(t, net, []graph.NodeID{0}, nil, 5, 400000)
	sources := []graph.NodeID{0, 5, 10, 15}
	r4 := runGossip(t, net, sources, nil, 5, 400000)
	if !r1.Solved || !r4.Solved {
		t.Fatal("incomplete")
	}
	if r4.Rounds <= r1.Rounds {
		t.Fatalf("k=4 (%d rounds) should cost more than k=1 (%d rounds)", r4.Rounds, r1.Rounds)
	}
}

func TestGossipMonitorValidation(t *testing.T) {
	net := graph.UniformDual(graph.Line(4))
	bad := []radio.Spec{
		{Problem: radio.Gossip},                                 // no sources
		{Problem: radio.Gossip, Sources: []graph.NodeID{9}},     // out of range
		{Problem: radio.Gossip, Sources: []graph.NodeID{1, 1}},  // duplicate
		{Problem: radio.Gossip, Sources: []graph.NodeID{-1, 2}}, // negative
	}
	for i, spec := range bad {
		_, err := radio.Run(radio.Config{Net: net, Algorithm: TDM{}, Spec: spec, MaxRounds: 4})
		if err == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
	}
}

func TestLeaderRankDeterminism(t *testing.T) {
	a := LeaderElect{RankSeed: 7}
	if a.Rank(3) != a.Rank(3) {
		t.Fatal("rank not deterministic")
	}
	if a.Rank(3) == a.Rank(4) {
		t.Fatal("rank collision on adjacent ids (astronomically unlikely)")
	}
	if (LeaderElect{RankSeed: 8}).Rank(3) == a.Rank(3) {
		t.Fatal("rank seed has no effect")
	}
}

func TestLeaderMatchesArgmax(t *testing.T) {
	a := LeaderElect{RankSeed: 42}
	const n = 50
	leader := a.Leader(n)
	for u := 0; u < n; u++ {
		if a.Rank(u) > a.Rank(leader) {
			t.Fatalf("node %d outranks declared leader %d", u, leader)
		}
	}
}

func TestLeaderElectionConvergesOnClique(t *testing.T) {
	a := LeaderElect{RankSeed: 9}
	net := graph.UniformDual(graph.Clique(32))
	leader := a.Leader(32)
	res, err := radio.Run(radio.Config{
		Net:       net,
		Algorithm: a,
		Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: leader},
		Seed:      1,
		MaxRounds: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("leader claim did not reach everyone")
	}
}

func TestLeaderElectionConvergesStateWise(t *testing.T) {
	// White-box: after completion every process's champion is the leader.
	a := LeaderElect{RankSeed: 10}
	net := graph.UniformDual(graph.Grid(6, 6))
	leader := a.Leader(36)
	procs := a.NewProcesses(net, radio.Spec{Problem: radio.GlobalBroadcast, Source: leader}, bitrand.New(1))
	cap := &capturingAlg{procs: procs}
	res, err := radio.Run(radio.Config{
		Net:       net,
		Algorithm: cap,
		Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: leader},
		Seed:      2,
		MaxRounds: 200000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("election incomplete")
	}
	for u, p := range procs {
		lp := p.(*leaderProc)
		champ, _ := lp.Champion()
		if champ != leader {
			t.Fatalf("node %d converged on %d, leader is %d", u, champ, leader)
		}
	}
}

// capturingAlg hands pre-built processes to the engine.
type capturingAlg struct{ procs []radio.Process }

func (c *capturingAlg) Name() string { return "captured" }

func (c *capturingAlg) NewProcesses(*graph.Dual, radio.Spec, *bitrand.Source) []radio.Process {
	return c.procs
}

func TestLeaderElectionUnderLoss(t *testing.T) {
	a := LeaderElect{RankSeed: 11}
	d, _ := graph.DualClique(64, 3)
	leader := a.Leader(64)
	res, err := radio.Run(radio.Config{
		Net:       d,
		Algorithm: a,
		Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: leader},
		Link:      hashLoss{p: 0.5},
		Seed:      3,
		MaxRounds: 200000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("leader election incomplete under loss")
	}
}
