// Package gossip extends the paper's broadcast toolbox to the problems its
// conclusion names as future work: k-rumor spreading and leader election in
// the dual graph model with weak adversaries.
//
// Both constructions reuse the Section 4.1 insight — runtime-generated
// shared bits defeat oblivious link processes — by running k time-multiplexed
// permuted-decay broadcasts: global round r serves rumor r mod k, and within
// a rumor's subsequence the informed nodes behave exactly like the paper's
// oblivious-model global broadcast, using bits the rumor's origin drew at
// runtime and ships inside its message. Leader election layers a
// highest-rank-wins rule on top.
package gossip

import (
	"repro/internal/bitrand"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
)

// TDM is the time-division k-gossip algorithm: rumor i is served in global
// rounds r with r mod k = i, where the nodes informed of rumor i run
// permuted decay on the rumor's own shared bits with subsequence round index
// r / k. For k = 1 this degenerates to the Section 4.1 global broadcast.
// Expected completion is O(k · (D·log n + log²n)) subsequence-scaled rounds
// against oblivious adversaries.
type TDM struct{}

var _ radio.Algorithm = TDM{}

// Name implements radio.Algorithm.
func (TDM) Name() string { return "gossip-tdm" }

// rumor is a message payload: the shared permutation bits of one rumor.
type rumor struct {
	bits *bitrand.BitString
}

// NewProcesses implements radio.Algorithm.
func (TDM) NewProcesses(net *graph.Dual, spec radio.Spec, rng *bitrand.Source) []radio.Process {
	n := net.N()
	k := len(spec.Sources)
	numBlocks := 2 * bitrand.LogN(n)
	srcIndex := make(map[graph.NodeID]int, k)
	for i, s := range spec.Sources {
		srcIndex[s] = i
	}
	procs := make([]radio.Process, n)
	for u := 0; u < n; u++ {
		p := &tdmProc{
			n:         n,
			k:         k,
			numBlocks: numBlocks,
			states:    make([]rumorState, k),
		}
		for i := range p.states {
			p.states[i].informedAt = -1
		}
		if i, ok := srcIndex[u]; ok {
			bits := bitrand.NewBitString(rng, core.GlobalBitsLen(n, numBlocks))
			p.states[i] = rumorState{
				informedAt: 0,
				sched:      core.NewPermSchedule(bits, n, numBlocks),
				msg:        &radio.Message{Origin: u, Payload: rumor{bits: bits}},
				isOrigin:   true,
			}
		}
		procs[u] = p
	}
	return procs
}

type rumorState struct {
	informedAt int
	sched      *core.PermSchedule
	msg        *radio.Message
	isOrigin   bool
	originSent bool
}

type tdmProc struct {
	n, k      int
	numBlocks int
	states    []rumorState
}

// slot returns the rumor index served in global round r and the rumor-local
// round index.
func (p *tdmProc) slot(r int) (idx, sub int) { return r % p.k, r / p.k }

// startSub returns the first aligned subsequence round for a rumor state.
func (p *tdmProc) startSub(st *rumorState) int {
	if st.informedAt <= 0 {
		return 0
	}
	// Subsequence round at which the rumor was learned, rounded up to the
	// next permuted-decay block boundary.
	sub := (st.informedAt + p.k - 1) / p.k
	bl := st.sched.BlockLen()
	return ((sub + bl - 1) / bl) * bl
}

func (p *tdmProc) prob(r int) (float64, *rumorState) {
	idx, sub := p.slot(r)
	st := &p.states[idx]
	if st.informedAt < 0 || st.sched == nil {
		return 0, st
	}
	if st.isOrigin {
		// Origins transmit deterministically in their first slot (as the
		// Section 4.1 source does in round 0), then join permuted decay.
		if !st.originSent {
			return 1, st
		}
	}
	if sub < p.startSub(st) {
		return 0, st
	}
	return st.sched.Prob(sub), st
}

// TransmitProb implements radio.TransmitProber.
func (p *tdmProc) TransmitProb(r int) float64 {
	prob, _ := p.prob(r)
	return prob
}

// Step implements radio.Process.
func (p *tdmProc) Step(r int, rng *bitrand.Source) radio.Action {
	prob, st := p.prob(r)
	if prob <= 0 {
		return radio.Listen()
	}
	if prob >= 1 {
		st.originSent = true
		return radio.Transmit(st.msg)
	}
	if rng.Coin(prob) {
		return radio.Transmit(st.msg)
	}
	return radio.Listen()
}

// Deliver implements radio.Process.
func (p *tdmProc) Deliver(r int, msg *radio.Message) {
	if msg == nil {
		return
	}
	idx, _ := p.slot(r)
	st := &p.states[idx]
	if st.informedAt >= 0 {
		return
	}
	pay, ok := msg.Payload.(rumor)
	if !ok {
		return
	}
	st.informedAt = r + 1
	st.sched = core.NewPermSchedule(pay.bits, p.n, p.numBlocks)
	st.msg = msg
}
