// Package gossip extends the paper's broadcast toolbox to the problems its
// conclusion names as future work: k-rumor spreading and leader election in
// the dual graph model with weak adversaries.
//
// Both constructions reuse the Section 4.1 insight — runtime-generated
// shared bits defeat oblivious link processes — by running k time-multiplexed
// permuted-decay broadcasts: global round r serves rumor r mod k, and within
// a rumor's subsequence the informed nodes behave exactly like the paper's
// oblivious-model global broadcast, using bits the rumor's origin drew at
// runtime and ships inside its message. Leader election layers a
// highest-rank-wins rule on top.
package gossip

import (
	"repro/internal/bitrand"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
)

// TDM is the time-division k-gossip algorithm: rumor i is served in global
// rounds r with r mod k = i, where the nodes informed of rumor i run
// permuted decay on the rumor's own shared bits with subsequence round index
// r / k. For k = 1 this degenerates to the Section 4.1 global broadcast.
// Expected completion is O(k · (D·log n + log²n)) subsequence-scaled rounds
// against oblivious adversaries.
//
// TDM is injection-aware: rumors scheduled by Spec.Injections get their own
// time-division slot from the start, but their origin stays silent until the
// injection round, then transmits deterministically in its first served slot
// (as the Section 4.1 source does in round 0) and joins permuted decay. The
// injected rumor's shared bits are still drawn at construction time — what
// the injection round delays is activation, not randomness — so executions
// remain a pure function of the seed.
type TDM struct{}

var _ radio.ProcessFactory = TDM{}

// Name implements radio.Algorithm.
func (TDM) Name() string { return "gossip-tdm" }

// rumor is a message payload: the shared permutation bits of one rumor.
type rumor struct {
	bits *bitrand.BitString
}

// rumorStart returns the round rumor index i enters the system: 0 for
// initial sources, the injection round for injected rumors.
func rumorStart(spec radio.Spec, i int) int {
	if i < len(spec.Sources) {
		return 0
	}
	return spec.Injections[i-len(spec.Sources)].Round
}

// NewProcesses implements radio.Algorithm.
func (TDM) NewProcesses(net *graph.Dual, spec radio.Spec, rng *bitrand.Source) []radio.Process {
	n := net.N()
	k := spec.NumRumors()
	numBlocks := 2 * bitrand.LogN(n)
	srcIndex := make(map[graph.NodeID]int, k)
	for i, s := range spec.Sources {
		srcIndex[s] = i
	}
	for j, inj := range spec.Injections {
		srcIndex[inj.Source] = len(spec.Sources) + j
	}
	procs := make([]radio.Process, n)
	for u := 0; u < n; u++ {
		p := &tdmProc{
			n:         n,
			k:         k,
			numBlocks: numBlocks,
			states:    make([]rumorState, k),
		}
		for i := range p.states {
			p.states[i].informedAt = -1
		}
		if i, ok := srcIndex[u]; ok {
			bits := bitrand.NewBitString(rng, core.GlobalBitsLen(n, numBlocks))
			st := &p.states[i]
			st.informedAt = rumorStart(spec, i)
			st.sched.Reset(bits, n, numBlocks)
			st.msg = &radio.Message{Origin: u, Payload: rumor{bits: bits}}
			st.isOrigin = true
		}
		procs[u] = p
	}
	return procs
}

// ResetProcesses implements radio.ProcessFactory. Origins redraw their rumor
// bits in ascending node order — the order NewProcesses draws them — each
// refilling its own previous bit-string storage; every per-rumor state is
// cleared to uninformed first.
func (TDM) ResetProcesses(procs []radio.Process, net *graph.Dual, spec radio.Spec, rng *bitrand.Source) bool {
	n := net.N()
	k := spec.NumRumors()
	numBlocks := 2 * bitrand.LogN(n)
	for u := range procs {
		p, ok := procs[u].(*tdmProc)
		if !ok {
			return false
		}
		if len(p.states) != k {
			p.states = make([]rumorState, k)
		}
		si := -1
		for i, s := range spec.Sources {
			if s == u {
				si = i
				break
			}
		}
		if si < 0 {
			for j, inj := range spec.Injections {
				if inj.Source == u {
					si = len(spec.Sources) + j
					break
				}
			}
		}
		// Capture this origin's own bit string before clearing: the origin
		// never overwrites its state, so the storage is reusable.
		var bits *bitrand.BitString
		if si >= 0 {
			if old := &p.states[si]; old.isOrigin && old.msg != nil {
				if pay, ok := old.msg.Payload.(rumor); ok {
					bits = pay.bits
				}
			}
		}
		oldMsg := (*radio.Message)(nil)
		if si >= 0 {
			oldMsg = p.states[si].msg
		}
		for i := range p.states {
			p.states[i] = rumorState{informedAt: -1}
		}
		p.n, p.k, p.numBlocks = n, k, numBlocks
		if si >= 0 {
			L := core.GlobalBitsLen(n, numBlocks)
			if bits != nil {
				bits.Refill(rng, L)
			} else {
				bits = bitrand.NewBitString(rng, L)
				oldMsg = nil
			}
			st := &p.states[si]
			st.informedAt = rumorStart(spec, si)
			st.sched.Reset(bits, n, numBlocks)
			if oldMsg != nil && oldMsg.Origin == u {
				st.msg = oldMsg
			} else {
				st.msg = &radio.Message{Origin: u, Payload: rumor{bits: bits}}
			}
			st.isOrigin = true
		}
	}
	return true
}

//dglint:pooled reset=TDM.ResetProcesses
type rumorState struct {
	informedAt int // -1 until informed; sched/msg valid iff ≥ 0
	sched      core.PermSchedule
	msg        *radio.Message
	isOrigin   bool
	originSent bool
}

//dglint:pooled reset=TDM.ResetProcesses
type tdmProc struct {
	n, k      int
	numBlocks int
	states    []rumorState
}

// slot returns the rumor index served in global round r and the rumor-local
// round index.
func (p *tdmProc) slot(r int) (idx, sub int) { return r % p.k, r / p.k }

// startSub returns the first aligned subsequence round for a rumor state.
func (p *tdmProc) startSub(st *rumorState) int {
	if st.informedAt <= 0 {
		return 0
	}
	// Subsequence round at which the rumor was learned, rounded up to the
	// next permuted-decay block boundary.
	sub := (st.informedAt + p.k - 1) / p.k
	bl := st.sched.BlockLen()
	return ((sub + bl - 1) / bl) * bl
}

func (p *tdmProc) prob(r int) (float64, *rumorState) {
	idx, sub := p.slot(r)
	st := &p.states[idx]
	if st.informedAt < 0 {
		return 0, st
	}
	if st.isOrigin {
		// An injected rumor's origin stays silent until its injection round
		// (informedAt holds the activation round for origins).
		if r < st.informedAt {
			return 0, st
		}
		// Origins transmit deterministically in their first active slot (as
		// the Section 4.1 source does in round 0), then join permuted decay.
		if !st.originSent {
			return 1, st
		}
	}
	if sub < p.startSub(st) {
		return 0, st
	}
	return st.sched.Prob(sub), st
}

// TransmitProb implements radio.TransmitProber.
func (p *tdmProc) TransmitProb(r int) float64 {
	prob, _ := p.prob(r)
	return prob
}

// Step implements radio.Process.
func (p *tdmProc) Step(r int, rng *bitrand.Source) radio.Action {
	prob, st := p.prob(r)
	if prob <= 0 {
		return radio.Listen()
	}
	if prob >= 1 {
		st.originSent = true
		return radio.Transmit(st.msg)
	}
	if rng.Coin(prob) {
		return radio.Transmit(st.msg)
	}
	return radio.Listen()
}

// Deliver implements radio.Process.
func (p *tdmProc) Deliver(r int, msg *radio.Message) {
	if msg == nil {
		return
	}
	idx, _ := p.slot(r)
	st := &p.states[idx]
	if st.informedAt >= 0 {
		return
	}
	pay, ok := msg.Payload.(rumor)
	if !ok {
		return
	}
	st.informedAt = r + 1
	st.sched.Reset(pay.bits, p.n, p.numBlocks)
	st.msg = msg
}
