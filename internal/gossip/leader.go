package gossip

import (
	"repro/internal/bitrand"
	"repro/internal/graph"
	"repro/internal/radio"
)

// LeaderElect is highest-rank-wins leader election in the dual graph model.
// Every node u carries the deterministic rank Hash64(RankSeed, u); each node
// tracks the best (rank, id) champion it has heard of (initially itself) and
// relays the champion's claim with a decay-style probability schedule.
// Messages carry Origin = champion id, so the execution is complete exactly
// when every node has received a claim originating at the true maximum —
// i.e. a global broadcast from a source nobody knows in advance.
//
// Leader(n) computes the true winner from the seed, letting a harness
// configure the completion monitor (Spec.Source = Leader(n)) without leaking
// anything to the processes: they only ever learn ranks through received
// messages.
type LeaderElect struct {
	// RankSeed determines all ranks; zero is a valid seed.
	RankSeed uint64
}

var _ radio.ProcessFactory = LeaderElect{}

// Name implements radio.Algorithm.
func (LeaderElect) Name() string { return "leader-elect" }

// Rank returns node u's rank.
func (a LeaderElect) Rank(u graph.NodeID) uint64 {
	return bitrand.Hash64(a.RankSeed, 0x1eade5, uint64(u))
}

// Leader returns the argmax-rank node on n nodes: the node every correct
// execution must converge on. Ties (probability ~2^-64) break toward the
// smaller id.
func (a LeaderElect) Leader(n int) graph.NodeID {
	best, bestRank := 0, a.Rank(0)
	for u := 1; u < n; u++ {
		if r := a.Rank(u); r > bestRank {
			best, bestRank = u, r
		}
	}
	return best
}

// NewProcesses implements radio.Algorithm.
func (a LeaderElect) NewProcesses(net *graph.Dual, spec radio.Spec, rng *bitrand.Source) []radio.Process {
	n := net.N()
	levels := bitrand.LogN(n)
	procs := make([]radio.Process, n)
	for u := 0; u < n; u++ {
		rank := a.Rank(u)
		own := &radio.Message{Origin: u, Payload: rank}
		procs[u] = &leaderProc{
			levels:   levels,
			champ:    u,
			champRnk: rank,
			msg:      own,
			own:      own,
		}
	}
	return procs
}

// ResetProcesses implements radio.ProcessFactory. Ranks are re-derived from
// the receiver's RankSeed (two LeaderElect values share a Name, so the seed
// may differ from the slab's); each node's own claim frame is reused when
// its rank is unchanged.
func (a LeaderElect) ResetProcesses(procs []radio.Process, net *graph.Dual, spec radio.Spec, rng *bitrand.Source) bool {
	levels := bitrand.LogN(net.N())
	for u := range procs {
		p, ok := procs[u].(*leaderProc)
		if !ok {
			return false
		}
		rank := a.Rank(u)
		if p.own == nil || p.own.Origin != u || p.own.Payload != any(rank) {
			p.own = &radio.Message{Origin: u, Payload: rank}
		}
		p.levels = levels
		p.champ = u
		p.champRnk = rank
		p.msg = p.own
	}
	return true
}

//dglint:pooled reset=LeaderElect.ResetProcesses
type leaderProc struct {
	levels   int
	champ    graph.NodeID
	champRnk uint64
	msg      *radio.Message
	own      *radio.Message // this node's initial claim, reused across trials
}

func (p *leaderProc) prob(r int) float64 {
	// Decay sweep 1/2 ... 1/n: some level matches the local contention.
	exp := r%p.levels + 1
	v := 1.0
	for i := 0; i < exp; i++ {
		v /= 2
	}
	return v
}

// TransmitProb implements radio.TransmitProber.
func (p *leaderProc) TransmitProb(r int) float64 { return p.prob(r) }

// Step implements radio.Process.
func (p *leaderProc) Step(r int, rng *bitrand.Source) radio.Action {
	if rng.Coin(p.prob(r)) {
		return radio.Transmit(p.msg)
	}
	return radio.Listen()
}

// Deliver implements radio.Process.
func (p *leaderProc) Deliver(r int, msg *radio.Message) {
	if msg == nil {
		return
	}
	rank, ok := msg.Payload.(uint64)
	if !ok {
		return
	}
	if rank > p.champRnk || (rank == p.champRnk && msg.Origin < p.champ) {
		p.champ = msg.Origin
		p.champRnk = rank
		p.msg = msg
	}
}

// Champion exposes a process's current belief, for tests and reports.
func (p *leaderProc) Champion() (graph.NodeID, uint64) { return p.champ, p.champRnk }
