package scenario

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/bitrand"
	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/radio"
)

func genCfg() GenConfig {
	return GenConfig{
		Epochs:        3,
		EpochLen:      50,
		Leaves:        2,
		Demotions:     2,
		ExtraFlips:    2,
		Protected:     []graph.NodeID{0},
		InjectSources: []graph.NodeID{5, 9},
	}
}

func baseNet(t testing.TB) *graph.Dual {
	t.Helper()
	d := graph.GeographicGrid(bitrand.New(3), 5, 5, 0.8, 1.6)
	if !graph.Connected(d.G()) {
		t.Fatal("base grid disconnected")
	}
	return d
}

// TestGenerateDeterministic requires identical scenarios from identical
// seeds, and different ones from different seeds.
func TestGenerateDeterministic(t *testing.T) {
	net := baseNet(t)
	a, err := Generate(net, bitrand.New(42), genCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(net, bitrand.New(42), genCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Epochs, b.Epochs) || !reflect.DeepEqual(a.Injections, b.Injections) {
		t.Fatal("same seed produced different scenarios")
	}
	c, err := Generate(net, bitrand.New(43), genCfg())
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Epochs, c.Epochs) {
		t.Fatal("different seeds produced identical churn (suspicious)")
	}
}

// TestGenerateShape checks the timeline structure: epoch starts on the
// EpochLen grid including the healing epoch, protected nodes never leave,
// injections staggered onto churn-epoch starts.
func TestGenerateShape(t *testing.T) {
	cfg := genCfg()
	sc, err := Generate(baseNet(t), bitrand.New(7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := cfg.Epochs + 1; len(sc.Epochs) != want {
		t.Fatalf("got %d epochs, want %d (churn + healing)", len(sc.Epochs), want)
	}
	for i, ep := range sc.Epochs {
		if ep.Start != (i+1)*cfg.EpochLen {
			t.Fatalf("epoch %d starts at %d, want %d", i, ep.Start, (i+1)*cfg.EpochLen)
		}
		for _, op := range ep.Ops {
			if op.Kind == graph.ChurnLeave {
				for _, p := range append(cfg.Protected, cfg.InjectSources...) {
					if op.U == p {
						t.Fatalf("protected node %d left in epoch %d", p, i)
					}
				}
			}
		}
	}
	if len(sc.Injections) != len(cfg.InjectSources) {
		t.Fatalf("got %d injections, want %d", len(sc.Injections), len(cfg.InjectSources))
	}
	for j, inj := range sc.Injections {
		if inj.Round%cfg.EpochLen != 0 || inj.Round <= 0 || inj.Round > cfg.Epochs*cfg.EpochLen {
			t.Fatalf("injection %d at round %d is off the churn-epoch grid", j, inj.Round)
		}
	}
}

// TestCompileHeals compiles a generated scenario and checks that the final
// (healing) revision restores the base reliable graph exactly: every leave
// rejoined, every demotion restored.
func TestCompileHeals(t *testing.T) {
	net := baseNet(t)
	sc, err := Generate(net, bitrand.New(11), genCfg())
	if err != nil {
		t.Fatal(err)
	}
	epochs, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != len(sc.Epochs)+1 {
		t.Fatalf("compiled %d radio epochs for %d scenario epochs", len(epochs), len(sc.Epochs))
	}
	if epochs[0].Net != net || epochs[0].Start != 0 {
		t.Fatal("epoch 0 is not the base network at round 0")
	}
	final := epochs[len(epochs)-1].Net.G()
	if final.NumEdges() != net.G().NumEdges() {
		t.Fatalf("healed G has %d edges, base has %d", final.NumEdges(), net.G().NumEdges())
	}
	net.G().ForEachEdge(func(u, v graph.NodeID) {
		if !final.HasEdge(u, v) {
			t.Fatalf("healed G lost base edge (%d,%d)", u, v)
		}
	})
	// Middle epochs must actually differ from the base (churn happened).
	changed := false
	for _, ep := range epochs[1 : len(epochs)-1] {
		if ep.Net.G().NumEdges() != net.G().NumEdges() {
			changed = true
		}
	}
	if !changed {
		t.Fatal("no epoch changed the reliable graph; generator produced a static scenario")
	}
}

// TestCompileRejectsBadTimeline checks start-order validation.
func TestCompileRejectsBadTimeline(t *testing.T) {
	net := baseNet(t)
	for _, epochs := range [][]Epoch{
		{{Start: 0}},
		{{Start: 10}, {Start: 10}},
		{{Start: 20}, {Start: 10}},
	} {
		if _, err := (Scenario{Base: net, Epochs: epochs}).Compile(); err == nil {
			t.Errorf("timeline %+v accepted, want error", epochs)
		}
	}
	if _, err := (Scenario{}).Compile(); err == nil {
		t.Error("nil base accepted")
	}
}

// TestScenarioEndToEnd runs TDM gossip under a generated churn + injection
// scenario through the engine and requires completion: rumors survive
// departures, rejoins, demotions, and mid-run contention.
func TestScenarioEndToEnd(t *testing.T) {
	net := baseNet(t)
	cfg := genCfg()
	sc, err := Generate(net, bitrand.New(21), cfg)
	if err != nil {
		t.Fatal(err)
	}
	epochs, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	res, err := radio.Run(radio.Config{
		Epochs:    epochs,
		Algorithm: gossip.TDM{},
		Spec: radio.Spec{
			Problem:    radio.Gossip,
			Sources:    []graph.NodeID{0},
			Injections: sc.Injections,
		},
		Seed:      5,
		MaxRounds: 400 * net.N(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("churn scenario unsolved in %d rounds", res.Rounds)
	}
	for i, done := range res.RumorDoneAt {
		if done < res.RumorStartAt[i] {
			t.Fatalf("rumor %d done at %d before start %d", i, done, res.RumorStartAt[i])
		}
	}
	// A departed node cannot receive while offline: re-run is deterministic,
	// so simply sanity-check the run against a static execution at the same
	// seed differing somewhere (the schedule must have had an effect).
	static, err := radio.Run(radio.Config{
		Net:       net,
		Algorithm: gossip.TDM{},
		Spec: radio.Spec{
			Problem:    radio.Gossip,
			Sources:    []graph.NodeID{0},
			Injections: sc.Injections,
		},
		Seed:      5,
		MaxRounds: 400 * net.N(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(res, static) {
		t.Fatal("churn schedule produced a byte-identical execution to the static network (swap had no effect)")
	}
}

// TestGenerateDegradationMetadata pins the per-epoch degradation metadata:
// Generate's Degradation must equal the structural comparison of each
// compiled epoch against the base (DegradationOf), flag every churn epoch as
// degraded, and report the base and healing epochs clean.
func TestGenerateDegradationMetadata(t *testing.T) {
	net := baseNet(t)
	cfg := genCfg()
	cfg.Storms = 6
	// Fringe drift persists past the healing epoch by design, which would
	// legitimately flag the healed topology as still carrying gained links;
	// this test pins the transient kinds, so drift stays off.
	cfg.ExtraFlips = 0
	sc, err := Generate(net, bitrand.New(42), cfg)
	if err != nil {
		t.Fatal(err)
	}
	eps, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Degradation) != len(eps) {
		t.Fatalf("metadata covers %d epochs, schedule has %d", len(sc.Degradation), len(eps))
	}
	if want := DegradationOf(eps); !reflect.DeepEqual(sc.Degradation, want) {
		t.Fatalf("Generate metadata %v differs from structural DegradationOf %v", sc.Degradation, want)
	}
	wins := sc.DegradedWindows()
	if wins[0] {
		t.Fatal("base epoch flagged degraded")
	}
	if wins[len(wins)-1] {
		t.Fatalf("healing epoch flagged degraded: %+v", sc.Degradation[len(wins)-1])
	}
	for i := 1; i < len(wins)-1; i++ {
		d := sc.Degradation[i]
		if !wins[i] {
			t.Fatalf("churn epoch %d not flagged degraded", i)
		}
		if d.Departed == 0 || d.Demoted == 0 || d.Gained == 0 {
			t.Fatalf("churn epoch %d metadata incomplete: %+v (want leaves, demotions, and storm links all visible)", i, d)
		}
		// Storms and demotions both enlarge E'\E, and demoted edges are not
		// double-counted as gained.
		if d.Gained < cfg.Storms {
			t.Fatalf("churn epoch %d gained %d unreliable links, want >= %d storm links", i, d.Gained, cfg.Storms)
		}
	}
}

// TestGenerateStormsTransient checks that storm links last exactly one
// epoch: every storm edge of epoch e is gone from epoch e+1's G' (unless
// re-drawn), and the healing epoch restores the base graphs exactly.
func TestGenerateStormsTransient(t *testing.T) {
	net := baseNet(t)
	cfg := GenConfig{Epochs: 3, EpochLen: 20, Storms: 8}
	sc, err := Generate(net, bitrand.New(9), cfg)
	if err != nil {
		t.Fatal(err)
	}
	eps, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	last := eps[len(eps)-1].Net
	if last.G().NumEdges() != net.G().NumEdges() || last.GPrime().NumEdges() != net.GPrime().NumEdges() {
		t.Fatalf("healing epoch did not restore the base: |E|=%d vs %d, |E'|=%d vs %d",
			last.G().NumEdges(), net.G().NumEdges(), last.GPrime().NumEdges(), net.GPrime().NumEdges())
	}
	for i := 1; i < len(eps); i++ {
		d := DegradationBetween(net, eps[i].Net)
		want := 0
		if i < len(eps)-1 {
			want = cfg.Storms
		}
		if d.Gained != want {
			t.Fatalf("epoch %d carries %d storm links, want %d (storms must clear one epoch later)", i, d.Gained, want)
		}
	}
}

// TestGenerateInjectionBudget pins the round-budget validation: a config
// whose staggered schedule would inject at or beyond MaxRounds fails loudly
// instead of producing a spec the engine rejects (or worse, a silently
// censored trial).
func TestGenerateInjectionBudget(t *testing.T) {
	net := baseNet(t)
	cfg := genCfg() // injections land at rounds 50 and 100
	cfg.MaxRounds = 100
	if _, err := Generate(net, bitrand.New(1), cfg); err == nil {
		t.Fatal("injection at round 100 of a 100-round budget accepted")
	}
	cfg.MaxRounds = 101
	sc, err := Generate(net, bitrand.New(1), cfg)
	if err != nil {
		t.Fatalf("injection inside the budget rejected: %v", err)
	}
	for _, inj := range sc.Injections {
		if inj.Round >= cfg.MaxRounds {
			t.Fatalf("generated injection at round %d breaches the %d-round budget", inj.Round, cfg.MaxRounds)
		}
	}
	cfg.MaxRounds = 0 // unchecked
	if _, err := Generate(net, bitrand.New(1), cfg); err != nil {
		t.Fatalf("MaxRounds 0 must disable the check: %v", err)
	}
}

// TestGenerateStormBudget is the regression test for storm batches landing
// against a round budget that ends before the healing epoch: the final
// epoch's storm fringe would persist for the rest of the run, silently
// breaking the storms-are-transient contract, so Generate must refuse the
// config with radio.ErrBadConfig.
func TestGenerateStormBudget(t *testing.T) {
	net := baseNet(t)
	cfg := GenConfig{Epochs: 3, EpochLen: 50, Storms: 4}
	heal := (cfg.Epochs + 1) * cfg.EpochLen // round 200

	cfg.MaxRounds = heal // budget ends exactly where healing would begin
	_, err := Generate(net, bitrand.New(1), cfg)
	if err == nil {
		t.Fatal("storm config whose healing epoch starts at the budget accepted")
	}
	if !errors.Is(err, radio.ErrBadConfig) {
		t.Fatalf("got %v, want radio.ErrBadConfig", err)
	}

	cfg.MaxRounds = heal + 1 // healing epoch begins inside the budget
	if _, err := Generate(net, bitrand.New(1), cfg); err != nil {
		t.Fatalf("storm config healing inside the budget rejected: %v", err)
	}

	cfg.MaxRounds = 0 // unchecked, like the injection validation
	if _, err := Generate(net, bitrand.New(1), cfg); err != nil {
		t.Fatalf("MaxRounds 0 must disable the check: %v", err)
	}

	cfg.Storms = 0 // no storms: nothing transient is lost, stay permissive
	cfg.MaxRounds = heal
	if _, err := Generate(net, bitrand.New(1), cfg); err != nil {
		t.Fatalf("storm-free config rejected by the storm-budget check: %v", err)
	}
}
