// Package scenario describes epoch-driven workloads for the dual graph
// engine: a timeline of topology revisions (node churn, edge churn) plus
// staggered rumor injections for multi-message contention, generated
// deterministically from a seed.
//
// A Scenario is pure description — churn op lists per epoch, injection
// schedule — decoupled from any execution. Compile materializes it into the
// engine's inputs: one immutable graph revision per epoch (built through
// graph.Revision, so every zero-copy CSR contract holds per epoch) and a
// radio epoch schedule. Experiments compile once per sweep point and share
// the compiled revisions across every trial, which keeps the per-trial
// allocation profile identical to the static path (covers memoize per
// revision, the process arena keys off the epoch-0 network).
package scenario

import (
	"fmt"
	"sync"

	"repro/internal/bitrand"
	"repro/internal/graph"
	"repro/internal/radio"
)

// Epoch is one churn step of a scenario: at round Start, Ops are applied to
// the previous epoch's topology.
type Epoch struct {
	// Start is the first round under the churned topology; must be positive
	// and strictly increasing across the scenario's epochs.
	Start int
	// Ops is the deterministic churn op list, applied in order.
	Ops []graph.ChurnOp
}

// Scenario is a deterministic timeline over a base network: topology churn
// epochs plus rumor injections. The zero value of Epochs/Injections means a
// static single-topology execution.
type Scenario struct {
	// Base is the epoch-0 network.
	Base *graph.Dual
	// Epochs are the churn steps, in increasing Start order.
	Epochs []Epoch
	// Injections is the multi-message contention schedule, handed to
	// radio.Spec.Injections for gossip workloads.
	Injections []radio.Injection
	// Degradation is the per-epoch degradation metadata, aligned with the
	// compiled schedule (entry 0 is the base epoch and always zero). Filled
	// by Generate; for hand-built scenarios, DegradationOf computes it from
	// a compiled schedule. Churn-window adversaries consume this to know
	// when the topology is worth attacking.
	Degradation []Degradation
}

// Degradation quantifies how far one epoch's topology has drifted from the
// base: the attack surface a churn-aware adversary sees.
type Degradation struct {
	// Departed counts nodes offline during the epoch: nodes with at least
	// one base G' link but none in the epoch's G'.
	Departed int
	// Demoted counts base reliable G edges that are no longer reliable in
	// the epoch (demoted to E'\E or dropped outright) between endpoints
	// that are both still online. These are exactly the formerly-trusted
	// links whose fate the link process now controls.
	Demoted int
	// Gained counts unreliable links present in the epoch's G' that the
	// base G' never had: fresh adversary-controlled pairs (storms, fringe
	// drift). Like demotions they enlarge the attack surface, so they count
	// as degradation even though no reliable link was lost.
	Gained int
}

// Degraded reports whether the epoch's topology is degraded at all.
func (d Degradation) Degraded() bool { return d.Departed > 0 || d.Demoted > 0 || d.Gained > 0 }

// degMemo caches DegradationBetween results per (base, cur) revision pair.
// Duals are immutable once built, so a pair's degradation never changes; a
// compiled schedule has a handful of revisions that churn-window adversaries
// re-compare every round of every trial, which made the derived-windows path
// ~8x slower than the precomputed mask (BENCH_pr5). The memo retains the
// keyed duals for the process lifetime — the same trade the per-graph
// clique-cover and neighbor-mask memos make. A typed map under RWMutex keeps
// the steady-state hit allocation-free (a sync.Map would box the key on
// every Load).
var degMemo struct {
	sync.RWMutex
	m map[[2]*graph.Dual]Degradation
}

// DegradationBetween compares one epoch's topology against the base,
// memoized per (base, cur) pair. The first comparison walks zero-copy CSR
// views at O(|E|) cost; repeated calls (a churn-window adversary without
// precomputed windows makes one per round) are an allocation-free map hit.
func DegradationBetween(base, cur *graph.Dual) Degradation {
	key := [2]*graph.Dual{base, cur}
	degMemo.RLock()
	out, ok := degMemo.m[key]
	degMemo.RUnlock()
	if ok {
		return out
	}
	out = degradationBetween(base, cur)
	degMemo.Lock()
	if degMemo.m == nil {
		degMemo.m = make(map[[2]*graph.Dual]Degradation)
	}
	degMemo.m[key] = out
	degMemo.Unlock()
	return out
}

func degradationBetween(base, cur *graph.Dual) Degradation {
	var out Degradation
	departed := func(u graph.NodeID) bool {
		return len(base.GPrime().Neighbors(u)) > 0 && len(cur.GPrime().Neighbors(u)) == 0
	}
	for u := 0; u < base.N(); u++ {
		if departed(u) {
			out.Departed++
		}
	}
	base.G().ForEachEdge(func(u, v graph.NodeID) {
		if !departed(u) && !departed(v) && !cur.G().HasEdge(u, v) {
			out.Demoted++
		}
	})
	cur.GPrime().ForEachEdge(func(u, v graph.NodeID) {
		if !base.GPrime().HasEdge(u, v) {
			out.Gained++
		}
	})
	return out
}

// DegradationOf computes the per-epoch degradation metadata of a compiled
// schedule (epoch 0 is the base). Generate fills Scenario.Degradation with
// exactly this.
func DegradationOf(epochs []radio.Epoch) []Degradation {
	if len(epochs) == 0 {
		return nil
	}
	out := make([]Degradation, len(epochs))
	for i := 1; i < len(epochs); i++ {
		out[i] = DegradationBetween(epochs[0].Net, epochs[i].Net)
	}
	return out
}

// DegradedWindows flattens the scenario's degradation metadata into the
// per-epoch window mask a churn-window adversary consumes (true = the epoch
// is degraded).
func (s Scenario) DegradedWindows() []bool {
	wins := make([]bool, len(s.Degradation))
	for i, d := range s.Degradation {
		wins[i] = d.Degraded()
	}
	return wins
}

// Compile materializes the scenario into a radio epoch schedule: revision 0
// is the base, and each scenario epoch derives the next immutable revision
// through graph.Revision. The result is safe to share across trials.
func (s Scenario) Compile() ([]radio.Epoch, error) {
	if s.Base == nil {
		return nil, fmt.Errorf("scenario: nil base network")
	}
	epochs := make([]radio.Epoch, 0, len(s.Epochs)+1)
	epochs = append(epochs, radio.Epoch{Start: 0, Net: s.Base})
	rv := graph.NewRevision(s.Base)
	last := 0
	for i, ep := range s.Epochs {
		if ep.Start <= last {
			return nil, fmt.Errorf("scenario: epoch %d starts at round %d, not after %d", i, ep.Start, last)
		}
		last = ep.Start
		var err error
		if rv, err = rv.Apply(ep.Ops); err != nil {
			return nil, fmt.Errorf("scenario: epoch %d: %w", i, err)
		}
		epochs = append(epochs, radio.Epoch{Start: ep.Start, Net: rv.Dual()})
	}
	return epochs, nil
}

// GenConfig parameterizes deterministic scenario generation.
type GenConfig struct {
	// Epochs is the number of churn epochs (beyond the initial topology). A
	// final healing epoch is appended after them, so the compiled schedule
	// has Epochs+2 topologies.
	Epochs int
	// EpochLen is the number of rounds between epoch starts; the first churn
	// epoch begins at round EpochLen.
	EpochLen int
	// Leaves is the number of nodes taken offline per churn epoch; each
	// rejoins at the next epoch (or in the healing epoch).
	Leaves int
	// Demotions is the number of reliable G edges demoted to E'\E per churn
	// epoch; each is restored at the next epoch, so reliability dips are
	// transient, mirroring the leave/rejoin pattern.
	Demotions int
	// ExtraFlips is the number of unreliable E'\E edges removed and the
	// number of fresh unreliable pairs added per churn epoch. These persist:
	// the adversary-controlled fringe drifts over the scenario's lifetime.
	ExtraFlips int
	// Storms is the number of transient unreliable links flaring up per
	// churn epoch: fresh E'\E pairs added at the epoch start and removed
	// one epoch later (the healing epoch clears the last batch), mirroring
	// the leave/demotion pattern. A storm epoch hands the adversary a
	// temporarily enlarged attack surface — on a base with G' = G it is the
	// dual graph model's G-vs-G' gap itself, opening for one epoch.
	Storms int
	// Protected nodes never leave (problem sources and injection origins, so
	// a scheduled origin is online when its rumor activates).
	Protected []graph.NodeID
	// InjectSources, when non-empty, schedules one extra rumor per listed
	// node, staggered across epoch starts: rumor j activates when churn
	// epoch (j mod max(Epochs,1))+1 begins. Sources here are implicitly
	// protected.
	InjectSources []graph.NodeID
	// MaxRounds, when positive, is the round budget the scenario will run
	// under. Generate fails if the staggered injection schedule would place
	// a rumor at or beyond it — the engine rejects such specs, because the
	// rumor would count toward completion while never entering the system.
	MaxRounds int
}

// Validate checks the config against an n-node base network without
// generating anything: epoch geometry, the storm healing budget, and node
// references. It is the static half of Generate's contract, exposed so a
// serialized GenConfig (a service submission, a replayed spec file) can be
// rejected with a precise error before any graph is built.
func (cfg GenConfig) Validate(n int) error {
	if cfg.Epochs < 0 || cfg.EpochLen <= 0 {
		return fmt.Errorf("scenario: need EpochLen > 0 (got %d) and Epochs >= 0 (got %d)", cfg.EpochLen, cfg.Epochs)
	}
	// Storms are documented as transient: each batch clears one epoch later,
	// with the healing epoch (start (Epochs+1)*EpochLen) clearing the last.
	// If the round budget ends before the healing epoch begins, the final
	// epoch's storm fringe silently persists to the end of the run — the
	// caller gets a permanently degraded topology it believes is transient.
	// Refuse the config instead of dropping the contract.
	if cfg.Storms > 0 && cfg.MaxRounds > 0 && cfg.Epochs > 0 && (cfg.Epochs+1)*cfg.EpochLen >= cfg.MaxRounds {
		return fmt.Errorf("%w: scenario: healing epoch starts at round %d, at or beyond the %d-round budget — the final storm batch would never clear",
			radio.ErrBadConfig, (cfg.Epochs+1)*cfg.EpochLen, cfg.MaxRounds)
	}
	for _, u := range cfg.Protected {
		if u < 0 || u >= n {
			return fmt.Errorf("scenario: protected node %d out of range [0,%d)", u, n)
		}
	}
	for _, u := range cfg.InjectSources {
		if u < 0 || u >= n {
			return fmt.Errorf("scenario: injection source %d out of range [0,%d)", u, n)
		}
	}
	return nil
}

// Generate draws a deterministic scenario from the source: the same base,
// source state, and config always produce the same timeline. Node and edge
// choices are sampled from the evolving topology itself (a node that left
// cannot lose an edge it no longer has), so generation walks the revision
// chain as it emits ops.
func Generate(base *graph.Dual, src *bitrand.Source, cfg GenConfig) (Scenario, error) {
	if base == nil {
		return Scenario{}, fmt.Errorf("scenario: nil base network")
	}
	n := base.N()
	if err := cfg.Validate(n); err != nil {
		return Scenario{}, err
	}
	protected := make([]bool, n)
	for _, u := range cfg.Protected {
		protected[u] = true
	}
	for _, u := range cfg.InjectSources {
		protected[u] = true
	}

	sc := Scenario{Base: base, Degradation: []Degradation{{}}}
	rv := graph.NewRevision(base)
	var pendingJoins []graph.NodeID     // nodes that left last epoch
	var pendingRestores []graph.ChurnOp // demoted G edges to re-add
	var pendingClears []graph.ChurnOp   // storm E'\E edges to remove

	for e := 1; e <= cfg.Epochs; e++ {
		var ops []graph.ChurnOp
		// Heal last epoch's churn first, so departures, demotions, and
		// storms last exactly one epoch.
		for _, u := range pendingJoins {
			ops = append(ops, graph.ChurnOp{Kind: graph.ChurnJoin, U: u})
		}
		pendingJoins = nil
		ops = append(ops, pendingRestores...)
		pendingRestores = nil
		ops = append(ops, pendingClears...)
		pendingClears = nil

		d := rv.Dual()
		// Node churn: sample distinct present, unprotected nodes.
		for picked, attempts := 0, 0; picked < cfg.Leaves && attempts < 16*n; attempts++ {
			u := src.Intn(n)
			if protected[u] || rv.Departed(u) || containsNode(pendingJoins, u) {
				continue
			}
			ops = append(ops, graph.ChurnOp{Kind: graph.ChurnLeave, U: u})
			pendingJoins = append(pendingJoins, u)
			picked++
		}
		// Reliability churn: demote sampled G edges for one epoch.
		gEdges := collectEdges(d.G(), nil)
		for i := 0; i < cfg.Demotions && len(gEdges) > 0; i++ {
			j := src.Intn(len(gEdges))
			u, v := gEdges[j][0], gEdges[j][1]
			gEdges[j] = gEdges[len(gEdges)-1]
			gEdges = gEdges[:len(gEdges)-1]
			ops = append(ops, graph.ChurnOp{Kind: graph.ChurnRemoveEdge, U: u, V: v})
			pendingRestores = append(pendingRestores, graph.ChurnOp{Kind: graph.ChurnAddEdge, U: u, V: v})
		}
		// Fringe drift: remove sampled unreliable edges, add fresh pairs.
		// Base reliable edges are off limits even while they sit in E'\E (a
		// demotion from the previous epoch awaiting restore): removing one
		// would delete the reliable link outright and the healing epoch
		// could never restore the base graph.
		exEdges := collectExtra(d, func(u, v graph.NodeID) bool {
			return !base.G().HasEdge(u, v)
		})
		for i := 0; i < cfg.ExtraFlips && len(exEdges) > 0; i++ {
			j := src.Intn(len(exEdges))
			u, v := exEdges[j][0], exEdges[j][1]
			exEdges[j] = exEdges[len(exEdges)-1]
			exEdges = exEdges[:len(exEdges)-1]
			ops = append(ops, graph.ChurnOp{Kind: graph.ChurnRemoveExtraEdge, U: u, V: v})
		}
		added := map[[2]graph.NodeID]bool{}
		for i, attempts := 0, 0; i < cfg.ExtraFlips && attempts < 16*n; attempts++ {
			u, v := src.Intn(n), src.Intn(n)
			if u > v {
				u, v = v, u
			}
			// Skip pairs that would be set no-ops (already drawn this epoch,
			// already in G') and pairs Apply would ignore (an endpoint is
			// departing this epoch, or still departed from an earlier one),
			// so the epoch really gains ExtraFlips fresh unreliable edges.
			if u == v || added[[2]graph.NodeID{u, v}] || d.GPrime().HasEdge(u, v) ||
				containsNode(pendingJoins, u) || containsNode(pendingJoins, v) ||
				rv.Departed(u) || rv.Departed(v) {
				continue
			}
			added[[2]graph.NodeID{u, v}] = true
			ops = append(ops, graph.ChurnOp{Kind: graph.ChurnAddExtraEdge, U: u, V: v})
			i++
		}
		// Interference storms: transient unreliable links, cleared one epoch
		// later. The same fresh-pair sampling as fringe drift, but with the
		// removal scheduled — a storm epoch's attack surface collapses back
		// to the base when it passes.
		for i, attempts := 0, 0; i < cfg.Storms && attempts < 64*n; attempts++ {
			u, v := src.Intn(n), src.Intn(n)
			if u > v {
				u, v = v, u
			}
			if u == v || added[[2]graph.NodeID{u, v}] || d.GPrime().HasEdge(u, v) ||
				containsNode(pendingJoins, u) || containsNode(pendingJoins, v) ||
				rv.Departed(u) || rv.Departed(v) {
				continue
			}
			added[[2]graph.NodeID{u, v}] = true
			ops = append(ops, graph.ChurnOp{Kind: graph.ChurnAddExtraEdge, U: u, V: v})
			pendingClears = append(pendingClears, graph.ChurnOp{Kind: graph.ChurnRemoveExtraEdge, U: u, V: v})
			i++
		}

		next, err := rv.Apply(ops)
		if err != nil {
			return Scenario{}, fmt.Errorf("scenario: generating epoch %d: %w", e, err)
		}
		rv = next
		sc.Epochs = append(sc.Epochs, Epoch{Start: e * cfg.EpochLen, Ops: ops})
		sc.Degradation = append(sc.Degradation, DegradationBetween(base, rv.Dual()))
	}

	// Healing epoch: everyone rejoins, every outstanding demotion is
	// restored, and the last storm clears, so the problem stays solvable
	// after the churn window.
	if cfg.Epochs > 0 {
		var heal []graph.ChurnOp
		for _, u := range pendingJoins {
			heal = append(heal, graph.ChurnOp{Kind: graph.ChurnJoin, U: u})
		}
		heal = append(heal, pendingRestores...)
		heal = append(heal, pendingClears...)
		next, err := rv.Apply(heal)
		if err != nil {
			return Scenario{}, fmt.Errorf("scenario: generating healing epoch: %w", err)
		}
		rv = next
		sc.Epochs = append(sc.Epochs, Epoch{Start: (cfg.Epochs + 1) * cfg.EpochLen, Ops: heal})
		sc.Degradation = append(sc.Degradation, DegradationBetween(base, rv.Dual()))
	}

	// Staggered injections: rumor j enters when churn epoch (j mod E)+1
	// begins, spreading contention across the timeline.
	cycle := cfg.Epochs
	if cycle < 1 {
		cycle = 1
	}
	for j, u := range cfg.InjectSources {
		round := (1 + j%cycle) * cfg.EpochLen
		if cfg.MaxRounds > 0 && round >= cfg.MaxRounds {
			return Scenario{}, fmt.Errorf("scenario: injection %d (node %d) lands at round %d, at or beyond the %d-round budget",
				j, u, round, cfg.MaxRounds)
		}
		sc.Injections = append(sc.Injections, radio.Injection{
			Source: u,
			Round:  round,
		})
	}
	return sc, nil
}

func containsNode(xs []graph.NodeID, u graph.NodeID) bool {
	for _, x := range xs {
		if x == u {
			return true
		}
	}
	return false
}

// collectEdges lists a graph's undirected edges, optionally filtered.
func collectEdges(g *graph.Graph, keep func(u, v graph.NodeID) bool) [][2]graph.NodeID {
	out := make([][2]graph.NodeID, 0, g.NumEdges())
	g.ForEachEdge(func(u, v graph.NodeID) {
		if keep == nil || keep(u, v) {
			out = append(out, [2]graph.NodeID{u, v})
		}
	})
	return out
}

// collectExtra lists a dual's E'\E edges with u < v, optionally filtered.
func collectExtra(d *graph.Dual, keep func(u, v graph.NodeID) bool) [][2]graph.NodeID {
	out := make([][2]graph.NodeID, 0, d.NumExtraEdges())
	for u := 0; u < d.N(); u++ {
		for _, v := range d.ExtraNeighbors(u) {
			if u < v && (keep == nil || keep(u, v)) {
				out = append(out, [2]graph.NodeID{u, v})
			}
		}
	}
	return out
}
