// Package scenario describes epoch-driven workloads for the dual graph
// engine: a timeline of topology revisions (node churn, edge churn) plus
// staggered rumor injections for multi-message contention, generated
// deterministically from a seed.
//
// A Scenario is pure description — churn op lists per epoch, injection
// schedule — decoupled from any execution. Compile materializes it into the
// engine's inputs: one immutable graph revision per epoch (built through
// graph.Revision, so every zero-copy CSR contract holds per epoch) and a
// radio epoch schedule. Experiments compile once per sweep point and share
// the compiled revisions across every trial, which keeps the per-trial
// allocation profile identical to the static path (covers memoize per
// revision, the process arena keys off the epoch-0 network).
package scenario

import (
	"fmt"

	"repro/internal/bitrand"
	"repro/internal/graph"
	"repro/internal/radio"
)

// Epoch is one churn step of a scenario: at round Start, Ops are applied to
// the previous epoch's topology.
type Epoch struct {
	// Start is the first round under the churned topology; must be positive
	// and strictly increasing across the scenario's epochs.
	Start int
	// Ops is the deterministic churn op list, applied in order.
	Ops []graph.ChurnOp
}

// Scenario is a deterministic timeline over a base network: topology churn
// epochs plus rumor injections. The zero value of Epochs/Injections means a
// static single-topology execution.
type Scenario struct {
	// Base is the epoch-0 network.
	Base *graph.Dual
	// Epochs are the churn steps, in increasing Start order.
	Epochs []Epoch
	// Injections is the multi-message contention schedule, handed to
	// radio.Spec.Injections for gossip workloads.
	Injections []radio.Injection
}

// Compile materializes the scenario into a radio epoch schedule: revision 0
// is the base, and each scenario epoch derives the next immutable revision
// through graph.Revision. The result is safe to share across trials.
func (s Scenario) Compile() ([]radio.Epoch, error) {
	if s.Base == nil {
		return nil, fmt.Errorf("scenario: nil base network")
	}
	epochs := make([]radio.Epoch, 0, len(s.Epochs)+1)
	epochs = append(epochs, radio.Epoch{Start: 0, Net: s.Base})
	rv := graph.NewRevision(s.Base)
	last := 0
	for i, ep := range s.Epochs {
		if ep.Start <= last {
			return nil, fmt.Errorf("scenario: epoch %d starts at round %d, not after %d", i, ep.Start, last)
		}
		last = ep.Start
		var err error
		if rv, err = rv.Apply(ep.Ops); err != nil {
			return nil, fmt.Errorf("scenario: epoch %d: %w", i, err)
		}
		epochs = append(epochs, radio.Epoch{Start: ep.Start, Net: rv.Dual()})
	}
	return epochs, nil
}

// GenConfig parameterizes deterministic scenario generation.
type GenConfig struct {
	// Epochs is the number of churn epochs (beyond the initial topology). A
	// final healing epoch is appended after them, so the compiled schedule
	// has Epochs+2 topologies.
	Epochs int
	// EpochLen is the number of rounds between epoch starts; the first churn
	// epoch begins at round EpochLen.
	EpochLen int
	// Leaves is the number of nodes taken offline per churn epoch; each
	// rejoins at the next epoch (or in the healing epoch).
	Leaves int
	// Demotions is the number of reliable G edges demoted to E'\E per churn
	// epoch; each is restored at the next epoch, so reliability dips are
	// transient, mirroring the leave/rejoin pattern.
	Demotions int
	// ExtraFlips is the number of unreliable E'\E edges removed and the
	// number of fresh unreliable pairs added per churn epoch. These persist:
	// the adversary-controlled fringe drifts over the scenario's lifetime.
	ExtraFlips int
	// Protected nodes never leave (problem sources and injection origins, so
	// a scheduled origin is online when its rumor activates).
	Protected []graph.NodeID
	// InjectSources, when non-empty, schedules one extra rumor per listed
	// node, staggered across epoch starts: rumor j activates when churn
	// epoch (j mod max(Epochs,1))+1 begins. Sources here are implicitly
	// protected.
	InjectSources []graph.NodeID
}

// Generate draws a deterministic scenario from the source: the same base,
// source state, and config always produce the same timeline. Node and edge
// choices are sampled from the evolving topology itself (a node that left
// cannot lose an edge it no longer has), so generation walks the revision
// chain as it emits ops.
func Generate(base *graph.Dual, src *bitrand.Source, cfg GenConfig) (Scenario, error) {
	if base == nil {
		return Scenario{}, fmt.Errorf("scenario: nil base network")
	}
	if cfg.Epochs < 0 || cfg.EpochLen <= 0 {
		return Scenario{}, fmt.Errorf("scenario: need EpochLen > 0 (got %d) and Epochs >= 0 (got %d)", cfg.EpochLen, cfg.Epochs)
	}
	n := base.N()
	protected := make([]bool, n)
	for _, u := range cfg.Protected {
		if u < 0 || u >= n {
			return Scenario{}, fmt.Errorf("scenario: protected node %d out of range [0,%d)", u, n)
		}
		protected[u] = true
	}
	for _, u := range cfg.InjectSources {
		if u < 0 || u >= n {
			return Scenario{}, fmt.Errorf("scenario: injection source %d out of range [0,%d)", u, n)
		}
		protected[u] = true
	}

	sc := Scenario{Base: base}
	rv := graph.NewRevision(base)
	var pendingJoins []graph.NodeID   // nodes that left last epoch
	var pendingRestores []graph.ChurnOp // demoted G edges to re-add

	for e := 1; e <= cfg.Epochs; e++ {
		var ops []graph.ChurnOp
		// Heal last epoch's churn first, so departures and demotions last
		// exactly one epoch.
		for _, u := range pendingJoins {
			ops = append(ops, graph.ChurnOp{Kind: graph.ChurnJoin, U: u})
		}
		pendingJoins = nil
		ops = append(ops, pendingRestores...)
		pendingRestores = nil

		d := rv.Dual()
		// Node churn: sample distinct present, unprotected nodes.
		for picked, attempts := 0, 0; picked < cfg.Leaves && attempts < 16*n; attempts++ {
			u := src.Intn(n)
			if protected[u] || rv.Departed(u) || containsNode(pendingJoins, u) {
				continue
			}
			ops = append(ops, graph.ChurnOp{Kind: graph.ChurnLeave, U: u})
			pendingJoins = append(pendingJoins, u)
			picked++
		}
		// Reliability churn: demote sampled G edges for one epoch.
		gEdges := collectEdges(d.G(), nil)
		for i := 0; i < cfg.Demotions && len(gEdges) > 0; i++ {
			j := src.Intn(len(gEdges))
			u, v := gEdges[j][0], gEdges[j][1]
			gEdges[j] = gEdges[len(gEdges)-1]
			gEdges = gEdges[:len(gEdges)-1]
			ops = append(ops, graph.ChurnOp{Kind: graph.ChurnRemoveEdge, U: u, V: v})
			pendingRestores = append(pendingRestores, graph.ChurnOp{Kind: graph.ChurnAddEdge, U: u, V: v})
		}
		// Fringe drift: remove sampled unreliable edges, add fresh pairs.
		exEdges := collectExtra(d)
		for i := 0; i < cfg.ExtraFlips && len(exEdges) > 0; i++ {
			j := src.Intn(len(exEdges))
			u, v := exEdges[j][0], exEdges[j][1]
			exEdges[j] = exEdges[len(exEdges)-1]
			exEdges = exEdges[:len(exEdges)-1]
			ops = append(ops, graph.ChurnOp{Kind: graph.ChurnRemoveExtraEdge, U: u, V: v})
		}
		added := map[[2]graph.NodeID]bool{}
		for i, attempts := 0, 0; i < cfg.ExtraFlips && attempts < 16*n; attempts++ {
			u, v := src.Intn(n), src.Intn(n)
			if u > v {
				u, v = v, u
			}
			// Skip pairs that would be set no-ops (already drawn this epoch,
			// already in G') and pairs Apply would ignore (an endpoint is
			// departing this epoch, or still departed from an earlier one),
			// so the epoch really gains ExtraFlips fresh unreliable edges.
			if u == v || added[[2]graph.NodeID{u, v}] || d.GPrime().HasEdge(u, v) ||
				containsNode(pendingJoins, u) || containsNode(pendingJoins, v) ||
				rv.Departed(u) || rv.Departed(v) {
				continue
			}
			added[[2]graph.NodeID{u, v}] = true
			ops = append(ops, graph.ChurnOp{Kind: graph.ChurnAddExtraEdge, U: u, V: v})
			i++
		}

		next, err := rv.Apply(ops)
		if err != nil {
			return Scenario{}, fmt.Errorf("scenario: generating epoch %d: %w", e, err)
		}
		rv = next
		sc.Epochs = append(sc.Epochs, Epoch{Start: e * cfg.EpochLen, Ops: ops})
	}

	// Healing epoch: everyone rejoins, every outstanding demotion is
	// restored, so the problem stays solvable after the churn window.
	if cfg.Epochs > 0 {
		var heal []graph.ChurnOp
		for _, u := range pendingJoins {
			heal = append(heal, graph.ChurnOp{Kind: graph.ChurnJoin, U: u})
		}
		heal = append(heal, pendingRestores...)
		sc.Epochs = append(sc.Epochs, Epoch{Start: (cfg.Epochs + 1) * cfg.EpochLen, Ops: heal})
	}

	// Staggered injections: rumor j enters when churn epoch (j mod E)+1
	// begins, spreading contention across the timeline.
	cycle := cfg.Epochs
	if cycle < 1 {
		cycle = 1
	}
	for j, u := range cfg.InjectSources {
		sc.Injections = append(sc.Injections, radio.Injection{
			Source: u,
			Round:  (1 + j%cycle) * cfg.EpochLen,
		})
	}
	return sc, nil
}

func containsNode(xs []graph.NodeID, u graph.NodeID) bool {
	for _, x := range xs {
		if x == u {
			return true
		}
	}
	return false
}

// collectEdges lists a graph's undirected edges, optionally filtered.
func collectEdges(g *graph.Graph, keep func(u, v graph.NodeID) bool) [][2]graph.NodeID {
	out := make([][2]graph.NodeID, 0, g.NumEdges())
	g.ForEachEdge(func(u, v graph.NodeID) {
		if keep == nil || keep(u, v) {
			out = append(out, [2]graph.NodeID{u, v})
		}
	})
	return out
}

// collectExtra lists a dual's E'\E edges with u < v.
func collectExtra(d *graph.Dual) [][2]graph.NodeID {
	out := make([][2]graph.NodeID, 0, d.NumExtraEdges())
	for u := 0; u < d.N(); u++ {
		for _, v := range d.ExtraNeighbors(u) {
			if u < v {
				out = append(out, [2]graph.NodeID{u, v})
			}
		}
	}
	return out
}
