package scenario

import (
	"testing"

	"repro/internal/bitrand"
	"repro/internal/graph"
)

// TestDegradationBetweenMemo pins the memoized wrapper against the direct
// computation: same verdict on first and repeated calls, and distinct dual
// pointers with identical structure are keyed (and computed) independently.
func TestDegradationBetweenMemo(t *testing.T) {
	build := func(seed uint64) *graph.Dual {
		var src bitrand.Source
		src.Reseed(seed)
		return graph.AugmentDual(&src, graph.RingChords(&src, 60, 20), 40)
	}
	base := build(1)
	cur := build(2)

	want := degradationBetween(base, cur)
	if got := DegradationBetween(base, cur); got != want {
		t.Fatalf("first call: got %+v, want %+v", got, want)
	}
	if got := DegradationBetween(base, cur); got != want {
		t.Fatalf("memoized call: got %+v, want %+v", got, want)
	}

	// The reverse orientation is a different key with a different verdict
	// (Departed/Demoted/Gained are asymmetric); the memo must not conflate.
	rev := degradationBetween(cur, base)
	if got := DegradationBetween(cur, base); got != rev {
		t.Fatalf("reverse pair: got %+v, want %+v", got, rev)
	}

	// A structurally identical dual under a fresh pointer is a fresh key;
	// the answer must still be the direct computation's.
	cur2 := build(2)
	if cur2 == cur {
		t.Fatal("builder returned the same pointer for independent builds")
	}
	if got, want := DegradationBetween(base, cur2), degradationBetween(base, cur2); got != want {
		t.Fatalf("fresh pointer pair: got %+v, want %+v", got, want)
	}
	if got := DegradationBetween(base, cur2); got != want {
		t.Fatalf("fresh pair memoized call: got %+v, want %+v", got, want)
	}
}
