package stats

import (
	"fmt"
	"strings"
)

// Table renders aligned plain-text tables for experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmtFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func fmtFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, w := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w, cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quoting cells containing
// commas or quotes).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(cell, `"`, `""`) + `"`)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }
