// Package stats provides the summary statistics, scaling fits, and table
// rendering used by the experiment harness.
package stats

import (
	"math"
	"sort"
)

// Summary condenses a sample of measurements.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Median float64
	P90    float64
	Max    float64
}

// Summarize computes a Summary; an empty input yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.Median = Quantile(sorted, 0.5)
	s.P90 = Quantile(sorted, 0.9)
	for _, x := range sorted {
		s.Mean += x
	}
	s.Mean /= float64(len(sorted))
	if len(sorted) > 1 {
		var ss float64
		for _, x := range sorted {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(sorted)-1))
	}
	return s
}

// CensoredSummary is a Summary over trial round counts where not every
// trial finished: Solved trials observed their true completion round,
// Censored trials contribute their executed round budget as right-censored
// observations (the medians read "at least this many rounds" whenever
// Censored > 0).
type CensoredSummary struct {
	Summary
	Solved   int
	Censored int
}

// SummarizeCensored reconstructs a censored round summary from raw
// per-trial data: rounds[i] is trial i's executed round count and solved[i]
// whether it completed within that budget. Because it consumes only raw
// per-trial values, the same call produces bit-identical summaries whether
// the trials ran in this process or were merged back from shard artifacts
// (internal/shard) written on other machines.
func SummarizeCensored(rounds []float64, solved []bool) CensoredSummary {
	cs := CensoredSummary{Summary: Summarize(rounds)}
	for _, ok := range solved {
		if ok {
			cs.Solved++
		}
	}
	cs.Censored = len(solved) - cs.Solved
	return cs
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of a sorted sample with linear
// interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MedianInts returns the median of an integer sample (0 for empty input).
func MedianInts(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	sort.Float64s(fs)
	return Quantile(fs, 0.5)
}

// Fit is a least-squares line y = Intercept + Slope·x.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit fits y = a + b·x by least squares. Degenerate inputs (fewer
// than two points, or zero x-variance) return a flat fit with R2 = 0.
func LinearFit(x, y []float64) Fit {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	if n < 2 {
		return Fit{}
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{Intercept: my}
	}
	b := sxy / sxx
	fit := Fit{Slope: b, Intercept: my - b*mx}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	} else {
		fit.R2 = 1
	}
	return fit
}

// GrowthExponent fits T(n) ≈ c·n^e on log-log axes and returns e. It is the
// harness's shape detector: e ≈ 1 for the linear lower-bound rows, e ≈ 0.5
// for the bracelet √n row, e near 0 for polylog algorithms. Non-positive
// samples are skipped.
func GrowthExponent(ns []float64, ts []float64) Fit {
	var lx, ly []float64
	for i := 0; i < len(ns) && i < len(ts); i++ {
		if ns[i] > 0 && ts[i] > 0 {
			lx = append(lx, math.Log(ns[i]))
			ly = append(ly, math.Log(ts[i]))
		}
	}
	return LinearFit(lx, ly)
}

// PolylogRatio measures how T scales against D·log n + log² n: the ratio of
// measured time to that reference, useful for checking the protocol-model
// and oblivious-model upper bound shapes (flat ratios across n mean the
// bound's shape holds).
func PolylogRatio(t float64, d, n int) float64 {
	logN := math.Log2(float64(n))
	if logN < 1 {
		logN = 1
	}
	ref := float64(d)*logN + logN*logN
	if ref <= 0 {
		return 0
	}
	return t / ref
}
