package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || !almostEq(s.Mean, 3) || !almostEq(s.Median, 3) || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary %+v", s)
	}
	if !almostEq(s.Std, math.Sqrt(2.5)) {
		t.Fatalf("std = %v", s.Std)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatal("empty summary must be zero")
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.Median != 7 {
		t.Fatalf("singleton summary %+v", s)
	}
}

func TestSummarizeAllEqual(t *testing.T) {
	s := Summarize([]float64{9, 9, 9, 9})
	if !almostEq(s.Mean, 9) || s.Std != 0 || !almostEq(s.Median, 9) ||
		!almostEq(s.P90, 9) || s.Min != 9 || s.Max != 9 {
		t.Fatalf("all-equal summary %+v", s)
	}
}

// TestSummarizeCensoredHeavy models an unsolved-heavy sweep point: most
// trials hit their round budget (right-censored at 4000) and only a few
// solve early. The summary must surface the budget, not the solved tail.
func TestSummarizeCensoredHeavy(t *testing.T) {
	xs := []float64{120, 4000, 4000, 4000, 4000, 4000, 4000}
	s := Summarize(xs)
	if !almostEq(s.Median, 4000) || !almostEq(s.P90, 4000) || s.Max != 4000 {
		t.Fatalf("censored-heavy summary %+v", s)
	}
	if s.Min != 120 {
		t.Fatalf("solved tail lost: %+v", s)
	}
	if s.Mean >= 4000 || s.Mean <= 120 {
		t.Fatalf("mean must mix both populations: %+v", s)
	}
}

func TestQuantileSingleElement(t *testing.T) {
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
		if got := Quantile([]float64{42}, q); got != 42 {
			t.Errorf("Quantile([42], %v) = %v", q, got)
		}
	}
}

func TestQuantileAllEqual(t *testing.T) {
	sorted := []float64{5, 5, 5, 5, 5}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 1} {
		if got := Quantile(sorted, q); got != 5 {
			t.Errorf("Quantile(all-equal, %v) = %v", q, got)
		}
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {-1, 10}, {2, 40},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); !almostEq(got, c.want) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile must be 0")
	}
}

func TestQuantileMonotoneQuick(t *testing.T) {
	err := quick.Check(func(raw []float64, q1, q2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = 0
			}
		}
		sort.Float64s(raw)
		a, b := math.Mod(math.Abs(q1), 1), math.Mod(math.Abs(q2), 1)
		if a > b {
			a, b = b, a
		}
		return Quantile(raw, a) <= Quantile(raw, b)
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMedianInts(t *testing.T) {
	if got := MedianInts([]int{5, 1, 3}); got != 3 {
		t.Fatalf("median = %v", got)
	}
	if got := MedianInts([]int{4, 2}); got != 3 {
		t.Fatalf("even median = %v", got)
	}
	if MedianInts(nil) != 0 {
		t.Fatal("empty median must be 0")
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 1 + 2x
	f := LinearFit(x, y)
	if !almostEq(f.Slope, 2) || !almostEq(f.Intercept, 1) || !almostEq(f.R2, 1) {
		t.Fatalf("fit %+v", f)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if f := LinearFit([]float64{1}, []float64{2}); f.Slope != 0 {
		t.Fatal("single point must give flat fit")
	}
	f := LinearFit([]float64{2, 2, 2}, []float64{1, 5, 9})
	if f.Slope != 0 || !almostEq(f.Intercept, 5) {
		t.Fatalf("zero-variance fit %+v", f)
	}
}

func TestGrowthExponentDetectsShapes(t *testing.T) {
	ns := []float64{64, 256, 1024, 4096}
	linear := make([]float64, len(ns))
	sqrt := make([]float64, len(ns))
	polylog := make([]float64, len(ns))
	for i, n := range ns {
		linear[i] = 3 * n
		sqrt[i] = 5 * math.Sqrt(n)
		polylog[i] = math.Pow(math.Log2(n), 2)
	}
	if e := GrowthExponent(ns, linear).Slope; math.Abs(e-1) > 0.01 {
		t.Fatalf("linear exponent %v", e)
	}
	if e := GrowthExponent(ns, sqrt).Slope; math.Abs(e-0.5) > 0.01 {
		t.Fatalf("sqrt exponent %v", e)
	}
	if e := GrowthExponent(ns, polylog).Slope; e > 0.4 {
		t.Fatalf("polylog exponent %v should be well below linear", e)
	}
}

func TestGrowthExponentSkipsNonPositive(t *testing.T) {
	f := GrowthExponent([]float64{10, -5, 100}, []float64{10, 3, 100})
	if !almostEq(f.Slope, 1) {
		t.Fatalf("slope %v, want 1", f.Slope)
	}
}

func TestPolylogRatio(t *testing.T) {
	// T = D·log n + log² n gives ratio exactly 1.
	n, d := 1024, 16
	ref := float64(d)*10 + 100
	if got := PolylogRatio(ref, d, n); !almostEq(got, 1) {
		t.Fatalf("ratio %v", got)
	}
	if PolylogRatio(5, 0, 1) <= 0 {
		t.Fatal("degenerate inputs must still give a positive ratio")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("n", "rounds", "ratio")
	tb.AddRow(64, 128, 1.5)
	tb.AddRow(1024, 20000, 0.25)
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "n ") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.Contains(out, "20000") || !strings.Contains(out, "1.500") {
		t.Fatalf("table content wrong:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Fatal("row count")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("x,y", `q"u`)
	csv := tb.CSV()
	want := "a,b\n\"x,y\",\"q\"\"u\"\n"
	if csv != want {
		t.Fatalf("csv = %q, want %q", csv, want)
	}
}

func TestFmtFloat(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"}, {12345, "12345"}, {42.123, "42.1"}, {1.23456, "1.235"},
	}
	for _, c := range cases {
		if got := fmtFloat(c.v); got != c.want {
			t.Errorf("fmtFloat(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestSummarizeCensored(t *testing.T) {
	// Trials 0 and 2 solved at their observed rounds; trials 1 and 3 hit
	// their budget unsolved and enter the summary right-censored.
	rounds := []float64{10, 50, 30, 50}
	solved := []bool{true, false, true, false}
	cs := SummarizeCensored(rounds, solved)
	if cs.Solved != 2 || cs.Censored != 2 {
		t.Fatalf("solved/censored = %d/%d, want 2/2", cs.Solved, cs.Censored)
	}
	if cs.Median != 40 || cs.Mean != 35 || cs.N != 4 {
		t.Fatalf("summary over censored rounds wrong: %+v", cs.Summary)
	}
	empty := SummarizeCensored(nil, nil)
	if empty.Solved != 0 || empty.Censored != 0 || empty.N != 0 {
		t.Fatalf("empty input: %+v", empty)
	}
}
