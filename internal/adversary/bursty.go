package adversary

import (
	"repro/internal/bitrand"
	"repro/internal/graph"
	"repro/internal/radio"
)

// BurstyLoss is an oblivious link process with temporally correlated
// ("bursty") unreliable edges, after the β-factor measurements of
// Srinivasan et al. [18] that the paper cites as motivation: real links
// don't flip i.i.d. coins, they stay up or down for stretches.
//
// Time is divided per edge into epochs of Burst rounds, with per-edge phase
// offsets so epochs are not globally aligned. Within an epoch the edge is
// either present or absent for the whole epoch; the per-epoch coin comes up
// present with probability P. Burst = 1 degenerates to RandomLoss. Every
// decision is a hash of (seed, edge, epoch), so the entire schedule is
// committed before round 1, as obliviousness requires.
type BurstyLoss struct {
	// P is the probability an edge is up in a given epoch.
	P float64
	// Burst is the epoch length in rounds (default 8).
	Burst int
}

var _ radio.ObliviousLink = BurstyLoss{}

// CommitSchedule implements radio.ObliviousLink.
func (a BurstyLoss) CommitSchedule(env *radio.Env) radio.Schedule {
	seed := env.Rng.Uint64()
	p := a.P
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	burst := a.Burst
	if burst < 1 {
		burst = 8
	}
	return radio.ScheduleFunc(func(r int) graph.EdgeSelector {
		switch {
		case p == 0:
			return graph.SelectNone{}
		case p == 1:
			return graph.SelectAll{}
		}
		return graph.SelectFunc{F: func(u, v graph.NodeID) bool {
			k := graph.MakeEdgeKey(u, v)
			// Per-edge phase offset decorrelates epoch boundaries.
			phase := int(bitrand.Hash64(seed, 0x0ff5e7, uint64(k.U), uint64(k.V)) % uint64(burst))
			epoch := (r + phase) / burst
			return bitrand.HashFloat(seed, uint64(epoch), uint64(k.U), uint64(k.V)) < p
		}}
	})
}

// Targeted is an oblivious link process that attacks a fixed victim set: it
// keeps every unreliable edge incident to a victim permanently absent and
// everything else permanently present. It models a localized dead zone (a
// wall, a jammer near specific nodes) and is the simplest adversary that
// differentiates algorithms by *where* they need the unreliable edges.
type Targeted struct {
	// Victims are the nodes whose unreliable edges are suppressed.
	Victims []graph.NodeID
}

var _ radio.ObliviousLink = Targeted{}

// CommitSchedule implements radio.ObliviousLink.
func (a Targeted) CommitSchedule(env *radio.Env) radio.Schedule {
	victim := make(map[graph.NodeID]bool, len(a.Victims))
	for _, v := range a.Victims {
		victim[v] = true
	}
	sel := graph.SelectFunc{F: func(u, v graph.NodeID) bool {
		return !victim[u] && !victim[v]
	}}
	return radio.StaticSchedule{Selector: sel}
}
