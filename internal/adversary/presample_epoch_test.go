package adversary

import (
	"testing"

	"repro/internal/bitrand"
	"repro/internal/graph"
	"repro/internal/radio"
)

// beaconProc transmits every round once informed (the source from round 0):
// a deterministic algorithm whose per-round transmitter count is a pure
// function of the topology, so the presample labels are predictable.
type beaconProc struct {
	informed bool
	msg      radio.Message
}

func (p *beaconProc) Step(r int, rng *bitrand.Source) radio.Action {
	if p.informed {
		return radio.Transmit(&p.msg)
	}
	return radio.Listen()
}

func (p *beaconProc) Deliver(r int, msg *radio.Message) {
	if msg != nil {
		p.informed = true
	}
}

type beaconAlg struct{}

func (beaconAlg) Name() string { return "beacon" }

func (beaconAlg) NewProcesses(net *graph.Dual, spec radio.Spec, rng *bitrand.Source) []radio.Process {
	procs := make([]radio.Process, net.N())
	for u := range procs {
		p := &beaconProc{msg: radio.Message{Origin: spec.Source}}
		if graph.NodeID(u) == spec.Source {
			p.informed = true
		}
		procs[u] = p
	}
	return procs
}

// TestPresampleEpochAware pins the tentpole contract for the sampling
// adversary: its presimulations run under the execution's epoch schedule, so
// the committed labels reflect per-epoch topology, not epoch 0's.
//
// The network is a 3-node line whose 1–2 link exists only from round 8 (an
// epoch swap). Under the beacon algorithm the transmitter count is exactly 2
// forever on the epoch-0 topology (node 2 stays isolated: 0 informs 1, never
// 2), but reaches 3 from round 9 under the schedule (the swap lets 1 inform
// 2 at round 8). With the dense threshold between 2 and 3, an epoch-aware
// presample commits dense (select-all) labels from round 9 on — labels an
// epoch-0-only presimulation could never produce.
func TestPresampleEpochAware(t *testing.T) {
	b0 := graph.NewBuilder(3)
	b0.AddEdge(0, 1)
	net0 := graph.UniformDual(b0.Build())
	rev, err := graph.NewRevision(net0).Apply([]graph.ChurnOp{{Kind: graph.ChurnAddEdge, U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	epochs := []radio.Epoch{{Start: 0, Net: net0}, {Start: 8, Net: rev.Dual()}}
	link := Presample{C: 0.1, Floor: 2.5, Samples: 1, Horizon: 24}
	rec := &radio.MemRecorder{}
	_, err = radio.Run(radio.Config{
		Epochs:           epochs,
		Algorithm:        beaconAlg{},
		Spec:             radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
		Link:             link,
		Seed:             5,
		MaxRounds:        24,
		Recorder:         rec,
		IgnoreCompletion: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rec.Rounds {
		want := "none"
		if r.Round >= 9 {
			// Three transmitters from round 9 in every presample: dense.
			want = "all"
		}
		if r.SelectorKind != want {
			t.Fatalf("round %d: committed selector %q, want %q (labels must follow the epoch schedule)",
				r.Round, r.SelectorKind, want)
		}
	}
	// The control: the same adversary against the static epoch-0 network
	// commits all-sparse (counts never exceed 2 < 2.5).
	rec2 := &radio.MemRecorder{}
	_, err = radio.Run(radio.Config{
		Net:              net0,
		Algorithm:        beaconAlg{},
		Spec:             radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
		Link:             link,
		Seed:             5,
		MaxRounds:        24,
		Recorder:         rec2,
		IgnoreCompletion: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rec2.Rounds {
		if r.SelectorKind != "none" {
			t.Fatalf("static run round %d: committed selector %q, want none", r.Round, r.SelectorKind)
		}
	}
}
