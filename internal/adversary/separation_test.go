package adversary

import (
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
)

// medianRounds runs the configuration over several seeds and returns the
// median completion round (failing the test if any run does not complete).
func medianRounds(t *testing.T, mk func(seed uint64) radio.Config, seeds int) int {
	t.Helper()
	rounds := make([]int, 0, seeds)
	for s := 0; s < seeds; s++ {
		res, err := radio.Run(mk(uint64(s) + 1))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Solved {
			t.Fatalf("seed %d: run did not complete in %d rounds", s+1, res.Rounds)
		}
		rounds = append(rounds, res.Rounds)
	}
	sort.Ints(rounds)
	return rounds[len(rounds)/2]
}

func dualCliqueGlobalCfg(n int, alg radio.Algorithm, link any) func(uint64) radio.Config {
	return func(seed uint64) radio.Config {
		d, _ := graph.DualClique(n, 3)
		return radio.Config{
			Net:            d,
			Algorithm:      alg,
			Spec:           radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
			Link:           link,
			Seed:           seed,
			MaxRounds:      400 * n,
			UseCliqueCover: true,
		}
	}
}

// TestSeparationOnlineAdaptiveBlocksBoth: under the Theorem 3.1 online
// adaptive adversary, both plain decay and permuted decay need rounds that
// grow ~linearly in n on the dual clique (the adversary reads the shared
// permutation state, so runtime bits do not help). Doubling n twice should
// grow the median completion by clearly more than a polylog factor.
func TestSeparationOnlineAdaptiveScalesLinearly(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling study")
	}
	link := DenseSparse{C: 1}
	small := medianRounds(t, dualCliqueGlobalCfg(128, core.DecayGlobal{}, link), 5)
	large := medianRounds(t, dualCliqueGlobalCfg(512, core.DecayGlobal{}, link), 5)
	// Linear scaling predicts 4×; polylog would be ≈1.2×. Demand ≥ 2×.
	if large < 2*small {
		t.Fatalf("decay vs online adaptive: rounds %d (n=128) -> %d (n=512); expected ≥2x growth", small, large)
	}
}

// TestSeparationObliviousPermutedFastDecaySlow: under the sampling
// oblivious adversary, permuted decay stays polylogarithmic on the dual
// clique: the runtime-generated bits decorrelate the schedule from any
// presample (Theorem 4.1 mechanism). Plain decay, whose schedule the
// presample predicts exactly, degrades toward Ω(n/log n). At small n the
// absolute values are dominated by constants (the lower bound itself is
// only n/log n), so the faithful assertion is about growth: decay's rounds
// must grow markedly faster with n than permuted decay's.
func TestSeparationObliviousPermutedFastDecaySlow(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling study")
	}
	// Note on scale: at simulation sizes the sampling adversary cannot fully
	// suppress the dense-round singleton leak (a smothered round with one
	// realized transmitter informs the whole network through the complete
	// topology; the paper buries this in "sufficiently large" threshold
	// constants that only bite asymptotically). The median ratio at fixed n
	// is the robust observable; full scaling curves live in the benchmark
	// harness.
	const n = 1024
	link := Presample{C: 1, Horizon: 4 * n}
	perm := medianRounds(t, dualCliqueGlobalCfg(n, core.PermutedGlobal{}, link), 5)
	decay := medianRounds(t, dualCliqueGlobalCfg(n, core.DecayGlobal{}, link), 5)
	if float64(decay) < 1.2*float64(perm) {
		t.Fatalf("oblivious adversary at n=%d: decay %d rounds vs permuted %d; expected decay ≥1.2x slower", n, decay, perm)
	}
	// Absolute sanity: permuted decay stays within a polylog-scale budget
	// (its block structure alone is 16·log n · 2·log n = 320·log n rounds).
	if perm > 2500 {
		t.Fatalf("permuted decay at n=%d took %d rounds; expected polylog-scale", n, perm)
	}
}

// TestSeparationObliviousVsOnlineForPermuted: the same permuted decay
// algorithm is exponentially separated between the oblivious and online
// adaptive models on the dual clique (the paper's central message: the
// adversary's adaptivity, not the link unreliability itself, is what makes
// broadcast expensive).
func TestSeparationObliviousVsOnlineForPermuted(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling study")
	}
	const n = 1024
	fast := medianRounds(t, dualCliqueGlobalCfg(n, core.PermutedGlobal{}, Presample{C: 1, Horizon: 4 * n}), 5)
	slow := medianRounds(t, dualCliqueGlobalCfg(n, core.PermutedGlobal{}, DenseSparse{C: 1}), 5)
	if slow < 2*fast {
		t.Fatalf("permuted decay: online %d rounds vs oblivious %d; expected ≥2x separation", slow, fast)
	}
}

// TestOfflineJamForcesLinear: the offline adaptive jammer allows a crossing
// only in globally-singleton-transmitter rounds, forcing ~linear time for
// randomized algorithms on the dual clique (the Ω(n) row of Figure 1).
func TestOfflineJamForcesLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling study")
	}
	link := Jam{}
	small := medianRounds(t, dualCliqueGlobalCfg(64, core.DecayGlobal{}, link), 3)
	large := medianRounds(t, dualCliqueGlobalCfg(256, core.DecayGlobal{}, link), 3)
	if large < 2*small {
		t.Fatalf("offline jam: rounds %d (n=64) -> %d (n=256); expected ≥2x growth", small, large)
	}
}

// TestRoundRobinImmuneToJam: round robin never has two simultaneous
// transmitters, so even the offline adaptive jammer cannot slow it beyond
// its deterministic n-round local schedule.
func TestRoundRobinImmuneToJam(t *testing.T) {
	d, m := graph.DualClique(64, 2)
	var b []graph.NodeID
	for u := 0; u < m.SizeA; u++ {
		b = append(b, u)
	}
	res, err := radio.Run(radio.Config{
		Net:            d,
		Algorithm:      core.RoundRobin{},
		Spec:           radio.Spec{Problem: radio.LocalBroadcast, Broadcasters: b},
		Link:           Jam{},
		Seed:           1,
		MaxRounds:      128,
		UseCliqueCover: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved || res.Rounds > 64 {
		t.Fatalf("round robin under jam: solved=%v rounds=%d, want ≤ 64", res.Solved, res.Rounds)
	}
}

// TestBraceletObliviousLocalDelay: on the bracelet network the sampling
// oblivious adversary with the natural band-length horizon delays
// uncoordinated local broadcast until roughly the horizon — the Ω(√n/log n)
// mechanism of Theorem 4.3 (the clasp receiver cannot be served while the
// adversary's dense labels smother the heads).
func TestBraceletObliviousLocalDelay(t *testing.T) {
	d, m := graph.BraceletExplicit(12, 12, 5) // 288 nodes, bands of 12
	b := append(append([]graph.NodeID(nil), m.AHead...), m.BHead...)
	mk := func(link any) func(uint64) radio.Config {
		return func(seed uint64) radio.Config {
			return radio.Config{
				Net:       d,
				Algorithm: core.Aloha{P: 0.5},
				Spec:      radio.Spec{Problem: radio.LocalBroadcast, Broadcasters: b},
				Link:      link,
				Seed:      seed,
				MaxRounds: 10 * d.N(),
			}
		}
	}
	blocked := medianRounds(t, mk(Presample{C: 1, Horizon: m.BandLen}), 5)
	free := medianRounds(t, mk(nil), 5)
	// With every head transmitting at rate 1/2, all presampled rounds are
	// dense; the clasp cannot be crossed before the horizon.
	if blocked < m.BandLen {
		t.Fatalf("bracelet: blocked run finished in %d rounds, before the %d-round horizon", blocked, m.BandLen)
	}
	if blocked <= free {
		t.Fatalf("adversary did not slow the algorithm: %d vs %d rounds", blocked, free)
	}
}
