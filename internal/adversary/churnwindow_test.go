package adversary

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/bitrand"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/scenario"
)

// stormCliques builds the ADV-churnwindow structure at test scale:
// graph.TwoCliques (G' = G, no standing fringe) plus a generated storm
// scenario whose churn epochs are the only rounds with any E'\E at all.
func stormCliques(t *testing.T, n, epochs, demotions, storms int) (*graph.Dual, []radio.Epoch, []bool) {
	t.Helper()
	base := graph.TwoCliques(n)
	sc, err := scenario.Generate(base, bitrand.New(uint64(1000+n)), scenario.GenConfig{
		Epochs:    epochs,
		EpochLen:  2 * bitrand.LogN(n),
		Demotions: demotions,
		Storms:    storms,
		Protected: []graph.NodeID{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	eps, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return base, eps, sc.DegradedWindows()
}

// denseView builds a view whose summed transmit probabilities clear any
// reasonable dense threshold.
func denseView(n, epochIdx int, net *graph.Dual) *radio.View {
	probs := make([]float64, n)
	for i := range probs {
		probs[i] = 1
	}
	return &radio.View{EpochIdx: epochIdx, Net: net, TransmitProbs: probs}
}

func TestChurnWindowGatesOnEpoch(t *testing.T) {
	base, eps, wins := stormCliques(t, 16, 3, 4, 32)
	env := &radio.Env{Net: base, Epochs: eps, Rng: bitrand.New(1), MaxRounds: 1000}
	aligned := ChurnWindow{Windows: wins, C: 1}
	blind := ChurnWindow{Windows: wins, C: 1, Invert: true}

	for idx, degraded := range wins {
		view := denseView(16, idx, eps[idx].Net)
		if got := aligned.ChooseOnline(env, view).All(); got != degraded {
			t.Errorf("epoch %d (degraded=%v): aligned dense round selected all=%v", idx, degraded, got)
		}
		if got := blind.ChooseOnline(env, view).All(); got == degraded {
			t.Errorf("epoch %d (degraded=%v): inverted dense round selected all=%v", idx, degraded, got)
		}
		// Sparse rounds always idle, window or not.
		sparse := &radio.View{EpochIdx: idx, Net: eps[idx].Net, TransmitProbs: []float64{0.1}}
		if !aligned.ChooseOnline(env, sparse).None() {
			t.Errorf("epoch %d: aligned sparse round did not idle", idx)
		}
	}
	// Epochs past the end of the mask count as healthy.
	past := denseView(16, len(wins)+3, base)
	if !aligned.ChooseOnline(env, past).None() {
		t.Error("epoch past the window mask treated as degraded")
	}
}

func TestChurnWindowOfflineGatesOnTransmitters(t *testing.T) {
	base, eps, wins := stormCliques(t, 16, 3, 4, 32)
	env := &radio.Env{Net: base, Epochs: eps, Rng: bitrand.New(1), MaxRounds: 1000}
	link := ChurnWindowOffline{Windows: wins}
	degradedIdx := -1
	for i, w := range wins {
		if w {
			degradedIdx = i
			break
		}
	}
	view := &radio.View{EpochIdx: degradedIdx, Net: eps[degradedIdx].Net}
	if !link.ChooseOffline(env, view, []graph.NodeID{1, 2}).All() {
		t.Error("two transmitters in a degraded epoch not smothered")
	}
	if !link.ChooseOffline(env, view, []graph.NodeID{1}).None() {
		t.Error("singleton round smothered (would hand the algorithm a delivery)")
	}
	healthy := &radio.View{EpochIdx: 0, Net: eps[0].Net}
	if !link.ChooseOffline(env, healthy, []graph.NodeID{1, 2}).None() {
		t.Error("healthy epoch smothered")
	}
}

// TestChurnWindowDerivedWindowsMatchPrecomputed runs the same executions
// with the metadata-precomputed window mask and with Windows nil (the
// adversary derives degradation by comparing View.Net against Env.Net) and
// requires identical results — the structural comparison is the mask.
func TestChurnWindowDerivedWindowsMatchPrecomputed(t *testing.T) {
	_, eps, wins := stormCliques(t, 24, 4, 6, 48)
	run := func(link any, seed uint64) radio.Result {
		res, err := radio.Run(radio.Config{
			Epochs:    eps,
			Algorithm: core.DecayGlobal{},
			Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
			Link:      link,
			Seed:      seed,
			MaxRounds: 4000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for seed := uint64(1); seed <= 5; seed++ {
		pre := run(ChurnWindow{Windows: wins, C: 1}, seed)
		derived := run(ChurnWindow{C: 1}, seed)
		if !reflect.DeepEqual(pre, derived) {
			t.Fatalf("seed %d: derived-window run differs from precomputed-window run\npre:     %+v\nderived: %+v", seed, pre, derived)
		}
		preOff := run(ChurnWindowOffline{Windows: wins}, seed)
		derivedOff := run(ChurnWindowOffline{}, seed)
		if !reflect.DeepEqual(preOff, derivedOff) {
			t.Fatalf("seed %d: offline derived-window run differs from precomputed", seed)
		}
	}
}

// TestChurnWindowSeparation is the churned-topology separation row: on a
// base with G' = G and storm-epoch windows, the churn-blind control (same
// machinery, inverted windows) is exactly as harmless as no adversary, while
// the churn-aligned offline adversary strictly slows median completion at
// the same seeds.
func TestChurnWindowSeparation(t *testing.T) {
	_, eps, wins := stormCliques(t, 32, 8, 8, 192)
	med := func(link any) float64 {
		var rounds []float64
		for seed := uint64(1); seed <= 9; seed++ {
			res, err := radio.Run(radio.Config{
				Epochs:    eps,
				Algorithm: core.DecayGlobal{},
				Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
				Link:      link,
				Seed:      seed,
				MaxRounds: 12800,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Solved {
				t.Fatalf("unsolved under %T", link)
			}
			rounds = append(rounds, float64(res.Rounds))
		}
		sort.Float64s(rounds)
		return rounds[len(rounds)/2]
	}
	none := med(nil)
	blind := med(ChurnWindowOffline{Windows: wins, Invert: true})
	aligned := med(ChurnWindowOffline{Windows: wins})
	if blind != none {
		t.Errorf("churn-blind adversary changed the median (%v vs %v); outside the windows E'\\E is empty, it must be inert", blind, none)
	}
	if aligned <= blind {
		t.Errorf("churn-aligned adversary did not slow completion: aligned %v vs blind %v", aligned, blind)
	}
}
