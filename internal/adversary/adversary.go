// Package adversary implements the link processes (adversaries) of the
// three classical classes studied in the paper.
//
// Oblivious (commit everything before round 1):
//   - Static: a fixed selector every round (e.g. always-all = the protocol
//     model on G', always-none = the protocol model on G).
//   - RandomLoss: every unreliable edge appears independently each round
//     with probability P — the naive i.i.d. model the paper argues is too
//     weak to capture real unreliability.
//   - Presample: the Theorems 3.1/4.3 mechanism made executable. Knowing
//     the algorithm (but not its coins), it pre-simulates the execution with
//     fresh randomness under sparse dynamics, labels each round dense or
//     sparse by the sampled transmitter count (the Lemma 4.4/4.5 isolated
//     broadcast function machinery), and commits: dense → all unreliable
//     edges (collision smothering), sparse → none (isolation).
//
// Online adaptive:
//   - DenseSparse: the Theorem 3.1 adversary. Each round it computes
//     E[|X| | S] = Σ_u Pr[u transmits] from state-determined probabilities
//     (no coins) and smothers dense rounds / isolates sparse ones.
//
// Offline adaptive:
//   - Jam: the Ω(n) mechanism of [11]. Seeing the realized transmitter set,
//     it includes every unreliable edge whenever ≥ 2 nodes transmit (all
//     listeners near any pair collide) and isolates singleton rounds.
package adversary

import (
	"repro/internal/bitrand"
	"repro/internal/graph"
	"repro/internal/radio"
)

// Static is an oblivious link process that uses the same edge selection
// every round.
type Static struct {
	Selector graph.EdgeSelector
}

var _ radio.ObliviousLink = Static{}

// CommitSchedule implements radio.ObliviousLink.
func (s Static) CommitSchedule(*radio.Env) radio.Schedule {
	sel := s.Selector
	if sel == nil {
		sel = graph.SelectNone{}
	}
	return radio.StaticSchedule{Selector: sel}
}

// AlwaysAll returns the static adversary that includes every unreliable edge
// each round: the protocol model on G'.
func AlwaysAll() Static { return Static{Selector: graph.SelectAll{}} }

// AlwaysNone returns the static adversary that never includes an unreliable
// edge: the protocol model on G.
func AlwaysNone() Static { return Static{Selector: graph.SelectNone{}} }

// RandomLoss is the oblivious i.i.d. adversary: each unreliable edge is
// present each round independently with probability P. Decisions are a hash
// of (seed, round, edge) with the seed drawn from the adversary's committed
// randomness, so the schedule is fixed before round 1 without materializing
// it.
type RandomLoss struct {
	// P is the per-edge per-round presence probability.
	P float64
}

var _ radio.ObliviousLink = RandomLoss{}

// CommitSchedule implements radio.ObliviousLink.
func (a RandomLoss) CommitSchedule(env *radio.Env) radio.Schedule {
	seed := env.Rng.Uint64()
	p := a.P
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return radio.ScheduleFunc(func(r int) graph.EdgeSelector {
		switch {
		case p == 0:
			return graph.SelectNone{}
		case p == 1:
			return graph.SelectAll{}
		}
		return graph.SelectFunc{F: func(u, v graph.NodeID) bool {
			k := graph.MakeEdgeKey(u, v)
			return bitrand.HashFloat(seed, uint64(r), uint64(k.U), uint64(k.V)) < p
		}}
	})
}

// DenseSparse is the online adaptive adversary of Theorem 3.1. At the start
// of each round it computes the expected transmitter count given the nodes'
// states, E[|X| | S] = Σ_u Pr[u transmits | state]. If the round is dense
// (expectation above C·ln n) it includes every unreliable edge, turning
// clique-like G' neighborhoods into collision chambers; otherwise it
// includes none, isolating the G components. Against any algorithm whose
// informed nodes behave symmetrically this forces Ω(n / log n) rounds on
// the dual clique network.
type DenseSparse struct {
	// C scales the dense threshold C·ln n (default 2).
	C float64
	// SameSideSparse, when set, keeps same-side unreliable edges alive in
	// sparse rounds (the paper's adversary only removes the A–B edges). For
	// the dual clique and bracelet all unreliable edges cross, so the
	// default (remove everything) is equivalent.
	SameSideSparse func(u graph.NodeID) bool
}

var _ radio.OnlineAdaptiveLink = DenseSparse{}

// Threshold returns the dense cutoff for a network of n nodes.
func (a DenseSparse) Threshold(n int) float64 {
	c := a.C
	if c <= 0 {
		c = 2
	}
	return c * bitrand.NaturalLog(n)
}

// ChooseOnline implements radio.OnlineAdaptiveLink.
func (a DenseSparse) ChooseOnline(env *radio.Env, view *radio.View) graph.EdgeSelector {
	if view.SumTransmitProbs() > a.Threshold(env.Net.N()) {
		return graph.SelectAll{}
	}
	if a.SameSideSparse != nil {
		return graph.SelectCrossCut{InA: a.SameSideSparse}
	}
	return graph.SelectNone{}
}

// Jam is the offline adaptive adversary realizing the Ω(n) bounds of [11]:
// it observes the realized transmitter set each round. With two or more
// transmitters it includes every unreliable edge, so every listener in a
// G'-clique neighborhood hears a collision; with at most one it includes
// none, confining the lone delivery to reliable edges. On the dual clique a
// message crosses between the cliques only when a bridge endpoint transmits
// while *no other node in the network* transmits — an event of probability
// O(1/n) per round for any symmetric strategy.
type Jam struct{}

var _ radio.OfflineAdaptiveLink = Jam{}

// ChooseOffline implements radio.OfflineAdaptiveLink.
func (Jam) ChooseOffline(env *radio.Env, view *radio.View, tx []graph.NodeID) graph.EdgeSelector {
	if len(tx) >= 2 {
		return graph.SelectAll{}
	}
	return graph.SelectNone{}
}
