package adversary

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
)

// TestPresampleDerandExact pins the interaction the EXT-derand experiment
// rests on: against a fully deterministic algorithm the presampling
// adversary's presimulation reproduces the real execution exactly, so its
// committed schedule changes nothing — round for round, delivery for
// delivery — compared to running with no adversary at all. The derand
// schedule offers at most one transmitter per cluster per round, which on
// the dual clique never crosses the dense threshold, so every committed
// label is sparse (select-all ≡ the model default).
func TestPresampleDerandExact(t *testing.T) {
	d, _ := graph.DualClique(96, 3)
	for _, seed := range []uint64{1, 0xfeed} {
		var runs []radio.Result
		var recs []*radio.MemRecorder
		for _, link := range []any{nil, Presample{}} {
			rec := &radio.MemRecorder{}
			res, err := radio.Run(radio.Config{
				Net:       d,
				Algorithm: core.DerandBroadcast{},
				Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
				Link:      link,
				Seed:      seed,
				MaxRounds: 400 * 96,
				Recorder:  rec,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Solved {
				t.Fatalf("link %T: broadcast incomplete after %d rounds", link, res.Rounds)
			}
			runs = append(runs, res)
			recs = append(recs, rec)
		}
		if !reflect.DeepEqual(runs[0], runs[1]) {
			t.Fatalf("seed %d: presample perturbed the deterministic execution", seed)
		}
		if !reflect.DeepEqual(recs[0].Rounds, recs[1].Rounds) {
			t.Fatalf("seed %d: presample perturbed the per-round trace", seed)
		}
	}
}
