package adversary

import (
	"testing"

	"repro/internal/bitrand"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/scenario"
)

// BenchmarkChurnWindowTrial measures a full adversarial trial on the
// ADV-churnwindow structure (two reliable cliques, storm epochs) in three
// configurations: the static-topology online adversary (the allocation
// baseline), the epoch-aware ChurnWindow classes with a precomputed window
// mask, and the self-contained variant that derives the windows by comparing
// topologies per round. The revisions are precompiled and shared across
// trials exactly as the experiment harness shares them, so the tracked
// number — allocs/op — must stay at the static adversarial path's count for
// the precomputed-mask rows (BENCH_pr5.json).
func BenchmarkChurnWindowTrial(b *testing.B) {
	const n = 64
	base := graph.TwoCliques(n)
	sc, err := scenario.Generate(base, bitrand.New(3000+n), scenario.GenConfig{
		Epochs:    10,
		EpochLen:  2 * bitrand.LogN(n),
		Demotions: 8,
		Storms:    6 * n,
		Protected: []graph.NodeID{0},
	})
	if err != nil {
		b.Fatal(err)
	}
	epochs, err := sc.Compile()
	if err != nil {
		b.Fatal(err)
	}
	wins := sc.DegradedWindows()

	run := func(b *testing.B, static bool, link any) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := radio.Config{
				Algorithm:        core.DecayGlobal{},
				Spec:             radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
				Link:             link,
				Seed:             uint64(i),
				MaxRounds:        256,
				IgnoreCompletion: true,
			}
			if static {
				cfg.Net = base
			} else {
				cfg.Epochs = epochs
			}
			if _, err := radio.Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("static/densesparse", func(b *testing.B) { run(b, true, DenseSparse{C: 1}) })
	b.Run("epochs/churnwindow", func(b *testing.B) { run(b, false, ChurnWindow{Windows: wins, C: 1}) })
	b.Run("epochs/churnwindow-offline", func(b *testing.B) { run(b, false, ChurnWindowOffline{Windows: wins}) })
	b.Run("epochs/churnwindow-derived", func(b *testing.B) { run(b, false, ChurnWindow{C: 1}) })
}
