package adversary

import (
	"repro/internal/bitrand"
	"repro/internal/graph"
	"repro/internal/radio"
)

// Presample is the oblivious sampling adversary: the executable form of the
// Theorem 4.3 lower-bound mechanism (and of the oblivious attack on
// fixed-schedule algorithms like plain decay).
//
// Before the execution begins — which is when an oblivious link process must
// decide everything — it pre-simulates the algorithm on the same network
// with *fresh, independent randomness*, under sparse dynamics (no unreliable
// edges). This realizes the isolated broadcast functions of Lemma 4.4: the
// sampled per-round transmitter counts Y¹_r. By the concentration argument
// of Lemma 4.5, the counts of the real execution Y²_r track the sampled
// ones: rounds sampled dense (count > C·ln n) will, with high probability,
// have ≥ 2 real transmitters, and rounds sampled sparse will have O(log n).
// The committed schedule smothers sampled-dense rounds with every unreliable
// edge and isolates sampled-sparse ones.
//
// Against algorithms whose schedule is fixed or state-predictable (plain
// decay, ALOHA, uncoordinated variants) the labels are accurate and progress
// across the unreliable cut stalls. Against the Section 4.1/4.3 algorithms
// the runtime-generated shared bits decorrelate the real schedule from any
// sample — exactly the paper's separation.
//
// Under an epoch schedule (Env.Epochs), the presimulations run under the
// same schedule as the real execution: the schedule is fixed before round 1
// and therefore public, so an oblivious adversary is entitled to it just as
// it is to a static topology. The sampled transmitter counts — and hence
// the committed dense/sparse labels — then reflect each epoch's topology,
// not just epoch 0's (a swap that connects a previously isolated region
// changes who can be informed, and with it every later count).
//
// Horizon caps the presimulation length; beyond it the schedule stays
// sparse. On the bracelet network the natural horizon is the band length
// (the validity window of the isolated broadcast functions); on the dual
// clique it may be as long as the round budget.
type Presample struct {
	// C scales the dense threshold C·ln n (default 2).
	C float64
	// Floor is a lower bound on the dense threshold (default 8). The paper
	// hides this inside "for a sufficiently large constant c": a round must
	// only be smothered when ≥2 real transmitters are near-certain, because
	// a smothered round with exactly one transmitter hands the algorithm a
	// network-wide delivery. With E[|X|] below ~8, P(|X| = 1) is far from
	// negligible, so such rounds must be treated as sparse.
	Floor float64
	// Horizon is the number of presimulated rounds (default min(MaxRounds,
	// 8n)).
	Horizon int
	// Samples is the number of independent presimulations (default 3). A
	// round is labeled dense only when every sample exceeds the threshold,
	// making borderline labels conservative.
	Samples int
}

var _ radio.ObliviousLink = Presample{}

// presampleSchedule is the committed schedule: a bit per presimulated round.
type presampleSchedule struct {
	dense   []bool
	horizon int
}

// SelectorFor implements radio.Schedule.
func (s *presampleSchedule) SelectorFor(round int) graph.EdgeSelector {
	if round >= s.horizon {
		return graph.SelectNone{}
	}
	if s.dense[round] {
		return graph.SelectAll{}
	}
	return graph.SelectNone{}
}

// CommitSchedule implements radio.ObliviousLink.
func (a Presample) CommitSchedule(env *radio.Env) radio.Schedule {
	c := a.C
	if c <= 0 {
		c = 2
	}
	horizon := a.Horizon
	if horizon <= 0 {
		horizon = 8 * env.Net.N()
	}
	if horizon > env.MaxRounds {
		horizon = env.MaxRounds
	}
	samples := a.Samples
	if samples <= 0 {
		samples = 3
	}
	threshold := c * bitrand.NaturalLog(env.Net.N())
	floor := a.Floor
	if floor <= 0 {
		floor = 8
	}
	if threshold < floor {
		threshold = floor
	}

	mins := make([]float64, horizon)
	for r := range mins {
		mins[r] = -1
	}
	for s := 0; s < samples; s++ {
		counts := a.sampleOnce(env, horizon, uint64(s))
		for r := 0; r < horizon; r++ {
			v := 0.0
			if r < len(counts) {
				v = float64(counts[r])
			}
			if mins[r] < 0 || v < mins[r] {
				mins[r] = v
			}
		}
	}
	dense := make([]bool, horizon)
	for r := range dense {
		if mins[r] > threshold {
			dense[r] = true
		}
	}
	return &presampleSchedule{dense: dense, horizon: horizon}
}

// sampleOnce runs one presimulation with fresh randomness and returns the
// per-round transmitter counts.
func (a Presample) sampleOnce(env *radio.Env, horizon int, label uint64) []int {
	rec := &radio.TxCountRecorder{}
	// Fresh seed from the adversary's own committed randomness: independent
	// of the real execution's coins, as obliviousness requires.
	seed := env.Rng.Split(0x5a3b, label).Uint64()
	// The presimulation budget is the horizon, except that every scheduled
	// rumor injection must still fall inside it (the engine rejects a spec
	// whose injections can never enter); counts beyond the horizon are
	// discarded by the caller either way.
	budget := horizon
	for _, inj := range env.Spec.Injections {
		if inj.Round >= budget {
			budget = inj.Round + 1
		}
	}
	cfg := radio.Config{
		Algorithm:        env.Algorithm,
		Spec:             env.Spec,
		Link:             nil, // sparse dynamics: reliable edges only
		Seed:             seed,
		MaxRounds:        budget,
		Recorder:         rec,
		IgnoreCompletion: true, // labels must cover the whole horizon
		UseCliqueCover:   true,
	}
	// Pre-simulate under the execution's own topology schedule: per-epoch
	// transmitter counts, not epoch-0-only ones. Static runs keep the
	// static path.
	if len(env.Epochs) > 0 {
		cfg.Epochs = env.Epochs
	} else {
		cfg.Net = env.Net
	}
	_, err := radio.Run(cfg)
	if err != nil {
		// A presimulation failure leaves the adversary without information;
		// it degrades to the all-sparse schedule rather than aborting the
		// host execution.
		return nil
	}
	return rec.Counts
}
