package adversary

import (
	"testing"

	"repro/internal/bitrand"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
)

func TestBurstyLossEpochStability(t *testing.T) {
	env := testEnv(16)
	sched := BurstyLoss{P: 0.5, Burst: 10}.CommitSchedule(env)
	// Within any window of 10 consecutive rounds, an edge changes state at
	// most once (one epoch boundary can fall inside the window).
	for u := 0; u < 8; u++ {
		for v := 8; v < 16; v++ {
			changes := 0
			prev := sched.SelectorFor(0).Includes(u, v)
			for r := 1; r < 10; r++ {
				cur := sched.SelectorFor(r).Includes(u, v)
				if cur != prev {
					changes++
					prev = cur
				}
			}
			if changes > 1 {
				t.Fatalf("edge (%d,%d) changed %d times within one burst length", u, v, changes)
			}
		}
	}
}

func TestBurstyLossLongRunRate(t *testing.T) {
	env := testEnv(16)
	sched := BurstyLoss{P: 0.3, Burst: 4}.CommitSchedule(env)
	hits, total := 0, 0
	for r := 0; r < 400; r++ {
		sel := sched.SelectorFor(r)
		for u := 0; u < 8; u++ {
			for v := 8; v < 16; v++ {
				total++
				if sel.Includes(u, v) {
					hits++
				}
			}
		}
	}
	rate := float64(hits) / float64(total)
	if rate < 0.2 || rate > 0.4 {
		t.Fatalf("long-run presence rate %.3f, want ≈0.30", rate)
	}
}

func TestBurstyLossSymmetric(t *testing.T) {
	env := testEnv(16)
	sched := BurstyLoss{P: 0.5, Burst: 5}.CommitSchedule(env)
	for r := 0; r < 20; r++ {
		sel := sched.SelectorFor(r)
		for u := 0; u < 8; u++ {
			for v := 8; v < 16; v++ {
				if sel.Includes(u, v) != sel.Includes(v, u) {
					t.Fatalf("asymmetric selector at round %d edge (%d,%d)", r, u, v)
				}
			}
		}
	}
}

func TestBurstyLossExtremes(t *testing.T) {
	env := testEnv(8)
	if !(BurstyLoss{P: 2, Burst: 4}).CommitSchedule(env).SelectorFor(0).All() {
		t.Fatal("P≥1 must select all")
	}
	if !(BurstyLoss{P: -1, Burst: 4}).CommitSchedule(env).SelectorFor(0).None() {
		t.Fatal("P≤0 must select none")
	}
}

func TestBurstyDegeneratesToPerRound(t *testing.T) {
	// Burst=1: each round redecides; verify the edge state actually varies
	// across rounds (not stuck).
	env := testEnv(8)
	sched := BurstyLoss{P: 0.5, Burst: 1}.CommitSchedule(env)
	varied := false
	prev := sched.SelectorFor(0).Includes(0, 5)
	for r := 1; r < 40 && !varied; r++ {
		if sched.SelectorFor(r).Includes(0, 5) != prev {
			varied = true
		}
	}
	if !varied {
		t.Fatal("burst=1 edge never changed state in 40 rounds")
	}
}

func TestTargetedSuppressesVictimEdges(t *testing.T) {
	env := testEnv(16)
	sched := Targeted{Victims: []graph.NodeID{3, 9}}.CommitSchedule(env)
	sel := sched.SelectorFor(5)
	if sel.Includes(3, 12) || sel.Includes(9, 0) || sel.Includes(12, 3) {
		t.Fatal("victim edges must stay absent")
	}
	if !sel.Includes(1, 12) {
		t.Fatal("non-victim edges must stay present")
	}
}

func TestPermutedGlobalSolvesUnderBurstyLoss(t *testing.T) {
	d, _ := graph.DualClique(128, 3)
	res, err := radio.Run(radio.Config{
		Net:            d,
		Algorithm:      core.PermutedGlobal{},
		Spec:           radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
		Link:           BurstyLoss{P: 0.5, Burst: 16},
		Seed:           5,
		MaxRounds:      50000,
		UseCliqueCover: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("permuted global must survive bursty losses")
	}
}

func TestDecayGlobalSolvesUnderTargeted(t *testing.T) {
	// Targeting the bridge endpoints leaves the reliable bridge intact:
	// broadcast must still complete (only slower).
	d, m := graph.DualClique(64, 3)
	res, err := radio.Run(radio.Config{
		Net:            d,
		Algorithm:      core.DecayGlobal{},
		Spec:           radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
		Link:           Targeted{Victims: []graph.NodeID{m.TA, m.TB}},
		Seed:           2,
		MaxRounds:      50000,
		UseCliqueCover: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("decay must complete despite the targeted dead zone")
	}
}

func TestBitrandHashStability(t *testing.T) {
	// Committed schedules depend on Hash64 determinism across calls.
	a := bitrand.Hash64(1, 2, 3)
	b := bitrand.Hash64(1, 2, 3)
	if a != b {
		t.Fatal("Hash64 not deterministic")
	}
	if bitrand.Hash64(1, 2, 3) == bitrand.Hash64(3, 2, 1) {
		t.Fatal("Hash64 insensitive to order")
	}
}
