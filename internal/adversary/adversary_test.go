package adversary

import (
	"testing"

	"repro/internal/bitrand"
	"repro/internal/graph"
	"repro/internal/radio"
)

func testEnv(n int) *radio.Env {
	d, _ := graph.DualClique(n, 1)
	return &radio.Env{
		Net:       d,
		Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
		Rng:       bitrand.New(1),
		MaxRounds: 1000,
	}
}

func TestStaticSchedules(t *testing.T) {
	env := testEnv(8)
	if sel := AlwaysAll().CommitSchedule(env).SelectorFor(7); !sel.All() {
		t.Fatal("AlwaysAll must select all")
	}
	if sel := AlwaysNone().CommitSchedule(env).SelectorFor(7); !sel.None() {
		t.Fatal("AlwaysNone must select none")
	}
	if sel := (Static{}).CommitSchedule(env).SelectorFor(0); !sel.None() {
		t.Fatal("nil selector must default to none")
	}
}

func TestRandomLossDeterministicPerEnvSeed(t *testing.T) {
	mk := func() radio.Schedule {
		d, _ := graph.DualClique(8, 1)
		env := &radio.Env{Net: d, Rng: bitrand.New(7), MaxRounds: 100}
		return RandomLoss{P: 0.5}.CommitSchedule(env)
	}
	a, b := mk(), mk()
	for r := 0; r < 20; r++ {
		sa, sb := a.SelectorFor(r), b.SelectorFor(r)
		for u := 0; u < 4; u++ {
			for v := 4; v < 8; v++ {
				if sa.Includes(u, v) != sb.Includes(u, v) {
					t.Fatalf("round %d edge (%d,%d): schedules diverge for same adversary seed", r, u, v)
				}
			}
		}
	}
}

func TestRandomLossRate(t *testing.T) {
	env := testEnv(16)
	sched := RandomLoss{P: 0.25}.CommitSchedule(env)
	hits, total := 0, 0
	for r := 0; r < 200; r++ {
		sel := sched.SelectorFor(r)
		for u := 0; u < 8; u++ {
			for v := 8; v < 16; v++ {
				total++
				if sel.Includes(u, v) {
					hits++
				}
			}
		}
	}
	rate := float64(hits) / float64(total)
	if rate < 0.2 || rate > 0.3 {
		t.Fatalf("edge presence rate %.3f, want ≈0.25", rate)
	}
}

func TestRandomLossExtremes(t *testing.T) {
	env := testEnv(8)
	if !(RandomLoss{P: 1.5}).CommitSchedule(env).SelectorFor(0).All() {
		t.Fatal("P≥1 must select all")
	}
	if !(RandomLoss{P: -0.5}).CommitSchedule(env).SelectorFor(0).None() {
		t.Fatal("P≤0 must select none")
	}
}

func TestDenseSparseThresholding(t *testing.T) {
	env := testEnv(64)
	a := DenseSparse{C: 2}
	th := a.Threshold(64)
	dense := &radio.View{TransmitProbs: make([]float64, 64)}
	for i := range dense.TransmitProbs {
		dense.TransmitProbs[i] = (th + 1) / 64
	}
	if !a.ChooseOnline(env, dense).All() {
		t.Fatal("above-threshold round must select all")
	}
	sparse := &radio.View{TransmitProbs: make([]float64, 64)}
	for i := range sparse.TransmitProbs {
		sparse.TransmitProbs[i] = (th - 1) / 64
	}
	if !a.ChooseOnline(env, sparse).None() {
		t.Fatal("below-threshold round must select none")
	}
}

func TestDenseSparseSameSideSparse(t *testing.T) {
	env := testEnv(8)
	a := DenseSparse{C: 100, SameSideSparse: func(u graph.NodeID) bool { return u < 4 }}
	view := &radio.View{TransmitProbs: []float64{0, 0, 0, 0, 0, 0, 0, 0}}
	sel := a.ChooseOnline(env, view)
	if sel.Includes(0, 5) {
		t.Fatal("sparse round must cut cross edges")
	}
	if !sel.Includes(0, 1) {
		t.Fatal("sparse round must keep same-side edges when configured")
	}
}

func TestJamBehavior(t *testing.T) {
	env := testEnv(8)
	if !(Jam{}).ChooseOffline(env, nil, []graph.NodeID{1, 2}).All() {
		t.Fatal("two transmitters must be jammed")
	}
	if !(Jam{}).ChooseOffline(env, nil, []graph.NodeID{1}).None() {
		t.Fatal("singleton must be isolated")
	}
	if !(Jam{}).ChooseOffline(env, nil, nil).None() {
		t.Fatal("no transmitters must be isolated")
	}
}

func TestPresampleSchedule(t *testing.T) {
	sched := &presampleSchedule{dense: []bool{true, false, true}, horizon: 3}
	if !sched.SelectorFor(0).All() || !sched.SelectorFor(2).All() {
		t.Fatal("dense rounds must select all")
	}
	if !sched.SelectorFor(1).None() {
		t.Fatal("sparse rounds must select none")
	}
	if !sched.SelectorFor(99).None() {
		t.Fatal("beyond-horizon rounds must be sparse")
	}
}

func TestPresampleCommitRunsWithoutExecutionInfo(t *testing.T) {
	// Presample must produce a usable schedule from the env alone.
	d, _ := graph.DualClique(32, 3)
	env := &radio.Env{
		Net:       d,
		Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
		Algorithm: fixedRate{p: 0.5},
		Rng:       bitrand.New(3),
		MaxRounds: 200,
	}
	sched := Presample{C: 1, Horizon: 64}.CommitSchedule(env)
	if sched == nil {
		t.Fatal("nil schedule")
	}
	// With half the informed clique transmitting at rate 0.5, early rounds
	// after round 0 must be labeled dense.
	denseSeen := false
	for r := 1; r < 64; r++ {
		if sched.SelectorFor(r).All() {
			denseSeen = true
			break
		}
	}
	if !denseSeen {
		t.Fatal("presample failed to label any round dense for a chatty algorithm")
	}
}

// fixedRate: informed nodes transmit with fixed probability (test helper).
type fixedRate struct{ p float64 }

func (fixedRate) Name() string { return "fixed-rate" }

func (a fixedRate) NewProcesses(net *graph.Dual, spec radio.Spec, rng *bitrand.Source) []radio.Process {
	out := make([]radio.Process, net.N())
	for u := 0; u < net.N(); u++ {
		p := &fixedProc{p: a.p}
		if u == spec.Source {
			p.msg = &radio.Message{Origin: spec.Source}
		}
		out[u] = p
	}
	return out
}

type fixedProc struct {
	p   float64
	msg *radio.Message
}

func (p *fixedProc) TransmitProb(int) float64 {
	if p.msg != nil {
		return p.p
	}
	return 0
}

func (p *fixedProc) Step(r int, rng *bitrand.Source) radio.Action {
	if p.msg != nil && rng.Coin(p.p) {
		return radio.Transmit(p.msg)
	}
	return radio.Listen()
}

func (p *fixedProc) Deliver(r int, msg *radio.Message) {
	if msg != nil && p.msg == nil {
		p.msg = msg
	}
}
