package adversary

import (
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/scenario"
)

// ChurnWindow is the churn-exploiting adaptive adversary: it attacks only
// while the topology is degraded, idling otherwise.
//
// Under an epoch schedule, node departures and edge demotions enlarge the
// adversary-controlled set E'\E exactly for the duration of the degraded
// epochs — a demoted link is a formerly reliable edge whose fate the link
// process now decides, and on networks whose base fringe is small those
// windows are the entire attack surface. Inside a degraded window the
// adversary runs the Theorem 3.1 dense/sparse rule over that enlarged set:
// rounds whose expected transmitter count exceeds C·ln n are smothered with
// every unreliable edge (each demoted link becomes a collision vector into
// the very neighborhoods that just lost reliability), and sparse rounds are
// isolated, so the demoted links never deliver either way. Outside the
// windows it selects nothing, which on a small fringe is indistinguishable
// from no adversary at all.
//
// None of the static classes can express this attack: Static and RandomLoss
// commit one round-independent rule, Presample labels rounds by sampled
// density alone, and DenseSparse applies the same dense/sparse rule in every
// epoch, paying for its smothering in healthy rounds where the controllable
// set is small. ChurnWindow concentrates the identical machinery on the
// rounds where the topology is weak — the ADV-churnwindow experiments
// measure what that timing alone is worth.
type ChurnWindow struct {
	// Windows[i] marks compiled epoch i as a smother window; epochs past
	// the end of the mask are treated as healthy. Precompute it from the
	// scenario's degradation metadata (scenario.Scenario.DegradedWindows or
	// scenario.DegradationOf) for the allocation-free hot path. When nil,
	// the adversary derives the decision each round by comparing the live
	// topology (View.Net) against the base (Env.Net) — self-contained but
	// O(|E|) per round.
	Windows []bool
	// C scales the in-window dense threshold C·ln n (default 2), exactly
	// DenseSparse's rule.
	C float64
	// Invert swaps the windows: smother while the topology is healthy, idle
	// while it is degraded. This is the churn-blind control of the
	// ADV-churnwindow experiments — the same machinery and duty rule,
	// pointed at the wrong rounds.
	Invert bool
}

var _ radio.OnlineAdaptiveLink = ChurnWindow{}

// inWindow reports whether the round's epoch is one the adversary attacks.
func (a ChurnWindow) inWindow(env *radio.Env, view *radio.View) bool {
	var in bool
	if a.Windows != nil {
		in = view.EpochIdx < len(a.Windows) && a.Windows[view.EpochIdx]
	} else {
		in = scenario.DegradationBetween(env.Net, view.Net).Degraded()
	}
	return in != a.Invert
}

// ChooseOnline implements radio.OnlineAdaptiveLink.
//
//dglint:noalloc gate=TestChurnWindowAllocs
func (a ChurnWindow) ChooseOnline(env *radio.Env, view *radio.View) graph.EdgeSelector {
	if !a.inWindow(env, view) {
		return graph.SelectNone{}
	}
	if view.SumTransmitProbs() > (DenseSparse{C: a.C}).Threshold(env.Net.N()) {
		return graph.SelectAll{}
	}
	return graph.SelectNone{}
}

// ChurnWindowOffline is the offline adaptive variant of ChurnWindow: inside
// a degraded window it applies Jam's rule to the realized transmitter set —
// two or more transmitters anywhere and every unreliable edge appears,
// otherwise none — and outside the windows it idles. Window semantics
// (Windows, the derived fallback, Invert) match ChurnWindow exactly.
type ChurnWindowOffline struct {
	// Windows, Invert: see ChurnWindow.
	Windows []bool
	Invert  bool
}

var _ radio.OfflineAdaptiveLink = ChurnWindowOffline{}

// ChooseOffline implements radio.OfflineAdaptiveLink.
//
//dglint:noalloc gate=TestChurnWindowAllocs
func (a ChurnWindowOffline) ChooseOffline(env *radio.Env, view *radio.View, tx []graph.NodeID) graph.EdgeSelector {
	if !(ChurnWindow{Windows: a.Windows, Invert: a.Invert}).inWindow(env, view) {
		return graph.SelectNone{}
	}
	if len(tx) >= 2 {
		return graph.SelectAll{}
	}
	return graph.SelectNone{}
}
