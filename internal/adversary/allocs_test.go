package adversary

import (
	"testing"

	"repro/internal/bitrand"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/scenario"
)

// TestChurnWindowAllocs is the //dglint:noalloc gate for the epoch-aware
// adversaries' per-round choice methods (ChurnWindow.ChooseOnline,
// ChurnWindowOffline.ChooseOffline): a warmed-up adaptive trial over a
// precompiled storm schedule must stay within the BENCH_pr5 budget of
// 5 allocs — engine 3, Env, adversary rng split. The choice methods run
// once per round, so one allocation inside either blows the budget by
// ~MaxRounds.
func TestChurnWindowAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate needs steady-state pooling")
	}
	const n = 64
	base := graph.TwoCliques(n)
	sc, err := scenario.Generate(base, bitrand.New(3000+n), scenario.GenConfig{
		Epochs:    10,
		EpochLen:  2 * bitrand.LogN(n),
		Demotions: 8,
		Storms:    6 * n,
		Protected: []graph.NodeID{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	epochs, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	wins := sc.DegradedWindows()

	const budget = 5
	seed := uint64(0)
	measure := func(name string, link any) {
		trial := func() {
			seed++
			_, err := radio.Run(radio.Config{
				Algorithm:        core.DecayGlobal{},
				Spec:             radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
				Link:             link,
				Seed:             seed,
				MaxRounds:        256,
				IgnoreCompletion: true,
				Epochs:           epochs,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		got := testing.AllocsPerRun(50, trial)
		t.Logf("%s trial allocs/op = %v (budget %d)", name, got, budget)
		if got > budget {
			t.Errorf("%s trial allocs/op = %v, budget %d", name, got, budget)
		}
	}
	measure("online", ChurnWindow{Windows: wins, C: 1})
	measure("offline", ChurnWindowOffline{Windows: wins})
}
