// Package lint implements dglint, the repository's static-invariant
// checker: a small suite of analyzers that mechanically enforce the three
// contracts every PR so far has defended by hand — byte-identical output at
// any worker/shard count (determinism), zero-copy CSR neighbor views that
// must not outlive an epoch swap (view lifetime), and pooled scratch/arena
// state that must be fully reset between trials (scratch reset) — plus the
// allocation budgets of the engine's hot paths.
//
// The suite is shaped like golang.org/x/tools/go/analysis (Analyzer, Pass,
// analysistest-style fixture tests) but is self-contained: this module is
// built offline with no dependencies, so the framework reimplements the
// narrow slice it needs on top of go/ast and go/types, with stdlib imports
// type-checked from source (see load.go).
//
// Directives, written as comments in checked code:
//
//	//dglint:allow <analyzer>: <reason>
//	    Suppresses a diagnostic from the named analyzer on the same line or
//	    the line directly below the comment. The reason is mandatory: every
//	    escape hatch must say why the site is justified.
//	//dglint:pooled reset=<name>[,<name>...]
//	    On a struct type: the struct cycles through a pool, and every field
//	    must be touched by one of the named reset functions (or a function
//	    they transitively call within the package). See scratchreset.go.
//	//dglint:noalloc gate=<TestName>
//	    On a function: the function is an allocation-free hot path pinned by
//	    the named testing.AllocsPerRun gate in the package's tests. See
//	    noalloc.go.
//	//dglint:service <reason>
//	    In a package documentation comment: the package is service code — a
//	    long-lived daemon or its run-lifecycle core — not simulation code.
//	    Analyzers marked SimulationOnly (detrand) skip the package: a daemon
//	    legitimately reads the wall clock for timestamps and serves map-backed
//	    state over JSON (encoding/json sorts map keys). The reason is
//	    mandatory, the directive only takes effect in the package doc comment,
//	    and all other analyzers (view lifetime, scratch reset, noalloc) still
//	    apply.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker, mirroring the shape of
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// InternalOnly restricts the analyzer to packages under internal/: the
	// determinism contract binds simulation code, not the CLI front ends
	// (dgbench legitimately reads the wall clock for progress output).
	InternalOnly bool
	// SimulationOnly further restricts the analyzer to simulation packages:
	// an internal package whose package documentation carries a
	// //dglint:service <reason> directive is service code (run lifecycle,
	// daemons) and is skipped. Unlike InternalOnly this scope is opt-out, and
	// the opt-out is visible in the package's own doc comment with a
	// mandatory reason.
	SimulationOnly bool
	// Run executes the analyzer over one package.
	Run func(*Pass)
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's type-checked non-test files.
	Files []*ast.File
	// TestFiles are the package directory's _test.go files, parsed but not
	// type-checked (they may belong to the external _test package). The
	// noalloc analyzer scans them for AllocsPerRun gates.
	TestFiles []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Dir is the package directory on disk.
	Dir string

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos. Suppression by //dglint:allow is
// applied later by the driver, so analyzers report unconditionally.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, bound to its resolved file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// sortDiagnostics orders findings by file, line, column, analyzer.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Directive kinds.
const (
	dirAllow   = "allow"
	dirPooled  = "pooled"
	dirNoalloc = "noalloc"
	dirService = "service"
)

// directive is one parsed //dglint: comment.
type directive struct {
	pos  token.Pos
	kind string // allow, pooled, noalloc
	args string // raw text after the kind
}

const dirPrefix = "//dglint:"

// parseDirective parses a single comment line; ok is false for ordinary
// comments.
func parseDirective(c *ast.Comment) (d directive, ok bool) {
	text, found := strings.CutPrefix(c.Text, dirPrefix)
	if !found {
		return directive{}, false
	}
	// Strip an inline "// want" expectation so analysistest-style fixtures
	// can assert on diagnostics reported at the directive itself.
	if i := strings.Index(text, " // want"); i >= 0 {
		text = text[:i]
	}
	kind, args, _ := strings.Cut(text, " ")
	return directive{pos: c.Pos(), kind: kind, args: strings.TrimSpace(args)}, true
}

// directivesIn collects every dglint directive in a comment group.
func directivesIn(g *ast.CommentGroup) []directive {
	if g == nil {
		return nil
	}
	var ds []directive
	for _, c := range g.List {
		if d, ok := parseDirective(c); ok {
			ds = append(ds, d)
		}
	}
	return ds
}

// findDirective returns the first directive of the given kind attached to
// any of the comment groups.
func findDirective(kind string, groups ...*ast.CommentGroup) (directive, bool) {
	for _, g := range groups {
		for _, d := range directivesIn(g) {
			if d.kind == kind {
				return d, true
			}
		}
	}
	return directive{}, false
}

// parseAllow splits an allow directive's args into analyzer name and reason.
// The mandated form is "<analyzer>: <reason>".
func parseAllow(args string) (analyzer, reason string, ok bool) {
	analyzer, reason, found := strings.Cut(args, ":")
	analyzer = strings.TrimSpace(analyzer)
	reason = strings.TrimSpace(reason)
	if !found || analyzer == "" || reason == "" {
		return "", "", false
	}
	return analyzer, reason, true
}

// allowIndex records, per file and line, which analyzers are allowed there.
// An inline allow (sharing its line with code) suppresses diagnostics on its
// own line; a standalone allow suppresses the line directly below it.
type allowIndex map[string]map[int]map[string]bool

func (ai allowIndex) add(file string, line int, analyzer string) {
	byLine := ai[file]
	if byLine == nil {
		byLine = make(map[int]map[string]bool)
		ai[file] = byLine
	}
	if byLine[line] == nil {
		byLine[line] = make(map[string]bool)
	}
	byLine[line][analyzer] = true
}

func (ai allowIndex) allowed(d Diagnostic) bool {
	return ai[d.Pos.Filename][d.Pos.Line][d.Analyzer]
}

// collectAllows indexes every allow directive in the package (including test
// files) and reports malformed ones — an escape hatch without an analyzer
// name and a reason is itself a finding.
func collectAllows(fset *token.FileSet, files []*ast.File, ai allowIndex, report func(Diagnostic)) {
	for _, f := range files {
		codeLines := linesWithCode(fset, f)
		for _, g := range f.Comments {
			for _, d := range directivesIn(g) {
				pos := fset.Position(d.pos)
				switch d.kind {
				case dirAllow:
					analyzer, _, ok := parseAllow(d.args)
					if !ok {
						report(Diagnostic{
							Analyzer: "dglint",
							Pos:      pos,
							Message:  `malformed //dglint:allow: want "//dglint:allow <analyzer>: <reason>"`,
						})
						continue
					}
					line := pos.Line
					if !codeLines[line] {
						// Standalone comment: it guards the line below.
						line++
					}
					ai.add(pos.Filename, line, analyzer)
				case dirPooled, dirNoalloc:
					// Validated by their analyzers.
				case dirService:
					// Validated by servicePackage; here only placement is
					// checked — a service directive buried on a declaration
					// would silently do nothing, so it is a finding.
					if g != f.Doc {
						report(Diagnostic{
							Analyzer: "dglint",
							Pos:      pos,
							Message:  "//dglint:service applies only in the package documentation comment",
						})
					}
				default:
					report(Diagnostic{
						Analyzer: "dglint",
						Pos:      pos,
						Message:  fmt.Sprintf("unknown directive //dglint:%s", d.kind),
					})
				}
			}
		}
	}
}

// servicePackage reports whether the package opts out of SimulationOnly
// analyzers via a //dglint:service directive in a package documentation
// comment. A directive without a reason is malformed — it does not grant the
// exemption and is itself reported.
func servicePackage(fset *token.FileSet, files []*ast.File, report func(Diagnostic)) bool {
	service := false
	for _, f := range files {
		d, ok := findDirective(dirService, f.Doc)
		if !ok {
			continue
		}
		if strings.TrimSpace(d.args) == "" {
			report(Diagnostic{
				Analyzer: "dglint",
				Pos:      fset.Position(d.pos),
				Message:  `malformed //dglint:service: want "//dglint:service <reason>"`,
			})
			continue
		}
		service = true
	}
	return service
}

// linesWithCode reports which lines of the file contain non-comment tokens,
// distinguishing inline comments from standalone ones.
func linesWithCode(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil:
			return false
		case *ast.Comment, *ast.CommentGroup:
			return false
		}
		lines[fset.Position(n.Pos()).Line] = true
		return true
	})
	return lines
}
