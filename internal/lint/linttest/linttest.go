// Package linttest runs dglint analyzers over fixture packages and checks
// their diagnostics against // want comments, mirroring the core of
// golang.org/x/tools/go/analysis/analysistest for this repository's
// self-contained framework.
//
// Fixtures live under internal/lint/testdata/src/<pkg>, GOPATH-style, so a
// fixture can import a small stand-in package ("graph") by bare path. A
// want comment asserts the diagnostics of its own source line:
//
//	h.view = g.Neighbors(0) // want `stored in h.view`
//
// Multiple string literals assert multiple diagnostics on the line; every
// diagnostic must be matched by a want and every want by a diagnostic.
package linttest

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// Run applies one analyzer to the fixture package at dir and compares
// diagnostics against the package's // want comments.
func Run(t *testing.T, dir string, a *lint.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := lint.NewLoader(abs)
	if err != nil {
		t.Fatal(err)
	}
	loader.FixtureRoot = filepath.Dir(abs)
	pkg, err := loader.LoadDir(abs)
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Check(pkg, loader, []*lint.Analyzer{a})

	type lineKey struct {
		file string
		line int
	}
	wants := make(map[lineKey][]*regexp.Regexp)
	files := append(append([]*ast.File(nil), pkg.Files...), pkg.TestFiles...)
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				for _, pat := range wantPatterns(t, c.Text) {
					pos := loader.Fset.Position(c.Pos())
					k := lineKey{pos.Filename, pos.Line}
					wants[k] = append(wants[k], pat)
				}
			}
		}
	}

	matched := make(map[*regexp.Regexp]bool)
	for _, d := range diags {
		k := lineKey{d.Pos.Filename, d.Pos.Line}
		ok := false
		for _, pat := range wants[k] {
			if pat.MatchString(d.Message) {
				matched[pat] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	// Collect-then-sort so failure output does not leak map order (the
	// detrand analyzer holds this package to its own standard).
	var missing []string
	for k, pats := range wants {
		for _, pat := range pats {
			if !matched[pat] {
				missing = append(missing, fmt.Sprintf("%s:%d: no diagnostic matching %q", k.file, k.line, pat))
			}
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Error(m)
	}
}

// wantLiteral matches the Go string literals of a want comment: backquoted
// or double-quoted.
var wantLiteral = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// wantPatterns extracts the expectation regexps from one comment's text,
// which may be a standalone "// want ..." comment or carry an inline
// " // want ..." suffix (directive-line expectations).
func wantPatterns(t *testing.T, text string) []*regexp.Regexp {
	t.Helper()
	idx := strings.Index(text, "// want ")
	if idx < 0 {
		// Standalone comments surface as "// want `...`"; nested ones keep
		// the second marker, handled above. Nothing to do otherwise.
		return nil
	}
	rest := text[idx+len("// want "):]
	var pats []*regexp.Regexp
	for _, lit := range wantLiteral.FindAllString(rest, -1) {
		s, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("bad want literal %s: %v", lit, err)
		}
		pats = append(pats, regexp.MustCompile(s))
	}
	if len(pats) == 0 {
		t.Fatal(fmt.Errorf("want comment with no string literals: %s", text))
	}
	return pats
}
