package lint

import (
	"fmt"
	"go/ast"
	"io"
	"strings"
)

// Analyzers is the dglint suite, in reporting order.
var Analyzers = []*Analyzer{DetRand, ViewEscape, ScratchReset, NoAlloc}

// AnalyzerByName returns the named analyzer or nil.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Check runs the given analyzers over one loaded package and returns the
// surviving diagnostics: //dglint:allow suppression is applied, malformed
// directives are themselves reported. InternalOnly filtering is the caller's
// job (Run applies it; fixture tests bypass it deliberately).
func Check(pkg *Package, loader *Loader, analyzers []*Analyzer) []Diagnostic {
	var kept []Diagnostic
	// Service packages (//dglint:service in the package doc) opt out of the
	// SimulationOnly analyzers; malformed directives are reported and grant
	// nothing.
	if servicePackage(loader.Fset, pkg.Files, func(d Diagnostic) { kept = append(kept, d) }) {
		sel := make([]*Analyzer, 0, len(analyzers))
		for _, a := range analyzers {
			if !a.SimulationOnly {
				sel = append(sel, a)
			}
		}
		analyzers = sel
	}
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      loader.Fset,
			Files:     pkg.Files,
			TestFiles: pkg.TestFiles,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Dir:       pkg.Dir,
			diags:     &raw,
		}
		a.Run(pass)
	}
	ai := make(allowIndex)
	files := append(append([]*ast.File(nil), pkg.Files...), pkg.TestFiles...)
	collectAllows(loader.Fset, files, ai, func(d Diagnostic) { kept = append(kept, d) })
	for _, d := range raw {
		if !ai.allowed(d) {
			kept = append(kept, d)
		}
	}
	sortDiagnostics(kept)
	return kept
}

// Run loads every package matching patterns (resolved against the module
// containing startDir) and applies the suite. It returns all surviving
// diagnostics, sorted by position.
func Run(startDir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	loader, err := NewLoader(startDir)
	if err != nil {
		return nil, err
	}
	dirs, err := loader.ExpandPatterns(patterns)
	if err != nil {
		return nil, err
	}
	var all []Diagnostic
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		sel := analyzers
		if !strings.Contains(pkg.Path, "internal/") {
			sel = nil
			for _, a := range analyzers {
				if !a.InternalOnly {
					sel = append(sel, a)
				}
			}
		}
		all = append(all, Check(pkg, loader, sel)...)
	}
	sortDiagnostics(all)
	return all, nil
}

// Print writes diagnostics in the conventional file:line:col format,
// with paths shown relative to the module root when possible.
func Print(w io.Writer, modRoot string, ds []Diagnostic) {
	for _, d := range ds {
		name := d.Pos.Filename
		if rel, ok := strings.CutPrefix(name, modRoot+"/"); ok {
			name = rel
		}
		fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", name, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
}
