// Package detrand is the fixture for the detrand analyzer: determinism
// poison in simulation code.
package detrand

import (
	"fmt"
	"math/rand" // want `import of math/rand poisons determinism`
	"sort"
	"time"
)

func wallClock() int64 {
	return time.Now().Unix() // want `time\.Now in simulation code poisons determinism`
}

func legacyRand() int {
	return rand.Int()
}

// emit prints in map order: the PR 1 row-ordering bug class.
func emit(m map[int]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `call executed for effect inside map iteration`
	}
}

// collectNoSort leaks map order into a slice that is never sorted.
func collectNoSort(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k) // want `map iteration order reaches out, which is never sorted`
	}
	return out
}

// collectSorted is the blessed idiom: collect, then sort.
func collectSorted(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// accumulate folds order-insensitively: integer sums, counters, min/max,
// idempotent flags, writes into other maps, deletes.
func accumulate(m map[int]int, inv map[int]int) (int, bool) {
	sum, count, best := 0, 0, 0
	found := false
	for k, v := range m {
		sum += v
		count++
		best = max(best, v)
		found = true
		inv[v] = k
		delete(inv, k+1)
	}
	return sum + count + best, found
}

// floatSum accumulates floats in map order: rounding is order-dependent.
func floatSum(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `floating-point accumulation in map order`
	}
	return total
}

// lastWriter keeps whichever element iterates last.
func lastWriter(m map[int]int) int {
	var last int
	for k := range m {
		last = k // want `assignment to last inside map iteration`
	}
	return last
}

// firstReturn returns a randomized element.
func firstReturn(m map[int]int) int {
	for k := range m {
		return k // want `return inside map iteration picks a randomized element`
	}
	return -1
}

// loopLocals may do anything with state scoped to the iteration.
func loopLocals(m map[int][]int) int {
	n := 0
	for _, vs := range m {
		local := 0
		for _, v := range vs {
			local += v
		}
		n += local
	}
	return n
}

// allowed demonstrates the escape hatch.
func allowed(m map[int]int) {
	for k := range m {
		//dglint:allow detrand: fixture demonstrates the justified escape hatch
		fmt.Println(k)
	}
}
