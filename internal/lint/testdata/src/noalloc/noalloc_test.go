package noalloc

import "testing"

func TestHotAllocs(t *testing.T) {
	if n := testing.AllocsPerRun(10, Hot); n > 0 {
		t.Fatalf("Hot allocates %v times per run, want 0", n)
	}
}

func TestWeak(t *testing.T) {
	Weak()
}

func BenchmarkHot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Hot()
	}
}
