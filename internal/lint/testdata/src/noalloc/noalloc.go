// Package noalloc is the fixture for the noalloc analyzer: hot-path
// annotations paired with testing.AllocsPerRun gates.
package noalloc

// Hot is a pinned hot path with a live gate.
//
//dglint:noalloc gate=TestHotAllocs
func Hot() {}

// Orphan names a gate that does not exist.
//
//dglint:noalloc gate=TestMissing // want `noalloc gate TestMissing for Orphan not found`
func Orphan() {}

// Weak names a gate that never measures allocations.
//
//dglint:noalloc gate=TestWeak // want `noalloc gate TestWeak never calls testing\.AllocsPerRun`
func Weak() {}

// Malformed has no gate= argument.
//
//dglint:noalloc budget=5 // want `malformed //dglint:noalloc`
func Malformed() {}

// Bench names a benchmark, which cannot gate CI.
//
//dglint:noalloc gate=BenchmarkHot // want `not a Test function`
func Bench() {}

func misplaced() {
	//dglint:noalloc gate=TestHotAllocs // want `must be in the doc comment`
	_ = 0
}
