// Package servicepkg models a service package: a long-lived daemon's run
// lifecycle whose wall-clock timestamps and map-backed JSON state are the
// product, not determinism poison. The directive below exempts the package
// from SimulationOnly analyzers (detrand); every site in this file would be
// a finding without it.
//
//dglint:service daemon run lifecycle: wall-clock timestamps and served maps are the product
package servicepkg

import "time"

type registry struct {
	runs map[string]int
}

// Snapshot reads the wall clock and folds a map in iteration order — both
// forbidden in simulation code, both the daily business of a daemon.
func (r *registry) Snapshot() (int, time.Time) {
	total := 0
	var last string
	for id, n := range r.runs {
		total += n
		last = id // order-dependent store, fine under service scope
	}
	_ = last
	return total, time.Now()
}
