// Package scratchreset is the fixture for the scratchreset analyzer:
// pooled structs whose reset path must touch every field.
package scratchreset

// pool is a pooled buffer set with a multi-root reset path: reset clears
// the eager buffers (via a helper), sizeAux lazily sizes the rest.
//
//dglint:pooled reset=reset,sizeAux
type pool struct {
	a      []int
	b      []bool
	aux    []int
	cached map[int]int //dglint:allow scratchreset: memoized per configuration; carrying it across trials is the point
	leaked []int       // want `field leaked of pooled struct pool is not touched by reset/sizeAux`
}

func (p *pool) reset(n int) {
	p.a = p.a[:0]
	p.clearB(n)
}

func (p *pool) clearB(n int) {
	for i := range p.b {
		p.b[i] = false
	}
}

func (p *pool) sizeAux(n int) []int {
	if cap(p.aux) < n {
		p.aux = make([]int, n)
	}
	return p.aux[:n]
}

// factory resets proc slabs, the process-arena pattern.
type factory struct{}

// proc is pooled through factory.Reset, which delegates to a package
// helper; the helper's touches count via the call-graph closure.
//
//dglint:pooled reset=factory.Reset
type proc struct {
	x int
	y int // want `field y of pooled struct proc is not touched by factory\.Reset`
}

func (factory) Reset(ps []*proc) {
	for _, p := range ps {
		resetProc(p)
	}
}

func resetProc(p *proc) { p.x = 0 }

// wiped is reset by overwriting the whole struct, which touches every
// field at once.
//
//dglint:pooled reset=zero
type wiped struct {
	m int
	n int
}

func (w *wiped) zero() { *w = wiped{} }

// keyedReset rebuilds itself with a keyed literal: the literal constructs a
// complete value, so the unlisted q is zeroed — every field counts as
// touched.
//
//dglint:pooled reset=rebuild
type keyedReset struct {
	p int
	q int
}

func (k *keyedReset) rebuild() { *k = keyedReset{p: 1} }

// orphan names a reset root that does not exist.
//
//dglint:pooled reset=Missing // want `reset root "Missing" not found`
type orphan struct {
	z int
}
