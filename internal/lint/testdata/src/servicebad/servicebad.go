// Package servicebad claims service scope without the mandatory reason: the
// malformed directive is itself a finding and grants no exemption, so the
// detrand sites below still fire.
//
//dglint:service // want `malformed //dglint:service`
package servicebad

import "time"

func now() time.Time {
	return time.Now() // want `time.Now in simulation code`
}
