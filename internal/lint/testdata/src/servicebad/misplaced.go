package servicebad

import "time"

// A service directive outside the package documentation comment is inert by
// design (the scope is a package property, not a per-site escape hatch);
// burying one on a declaration is reported rather than silently ignored.
//
//dglint:service on a function, where it does nothing // want `applies only in the package documentation comment`
func misplaced() time.Duration {
	return time.Since(time.Time{}) // want `time.Since in simulation code`
}
