// Package graph is a miniature stand-in for repro/internal/graph, just
// enough surface for the viewescape fixtures: the view-returning accessors
// with the same names on types with the same names.
package graph

// NodeID mirrors the real package's node identifier.
type NodeID = int

// Graph is a CSR graph whose accessors return zero-copy views.
type Graph struct {
	offs []int32
	adj  []NodeID
}

// Neighbors returns a zero-copy view.
func (g *Graph) Neighbors(u NodeID) []NodeID { return g.adj }

// CSR returns the backing arrays.
func (g *Graph) CSR() (offs []int32, adj []NodeID) { return g.offs, g.adj }

// Dual mirrors the dual-graph wrapper.
type Dual struct {
	g Graph
}

// G returns the reliable graph.
func (d *Dual) G() *Graph { return &d.g }

// ExtraNeighbors returns a zero-copy view of the unreliable fringe.
func (d *Dual) ExtraNeighbors(u NodeID) []NodeID { return d.g.adj }

// ExtraCSR returns the fringe backing arrays.
func (d *Dual) ExtraCSR() (offs []int32, adj []NodeID) { return d.g.offs, d.g.adj }

// SparseNeighborMasks mirrors the block-sparse mask rows, whose accessors
// return zero-copy views with the same lifetime contract.
type SparseNeighborMasks struct {
	offs  []int32
	idx   []int32
	words []uint64
	summ  []uint64
}

// BlockRow returns a row's block views.
func (m *SparseNeighborMasks) BlockRow(u NodeID) (idx []int32, words []uint64) {
	return m.idx, m.words
}

// Rows returns the flat backing arrays.
func (m *SparseNeighborMasks) Rows() (offs, idx []int32, words []uint64) {
	return m.offs, m.idx, m.words
}

// Summaries returns the per-row summary array.
func (m *SparseNeighborMasks) Summaries() []uint64 { return m.summ }
