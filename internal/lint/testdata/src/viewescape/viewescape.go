// Package viewescape is the fixture for the viewescape analyzer: zero-copy
// graph views escaping into storage that can outlive an epoch swap.
package viewescape

import "graph"

type holder struct {
	view  []graph.NodeID
	offs  []int32
	adj   []graph.NodeID
	idx   []int32
	words []uint64
	summ  []uint64
}

var pkgView []graph.NodeID

func fieldStore(h *holder, g *graph.Graph) {
	h.view = g.Neighbors(0) // want `zero-copy graph view stored in h\.view`
}

func tupleStore(h *holder, g *graph.Graph) {
	h.offs, h.adj = g.CSR() // want `stored in h\.offs` `stored in h\.adj`
}

func extraStore(h *holder, d *graph.Dual) {
	h.view = d.ExtraNeighbors(2) // want `stored in h\.view`
}

func pkgStore(g *graph.Graph) {
	pkgView = g.Neighbors(0) // want `package variable pkgView outlives every epoch swap`
}

func taintedLocal(h *holder, d *graph.Dual) {
	v := d.ExtraNeighbors(1)
	h.view = v // want `stored in h\.view`
}

func composite(g *graph.Graph) holder {
	return holder{adj: g.Neighbors(0)} // want `stored in a composite literal`
}

func sparseBlockStore(h *holder, m *graph.SparseNeighborMasks) {
	h.idx, h.words = m.BlockRow(3) // want `stored in h\.idx` `stored in h\.words`
}

func sparseRowsStore(h *holder, m *graph.SparseNeighborMasks) {
	h.offs, h.idx, h.words = m.Rows() // want `stored in h\.offs` `stored in h\.idx` `stored in h\.words`
}

func sparseSummStore(h *holder, m *graph.SparseNeighborMasks) {
	h.summ = m.Summaries() // want `stored in h\.summ`
}

func sparseTainted(h *holder, m *graph.SparseNeighborMasks) {
	s := m.Summaries()
	h.summ = s // want `stored in h\.summ`
}

func sparseOK(m *graph.SparseNeighborMasks) int {
	idx, words := m.BlockRow(0)
	total := len(idx)
	for _, w := range words {
		total += int(w & 1)
	}
	return total + len(m.Summaries())
}

func closure(g *graph.Graph) func() int {
	v := g.Neighbors(0)
	return func() int { return len(v) } // want `view v captured by a closure`
}

// okUses exercises the call-scoped idioms the contract blesses: locals that
// stay in the frame, copying contents, and returning a view to the caller.
func okUses(g *graph.Graph, d *graph.Dual) []graph.NodeID {
	v := g.Neighbors(0)
	dst := append([]graph.NodeID(nil), v...)
	for range d.ExtraNeighbors(0) {
		dst = append(dst, 0)
	}
	offs, adj := d.G().CSR()
	_ = offs
	_ = adj
	return g.Neighbors(1)
}

func allowedStore(h *holder, g *graph.Graph) {
	//dglint:allow viewescape: fixture demonstrates the justified re-hoist
	h.adj = g.Neighbors(0)
}
