package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// DetRand forbids the determinism poisons in simulation code.
//
// The whole experiment harness rests on one invariant: identical seeds
// produce byte-identical output at any worker or shard count. Three things
// break it silently:
//
//   - math/rand (and v2): global, lock-shared, seed-uncontrolled streams.
//     All simulation randomness must come through repro/internal/bitrand,
//     whose per-node streams are derived from the trial seed.
//   - time.Now / time.Since: wall-clock values reaching simulation state or
//     output make reruns diverge.
//   - map iteration feeding output or aggregation: Go randomizes map order
//     per run, which is exactly the row-ordering bug PR 1 fixed by hand.
//
// The map-range check is a heuristic over the loop body. Order-insensitive
// bodies are accepted: integer/bitwise compound accumulation (+=, |=, ++,
// ...), writes into other maps, delete, assignments to variables local to
// the loop, constant assignments (idempotent flags), and min/max folds.
// Collect-then-sort is accepted too: appending to an outer slice is fine
// when the slice is passed to a sort.* / slices.Sort* call later in the same
// function. Everything else — calls executed for effect, returns, sends,
// stores to outer state, floating-point accumulation (whose rounding is
// order-dependent) — is reported. Justified sites take
// //dglint:allow detrand: <reason>.
var DetRand = &Analyzer{
	Name:         "detrand",
	Doc:          "forbid math/rand, time.Now and unsorted map iteration in simulation packages",
	InternalOnly: true,
	// Service packages (//dglint:service) are exempt: a daemon's run
	// lifecycle legitimately timestamps events with the wall clock and
	// serves map-backed state over JSON. The simulation gates stay intact —
	// the exemption is per package, declared in its doc comment with a
	// mandatory reason.
	SimulationOnly: true,
	Run:            runDetRand,
}

func runDetRand(pass *Pass) {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s poisons determinism; derive randomness from the trial seed via repro/internal/bitrand", path)
			}
		}
		// Walk with the enclosing function body tracked, so the map-range
		// check can look for sorts later in the same function.
		var walk func(n ast.Node, funcBody *ast.BlockStmt)
		walk = func(n ast.Node, funcBody *ast.BlockStmt) {
			ast.Inspect(n, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil {
						walk(n.Body, n.Body)
					}
					return false
				case *ast.FuncLit:
					walk(n.Body, n.Body)
					return false
				case *ast.CallExpr:
					if pkg, name := pkgFuncCall(pass, n); pkg == "time" && (name == "Now" || name == "Since") {
						pass.Reportf(n.Pos(), "time.%s in simulation code poisons determinism; round counts are the only clock", name)
					}
				case *ast.RangeStmt:
					checkMapRange(pass, n, funcBody)
				}
				return true
			})
		}
		walk(f, nil)
	}
}

// pkgFuncCall resolves a call of the form pkg.Func and returns the package
// path and function name, or "", "".
func pkgFuncCall(pass *Pass, call *ast.CallExpr) (pkgPath, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// checkMapRange classifies the body of a range-over-map loop and reports
// order-sensitive effects.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}

	// Objects whose mutation is order-insensitive by construction: the loop
	// variables and everything declared inside the loop body.
	local := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				local[obj] = true
			}
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				local[obj] = true
			}
		}
		return true
	})

	c := &mapRangeChecker{pass: pass, local: local}
	c.stmts(rs.Body.List)

	// Collect-then-sort: every outer slice the loop appends to must be
	// sorted after the loop, in the same function.
	for _, ap := range c.appends {
		if !sortedAfter(pass, funcBody, rs.End(), ap.obj) {
			pass.Reportf(ap.pos, "map iteration order reaches %s, which is never sorted; sort it or iterate sorted keys", ap.obj.Name())
		}
	}
}

type appendSite struct {
	pos token.Pos
	obj types.Object
}

type mapRangeChecker struct {
	pass    *Pass
	local   map[types.Object]bool
	appends []appendSite
}

func (c *mapRangeChecker) stmts(list []ast.Stmt) {
	for _, s := range list {
		c.stmt(s)
	}
}

// stmt reports order-sensitive statements inside the map range.
func (c *mapRangeChecker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.stmts(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		c.stmt(s.Body)
		if s.Else != nil {
			c.stmt(s.Else)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		for _, cc := range s.Body.List {
			c.stmts(cc.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			c.stmts(cc.(*ast.CaseClause).Body)
		}
	case *ast.ForStmt:
		c.stmt(s.Body)
	case *ast.RangeStmt:
		c.stmt(s.Body)
	case *ast.IncDecStmt:
		c.accumulate(s, s.X)
	case *ast.AssignStmt:
		c.assign(s)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && c.effectFreeCall(call) {
			return
		}
		c.pass.Reportf(s.Pos(), "call executed for effect inside map iteration runs in randomized order")
	case *ast.BranchStmt, *ast.EmptyStmt, *ast.DeclStmt, *ast.LabeledStmt:
		// Declarations introduce loop-local state; branches carry no effect.
	case *ast.ReturnStmt:
		c.pass.Reportf(s.Pos(), "return inside map iteration picks a randomized element")
	default:
		c.pass.Reportf(s.Pos(), "order-sensitive statement inside map iteration")
	}
}

// assign classifies one assignment inside the map range.
func (c *mapRangeChecker) assign(s *ast.AssignStmt) {
	switch s.Tok {
	case token.DEFINE:
		return // new loop-local variables
	case token.ASSIGN:
	default:
		// Compound accumulation (+=, -=, |=, ...): order-insensitive for
		// integers; floating-point rounding is order-dependent.
		for _, lhs := range s.Lhs {
			if c.isFloat(lhs) {
				c.pass.Reportf(s.Pos(), "floating-point accumulation in map order is not reproducible (rounding is order-dependent)")
			}
		}
		return
	}
	for i, lhs := range s.Lhs {
		var rhs ast.Expr
		if len(s.Rhs) == len(s.Lhs) {
			rhs = s.Rhs[i]
		} else {
			rhs = s.Rhs[0]
		}
		c.assignOne(s, lhs, rhs)
	}
}

func (c *mapRangeChecker) assignOne(s *ast.AssignStmt, lhs, rhs ast.Expr) {
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	// Writes into another map are order-insensitive (each key written once
	// per iteration, keyed by loop state).
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		if tv, ok := c.pass.TypesInfo.Types[ix.X]; ok && tv.Type != nil {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				return
			}
		}
	}
	if obj := c.baseObj(lhs); obj != nil && c.local[obj] {
		return
	}
	// x = append(x, ...): collect now, demand a sort later.
	if call, ok := rhs.(*ast.CallExpr); ok && isBuiltin(c.pass, call.Fun, "append") {
		if obj := c.baseObj(lhs); obj != nil {
			c.appends = append(c.appends, appendSite{pos: s.Pos(), obj: obj})
			return
		}
	}
	// x = min(x, v) / max(x, v): an order-insensitive fold.
	if call, ok := rhs.(*ast.CallExpr); ok && (isBuiltin(c.pass, call.Fun, "min") || isBuiltin(c.pass, call.Fun, "max")) {
		lobj := c.baseObj(lhs)
		for _, arg := range call.Args {
			if c.baseObj(arg) == lobj && lobj != nil {
				return
			}
		}
	}
	// x = <constant>: idempotent (flag-setting), any order yields the same
	// final state.
	if tv, ok := c.pass.TypesInfo.Types[rhs]; ok && tv.Value != nil {
		return
	}
	c.pass.Reportf(s.Pos(), "assignment to %s inside map iteration depends on randomized order", exprString(lhs))
}

func (c *mapRangeChecker) accumulate(s ast.Stmt, x ast.Expr) {
	if c.isFloat(x) {
		c.pass.Reportf(s.Pos(), "floating-point accumulation in map order is not reproducible (rounding is order-dependent)")
	}
}

func (c *mapRangeChecker) isFloat(e ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// effectFreeCall reports whether a statement-position call is harmless
// inside a map range: delete and clear mutate maps keyed by loop state;
// panic aborts rather than emits.
func (c *mapRangeChecker) effectFreeCall(call *ast.CallExpr) bool {
	return isBuiltin(c.pass, call.Fun, "delete") ||
		isBuiltin(c.pass, call.Fun, "clear") ||
		isBuiltin(c.pass, call.Fun, "panic")
}

// baseObj resolves the root object of an lvalue chain: a in a, a.b, a[i].c.
func (c *mapRangeChecker) baseObj(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return c.pass.TypesInfo.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func isBuiltin(pass *Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isB := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isB
}

// sortFuncs are the recognized sorted-after sinks for collect-then-sort.
var sortFuncs = map[string]map[string]bool{
	"sort":   {"Ints": true, "Strings": true, "Float64s": true, "Slice": true, "SliceStable": true, "Sort": true, "Stable": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

// sortedAfter reports whether obj is passed to a recognized sort call after
// pos within body.
func sortedAfter(pass *Pass, body *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found {
			return !found
		}
		pkg, name := pkgFuncCall(pass, call)
		short := pkg[strings.LastIndexByte(pkg, '/')+1:]
		if m, ok := sortFuncs[short]; !ok || !m[name] {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	default:
		return "expression"
	}
}
