package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package plus the parsed (but not
// type-checked) test files of its directory.
type Package struct {
	Path      string
	Dir       string
	Files     []*ast.File
	TestFiles []*ast.File
	Types     *types.Package
	Info      *types.Info
}

// A Loader parses and type-checks packages of the enclosing module without
// any external driver: module-internal imports resolve to directories under
// the module root, fixture imports resolve GOPATH-style under an optional
// fixture root, and everything else (the standard library) is type-checked
// from GOROOT source via go/importer's "source" compiler. The whole chain
// works offline with an empty module cache, which is the environment this
// repository builds in.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string // directory containing go.mod
	ModPath string // module path declared there
	// FixtureRoot, when non-empty, is a GOPATH-style src directory consulted
	// before module resolution; linttest points it at testdata/src so
	// fixtures can import small stand-in packages by bare path.
	FixtureRoot string

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module containing startDir.
func NewLoader(startDir string) (*Loader, error) {
	root, modPath, err := findModule(startDir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModRoot: root,
		ModPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// LoadDir loads the package in dir, which must lie under the module root or
// the fixture root.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if l.FixtureRoot != "" {
		if rel, err := filepath.Rel(l.FixtureRoot, dir); err == nil && !strings.HasPrefix(rel, "..") {
			return l.load(filepath.ToSlash(rel), dir)
		}
	}
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.ModRoot)
	}
	path := l.ModPath
	if rel != "." {
		path = l.ModPath + "/" + filepath.ToSlash(rel)
	}
	return l.load(path, dir)
}

// dirFor maps an import path to a directory, or "" when the path belongs to
// neither the fixture tree nor the module (i.e. it is standard library).
func (l *Loader) dirFor(path string) string {
	if path == l.ModPath {
		return l.ModRoot
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.ModRoot, filepath.FromSlash(rest))
	}
	if l.FixtureRoot != "" {
		dir := filepath.Join(l.FixtureRoot, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir
		}
	}
	return ""
}

// Import implements types.Importer, resolving module and fixture imports
// through the loader itself and everything else through the stdlib source
// importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg.Types, nil
	}
	if dir := l.dirFor(path); dir != "" {
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks the package at dir under the given import
// path, memoized per path.
func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: path, Dir: dir}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(name, "_test.go") {
			pkg.TestFiles = append(pkg.TestFiles, f)
		} else {
			pkg.Files = append(pkg.Files, f)
		}
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	pkg.Types, err = conf.Check(path, l.Fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// ExpandPatterns resolves package patterns relative to the module root:
// "./..." (or any path ending in "/...") walks directories recursively,
// anything else names a single package directory. Directories named testdata
// and hidden directories are skipped, as are directories with no non-test Go
// files. The result is sorted by directory for deterministic lint output.
func (l *Loader) ExpandPatterns(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		base, rec := strings.CutSuffix(pat, "...")
		base = strings.TrimSuffix(base, "/")
		if base == "" || base == "." {
			base = l.ModRoot
		} else if !filepath.IsAbs(base) {
			base = filepath.Join(l.ModRoot, base)
		}
		if !rec {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
				add(filepath.Dir(p))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
