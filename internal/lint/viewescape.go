package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ViewEscape flags zero-copy CSR views escaping into long-lived storage.
//
// graph.Graph.Neighbors / graph.Dual.ExtraNeighbors (and the hoisted CSR /
// ExtraCSR array pairs) return views into the graph's backing arrays. The
// documented contract (internal/graph/graph.go, Neighbors) is that a view is
// only as alive as the graph it came from — and under an epoch schedule the
// live graph changes at every Revision.Apply swap, so a view stashed in a
// struct field, package variable, composite literal or closure silently goes
// stale at the next epoch boundary.
//
// The analyzer reports a view-producing call (or a local variable directly
// assigned from one) when it is stored into a struct field, a package-level
// variable, a composite literal, or captured by a function literal. Passing
// views down the call stack, copying their contents (append(dst, view...)),
// and returning them to the caller are all fine — call-scoped use is the
// contract. Sites that re-hoist views deliberately and re-sync them at every
// epoch swap (the engine) carry //dglint:allow viewescape: <reason>.
//
// The graph package itself is exempt: the views are its own storage.
var ViewEscape = &Analyzer{
	Name: "viewescape",
	Doc:  "flag zero-copy graph views stored where they could outlive an epoch swap",
	Run:  runViewEscape,
}

// viewMethodNames are the view-returning accessors of the graph API. Row and
// Rows are the NeighborMasks accessors; BlockRow, Rows and Summaries are
// their block-sparse counterparts on SparseNeighborMasks: mask rows are
// per-graph storage with exactly the CSR views' lifetime, so a stashed row
// goes just as stale at an epoch swap.
var viewMethodNames = map[string]bool{
	"Neighbors":      true,
	"ExtraNeighbors": true,
	"CSR":            true,
	"ExtraCSR":       true,
	"Row":            true,
	"Rows":           true,
	"BlockRow":       true,
	"Summaries":      true,
}

func runViewEscape(pass *Pass) {
	if pass.Pkg.Name() == "graph" {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkViewEscapes(pass, n.Body)
				}
				return false
			}
			return true
		})
	}
}

// isViewCall reports whether e is a call to one of the graph view accessors.
func isViewCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !viewMethodNames[sel.Sel.Name] {
		return false
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	recv := selection.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	name := obj.Name()
	return (name == "Graph" || name == "Dual" || name == "NeighborMasks" ||
		name == "SparseNeighborMasks") &&
		obj.Pkg() != nil && obj.Pkg().Name() == "graph"
}

// checkViewEscapes analyzes one function body: first a taint pass over
// locals directly assigned from view calls, then a pass flagging escapes of
// view calls or tainted locals.
func checkViewEscapes(pass *Pass, body *ast.BlockStmt) {
	// Taint pass: x := net.Neighbors(u), offs, adj := g.CSR().
	tainted := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || !isViewCall(pass, as.Rhs[0]) {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			var obj types.Object
			if as.Tok == token.DEFINE {
				obj = pass.TypesInfo.Defs[id]
			} else {
				obj = pass.TypesInfo.Uses[id]
			}
			// Only plain local variables taint; stores to fields and package
			// vars are flagged directly by the escape pass below.
			if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Parent() != pass.Pkg.Scope() {
				tainted[obj] = true
			}
		}
		return true
	})

	viewLike := func(e ast.Expr) bool {
		if isViewCall(pass, e) {
			return true
		}
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			return tainted[pass.TypesInfo.Uses[id]]
		}
		return false
	}

	// Escape pass.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkViewAssign(pass, n, viewLike)
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if viewLike(v) {
					pass.Reportf(v.Pos(), "zero-copy graph view stored in a composite literal can outlive an epoch swap; copy it instead")
				}
			}
		case *ast.FuncLit:
			// A closure capturing a tainted local can run long after the
			// epoch that produced the view.
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && tainted[pass.TypesInfo.Uses[id]] {
					pass.Reportf(id.Pos(), "zero-copy graph view %s captured by a closure can outlive an epoch swap; copy it or pass it as a parameter", id.Name)
				}
				return true
			})
			return false
		}
		return true
	})
}

// checkViewAssign flags view values assigned to struct fields or package
// variables. Tuple assignment from a single CSR() call checks every LHS.
func checkViewAssign(pass *Pass, as *ast.AssignStmt, viewLike func(ast.Expr) bool) {
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else {
			rhs = as.Rhs[0]
		}
		if !viewLike(rhs) {
			continue
		}
		switch l := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			// Field store (or qualified package var).
			pass.Reportf(as.Pos(), "zero-copy graph view stored in %s can outlive an epoch swap; re-hoist it at every swap or copy it", exprString(l))
		case *ast.Ident:
			if obj, ok := pass.TypesInfo.Uses[l].(*types.Var); ok && obj.Parent() == pass.Pkg.Scope() {
				pass.Reportf(as.Pos(), "zero-copy graph view stored in package variable %s outlives every epoch swap", l.Name)
			}
		}
	}
}
