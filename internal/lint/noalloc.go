package lint

import (
	"go/ast"
	"strings"
)

// NoAlloc pairs allocation-free hot-path annotations with their runtime
// gates.
//
// The engine's hot paths (round delivery, epoch swap, the adversary view
// restamp) carry hard-won allocation budgets — 3–6 allocs per trial, pinned
// in BENCH_pr2/pr5. A static analyzer cannot prove Go code allocation-free,
// but it can make the runtime proof un-skippable: every function annotated
//
//	//dglint:noalloc gate=<TestName>
//
// must name a Test function in the same package's _test.go files whose body
// calls testing.AllocsPerRun. The annotation documents the budget at the
// definition site; the gate turns a regression into a failing test instead
// of an advisory JSON delta; and this analyzer fails the build when either
// side of the pair goes missing — an annotation without a live gate, a gate
// without AllocsPerRun, or a directive detached from any function.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "require //dglint:noalloc hot paths to be pinned by a testing.AllocsPerRun gate",
	Run:  runNoAlloc,
}

func runNoAlloc(pass *Pass) {
	// Gates available in the package directory's test files (both the
	// internal and external _test packages), by name.
	gates := make(map[string]*ast.FuncDecl)
	for _, f := range pass.TestFiles {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil {
				gates[fd.Name.Name] = fd
			}
		}
	}

	for _, f := range pass.Files {
		// Doc comment groups legitimately carrying a noalloc directive; any
		// other comment group containing one is misplaced.
		attached := make(map[*ast.CommentGroup]bool)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			d, ok := findDirective(dirNoalloc, fd.Doc)
			if !ok {
				continue
			}
			attached[fd.Doc] = true
			checkNoAllocPair(pass, fd, d, gates)
		}
		for _, g := range f.Comments {
			if attached[g] {
				continue
			}
			if d, ok := findDirective(dirNoalloc, g); ok {
				pass.Reportf(d.pos, "//dglint:noalloc must be in the doc comment of the function it pins")
			}
		}
	}
}

func checkNoAllocPair(pass *Pass, fd *ast.FuncDecl, d directive, gates map[string]*ast.FuncDecl) {
	gate, ok := strings.CutPrefix(d.args, "gate=")
	gate = strings.TrimSpace(gate)
	if !ok || gate == "" {
		pass.Reportf(d.pos, `malformed //dglint:noalloc: want "//dglint:noalloc gate=<TestName>"`)
		return
	}
	if !strings.HasPrefix(gate, "Test") {
		pass.Reportf(d.pos, "noalloc gate %s is not a Test function: only tests fail CI, benchmarks are advisory", gate)
		return
	}
	gd, ok := gates[gate]
	if !ok {
		pass.Reportf(d.pos, "noalloc gate %s for %s not found in this package's _test.go files", gate, fd.Name.Name)
		return
	}
	if !callsAllocsPerRun(gd) {
		pass.Reportf(d.pos, "noalloc gate %s never calls testing.AllocsPerRun, so it pins nothing", gate)
	}
}

// callsAllocsPerRun reports whether the test function's body contains a call
// to testing.AllocsPerRun. Test files are parsed but not type-checked (they
// may belong to the external _test package), so the match is syntactic.
func callsAllocsPerRun(fd *ast.FuncDecl) bool {
	if fd.Body == nil {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "AllocsPerRun" {
			found = true
		}
		return !found
	})
	return found
}
