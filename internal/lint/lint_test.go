package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// The four analyzers against their positive/negative fixtures. Each fixture
// package contains both firing sites (asserted by // want comments) and
// blessed idioms that must stay silent.

func TestDetRandFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/detrand", lint.DetRand)
}

func TestViewEscapeFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/viewescape", lint.ViewEscape)
}

func TestScratchResetFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/scratchreset", lint.ScratchReset)
}

func TestNoAllocFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/noalloc", lint.NoAlloc)
}

// TestServiceScopeFixture covers the //dglint:service package directive: a
// well-formed directive in the package doc silences detrand entirely (the
// fixture reads the wall clock and folds a map with zero want comments).
func TestServiceScopeFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/servicepkg", lint.DetRand)
}

// TestServiceScopeMalformed pins the failure modes: a reasonless directive
// and a directive outside the package doc are both findings, and neither
// grants the exemption — the detrand sites in the fixture still fire.
func TestServiceScopeMalformed(t *testing.T) {
	linttest.Run(t, "testdata/src/servicebad", lint.DetRand)
}
