package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// The four analyzers against their positive/negative fixtures. Each fixture
// package contains both firing sites (asserted by // want comments) and
// blessed idioms that must stay silent.

func TestDetRandFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/detrand", lint.DetRand)
}

func TestViewEscapeFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/viewescape", lint.ViewEscape)
}

func TestScratchResetFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/scratchreset", lint.ScratchReset)
}

func TestNoAllocFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/noalloc", lint.NoAlloc)
}
