package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ScratchReset checks that pooled structs are fully reset between uses.
//
// A struct marked //dglint:pooled cycles through a pool (the engine scratch,
// the process arena slabs) and is observed by the next trial in whatever
// state the previous one left it. The invariant that keeps pooling
// observationally identical to fresh allocation is that the reset path
// touches every field: either clearing it, rebuilding it, or deliberately
// carrying it (memoized caches, identity keys) — in which case the field is
// annotated //dglint:allow scratchreset: <reason> and the reason documents
// why carrying is sound.
//
// The directive names the reset roots:
//
//	//dglint:pooled reset=<name>[,<name>...]
//
// where each name is a method of the struct, a package-level function, or
// Type.Method within the package (the factory pattern: DecayGlobal's
// ResetProcesses resets decayGlobalProc). The default is reset=Reset. A
// field counts as touched when any root — or any same-package function a
// root transitively calls — selects it on a value of the struct type, or
// builds a composite literal of the struct type (a literal constructs a
// complete value: keys absent from *p = T{a: 1} are zeroed, not carried).
// Adding a field without wiring it into a reset root (or annotating it) is
// a lint failure, which turns the cross-trial heisenbug class into a build
// break.
var ScratchReset = &Analyzer{
	Name: "scratchreset",
	Doc:  "require every field of a //dglint:pooled struct to be covered by its reset path",
	Run:  runScratchReset,
}

func runScratchReset(pass *Pass) {
	decls := packageFuncDecls(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				d, ok := findDirective(dirPooled, ts.Doc, ts.Comment, gd.Doc)
				if !ok {
					continue
				}
				checkPooled(pass, ts, d, decls)
			}
		}
	}
}

// packageFuncDecls maps each function object of the package to its
// declaration, for call-graph walks.
func packageFuncDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	m := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					m[fn] = fd
				}
			}
		}
	}
	return m
}

func checkPooled(pass *Pass, ts *ast.TypeSpec, d directive, decls map[*types.Func]*ast.FuncDecl) {
	obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		pass.Reportf(d.pos, "//dglint:pooled on non-named type %s", ts.Name.Name)
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		pass.Reportf(d.pos, "//dglint:pooled on non-struct type %s", ts.Name.Name)
		return
	}

	// Parse reset=a,b and resolve each root.
	resetNames := []string{"Reset"}
	if d.args != "" {
		val, ok := strings.CutPrefix(d.args, "reset=")
		if !ok {
			pass.Reportf(d.pos, `malformed //dglint:pooled: want "//dglint:pooled reset=<name>[,<name>...]"`)
			return
		}
		resetNames = strings.Split(val, ",")
	}
	var roots []*ast.FuncDecl
	for _, name := range resetNames {
		fn := resolveResetRoot(pass, named, strings.TrimSpace(name))
		if fn == nil {
			pass.Reportf(d.pos, "pooled struct %s: reset root %q not found in package %s", ts.Name.Name, name, pass.Pkg.Name())
			continue
		}
		fd, ok := decls[fn]
		if !ok {
			pass.Reportf(d.pos, "pooled struct %s: reset root %q has no body in this package", ts.Name.Name, name)
			continue
		}
		roots = append(roots, fd)
	}
	if len(roots) == 0 {
		return
	}

	// Canonical field objects of the struct.
	fieldObjs := make(map[*types.Var]bool, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		fieldObjs[st.Field(i)] = true
	}

	// Closure over the package call graph from the reset roots, unioning the
	// fields each reachable function touches.
	touched := make(map[*types.Var]bool)
	seen := make(map[*ast.FuncDecl]bool)
	queue := append([]*ast.FuncDecl(nil), roots...)
	for len(queue) > 0 {
		fd := queue[0]
		queue = queue[1:]
		if seen[fd] {
			continue
		}
		seen[fd] = true
		collectTouched(pass, fd, named, fieldObjs, touched)
		for _, callee := range callees(pass, fd, decls) {
			if !seen[callee] {
				queue = append(queue, callee)
			}
		}
	}

	// Report unreset, unannotated fields at their declarations.
	structType, ok := ts.Type.(*ast.StructType)
	if !ok {
		return
	}
	for _, field := range structType.Fields.List {
		if _, allowed := fieldAllow(pass, field); allowed {
			continue
		}
		if len(field.Names) == 0 {
			// Embedded field: its implicit name is the base type name.
			if fv := fieldNamed(st, embeddedName(field.Type)); fv != nil && !touched[fv] {
				pass.Reportf(field.Pos(), "embedded field %s of pooled struct %s is not touched by %s", fv.Name(), ts.Name.Name, strings.Join(resetNames, "/"))
			}
			continue
		}
		for _, name := range field.Names {
			fv, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if !ok || touched[fv] {
				continue
			}
			pass.Reportf(name.Pos(), "field %s of pooled struct %s is not touched by %s (reset it, or annotate //dglint:allow scratchreset: <why carrying it is sound>)",
				name.Name, ts.Name.Name, strings.Join(resetNames, "/"))
		}
	}
}

// fieldAllow reports whether the field carries a scratchreset allow
// directive on its doc or line comment.
func fieldAllow(pass *Pass, field *ast.Field) (reason string, ok bool) {
	for _, g := range []*ast.CommentGroup{field.Doc, field.Comment} {
		for _, d := range directivesIn(g) {
			if d.kind != dirAllow {
				continue
			}
			analyzer, reason, ok := parseAllow(d.args)
			if ok && analyzer == "scratchreset" {
				return reason, true
			}
		}
	}
	return "", false
}

// embeddedName returns the implicit field name of an embedded field type
// expression (T, *T, pkg.T, *pkg.T).
func embeddedName(e ast.Expr) string {
	switch t := ast.Unparen(e).(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return embeddedName(t.X)
	case *ast.SelectorExpr:
		return t.Sel.Name
	}
	return ""
}

// fieldNamed finds the struct field with the given name, or nil.
func fieldNamed(st *types.Struct, name string) *types.Var {
	if name == "" {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Name() == name {
			return f
		}
	}
	return nil
}

// resolveResetRoot resolves a reset root name: a method of the pooled type,
// a package-level function, or Type.Method in the same package.
func resolveResetRoot(pass *Pass, pooled *types.Named, name string) *types.Func {
	if typeName, methName, ok := strings.Cut(name, "."); ok {
		obj := pass.Pkg.Scope().Lookup(typeName)
		tn, ok := obj.(*types.TypeName)
		if !ok {
			return nil
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			return nil
		}
		return methodNamed(named, methName)
	}
	if m := methodNamed(pooled, name); m != nil {
		return m
	}
	if fn, ok := pass.Pkg.Scope().Lookup(name).(*types.Func); ok {
		return fn
	}
	return nil
}

func methodNamed(named *types.Named, name string) *types.Func {
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == name {
			return m
		}
	}
	return nil
}

// collectTouched records which fields of the pooled struct fd touches:
// field selections on values of the struct type, composite-literal keys, and
// whole-struct overwrites.
func collectTouched(pass *Pass, fd *ast.FuncDecl, pooled *types.Named, fieldObjs map[*types.Var]bool, touched map[*types.Var]bool) {
	if fd.Body == nil {
		return
	}
	isPooledType := func(t types.Type) bool {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		n, ok := t.(*types.Named)
		return ok && n.Obj() == pooled.Obj()
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			sel, ok := pass.TypesInfo.Selections[n]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			if fv, ok := sel.Obj().(*types.Var); ok && fieldObjs[fv] {
				touched[fv] = true
			}
		case *ast.CompositeLit:
			tv, ok := pass.TypesInfo.Types[n]
			if !ok || !isPooledType(tv.Type) {
				return true
			}
			// A composite literal always constructs a complete value: fields
			// absent from a keyed literal are zeroed, not carried. Every field
			// is therefore determined by the literal.
			for fv := range fieldObjs {
				touched[fv] = true
			}
		}
		return true
	})
}

// callees resolves the same-package functions and methods fd calls.
func callees(pass *Pass, fd *ast.FuncDecl, decls map[*types.Func]*ast.FuncDecl) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var fn *types.Func
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			fn, _ = pass.TypesInfo.Uses[fun].(*types.Func)
		case *ast.SelectorExpr:
			if sel, ok := pass.TypesInfo.Selections[fun]; ok && sel.Kind() == types.MethodVal {
				fn, _ = sel.Obj().(*types.Func)
			} else {
				fn, _ = pass.TypesInfo.Uses[fun.Sel].(*types.Func)
			}
		}
		if fn != nil {
			if decl, ok := decls[fn]; ok {
				out = append(out, decl)
			}
		}
		return true
	})
	return out
}
