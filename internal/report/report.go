// Package report renders experiment results for human and machine
// consumption — the one formatting path shared by every surface that prints
// a run. dgbench and dgserved both delegate here, which is what makes the
// service's result endpoint byte-identical to `dgbench -all -markdown`: the
// invariant is structural (same code), not a convention two copies of the
// formatting logic have to keep honoring.
package report

import (
	"fmt"
	"io"
	"time"

	"repro/internal/experiments"
	"repro/internal/viz"
)

// Options selects the output format for one experiment result. The zero
// value is the default text format.
type Options struct {
	Markdown bool
	CSV      bool
	Plot     bool
	// Elapsed is printed in the default format when non-zero; batch modes
	// (-all, -merge, service results) omit it because experiments overlap on
	// the shared pool — and so the output stays byte-identical across worker
	// counts, shardings, and cache states.
	Elapsed time.Duration
}

// Result renders one experiment result in the selected format.
func Result(w io.Writer, res *experiments.Result, opts Options) {
	switch {
	case opts.Markdown:
		fmt.Fprintf(w, "### %s — %s\n\n", res.ID, res.Title)
		fmt.Fprintf(w, "Paper claim: %s\n\n```\n%s```\n\n", res.PaperClaim, res.Table)
		for _, n := range res.Notes {
			fmt.Fprintf(w, "- %s\n", n)
		}
		fmt.Fprintf(w, "\n")
	case opts.CSV:
		fmt.Fprintf(w, "# %s (%s)\n%s\n", res.ID, res.PaperClaim, res.Table.CSV())
	default:
		if opts.Elapsed > 0 {
			fmt.Fprintf(w, "=== %s — %s  [%v]\n", res.ID, res.Title, opts.Elapsed.Round(time.Millisecond))
		} else {
			fmt.Fprintf(w, "=== %s — %s\n", res.ID, res.Title)
		}
		fmt.Fprintf(w, "paper claim: %s\n\n%s\n", res.PaperClaim, res.Table)
		for _, n := range res.Notes {
			fmt.Fprintf(w, "  %s\n", n)
		}
		if opts.Plot && len(res.Series) > 0 {
			p := viz.NewPlot(56, 12)
			p.LogX, p.LogY = true, true
			for _, s := range res.Series {
				p.Add(viz.Series{Name: s.Name, X: s.X, Y: s.Y})
			}
			fmt.Fprintf(w, "\nscaling (log-log):\n%s", p.Render())
		}
		fmt.Fprintf(w, "\n")
	}
}

// Summary prints the run's verdict line and converts deviations into the
// caller's exit error, identically for every mode — which is what keeps
// merged, cached, and single-machine outputs byte-for-byte equal.
func Summary(w io.Writer, ran, failed int) error {
	fmt.Fprintf(w, "%d experiments run, %d matched the paper's claims, %d deviated\n", ran, ran-failed, failed)
	if failed > 0 {
		return fmt.Errorf("%d experiments deviated from the paper's claims", failed)
	}
	return nil
}

// Render writes the full multi-result report — every result in order, then
// the summary line — returning the deviation error Summary computes. This is
// the whole body of a service result response and of `dgbench -all` output
// minus the pool diagnostics line.
func Render(w io.Writer, results []*experiments.Result, opts Options) error {
	failed := 0
	for _, res := range results {
		if !res.Pass {
			failed++
		}
		Result(w, res, opts)
	}
	return Summary(w, len(results), failed)
}
