package runsvc

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"repro/internal/experiments"
	"repro/internal/shard"
)

// CacheSchemaVersion versions every content hash this package computes. Bump
// it when an experiment's semantics change without its task plan changing
// shape — every cache entry and run identity is invalidated at once, which
// is the only safe response to a silent meaning shift.
const CacheSchemaVersion = 1

// Hashes are computed over canonical JSON: Go marshals struct fields in
// declaration order and emits the shortest float representation, so the same
// payload produces the same bytes in every process on every platform. The
// payload structs below are the canonical forms — field order is part of the
// format, append-only.

// hashJSON is the one hashing primitive: sha256 over the canonical JSON
// encoding, hex-encoded.
func hashJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		// The payload structs contain only plain data; a marshal failure is a
		// programming error, not an input error.
		panic("runsvc: hashing unmarshalable payload: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

type runKeyPayload struct {
	Cache    int                    `json:"cache"`
	Schema   int                    `json:"schema"`
	Quick    bool                   `json:"quick"`
	Trials   int                    `json:"trials"`
	Seed     uint64                 `json:"seed"`
	Plan     []shard.ExperimentPlan `json:"plan"`
	Scenario *ScenarioSpec          `json:"scenario,omitempty"`
}

// RunKey is a run's identity: a content hash over the task plan, the
// output-affecting configuration, and the seed. Two submissions with the
// same key produce byte-identical output, so the service runs them once.
// Workers is deliberately absent — it changes wall clock, not output.
func RunKey(cfg experiments.Config, plan []shard.ExperimentPlan, scn *ScenarioSpec) string {
	return hashJSON(runKeyPayload{
		Cache:    CacheSchemaVersion,
		Schema:   shard.SchemaVersion,
		Quick:    cfg.Quick,
		Trials:   cfg.EffectiveTrials(),
		Seed:     cfg.BaseSeed,
		Plan:     plan,
		Scenario: scn,
	})
}

type expKeyPayload struct {
	Cache  int    `json:"cache"`
	Schema int    `json:"schema"`
	Quick  bool   `json:"quick"`
	Trials int    `json:"trials"`
	Seed   uint64 `json:"seed"`
	ID     string `json:"id"`
	Tasks  int    `json:"tasks"`
}

// ExperimentKey addresses one experiment's records in the result cache: a
// hash over the configuration that seeds its tasks plus the experiment's row
// of the plan. It is independent of which other experiments share the run —
// tasks are seeded per experiment, which is exactly what makes per-experiment
// caching sound — so overlapping submissions hit the same entries. A
// scenario experiment's ID embeds its spec's content hash (ScenarioID), so
// distinct scenarios key apart with no extra field here.
func ExperimentKey(cfg experiments.Config, p shard.ExperimentPlan) string {
	return hashJSON(expKeyPayload{
		Cache:  CacheSchemaVersion,
		Schema: shard.SchemaVersion,
		Quick:  cfg.Quick,
		Trials: cfg.EffectiveTrials(),
		Seed:   cfg.BaseSeed,
		ID:     p.ID,
		Tasks:  p.Tasks,
	})
}

type scenarioIDPayload struct {
	Cache    int          `json:"cache"`
	Scenario ScenarioSpec `json:"scenario"`
}

// ScenarioID derives a caller-defined scenario experiment's ID from its
// spec's content hash: "CUSTOM-churn-" plus 12 hex digits. The prefix keeps
// scenario experiments visually distinct from the registry; the hash keeps
// distinct specs from colliding in the cache and the run index.
func ScenarioID(sc ScenarioSpec) string {
	return "CUSTOM-churn-" + hashJSON(scenarioIDPayload{Cache: CacheSchemaVersion, Scenario: sc})[:12]
}

type specKeyPayload struct {
	Cache int  `json:"cache"`
	Spec  Spec `json:"spec"`
}

// specKey hashes a normalized spec with its plan-irrelevant fields (seed,
// workers) zeroed; the service memoizes task plans under it, so repeated
// submissions of the same selection skip re-running the declaration code.
func specKey(spec Spec) string {
	spec.Seed = 0
	spec.Workers = 0
	return hashJSON(specKeyPayload{Cache: CacheSchemaVersion, Spec: spec})
}
