package runsvc

import (
	"repro/internal/experiments"
)

// CatalogEntry is one experiment's machine-readable registry row: identity,
// claim, and the sweep shape (task count per configuration) the plan
// enumerates. `dgbench -list -json` and dgserved's /v1/experiments both emit
// exactly this.
type CatalogEntry struct {
	ID         string `json:"id"`
	Title      string `json:"title"`
	PaperClaim string `json:"paperClaim"`
	// Tasks is the number of (sweep-point × trial) tasks the experiment
	// declares under the queried configuration.
	Tasks int `json:"tasks"`
	// Trials is the effective per-point trial count of that configuration.
	Trials int `json:"trials"`
	// Quick reports which scale the counts describe.
	Quick bool `json:"quick"`
}

// Catalog enumerates the machine-readable registry under cfg: one entry per
// experiment, with task counts from the deterministic plan.
func Catalog(cfg experiments.Config, exps []experiments.Experiment) ([]CatalogEntry, error) {
	plan, err := experiments.PlanTasks(cfg, exps)
	if err != nil {
		return nil, err
	}
	out := make([]CatalogEntry, len(exps))
	for i, e := range exps {
		out[i] = CatalogEntry{
			ID:         e.ID,
			Title:      e.Title,
			PaperClaim: e.PaperClaim,
			Tasks:      plan[i].Tasks,
			Trials:     cfg.EffectiveTrials(),
			Quick:      cfg.Quick,
		}
	}
	return out, nil
}
