package runsvc

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/experiments"
)

// State is a run's lifecycle position. Transitions are strictly forward:
// Submitted → Planning → Executing → Merged | Failed.
type State string

const (
	StateSubmitted State = "submitted"
	StatePlanning  State = "planning"
	StateExecuting State = "executing"
	StateMerged    State = "merged"
	StateFailed    State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateMerged || s == StateFailed }

// Event is one timestamped entry of a run's event log, sequenced so stream
// consumers can resume from the last seq they saw.
type Event struct {
	Seq   int       `json:"seq"`
	Time  time.Time `json:"time"`
	State State     `json:"state"`
	Msg   string    `json:"msg,omitempty"`
}

// ExperimentStatus is one experiment's row of a run's status: its plan
// entry, its cache key, where its records came from, and its structured
// failure if the run failed there.
type ExperimentStatus struct {
	ID    string `json:"id"`
	Tasks int    `json:"tasks"`
	Key   string `json:"key"`
	// Source is "cache" or "executed" once the run reaches Executing.
	Source string `json:"source,omitempty"`
	Error  string `json:"error,omitempty"`
	// FailedTasks holds per-experiment task indices for trial-level
	// failures.
	FailedTasks []int `json:"failedTasks,omitempty"`
}

// RunStatus is a run's JSON-serializable snapshot.
type RunStatus struct {
	ID            string             `json:"id"`
	State         State              `json:"state"`
	Spec          Spec               `json:"spec"`
	Experiments   []ExperimentStatus `json:"experiments"`
	ExecutedTasks int                `json:"executedTasks"`
	CachedTasks   int                `json:"cachedTasks"`
	Error         string             `json:"error,omitempty"`
	Events        []Event            `json:"events"`
}

// Run is one submitted run moving through the lifecycle. All mutation goes
// through the service's execute goroutine; readers take snapshots (Status)
// or wait on the done/changed channels.
type Run struct {
	id   string
	spec Spec

	mu      sync.Mutex
	state   State
	events  []Event
	exps    []ExperimentStatus
	results []*experiments.Result
	err     error
	// executed and cached count tasks by provenance for this run. Tests and
	// the CI smoke job assert cache behavior on these counters — "repeat
	// submission executes zero tasks" is a statement about executed, not
	// about timing.
	executed int
	cached   int
	// changed is closed and replaced on every status append, so streamers
	// can select on "something happened" against their request context.
	changed chan struct{}
	// done is closed exactly once, on the terminal transition.
	done chan struct{}
}

func newRun(id string, spec Spec, exps []ExperimentStatus) *Run {
	r := &Run{
		id:      id,
		spec:    spec,
		state:   StateSubmitted,
		exps:    exps,
		changed: make(chan struct{}),
		done:    make(chan struct{}),
	}
	r.events = append(r.events, Event{Seq: 0, Time: time.Now(), State: StateSubmitted})
	return r
}

// ID returns the run's content-hash identity.
func (r *Run) ID() string { return r.id }

// Spec returns the normalized spec the run was submitted with.
func (r *Run) Spec() Spec { return r.spec }

// State returns the current lifecycle state.
func (r *Run) State() State {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// Done returns a channel closed when the run reaches a terminal state.
func (r *Run) Done() <-chan struct{} { return r.done }

// Err returns the run's failure (a *RunError for structured experiment
// failures), or nil.
func (r *Run) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Results returns the merged results in experiment order. It errors until
// the run reaches Merged.
func (r *Run) Results() ([]*experiments.Result, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch r.state {
	case StateMerged:
		return r.results, nil
	case StateFailed:
		return nil, r.err
	default:
		return nil, fmt.Errorf("runsvc: run %s is %s, results exist only once merged", r.id, r.state)
	}
}

// ExecutedTasks reports how many tasks this run actually executed.
func (r *Run) ExecutedTasks() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.executed
}

// CachedTasks reports how many tasks this run served from the cache.
func (r *Run) CachedTasks() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cached
}

// Status snapshots the run.
func (r *Run) Status() RunStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.statusLocked()
}

func (r *Run) statusLocked() RunStatus {
	st := RunStatus{
		ID:            r.id,
		State:         r.state,
		Spec:          r.spec,
		Experiments:   append([]ExperimentStatus(nil), r.exps...),
		ExecutedTasks: r.executed,
		CachedTasks:   r.cached,
		Events:        append([]Event(nil), r.events...),
	}
	if r.err != nil {
		st.Error = r.err.Error()
	}
	return st
}

// Watch snapshots the run and returns a channel closed at the next status
// change, for streaming consumers: snapshot, emit what's new, then select
// on the channel against the request context.
func (r *Run) Watch() (RunStatus, <-chan struct{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.statusLocked(), r.changed
}

// post appends an event — transitioning state when st is non-empty — and
// wakes watchers. Terminal states close done. Callers hold no lock.
func (r *Run) post(st State, msg string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.postLocked(st, msg)
}

func (r *Run) postLocked(st State, msg string) {
	if st != "" {
		r.state = st
	}
	r.events = append(r.events, Event{Seq: len(r.events), Time: time.Now(), State: r.state, Msg: msg})
	close(r.changed)
	r.changed = make(chan struct{})
	if r.state.Terminal() {
		close(r.done)
	}
}

// setSource stamps where an experiment's records came from.
func (r *Run) setSource(id, source string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.exps {
		if r.exps[i].ID == id {
			r.exps[i].Source = source
		}
	}
}

// addCached and addExecuted accumulate the provenance counters.
func (r *Run) addCached(n int)   { r.mu.Lock(); r.cached += n; r.mu.Unlock() }
func (r *Run) addExecuted(n int) { r.mu.Lock(); r.executed += n; r.mu.Unlock() }

// finish drives the terminal transition: Merged with results, or Failed
// with the error — stamping per-experiment statuses when the failure is a
// structured *RunError.
func (r *Run) finish(results []*experiments.Result, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err == nil {
		r.results = results
		r.postLocked(StateMerged, fmt.Sprintf("merged %d experiments", len(results)))
		return
	}
	r.err = err
	if rerr, ok := err.(*RunError); ok {
		for _, ee := range rerr.Experiments {
			for i := range r.exps {
				if r.exps[i].ID == ee.ID {
					r.exps[i].Error = ee.Err.Error()
					r.exps[i].FailedTasks = append([]int(nil), ee.Tasks...)
				}
			}
		}
	}
	r.postLocked(StateFailed, err.Error())
}
