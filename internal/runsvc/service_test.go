package runsvc

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/shard"
)

// countingRunner wraps the engine and counts what actually executes — the
// cache assertions in this file are statements about executed-task counters,
// never about timing. It can also stamp failures onto executed records, to
// drive the structured-error path through the real merge replay.
type countingRunner struct {
	mu        sync.Mutex
	planCalls int
	execCalls int
	executed  int
	// fail maps experiment ID → per-experiment task indices whose records
	// get an injected error before they reach the cache and the merge.
	fail map[string][]int
}

func (c *countingRunner) Plan(cfg experiments.Config, exps []experiments.Experiment) ([]shard.ExperimentPlan, error) {
	c.mu.Lock()
	c.planCalls++
	c.mu.Unlock()
	return experiments.PlanTasks(cfg, exps)
}

func (c *countingRunner) Execute(cfg experiments.Config, exps []experiments.Experiment, index, count int) (*shard.Artifact, error) {
	art, err := experiments.ExecuteShard(cfg, exps, index, count)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.execCalls++
	c.executed += len(art.Records)
	for i, rec := range art.Records {
		for _, idx := range c.fail[rec.Exp] {
			if rec.Index == idx {
				art.Records[i].Err = "injected fault"
			}
		}
	}
	c.mu.Unlock()
	return art, nil
}

func (c *countingRunner) Merge(cfg experiments.Config, exps []experiments.Experiment, m *shard.Merged) ([]*experiments.Result, []error) {
	return experiments.RunMerged(cfg, exps, m)
}

func (c *countingRunner) stats() (execCalls, executed int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.execCalls, c.executed
}

// testSpec selects two sub-10ms experiments so the service tests run the
// real engine end to end without owning the test budget.
func testSpec() Spec {
	return Spec{Experiments: []string{"CHURN-broadcast", "L3.2-hitting"}, Trials: 2}
}

func newTestService(t *testing.T, cacheDir string) (*Service, *countingRunner) {
	t.Helper()
	runner := &countingRunner{}
	svc, err := New(Options{Runner: runner, CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc, runner
}

// renderAll renders the full report the same way both frontends do.
func renderAll(t *testing.T, results []*experiments.Result, opts report.Options) string {
	t.Helper()
	var buf bytes.Buffer
	// The deviation error only reflects FAIL verdicts already in the bytes.
	_ = report.Render(&buf, results, opts)
	return buf.String()
}

func planTotal(st RunStatus) int {
	total := 0
	for _, e := range st.Experiments {
		total += e.Tasks
	}
	return total
}

// TestServiceColdRepeatAndCacheReload is the tentpole invariant end to end:
// a cold run executes the full plan; resubmitting to the same service
// returns the same run without touching the engine; a fresh service over the
// same cache directory serves the whole run from cache, executing zero
// tasks; and every path produces byte-identical rendered output.
func TestServiceColdRepeatAndCacheReload(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite")
	}
	dir := t.TempDir()
	svc, runner := newTestService(t, dir)

	run, existing, err := svc.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if existing {
		t.Fatal("first submission reported existing")
	}
	<-run.Done()
	if run.State() != StateMerged {
		t.Fatalf("run state %s: %v", run.State(), run.Err())
	}
	st := run.Status()
	total := planTotal(st)
	if total == 0 {
		t.Fatal("plan counted zero tasks")
	}
	if run.ExecutedTasks() != total || run.CachedTasks() != 0 {
		t.Fatalf("cold run: executed %d, cached %d, want %d executed",
			run.ExecutedTasks(), run.CachedTasks(), total)
	}
	for _, e := range st.Experiments {
		if e.Source != "executed" {
			t.Errorf("cold run: experiment %s source %q, want executed", e.ID, e.Source)
		}
	}

	// Byte identity against the engine's own shared-pool runner.
	results, err := run.Results()
	if err != nil {
		t.Fatal(err)
	}
	rs, err := resolveSpec(testSpec(), svc.catalog)
	if err != nil {
		t.Fatal(err)
	}
	direct, errs := experiments.RunAll(rs.cfg, rs.exps)
	for i, e := range rs.exps {
		if errs[i] != nil {
			t.Fatalf("%s: %v", e.ID, errs[i])
		}
	}
	for _, opts := range []report.Options{{Markdown: true}, {CSV: true}, {}} {
		if got, want := renderAll(t, results, opts), renderAll(t, direct, opts); got != want {
			t.Fatalf("service output diverges from direct run (opts %+v):\n--- service:\n%s\n--- direct:\n%s", opts, got, want)
		}
	}

	// Repeat submission: same identity, same run, engine untouched.
	again, existing, err := svc.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !existing || again != run {
		t.Fatal("repeat submission did not dedupe to the existing run")
	}
	// Workers changes wall clock only, so it dedupes too.
	withWorkers := testSpec()
	withWorkers.Workers = 1
	again, existing, err = svc.Submit(withWorkers)
	if err != nil {
		t.Fatal(err)
	}
	if !existing || again != run {
		t.Fatal("workers-only variation did not dedupe to the existing run")
	}
	if calls, _ := runner.stats(); calls != 1 {
		t.Fatalf("engine executed %d times across three submissions, want 1", calls)
	}

	// Fresh service, same cache directory: zero executed tasks, and the
	// rendered result is still byte-identical to the cold run's.
	svc2, runner2 := newTestService(t, dir)
	run2, err := svc2.RunSync(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if run2.ExecutedTasks() != 0 || run2.CachedTasks() != total {
		t.Fatalf("cache reload: executed %d, cached %d, want 0 executed / %d cached",
			run2.ExecutedTasks(), run2.CachedTasks(), total)
	}
	if calls, executed := runner2.stats(); calls != 0 || executed != 0 {
		t.Fatalf("cache reload touched the engine: %d calls, %d tasks", calls, executed)
	}
	results2, err := run2.Results()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderAll(t, results2, report.Options{Markdown: true}), renderAll(t, results, report.Options{Markdown: true}); got != want {
		t.Fatalf("cache-served output diverges from cold run:\n--- cached:\n%s\n--- cold:\n%s", got, want)
	}
}

// TestServiceDeltaExecution: an overlapping submission reuses cached
// experiments and executes only the delta.
func TestServiceDeltaExecution(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite")
	}
	svc, runner := newTestService(t, t.TempDir())

	small := Spec{Experiments: []string{"CHURN-broadcast"}, Trials: 2}
	run1, err := svc.RunSync(small)
	if err != nil {
		t.Fatal(err)
	}
	churnTasks := run1.ExecutedTasks()
	if churnTasks == 0 {
		t.Fatal("first run executed zero tasks")
	}

	run2, err := svc.RunSync(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	total := planTotal(run2.Status())
	if run2.CachedTasks() != churnTasks {
		t.Errorf("overlap run cached %d tasks, want %d (CHURN-broadcast's)", run2.CachedTasks(), churnTasks)
	}
	if run2.ExecutedTasks() != total-churnTasks {
		t.Errorf("overlap run executed %d tasks, want only the %d-task delta", run2.ExecutedTasks(), total-churnTasks)
	}
	for _, e := range run2.Status().Experiments {
		want := "executed"
		if e.ID == "CHURN-broadcast" {
			want = "cache"
		}
		if e.Source != want {
			t.Errorf("experiment %s source %q, want %q", e.ID, e.Source, want)
		}
	}
	if _, executed := runner.stats(); executed != total {
		t.Errorf("engine executed %d tasks across both runs, want %d (no re-execution)", executed, total)
	}

	// The stitched (cache + delta) result is byte-identical to a cold run.
	results, err := run2.Results()
	if err != nil {
		t.Fatal(err)
	}
	rs, err := resolveSpec(testSpec(), svc.catalog)
	if err != nil {
		t.Fatal(err)
	}
	direct, errs := experiments.RunAll(rs.cfg, rs.exps)
	for i := range errs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
	}
	if got, want := renderAll(t, results, report.Options{Markdown: true}), renderAll(t, direct, report.Options{Markdown: true}); got != want {
		t.Fatalf("stitched output diverges from cold run:\n--- stitched:\n%s\n--- cold:\n%s", got, want)
	}
}

// TestServiceStructuredErrors drives a partial failure through the real
// merge replay and asserts the run keeps full context: which experiment
// failed, at which per-experiment task indices — not just the first error
// string observed.
func TestServiceStructuredErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite")
	}
	runner := &countingRunner{fail: map[string][]int{"CHURN-broadcast": {2}}}
	svc, err := New(Options{Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	run, err := svc.RunSync(testSpec())
	if err == nil {
		t.Fatal("run with injected fault reported success")
	}
	if run.State() != StateFailed {
		t.Fatalf("run state %s, want failed", run.State())
	}
	var rerr *RunError
	if !errors.As(err, &rerr) {
		t.Fatalf("run error %T is not a *RunError: %v", err, err)
	}
	if len(rerr.Experiments) != 1 {
		t.Fatalf("structured error names %d experiments, want 1: %v", len(rerr.Experiments), rerr)
	}
	ee := rerr.Experiments[0]
	if ee.ID != "CHURN-broadcast" {
		t.Errorf("failed experiment %s, want CHURN-broadcast", ee.ID)
	}
	if !reflect.DeepEqual(ee.Tasks, []int{2}) {
		t.Errorf("failed task indices %v, want [2] (per-experiment frame)", ee.Tasks)
	}
	if !strings.Contains(ee.Err.Error(), "injected fault") {
		t.Errorf("experiment error lost the cause: %v", ee.Err)
	}

	// The status surface carries the same structure.
	var failedStatus *ExperimentStatus
	for i, e := range run.Status().Experiments {
		if e.ID == "CHURN-broadcast" {
			failedStatus = &run.Status().Experiments[i]
		} else if e.Error != "" {
			t.Errorf("healthy experiment %s carries error %q", e.ID, e.Error)
		}
	}
	if failedStatus == nil || !reflect.DeepEqual(failedStatus.FailedTasks, []int{2}) || failedStatus.Error == "" {
		t.Errorf("status lacks structured failure: %+v", failedStatus)
	}
	if _, err := run.Results(); err == nil {
		t.Error("failed run served results")
	}
}

// TestServiceScenarioSubmission: a serialized churn scenario round-trips
// into a runnable experiment with a content-derived identity, and a distinct
// scenario gets a distinct run.
func TestServiceScenarioSubmission(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite")
	}
	svc, _ := newTestService(t, "")
	spec := Spec{
		Trials:   2,
		Scenario: &ScenarioSpec{Side: 3, Seed: 5, Gen: scenario.GenConfig{Epochs: 1, EpochLen: 8, Leaves: 1}},
	}
	run, err := svc.RunSync(spec)
	if err != nil {
		t.Fatal(err)
	}
	results, err := run.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || !strings.HasPrefix(results[0].ID, "CUSTOM-churn-") {
		t.Fatalf("scenario run produced %+v", results)
	}
	if rows := results[0].Table.String(); !strings.Contains(rows, "static") || !strings.Contains(rows, "churn") {
		t.Errorf("scenario table lacks static/churn rows:\n%s", rows)
	}

	other := spec
	gen := other.Scenario.Gen
	gen.Leaves = 2
	other.Scenario = &ScenarioSpec{Side: 3, Seed: 5, Gen: gen}
	run2, existing, err := svc.Submit(other)
	if err != nil {
		t.Fatal(err)
	}
	if existing || run2.ID() == run.ID() {
		t.Error("distinct scenarios share a run identity")
	}
	<-run2.Done()
}

// TestServicePlanMemoization: repeated submissions of the same selection
// (even at different seeds) re-enumerate the plan at most once.
func TestServicePlanMemoization(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite")
	}
	svc, runner := newTestService(t, "")
	if _, err := svc.RunSync(testSpec()); err != nil {
		t.Fatal(err)
	}
	seeded := testSpec()
	seeded.Seed = 99
	if _, err := svc.RunSync(seeded); err != nil {
		t.Fatal(err)
	}
	runner.mu.Lock()
	calls := runner.planCalls
	runner.mu.Unlock()
	if calls != 1 {
		t.Errorf("plan enumerated %d times for one selection, want 1", calls)
	}
}

// TestCacheRejectsMismatches: an entry only serves the exact configuration
// it was written under.
func TestCacheRejectsMismatches(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := experiments.Config{Quick: true, Trials: 2, BaseSeed: 3}
	p := shard.ExperimentPlan{ID: "X", Tasks: 2}
	recs := []shard.TaskRecord{
		{Exp: "X", Index: 0, Vals: []float64{1, 1}},
		{Exp: "X", Index: 1, Vals: []float64{2, 1}},
	}
	key := ExperimentKey(cfg, p)
	if err := cache.Put(key, cfg, p, recs); err != nil {
		t.Fatal(err)
	}
	if got, ok := cache.Get(key, cfg, p); !ok || len(got) != 2 {
		t.Fatalf("round trip failed: %v %v", got, ok)
	}
	other := cfg
	other.BaseSeed = 4
	if _, ok := cache.Get(key, other, p); ok {
		t.Error("entry served under a different seed")
	}
	if _, ok := cache.Get(key, cfg, shard.ExperimentPlan{ID: "X", Tasks: 3}); ok {
		t.Error("entry served under a different plan row")
	}
	if _, ok := cache.Get("absent", cfg, p); ok {
		t.Error("missing entry served")
	}
	// Incomplete records must fail Put's tiling validation, not poison the
	// cache for a later Get.
	if err := cache.Put("partial", cfg, p, recs[:1]); err == nil {
		if _, ok := cache.Get("partial", cfg, p); ok {
			t.Error("partial entry served as complete")
		}
	}
	// A nil cache is a valid always-miss cache.
	var nilCache *Cache
	if _, ok := nilCache.Get(key, cfg, p); ok {
		t.Error("nil cache claimed a hit")
	}
	if err := nilCache.Put(key, cfg, p, recs); err != nil {
		t.Errorf("nil cache Put errored: %v", err)
	}
}

// TestNewRunErrorStructure: the merge phase's aligned error slice becomes a
// structured RunError, TrialError indices surfacing as per-experiment task
// coordinates.
func TestNewRunErrorStructure(t *testing.T) {
	exps := []experiments.Experiment{{ID: "A"}, {ID: "B"}, {ID: "C"}}
	te := &experiments.TrialError{Failed: []int{2, 5}, Errs: []error{errors.New("boom"), errors.New("boom")}}
	rerr := newRunError(exps, []error{nil, te, errors.New("plain failure")})
	if rerr == nil || len(rerr.Experiments) != 2 {
		t.Fatalf("rerr = %+v, want 2 experiment errors", rerr)
	}
	if rerr.Experiments[0].ID != "B" || !reflect.DeepEqual(rerr.Experiments[0].Tasks, []int{2, 5}) {
		t.Errorf("TrialError not structured: %+v", rerr.Experiments[0])
	}
	if rerr.Experiments[1].ID != "C" || rerr.Experiments[1].Tasks != nil {
		t.Errorf("plain error mis-structured: %+v", rerr.Experiments[1])
	}
	if !errors.Is(rerr, te) {
		t.Error("RunError does not unwrap to the underlying TrialError")
	}
	if msg := rerr.Error(); !strings.Contains(msg, "B (tasks [2 5])") || !strings.Contains(msg, "C:") {
		t.Errorf("message lost structure: %q", msg)
	}
	if newRunError(exps, []error{nil, nil, nil}) != nil {
		t.Error("all-nil errors produced a RunError")
	}
}

// TestRunEventLog: the state machine's event log is sequenced and walks the
// lifecycle in order.
func TestRunEventLog(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite")
	}
	svc, _ := newTestService(t, "")
	run, err := svc.RunSync(Spec{Experiments: []string{"L3.2-hitting"}, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	events := run.Status().Events
	var states []State
	for i, e := range events {
		if e.Seq != i {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
		if len(states) == 0 || states[len(states)-1] != e.State {
			states = append(states, e.State)
		}
	}
	want := []State{StateSubmitted, StatePlanning, StateExecuting, StateMerged}
	if !reflect.DeepEqual(states, want) {
		t.Errorf("lifecycle states %v, want %v", states, want)
	}
}
