// Package runsvc is the service-shaped experiment core: it owns the run
// lifecycle as an explicit state machine (Submitted → Planning → Executing →
// Merged/Failed) over the deterministic plan/execute/merge engine in
// internal/experiments, and layers a content-addressed result cache on top.
//
// A run begins as a Spec — a fully serializable description of an experiment
// selection plus configuration, including caller-submitted churn scenarios —
// and is identified by a content hash over (task plan, configuration, seed):
// identical submissions share one run, no matter which frontend they arrive
// through. Results are cached per experiment in internal/shard's artifact
// format, so an overlapping submission reuses every cached experiment and
// executes only the delta; because aggregation replays from raw task records
// either way, a cache-served result is byte-identical to a cold run.
//
// Both frontends sit on this package: cmd/dgserved exposes the lifecycle
// over HTTP, and cmd/dgbench drives the same Service in-process.
//
// This is service code, not simulation code: event timestamps read the wall
// clock and run bookkeeping is request-ordered. Every simulation output the
// package produces goes through the deterministic plan/execute/merge engine
// in internal/experiments, which stays under the determinism gates — hence
// the scoped dglint exemption below.
//
//dglint:service daemon run lifecycle; simulation output is produced by the deterministic engine in internal/experiments
package runsvc
