package runsvc

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

// Spec is a serialized run request: the experiment selection plus every
// configuration knob that affects the output. It round-trips through JSON
// (ParseSpec rejects unknown fields), and its resolved form is what the
// content hashes are computed over, so a spec file is a complete, replayable
// description of a run.
type Spec struct {
	// Experiments selects registered experiments by exact ID. Empty means
	// every registered experiment (unless Scenario alone is submitted, which
	// runs just the scenario). Resolution sorts and deduplicates.
	Experiments []string `json:"experiments,omitempty"`
	// Full selects full-scale sweeps; the default is the quick scale.
	Full bool `json:"full,omitempty"`
	// Trials is the per-point trial count; 0 means the scale default and is
	// normalized to it, so an explicit default and an omitted one describe —
	// and cache as — the same run.
	Trials int `json:"trials,omitempty"`
	// Seed is the base seed offset.
	Seed uint64 `json:"seed,omitempty"`
	// Workers bounds the worker pool. It changes wall clock, never output,
	// and is therefore excluded from every content hash.
	Workers int `json:"workers,omitempty"`
	// Scenario, when set, adds one caller-defined churn experiment built
	// from the serialized generator config (experiments.CustomChurn).
	Scenario *ScenarioSpec `json:"scenario,omitempty"`
}

// ScenarioSpec serializes a caller-defined churn scenario: decay broadcast
// on a Side×Side geographic grid under the churn timeline Gen generates from
// Seed. The experiment's identity is the whole spec — its ID embeds a
// content hash of this struct, so distinct scenarios never collide in the
// result cache.
type ScenarioSpec struct {
	// Side is the grid side; the network has Side² nodes.
	Side int `json:"side"`
	// Seed drives scenario generation (not trial seeding).
	Seed uint64 `json:"seed,omitempty"`
	// Gen is the churn generator config, serialized field-for-field.
	Gen scenario.GenConfig `json:"gen"`
}

// ParseSpec decodes one spec from JSON, rejecting unknown fields and
// trailing garbage: a typo'd knob must fail the submission, not silently run
// the default configuration.
func ParseSpec(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("runsvc: parsing spec: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("runsvc: parsing spec: trailing data after the spec object")
	}
	return s, nil
}

// resolved is a validated, normalized spec bound to runnable experiments.
type resolved struct {
	spec Spec
	cfg  experiments.Config
	exps []experiments.Experiment
}

// resolveSpec validates a spec against the catalog and normalizes it: the
// trial count becomes its effective value, the selection is sorted and
// deduplicated, and a scenario becomes a concrete experiment whose ID embeds
// the scenario's content hash. Every error names the field that failed.
func resolveSpec(spec Spec, catalog []experiments.Experiment) (resolved, error) {
	if spec.Trials < 0 {
		return resolved{}, fmt.Errorf("runsvc: trials must be >= 0, got %d", spec.Trials)
	}
	if spec.Workers < 0 {
		return resolved{}, fmt.Errorf("runsvc: workers must be >= 0, got %d", spec.Workers)
	}
	cfg := experiments.Config{
		Quick:    !spec.Full,
		Trials:   spec.Trials,
		BaseSeed: spec.Seed,
		Workers:  spec.Workers,
	}
	cfg.Trials = cfg.EffectiveTrials()
	spec.Trials = cfg.Trials

	byID := make(map[string]experiments.Experiment, len(catalog))
	for _, e := range catalog {
		byID[e.ID] = e
	}
	var sel []experiments.Experiment
	if len(spec.Experiments) > 0 {
		ids := append([]string(nil), spec.Experiments...)
		sort.Strings(ids)
		ids = dedupe(ids)
		for _, id := range ids {
			e, ok := byID[id]
			if !ok {
				return resolved{}, fmt.Errorf("runsvc: unknown experiment %q (IDs are exact; see the catalog)", id)
			}
			sel = append(sel, e)
		}
		spec.Experiments = ids
	} else if spec.Scenario == nil {
		sel = append(sel, catalog...)
	}
	if spec.Scenario != nil {
		sc := *spec.Scenario
		if sc.Side < 2 {
			return resolved{}, fmt.Errorf("runsvc: scenario side %d, need at least 2", sc.Side)
		}
		if len(sc.Gen.InjectSources) > 0 {
			return resolved{}, fmt.Errorf("runsvc: scenario runs global broadcast only; InjectSources is not supported")
		}
		if err := sc.Gen.Validate(sc.Side * sc.Side); err != nil {
			return resolved{}, fmt.Errorf("runsvc: scenario: %w", err)
		}
		sel = append(sel, experiments.CustomChurn(ScenarioID(sc), sc.Side, sc.Seed, sc.Gen))
	}
	if len(sel) == 0 {
		return resolved{}, fmt.Errorf("runsvc: spec selects no experiments")
	}
	sort.Slice(sel, func(i, j int) bool { return sel[i].ID < sel[j].ID })
	return resolved{spec: spec, cfg: cfg, exps: sel}, nil
}

func dedupe(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}
