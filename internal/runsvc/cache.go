package runsvc

import (
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/shard"
)

// Cache is the content-addressed result store: one file per
// (ExperimentKey → single-experiment shard artifact). Reusing the artifact
// schema buys the cache its validation for free — an entry is a shard 1/1
// whose records must tile its one-experiment plan exactly — and makes every
// entry readable by the same tooling that reads distributed-run shards.
//
// A nil *Cache is a valid always-miss cache, so callers never branch on
// whether caching is configured.
type Cache struct {
	dir string
}

// OpenCache opens (creating if needed) a cache directory.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Cache{dir: dir}, nil
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get loads the entry under key and validates it against the run the caller
// is assembling: schema version, full artifact validation, complete tiling
// of the one-experiment plan, and header equality with (cfg, p). Any
// mismatch — including a corrupt or truncated file — is a miss, never an
// error: the caller re-executes and overwrites.
func (c *Cache) Get(key string, cfg experiments.Config, p shard.ExperimentPlan) ([]shard.TaskRecord, bool) {
	if c == nil {
		return nil, false
	}
	a, err := shard.Read(c.path(key))
	if err != nil {
		return nil, false
	}
	m, err := shard.Merge([]*shard.Artifact{a})
	if err != nil {
		return nil, false
	}
	if m.BaseSeed != cfg.BaseSeed || m.Quick != cfg.Quick || m.Trials != cfg.EffectiveTrials() {
		return nil, false
	}
	if len(m.Plan) != 1 || m.Plan[0] != p {
		return nil, false
	}
	return m.Records(p.ID), true
}

// Put stores one experiment's complete record set under key, written as a
// canonical artifact (records sorted, so equal runs produce byte-identical
// entries) via a temp file + rename, so a crashed writer never leaves a
// half-entry a later Get could misread as a miss-shaped error.
func (c *Cache) Put(key string, cfg experiments.Config, p shard.ExperimentPlan, recs []shard.TaskRecord) error {
	if c == nil {
		return nil
	}
	a := &shard.Artifact{
		Version:  shard.SchemaVersion,
		Shard:    1,
		Shards:   1,
		BaseSeed: cfg.BaseSeed,
		Quick:    cfg.Quick,
		Trials:   cfg.EffectiveTrials(),
		Plan:     []shard.ExperimentPlan{p},
		Records:  recs,
	}
	f, err := os.CreateTemp(c.dir, key+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	f.Close()
	if err := shard.Write(tmp, a); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, c.path(key)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
