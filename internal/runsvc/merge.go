package runsvc

import (
	"repro/internal/experiments"
	"repro/internal/shard"
)

// The distributed-run façade: dgbench's -shard and -merge modes go through
// these so the command carries no lifecycle logic of its own — the engine's
// plan/execute/merge is reached from exactly one package.

// ExecuteShardSpec runs shard index (1-based) of count over the selection
// and returns the artifact to write.
func ExecuteShardSpec(cfg experiments.Config, exps []experiments.Experiment, index, count int) (*shard.Artifact, error) {
	return experiments.ExecuteShard(cfg, exps, index, count)
}

// MergeArtifacts validates that the artifacts tile one run's plan, replays
// the aggregation, and returns results aligned with the plan's experiments.
// Experiment failures come back as a structured *RunError carrying every
// failed experiment and its task indices.
func MergeArtifacts(arts []*shard.Artifact) ([]*experiments.Result, []experiments.Experiment, error) {
	m, err := shard.Merge(arts)
	if err != nil {
		return nil, nil, err
	}
	exps, err := experiments.MergedExperiments(m)
	if err != nil {
		return nil, nil, err
	}
	results, errs := experiments.RunMerged(experiments.ConfigFromMerged(m), exps, m)
	if rerr := newRunError(exps, errs); rerr != nil {
		return nil, exps, rerr
	}
	return results, exps, nil
}
