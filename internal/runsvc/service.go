package runsvc

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/experiments"
	"repro/internal/shard"
)

// Options configures a Service. The zero value is usable: engine runner,
// full registry, no cache, a small in-flight bound.
type Options struct {
	// Runner drives the lifecycle phases; nil means EngineRunner.
	Runner Runner
	// Catalog is the experiment registry submissions resolve against; nil
	// means experiments.All().
	Catalog []experiments.Experiment
	// CacheDir, when non-empty, enables the content-addressed result cache.
	CacheDir string
	// MaxInFlight bounds concurrently executing runs (default 2).
	// Submissions beyond the bound queue; they are never rejected.
	MaxInFlight int
}

// Service owns the run lifecycle: it resolves specs, derives content-hash
// identities, deduplicates submissions, partitions plans against the cache,
// executes deltas, and merges. One Service instance backs both frontends.
type Service struct {
	runner  Runner
	catalog []experiments.Experiment
	cache   *Cache
	sem     chan struct{}

	mu     sync.Mutex
	runs   map[string]*Run
	order  []string
	plans  map[string][]shard.ExperimentPlan
	closed bool
	wg     sync.WaitGroup
}

// New builds a Service.
func New(opts Options) (*Service, error) {
	runner := opts.Runner
	if runner == nil {
		runner = EngineRunner{}
	}
	catalog := opts.Catalog
	if catalog == nil {
		catalog = experiments.All()
	}
	var cache *Cache
	if opts.CacheDir != "" {
		var err error
		if cache, err = OpenCache(opts.CacheDir); err != nil {
			return nil, fmt.Errorf("runsvc: opening cache: %w", err)
		}
	}
	inflight := opts.MaxInFlight
	if inflight < 1 {
		inflight = 2
	}
	return &Service{
		runner:  runner,
		catalog: catalog,
		cache:   cache,
		sem:     make(chan struct{}, inflight),
		runs:    map[string]*Run{},
		plans:   map[string][]shard.ExperimentPlan{},
	}, nil
}

// Catalog returns the experiments submissions resolve against.
func (s *Service) Catalog() []experiments.Experiment {
	return append([]experiments.Experiment(nil), s.catalog...)
}

// Submit validates and normalizes the spec, computes the run's content-hash
// identity, and either returns the existing run under that identity
// (existing=true — the submission is a duplicate down to its output bytes)
// or starts a new one. Plan enumeration happens synchronously so the
// identity is known at return; plans are memoized per normalized selection.
func (s *Service) Submit(spec Spec) (run *Run, existing bool, err error) {
	rs, err := resolveSpec(spec, s.catalog)
	if err != nil {
		return nil, false, err
	}
	plan, err := s.planFor(rs)
	if err != nil {
		return nil, false, err
	}
	id := RunKey(rs.cfg, plan, rs.spec.Scenario)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, errors.New("runsvc: service is shut down")
	}
	if r, ok := s.runs[id]; ok {
		s.mu.Unlock()
		return r, true, nil
	}
	statuses := make([]ExperimentStatus, len(plan))
	for i, p := range plan {
		statuses[i] = ExperimentStatus{ID: p.ID, Tasks: p.Tasks, Key: ExperimentKey(rs.cfg, p)}
	}
	r := newRun(id, rs.spec, statuses)
	s.runs[id] = r
	s.order = append(s.order, id)
	s.wg.Add(1)
	s.mu.Unlock()

	go s.execute(r, rs, plan)
	return r, false, nil
}

// planFor returns the selection's task plan, memoized by normalized spec
// (seed and workers zeroed — they never change the plan). Plan enumeration
// runs every experiment's declaration code, which builds the sweep networks;
// memoizing it keeps repeat submissions cheap.
func (s *Service) planFor(rs resolved) ([]shard.ExperimentPlan, error) {
	key := specKey(rs.spec)
	s.mu.Lock()
	plan, ok := s.plans[key]
	s.mu.Unlock()
	if ok {
		return plan, nil
	}
	plan, err := s.runner.Plan(rs.cfg, rs.exps)
	if err != nil {
		return nil, fmt.Errorf("runsvc: planning: %w", err)
	}
	s.mu.Lock()
	s.plans[key] = plan
	s.mu.Unlock()
	return plan, nil
}

// execute drives one run through the lifecycle on its own goroutine,
// bounded by the in-flight semaphore.
func (s *Service) execute(r *Run, rs resolved, plan []shard.ExperimentPlan) {
	defer s.wg.Done()
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	total := 0
	for _, p := range plan {
		total += p.Tasks
	}
	r.post(StatePlanning, fmt.Sprintf("plan: %d experiments, %d tasks", len(plan), total))

	// Partition the plan against the cache: records for every hit, the
	// experiment delta for everything else.
	var (
		missing     []experiments.Experiment
		missingPlan []shard.ExperimentPlan
		records     []shard.TaskRecord
		cachedTasks int
	)
	for i, p := range plan {
		if recs, ok := s.cache.Get(ExperimentKey(rs.cfg, p), rs.cfg, p); ok {
			records = append(records, recs...)
			r.setSource(p.ID, "cache")
			cachedTasks += len(recs)
			continue
		}
		missing = append(missing, rs.exps[i])
		missingPlan = append(missingPlan, p)
	}
	r.addCached(cachedTasks)
	r.post(StateExecuting, fmt.Sprintf("cache: %d of %d tasks served; executing %d experiments", cachedTasks, total, len(missing)))

	if len(missing) > 0 {
		art, err := s.runner.Execute(rs.cfg, missing, 1, 1)
		if err != nil {
			r.finish(nil, fmt.Errorf("runsvc: executing: %w", err))
			return
		}
		byExp := make(map[string][]shard.TaskRecord, len(missingPlan))
		for _, rec := range art.Records {
			byExp[rec.Exp] = append(byExp[rec.Exp], rec)
		}
		for _, p := range missingPlan {
			if err := s.cache.Put(ExperimentKey(rs.cfg, p), rs.cfg, p, byExp[p.ID]); err != nil {
				// A failed write degrades the next run to a cold one; this
				// run's records are already in hand.
				r.post("", fmt.Sprintf("cache write failed for %s: %v", p.ID, err))
			}
			r.setSource(p.ID, "executed")
		}
		r.addExecuted(len(art.Records))
		records = append(records, art.Records...)
	}

	// Reassemble cached and fresh records into one validated merge — the
	// same validation shard files get — and replay aggregation.
	m, err := shard.NewMerged(rs.cfg.BaseSeed, rs.cfg.Quick, rs.cfg.EffectiveTrials(), plan, records)
	if err != nil {
		r.finish(nil, fmt.Errorf("runsvc: reassembling records: %w", err))
		return
	}
	results, errs := s.runner.Merge(rs.cfg, rs.exps, m)
	if rerr := newRunError(rs.exps, errs); rerr != nil {
		r.finish(nil, rerr)
		return
	}
	r.finish(results, nil)
}

// Get returns the run with the given identity.
func (s *Service) Get(id string) (*Run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	return r, ok
}

// Runs snapshots every run in submission order.
func (s *Service) Runs() []RunStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	runs := make([]*Run, len(ids))
	for i, id := range ids {
		runs[i] = s.runs[id]
	}
	s.mu.Unlock()
	out := make([]RunStatus, len(runs))
	for i, r := range runs {
		out[i] = r.Status()
	}
	return out
}

// RunSync submits and waits: the in-process frontend's path. The returned
// error is the submission or run failure; results come from run.Results.
func (s *Service) RunSync(spec Spec) (*Run, error) {
	r, _, err := s.Submit(spec)
	if err != nil {
		return nil, err
	}
	<-r.Done()
	return r, r.Err()
}

// Close stops accepting submissions and waits for in-flight runs to reach
// terminal states.
func (s *Service) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait()
}
