package runsvc

import (
	"repro/internal/experiments"
	"repro/internal/shard"
)

// Runner abstracts the three phases of the deterministic run lifecycle the
// service drives. Production code uses EngineRunner; tests wrap it to count
// executed tasks or inject failures without touching the engine.
type Runner interface {
	// Plan enumerates the task plan for the selection under cfg.
	Plan(cfg experiments.Config, exps []experiments.Experiment) ([]shard.ExperimentPlan, error)
	// Execute runs shard index/count of the selection's tasks and returns
	// the raw records as an artifact. The service always executes 1/1 — the
	// whole delta in one shard — but the signature keeps the engine's
	// contract intact.
	Execute(cfg experiments.Config, exps []experiments.Experiment, index, count int) (*shard.Artifact, error)
	// Merge replays aggregation over reassembled records, producing results
	// and errors aligned with exps.
	Merge(cfg experiments.Config, exps []experiments.Experiment, m *shard.Merged) ([]*experiments.Result, []error)
}

// EngineRunner is the production Runner: a direct delegation to
// internal/experiments' sharded lifecycle.
type EngineRunner struct{}

func (EngineRunner) Plan(cfg experiments.Config, exps []experiments.Experiment) ([]shard.ExperimentPlan, error) {
	return experiments.PlanTasks(cfg, exps)
}

func (EngineRunner) Execute(cfg experiments.Config, exps []experiments.Experiment, index, count int) (*shard.Artifact, error) {
	return experiments.ExecuteShard(cfg, exps, index, count)
}

func (EngineRunner) Merge(cfg experiments.Config, exps []experiments.Experiment, m *shard.Merged) ([]*experiments.Result, []error) {
	return experiments.RunMerged(cfg, exps, m)
}
