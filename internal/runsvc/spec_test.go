package runsvc

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/scenario"
)

func TestParseSpecRoundTrip(t *testing.T) {
	in := Spec{
		Experiments: []string{"CHURN-broadcast", "L3.2-hitting"},
		Full:        true,
		Trials:      7,
		Seed:        42,
		Workers:     3,
		Scenario: &ScenarioSpec{
			Side: 4,
			Seed: 9,
			Gen: scenario.GenConfig{
				Epochs: 2, EpochLen: 20, Leaves: 1, Demotions: 1,
				Protected: []graph.NodeID{0, 3},
				MaxRounds: 5000,
			},
		},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseSpec(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip diverged:\n in: %+v\nout: %+v", in, out)
	}
}

func TestParseSpecRejectsGarbage(t *testing.T) {
	for _, tc := range []struct {
		name, body, want string
	}{
		{"unknown field", `{"experiemnts": ["F1-static-local"]}`, "unknown field"},
		{"trailing data", `{"trials": 2} {"trials": 3}`, "trailing data"},
		{"wrong type", `{"trials": "two"}`, "trials"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec(strings.NewReader(tc.body))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestResolveSpecValidation(t *testing.T) {
	catalog := experiments.All()
	for _, tc := range []struct {
		name string
		spec Spec
		want string
	}{
		{"unknown id", Spec{Experiments: []string{"F1-nope"}}, `unknown experiment "F1-nope"`},
		{"substring is not a selection", Spec{Experiments: []string{"F1"}}, `unknown experiment "F1"`},
		{"negative trials", Spec{Trials: -1}, "trials must be >= 0"},
		{"negative workers", Spec{Workers: -2}, "workers must be >= 0"},
		{"tiny scenario", Spec{Scenario: &ScenarioSpec{Side: 1, Gen: scenario.GenConfig{EpochLen: 5}}}, "side 1"},
		{"scenario epoch geometry", Spec{Scenario: &ScenarioSpec{Side: 3, Gen: scenario.GenConfig{Epochs: 2}}}, "EpochLen"},
		{"scenario injections", Spec{Scenario: &ScenarioSpec{Side: 3, Gen: scenario.GenConfig{EpochLen: 5, InjectSources: []graph.NodeID{1}}}}, "InjectSources"},
		{"scenario protected range", Spec{Scenario: &ScenarioSpec{Side: 3, Gen: scenario.GenConfig{EpochLen: 5, Protected: []graph.NodeID{99}}}}, "out of range"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := resolveSpec(tc.spec, catalog)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestResolveSpecNormalizes(t *testing.T) {
	catalog := experiments.All()

	// Duplicated, unsorted selection comes back sorted and deduplicated;
	// Trials 0 becomes the quick default.
	rs, err := resolveSpec(Spec{Experiments: []string{"L3.2-hitting", "CHURN-broadcast", "L3.2-hitting"}}, catalog)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"CHURN-broadcast", "L3.2-hitting"}; !reflect.DeepEqual(rs.spec.Experiments, want) {
		t.Errorf("normalized selection = %v, want %v", rs.spec.Experiments, want)
	}
	if rs.spec.Trials != 5 || rs.cfg.Trials != 5 {
		t.Errorf("quick default trials not normalized: spec %d, cfg %d", rs.spec.Trials, rs.cfg.Trials)
	}
	if len(rs.exps) != 2 || rs.exps[0].ID != "CHURN-broadcast" {
		t.Errorf("resolved experiments = %v", rs.exps)
	}

	// Empty selection means the whole catalog.
	rs, err = resolveSpec(Spec{}, catalog)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.exps) != len(catalog) {
		t.Errorf("empty selection resolved to %d experiments, want %d", len(rs.exps), len(catalog))
	}

	// A scenario alone runs just the scenario; combined with a selection it
	// joins it, in sorted position.
	sc := &ScenarioSpec{Side: 3, Gen: scenario.GenConfig{Epochs: 1, EpochLen: 10}}
	rs, err = resolveSpec(Spec{Scenario: sc}, catalog)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.exps) != 1 || !strings.HasPrefix(rs.exps[0].ID, "CUSTOM-churn-") {
		t.Errorf("scenario-only spec resolved to %+v", rs.exps)
	}
	rs, err = resolveSpec(Spec{Experiments: []string{"L3.2-hitting", "CHURN-broadcast"}, Scenario: sc}, catalog)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.exps) != 3 {
		t.Fatalf("selection+scenario resolved to %d experiments", len(rs.exps))
	}
	for i := 1; i < len(rs.exps); i++ {
		if rs.exps[i-1].ID >= rs.exps[i].ID {
			t.Errorf("resolved experiments not sorted: %s >= %s", rs.exps[i-1].ID, rs.exps[i].ID)
		}
	}
}
