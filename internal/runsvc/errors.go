package runsvc

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/experiments"
)

// ExperimentError is one experiment's structured failure inside a run: the
// experiment, the per-experiment task indices that failed (when the failure
// was trial-level), and the underlying error.
type ExperimentError struct {
	ID    string
	Tasks []int
	Err   error
}

func (e *ExperimentError) Error() string {
	if len(e.Tasks) > 0 {
		return fmt.Sprintf("%s (tasks %v): %v", e.ID, e.Tasks, e.Err)
	}
	return fmt.Sprintf("%s: %v", e.ID, e.Err)
}

func (e *ExperimentError) Unwrap() error { return e.Err }

// RunError aggregates every failed experiment of a run. A partial failure
// keeps its full context — which experiments failed, at which task indices —
// instead of collapsing to the first error observed.
type RunError struct {
	Experiments []*ExperimentError
}

func (e *RunError) Error() string {
	if len(e.Experiments) == 1 {
		return e.Experiments[0].Error()
	}
	parts := make([]string, len(e.Experiments))
	for i, ee := range e.Experiments {
		parts[i] = ee.Error()
	}
	return fmt.Sprintf("%d experiments failed: %s", len(e.Experiments), strings.Join(parts, "; "))
}

// Unwrap exposes the per-experiment errors for errors.Is/As.
func (e *RunError) Unwrap() []error {
	out := make([]error, len(e.Experiments))
	for i, ee := range e.Experiments {
		out[i] = ee
	}
	return out
}

// newRunError structures the merge phase's aligned error slice: every
// failed experiment is captured, and a *experiments.TrialError contributes
// its per-experiment task indices. Returns nil when nothing failed.
func newRunError(exps []experiments.Experiment, errs []error) *RunError {
	var out []*ExperimentError
	for i, err := range errs {
		if err == nil {
			continue
		}
		ee := &ExperimentError{ID: exps[i].ID, Err: err}
		var te *experiments.TrialError
		if errors.As(err, &te) {
			ee.Tasks = append([]int(nil), te.Failed...)
		}
		out = append(out, ee)
	}
	if len(out) == 0 {
		return nil
	}
	return &RunError{Experiments: out}
}
