package runsvc

import (
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/shard"
)

func goldenCfg() experiments.Config {
	return experiments.Config{Quick: true, Trials: 2, BaseSeed: 7}
}

func goldenPlan() []shard.ExperimentPlan {
	return []shard.ExperimentPlan{
		{ID: "CHURN-broadcast", Tasks: 4},
		{ID: "L3.2-hitting", Tasks: 6},
	}
}

// TestContentHashesGolden pins the content hashes to literal values: the
// hashes are cache keys and run identities shared across processes and
// machines, so they must be bit-stable across compilations, worker counts,
// and platforms. If this test fails, the canonical payload changed — bump
// CacheSchemaVersion and regenerate, because every existing cache entry and
// run identity just became invalid.
func TestContentHashesGolden(t *testing.T) {
	cfg, plan := goldenCfg(), goldenPlan()
	if got, want := RunKey(cfg, plan, nil), "4b66ba8fbd4b952a1a28976d4c6278ccb60c0e021ca27c47b2205cdec569211e"; got != want {
		t.Errorf("RunKey = %s, want %s", got, want)
	}
	if got, want := ExperimentKey(cfg, plan[0]), "1d269d2315d17b8b65585122982a512f8ff9a727367e3bae7c429b8cc31a7cdf"; got != want {
		t.Errorf("ExperimentKey[0] = %s, want %s", got, want)
	}
	if got, want := ExperimentKey(cfg, plan[1]), "3e57fe632f3aace5ec7f579f05681b069ebae57e6a1f26339dc0193657665045"; got != want {
		t.Errorf("ExperimentKey[1] = %s, want %s", got, want)
	}
	sc := ScenarioSpec{Side: 3, Seed: 11, Gen: scenario.GenConfig{Epochs: 1, EpochLen: 10, Leaves: 1}}
	if got, want := ScenarioID(sc), "CUSTOM-churn-e8449dbf5366"; got != want {
		t.Errorf("ScenarioID = %s, want %s", got, want)
	}
}

// TestRunKeyIgnoresWorkers: the worker count changes wall clock, never
// output, so it must not fragment run identities.
func TestRunKeyIgnoresWorkers(t *testing.T) {
	cfg, plan := goldenCfg(), goldenPlan()
	a := RunKey(cfg, plan, nil)
	cfg.Workers = 8
	if b := RunKey(cfg, plan, nil); a != b {
		t.Fatalf("RunKey depends on Workers: %s vs %s", a, b)
	}
}

// TestRunKeyNormalizesTrials: Trials 0 and the explicit scale default spell
// the same run.
func TestRunKeyNormalizesTrials(t *testing.T) {
	plan := goldenPlan()
	implicit := experiments.Config{Quick: true}
	explicit := experiments.Config{Quick: true, Trials: 5}
	if RunKey(implicit, plan, nil) != RunKey(explicit, plan, nil) {
		t.Fatal("Trials:0 and the explicit quick default produce different run keys")
	}
	if ExperimentKey(implicit, plan[0]) != ExperimentKey(explicit, plan[0]) {
		t.Fatal("Trials:0 and the explicit quick default produce different experiment keys")
	}
}

// TestRunKeySensitivity: every output-affecting input must move the run key.
func TestRunKeySensitivity(t *testing.T) {
	cfg, plan := goldenCfg(), goldenPlan()
	base := RunKey(cfg, plan, nil)

	seeded := cfg
	seeded.BaseSeed++
	if RunKey(seeded, plan, nil) == base {
		t.Error("run key ignores the seed")
	}
	full := cfg
	full.Quick = false
	if RunKey(full, plan, nil) == base {
		t.Error("run key ignores the scale")
	}
	grown := goldenPlan()
	grown[1].Tasks++
	if RunKey(cfg, grown, nil) == base {
		t.Error("run key ignores the plan")
	}
	sc := &ScenarioSpec{Side: 3, Gen: scenario.GenConfig{Epochs: 1, EpochLen: 10}}
	if RunKey(cfg, plan, sc) == base {
		t.Error("run key ignores the scenario")
	}
}

// TestExperimentKeyIsolation: an experiment's cache key depends only on its
// own plan row and the seeding configuration — changing another experiment's
// spec (or dropping it from the run entirely) must leave the key untouched,
// which is exactly what lets overlapping submissions share entries. Changing
// the experiment's own row, the seed, or the scale must change it.
func TestExperimentKeyIsolation(t *testing.T) {
	cfg, plan := goldenCfg(), goldenPlan()
	key0, key1 := ExperimentKey(cfg, plan[0]), ExperimentKey(cfg, plan[1])

	grown := goldenPlan()
	grown[1].Tasks++
	if ExperimentKey(cfg, grown[0]) != key0 {
		t.Error("experiment 0's key moved when experiment 1's plan changed")
	}
	if ExperimentKey(cfg, grown[1]) == key1 {
		t.Error("experiment 1's key ignores its own task count")
	}
	seeded := cfg
	seeded.BaseSeed++
	if ExperimentKey(seeded, plan[0]) == key0 {
		t.Error("experiment key ignores the seed")
	}
	full := cfg
	full.Quick = false
	if ExperimentKey(full, plan[0]) == key0 {
		t.Error("experiment key ignores the scale")
	}
}

// TestScenarioIDDistinct: distinct scenario specs get distinct experiment
// IDs (they must never collide in the cache), equal specs get equal IDs, and
// the ID carries the CUSTOM prefix that keeps it out of the registry's
// namespace.
func TestScenarioIDDistinct(t *testing.T) {
	a := ScenarioSpec{Side: 3, Seed: 11, Gen: scenario.GenConfig{Epochs: 1, EpochLen: 10}}
	b := a
	b.Gen.Leaves = 2
	if ScenarioID(a) == ScenarioID(b) {
		t.Error("distinct scenario specs share an ID")
	}
	if ScenarioID(a) != ScenarioID(a) {
		t.Error("equal scenario specs differ in ID")
	}
	if !strings.HasPrefix(ScenarioID(a), "CUSTOM-churn-") {
		t.Errorf("scenario ID %q lacks the CUSTOM-churn- prefix", ScenarioID(a))
	}
}
