package shard

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// testPlan is a two-experiment plan: exp-a declares 4 tasks, exp-b 2.
func testPlan() []ExperimentPlan {
	return []ExperimentPlan{{ID: "exp-a", Tasks: 4}, {ID: "exp-b", Tasks: 2}}
}

// testShard builds the artifact of shard index/count over testPlan with the
// round-robin partition the experiments runner uses (global task index mod
// count), recording each task's global index as its single value.
func testShard(index, count int) *Artifact {
	a := &Artifact{
		Version:  SchemaVersion,
		Shard:    index,
		Shards:   count,
		BaseSeed: 7,
		Quick:    true,
		Trials:   2,
		Plan:     testPlan(),
	}
	global := 0
	for _, p := range a.Plan {
		for i := 0; i < p.Tasks; i++ {
			if global%count == index-1 {
				a.Records = append(a.Records, TaskRecord{Exp: p.ID, Index: i, Vals: []float64{float64(global)}})
			}
			global++
		}
	}
	return a
}

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shard_1.json")
	art := testShard(1, 2)
	if err := Write(path, art); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shard != art.Shard || got.Shards != art.Shards || got.BaseSeed != 7 ||
		!got.Quick || got.Trials != 2 || len(got.Records) != len(art.Records) {
		t.Fatalf("round trip lost data: %+v", got)
	}
	// Equal artifacts serialize byte-identically (records are sorted, JSON
	// field order is fixed by the struct).
	path2 := filepath.Join(dir, "again.json")
	if err := Write(path2, testShard(1, 2)); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(path)
	b2, _ := os.ReadFile(path2)
	if string(b1) != string(b2) {
		t.Fatal("equal artifacts serialized differently")
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		mut  func(a *Artifact)
		want error
	}{
		{"version", func(a *Artifact) { a.Version = SchemaVersion + 1 }, ErrVersion},
		{"shard zero", func(a *Artifact) { a.Shard = 0 }, ErrMalformed},
		{"shard beyond count", func(a *Artifact) { a.Shard = 3 }, ErrMalformed},
		{"unplanned exp", func(a *Artifact) { a.Records[0].Exp = "ghost" }, ErrMalformed},
		{"index out of range", func(a *Artifact) { a.Records[0].Index = 99 }, ErrMalformed},
		{"negative tasks", func(a *Artifact) { a.Plan[0].Tasks = -1 }, ErrMalformed},
		{"duplicate plan row", func(a *Artifact) { a.Plan[1].ID = a.Plan[0].ID }, ErrMalformed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := testShard(2, 2)
			tc.mut(a)
			if err := a.Validate(); !errors.Is(err, tc.want) {
				t.Fatalf("Validate() = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestMergeReassembles(t *testing.T) {
	m, err := Merge([]*Artifact{testShard(2, 3), testShard(1, 3), testShard(3, 3)})
	if err != nil {
		t.Fatal(err)
	}
	global := 0
	for _, p := range testPlan() {
		recs := m.Records(p.ID)
		if len(recs) != p.Tasks {
			t.Fatalf("%s: %d records, want %d", p.ID, len(recs), p.Tasks)
		}
		for i, r := range recs {
			if r.Index != i || r.Vals[0] != float64(global) {
				t.Fatalf("%s[%d] = %+v, want global %d in order", p.ID, i, r, global)
			}
			global++
		}
	}
}

func TestMergeValidation(t *testing.T) {
	mixedSeed := testShard(2, 2)
	mixedSeed.BaseSeed = 8
	mixedPlan := testShard(2, 2)
	mixedPlan.Plan = []ExperimentPlan{{ID: "exp-a", Tasks: 4}, {ID: "exp-c", Tasks: 2}}
	for i := range mixedPlan.Records {
		if mixedPlan.Records[i].Exp == "exp-b" {
			mixedPlan.Records[i].Exp = "exp-c"
		}
	}
	oldVersion := testShard(2, 2)
	oldVersion.Version = SchemaVersion + 1
	overlap := testShard(2, 2)
	overlap.Records = append(overlap.Records, testShard(1, 2).Records[0])
	gap := testShard(2, 2)
	gap.Records = gap.Records[1:]

	cases := []struct {
		name string
		arts []*Artifact
		want error
	}{
		{"empty", nil, ErrMissingShard},
		{"missing shard", []*Artifact{testShard(1, 2)}, ErrMissingShard},
		{"duplicate shard", []*Artifact{testShard(1, 2), testShard(1, 2)}, ErrDuplicateShard},
		{"version mismatch", []*Artifact{testShard(1, 2), oldVersion}, ErrVersion},
		{"seed mismatch", []*Artifact{testShard(1, 2), mixedSeed}, ErrHeaderMismatch},
		{"plan mismatch", []*Artifact{testShard(1, 2), mixedPlan}, ErrHeaderMismatch},
		{"task covered twice", []*Artifact{testShard(1, 2), overlap}, ErrDuplicateTask},
		{"task not covered", []*Artifact{testShard(1, 2), gap}, ErrMissingTask},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Merge(tc.arts); !errors.Is(err, tc.want) {
				t.Fatalf("Merge() = %v, want %v", err, tc.want)
			}
		})
	}
}
