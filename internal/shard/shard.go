// Package shard defines the portable artifact that lets the experiment
// suite run split across machines.
//
// The sweep scheduler's work queue — every (experiment × sweep-point ×
// trial) task, independently seeded — is partitioned deterministically into
// K shards by stable task index. Each executing process runs only the tasks
// it owns and serializes their raw results as an Artifact (a versioned JSON
// file); a merge process validates that the artifacts tile the plan exactly
// — same schema version, same header, every shard present exactly once,
// every task index covered exactly once — and replays the aggregation over
// the reassembled records. Because each task's record is the task's complete
// contribution, the merged output is byte-identical to a single-machine run
// at the same seeds.
//
// The lifecycle is driven from internal/experiments (PlanTasks,
// ExecuteShard, RunMerged) and exposed on the command line as
// `dgbench -shard i/K -out shard_i.json` followed by
// `dgbench -merge 'shard_*.json'`. This package holds only the artifact
// schema, its reader/writer, and merge validation; it knows nothing about
// radio networks or experiments.
package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"slices"
	"sort"
)

// SchemaVersion is the artifact format version. Merging artifacts written
// by a different version is a hard error: records are only comparable when
// both sides agree on what a task's values mean.
const SchemaVersion = 1

// Validation errors returned by Merge and Artifact.Validate, exposed for
// errors.Is so callers can tell operator mistakes apart.
var (
	ErrVersion        = errors.New("shard: schema version mismatch")
	ErrHeaderMismatch = errors.New("shard: artifact headers disagree")
	ErrDuplicateShard = errors.New("shard: duplicate shard index")
	ErrMissingShard   = errors.New("shard: missing shard")
	ErrDuplicateTask  = errors.New("shard: task index covered twice")
	ErrMissingTask    = errors.New("shard: task index not covered by any shard")
	ErrMalformed      = errors.New("shard: malformed artifact")
)

// ExperimentPlan is one experiment's row of the task plan: how many tasks
// the experiment declares at the configuration the shard ran with. The plan
// is ordered (experiments sorted by ID, matching experiments.All()), and a
// task's global index is its experiment's plan offset plus its declaration
// index, so every process derives the same partition with no communication.
type ExperimentPlan struct {
	ID    string `json:"id"`
	Tasks int    `json:"tasks"`
}

// TaskRecord is one task's serialized result: the experiment it belongs to,
// its declaration index within that experiment, the task's raw values (for
// engine trials: executed rounds and a solved bit; lemma checks store their
// own small vectors), and the error message if the task failed. Values
// round-trip exactly through JSON (Go emits the shortest representation
// that parses back to the same float64), which is what makes merged
// summaries bit-identical to in-process ones.
type TaskRecord struct {
	Exp   string    `json:"exp"`
	Index int       `json:"index"`
	Vals  []float64 `json:"vals,omitempty"`
	Err   string    `json:"err,omitempty"`
}

// Artifact is one shard's complete output: the run header (everything that
// determines the task plan), the plan itself, and the records of every task
// the shard owns.
type Artifact struct {
	Version int `json:"version"`
	// Shard is 1-based: shard i of Shards, matching `dgbench -shard i/K`.
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	// BaseSeed, Quick, and Trials reproduce the experiments.Config the shard
	// executed with; merge rebuilds its config from these rather than
	// trusting the invoker to repeat the flags.
	BaseSeed uint64           `json:"baseSeed"`
	Quick    bool             `json:"quick"`
	Trials   int              `json:"trials"`
	Plan     []ExperimentPlan `json:"plan"`
	Records  []TaskRecord     `json:"records"`
}

// Validate checks an artifact's internal consistency: schema version, shard
// bounds, and that every record names a planned experiment with an in-range
// task index.
func (a *Artifact) Validate() error {
	if a.Version != SchemaVersion {
		return fmt.Errorf("%w: artifact has version %d, this binary reads %d", ErrVersion, a.Version, SchemaVersion)
	}
	if a.Shards < 1 || a.Shard < 1 || a.Shard > a.Shards {
		return fmt.Errorf("%w: shard %d of %d", ErrMalformed, a.Shard, a.Shards)
	}
	tasks := make(map[string]int, len(a.Plan))
	for _, p := range a.Plan {
		if _, dup := tasks[p.ID]; dup {
			return fmt.Errorf("%w: experiment %q planned twice", ErrMalformed, p.ID)
		}
		if p.Tasks < 0 {
			return fmt.Errorf("%w: experiment %q plans %d tasks", ErrMalformed, p.ID, p.Tasks)
		}
		tasks[p.ID] = p.Tasks
	}
	for _, r := range a.Records {
		n, ok := tasks[r.Exp]
		if !ok {
			return fmt.Errorf("%w: record for unplanned experiment %q", ErrMalformed, r.Exp)
		}
		if r.Index < 0 || r.Index >= n {
			return fmt.Errorf("%w: %s task %d out of range [0,%d)", ErrMalformed, r.Exp, r.Index, n)
		}
	}
	return nil
}

// Write serializes the artifact to path as indented JSON with records
// sorted by (plan order, task index), so equal runs produce byte-identical
// files.
func Write(path string, a *Artifact) error {
	if err := a.Validate(); err != nil {
		return err
	}
	order := make(map[string]int, len(a.Plan))
	for i, p := range a.Plan {
		order[p.ID] = i
	}
	sort.Slice(a.Records, func(i, j int) bool {
		ri, rj := a.Records[i], a.Records[j]
		if ri.Exp != rj.Exp {
			return order[ri.Exp] < order[rj.Exp]
		}
		return ri.Index < rj.Index
	})
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Read loads and validates one artifact.
func Read(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrMalformed, path, err)
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &a, nil
}

// Merged is a validated, complete reassembly of one run's shards: the
// shared header plus, per experiment, a dense record slice indexed by task
// declaration index.
type Merged struct {
	Shards   int
	BaseSeed uint64
	Quick    bool
	Trials   int
	Plan     []ExperimentPlan
	records  map[string][]TaskRecord
}

// Records returns the experiment's tasks in declaration order. The slice is
// dense: Merge guarantees index i holds the record of task i.
func (m *Merged) Records(exp string) []TaskRecord {
	return m.records[exp]
}

// NewMerged assembles a Merged directly from one complete in-memory record
// set — the path the run service takes when it stitches cache-served
// per-experiment records together with freshly executed ones, with no shard
// files on disk. The records must tile the plan exactly (every planned task
// index covered once, full artifact validation applies); the result is
// indistinguishable from merging a single shard 1/1 artifact, because that
// is literally what it does.
func NewMerged(baseSeed uint64, quick bool, trials int, plan []ExperimentPlan, records []TaskRecord) (*Merged, error) {
	return Merge([]*Artifact{{
		Version:  SchemaVersion,
		Shard:    1,
		Shards:   1,
		BaseSeed: baseSeed,
		Quick:    quick,
		Trials:   trials,
		Plan:     plan,
		Records:  records,
	}})
}

// Merge validates a set of shard artifacts against each other and
// reassembles the full task-record set. It requires: at least one artifact,
// all at SchemaVersion; identical headers (shard count, base seed, quick
// flag, trial count, plan); shard indices 1..K each present exactly once;
// and per experiment, every planned task index covered by exactly one
// record. Overlaps, gaps, duplicate shards, and missing shards are hard
// errors — a partial merge silently reporting different numbers would
// defeat the whole determinism contract.
func Merge(arts []*Artifact) (*Merged, error) {
	if len(arts) == 0 {
		return nil, fmt.Errorf("%w: no artifacts to merge", ErrMissingShard)
	}
	head := arts[0]
	for _, a := range arts {
		if err := a.Validate(); err != nil {
			return nil, err
		}
		if a.Shards != head.Shards || a.BaseSeed != head.BaseSeed ||
			a.Quick != head.Quick || a.Trials != head.Trials {
			return nil, fmt.Errorf("%w: shard %d ran (shards=%d seed=%d quick=%v trials=%d), shard %d ran (shards=%d seed=%d quick=%v trials=%d)",
				ErrHeaderMismatch,
				head.Shard, head.Shards, head.BaseSeed, head.Quick, head.Trials,
				a.Shard, a.Shards, a.BaseSeed, a.Quick, a.Trials)
		}
		if !slices.Equal(a.Plan, head.Plan) {
			return nil, fmt.Errorf("%w: shard %d and shard %d enumerate different task plans", ErrHeaderMismatch, head.Shard, a.Shard)
		}
	}
	seenShard := make(map[int]bool, len(arts))
	for _, a := range arts {
		if seenShard[a.Shard] {
			return nil, fmt.Errorf("%w: shard %d/%d appears twice", ErrDuplicateShard, a.Shard, a.Shards)
		}
		seenShard[a.Shard] = true
	}
	for i := 1; i <= head.Shards; i++ {
		if !seenShard[i] {
			return nil, fmt.Errorf("%w: shard %d/%d has no artifact", ErrMissingShard, i, head.Shards)
		}
	}
	m := &Merged{
		Shards:   head.Shards,
		BaseSeed: head.BaseSeed,
		Quick:    head.Quick,
		Trials:   head.Trials,
		Plan:     head.Plan,
		records:  make(map[string][]TaskRecord, len(head.Plan)),
	}
	covered := make(map[string][]bool, len(head.Plan))
	for _, p := range head.Plan {
		m.records[p.ID] = make([]TaskRecord, p.Tasks)
		covered[p.ID] = make([]bool, p.Tasks)
	}
	for _, a := range arts {
		for _, r := range a.Records {
			if covered[r.Exp][r.Index] {
				return nil, fmt.Errorf("%w: %s task %d", ErrDuplicateTask, r.Exp, r.Index)
			}
			covered[r.Exp][r.Index] = true
			m.records[r.Exp][r.Index] = r
		}
	}
	for _, p := range head.Plan {
		for i, ok := range covered[p.ID] {
			if !ok {
				return nil, fmt.Errorf("%w: %s task %d (shards incomplete?)", ErrMissingTask, p.ID, i)
			}
		}
	}
	return m, nil
}
