package graph

import (
	"sort"
	"testing"

	"repro/internal/bitrand"
)

// refGraph is a naive map-of-sets adjacency reference: exactly the structure
// the CSR core replaced. The equivalence tests rebuild it next to every CSR
// graph and require identical answers.
type refGraph struct {
	n   int
	adj []map[NodeID]struct{}
}

func newRefGraph(n int) *refGraph {
	r := &refGraph{n: n, adj: make([]map[NodeID]struct{}, n)}
	for i := range r.adj {
		r.adj[i] = make(map[NodeID]struct{})
	}
	return r
}

func (r *refGraph) addEdge(u, v NodeID) {
	if u == v || u < 0 || v < 0 || u >= r.n || v >= r.n {
		return
	}
	r.adj[u][v] = struct{}{}
	r.adj[v][u] = struct{}{}
}

func (r *refGraph) neighbors(u NodeID) []NodeID {
	out := make([]NodeID, 0, len(r.adj[u]))
	for v := range r.adj[u] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func (r *refGraph) numEdges() int {
	total := 0
	for _, s := range r.adj {
		total += len(s)
	}
	return total / 2
}

func equalIDs(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkGraphAgainstRef asserts that a CSR graph answers Neighbors, Degree,
// HasEdge, NumEdges and CSR consistently with the reference.
func checkGraphAgainstRef(t *testing.T, g *Graph, ref *refGraph) {
	t.Helper()
	if g.N() != ref.n {
		t.Fatalf("N = %d, want %d", g.N(), ref.n)
	}
	if g.NumEdges() != ref.numEdges() {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), ref.numEdges())
	}
	offs, adj := g.CSR()
	if len(offs) != ref.n+1 {
		t.Fatalf("len(offs) = %d, want %d", len(offs), ref.n+1)
	}
	if int(offs[ref.n]) != len(adj) || len(adj) != 2*g.NumEdges() {
		t.Fatalf("CSR shape: offs[n]=%d len(adj)=%d edges=%d", offs[ref.n], len(adj), g.NumEdges())
	}
	for u := 0; u < ref.n; u++ {
		want := ref.neighbors(u)
		got := g.Neighbors(u)
		if !equalIDs(got, want) {
			t.Fatalf("Neighbors(%d) = %v, want %v", u, got, want)
		}
		if g.Degree(u) != len(want) {
			t.Fatalf("Degree(%d) = %d, want %d", u, g.Degree(u), len(want))
		}
		for v := 0; v < ref.n; v++ {
			_, wantEdge := ref.adj[u][v]
			if g.HasEdge(u, v) != wantEdge {
				t.Fatalf("HasEdge(%d,%d) = %v, want %v", u, v, g.HasEdge(u, v), wantEdge)
			}
		}
	}
}

// TestCSREquivalenceRandomDuals builds random duals — random G, random
// superset G' — and checks Neighbors, ExtraNeighbors and Degree against the
// map-of-sets reference.
func TestCSREquivalenceRandomDuals(t *testing.T) {
	src := bitrand.New(0xc5a)
	for trial := 0; trial < 40; trial++ {
		n := 1 + src.Intn(40)
		pG := src.Float64() * 0.4
		pExtra := src.Float64() * 0.4

		gRef := newRefGraph(n)
		gb := NewBuilder(n)
		gpRef := newRefGraph(n)
		gpb := NewBuilder(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				inG := src.Coin(pG)
				if inG {
					gRef.addEdge(u, v)
					gb.AddEdge(u, v)
					// Duplicate adds must be invisible.
					gb.AddEdge(v, u)
				}
				if inG || src.Coin(pExtra) {
					gpRef.addEdge(u, v)
					gpb.AddEdge(u, v)
				}
			}
		}
		g, gp := gb.Build(), gpb.Build()
		checkGraphAgainstRef(t, g, gRef)
		checkGraphAgainstRef(t, gp, gpRef)

		d, err := NewDual(g, gp)
		if err != nil {
			t.Fatalf("trial %d: NewDual: %v", trial, err)
		}
		for u := 0; u < n; u++ {
			// Reference extra adjacency: G' neighbors not in G.
			want := make([]NodeID, 0)
			for _, v := range gpRef.neighbors(u) {
				if _, inG := gRef.adj[u][v]; !inG {
					want = append(want, v)
				}
			}
			if got := d.ExtraNeighbors(u); !equalIDs(got, want) {
				t.Fatalf("trial %d: ExtraNeighbors(%d) = %v, want %v", trial, u, got, want)
			}
		}
		if want := gpRef.numEdges() - gRef.numEdges(); d.NumExtraEdges() != want {
			t.Fatalf("trial %d: NumExtraEdges = %d, want %d", trial, d.NumExtraEdges(), want)
		}
	}
}

// TestNewDualRejectsNonSubset checks the merge-walk subset validation on
// both violation shapes: a G neighbor below the current G' row position and
// one past the row's end.
func TestNewDualRejectsNonSubset(t *testing.T) {
	// G: {0-1, 2-3}; G': {2-3} only — 0-1 violates, with node 0's G row
	// holding a neighbor smaller than anything in its (empty) G' row.
	gb := NewBuilder(4)
	gb.AddEdge(0, 1)
	gb.AddEdge(2, 3)
	gpb := NewBuilder(4)
	gpb.AddEdge(2, 3)
	if _, err := NewDual(gb.Build(), gpb.Build()); err == nil {
		t.Fatal("missing-low-edge dual accepted")
	}
	// G: {0-3}; G': {0-1} — node 0's G row ends past its G' row.
	gb2 := NewBuilder(4)
	gb2.AddEdge(0, 3)
	gpb2 := NewBuilder(4)
	gpb2.AddEdge(0, 1)
	if _, err := NewDual(gb2.Build(), gpb2.Build()); err == nil {
		t.Fatal("missing-high-edge dual accepted")
	}
}
