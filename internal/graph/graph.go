// Package graph provides the network substrate for the dual graph radio
// model of Ghaffari, Lynch and Newport (PODC 2013).
//
// A dual graph is a pair (G, G') over a shared vertex set with E ⊆ E'. Edges
// of G are reliable; edges of E' \ E appear and disappear round by round
// under adversarial control. The package supplies plain graphs, dual graphs,
// the paper's lower-bound topologies (dual clique, bracelet), geographic
// graphs satisfying the unit-disk-style constraint of Section 2, the region
// decomposition used by the Section 4.3 algorithm, and graph metrics.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a node; nodes are always numbered 0..n-1.
type NodeID = int

// Graph is an immutable simple undirected graph with sorted adjacency lists.
// Build one with a Builder.
type Graph struct {
	n     int
	adj   [][]NodeID
	edges int
}

// Builder accumulates edges for a Graph. Duplicate edges and self-loops are
// ignored. The zero Builder is unusable; construct with NewBuilder.
type Builder struct {
	n   int
	set map[[2]NodeID]struct{}
}

// NewBuilder returns a builder for a graph on n nodes.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, set: make(map[[2]NodeID]struct{})}
}

// AddEdge records the undirected edge (u, v). Out-of-range endpoints and
// self-loops are ignored so that randomized constructions can be written
// without bound bookkeeping; Build validates the result instead.
func (b *Builder) AddEdge(u, v NodeID) {
	if u == v || u < 0 || v < 0 || u >= b.n || v >= b.n {
		return
	}
	if u > v {
		u, v = v, u
	}
	b.set[[2]NodeID{u, v}] = struct{}{}
}

// HasEdge reports whether the edge has been added.
func (b *Builder) HasEdge(u, v NodeID) bool {
	if u > v {
		u, v = v, u
	}
	_, ok := b.set[[2]NodeID{u, v}]
	return ok
}

// Build finalizes the graph.
func (b *Builder) Build() *Graph {
	g := &Graph{n: b.n, adj: make([][]NodeID, b.n), edges: len(b.set)}
	deg := make([]int, b.n)
	for e := range b.set {
		deg[e[0]]++
		deg[e[1]]++
	}
	for u := range g.adj {
		g.adj[u] = make([]NodeID, 0, deg[u])
	}
	for e := range b.set {
		g.adj[e[0]] = append(g.adj[e[0]], e[1])
		g.adj[e[1]] = append(g.adj[e[1]], e[0])
	}
	for u := range g.adj {
		sort.Ints(g.adj[u])
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.edges }

// Degree returns the degree of u.
func (g *Graph) Degree(u NodeID) int { return len(g.adj[u]) }

// MaxDegree returns the maximum degree Δ, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for _, a := range g.adj {
		if len(a) > max {
			max = len(a)
		}
	}
	return max
}

// Neighbors returns the sorted adjacency list of u. The slice is shared with
// the graph; callers must not modify it.
func (g *Graph) Neighbors(u NodeID) []NodeID { return g.adj[u] }

// HasEdge reports whether (u, v) is an edge.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if u < 0 || v < 0 || u >= g.n || v >= g.n || u == v {
		return false
	}
	a := g.adj[u]
	i := sort.SearchInts(a, v)
	return i < len(a) && a[i] == v
}

// ForEachEdge calls fn once per undirected edge with u < v.
func (g *Graph) ForEachEdge(fn func(u, v NodeID)) {
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v {
				fn(u, v)
			}
		}
	}
}

// Point is a position in the Euclidean plane for geographic graphs.
type Point struct {
	X, Y float64
}

// Dual is a dual graph network (G, G') with E ⊆ E'. Extra adjacency (the
// adversary-controlled edges E' \ E) is precomputed. If the network carries a
// geographic embedding, Pos is non-nil and Radius holds the constant r ≥ 1 of
// the Section 2 constraint.
type Dual struct {
	g     *Graph
	gp    *Graph
	extra [][]NodeID // adjacency restricted to E' \ E, sorted

	unionComplete bool

	// Geographic embedding, nil/0 when absent.
	pos    []Point
	radius float64
}

// ErrNotSubset is returned when the reliable graph is not a subgraph of G'.
var ErrNotSubset = errors.New("graph: E(G) is not a subset of E(G')")

// NewDual validates E ⊆ E' and builds the dual graph.
func NewDual(g, gp *Graph) (*Dual, error) {
	if g.N() != gp.N() {
		return nil, fmt.Errorf("graph: vertex count mismatch: G has %d, G' has %d", g.N(), gp.N())
	}
	var subsetErr error
	g.ForEachEdge(func(u, v NodeID) {
		if !gp.HasEdge(u, v) {
			subsetErr = fmt.Errorf("%w: edge (%d,%d)", ErrNotSubset, u, v)
		}
	})
	if subsetErr != nil {
		return nil, subsetErr
	}
	d := &Dual{g: g, gp: gp, extra: make([][]NodeID, g.N())}
	for u := 0; u < g.N(); u++ {
		for _, v := range gp.Neighbors(u) {
			if !g.HasEdge(u, v) {
				d.extra[u] = append(d.extra[u], v)
			}
		}
	}
	n := g.N()
	d.unionComplete = gp.NumEdges() == n*(n-1)/2
	return d, nil
}

// MustDual is NewDual that panics on error, for use with constructions that
// are correct by design.
func MustDual(g, gp *Graph) *Dual {
	d, err := NewDual(g, gp)
	if err != nil {
		panic(err)
	}
	return d
}

// UniformDual wraps a single graph as the dual graph (G, G), which is exactly
// the static protocol model.
func UniformDual(g *Graph) *Dual {
	return &Dual{g: g, gp: g, extra: make([][]NodeID, g.N()), unionComplete: g.NumEdges() == g.N()*(g.N()-1)/2}
}

// N returns the number of nodes.
func (d *Dual) N() int { return d.g.N() }

// G returns the reliable graph.
func (d *Dual) G() *Graph { return d.g }

// GPrime returns the unreliable superset graph G'.
func (d *Dual) GPrime() *Graph { return d.gp }

// ExtraNeighbors returns u's neighbors across E' \ E. Shared slice; do not
// modify.
func (d *Dual) ExtraNeighbors(u NodeID) []NodeID { return d.extra[u] }

// NumExtraEdges returns |E' \ E|.
func (d *Dual) NumExtraEdges() int { return d.gp.NumEdges() - d.g.NumEdges() }

// UnionComplete reports whether G' is the complete graph, enabling the
// engine's dense-round fast path.
func (d *Dual) UnionComplete() bool { return d.unionComplete }

// MaxDegree returns Δ, the maximum degree in G' (the paper's Δ).
func (d *Dual) MaxDegree() int { return d.gp.MaxDegree() }

// Pos returns the geographic embedding or nil.
func (d *Dual) Pos() []Point { return d.pos }

// Radius returns the geographic constant r, or 0 when not geographic.
func (d *Dual) Radius() float64 { return d.radius }

// Geographic reports whether the network carries an embedding.
func (d *Dual) Geographic() bool { return d.pos != nil }

// SetEmbedding attaches a geographic embedding. It does not re-validate the
// unit-disk constraint; constructions in this package produce consistent
// embeddings, and ValidateGeographic checks arbitrary ones.
func (d *Dual) SetEmbedding(pos []Point, radius float64) {
	d.pos = pos
	d.radius = radius
}

// ValidateGeographic checks the Section 2 constraint against the embedding:
// d(u,v) ≤ 1 implies (u,v) ∈ G, and d(u,v) > r implies (u,v) ∉ G'.
func (d *Dual) ValidateGeographic() error {
	if d.pos == nil {
		return errors.New("graph: no embedding")
	}
	if d.radius < 1 {
		return fmt.Errorf("graph: geographic radius %v < 1", d.radius)
	}
	n := d.N()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dd := dist2(d.pos[u], d.pos[v])
			if dd <= 1 && !d.g.HasEdge(u, v) {
				return fmt.Errorf("graph: nodes %d,%d at distance ≤ 1 not connected in G", u, v)
			}
			if dd > d.radius*d.radius && d.gp.HasEdge(u, v) {
				return fmt.Errorf("graph: nodes %d,%d at distance > r connected in G'", u, v)
			}
		}
	}
	return nil
}

func dist2(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}
