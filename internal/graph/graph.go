// Package graph provides the network substrate for the dual graph radio
// model of Ghaffari, Lynch and Newport (PODC 2013).
//
// A dual graph is a pair (G, G') over a shared vertex set with E ⊆ E'. Edges
// of G are reliable; edges of E' \ E appear and disappear round by round
// under adversarial control. The package supplies plain graphs, dual graphs,
// the paper's lower-bound topologies (dual clique, bracelet), geographic
// graphs satisfying the unit-disk-style constraint of Section 2, the region
// decomposition used by the Section 4.3 algorithm, and graph metrics.
//
// Graphs are stored in CSR (compressed sparse row) form: one flat backing
// array of neighbor ids plus per-node offsets. Adjacency queries return
// zero-copy views into that array, so the simulation engine's inner loops
// walk contiguous memory with no per-node pointer chasing.
package graph

import (
	"errors"
	"fmt"
	"slices"
	"sort"
)

// NodeID identifies a node; nodes are always numbered 0..n-1.
type NodeID = int

// Graph is an immutable simple undirected graph in CSR form: adj holds every
// directed adjacency entry back to back, and offs[u]..offs[u+1] delimits u's
// sorted neighbor list. Build one with a Builder.
type Graph struct {
	n     int
	edges int
	offs  []int32 // len n+1; offs[u+1]-offs[u] = deg(u)
	adj   []NodeID

	// cover memoizes BuildCliqueCover(g) (see CliqueCoverOf); graphs are
	// immutable, so the cover is computed at most once per graph and shared
	// by every trial that runs on it.
	cover coverCache
	// masks memoizes BuildNeighborMasks(g) (see NeighborMasksOf) under the
	// same immutability contract.
	masks maskCache
	// decomp memoizes BuildDecomposition(g) (see DecompositionOf), again per
	// immutable graph.
	decomp decompCache
	// order memoizes BuildClusterOrder(g) (see ClusterOrderOf), again per
	// immutable graph.
	order orderCache
}

// Builder accumulates edges for a Graph as a flat list of packed (u, v) keys;
// Build sorts and deduplicates the list, so adding duplicate edges is cheap
// and allocation only grows the one backing slice. Self-loops and
// out-of-range endpoints are ignored. The zero Builder is unusable; construct
// with NewBuilder.
type Builder struct {
	n     int
	edges []uint64 // packed u<<32|v with u < v; may contain duplicates
}

// maxBuilderNodes bounds n so edge keys pack into uint64; maxBuilderEdges
// bounds the undirected edge count so the 2·edges directed CSR entries (and
// every offset) fit in int32. Build enforces the edge bound explicitly —
// the node bound alone does not imply it. Both are far above any simulated
// network size.
const (
	maxBuilderNodes = 1 << 31
	maxBuilderEdges = (1 << 30) - 1
)

// NewBuilder returns a builder for a graph on n nodes.
func NewBuilder(n int) *Builder {
	if n < 0 || n >= maxBuilderNodes {
		panic(fmt.Sprintf("graph: node count %d out of range [0,%d)", n, maxBuilderNodes))
	}
	return &Builder{n: n}
}

// Grow reserves capacity for at least extra additional edges, for
// constructions that know their edge count in advance.
func (b *Builder) Grow(extra int) {
	if extra > 0 {
		b.edges = slices.Grow(b.edges, extra)
	}
}

// AddEdge records the undirected edge (u, v). Out-of-range endpoints and
// self-loops are ignored so that randomized constructions can be written
// without bound bookkeeping; duplicates are dropped by Build.
func (b *Builder) AddEdge(u, v NodeID) {
	if u == v || u < 0 || v < 0 || u >= b.n || v >= b.n {
		return
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, uint64(u)<<32|uint64(v))
}

// HasEdge reports whether the edge has been added. It scans the accumulated
// edge list (the builder keeps no index), so it is intended for assertions
// and tests, not construction inner loops.
func (b *Builder) HasEdge(u, v NodeID) bool {
	if u > v {
		u, v = v, u
	}
	return slices.Contains(b.edges, uint64(u)<<32|uint64(v))
}

// Build finalizes the graph: sort + dedup the edge list, then one counting
// pass and one placement pass into the CSR arrays. A single walk over the
// (u, v)-sorted edge list fills every neighbor list in ascending order: for
// any node w, the edges contributing w's smaller neighbors (u, w) all sort
// before the edges (w, v) contributing its larger ones.
func (b *Builder) Build() *Graph {
	slices.Sort(b.edges)
	b.edges = slices.Compact(b.edges)
	if len(b.edges) > maxBuilderEdges {
		panic(fmt.Sprintf("graph: %d edges overflow the int32 CSR offsets (max %d)", len(b.edges), maxBuilderEdges))
	}
	g := &Graph{n: b.n, edges: len(b.edges)}
	g.offs = make([]int32, b.n+1)
	for _, e := range b.edges {
		g.offs[e>>32+1]++
		g.offs[uint32(e)+1]++
	}
	for u := 0; u < b.n; u++ {
		g.offs[u+1] += g.offs[u]
	}
	g.adj = make([]NodeID, 2*len(b.edges))
	cur := make([]int32, b.n)
	copy(cur, g.offs[:b.n])
	for _, e := range b.edges {
		u, v := NodeID(e>>32), NodeID(uint32(e))
		g.adj[cur[u]] = v
		cur[u]++
		g.adj[cur[v]] = u
		cur[v]++
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.edges }

// Degree returns the degree of u.
func (g *Graph) Degree(u NodeID) int { return int(g.offs[u+1] - g.offs[u]) }

// MaxDegree returns the maximum degree Δ, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for u := 0; u < g.n; u++ {
		if d := g.Degree(u); d > max {
			max = d
		}
	}
	return max
}

// Neighbors returns the sorted adjacency list of u as a zero-copy view into
// the graph's CSR backing array. The view stays valid for the lifetime of
// the (immutable) graph and is shared by every caller; it must not be
// modified.
func (g *Graph) Neighbors(u NodeID) []NodeID { return g.adj[g.offs[u]:g.offs[u+1]] }

// CSR exposes the flat adjacency arrays: offs has length N()+1 and
// adj[offs[u]:offs[u+1]] is u's sorted neighbor list. Hot loops (the engine's
// delivery pass) iterate these directly instead of calling Neighbors per
// node. Both slices are the graph's own storage and must be treated as
// read-only.
func (g *Graph) CSR() (offs []int32, adj []NodeID) { return g.offs, g.adj }

// HasEdge reports whether (u, v) is an edge.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if u < 0 || v < 0 || u >= g.n || v >= g.n || u == v {
		return false
	}
	a := g.Neighbors(u)
	i := sort.SearchInts(a, v)
	return i < len(a) && a[i] == v
}

// ForEachEdge calls fn once per undirected edge with u < v.
func (g *Graph) ForEachEdge(fn func(u, v NodeID)) {
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				fn(u, v)
			}
		}
	}
}

// Point is a position in the Euclidean plane for geographic graphs.
type Point struct {
	X, Y float64
}

// Dual is a dual graph network (G, G') with E ⊆ E'. Extra adjacency (the
// adversary-controlled edges E' \ E) is precomputed in its own CSR arrays.
// If the network carries a geographic embedding, Pos is non-nil and Radius
// holds the constant r ≥ 1 of the Section 2 constraint.
type Dual struct {
	g  *Graph
	gp *Graph

	// CSR adjacency restricted to E' \ E, sorted per node.
	extraOffs []int32
	extraAdj  []NodeID

	unionComplete bool

	// Geographic embedding, nil/0 when absent.
	pos    []Point
	radius float64

	// sparse memoizes SparseMasksOf(d): block-sparse mask rows for G and G'
	// under one shared cluster-major order. Keyed on the Dual (not the
	// graphs) because both mask sets must agree on bit positions.
	sparse sparseMaskCache
}

// ErrNotSubset is returned when the reliable graph is not a subgraph of G'.
var ErrNotSubset = errors.New("graph: E(G) is not a subset of E(G')")

// NewDual validates E ⊆ E' and builds the dual graph. Both the subset check
// and the E' \ E adjacency fall out of one sorted-list difference walk per
// node over the two CSR rows.
func NewDual(g, gp *Graph) (*Dual, error) {
	if g.N() != gp.N() {
		return nil, fmt.Errorf("graph: vertex count mismatch: G has %d, G' has %d", g.N(), gp.N())
	}
	n := g.N()
	d := &Dual{g: g, gp: gp}
	d.extraOffs = make([]int32, n+1)
	d.extraAdj = make([]NodeID, 0, max(0, 2*(gp.NumEdges()-g.NumEdges())))
	for u := 0; u < n; u++ {
		ga, gpa := g.Neighbors(u), gp.Neighbors(u)
		i := 0
		for _, v := range gpa {
			if i < len(ga) {
				if ga[i] < v {
					// g neighbor absent from the (sorted) gp row.
					return nil, fmt.Errorf("%w: edge (%d,%d)", ErrNotSubset, u, ga[i])
				}
				if ga[i] == v {
					i++
					continue
				}
			}
			d.extraAdj = append(d.extraAdj, v)
		}
		if i < len(ga) {
			return nil, fmt.Errorf("%w: edge (%d,%d)", ErrNotSubset, u, ga[i])
		}
		d.extraOffs[u+1] = int32(len(d.extraAdj))
	}
	d.unionComplete = gp.NumEdges() == n*(n-1)/2
	return d, nil
}

// MustDual is NewDual that panics on error, for use with constructions that
// are correct by design.
func MustDual(g, gp *Graph) *Dual {
	d, err := NewDual(g, gp)
	if err != nil {
		panic(err)
	}
	return d
}

// UniformDual wraps a single graph as the dual graph (G, G), which is exactly
// the static protocol model.
func UniformDual(g *Graph) *Dual {
	return &Dual{
		g: g, gp: g,
		extraOffs:     make([]int32, g.N()+1),
		unionComplete: g.NumEdges() == g.N()*(g.N()-1)/2,
	}
}

// N returns the number of nodes.
func (d *Dual) N() int { return d.g.N() }

// G returns the reliable graph.
func (d *Dual) G() *Graph { return d.g }

// GPrime returns the unreliable superset graph G'.
func (d *Dual) GPrime() *Graph { return d.gp }

// ExtraNeighbors returns u's sorted neighbors across E' \ E as a zero-copy
// view into the dual's CSR backing array. Like Graph.Neighbors, the view is
// valid for the network's lifetime and must not be modified.
func (d *Dual) ExtraNeighbors(u NodeID) []NodeID {
	return d.extraAdj[d.extraOffs[u]:d.extraOffs[u+1]]
}

// ExtraCSR exposes the flat E' \ E adjacency arrays, in the same layout as
// Graph.CSR. Read-only.
func (d *Dual) ExtraCSR() (offs []int32, adj []NodeID) { return d.extraOffs, d.extraAdj }

// NumExtraEdges returns |E' \ E|.
func (d *Dual) NumExtraEdges() int { return d.gp.NumEdges() - d.g.NumEdges() }

// UnionComplete reports whether G' is the complete graph, enabling the
// engine's dense-round fast path.
func (d *Dual) UnionComplete() bool { return d.unionComplete }

// MaxDegree returns Δ, the maximum degree in G' (the paper's Δ).
func (d *Dual) MaxDegree() int { return d.gp.MaxDegree() }

// Pos returns the geographic embedding or nil.
func (d *Dual) Pos() []Point { return d.pos }

// Radius returns the geographic constant r, or 0 when not geographic.
func (d *Dual) Radius() float64 { return d.radius }

// Geographic reports whether the network carries an embedding.
func (d *Dual) Geographic() bool { return d.pos != nil }

// SetEmbedding attaches a geographic embedding. It does not re-validate the
// unit-disk constraint; constructions in this package produce consistent
// embeddings, and ValidateGeographic checks arbitrary ones.
func (d *Dual) SetEmbedding(pos []Point, radius float64) {
	d.pos = pos
	d.radius = radius
}

// ValidateGeographic checks the Section 2 constraint against the embedding:
// d(u,v) ≤ 1 implies (u,v) ∈ G, and d(u,v) > r implies (u,v) ∉ G'.
func (d *Dual) ValidateGeographic() error {
	if d.pos == nil {
		return errors.New("graph: no embedding")
	}
	if d.radius < 1 {
		return fmt.Errorf("graph: geographic radius %v < 1", d.radius)
	}
	n := d.N()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dd := dist2(d.pos[u], d.pos[v])
			if dd <= 1 && !d.g.HasEdge(u, v) {
				return fmt.Errorf("graph: nodes %d,%d at distance ≤ 1 not connected in G", u, v)
			}
			if dd > d.radius*d.radius && d.gp.HasEdge(u, v) {
				return fmt.Errorf("graph: nodes %d,%d at distance > r connected in G'", u, v)
			}
		}
	}
	return nil
}

func dist2(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}
