package graph

import "fmt"

// Topology churn: a Revision derives a new immutable CSR dual graph from a
// base dual plus a deterministic list of churn operations — node departures
// and rejoins, edge additions and removals on G and G'. Each revision is a
// full Dual in its own right (its own CSR arrays, its own memoized clique
// cover), so every zero-copy contract of the static core holds per revision;
// the scenario layer precompiles one revision per epoch and the engine swaps
// its hoisted views at epoch boundaries.

// ChurnKind selects a churn operation.
type ChurnKind int

const (
	// ChurnAddEdge adds (U, V) to the reliable graph G — and, to preserve
	// E ⊆ E', to G' as well.
	ChurnAddEdge ChurnKind = iota + 1
	// ChurnRemoveEdge removes (U, V) from G. The edge remains in G': a
	// formerly reliable link demoted to adversary-controlled.
	ChurnRemoveEdge
	// ChurnAddExtraEdge adds (U, V) to G' only (a new unreliable link).
	ChurnAddExtraEdge
	// ChurnRemoveExtraEdge removes (U, V) from G' — and, to preserve E ⊆ E',
	// from G as well. The link disappears entirely.
	ChurnRemoveExtraEdge
	// ChurnLeave takes node U offline: every edge incident to U is removed
	// from both G and G'. Leaving while already departed is a no-op.
	ChurnLeave
	// ChurnJoin brings node U back online: every edge of the *original base*
	// revision incident to U whose other endpoint is currently present is
	// restored to its base graph (G edges to G and G', extra edges to G').
	// Joining while present is a no-op.
	ChurnJoin
)

// String implements fmt.Stringer.
func (k ChurnKind) String() string {
	switch k {
	case ChurnAddEdge:
		return "add-edge"
	case ChurnRemoveEdge:
		return "remove-edge"
	case ChurnAddExtraEdge:
		return "add-extra"
	case ChurnRemoveExtraEdge:
		return "remove-extra"
	case ChurnLeave:
		return "leave"
	case ChurnJoin:
		return "join"
	default:
		return "unknown"
	}
}

// ChurnOp is one churn operation. Edge ops use U and V; node ops use U only.
type ChurnOp struct {
	Kind ChurnKind
	U, V NodeID
}

// Revision is one immutable topology in a churn sequence: the dual graph it
// denotes plus the bookkeeping (base adjacency, departed set) the next
// Apply needs. The vertex set never changes across revisions — a departed
// node keeps its id and simply has no edges — so per-node engine and
// algorithm state carries across epochs untouched.
type Revision struct {
	dual *Dual
	// base is the epoch-0 dual; ChurnJoin restores adjacency from it.
	base *Dual
	// departed[u] reports whether u is currently offline.
	departed []bool
}

// NewRevision wraps a base dual as revision zero of a churn sequence.
func NewRevision(base *Dual) *Revision {
	return &Revision{dual: base, base: base, departed: make([]bool, base.N())}
}

// Dual returns the revision's immutable dual graph.
func (rv *Revision) Dual() *Dual { return rv.dual }

// Departed reports whether node u is offline in this revision.
func (rv *Revision) Departed(u NodeID) bool { return rv.departed[u] }

// edgeSet is a mutable packed-key edge set used only while applying churn;
// Apply rebuilds immutable CSR graphs from it through the ordinary Builder.
type edgeSet map[uint64]struct{}

func edgeKey(u, v NodeID) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(v)
}

func setOf(g *Graph) edgeSet {
	s := make(edgeSet, g.NumEdges())
	g.ForEachEdge(func(u, v NodeID) { s[edgeKey(u, v)] = struct{}{} })
	return s
}

// Apply derives the next revision: ops execute in order against this
// revision's topology, then the result is finalized into fresh CSR duals.
// Out-of-range endpoints and self-loop edge ops are errors (a typo'd op
// would otherwise silently vanish from a deterministic schedule); edge ops
// naming a departed endpoint are ignored until the node rejoins, mirroring
// ChurnLeave's "offline" semantics. The receiver is unchanged.
func (rv *Revision) Apply(ops []ChurnOp) (*Revision, error) {
	n := rv.dual.N()
	next := &Revision{base: rv.base, departed: append([]bool(nil), rv.departed...)}
	gSet := setOf(rv.dual.G())
	gpSet := setOf(rv.dual.GPrime())

	present := func(u NodeID) bool { return !next.departed[u] }
	for i, op := range ops {
		switch op.Kind {
		case ChurnAddEdge, ChurnRemoveEdge, ChurnAddExtraEdge, ChurnRemoveExtraEdge:
			if op.U < 0 || op.V < 0 || op.U >= n || op.V >= n || op.U == op.V {
				return nil, fmt.Errorf("graph: churn op %d: %v (%d,%d) out of range for %d nodes", i, op.Kind, op.U, op.V, n)
			}
			if !present(op.U) || !present(op.V) {
				continue
			}
			key := edgeKey(op.U, op.V)
			switch op.Kind {
			case ChurnAddEdge:
				gSet[key] = struct{}{}
				gpSet[key] = struct{}{}
			case ChurnRemoveEdge:
				delete(gSet, key)
			case ChurnAddExtraEdge:
				gpSet[key] = struct{}{}
			case ChurnRemoveExtraEdge:
				delete(gSet, key)
				delete(gpSet, key)
			}
		case ChurnLeave:
			if op.U < 0 || op.U >= n {
				return nil, fmt.Errorf("graph: churn op %d: leave node %d out of range for %d nodes", i, op.U, n)
			}
			if next.departed[op.U] {
				continue
			}
			next.departed[op.U] = true
			// Drop every incident edge; iterating the current G' adjacency of
			// the *previous* revision is not enough (ops earlier in this list
			// may have added edges), so walk the sets.
			for key := range gpSet {
				if NodeID(key>>32) == op.U || NodeID(uint32(key)) == op.U {
					delete(gpSet, key)
					delete(gSet, key)
				}
			}
		case ChurnJoin:
			if op.U < 0 || op.U >= n {
				return nil, fmt.Errorf("graph: churn op %d: join node %d out of range for %d nodes", i, op.U, n)
			}
			if !next.departed[op.U] {
				continue
			}
			next.departed[op.U] = false
			for _, v := range rv.base.G().Neighbors(op.U) {
				if present(v) {
					gSet[edgeKey(op.U, v)] = struct{}{}
					gpSet[edgeKey(op.U, v)] = struct{}{}
				}
			}
			for _, v := range rv.base.ExtraNeighbors(op.U) {
				if present(v) {
					gpSet[edgeKey(op.U, v)] = struct{}{}
				}
			}
		default:
			return nil, fmt.Errorf("graph: churn op %d: unknown kind %d", i, op.Kind)
		}
	}

	gb, gpb := NewBuilder(n), NewBuilder(n)
	gb.Grow(len(gSet))
	gpb.Grow(len(gpSet))
	for key := range gSet {
		//dglint:allow detrand: Builder.Build sorts and dedups, erasing insertion order
		gb.AddEdge(NodeID(key>>32), NodeID(uint32(key)))
	}
	for key := range gpSet {
		//dglint:allow detrand: Builder.Build sorts and dedups, erasing insertion order
		gpb.AddEdge(NodeID(key>>32), NodeID(uint32(key)))
	}
	d, err := NewDual(gb.Build(), gpb.Build())
	if err != nil {
		// Unreachable by construction (every op preserves E ⊆ E'), but a
		// loud failure beats a silent bad topology if that invariant slips.
		return nil, fmt.Errorf("graph: churn produced invalid dual: %w", err)
	}
	if rv.base.Geographic() {
		d.SetEmbedding(rv.base.Pos(), rv.base.Radius())
	}
	next.dual = d
	return next, nil
}

// ApplyChurn is the one-shot form: base plus one op list, no chaining.
func ApplyChurn(base *Dual, ops []ChurnOp) (*Dual, error) {
	next, err := NewRevision(base).Apply(ops)
	if err != nil {
		return nil, err
	}
	return next.Dual(), nil
}
