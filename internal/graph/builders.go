package graph

import (
	"math"

	"repro/internal/bitrand"
)

// Line returns the path graph on n nodes: 0-1-2-...-(n-1).
func Line(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

// Ring returns the cycle graph on n nodes.
func Ring(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	if n > 2 {
		b.AddEdge(n-1, 0)
	}
	return b.Build()
}

// Clique returns the complete graph on n nodes.
func Clique(n int) *Graph {
	b := NewBuilder(n)
	b.Grow(n * (n - 1) / 2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

// Star returns the star with center 0 and n-1 leaves.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	return b.Build()
}

// Grid returns the w×h grid graph; node (x, y) has id y*w+x.
func Grid(w, h int) *Graph {
	b := NewBuilder(w * h)
	b.Grow(2 * w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < h {
				b.AddEdge(id(x, y), id(x, y+1))
			}
		}
	}
	return b.Build()
}

// DualCliqueMarkers identifies the special nodes of the dual clique network.
type DualCliqueMarkers struct {
	// TA and TB are the endpoints of the single G bridge between clique A
	// (nodes 0..n/2-1) and clique B (nodes n/2..n-1).
	TA, TB NodeID
	// SizeA is the size of clique A; clique B holds the rest.
	SizeA int
}

// InA reports whether u lies in clique A.
func (m DualCliqueMarkers) InA(u NodeID) bool { return u < m.SizeA }

// DualClique builds the Theorem 3.1 lower-bound network on n nodes (n ≥ 4,
// rounded down to even): two G-cliques A = {0..n/2-1} and B = {n/2..n-1}
// joined by the single G edge (tA, tB), with G' the complete graph. The
// bridge endpoints are chosen by the caller-supplied index t in [0, n/2):
// tA = t and tB = t + n/2, mirroring the paper's hidden-target construction.
func DualClique(n, t int) (*Dual, DualCliqueMarkers) {
	if n < 4 {
		n = 4
	}
	n -= n % 2
	half := n / 2
	if t < 0 || t >= half {
		t = 0
	}
	b := NewBuilder(n)
	b.Grow(half*(half-1) + 1)
	for i := 0; i < half; i++ {
		for j := i + 1; j < half; j++ {
			b.AddEdge(i, j)
			b.AddEdge(half+i, half+j)
		}
	}
	m := DualCliqueMarkers{TA: t, TB: t + half, SizeA: half}
	b.AddEdge(m.TA, m.TB)
	g := b.Build()
	gp := Clique(n)
	return MustDual(g, gp), m
}

// TwoCliques builds the dual clique's reliable skeleton with no unreliable
// fringe at all: two G-cliques A = {0..n/2-1} and B = {n/2..n-1} joined by
// the single bridge (n/2-1, n/2), with G' = G (n ≥ 4, rounded down to
// even). Because the base E'\E is empty, the only unreliable links that can
// ever exist are the ones a churn scenario flares up — the structure the
// ADV-churnwindow family attacks.
func TwoCliques(n int) *Dual {
	if n < 4 {
		n = 4
	}
	n -= n % 2
	half := n / 2
	b := NewBuilder(n)
	b.Grow(half*(half-1) + 1)
	for i := 0; i < half; i++ {
		for j := i + 1; j < half; j++ {
			b.AddEdge(i, j)
			b.AddEdge(half+i, half+j)
		}
	}
	b.AddEdge(half-1, half)
	return UniformDual(b.Build())
}

// BraceletMarkers identifies the structure of the bracelet network.
type BraceletMarkers struct {
	// Bands is the number of bands per side (√(n)/2 in the paper).
	Bands int
	// BandLen is the number of nodes per band (√(n)/2 in the paper).
	BandLen int
	// AHead[i] and BHead[i] are the head nodes a_i and b_i.
	AHead, BHead []NodeID
	// ClaspA and ClaspB are the endpoints a_t, b_t of the single clasp edge.
	ClaspA, ClaspB NodeID
}

// SideA reports whether u belongs to the A side.
func (m BraceletMarkers) SideA(u NodeID) bool { return u < m.Bands*m.BandLen }

// Bracelet builds the Theorem 4.3 lower-bound network. From a target size n
// it derives k = max(2, floor(sqrt(n)/2)) bands per side, each a G-line of k
// nodes. Node layout: A-side band i occupies ids [i*k, (i+1)*k), with the
// head a_i at offset 0; the B side follows symmetrically. G' adds all head
// pairs (a_i, b_j); G adds the clasp (a_t, b_t) for the hidden index t, and a
// clique over all band tails keeps G connected. The actual node count is
// 2k².
func Bracelet(n, t int) (*Dual, BraceletMarkers) {
	k := int(math.Sqrt(float64(n)) / 2)
	if k < 2 {
		k = 2
	}
	return BraceletExplicit(k, k, t)
}

// BraceletExplicit builds a bracelet with the given number of bands per side
// and band length. Exposing both parameters lets experiments decouple the
// number of G'-connected heads from the isolation depth.
func BraceletExplicit(bands, bandLen, t int) (*Dual, BraceletMarkers) {
	if bands < 1 {
		bands = 1
	}
	if bandLen < 1 {
		bandLen = 1
	}
	if t < 0 || t >= bands {
		t = 0
	}
	n := 2 * bands * bandLen
	m := BraceletMarkers{
		Bands:   bands,
		BandLen: bandLen,
		AHead:   make([]NodeID, bands),
		BHead:   make([]NodeID, bands),
	}
	aNode := func(band, off int) NodeID { return band*bandLen + off }
	bNode := func(band, off int) NodeID { return bands*bandLen + band*bandLen + off }

	gb := NewBuilder(n)
	gb.Grow(2*bands*(bandLen-1) + bands*(2*bands-1) + 1)
	tails := make([]NodeID, 0, 2*bands)
	for i := 0; i < bands; i++ {
		m.AHead[i] = aNode(i, 0)
		m.BHead[i] = bNode(i, 0)
		for off := 0; off+1 < bandLen; off++ {
			gb.AddEdge(aNode(i, off), aNode(i, off+1))
			gb.AddEdge(bNode(i, off), bNode(i, off+1))
		}
		tails = append(tails, aNode(i, bandLen-1), bNode(i, bandLen-1))
	}
	// Tail clique keeps G connected (paper: endpoints joined in a clique).
	for i := 0; i < len(tails); i++ {
		for j := i + 1; j < len(tails); j++ {
			gb.AddEdge(tails[i], tails[j])
		}
	}
	m.ClaspA, m.ClaspB = m.AHead[t], m.BHead[t]
	gb.AddEdge(m.ClaspA, m.ClaspB)
	g := gb.Build()

	gpb := NewBuilder(n)
	gpb.Grow(g.NumEdges() + bands*bands)
	g.ForEachEdge(gpb.AddEdge)
	for i := 0; i < bands; i++ {
		for j := 0; j < bands; j++ {
			gpb.AddEdge(m.AHead[i], m.BHead[j])
		}
	}
	gp := gpb.Build()
	return MustDual(g, gp), m
}

// GeographicConfig parameterizes random geographic dual graphs.
type GeographicConfig struct {
	// N is the number of nodes.
	N int
	// Side is the side length of the square deployment area.
	Side float64
	// Radius is the geographic constant r ≥ 1: pairs closer than 1 are in G,
	// pairs farther than r are not in G', pairs in between are in G' only
	// (the grey zone controlled by the adversary).
	Radius float64
	// GreyProb is the probability that a grey-zone pair (distance in (1, r])
	// is included in G' at all; 1 includes every grey pair.
	GreyProb float64
}

// Geographic samples node positions uniformly in the square and builds the
// dual graph dictated by the Section 2 constraint: G is the unit disk graph,
// G' adds grey-zone pairs at distance in (1, r]. If the resulting G is
// disconnected, positions are resampled (up to a bounded number of attempts);
// the final graph may still be disconnected for sparse configurations, which
// callers can detect with Connected.
func Geographic(src *bitrand.Source, cfg GeographicConfig) *Dual {
	if cfg.N < 1 {
		cfg.N = 1
	}
	if cfg.Radius < 1 {
		cfg.Radius = 1
	}
	if cfg.Side <= 0 {
		cfg.Side = 1
	}
	if cfg.GreyProb < 0 {
		cfg.GreyProb = 0
	}
	if cfg.GreyProb > 1 {
		cfg.GreyProb = 1
	}
	var d *Dual
	for attempt := 0; attempt < 32; attempt++ {
		pos := make([]Point, cfg.N)
		for i := range pos {
			pos[i] = Point{X: src.Float64() * cfg.Side, Y: src.Float64() * cfg.Side}
		}
		gb := NewBuilder(cfg.N)
		gpb := NewBuilder(cfg.N)
		r2 := cfg.Radius * cfg.Radius
		for u := 0; u < cfg.N; u++ {
			for v := u + 1; v < cfg.N; v++ {
				dd := dist2(pos[u], pos[v])
				switch {
				case dd <= 1:
					gb.AddEdge(u, v)
					gpb.AddEdge(u, v)
				case dd <= r2:
					if cfg.GreyProb >= 1 || src.Coin(cfg.GreyProb) {
						gpb.AddEdge(u, v)
					}
				}
			}
		}
		d = MustDual(gb.Build(), gpb.Build())
		d.SetEmbedding(pos, cfg.Radius)
		if Connected(d.G()) {
			return d
		}
	}
	return d
}

// GeographicGrid places n ≈ w*h nodes on a jittered grid with the given
// spacing (< 1 guarantees G connectivity between grid neighbors) and builds
// the unit-disk dual graph with grey zone up to radius r. Deterministic given
// the source; always connected for spacing ≤ 1/√2.
func GeographicGrid(src *bitrand.Source, w, h int, spacing, radius float64) *Dual {
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	if radius < 1 {
		radius = 1
	}
	n := w * h
	pos := make([]Point, n)
	jitter := spacing * 0.2
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			pos[i] = Point{
				X: float64(x)*spacing + (src.Float64()-0.5)*jitter,
				Y: float64(y)*spacing + (src.Float64()-0.5)*jitter,
			}
		}
	}
	gb := NewBuilder(n)
	gpb := NewBuilder(n)
	r2 := radius * radius
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dd := dist2(pos[u], pos[v])
			switch {
			case dd <= 1:
				gb.AddEdge(u, v)
				gpb.AddEdge(u, v)
			case dd <= r2:
				gpb.AddEdge(u, v)
			}
		}
	}
	d := MustDual(gb.Build(), gpb.Build())
	d.SetEmbedding(pos, radius)
	return d
}

// ErdosRenyi returns G(n, p) with edges sampled independently.
func ErdosRenyi(src *bitrand.Source, n int, p float64) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if src.Coin(p) {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// Circulant returns the circulant graph C_n(1..d/2): node u is adjacent to
// u±k (mod n) for k = 1..d/2, so every node has degree 2·⌊d/2⌋ (clamped
// below n). Unlike ErdosRenyi this costs O(n·d), not O(n²), which makes it
// the dense-but-buildable substrate of the SCALE experiments: diameter
// ⌈n/d⌉-ish, vertex-transitive, deterministic.
func Circulant(n, d int) *Graph {
	half := d / 2
	if half >= n/2 {
		half = (n - 1) / 2
	}
	if half < 1 {
		half = 1
	}
	b := NewBuilder(n)
	b.Grow(n * half)
	for u := 0; u < n; u++ {
		for k := 1; k <= half; k++ {
			b.AddEdge(u, (u+k)%n)
		}
	}
	return b.Build()
}

// RingChords returns a ring on n nodes augmented with the given number of
// uniformly sampled chords: connected by construction, O(n + chords) to
// build, with the small diameter of a random bounded-degree expander. This
// is the sparse large-n substrate of the SCALE experiments, where the O(n²)
// pair scans of ErdosRenyi/RandomDual are infeasible.
func RingChords(src *bitrand.Source, n, chords int) *Graph {
	b := NewBuilder(n)
	b.Grow(n + chords)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	if n > 2 {
		b.AddEdge(n-1, 0)
	}
	for i := 0; i < chords; i++ {
		// Self-loops are dropped by AddEdge and duplicates by Build, so the
		// realized chord count may fall slightly short of the request.
		b.AddEdge(src.Intn(n), src.Intn(n))
	}
	return b.Build()
}

// AugmentDual builds a dual graph whose reliable part is g and whose G' adds
// the given number of uniformly sampled non-G pairs. The direct sampling
// costs O(|E| + extra), unlike RandomDual's O(n²) pair scan; pairs that land
// on an existing edge (or a repeat draw) are dropped, so the realized E'\E
// may fall slightly short of the request on dense graphs.
func AugmentDual(src *bitrand.Source, g *Graph, extra int) *Dual {
	n := g.N()
	b := NewBuilder(n)
	b.Grow(g.NumEdges() + extra)
	g.ForEachEdge(b.AddEdge)
	for i := 0; i < extra; i++ {
		u, v := src.Intn(n), src.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			b.AddEdge(u, v)
		}
	}
	return MustDual(g, b.Build())
}

// RandomDual builds a dual graph whose reliable part is the given connected
// graph and whose G' adds each non-G pair independently with probability
// extraP. Used for unstructured robustness tests.
func RandomDual(src *bitrand.Source, g *Graph, extraP float64) *Dual {
	n := g.N()
	b := NewBuilder(n)
	g.ForEachEdge(b.AddEdge)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) && src.Coin(extraP) {
				b.AddEdge(u, v)
			}
		}
	}
	return MustDual(g, b.Build())
}
