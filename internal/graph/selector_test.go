package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/bitrand"
)

func TestSelectAllNone(t *testing.T) {
	var all SelectAll
	var none SelectNone
	if !all.All() || all.None() || !all.Includes(1, 2) {
		t.Fatal("SelectAll misbehaves")
	}
	if none.All() || !none.None() || none.Includes(1, 2) {
		t.Fatal("SelectNone misbehaves")
	}
}

func TestSelectSet(t *testing.T) {
	s := NewSelectSet([]EdgeKey{{U: 3, V: 1}, {U: 2, V: 5}})
	if !s.Includes(1, 3) || !s.Includes(3, 1) || !s.Includes(5, 2) {
		t.Fatal("set membership broken")
	}
	if s.Includes(1, 2) || s.All() || s.None() {
		t.Fatal("set should not include (1,2) nor be all/none")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	empty := NewSelectSet(nil)
	if !empty.None() {
		t.Fatal("empty set must report None")
	}
}

func TestSelectCrossCut(t *testing.T) {
	s := SelectCrossCut{InA: func(u NodeID) bool { return u < 5 }}
	if s.Includes(1, 7) || !s.Includes(1, 2) || !s.Includes(7, 9) {
		t.Fatal("cross cut wrong")
	}
}

func TestSelectFunc(t *testing.T) {
	s := SelectFunc{F: func(u, v NodeID) bool { return (u+v)%2 == 0 }}
	if !s.Includes(1, 3) || s.Includes(1, 2) {
		t.Fatal("func selector wrong")
	}
}

func TestMakeEdgeKeyCanonical(t *testing.T) {
	err := quick.Check(func(a, b uint8) bool {
		k1 := MakeEdgeKey(int(a), int(b))
		k2 := MakeEdgeKey(int(b), int(a))
		return k1 == k2 && k1.U <= k1.V
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCliqueCoverDualClique(t *testing.T) {
	d, _ := DualClique(32, 0)
	c := BuildCliqueCover(d.G())
	if !c.Validate(d.G()) {
		t.Fatal("cover invalid")
	}
	if c.Count != 2 {
		t.Fatalf("dual clique should cover with 2 cliques, got %d", c.Count)
	}
	if len(c.Residual) != 1 {
		t.Fatalf("residual should be just the bridge, got %d edges", len(c.Residual))
	}
}

func TestCliqueCoverLine(t *testing.T) {
	g := Line(10)
	c := BuildCliqueCover(g)
	if !c.Validate(g) {
		t.Fatal("cover invalid on line")
	}
	// Edges of a line are 2-cliques; total residual + intra == edges.
}

func TestCliqueCoverRandomQuick(t *testing.T) {
	src := bitrand.New(31)
	err := quick.Check(func(seed uint32, raw uint8) bool {
		n := int(raw%40) + 2
		s := src.Split(uint64(seed))
		g := ErdosRenyi(s, n, 0.25)
		return BuildCliqueCover(g).Validate(g)
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}
