package graph

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/bitrand"
)

// This file implements a deterministic (C, d)-network-decomposition of the
// reliable graph G, in the spirit of Rozhoň–Ghaffari (STOC 2020): a partition
// of the nodes into clusters, each cluster assigned one of O(log n) color
// classes, such that
//
//   - clusters of the same color are pairwise non-adjacent in G, and
//   - every cluster has weak diameter O(log n): its members sit within
//     G-distance Radius of a center node, with Radius ≤ ⌊log₂ n⌋.
//
// The construction is sequential deterministic ball carving. Colors are
// carved in iterations; within an iteration, seeds are scanned in ascending
// node id, and a BFS ball is grown around each seed through the nodes still
// available this iteration. The ball accepts its next BFS shell as long as
// the shell is at least as large as the ball (so the ball at least doubles
// per unit of radius, bounding the radius by log₂ n); when growth stalls the
// ball becomes a cluster of the current color and the stalling shell is
// deferred to the next iteration. Every available neighbor of a carved ball
// lands in its deferred shell, which is what makes same-color clusters
// non-adjacent; and each iteration defers strictly fewer nodes than it
// clusters, so the remainder at least halves per color and the color count is
// at most ⌊log₂ n⌋ + 1.
//
// The output is CSR-style (flat member array plus offsets, BFS order within
// each cluster) and memoized per immutable graph via DecompositionOf, exactly
// like CliqueCoverOf and NeighborMasksOf. The decomposition also carries the
// sweep-schedule geometry consumed by the derandomized broadcast algorithm
// (internal/core/derand.go): per-color phase offsets and lengths, so a round
// number alone determines the unique transmitting member of every cluster.

// Decomposition is a deterministic network decomposition of a graph: a
// partition into clusters with colors, BFS trees, and the derived
// transmission-schedule geometry. All exported slices are read-only.
type Decomposition struct {
	// Count is the number of clusters; Colors the number of color classes.
	Count  int
	Colors int

	// Of[u] is the cluster index of node u; Pos[u] is u's BFS visit order
	// within its cluster (0 for the center); Parent[u] is u's BFS-tree parent
	// within its cluster, -1 for centers.
	Of     []int
	Pos    []int
	Parent []NodeID

	// Color, Center and Radius are per-cluster: the color class, the ball
	// center, and the BFS radius of the ball (every member is within
	// G-distance Radius of Center).
	Color  []int
	Center []NodeID
	Radius []int

	// Flat member storage: members[memberOffs[k]:memberOffs[k+1]] lists
	// cluster k's nodes in BFS order (index i has Pos == i).
	memberOffs []int32
	members    []NodeID

	// Sweep-schedule geometry: a sweep of sweepLen rounds runs one phase per
	// color, phase c occupying slots [phaseOff[c], phaseOff[c]+phaseLen[c]),
	// with phaseLen[c] the largest cluster size of color c, floored at
	// ⌊log₂ n⌋+1 so the per-sweep rotation can scatter small same-color
	// clusters across distinct slots.
	phaseOff []int
	phaseLen []int
	sweepLen int
}

// decompCache memoizes BuildDecomposition per graph (see DecompositionOf).
type decompCache struct {
	once sync.Once
	d    *Decomposition
}

// DecompositionOf returns the graph's deterministic network decomposition,
// computing it on first use. Graphs are immutable, so the decomposition is
// built at most once per graph and shared by every trial that runs on it;
// epoch schedules re-key automatically because each churn revision is a
// distinct graph value.
func DecompositionOf(g *Graph) *Decomposition {
	g.decomp.once.Do(func() { g.decomp.d = BuildDecomposition(g) })
	return g.decomp.d
}

// BuildDecomposition carves the deterministic decomposition of g. The
// construction reads only the graph structure — no randomness — so repeated
// builds are identical; DecompositionOf is the memoized entry point.
func BuildDecomposition(g *Graph) *Decomposition {
	n := g.N()
	d := &Decomposition{
		Of:         make([]int, n),
		Pos:        make([]int, n),
		Parent:     make([]NodeID, n),
		memberOffs: make([]int32, 1, n/2+2),
		members:    make([]NodeID, 0, n),
	}
	for u := 0; u < n; u++ {
		d.Of[u] = -1
		d.Parent[u] = -1
	}
	// deferredAt[u] is the color iteration that pushed u out of a stalling
	// shell; u is available in iteration c iff it is unclustered and
	// deferredAt[u] != c. seen stamps BFS visits per ball.
	deferredAt := make([]int, n)
	seen := make([]int, n)
	for u := 0; u < n; u++ {
		deferredAt[u] = -1
		seen[u] = -1
	}
	queue := make([]NodeID, 0, n)
	remaining := n
	ballID := 0
	for color := 0; remaining > 0; color++ {
		for seed := 0; seed < n; seed++ {
			if d.Of[seed] >= 0 || deferredAt[seed] == color {
				continue
			}
			// Grow a ball around seed through this iteration's available
			// nodes. queue[lo:hi] is the outermost accepted BFS layer;
			// expanding it discovers the candidate shell queue[hi:].
			queue = append(queue[:0], seed)
			seen[seed] = ballID
			d.Parent[seed] = -1
			lo, hi := 0, 1
			radius := 0
			ballEnd := 1
			for {
				for i := lo; i < hi; i++ {
					u := queue[i]
					for _, v := range g.Neighbors(u) {
						if d.Of[v] >= 0 || deferredAt[v] == color || seen[v] == ballID {
							continue
						}
						seen[v] = ballID
						d.Parent[v] = u
						queue = append(queue, v)
					}
				}
				shell := len(queue) - hi
				if shell == 0 {
					// Component exhausted: the whole queue is the ball.
					ballEnd = len(queue)
					break
				}
				if shell < hi {
					// Growth stalled: keep the ball, defer the shell.
					ballEnd = hi
					break
				}
				// Shell at least as large as the ball: accept it (the ball
				// at least doubles, so radius stays ≤ log₂ n) and continue.
				lo, hi = hi, len(queue)
				radius++
			}
			k := d.Count
			for pos, u := range queue[:ballEnd] {
				d.Of[u] = k
				d.Pos[u] = pos
			}
			for _, u := range queue[ballEnd:] {
				deferredAt[u] = color
			}
			d.members = append(d.members, queue[:ballEnd]...)
			d.memberOffs = append(d.memberOffs, int32(len(d.members)))
			d.Color = append(d.Color, color)
			d.Center = append(d.Center, seed)
			d.Radius = append(d.Radius, radius)
			d.Count++
			remaining -= ballEnd
			ballID++
		}
		d.Colors = color + 1
	}
	// Schedule geometry: each color's phase is as long as its largest
	// cluster, so every member of every cluster owns at least one slot per
	// sweep — but never shorter than the ⌊log₂ n⌋+1 spreading floor. The
	// floor matters when a color class is dominated by small clusters: with
	// a phase of length 1 every cluster of the color would transmit in the
	// same slot every sweep, permanently colliding at any listener with two
	// informed neighbors of that color (a 6×8 grid already exhibits this).
	// With a longer phase, the per-sweep hashed rotation in Owns scatters
	// small clusters across distinct slots, so some informed neighbor is
	// eventually the unique transmitter.
	d.phaseLen = make([]int, d.Colors)
	spread := bits.Len(uint(n))
	for c := range d.phaseLen {
		d.phaseLen[c] = spread
	}
	for k := 0; k < d.Count; k++ {
		if size := d.ClusterSize(k); size > d.phaseLen[d.Color[k]] {
			d.phaseLen[d.Color[k]] = size
		}
	}
	d.phaseOff = make([]int, d.Colors)
	for c := 1; c < d.Colors; c++ {
		d.phaseOff[c] = d.phaseOff[c-1] + d.phaseLen[c-1]
	}
	if d.Colors > 0 {
		d.sweepLen = d.phaseOff[d.Colors-1] + d.phaseLen[d.Colors-1]
	}
	return d
}

// Members returns cluster k's nodes in BFS order as a zero-copy read-only
// view (member i has Pos == i; member 0 is the center).
func (d *Decomposition) Members(k int) []NodeID {
	return d.members[d.memberOffs[k]:d.memberOffs[k+1]]
}

// ClusterSize returns the number of nodes in cluster k.
func (d *Decomposition) ClusterSize(k int) int {
	return int(d.memberOffs[k+1] - d.memberOffs[k])
}

// SweepLen returns the length of one full schedule sweep: the sum over
// colors of that color's phase length.
func (d *Decomposition) SweepLen() int { return d.sweepLen }

// PhaseLen returns the phase length of color c: its largest cluster size,
// floored at the ⌊log₂ n⌋+1 spreading length.
func (d *Decomposition) PhaseLen(c int) int { return d.phaseLen[c] }

// PhaseOff returns the first in-sweep slot of color c's phase.
func (d *Decomposition) PhaseOff(c int) int { return d.phaseOff[c] }

// Owns reports whether node u is its cluster's designated transmitter in
// round r of the sweep schedule. The schedule is a pure function of the
// decomposition and the round number — no coins anywhere — so any party that
// knows the graph can compute it, which is the point of the derandomized
// broadcast experiments: the adversary gains nothing at runtime that it
// could not precompute.
//
// Round r falls in sweep s = r/sweepLen at in-sweep slot t = r%sweepLen.
// During color c's phase, cluster k of color c assigns slot j to the member
// whose BFS position matches j under a per-sweep rotation: member positions
// are distinct within the phase length, so each cluster has at most one
// owner per slot, and same-color clusters are non-adjacent in G, so owners
// of one phase never collide with each other at a reliable-edge listener.
// The rotation is a hash of (sweep, cluster), which breaks the periodic
// owner alignments a fixed rotation stride would lock in across clusters
// bridged by adversarial fringe edges.
func (d *Decomposition) Owns(u NodeID, r int) bool {
	if d.sweepLen == 0 {
		return false
	}
	k := d.Of[u]
	c := d.Color[k]
	s, t := r/d.sweepLen, r%d.sweepLen
	j := t - d.phaseOff[c]
	if j < 0 || j >= d.phaseLen[c] {
		return false
	}
	m := d.phaseLen[c]
	rot := int(bitrand.Hash64(uint64(s), uint64(k)) % uint64(m))
	return (d.Pos[u]+rot)%m == j
}

// Validate checks every structural invariant of the decomposition against
// the graph it was built from, returning a description of the first
// violation. It is the oracle behind the property and fuzz tests:
//
//   - Of/Pos/Parent/members form a consistent partition into BFS-ordered
//     clusters whose Parent edges are G-edges pointing at earlier members;
//   - cluster sizes certify radii (size ≥ 2^Radius) and the color count is
//     at most ⌊log₂ n⌋ + 1;
//   - every member is within G-distance Radius of its cluster's center
//     (weak diameter ≤ 2·Radius);
//   - same-color clusters are pairwise non-adjacent in G;
//   - the phase geometry matches the cluster sizes.
func (d *Decomposition) Validate(g *Graph) error {
	n := g.N()
	if len(d.Of) != n || len(d.Pos) != n || len(d.Parent) != n {
		return fmt.Errorf("decomposition: per-node slice lengths %d/%d/%d, want %d",
			len(d.Of), len(d.Pos), len(d.Parent), n)
	}
	if len(d.Color) != d.Count || len(d.Center) != d.Count || len(d.Radius) != d.Count ||
		len(d.memberOffs) != d.Count+1 || len(d.members) != n {
		return fmt.Errorf("decomposition: cluster storage inconsistent: %d clusters, %d members (n=%d)",
			d.Count, len(d.members), n)
	}
	if n > 0 && d.Colors > bits.Len(uint(n)) {
		return fmt.Errorf("decomposition: %d colors exceeds the ⌊log₂ %d⌋+1 = %d bound",
			d.Colors, n, bits.Len(uint(n)))
	}
	for u := 0; u < n; u++ {
		if d.Of[u] < 0 || d.Of[u] >= d.Count {
			return fmt.Errorf("decomposition: node %d has cluster %d out of range", u, d.Of[u])
		}
	}
	dist := make([]int, n)
	var bfs []NodeID
	for k := 0; k < d.Count; k++ {
		mem := d.Members(k)
		if len(mem) == 0 {
			return fmt.Errorf("decomposition: cluster %d is empty", k)
		}
		if d.Color[k] < 0 || d.Color[k] >= d.Colors {
			return fmt.Errorf("decomposition: cluster %d has color %d out of range", k, d.Color[k])
		}
		if mem[0] != d.Center[k] {
			return fmt.Errorf("decomposition: cluster %d center %d is not member 0 (%d)", k, d.Center[k], mem[0])
		}
		if len(mem) < 1<<d.Radius[k] {
			return fmt.Errorf("decomposition: cluster %d has %d members, too few for radius %d", k, len(mem), d.Radius[k])
		}
		for i, u := range mem {
			if d.Of[u] != k || d.Pos[u] != i {
				return fmt.Errorf("decomposition: member %d of cluster %d has Of=%d Pos=%d, want %d/%d",
					u, k, d.Of[u], d.Pos[u], k, i)
			}
			if i == 0 {
				if d.Parent[u] != -1 {
					return fmt.Errorf("decomposition: center %d has parent %d", u, d.Parent[u])
				}
				continue
			}
			p := d.Parent[u]
			if p < 0 || p >= n || d.Of[p] != k || d.Pos[p] >= i || !g.HasEdge(u, p) {
				return fmt.Errorf("decomposition: member %d of cluster %d has invalid BFS parent %d", u, k, p)
			}
		}
		// Weak diameter: BFS over the full graph from the center must reach
		// every member within the recorded radius.
		for u := range dist {
			dist[u] = -1
		}
		bfs = append(bfs[:0], d.Center[k])
		dist[d.Center[k]] = 0
		for i := 0; i < len(bfs); i++ {
			u := bfs[i]
			if dist[u] >= d.Radius[k] {
				continue
			}
			for _, v := range g.Neighbors(u) {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					bfs = append(bfs, v)
				}
			}
		}
		for _, u := range mem {
			if dist[u] < 0 || dist[u] > d.Radius[k] {
				return fmt.Errorf("decomposition: member %d of cluster %d is outside G-distance %d of center %d",
					u, k, d.Radius[k], d.Center[k])
			}
		}
	}
	// Same-color clusters must be pairwise non-adjacent in G.
	var adjErr error
	g.ForEachEdge(func(u, v NodeID) {
		if adjErr == nil && d.Of[u] != d.Of[v] && d.Color[d.Of[u]] == d.Color[d.Of[v]] {
			adjErr = fmt.Errorf("decomposition: edge (%d,%d) joins distinct clusters %d,%d of color %d",
				u, v, d.Of[u], d.Of[v], d.Color[d.Of[u]])
		}
	})
	if adjErr != nil {
		return adjErr
	}
	if len(d.phaseLen) != d.Colors || len(d.phaseOff) != d.Colors {
		return fmt.Errorf("decomposition: phase geometry has %d/%d entries, want %d",
			len(d.phaseLen), len(d.phaseOff), d.Colors)
	}
	want := make([]int, d.Colors)
	for c := range want {
		want[c] = bits.Len(uint(n))
	}
	for k := 0; k < d.Count; k++ {
		if size := d.ClusterSize(k); size > want[d.Color[k]] {
			want[d.Color[k]] = size
		}
	}
	off := 0
	for c := 0; c < d.Colors; c++ {
		if d.phaseLen[c] != want[c] {
			return fmt.Errorf("decomposition: color %d phase length %d, want %d", c, d.phaseLen[c], want[c])
		}
		if d.phaseOff[c] != off {
			return fmt.Errorf("decomposition: color %d phase offset %d, want %d", c, d.phaseOff[c], off)
		}
		off += d.phaseLen[c]
	}
	if d.sweepLen != off {
		return fmt.Errorf("decomposition: sweep length %d, want %d", d.sweepLen, off)
	}
	return nil
}
