package graph

import (
	"testing"

	"repro/internal/bitrand"
)

func TestRegionsRequireEmbedding(t *testing.T) {
	d := UniformDual(Line(4))
	if _, err := NewRegions(d); err == nil {
		t.Fatal("regions without embedding must error")
	}
}

func TestRegionsPartitionAndCliques(t *testing.T) {
	src := bitrand.New(21)
	d := GeographicGrid(src, 8, 8, 0.6, 2)
	r, err := NewRegions(d)
	if err != nil {
		t.Fatal(err)
	}
	// Partition: every node in exactly one region.
	count := 0
	for _, members := range r.Members {
		count += len(members)
	}
	if count != d.N() {
		t.Fatalf("regions cover %d of %d nodes", count, d.N())
	}
	for u := 0; u < d.N(); u++ {
		found := false
		for _, m := range r.Members[r.Of[u]] {
			if m == u {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %d not in its region's member list", u)
		}
	}
	if err := r.Validate(d); err != nil {
		t.Fatalf("region invariants violated: %v", err)
	}
}

func TestRegionsGammaBounded(t *testing.T) {
	for _, radius := range []float64{1, 1.5, 2, 3} {
		src := bitrand.New(uint64(radius * 100))
		d := Geographic(src, GeographicConfig{N: 80, Side: 5, Radius: radius, GreyProb: 1})
		r, err := NewRegions(d)
		if err != nil {
			t.Fatal(err)
		}
		bound := TheoreticalGammaBound(radius)
		if r.GammaR > bound {
			t.Fatalf("radius %v: GammaR %d exceeds theoretical bound %d", radius, r.GammaR, bound)
		}
	}
}

func TestRegionsSelfIsNeighbor(t *testing.T) {
	src := bitrand.New(5)
	d := GeographicGrid(src, 4, 4, 0.6, 1.2)
	r, err := NewRegions(d)
	if err != nil {
		t.Fatal(err)
	}
	for id := range r.Members {
		if !containsInt(r.NeighborRegions[id], id) {
			t.Fatalf("region %d does not list itself as neighbor", id)
		}
	}
}

func TestTheoreticalGammaBoundMonotone(t *testing.T) {
	prev := 0
	for _, rad := range []float64{1, 2, 3, 4} {
		b := TheoreticalGammaBound(rad)
		if b < prev {
			t.Fatalf("bound not monotone at r=%v", rad)
		}
		prev = b
	}
	if TheoreticalGammaBound(0.5) != TheoreticalGammaBound(1) {
		t.Fatal("radius < 1 must clamp to 1")
	}
}
