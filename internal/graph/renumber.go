package graph

import "sync"

// ClusterOrder is a bijective cluster-major relabeling of a graph's nodes,
// derived from the deterministic network decomposition (DecompositionOf):
// clusters are laid out consecutively in cluster-index order, members within
// a cluster in BFS-visit order. Nodes that are close in G therefore land on
// nearby new ids, so their bits share mask words and their block-sparse rows
// share cache lines — the decomposition doubling as a locality partitioner
// (ROADMAP "Decomposition as sparsifier").
//
// The order is a pure relabeling, never a semantic change: the engine applies
// it when building block-sparse mask rows and inverts it at every
// Deliver/record boundary, so all observable output (transmitters,
// deliveries, monitors, energy) is in original node ids and identical to the
// unrenumbered paths.
type ClusterOrder struct {
	// NewID[old] is the cluster-major id of original node old.
	NewID []NodeID
	// OldID[new] is the original id of cluster-major node new; the two
	// arrays are inverse permutations of each other.
	OldID []NodeID
}

// BuildClusterOrder derives the cluster-major order of g from its memoized
// decomposition.
func BuildClusterOrder(g *Graph) *ClusterOrder {
	dec := DecompositionOf(g)
	n := g.N()
	o := &ClusterOrder{NewID: make([]NodeID, n), OldID: make([]NodeID, n)}
	next := 0
	for k := 0; k < dec.Count; k++ {
		for _, u := range dec.Members(k) {
			o.NewID[u] = next
			o.OldID[next] = u
			next++
		}
	}
	return o
}

// orderCache memoizes a graph's cluster-major order (see ClusterOrderOf).
type orderCache struct {
	once sync.Once
	o    *ClusterOrder
}

// ClusterOrderOf returns BuildClusterOrder(g), computed once per graph and
// shared afterwards — the same memoization contract as NeighborMasksOf:
// graphs are immutable, so every trial (and every epoch revisit) of the same
// revision shares one order. The returned arrays are read-only and live as
// long as the graph.
func ClusterOrderOf(g *Graph) *ClusterOrder {
	g.order.once.Do(func() { g.order.o = BuildClusterOrder(g) })
	return g.order.o
}
