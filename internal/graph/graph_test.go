package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/bitrand"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate
	b.AddEdge(2, 2) // self loop ignored
	b.AddEdge(-1, 3)
	b.AddEdge(3, 7) // out of range ignored
	b.AddEdge(2, 3)
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || !g.HasEdge(3, 2) {
		t.Fatal("expected edges missing")
	}
	if g.HasEdge(0, 2) || g.HasEdge(2, 2) || g.HasEdge(0, 9) {
		t.Fatal("unexpected edges present")
	}
	if g.Degree(1) != 1 || g.Degree(2) != 1 {
		t.Fatal("bad degrees")
	}
}

func TestNeighborsSorted(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(3, 5)
	b.AddEdge(3, 1)
	b.AddEdge(3, 4)
	b.AddEdge(3, 0)
	g := b.Build()
	ns := g.Neighbors(3)
	for i := 1; i < len(ns); i++ {
		if ns[i-1] >= ns[i] {
			t.Fatalf("neighbors not sorted: %v", ns)
		}
	}
}

func TestLineRingCliqueStarGrid(t *testing.T) {
	if g := Line(5); g.NumEdges() != 4 || Diameter(g) != 4 {
		t.Fatalf("Line(5): edges=%d diam=%d", g.NumEdges(), Diameter(g))
	}
	if g := Ring(6); g.NumEdges() != 6 || Diameter(g) != 3 {
		t.Fatalf("Ring(6): edges=%d diam=%d", g.NumEdges(), Diameter(g))
	}
	if g := Clique(7); g.NumEdges() != 21 || Diameter(g) != 1 || g.MaxDegree() != 6 {
		t.Fatal("Clique(7) malformed")
	}
	if g := Star(9); g.NumEdges() != 8 || g.Degree(0) != 8 || Diameter(g) != 2 {
		t.Fatal("Star(9) malformed")
	}
	if g := Grid(4, 3); g.NumEdges() != 3*3+4*2 || Diameter(g) != 5 {
		t.Fatalf("Grid(4,3): edges=%d diam=%d", g.NumEdges(), Diameter(g))
	}
}

func TestNewDualSubsetCheck(t *testing.T) {
	g := Line(4)
	gp := Line(4)
	if _, err := NewDual(g, gp); err != nil {
		t.Fatalf("identical graphs rejected: %v", err)
	}
	// G has an edge G' lacks.
	gb := NewBuilder(4)
	gb.AddEdge(0, 3)
	bad := gb.Build()
	if _, err := NewDual(bad, gp); err == nil {
		t.Fatal("E ⊄ E' not detected")
	}
	// Vertex count mismatch.
	if _, err := NewDual(Line(3), Line(4)); err == nil {
		t.Fatal("vertex count mismatch not detected")
	}
}

func TestDualExtraNeighbors(t *testing.T) {
	g := Line(4) // 0-1-2-3
	gpb := NewBuilder(4)
	g.ForEachEdge(gpb.AddEdge)
	gpb.AddEdge(0, 2)
	gpb.AddEdge(0, 3)
	d := MustDual(g, gpb.Build())
	if got := d.NumExtraEdges(); got != 2 {
		t.Fatalf("NumExtraEdges = %d, want 2", got)
	}
	ex := d.ExtraNeighbors(0)
	if len(ex) != 2 || ex[0] != 2 || ex[1] != 3 {
		t.Fatalf("ExtraNeighbors(0) = %v", ex)
	}
	if len(d.ExtraNeighbors(1)) != 0 {
		t.Fatal("node 1 should have no extra neighbors")
	}
}

func TestUniformDual(t *testing.T) {
	d := UniformDual(Clique(5))
	if d.NumExtraEdges() != 0 || !d.UnionComplete() {
		t.Fatal("UniformDual(Clique) malformed")
	}
	d2 := UniformDual(Line(5))
	if d2.UnionComplete() {
		t.Fatal("line is not complete")
	}
}

func TestDualClique(t *testing.T) {
	d, m := DualClique(16, 3)
	if d.N() != 16 || m.SizeA != 8 || m.TA != 3 || m.TB != 11 {
		t.Fatalf("markers: %+v", m)
	}
	if !d.G().HasEdge(m.TA, m.TB) {
		t.Fatal("bridge missing in G")
	}
	if !d.UnionComplete() {
		t.Fatal("G' must be complete")
	}
	if !Connected(d.G()) {
		t.Fatal("G must be connected")
	}
	if diam := Diameter(d.G()); diam != 3 {
		t.Fatalf("dual clique diameter = %d, want 3", diam)
	}
	// Within-clique edges reliable, cross edges (except bridge) unreliable.
	if !d.G().HasEdge(0, 1) || d.G().HasEdge(0, 9) {
		t.Fatal("clique structure wrong")
	}
	// Counting: extra edges = n/2*n/2 - 1 cross pairs.
	if got, want := d.NumExtraEdges(), 8*8-1; got != want {
		t.Fatalf("extra edges = %d, want %d", got, want)
	}
}

func TestDualCliqueDefaults(t *testing.T) {
	d, m := DualClique(3, 99) // n too small, t out of range
	if d.N() != 4 || m.TA != 0 {
		t.Fatalf("defaults not applied: n=%d m=%+v", d.N(), m)
	}
}

func TestBracelet(t *testing.T) {
	d, m := Bracelet(64, 1) // k = 4 bands of length 4 per side
	if m.Bands != 4 || m.BandLen != 4 {
		t.Fatalf("bracelet shape: %+v", m)
	}
	if d.N() != 2*4*4 {
		t.Fatalf("N = %d, want 32", d.N())
	}
	if !Connected(d.G()) {
		t.Fatal("bracelet G must be connected")
	}
	if !d.G().HasEdge(m.ClaspA, m.ClaspB) {
		t.Fatal("clasp missing")
	}
	// Heads fully connected in G' across sides.
	for i := 0; i < m.Bands; i++ {
		for j := 0; j < m.Bands; j++ {
			if !d.GPrime().HasEdge(m.AHead[i], m.BHead[j]) {
				t.Fatalf("G' head edge (%d,%d) missing", m.AHead[i], m.BHead[j])
			}
		}
	}
	// Heads not G-connected except the clasp.
	for i := 0; i < m.Bands; i++ {
		for j := 0; j < m.Bands; j++ {
			hasG := d.G().HasEdge(m.AHead[i], m.BHead[j])
			isClasp := m.AHead[i] == m.ClaspA && m.BHead[j] == m.ClaspB
			if hasG != isClasp {
				t.Fatalf("G head edge (%d,%d): got %v, clasp %v", m.AHead[i], m.BHead[j], hasG, isClasp)
			}
		}
	}
	if d.UnionComplete() {
		t.Fatal("bracelet G' must not be complete")
	}
}

func TestBraceletExplicitSmall(t *testing.T) {
	d, m := BraceletExplicit(1, 1, 0)
	if d.N() != 2 || !Connected(d.G()) {
		t.Fatal("degenerate bracelet must still be a valid connected dual graph")
	}
	if !d.G().HasEdge(m.ClaspA, m.ClaspB) {
		t.Fatal("clasp missing in degenerate bracelet")
	}
}

func TestGeographicValidates(t *testing.T) {
	src := bitrand.New(123)
	d := Geographic(src, GeographicConfig{N: 60, Side: 4, Radius: 2, GreyProb: 1})
	if err := d.ValidateGeographic(); err != nil {
		t.Fatalf("geographic constraint violated: %v", err)
	}
	if !d.Geographic() {
		t.Fatal("embedding missing")
	}
}

func TestGeographicGridConnectedAndValid(t *testing.T) {
	src := bitrand.New(5)
	d := GeographicGrid(src, 6, 5, 0.7, 1.5)
	if d.N() != 30 {
		t.Fatalf("N = %d", d.N())
	}
	if !Connected(d.G()) {
		t.Fatal("grid geo graph must be connected at spacing 0.7")
	}
	if err := d.ValidateGeographic(); err != nil {
		t.Fatalf("constraint violated: %v", err)
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	src := bitrand.New(9)
	if g := ErdosRenyi(src, 10, 0); g.NumEdges() != 0 {
		t.Fatal("p=0 must give empty graph")
	}
	if g := ErdosRenyi(src, 10, 1); g.NumEdges() != 45 {
		t.Fatal("p=1 must give complete graph")
	}
}

func TestRandomDualSubset(t *testing.T) {
	src := bitrand.New(10)
	g := Ring(20)
	d := RandomDual(src, g, 0.3)
	// Every G edge must be in G'.
	g.ForEachEdge(func(u, v NodeID) {
		if !d.GPrime().HasEdge(u, v) {
			t.Fatalf("G edge (%d,%d) missing from G'", u, v)
		}
	})
}

func TestDualSubsetPropertyQuick(t *testing.T) {
	src := bitrand.New(77)
	err := quick.Check(func(seed uint32, raw uint8) bool {
		n := int(raw%30) + 2
		s := src.Split(uint64(seed))
		g := ErdosRenyi(s, n, 0.3)
		d := RandomDual(s, g, 0.4)
		// Invariant: extra adjacency is disjoint from G adjacency and
		// contained in G'.
		for u := 0; u < n; u++ {
			for _, v := range d.ExtraNeighbors(u) {
				if d.G().HasEdge(u, v) || !d.GPrime().HasEdge(u, v) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}
