package graph

import (
	"testing"

	"repro/internal/bitrand"
)

func TestCirculant(t *testing.T) {
	g := Circulant(100, 8)
	if g.N() != 100 {
		t.Fatalf("N = %d, want 100", g.N())
	}
	for u := 0; u < g.N(); u++ {
		if d := g.Degree(u); d != 8 {
			t.Fatalf("node %d has degree %d, want 8", u, d)
		}
		for k := 1; k <= 4; k++ {
			if !g.HasEdge(u, (u+k)%100) {
				t.Fatalf("missing circulant edge (%d, %d)", u, (u+k)%100)
			}
		}
	}
	if !Connected(g) {
		t.Fatal("circulant graph disconnected")
	}
	if g.NumEdges() != 100*4 {
		t.Fatalf("NumEdges = %d, want 400", g.NumEdges())
	}
	// Degree clamps below n: a circulant asked for more than n-1 neighbors
	// per node is the complete graph.
	k := Circulant(7, 100)
	if k.NumEdges() != 7*6/2 {
		t.Fatalf("over-dense circulant has %d edges, want complete 21", k.NumEdges())
	}
}

func TestRingChords(t *testing.T) {
	src := bitrand.New(0x5ca1e)
	g := RingChords(src, 500, 800)
	if g.N() != 500 {
		t.Fatalf("N = %d, want 500", g.N())
	}
	if !Connected(g) {
		t.Fatal("ring+chords disconnected")
	}
	// The ring is always present.
	for i := 0; i < 500; i++ {
		if !g.HasEdge(i, (i+1)%500) {
			t.Fatalf("missing ring edge (%d, %d)", i, (i+1)%500)
		}
	}
	// Most chords land (self-loops and duplicates are rare at this density).
	if g.NumEdges() < 500+800/2 {
		t.Fatalf("only %d edges; chords did not land", g.NumEdges())
	}
	// Deterministic given the source state.
	g2 := RingChords(bitrand.New(0x5ca1e), 500, 800)
	if g.NumEdges() != g2.NumEdges() {
		t.Fatal("RingChords not deterministic for a fixed seed")
	}
}

func TestAugmentDual(t *testing.T) {
	src := bitrand.New(0xd0a1)
	g := Ring(300)
	d := AugmentDual(src, g, 600)
	if d.G() != g {
		t.Fatal("AugmentDual replaced the reliable graph")
	}
	if d.NumExtraEdges() < 600/2 {
		t.Fatalf("only %d extra edges landed", d.NumExtraEdges())
	}
	// Every extra edge is a non-G pair.
	for u := 0; u < d.N(); u++ {
		for _, v := range d.ExtraNeighbors(u) {
			if g.HasEdge(u, v) {
				t.Fatalf("extra edge (%d, %d) is also a G edge", u, v)
			}
		}
	}
}
