package graph

import (
	"math/bits"
	"testing"

	"repro/internal/bitrand"
)

func TestClusterOrderBijection(t *testing.T) {
	src := bitrand.New(0x0c0de)
	for _, g := range []*Graph{
		Line(5), Ring(9), Clique(17), Star(64), Grid(8, 9),
		ErdosRenyi(src, 130, 0.07),
		RingChords(src, 300, 600),
	} {
		n := g.N()
		o := BuildClusterOrder(g)
		if len(o.NewID) != n || len(o.OldID) != n {
			t.Fatalf("n=%d: order arrays have lengths %d/%d", n, len(o.NewID), len(o.OldID))
		}
		seen := make([]bool, n)
		for u := 0; u < n; u++ {
			nu := o.NewID[u]
			if nu < 0 || nu >= n {
				t.Fatalf("n=%d: NewID[%d] = %d out of range", n, u, nu)
			}
			if seen[nu] {
				t.Fatalf("n=%d: NewID maps two nodes to %d", n, nu)
			}
			seen[nu] = true
			if o.OldID[nu] != u {
				t.Fatalf("n=%d: OldID[NewID[%d]] = %d, not the inverse", n, u, o.OldID[nu])
			}
		}
	}
}

func TestClusterOrderIsClusterMajor(t *testing.T) {
	src := bitrand.New(0x0c0df)
	g := RingChords(src, 256, 512)
	dec := DecompositionOf(g)
	o := BuildClusterOrder(g)
	// Within the cluster-major order, each cluster's members occupy one
	// contiguous id range, in ascending cluster-index order.
	prevCluster := -1
	for nu := 0; nu < g.N(); nu++ {
		k := dec.Of[o.OldID[nu]]
		if k < prevCluster {
			t.Fatalf("cluster-major id %d belongs to cluster %d after cluster %d", nu, k, prevCluster)
		}
		prevCluster = k
	}
}

// sparseRowBits reconstructs cluster-major row nu as a set of original node
// ids, using the order to translate bit positions back.
func sparseRowBits(m *SparseNeighborMasks, o *ClusterOrder, nu NodeID) []NodeID {
	var out []NodeID
	idx, words := m.BlockRow(nu)
	for i, wi := range idx {
		w := words[i]
		for w != 0 {
			nv := int(wi)<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			out = append(out, o.OldID[nv])
		}
	}
	return out
}

func TestSparseMasksMatchCSR(t *testing.T) {
	src := bitrand.New(0x5a5c)
	for _, g := range []*Graph{
		Line(5), Ring(9), Clique(17), Star(64), Grid(8, 9),
		ErdosRenyi(src, 130, 0.07),
		Circulant(100, 12),
		RingChords(src, 500, 1000),
	} {
		n := g.N()
		o := BuildClusterOrder(g)
		m := BuildSparseNeighborMasks(g, o)
		if m.W() != bitrand.WordsFor(n) {
			t.Fatalf("n=%d: W = %d, want %d", n, m.W(), bitrand.WordsFor(n))
		}
		for u := 0; u < n; u++ {
			got := sparseRowBits(m, o, o.NewID[u])
			want := g.Neighbors(u)
			if len(got) != len(want) {
				t.Fatalf("n=%d node %d: sparse row has %d neighbors, CSR has %d", n, u, len(got), len(want))
			}
			inRow := make(map[NodeID]bool, len(got))
			for _, v := range got {
				inRow[v] = true
			}
			for _, v := range want {
				if !inRow[v] {
					t.Fatalf("n=%d node %d: CSR neighbor %d missing from sparse row", n, u, v)
				}
			}
		}
	}
}

func TestSparseRowInvariants(t *testing.T) {
	src := bitrand.New(0x5a5d)
	g := RingChords(src, 1000, 3000)
	o := BuildClusterOrder(g)
	m := BuildSparseNeighborMasks(g, o)
	shift := m.RegionShift()
	if maxRegions := (m.W() + (1 << shift) - 1) >> shift; maxRegions > 64 {
		t.Fatalf("region shift %d leaves %d regions for w=%d, want ≤ 64", shift, maxRegions, m.W())
	}
	entries := 0
	for nu := 0; nu < g.N(); nu++ {
		idx, words := m.BlockRow(nu)
		entries += len(idx)
		var summ uint64
		for i, wi := range idx {
			if i > 0 && idx[i-1] >= wi {
				t.Fatalf("row %d: block indices not strictly ascending: %v", nu, idx)
			}
			if int(wi) >= m.W() {
				t.Fatalf("row %d: block index %d out of range [0,%d)", nu, wi, m.W())
			}
			if words[i] == 0 {
				t.Fatalf("row %d stores a zero block at index %d", nu, wi)
			}
			summ |= 1 << (uint(wi) >> shift)
		}
		if m.Summary(nu) != summ {
			t.Fatalf("row %d: summary %064b, want %064b", nu, m.Summary(nu), summ)
		}
	}
	if entries != m.Entries() {
		t.Fatalf("Entries() = %d, rows sum to %d", m.Entries(), entries)
	}
	if entries > 2*g.NumEdges() {
		t.Fatalf("%d entries exceed the 2E = %d bound", entries, 2*g.NumEdges())
	}
}

func TestSparseMasksOfMemoizes(t *testing.T) {
	src := bitrand.New(0x5a5e)
	d := AugmentDual(src, RingChords(src, 200, 400), 300)
	s1 := SparseMasksOf(d)
	s2 := SparseMasksOf(d)
	if s1 != s2 {
		t.Fatal("SparseMasksOf rebuilt the set for the same dual")
	}
	if s1.Order != ClusterOrderOf(d.G()) {
		t.Fatal("sparse set does not share the graph's memoized cluster order")
	}
	if gp := s1.GPrimeMasks(); gp != s1.GPrimeMasks() {
		t.Fatal("GPrimeMasks rebuilt the G' rows")
	} else if gp == s1.G {
		t.Fatal("distinct G' shares the G rows")
	}

	// Uniform duals must not build a second mask set for G' = G.
	u := UniformDual(Ring(64))
	su := SparseMasksOf(u)
	if su.GPrimeMasks() != su.G {
		t.Fatal("uniform dual built separate G' rows")
	}
}

func TestSparseGPrimeMatchesDense(t *testing.T) {
	src := bitrand.New(0x5a5f)
	d := AugmentDual(src, RingChords(src, 300, 600), 900)
	s := SparseMasksOf(d)
	gp := s.GPrimeMasks()
	for u := 0; u < d.N(); u++ {
		got := sparseRowBits(gp, s.Order, s.Order.NewID[u])
		want := d.GPrime().Neighbors(u)
		if len(got) != len(want) {
			t.Fatalf("node %d: sparse G' row has %d neighbors, CSR has %d", u, len(got), len(want))
		}
	}
}

func TestEstimateSparseMaskBytesBounds(t *testing.T) {
	src := bitrand.New(0x5a60)
	for _, d := range []*Dual{
		UniformDual(RingChords(src, 400, 800)),
		AugmentDual(src, RingChords(src, 400, 800), 600),
	} {
		s := SparseMasksOf(d)
		actual := int64(s.G.Bytes() + 16*d.N())
		if gp := s.GPrimeMasks(); gp != s.G {
			actual += int64(gp.Bytes())
		}
		est := EstimateSparseMaskBytes(d, true)
		if est < actual {
			t.Fatalf("estimate %d below actual footprint %d", est, actual)
		}
		if estG := EstimateSparseMaskBytes(d, false); estG > est {
			t.Fatalf("G-only estimate %d exceeds with-G' estimate %d", estG, est)
		}
	}
}
