package graph_test

import (
	"testing"

	"repro/internal/bitrand"
	"repro/internal/graph"
)

// benchSink defeats dead-code elimination of the built graphs.
var benchSink int

// BenchmarkGraphBuild measures Builder→Build construction cost for the
// topologies the experiment registry builds most often. Run with -benchmem:
// the allocation count is the tracked number (BENCH_pr2.json).
func BenchmarkGraphBuild(b *testing.B) {
	b.Run("dual-clique/n=256", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d, _ := graph.DualClique(256, 3)
			benchSink = d.NumExtraEdges()
		}
	})
	b.Run("bracelet/n=512", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d, _ := graph.Bracelet(512, 1)
			benchSink = d.NumExtraEdges()
		}
	})
	b.Run("geo-grid/16x16", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d := graph.GeographicGrid(bitrand.New(7), 16, 16, 0.7, 1.5)
			benchSink = d.NumExtraEdges()
		}
	})
	b.Run("erdos-renyi/n=512/p=0.02", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g := graph.ErdosRenyi(bitrand.New(11), 512, 0.02)
			benchSink = g.NumEdges()
		}
	})
}
