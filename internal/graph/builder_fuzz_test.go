package graph

import (
	"testing"
)

// FuzzBuilder drives the sort+dedup Builder with arbitrary edge streams —
// duplicates, self-loops, out-of-range endpoints, both orientations — and
// checks the built CSR graph against the map-of-sets reference. Endpoint
// bytes are offset by -4 so the fuzzer reaches negative ids without needing
// wide integers.
func FuzzBuilder(f *testing.F) {
	// Seed corpus: the interesting shapes named in the Builder contract.
	f.Add(4, []byte{})                                   // empty graph
	f.Add(4, []byte{4, 5, 4, 5, 5, 4, 4, 5})             // duplicate edges, both orientations
	f.Add(4, []byte{4, 4, 5, 5, 6, 6})                   // self-loops
	f.Add(4, []byte{0, 5, 5, 0, 4, 200, 200, 201})       // negative and past-n endpoints
	f.Add(6, []byte{4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 4}) // a cycle
	f.Add(1, []byte{4, 4, 4, 5})                         // single node: everything drops
	f.Add(0, []byte{4, 5})                               // empty vertex set
	f.Add(64, []byte{4, 67, 67, 4, 4, 67, 30, 31, 31, 30, 30, 30})

	f.Fuzz(func(t *testing.T, n int, data []byte) {
		if n < 0 || n > 128 {
			return
		}
		b := NewBuilder(n)
		ref := newRefGraph(n)
		for i := 0; i+1 < len(data); i += 2 {
			u, v := int(data[i])-4, int(data[i+1])-4
			b.AddEdge(u, v)
			ref.addEdge(u, v)
			// Builder.HasEdge must agree with the reference as edges stream
			// in (modulo canonical ordering, which both sides apply).
			if u >= 0 && v >= 0 && u < n && v < n && u != v {
				if _, want := ref.adj[u][v]; b.HasEdge(u, v) != want {
					t.Fatalf("Builder.HasEdge(%d,%d) = %v, want %v", u, v, b.HasEdge(u, v), want)
				}
			}
		}
		checkGraphAgainstRef(t, b.Build(), ref)
	})
}
