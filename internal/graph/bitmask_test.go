package graph

import (
	"testing"

	"repro/internal/bitrand"
)

// maskNeighbors lists the set bits of a mask row.
func maskNeighbors(m *NeighborMasks, u NodeID, n int) []NodeID {
	var out []NodeID
	row := m.Row(u)
	for v := 0; v < n; v++ {
		if bitrand.TestBit(row, v) {
			out = append(out, v)
		}
	}
	return out
}

func TestNeighborMasksMatchCSR(t *testing.T) {
	src := bitrand.New(0x3a5c)
	for _, g := range []*Graph{
		Line(5), Ring(9), Clique(17), Star(64), Grid(8, 9),
		ErdosRenyi(src, 130, 0.07),
		Circulant(100, 12),
	} {
		n := g.N()
		m := BuildNeighborMasks(g)
		if m.W != bitrand.WordsFor(n) {
			t.Fatalf("n=%d: W = %d, want %d", n, m.W, bitrand.WordsFor(n))
		}
		for u := 0; u < n; u++ {
			got := maskNeighbors(m, u, n)
			want := g.Neighbors(u)
			if len(got) != len(want) {
				t.Fatalf("n=%d node %d: mask row has %d neighbors, CSR has %d", n, u, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d node %d: mask neighbors %v != CSR %v", n, u, got, want)
				}
			}
		}
	}
}

func TestNeighborMasksOfMemoizes(t *testing.T) {
	g := Ring(33)
	m1 := NeighborMasksOf(g)
	m2 := NeighborMasksOf(g)
	if m1 != m2 {
		t.Fatal("NeighborMasksOf rebuilt the masks for the same graph")
	}
	if m1 == NeighborMasksOf(Ring(33)) {
		t.Fatal("distinct graphs share a mask cache")
	}
}

func TestNeighborMasksRowAliasing(t *testing.T) {
	g := Clique(70) // two words per row: exercises the stride
	m := BuildNeighborMasks(g)
	for u := 0; u < g.N(); u++ {
		row := m.Row(u)
		if len(row) != m.W {
			t.Fatalf("row %d has %d words, want %d", u, len(row), m.W)
		}
		if bitrand.TestBit(row, u) {
			t.Fatalf("row %d has its own bit set (self-loop)", u)
		}
	}
}
