package graph

import (
	"slices"
	"sync"

	"repro/internal/bitrand"
)

// SparseNeighborMasks is the block-sparse counterpart of NeighborMasks: each
// node's bitmap row stores only its nonzero 64-bit blocks — a block index
// array plus the packed block words, CSR-style over one flat backing pair —
// instead of the full ⌈n/64⌉-word slab. Storage is proportional to the edge
// count (at most one entry per directed edge, far fewer once neighbors share
// blocks), where the dense slab is quadratic in n: at n = 10⁶ the dense
// layout needs ~125 GB while the sparse rows of a ring-with-chords network
// fit in tens of megabytes.
//
// Rows are stored in the cluster-major id space of a ClusterOrder, so that
// the neighbors of nearby nodes pack into the same blocks and adjacent rows
// touch adjacent cache lines. Row u here means cluster-major node u; callers
// translate via the order's NewID/OldID arrays.
//
// Each row also carries a one-word occupancy summary: bit j is set iff the
// row has a nonzero block whose index falls in region j, where a region is
// 1<<RegionShift consecutive blocks (regions sized so ≤ 64 cover the row).
// The engine keeps the matching transmitter-side summary incrementally per
// round, and one AND of the two words rejects most listeners of a sparse
// round before any block is read.
type SparseNeighborMasks struct {
	w           int
	regionShift uint

	// offs is the CSR row index: row u's entries are idx[offs[u]:offs[u+1]]
	// (block indices, ascending) and words[offs[u]:offs[u+1]] (block words).
	offs  []int32
	idx   []int32
	words []uint64
	// summ[u] is row u's region-occupancy summary.
	summ []uint64
}

// regionShiftFor returns the smallest shift such that at most 64 regions of
// 1<<shift blocks cover a row of w blocks.
func regionShiftFor(w int) uint {
	s := uint(0)
	for (w+(1<<s)-1)>>s > 64 {
		s++
	}
	return s
}

// BuildSparseNeighborMasks constructs the block-sparse bitmap adjacency of g
// with rows and bit positions in ord's cluster-major id space.
func BuildSparseNeighborMasks(g *Graph, ord *ClusterOrder) *SparseNeighborMasks {
	n := g.N()
	w := bitrand.WordsFor(n)
	m := &SparseNeighborMasks{
		w:           w,
		regionShift: regionShiftFor(w),
		offs:        make([]int32, n+1),
		summ:        make([]uint64, n),
	}
	goffs, gadj := g.CSR()
	rowBuf := make([]uint64, w)
	touched := make([]int32, 0, 64)

	// Count pass: number of distinct nonzero blocks per row, so the flat
	// entry arrays are allocated exactly (the worst-case 2·E bound can be an
	// order of magnitude above the packed count under a good order).
	total := 0
	for nu := 0; nu < n; nu++ {
		ou := ord.OldID[nu]
		for _, v := range gadj[goffs[ou]:goffs[ou+1]] {
			wi := ord.NewID[v] >> 6
			if rowBuf[wi] == 0 {
				rowBuf[wi] = 1
				touched = append(touched, int32(wi))
				total++
			}
		}
		for _, wi := range touched {
			rowBuf[wi] = 0
		}
		touched = touched[:0]
		m.offs[nu+1] = int32(total)
	}

	// Fill pass: pack each row's blocks in ascending block-index order and
	// derive its region summary.
	m.idx = make([]int32, 0, total)
	m.words = make([]uint64, 0, total)
	for nu := 0; nu < n; nu++ {
		ou := ord.OldID[nu]
		for _, v := range gadj[goffs[ou]:goffs[ou+1]] {
			nv := ord.NewID[v]
			wi := int32(nv >> 6)
			if rowBuf[wi] == 0 {
				touched = append(touched, wi)
			}
			rowBuf[wi] |= 1 << (uint(nv) & 63)
		}
		slices.Sort(touched)
		var s uint64
		for _, wi := range touched {
			m.idx = append(m.idx, wi)
			m.words = append(m.words, rowBuf[wi])
			rowBuf[wi] = 0
			s |= 1 << (uint(wi) >> m.regionShift)
		}
		m.summ[nu] = s
		touched = touched[:0]
	}
	return m
}

// W returns the dense row stride the sparse rows index into: WordsFor(n).
func (m *SparseNeighborMasks) W() int { return m.w }

// RegionShift returns the summary granularity: region j covers block indices
// [j<<RegionShift, (j+1)<<RegionShift).
func (m *SparseNeighborMasks) RegionShift() uint { return m.regionShift }

// Entries returns the total number of stored (block index, block word)
// pairs.
func (m *SparseNeighborMasks) Entries() int { return len(m.idx) }

// Bytes returns the memory footprint of the flat backing arrays.
func (m *SparseNeighborMasks) Bytes() int {
	return 4*len(m.offs) + 4*len(m.idx) + 8*len(m.words) + 8*len(m.summ)
}

// BlockRow returns cluster-major node u's nonzero blocks as zero-copy views:
// ascending block indices and the matching block words. Like
// NeighborMasks.Row, the views are shared, read-only, and only as alive as
// the graph they came from.
func (m *SparseNeighborMasks) BlockRow(u NodeID) (idx []int32, words []uint64) {
	return m.idx[m.offs[u]:m.offs[u+1]], m.words[m.offs[u]:m.offs[u+1]]
}

// Rows exposes the flat CSR backing arrays for hot loops that slice rows
// themselves: row u is idx[offs[u]:offs[u+1]] / words[offs[u]:offs[u+1]].
// Read-only, same lifetime contract as BlockRow.
func (m *SparseNeighborMasks) Rows() (offs, idx []int32, words []uint64) {
	return m.offs, m.idx, m.words
}

// Summary returns row u's region-occupancy summary word.
func (m *SparseNeighborMasks) Summary(u NodeID) uint64 { return m.summ[u] }

// Summaries exposes the flat per-row summary array. Read-only, same lifetime
// contract as BlockRow.
func (m *SparseNeighborMasks) Summaries() []uint64 { return m.summ }

// SparseMaskSet bundles a dual graph's block-sparse masks under one shared
// cluster-major order. The order is derived from the reliable graph G — the
// transmitter bitmap is shared between G and G' rounds, so both mask sets
// must agree on bit positions. G' masks are built lazily: executions without
// a link process never pay for them.
type SparseMaskSet struct {
	d *Dual
	// Order is the shared cluster-major relabeling (from G's decomposition).
	Order *ClusterOrder
	// G holds the reliable graph's block-sparse rows.
	G *SparseNeighborMasks

	gpOnce sync.Once
	gp     *SparseNeighborMasks
}

// GPrimeMasks returns the block-sparse rows of G' under the set's shared
// order, built on first use and shared afterwards. When G' is G (uniform
// duals) the G rows are returned directly.
func (s *SparseMaskSet) GPrimeMasks() *SparseNeighborMasks {
	s.gpOnce.Do(func() {
		if s.d.gp == s.d.g {
			s.gp = s.G
		} else {
			s.gp = BuildSparseNeighborMasks(s.d.gp, s.Order)
		}
	})
	return s.gp
}

// sparseMaskCache memoizes a dual's sparse mask set (see SparseMasksOf).
type sparseMaskCache struct {
	once sync.Once
	m    *SparseMaskSet
}

// SparseMasksOf returns the dual's block-sparse mask set, computed once per
// (immutable) network and shared by every trial and epoch revisit — the same
// memoization contract as NeighborMasksOf, keyed on the Dual because the
// cluster-major order must be shared between the G and G' rows.
func SparseMasksOf(d *Dual) *SparseMaskSet {
	d.sparse.once.Do(func() {
		ord := ClusterOrderOf(d.g)
		d.sparse.m = &SparseMaskSet{d: d, Order: ord, G: BuildSparseNeighborMasks(d.g, ord)}
	})
	return d.sparse.m
}

// EstimateSparseMaskBytes bounds the block-sparse mask footprint of d
// without building it: at most one (index, word) entry per directed edge
// plus the per-row offset and summary arrays, doubled across G and G' when
// the execution needs unreliable rows. The engine's PlanAuto gate compares
// this bound against its memory budget — the estimate is an upper bound
// (neighbors sharing a block collapse into one entry), so a passing gate can
// only overstate the real cost.
func EstimateSparseMaskBytes(d *Dual, withGPrime bool) int64 {
	n := int64(d.N())
	entries := 2 * int64(d.g.NumEdges())
	rows := n
	if withGPrime && d.gp != d.g {
		entries += 2 * int64(d.gp.NumEdges())
		rows += n
	}
	// 12 bytes per entry (int32 index + uint64 word), 12 per row (offset +
	// summary), 16 per node for the order's two permutation arrays.
	return 12*entries + 12*rows + 16*n
}
