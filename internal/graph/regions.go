package graph

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"
)

// Regions is the region decomposition of a geographic dual graph used by the
// Section 4.3 analysis (after Censor-Hillel et al. [3]): nodes are
// partitioned so that every region is a G-clique and every region has at
// most a constant number of neighboring regions (regions containing a
// G'-neighbor of one of its nodes).
//
// The implementation partitions the plane into square cells of side 1/√2.
// Any two nodes in a cell are at distance ≤ 1, hence G-adjacent; any
// G'-neighbor lies within distance r, hence within a bounded number of cells,
// giving the γ_r = O(r²) neighboring-region constant.
type Regions struct {
	// Of maps each node to its region index (0-based, dense).
	Of []int
	// Members lists the nodes of each region.
	Members [][]NodeID
	// NeighborRegions lists, for each region, the regions (including itself)
	// containing a G'-neighbor of one of its members.
	NeighborRegions [][]int
	// GammaR is the maximum, over regions, of the number of neighboring
	// regions (excluding the region itself).
	GammaR int
}

// cellSide is 1/√2: the largest square side for which any two points in the
// square are within unit distance of each other.
var cellSide = 1 / math.Sqrt2

// NewRegions computes the decomposition. It errors when the dual graph
// carries no geographic embedding.
func NewRegions(d *Dual) (*Regions, error) {
	pos := d.Pos()
	if pos == nil {
		return nil, errors.New("graph: region decomposition requires a geographic embedding")
	}
	n := d.N()
	type cell struct{ cx, cy int }
	cellOf := make([]cell, n)
	index := make(map[cell]int)
	r := &Regions{Of: make([]int, n)}
	for u := 0; u < n; u++ {
		c := cell{int(math.Floor(pos[u].X / cellSide)), int(math.Floor(pos[u].Y / cellSide))}
		cellOf[u] = c
		id, ok := index[c]
		if !ok {
			id = len(r.Members)
			index[c] = id
			r.Members = append(r.Members, nil)
		}
		r.Of[u] = id
		r.Members[id] = append(r.Members[id], u)
	}
	// Neighbor regions via G' adjacency: per region, collect the region ids
	// seen along its members' CSR rows, then sort + dedup the flat list.
	r.NeighborRegions = make([][]int, len(r.Members))
	gp := d.GPrime()
	for i, members := range r.Members {
		lst := []int{i}
		for _, u := range members {
			for _, v := range gp.Neighbors(u) {
				lst = append(lst, r.Of[v])
			}
		}
		sort.Ints(lst)
		lst = slices.Compact(lst)
		r.NeighborRegions[i] = lst
		if len(lst)-1 > r.GammaR {
			r.GammaR = len(lst) - 1
		}
	}
	return r, nil
}

// NumRegions returns the number of non-empty regions.
func (r *Regions) NumRegions() int { return len(r.Members) }

// Validate checks the two structural invariants: every region is a G-clique,
// and NeighborRegions is consistent with G' adjacency.
func (r *Regions) Validate(d *Dual) error {
	for id, members := range r.Members {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if !d.G().HasEdge(members[i], members[j]) {
					return fmt.Errorf("region %d: members %d and %d not G-adjacent", id, members[i], members[j])
				}
			}
		}
	}
	for u := 0; u < d.N(); u++ {
		ru := r.Of[u]
		for _, v := range d.GPrime().Neighbors(u) {
			if !containsInt(r.NeighborRegions[ru], r.Of[v]) {
				return fmt.Errorf("region %d missing neighbor region %d", ru, r.Of[v])
			}
		}
	}
	return nil
}

// TheoreticalGammaBound returns the worst-case number of neighboring regions
// for geographic constant rad: all cells intersecting a disk of radius rad
// around a cell, i.e. (2*ceil(rad/side)+1)² - 1 with side = 1/√2.
func TheoreticalGammaBound(rad float64) int {
	if rad < 1 {
		rad = 1
	}
	k := int(math.Ceil(rad/cellSide)) + 1
	w := 2*k + 1
	return w*w - 1
}

func containsInt(xs []int, x int) bool {
	i := sort.SearchInts(xs, x)
	return i < len(xs) && xs[i] == x
}
