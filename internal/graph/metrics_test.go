package graph

import (
	"testing"

	"repro/internal/bitrand"
)

func TestBFSDistLine(t *testing.T) {
	g := Line(5)
	d := BFSDist(g, 0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Fatalf("dist[%d] = %d, want %d", i, d[i], want)
		}
	}
}

func TestBFSDistDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	g := b.Build()
	d := BFSDist(g, 0)
	if d[2] != -1 || d[3] != -1 {
		t.Fatal("unreachable nodes must have distance -1")
	}
	if Connected(g) {
		t.Fatal("graph is disconnected")
	}
	if Diameter(g) != -1 || Eccentricity(g, 0) != -1 || DiameterApprox(g) != -1 {
		t.Fatal("disconnected metrics must be -1")
	}
}

func TestBFSDistBadSource(t *testing.T) {
	g := Line(3)
	d := BFSDist(g, -1)
	for _, v := range d {
		if v != -1 {
			t.Fatal("invalid source must reach nothing")
		}
	}
}

func TestDiameterApproxWithinFactorTwo(t *testing.T) {
	src := bitrand.New(3)
	for trial := 0; trial < 10; trial++ {
		g := ErdosRenyi(src, 40, 0.15)
		if !Connected(g) {
			continue
		}
		exact := Diameter(g)
		approx := DiameterApprox(g)
		if approx < exact/2 || approx > exact {
			// Double sweep returns an eccentricity, so it is between
			// diam/2 and diam.
			t.Fatalf("approx %d outside [%d, %d]", approx, exact/2, exact)
		}
	}
}

func TestConnectedTrivial(t *testing.T) {
	if !Connected(Line(1)) || !Connected(Line(0)) {
		t.Fatal("empty and singleton graphs are connected")
	}
}

func TestAvgDegree(t *testing.T) {
	if got := AvgDegree(Ring(10)); got != 2 {
		t.Fatalf("AvgDegree(Ring) = %v, want 2", got)
	}
	if got := AvgDegree(NewBuilder(0).Build()); got != 0 {
		t.Fatalf("AvgDegree(empty) = %v", got)
	}
}

func TestGNeighborsOf(t *testing.T) {
	g := Line(5) // 0-1-2-3-4
	r := GNeighborsOf(g, []NodeID{2})
	if len(r) != 2 || r[0] != 1 || r[1] != 3 {
		t.Fatalf("GNeighborsOf({2}) = %v", r)
	}
	// Broadcasters themselves appear when they neighbor each other.
	r = GNeighborsOf(g, []NodeID{1, 2})
	want := map[int]bool{0: true, 1: true, 2: true, 3: true}
	if len(r) != len(want) {
		t.Fatalf("GNeighborsOf({1,2}) = %v", r)
	}
	for _, u := range r {
		if !want[u] {
			t.Fatalf("unexpected receiver %d", u)
		}
	}
	// Out-of-range broadcaster ids are ignored.
	if got := GNeighborsOf(g, []NodeID{-3, 99}); len(got) != 0 {
		t.Fatalf("out-of-range broadcasters produced %v", got)
	}
}

func TestEccentricityCenterOfLine(t *testing.T) {
	g := Line(9)
	if got := Eccentricity(g, 4); got != 4 {
		t.Fatalf("center eccentricity = %d, want 4", got)
	}
	if got := Eccentricity(g, 0); got != 8 {
		t.Fatalf("end eccentricity = %d, want 8", got)
	}
}
