package graph

import (
	"testing"

	"repro/internal/bitrand"
)

// refChurn is a naive map-of-sets mirror of the Revision semantics: the
// churn-applied CSR dual must equal a from-scratch rebuild of this
// structure after every epoch.
type refChurn struct {
	n        int
	g, gp    *refGraph
	baseG    *refGraph
	baseGP   *refGraph
	departed []bool
}

func newRefChurn(g, gp *refGraph) *refChurn {
	rc := &refChurn{n: g.n, baseG: g, baseGP: gp, departed: make([]bool, g.n)}
	rc.g, rc.gp = cloneRef(g), cloneRef(gp)
	return rc
}

func cloneRef(r *refGraph) *refGraph {
	out := newRefGraph(r.n)
	for u, s := range r.adj {
		for v := range s {
			out.addEdge(u, v)
		}
	}
	return out
}

func (rc *refChurn) removeEdge(r *refGraph, u, v NodeID) {
	delete(r.adj[u], v)
	delete(r.adj[v], u)
}

func (rc *refChurn) apply(op ChurnOp) {
	switch op.Kind {
	case ChurnAddEdge, ChurnRemoveEdge, ChurnAddExtraEdge, ChurnRemoveExtraEdge:
		if rc.departed[op.U] || rc.departed[op.V] {
			return
		}
		switch op.Kind {
		case ChurnAddEdge:
			rc.g.addEdge(op.U, op.V)
			rc.gp.addEdge(op.U, op.V)
		case ChurnRemoveEdge:
			rc.removeEdge(rc.g, op.U, op.V)
		case ChurnAddExtraEdge:
			rc.gp.addEdge(op.U, op.V)
		case ChurnRemoveExtraEdge:
			rc.removeEdge(rc.g, op.U, op.V)
			rc.removeEdge(rc.gp, op.U, op.V)
		}
	case ChurnLeave:
		if rc.departed[op.U] {
			return
		}
		rc.departed[op.U] = true
		for v := range rc.gp.adj[op.U] {
			rc.removeEdge(rc.gp, op.U, v)
			rc.removeEdge(rc.g, op.U, v)
		}
	case ChurnJoin:
		if !rc.departed[op.U] {
			return
		}
		rc.departed[op.U] = false
		for v := range rc.baseG.adj[op.U] {
			if !rc.departed[v] {
				rc.g.addEdge(op.U, v)
				rc.gp.addEdge(op.U, v)
			}
		}
		for v := range rc.baseGP.adj[op.U] {
			if !rc.departed[v] {
				rc.gp.addEdge(op.U, v)
			}
		}
	}
}

// checkRevisionAgainstRef rebuilds the reference's dual from scratch and
// requires the incrementally churned CSR revision to match it exactly:
// G rows, E'\E rows, departure flags.
func checkRevisionAgainstRef(t *testing.T, rv *Revision, rc *refChurn) {
	t.Helper()
	d := rv.Dual()
	checkGraphAgainstRef(t, d.G(), rc.g)
	checkGraphAgainstRef(t, d.GPrime(), rc.gp)
	for u := 0; u < rc.n; u++ {
		if rv.Departed(u) != rc.departed[u] {
			t.Fatalf("Departed(%d) = %v, want %v", u, rv.Departed(u), rc.departed[u])
		}
		want := make([]NodeID, 0)
		for _, v := range rc.gp.neighbors(u) {
			if _, inG := rc.g.adj[u][v]; !inG {
				want = append(want, v)
			}
		}
		if got := d.ExtraNeighbors(u); !equalIDs(got, want) {
			t.Fatalf("ExtraNeighbors(%d) = %v, want %v", u, got, want)
		}
	}
}

// randomChurnOps draws a deterministic op list touching every kind.
func randomChurnOps(src *bitrand.Source, n, count int) []ChurnOp {
	kinds := []ChurnKind{ChurnAddEdge, ChurnRemoveEdge, ChurnAddExtraEdge,
		ChurnRemoveExtraEdge, ChurnLeave, ChurnJoin}
	ops := make([]ChurnOp, 0, count)
	for len(ops) < count {
		op := ChurnOp{Kind: kinds[src.Intn(len(kinds))], U: src.Intn(n), V: src.Intn(n)}
		switch op.Kind {
		case ChurnLeave, ChurnJoin:
			op.V = 0
		default:
			if op.U == op.V {
				continue
			}
		}
		ops = append(ops, op)
	}
	return ops
}

// TestRevisionEquivalenceRandomOps pins churn-applied CSR revisions against
// a rebuild-from-scratch map-of-sets reference for randomized op sequences,
// chained across several epochs per base (the dynamic-topology mirror of
// TestCSREquivalenceRandomDuals).
func TestRevisionEquivalenceRandomOps(t *testing.T) {
	src := bitrand.New(0xc1124)
	for trial := 0; trial < 30; trial++ {
		n := 2 + src.Intn(30)
		pG := src.Float64() * 0.4
		pExtra := src.Float64() * 0.4
		gRef, gpRef := newRefGraph(n), newRefGraph(n)
		gb, gpb := NewBuilder(n), NewBuilder(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				inG := src.Coin(pG)
				if inG {
					gRef.addEdge(u, v)
					gb.AddEdge(u, v)
				}
				if inG || src.Coin(pExtra) {
					gpRef.addEdge(u, v)
					gpb.AddEdge(u, v)
				}
			}
		}
		base := MustDual(gb.Build(), gpb.Build())
		rv := NewRevision(base)
		rc := newRefChurn(gRef, gpRef)
		epochs := 1 + src.Intn(4)
		for e := 0; e < epochs; e++ {
			ops := randomChurnOps(src, n, 1+src.Intn(3*n))
			next, err := rv.Apply(ops)
			if err != nil {
				t.Fatalf("trial %d epoch %d: Apply: %v", trial, e, err)
			}
			for _, op := range ops {
				rc.apply(op)
			}
			checkRevisionAgainstRef(t, next, rc)
			// The previous revision must be untouched (immutability).
			if rv.Dual().G().NumEdges() != rvEdges(rv) {
				t.Fatalf("trial %d epoch %d: prior revision mutated", trial, e)
			}
			rv = next
		}
	}
}

// rvEdges re-reads a revision's G edge count through its CSR arrays, as a
// cheap self-consistency probe.
func rvEdges(rv *Revision) int {
	offs, _ := rv.Dual().G().CSR()
	return int(offs[len(offs)-1]) / 2
}

// TestRevisionRejectsBadOps checks that malformed ops fail loudly instead of
// silently vanishing from a deterministic schedule.
func TestRevisionRejectsBadOps(t *testing.T) {
	d, _ := DualClique(8, 1)
	for _, ops := range [][]ChurnOp{
		{{Kind: ChurnAddEdge, U: -1, V: 2}},
		{{Kind: ChurnAddEdge, U: 0, V: 8}},
		{{Kind: ChurnRemoveEdge, U: 3, V: 3}},
		{{Kind: ChurnLeave, U: 99}},
		{{Kind: ChurnJoin, U: -2}},
		{{Kind: ChurnKind(0), U: 0, V: 1}},
	} {
		if _, err := ApplyChurn(d, ops); err == nil {
			t.Errorf("ops %v accepted, want error", ops)
		}
	}
}

// TestRevisionDemotesAndRestores walks the documented edge lifecycle on a
// concrete dual: remove-edge demotes a reliable link to E'\E, remove-extra
// deletes it outright, leave isolates a node, join restores its base
// adjacency.
func TestRevisionDemotesAndRestores(t *testing.T) {
	gb := NewBuilder(4)
	gb.AddEdge(0, 1)
	gb.AddEdge(1, 2)
	gb.AddEdge(2, 3)
	gpb := NewBuilder(4)
	gpb.AddEdge(0, 1)
	gpb.AddEdge(1, 2)
	gpb.AddEdge(2, 3)
	gpb.AddEdge(0, 3) // unreliable only
	base := MustDual(gb.Build(), gpb.Build())

	rv, err := NewRevision(base).Apply([]ChurnOp{{Kind: ChurnRemoveEdge, U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	d := rv.Dual()
	if d.G().HasEdge(1, 2) {
		t.Fatal("remove-edge left (1,2) in G")
	}
	if !d.GPrime().HasEdge(1, 2) {
		t.Fatal("remove-edge dropped (1,2) from G'; want demotion to E'\\E")
	}

	rv2, err := rv.Apply([]ChurnOp{{Kind: ChurnLeave, U: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got := rv2.Dual().GPrime().Degree(3); got != 0 {
		t.Fatalf("departed node has G' degree %d, want 0", got)
	}
	if !rv2.Departed(3) {
		t.Fatal("Departed(3) = false after leave")
	}

	rv3, err := rv2.Apply([]ChurnOp{{Kind: ChurnJoin, U: 3}})
	if err != nil {
		t.Fatal(err)
	}
	d3 := rv3.Dual()
	if !d3.G().HasEdge(2, 3) || !d3.GPrime().HasEdge(0, 3) {
		t.Fatal("join did not restore node 3's base adjacency")
	}
	// The (1,2) demotion from the first epoch must persist: join restores
	// only the joining node's own edges.
	if d3.G().HasEdge(1, 2) || !d3.GPrime().HasEdge(1, 2) {
		t.Fatal("join disturbed unrelated demoted edge (1,2)")
	}
}

// FuzzRevision drives Apply with arbitrary op streams over a small base dual
// and checks the churned CSR dual against the map-of-sets reference — the
// churn-layer counterpart of FuzzBuilder. Bytes decode to (kind, u, v)
// triples; undecodable ops are skipped rather than rejected so the fuzzer
// explores deep op lists.
func FuzzRevision(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 4, 0, 0, 5, 0, 0})       // add, leave, join node 0
	f.Add([]byte{1, 0, 1, 2, 0, 3, 3, 1, 2})       // remove, add-extra, remove-extra
	f.Add([]byte{4, 2, 0, 0, 2, 3, 4, 3, 0, 5, 2}) // churn around departures
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 6
		gb, gpb := NewBuilder(n), NewBuilder(n)
		gRef, gpRef := newRefGraph(n), newRefGraph(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if (u+v)%2 == 0 {
					gb.AddEdge(u, v)
					gRef.addEdge(u, v)
				}
				gpb.AddEdge(u, v)
				gpRef.addEdge(u, v)
			}
		}
		base := MustDual(gb.Build(), gpb.Build())
		rv := NewRevision(base)
		rc := newRefChurn(gRef, gpRef)
		var ops []ChurnOp
		for i := 0; i+2 < len(data); i += 3 {
			op := ChurnOp{Kind: ChurnKind(int(data[i])%6 + 1), U: int(data[i+1]) % n, V: int(data[i+2]) % n}
			if (op.Kind != ChurnLeave && op.Kind != ChurnJoin) && op.U == op.V {
				continue
			}
			ops = append(ops, op)
		}
		next, err := rv.Apply(ops)
		if err != nil {
			t.Fatalf("Apply(%v): %v", ops, err)
		}
		for _, op := range ops {
			rc.apply(op)
		}
		checkRevisionAgainstRef(t, next, rc)
	})
}
