package graph

import (
	"sort"
	"sync"
)

// EdgeSelector describes, for one round, which edges of E' \ E the link
// process includes in the communication topology. Selections are immutable
// once returned to the engine; adversaries return a fresh (or shared
// read-only) selector per round.
type EdgeSelector interface {
	// Includes reports whether the potential edge (u, v) ∈ E' \ E is present
	// this round. Implementations must be symmetric: Includes(u, v) =
	// Includes(v, u) — edges are undirected. Behavior on pairs outside
	// E' \ E is unspecified; the engine only queries potential edges.
	Includes(u, v NodeID) bool
	// All reports whether every edge of E' \ E is included; a fast-path hint.
	All() bool
	// None reports whether no edge of E' \ E is included; a fast-path hint.
	None() bool
}

// SelectAll includes every unreliable edge.
type SelectAll struct{}

// Includes implements EdgeSelector.
func (SelectAll) Includes(u, v NodeID) bool { return true }

// All implements EdgeSelector.
func (SelectAll) All() bool { return true }

// None implements EdgeSelector.
func (SelectAll) None() bool { return false }

// SelectNone includes no unreliable edge.
type SelectNone struct{}

// Includes implements EdgeSelector.
func (SelectNone) Includes(u, v NodeID) bool { return false }

// All implements EdgeSelector.
func (SelectNone) All() bool { return false }

// None implements EdgeSelector.
func (SelectNone) None() bool { return true }

// EdgeKey canonically orders an undirected edge.
type EdgeKey struct {
	U, V NodeID
}

// MakeEdgeKey returns the canonical key with U ≤ V.
func MakeEdgeKey(u, v NodeID) EdgeKey {
	if u > v {
		u, v = v, u
	}
	return EdgeKey{U: u, V: v}
}

// SelectSet includes exactly the listed edges.
type SelectSet struct {
	set map[EdgeKey]struct{}
}

// NewSelectSet builds a set selector over the given edges.
func NewSelectSet(edges []EdgeKey) *SelectSet {
	s := &SelectSet{set: make(map[EdgeKey]struct{}, len(edges))}
	for _, e := range edges {
		s.set[MakeEdgeKey(e.U, e.V)] = struct{}{}
	}
	return s
}

// Includes implements EdgeSelector.
func (s *SelectSet) Includes(u, v NodeID) bool {
	_, ok := s.set[MakeEdgeKey(u, v)]
	return ok
}

// All implements EdgeSelector.
func (s *SelectSet) All() bool { return false }

// None implements EdgeSelector.
func (s *SelectSet) None() bool { return len(s.set) == 0 }

// Len returns the number of selected edges.
func (s *SelectSet) Len() int { return len(s.set) }

// SelectFunc adapts a predicate to an EdgeSelector. Used by hash-based
// oblivious adversaries that decide each edge from (seed, round, u, v).
type SelectFunc struct {
	F func(u, v NodeID) bool
}

// Includes implements EdgeSelector.
func (s SelectFunc) Includes(u, v NodeID) bool { return s.F(u, v) }

// All implements EdgeSelector.
func (SelectFunc) All() bool { return false }

// None implements EdgeSelector.
func (SelectFunc) None() bool { return false }

// SelectCrossCut includes all unreliable edges except those crossing the
// given bipartition (InA true on one side). The Theorem 3.1 and 4.3
// adversaries use the complement forms: dense rounds include everything
// (SelectAll) and sparse rounds exclude exactly the A–B edges, which for the
// dual clique and bracelet is everything, making SelectNone equivalent; the
// cross-cut form covers dual graphs that also have unreliable edges inside
// the sides.
type SelectCrossCut struct {
	// InA reports side membership.
	InA func(NodeID) bool
}

// Includes implements EdgeSelector.
func (s SelectCrossCut) Includes(u, v NodeID) bool { return s.InA(u) == s.InA(v) }

// All implements EdgeSelector.
func (SelectCrossCut) All() bool { return false }

// None implements EdgeSelector.
func (SelectCrossCut) None() bool { return false }

// CliqueCover is a delivery accelerator: a partition of the nodes into
// G-cliques plus the residual G edges not inside a clique. For clique-heavy
// topologies (dual clique, bracelet tails) it reduces per-round delivery cost
// from Σ_x deg(x) to O(n + |X| + residual).
type CliqueCover struct {
	// Of maps each node to its clique index.
	Of []int
	// Count is the number of cliques.
	Count int
	// Residual lists G edges whose endpoints are in different cliques.
	Residual []EdgeKey
}

// coverCache memoizes a graph's greedy clique cover (see CliqueCoverOf).
type coverCache struct {
	once sync.Once
	c    *CliqueCover
}

// CliqueCoverOf returns BuildCliqueCover(g), computed once per graph and
// shared afterwards. Graphs are immutable and the cover construction is
// deterministic, so trials that run on the same network reuse one cover
// instead of rebuilding it per execution. The returned cover is read-only.
func CliqueCoverOf(g *Graph) *CliqueCover {
	g.cover.once.Do(func() { g.cover.c = BuildCliqueCover(g) })
	return g.cover.c
}

// BuildCliqueCover greedily covers G with cliques: repeatedly picks the
// unassigned node of highest degree and grows a clique among its unassigned
// neighbors. Always correct; effective when G really is clique-structured.
//
// Growth maintains the candidate set as a running sorted intersection of the
// members' CSR neighbor rows: accepting member v narrows the candidates to
// those also adjacent to v. This admits exactly the same nodes as checking
// each candidate against every member (the acceptance predicate — adjacent
// to all current members, scanned in ascending order — is identical) while
// costing one merge per member instead of a HasEdge probe per pair.
func BuildCliqueCover(g *Graph) *CliqueCover {
	n := g.N()
	cover := &CliqueCover{Of: make([]int, n)}
	for i := range cover.Of {
		cover.Of[i] = -1
	}
	order := make([]NodeID, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return g.Degree(order[i]) > g.Degree(order[j]) })
	var cand, next []NodeID // reused scratch for the running intersection
	for _, seed := range order {
		if cover.Of[seed] != -1 {
			continue
		}
		id := cover.Count
		cover.Count++
		cover.Of[seed] = id
		cand = cand[:0]
		for _, v := range g.Neighbors(seed) {
			if cover.Of[v] == -1 {
				cand = append(cand, v)
			}
		}
		for len(cand) > 0 {
			v := cand[0]
			cover.Of[v] = id
			// next = cand[1:] ∩ Neighbors(v); both sorted ascending.
			next = next[:0]
			rest, nv := cand[1:], g.Neighbors(v)
			i, j := 0, 0
			for i < len(rest) && j < len(nv) {
				switch {
				case rest[i] == nv[j]:
					next = append(next, rest[i])
					i++
					j++
				case rest[i] < nv[j]:
					i++
				default:
					j++
				}
			}
			cand, next = next, cand
		}
	}
	g.ForEachEdge(func(u, v NodeID) {
		if cover.Of[u] != cover.Of[v] {
			cover.Residual = append(cover.Residual, EdgeKey{U: u, V: v})
		}
	})
	return cover
}

// Validate checks that every clique in the cover is in fact a G-clique and
// that Residual is exactly the set of cross-clique G edges.
func (c *CliqueCover) Validate(g *Graph) bool {
	members := make([][]NodeID, c.Count)
	for u, id := range c.Of {
		if id < 0 || id >= c.Count {
			return false
		}
		members[id] = append(members[id], u)
	}
	for _, ms := range members {
		for i := 0; i < len(ms); i++ {
			for j := i + 1; j < len(ms); j++ {
				if !g.HasEdge(ms[i], ms[j]) {
					return false
				}
			}
		}
	}
	want := 0
	g.ForEachEdge(func(u, v NodeID) {
		if c.Of[u] != c.Of[v] {
			want++
		}
	})
	return want == len(c.Residual)
}
