package graph

import (
	"sync"

	"repro/internal/bitrand"
)

// NeighborMasks is the word-parallel adjacency representation of a graph:
// one bitmap row per node, bit v of row u set iff (u, v) is an edge. The
// engine's bitset delivery path intersects a row with the round's
// transmitter bitmap to classify reception 64 candidate senders per word.
//
// Rows cost n²/64 bits total (n·WordsFor(n) words), quadratic in n where the
// CSR arrays are linear in the edge count — which is why the engine builds
// masks only when n and density make the bitmap path win, and why the memo
// below shares one build across every trial on the same graph.
type NeighborMasks struct {
	// W is the row stride in 64-bit words: WordsFor(n).
	W int
	// rows is the flat n·W backing array; row u is rows[u*W : (u+1)*W].
	rows []uint64
}

// Row returns node u's neighbor bitmap as a zero-copy view into the flat
// backing array. Like Graph.Neighbors, the view is shared and read-only.
func (m *NeighborMasks) Row(u NodeID) []uint64 { return m.rows[u*m.W : (u+1)*m.W] }

// Rows exposes the flat backing array for hot loops that index rows
// themselves (row u starts at u*W). Read-only.
func (m *NeighborMasks) Rows() []uint64 { return m.rows }

// BuildNeighborMasks constructs the bitmap adjacency of g from its CSR rows.
func BuildNeighborMasks(g *Graph) *NeighborMasks {
	n := g.N()
	w := bitrand.WordsFor(n)
	m := &NeighborMasks{W: w, rows: make([]uint64, n*w)}
	offs, adj := g.CSR()
	for u := 0; u < n; u++ {
		row := m.rows[u*w : (u+1)*w]
		for _, v := range adj[offs[u]:offs[u+1]] {
			row[v>>6] |= 1 << (uint(v) & 63)
		}
	}
	return m
}

// maskCache memoizes a graph's neighbor masks (see NeighborMasksOf).
type maskCache struct {
	once sync.Once
	m    *NeighborMasks
}

// NeighborMasksOf returns BuildNeighborMasks(g), computed once per graph and
// shared afterwards — the same memoization contract as CliqueCoverOf: graphs
// are immutable, so repeated trials (and successive epochs that revisit a
// revision) reuse one mask set instead of rebuilding n·W words per
// execution. The returned masks are read-only and live as long as the graph.
func NeighborMasksOf(g *Graph) *NeighborMasks {
	g.masks.once.Do(func() { g.masks.m = BuildNeighborMasks(g) })
	return g.masks.m
}
