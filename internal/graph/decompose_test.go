package graph

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/bitrand"
)

// decompositionZoo is the builders.go substrate zoo the property suite runs
// over: the regular shapes, the paper's lower-bound topologies, geographic
// duals, and the SCALE-family substrates (circulant, ring+chords, augmented
// fringe — the fringe lives in E'\E, so the reliable graph is the base).
func decompositionZoo() map[string]*Graph {
	src := bitrand.New(0xdec0)
	dc, _ := DualClique(64, 3)
	br, _ := BraceletExplicit(6, 5, 2)
	geo := Geographic(bitrand.New(0xdec1), GeographicConfig{N: 80, Side: 5, Radius: 2, GreyProb: 0.5})
	return map[string]*Graph{
		"empty":      NewBuilder(17).Build(),
		"single":     NewBuilder(1).Build(),
		"line":       Line(64),
		"ring":       Ring(65),
		"clique":     Clique(48),
		"star":       Star(33),
		"grid":       Grid(8, 9),
		"dualclique": dc.G(),
		"twocliques": TwoCliques(48).G(),
		"bracelet":   br.G(),
		"geographic": geo.G(),
		"geogrid":    GeographicGrid(bitrand.New(0xdec2), 6, 6, 0.9, 2).G(),
		"erdosrenyi": ErdosRenyi(src, 100, 0.05),
		"circulant":  Circulant(192, 8),
		"ringchords": RingChords(src, 192, 64),
	}
}

// TestDecompositionInvariants checks every structural invariant of the
// deterministic decomposition — partition, BFS trees, weak diameter,
// same-color non-adjacency, the ⌊log₂ n⌋+1 color bound, and the phase
// geometry — across the substrate zoo, for cold builds and memo hits alike.
func TestDecompositionInvariants(t *testing.T) {
	for name, g := range decompositionZoo() {
		t.Run(name, func(t *testing.T) {
			cold := BuildDecomposition(g)
			if err := cold.Validate(g); err != nil {
				t.Fatal(err)
			}
			memo := DecompositionOf(g)
			if err := memo.Validate(g); err != nil {
				t.Fatalf("memoized build: %v", err)
			}
			if !reflect.DeepEqual(cold, memo) {
				t.Fatal("memoized decomposition differs from a cold build")
			}
			total := 0
			for k := 0; k < memo.Count; k++ {
				total += memo.ClusterSize(k)
			}
			if total != g.N() {
				t.Fatalf("clusters cover %d of %d nodes", total, g.N())
			}
		})
	}
}

// TestDecompositionDeterministic pins the byte-identical-output contract:
// repeated cold builds are deeply equal, and 64 concurrent memo readers all
// observe the same pointer (one build per graph, shared thereafter).
func TestDecompositionDeterministic(t *testing.T) {
	for name, g := range decompositionZoo() {
		t.Run(name, func(t *testing.T) {
			a, b := BuildDecomposition(g), BuildDecomposition(g)
			if !reflect.DeepEqual(a, b) {
				t.Fatal("two cold builds differ")
			}
			ptrs := make([]*Decomposition, 64)
			var wg sync.WaitGroup
			for i := range ptrs {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					ptrs[i] = DecompositionOf(g)
				}(i)
			}
			wg.Wait()
			for i := 1; i < len(ptrs); i++ {
				if ptrs[i] != ptrs[0] {
					t.Fatal("concurrent memo readers observed distinct decompositions")
				}
			}
			if !reflect.DeepEqual(ptrs[0], a) {
				t.Fatal("memoized decomposition differs from a cold build")
			}
		})
	}
}

// TestDecompositionSchedule checks the sweep-schedule contract behind
// DerandBroadcast: in every sweep, each cluster designates exactly one owner
// per slot of its color's phase, every member owns exactly one slot per
// sweep, and nobody owns a slot outside its color's phase.
func TestDecompositionSchedule(t *testing.T) {
	for name, g := range decompositionZoo() {
		t.Run(name, func(t *testing.T) {
			d := DecompositionOf(g)
			if g.N() == 0 {
				return
			}
			if d.SweepLen() == 0 {
				t.Fatal("nonempty graph with zero sweep length")
			}
			owned := make([]int, g.N())
			for sweep := 0; sweep < 3; sweep++ {
				clear(owned)
				for t0 := 0; t0 < d.SweepLen(); t0++ {
					r := sweep*d.SweepLen() + t0
					for k := 0; k < d.Count; k++ {
						c := d.Color[k]
						owners := 0
						for _, u := range d.Members(k) {
							if d.Owns(u, r) {
								owners++
								owned[u]++
								if t0 < d.PhaseOff(c) || t0 >= d.PhaseOff(c)+d.PhaseLen(c) {
									t.Fatalf("node %d owns slot %d outside color %d's phase", u, t0, c)
								}
							}
						}
						if owners > 1 {
							t.Fatalf("cluster %d has %d owners in round %d", k, owners, r)
						}
					}
				}
				for u, c := range owned {
					if c != 1 {
						t.Fatalf("sweep %d: node %d owns %d slots, want exactly 1", sweep, u, c)
					}
				}
			}
		})
	}
}

// FuzzDecomposition builds an arbitrary Builder graph from the fuzzed seed
// and checks the full invariant set. Styles mix the random-edge soup with
// structured substrates so the corpus covers both.
func FuzzDecomposition(f *testing.F) {
	f.Add(uint64(1), uint16(16), uint16(32), uint8(0))
	f.Add(uint64(2), uint16(64), uint16(64), uint8(1))
	f.Add(uint64(3), uint16(9), uint16(0), uint8(2))
	f.Add(uint64(4), uint16(33), uint16(80), uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, n, edges uint16, style uint8) {
		nn := int(n)%256 + 1
		src := bitrand.New(seed)
		var g *Graph
		switch style % 4 {
		case 0:
			b := NewBuilder(nn)
			for i := 0; i < int(edges)%1024; i++ {
				b.AddEdge(src.Intn(nn), src.Intn(nn))
			}
			g = b.Build()
		case 1:
			g = Circulant(nn, 2+int(edges)%8)
		case 2:
			g = ErdosRenyi(src, nn, float64(edges%100)/100)
		default:
			g = RingChords(src, nn, int(edges)%64)
		}
		d := BuildDecomposition(g)
		if err := d.Validate(g); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(d, BuildDecomposition(g)) {
			t.Fatal("decomposition is not deterministic")
		}
	})
}
