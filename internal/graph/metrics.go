package graph

// BFSDist returns the G-distance in hops from src to every node; unreachable
// nodes get -1.
func BFSDist(g *Graph, src NodeID) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= g.N() {
		return dist
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Connected reports whether the graph is connected (true for n ≤ 1).
func Connected(g *Graph) bool {
	if g.N() <= 1 {
		return true
	}
	dist := BFSDist(g, 0)
	for _, d := range dist {
		if d == -1 {
			return false
		}
	}
	return true
}

// Eccentricity returns the maximum finite distance from src, or -1 if some
// node is unreachable.
func Eccentricity(g *Graph, src NodeID) int {
	max := 0
	for _, d := range BFSDist(g, src) {
		if d == -1 {
			return -1
		}
		if d > max {
			max = d
		}
	}
	return max
}

// Diameter returns the exact diameter of a connected graph by running BFS
// from every node, or -1 if the graph is disconnected. Quadratic; intended
// for experiment setup, not inner loops.
func Diameter(g *Graph) int {
	diam := 0
	for u := 0; u < g.N(); u++ {
		e := Eccentricity(g, u)
		if e == -1 {
			return -1
		}
		if e > diam {
			diam = e
		}
	}
	return diam
}

// DiameterApprox returns a 2-approximation of the diameter using a double
// BFS sweep, or -1 if disconnected. Linear time; used for large graphs.
func DiameterApprox(g *Graph) int {
	if g.N() == 0 {
		return 0
	}
	d0 := BFSDist(g, 0)
	far, max := 0, 0
	for u, d := range d0 {
		if d == -1 {
			return -1
		}
		if d > max {
			far, max = u, d
		}
	}
	return Eccentricity(g, far)
}

// AvgDegree returns the average degree.
func AvgDegree(g *Graph) float64 {
	if g.N() == 0 {
		return 0
	}
	return 2 * float64(g.NumEdges()) / float64(g.N())
}

// GNeighborsOf returns the set of nodes with at least one G-neighbor in the
// given set: exactly the receiver set R of the local broadcast problem for
// broadcaster set B.
func GNeighborsOf(g *Graph, set []NodeID) []NodeID {
	inSet := make([]bool, g.N())
	for _, u := range set {
		if u >= 0 && u < g.N() {
			inSet[u] = true
		}
	}
	var out []NodeID
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if inSet[v] {
				out = append(out, u)
				break
			}
		}
	}
	return out
}
