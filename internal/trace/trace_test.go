package trace

import (
	"strings"
	"testing"

	"repro/internal/bitrand"
	"repro/internal/graph"
	"repro/internal/radio"
)

func TestProgressFromResultGlobal(t *testing.T) {
	res := radio.Result{
		Rounds:     4,
		InformedAt: []int{0, 0, 1, 3, -1},
	}
	p := ProgressFromResult(res)
	if p.Total != 4 {
		t.Fatalf("total = %d", p.Total)
	}
	want := []int{2, 3, 3, 4}
	for i, w := range want {
		if p.Counts[i] != w {
			t.Fatalf("Counts[%d] = %d, want %d", i, p.Counts[i], w)
		}
	}
}

func TestProgressFromResultLocal(t *testing.T) {
	res := radio.Result{
		Rounds:         3,
		ReceiverDoneAt: []int{-1, 2, 0, -1},
	}
	p := ProgressFromResult(res)
	if p.Total != 2 || p.Counts[0] != 1 || p.Counts[2] != 2 {
		t.Fatalf("progress %+v", p)
	}
}

func TestProgressDegenerate(t *testing.T) {
	p := ProgressFromResult(radio.Result{Rounds: 0, InformedAt: []int{-1}})
	if len(p.Counts) != 1 || p.Total != 0 {
		t.Fatalf("degenerate progress %+v", p)
	}
	if p.TimeToFraction(0.5) != -1 {
		t.Fatal("empty curve must report -1")
	}
}

func TestTimeToFraction(t *testing.T) {
	p := ProgressCurve{Counts: []int{1, 5, 9, 10}, Total: 10}
	if got := p.TimeToFraction(0.5); got != 1 {
		t.Fatalf("half at round %d, want 1", got)
	}
	if got := p.TimeToFraction(1.0); got != 3 {
		t.Fatalf("all at round %d, want 3", got)
	}
	if got := p.TimeToFraction(0.0); got != 0 {
		t.Fatalf("first at round %d, want 0", got)
	}
}

func TestAnalyzeChannelOnFlood(t *testing.T) {
	rec, res := realFloodTrace(t, 6)
	cs := AnalyzeChannel(rec)
	if cs.Rounds != res.Rounds {
		t.Fatalf("rounds %d != %d", cs.Rounds, res.Rounds)
	}
	if int64(cs.Transmissions) != res.Transmissions {
		t.Fatalf("transmissions %d != %d", cs.Transmissions, res.Transmissions)
	}
	if int64(cs.Deliveries) != res.Deliveries {
		t.Fatalf("deliveries %d != %d", cs.Deliveries, res.Deliveries)
	}
	if cs.SilentRounds != 0 {
		t.Fatal("flood never goes silent")
	}
	if cs.SingletonRounds < 1 {
		t.Fatal("round 0 has a single transmitter")
	}
	if cs.Utilization() <= 0 || cs.Utilization() > 1 {
		t.Fatalf("utilization %v", cs.Utilization())
	}
	if cs.SparseLinkRounds != cs.Rounds {
		t.Fatal("protocol-model rounds must all record selector none")
	}
}

func TestPerNodeActivity(t *testing.T) {
	rec, _ := realFloodTrace(t, 5)
	acts := PerNodeActivity(rec)
	if len(acts) == 0 {
		t.Fatal("no activity recorded")
	}
	// Node 0 transmits every round, never receives.
	if acts[0].Node != 0 || acts[0].Transmissions == 0 || acts[0].Receptions != 0 {
		t.Fatalf("node0 activity %+v", acts[0])
	}
	// The far end (node 4) receives exactly once.
	last := acts[len(acts)-1]
	if last.Node != 4 || last.Receptions != 1 {
		t.Fatalf("far-end activity %+v", last)
	}
	// Sorted by node id.
	for i := 1; i < len(acts); i++ {
		if acts[i-1].Node >= acts[i].Node {
			t.Fatal("activity not sorted")
		}
	}
}

func TestCSVOutputs(t *testing.T) {
	rec, res := realFloodTrace(t, 4)
	csv := CSV(rec)
	if !strings.HasPrefix(csv, "round,transmitters,deliveries,selector\n") {
		t.Fatalf("csv header: %q", csv[:40])
	}
	if got := strings.Count(csv, "\n"); got != len(rec.Rounds)+1 {
		t.Fatalf("csv lines = %d", got)
	}
	pcsv := ProgressCSV(ProgressFromResult(res))
	if !strings.HasPrefix(pcsv, "round,completed\n") {
		t.Fatal("progress csv header")
	}
}

// realFloodTrace uses a real flooding algorithm (informed nodes always
// transmit) — deterministic message advance on a line.
func realFloodTrace(t *testing.T, n int) (*radio.MemRecorder, radio.Result) {
	t.Helper()
	rec := &radio.MemRecorder{}
	res, err := radio.Run(radio.Config{
		Net:       graph.UniformDual(graph.Line(n)),
		Algorithm: relayAlgorithm{},
		Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
		Recorder:  rec,
		MaxRounds: 4 * n,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("flood did not complete")
	}
	return rec, res
}

type relayAlgorithm struct{}

func (relayAlgorithm) Name() string { return "relay" }

func (relayAlgorithm) NewProcesses(net *graph.Dual, spec radio.Spec, rng *bitrand.Source) []radio.Process {
	out := make([]radio.Process, net.N())
	for u := 0; u < net.N(); u++ {
		p := &relayProc{}
		if u == spec.Source {
			p.msg = &radio.Message{Origin: spec.Source}
		}
		out[u] = p
	}
	return out
}

type relayProc struct{ msg *radio.Message }

func (p *relayProc) TransmitProb(int) float64 {
	if p.msg != nil {
		return 1
	}
	return 0
}

func (p *relayProc) Step(r int, rng *bitrand.Source) radio.Action {
	if p.msg != nil {
		return radio.Transmit(p.msg)
	}
	return radio.Listen()
}

func (p *relayProc) Deliver(r int, msg *radio.Message) {
	if msg != nil && p.msg == nil {
		p.msg = msg
	}
}
