package trace

import (
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/bitrand"
	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/radio"
)

func TestProgressFromResultGlobal(t *testing.T) {
	res := radio.Result{
		Rounds:     4,
		InformedAt: []int{0, 0, 1, 3, -1},
	}
	p := ProgressFromResult(res)
	if p.Total != 4 {
		t.Fatalf("total = %d", p.Total)
	}
	want := []int{2, 3, 3, 4}
	for i, w := range want {
		if p.Counts[i] != w {
			t.Fatalf("Counts[%d] = %d, want %d", i, p.Counts[i], w)
		}
	}
}

func TestProgressFromResultLocal(t *testing.T) {
	res := radio.Result{
		Rounds:         3,
		ReceiverDoneAt: []int{-1, 2, 0, -1},
	}
	p := ProgressFromResult(res)
	if p.Total != 2 || p.Counts[0] != 1 || p.Counts[2] != 2 {
		t.Fatalf("progress %+v", p)
	}
}

func TestProgressDegenerate(t *testing.T) {
	p := ProgressFromResult(radio.Result{Rounds: 0, InformedAt: []int{-1}})
	if len(p.Counts) != 1 || p.Total != 0 {
		t.Fatalf("degenerate progress %+v", p)
	}
	if p.TimeToFraction(0.5) != -1 {
		t.Fatal("empty curve must report -1")
	}
}

func TestTimeToFraction(t *testing.T) {
	p := ProgressCurve{Counts: []int{1, 5, 9, 10}, Total: 10}
	if got := p.TimeToFraction(0.5); got != 1 {
		t.Fatalf("half at round %d, want 1", got)
	}
	if got := p.TimeToFraction(1.0); got != 3 {
		t.Fatalf("all at round %d, want 3", got)
	}
	if got := p.TimeToFraction(0.0); got != 0 {
		t.Fatalf("first at round %d, want 0", got)
	}
}

func TestAnalyzeChannelOnFlood(t *testing.T) {
	rec, res := realFloodTrace(t, 6)
	cs := AnalyzeChannel(rec)
	if cs.Rounds != res.Rounds {
		t.Fatalf("rounds %d != %d", cs.Rounds, res.Rounds)
	}
	if int64(cs.Transmissions) != res.Transmissions {
		t.Fatalf("transmissions %d != %d", cs.Transmissions, res.Transmissions)
	}
	if int64(cs.Deliveries) != res.Deliveries {
		t.Fatalf("deliveries %d != %d", cs.Deliveries, res.Deliveries)
	}
	if cs.SilentRounds != 0 {
		t.Fatal("flood never goes silent")
	}
	if cs.SingletonRounds < 1 {
		t.Fatal("round 0 has a single transmitter")
	}
	if cs.Utilization() <= 0 || cs.Utilization() > 1 {
		t.Fatalf("utilization %v", cs.Utilization())
	}
	if cs.SparseLinkRounds != cs.Rounds {
		t.Fatal("protocol-model rounds must all record selector none")
	}
}

func TestPerNodeActivity(t *testing.T) {
	rec, _ := realFloodTrace(t, 5)
	acts := PerNodeActivity(rec)
	if len(acts) == 0 {
		t.Fatal("no activity recorded")
	}
	// Node 0 transmits every round, never receives.
	if acts[0].Node != 0 || acts[0].Transmissions == 0 || acts[0].Receptions != 0 {
		t.Fatalf("node0 activity %+v", acts[0])
	}
	// The far end (node 4) receives exactly once.
	last := acts[len(acts)-1]
	if last.Node != 4 || last.Receptions != 1 {
		t.Fatalf("far-end activity %+v", last)
	}
	// Sorted by node id.
	for i := 1; i < len(acts); i++ {
		if acts[i-1].Node >= acts[i].Node {
			t.Fatal("activity not sorted")
		}
	}
}

func TestCSVOutputs(t *testing.T) {
	rec, res := realFloodTrace(t, 4)
	csv := CSV(rec)
	if !strings.HasPrefix(csv, "round,transmitters,deliveries,selector\n") {
		t.Fatalf("csv header: %q", csv[:40])
	}
	if got := strings.Count(csv, "\n"); got != len(rec.Rounds)+1 {
		t.Fatalf("csv lines = %d", got)
	}
	pcsv := ProgressCSV(ProgressFromResult(res))
	if !strings.HasPrefix(pcsv, "round,completed\n") {
		t.Fatal("progress csv header")
	}
}

// TestProgressFromResultGossip covers the RumorAt path: each (node, rumor)
// acquisition is one completion unit, so a 3-node 2-rumor matrix counts to
// n·k = 6.
func TestProgressFromResultGossip(t *testing.T) {
	res := radio.Result{
		Rounds: 4,
		RumorAt: [][]int{
			{0, 2},  // node 0: source of rumor 0, learns rumor 1 at round 2
			{1, 0},  // node 1: learns rumor 0 at round 1, source of rumor 1
			{3, -1}, // node 2: learns rumor 0 late, never learns rumor 1
		},
	}
	p := ProgressFromResult(res)
	if p.Total != 5 {
		t.Fatalf("total = %d, want 5", p.Total)
	}
	want := []int{2, 3, 4, 5}
	for i, w := range want {
		if p.Counts[i] != w {
			t.Fatalf("Counts[%d] = %d, want %d", i, p.Counts[i], w)
		}
	}
	if got := p.TimeToFraction(1.0); got != 3 {
		t.Fatalf("TimeToFraction(1.0) = %d, want 3", got)
	}
}

// realGossipTrace records a TDM k-rumor run (the RumorAt problem) under the
// i.i.d. adversary, so the trace carries partial selector rounds.
func realGossipTrace(t *testing.T) (*radio.MemRecorder, radio.Result) {
	t.Helper()
	rec := &radio.MemRecorder{}
	net := graph.UniformDual(graph.Grid(4, 4))
	res, err := radio.Run(radio.Config{
		Net:       net,
		Algorithm: gossip.TDM{},
		Spec:      radio.Spec{Problem: radio.Gossip, Sources: []graph.NodeID{0, 15}},
		Link:      adversary.RandomLoss{P: 0.5},
		Seed:      3,
		Recorder:  rec,
		MaxRounds: 400 * net.N(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved || res.RumorAt == nil {
		t.Fatalf("gossip run unusable: solved=%v", res.Solved)
	}
	return rec, res
}

// TestAnalyzeChannelOnGossip cross-checks ChannelStats against the engine's
// own counters on a recorded k-rumor run, and requires the round taxonomy to
// tile the execution exactly.
func TestAnalyzeChannelOnGossip(t *testing.T) {
	rec, res := realGossipTrace(t)
	cs := AnalyzeChannel(rec)
	if cs.Rounds != res.Rounds {
		t.Fatalf("rounds %d != %d", cs.Rounds, res.Rounds)
	}
	if int64(cs.Transmissions) != res.Transmissions {
		t.Fatalf("transmissions %d != %d", cs.Transmissions, res.Transmissions)
	}
	if int64(cs.Deliveries) != res.Deliveries {
		t.Fatalf("deliveries %d != %d", cs.Deliveries, res.Deliveries)
	}
	if cs.DenseLinkRounds+cs.SparseLinkRounds+cs.PartialLinkRounds != cs.Rounds {
		t.Fatalf("selector taxonomy does not tile: %+v", cs)
	}
	if cs.PartialLinkRounds != cs.Rounds {
		t.Fatalf("RandomLoss{0.5} commits per-edge selectors; want every round partial, got %+v", cs)
	}
	if cs.MaxTransmitters < 1 || cs.MaxTransmitters > 16 {
		t.Fatalf("MaxTransmitters = %d out of range", cs.MaxTransmitters)
	}
	if u := cs.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("utilization %v", u)
	}
}

// TestPerNodeActivityGossip checks the per-node tallies of a k-rumor trace:
// both origins transmit, every node of the solved run received something,
// and the tallies reconcile with the channel totals.
func TestPerNodeActivityGossip(t *testing.T) {
	rec, res := realGossipTrace(t)
	acts := PerNodeActivity(rec)
	if len(acts) != 16 {
		t.Fatalf("%d active nodes, want all 16 of a solved gossip run", len(acts))
	}
	totTx, totRx := 0, 0
	byNode := map[int]NodeActivity{}
	for _, a := range acts {
		totTx += a.Transmissions
		totRx += a.Receptions
		byNode[a.Node] = a
	}
	if int64(totTx) != res.Transmissions || int64(totRx) != res.Deliveries {
		t.Fatalf("tallies (%d tx, %d rx) disagree with result (%d, %d)",
			totTx, totRx, res.Transmissions, res.Deliveries)
	}
	for _, src := range []int{0, 15} {
		if byNode[src].Transmissions == 0 {
			t.Fatalf("origin %d never transmitted", src)
		}
	}
	for u, a := range byNode {
		if u != 0 && u != 15 && a.Receptions == 0 {
			t.Fatalf("non-origin node %d solved the run without receiving", u)
		}
	}
}

// TestCSVGolden pins the exact output shape of both CSV renderers on the
// fully deterministic 3-node relay flood.
func TestCSVGolden(t *testing.T) {
	rec, res := realFloodTrace(t, 3)
	wantCSV := "round,transmitters,deliveries,selector\n" +
		"0,1,1,none\n" +
		"1,2,1,none\n"
	if got := CSV(rec); got != wantCSV {
		t.Errorf("CSV:\n%q\nwant:\n%q", got, wantCSV)
	}
	wantProgress := "round,completed\n" +
		"0,2\n" +
		"1,3\n"
	if got := ProgressCSV(ProgressFromResult(res)); got != wantProgress {
		t.Errorf("ProgressCSV:\n%q\nwant:\n%q", got, wantProgress)
	}
}

// TestGossipCSVShape checks the row counts of both CSVs on a recorded
// k-rumor run: one row per recorded round, one per executed round.
func TestGossipCSVShape(t *testing.T) {
	rec, res := realGossipTrace(t)
	csv := CSV(rec)
	if !strings.HasPrefix(csv, "round,transmitters,deliveries,selector\n") {
		t.Fatalf("csv header: %q", csv[:40])
	}
	if got := strings.Count(csv, "\n"); got != len(rec.Rounds)+1 {
		t.Fatalf("csv has %d lines for %d rounds", got, len(rec.Rounds))
	}
	pcsv := ProgressCSV(ProgressFromResult(res))
	if got := strings.Count(pcsv, "\n"); got != res.Rounds+1 {
		t.Fatalf("progress csv has %d lines for %d rounds", got, res.Rounds)
	}
	if !strings.HasSuffix(strings.TrimSpace(pcsv), ",32") {
		t.Fatalf("progress csv must end at n·k = 32 completions:\n%s", pcsv)
	}
}

// realFloodTrace uses a real flooding algorithm (informed nodes always
// transmit) — deterministic message advance on a line.
func realFloodTrace(t *testing.T, n int) (*radio.MemRecorder, radio.Result) {
	t.Helper()
	rec := &radio.MemRecorder{}
	res, err := radio.Run(radio.Config{
		Net:       graph.UniformDual(graph.Line(n)),
		Algorithm: relayAlgorithm{},
		Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
		Recorder:  rec,
		MaxRounds: 4 * n,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("flood did not complete")
	}
	return rec, res
}

type relayAlgorithm struct{}

func (relayAlgorithm) Name() string { return "relay" }

func (relayAlgorithm) NewProcesses(net *graph.Dual, spec radio.Spec, rng *bitrand.Source) []radio.Process {
	out := make([]radio.Process, net.N())
	for u := 0; u < net.N(); u++ {
		p := &relayProc{}
		if u == spec.Source {
			p.msg = &radio.Message{Origin: spec.Source}
		}
		out[u] = p
	}
	return out
}

type relayProc struct{ msg *radio.Message }

func (p *relayProc) TransmitProb(int) float64 {
	if p.msg != nil {
		return 1
	}
	return 0
}

func (p *relayProc) Step(r int, rng *bitrand.Source) radio.Action {
	if p.msg != nil {
		return radio.Transmit(p.msg)
	}
	return radio.Listen()
}

func (p *relayProc) Deliver(r int, msg *radio.Message) {
	if msg != nil && p.msg == nil {
		p.msg = msg
	}
}
