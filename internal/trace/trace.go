// Package trace analyzes recorded executions: progress curves (how many
// nodes are informed or satisfied per round), channel utilization, per-node
// activity, and CSV export. It consumes the radio package's round records
// and results, turning single runs into the time-series views used by the
// tools and by EXPERIMENTS.md.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/radio"
)

// ProgressCurve is the number of problem-relevant completions (informed
// nodes, or satisfied receivers) at the end of each round, derived from a
// Result's per-node completion rounds.
type ProgressCurve struct {
	// Counts[r] is the cumulative count after round r.
	Counts []int
	// Total is the final count.
	Total int
}

// ProgressFromResult builds the curve from a Result: InformedAt for global
// broadcast, ReceiverDoneAt for local, and for gossip the flattened RumorAt
// matrix — each (node, rumor) acquisition counts as one completion, so the
// curve tracks n·k total units under contention. The curve has res.Rounds
// entries.
func ProgressFromResult(res radio.Result) ProgressCurve {
	at := res.InformedAt
	if at == nil {
		at = res.ReceiverDoneAt
	}
	rounds := res.Rounds
	if rounds < 1 {
		rounds = 1
	}
	counts := make([]int, rounds)
	total := 0
	mark := func(r int) {
		if r < 0 {
			return
		}
		total++
		if r < rounds {
			counts[r]++
		}
	}
	for _, r := range at {
		mark(r)
	}
	if at == nil {
		for _, row := range res.RumorAt {
			for _, r := range row {
				mark(r)
			}
		}
	}
	for i := 1; i < rounds; i++ {
		counts[i] += counts[i-1]
	}
	return ProgressCurve{Counts: counts, Total: total}
}

// TimeToFraction returns the first round by which the cumulative count
// reaches the given fraction of the total, or -1 if never.
func (p ProgressCurve) TimeToFraction(frac float64) int {
	if p.Total == 0 {
		return -1
	}
	want := int(frac * float64(p.Total))
	if want < 1 {
		want = 1
	}
	for r, c := range p.Counts {
		if c >= want {
			return r
		}
	}
	return -1
}

// ChannelStats summarizes medium usage over a recorded execution.
type ChannelStats struct {
	Rounds            int
	Transmissions     int
	Deliveries        int
	SilentRounds      int // no transmitter
	SingletonRounds   int // exactly one transmitter
	CollisionRounds   int // ≥2 transmitters, no delivery
	DeliveringRounds  int // ≥1 delivery
	MaxTransmitters   int
	DenseLinkRounds   int // adversary selected "all"
	SparseLinkRounds  int // adversary selected "none"
	PartialLinkRounds int
}

// Utilization is the fraction of rounds with at least one delivery.
func (c ChannelStats) Utilization() float64 {
	if c.Rounds == 0 {
		return 0
	}
	return float64(c.DeliveringRounds) / float64(c.Rounds)
}

// AnalyzeChannel computes ChannelStats from a recorded trace.
func AnalyzeChannel(rec *radio.MemRecorder) ChannelStats {
	var cs ChannelStats
	cs.Rounds = len(rec.Rounds)
	for _, r := range rec.Rounds {
		tx := len(r.Transmitters)
		cs.Transmissions += tx
		cs.Deliveries += len(r.Deliveries)
		if tx > cs.MaxTransmitters {
			cs.MaxTransmitters = tx
		}
		switch {
		case tx == 0:
			cs.SilentRounds++
		case tx == 1:
			cs.SingletonRounds++
		case len(r.Deliveries) == 0:
			cs.CollisionRounds++
		}
		if len(r.Deliveries) > 0 {
			cs.DeliveringRounds++
		}
		switch r.SelectorKind {
		case "all":
			cs.DenseLinkRounds++
		case "none":
			cs.SparseLinkRounds++
		default:
			cs.PartialLinkRounds++
		}
	}
	return cs
}

// NodeActivity is one node's footprint in a trace.
type NodeActivity struct {
	Node          int
	Transmissions int
	Receptions    int
}

// PerNodeActivity tallies transmissions and receptions per node, sorted by
// node id. Nodes with no activity are omitted.
func PerNodeActivity(rec *radio.MemRecorder) []NodeActivity {
	tx := map[int]int{}
	rx := map[int]int{}
	for _, r := range rec.Rounds {
		for _, u := range r.Transmitters {
			tx[u]++
		}
		for _, d := range r.Deliveries {
			rx[d.To]++
		}
	}
	ids := map[int]bool{}
	for u := range tx {
		ids[u] = true
	}
	for u := range rx {
		ids[u] = true
	}
	out := make([]NodeActivity, 0, len(ids))
	for u := range ids {
		out = append(out, NodeActivity{Node: u, Transmissions: tx[u], Receptions: rx[u]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// CSV renders a trace as one row per round: round, transmitters, deliveries,
// selector kind.
func CSV(rec *radio.MemRecorder) string {
	var b strings.Builder
	b.WriteString("round,transmitters,deliveries,selector\n")
	for _, r := range rec.Rounds {
		fmt.Fprintf(&b, "%d,%d,%d,%s\n", r.Round, len(r.Transmitters), len(r.Deliveries), r.SelectorKind)
	}
	return b.String()
}

// ProgressCSV renders a progress curve as round,count rows.
func ProgressCSV(p ProgressCurve) string {
	var b strings.Builder
	b.WriteString("round,completed\n")
	for r, c := range p.Counts {
		fmt.Fprintf(&b, "%d,%d\n", r, c)
	}
	return b.String()
}
