package radio

import (
	"errors"
	"fmt"

	"repro/internal/bitrand"
	"repro/internal/graph"
)

// Epoch is one entry of a topology schedule: from round Start onward the
// execution runs on Net, until the next epoch begins. Epochs are produced by
// the scenario layer (internal/scenario), which precompiles one immutable
// graph revision per epoch so the engine only swaps CSR views at boundaries.
type Epoch struct {
	// Start is the first round of the epoch. Epochs[0].Start must be 0 and
	// starts must be strictly increasing.
	Start int
	// Net is the epoch's dual graph. All epochs of a schedule share one
	// vertex set (same N); per-node process state carries across swaps.
	Net *graph.Dual
}

// Config describes one execution.
type Config struct {
	// Net is the dual graph network. Exactly today's static model: one
	// immutable topology for the whole execution.
	Net *graph.Dual
	// Epochs, when non-empty, is a topology schedule replacing the single
	// static Net: the execution starts on Epochs[0].Net and switches to each
	// subsequent epoch's network at its Start round. A nil/single-epoch
	// schedule is exactly the static path. Net may be left nil, or set to
	// Epochs[0].Net (anything else is an error).
	//
	// Adversary visibility contract: link processes commit against an Env
	// whose Net is pinned to the base topology (Epochs[0].Net) for the whole
	// execution and whose Epochs carries the full schedule, so oblivious
	// adversaries can pre-commit against the same churn the execution will
	// run under. Adaptive adversaries additionally observe the live
	// topology each round through View.EpochIdx/View.Net, which swapEpoch
	// keeps current; committed selectors apply per round to whatever
	// topology is live.
	Epochs []Epoch
	// Algorithm constructs the per-node processes.
	Algorithm Algorithm
	// Spec is the problem instance.
	Spec Spec
	// Link is the link process; its dynamic type determines the adversary
	// class (ObliviousLink, OnlineAdaptiveLink, or OfflineAdaptiveLink). A
	// nil Link means no unreliable edges ever appear: the static protocol
	// model on G.
	Link any
	// Seed drives all randomness: node coins, algorithm setup, adversary.
	Seed uint64
	// MaxRounds bounds the execution; 0 selects a generous default of
	// 64·n², covering every algorithm in this repository with slack. The
	// default only applies up to maxDefaultRoundsNodes nodes: beyond that,
	// 64·n² is an accidental near-infinite budget (6.4×10¹¹ rounds at
	// n = 10⁵), so large configurations must set MaxRounds explicitly or Run
	// fails with ErrBadConfig.
	MaxRounds int
	// Plan selects the delivery implementation (see DeliveryPlan). The zero
	// value PlanAuto re-derives the choice at every epoch commit; delivered
	// bits are identical under every plan.
	Plan DeliveryPlan
	// Recorder, when non-nil, receives per-round trace records.
	Recorder Recorder
	// UseCliqueCover enables the clique-tally delivery accelerator, which
	// helps on clique-structured networks (dual clique). Delivery semantics
	// are identical either way.
	UseCliqueCover bool
	// IgnoreCompletion runs the full MaxRounds budget even after the problem
	// is solved. Sampling adversaries use it so their presimulations cover
	// the whole horizon; Result.Solved and the completion fields still
	// reflect the first solving round.
	IgnoreCompletion bool
}

// Result summarizes an execution.
type Result struct {
	// Solved reports whether the problem completed within MaxRounds.
	Solved bool
	// Rounds is the number of rounds executed (the completion round + 1
	// when solved).
	Rounds int
	// Transmissions is the total number of transmissions.
	Transmissions int64
	// Deliveries is the total number of successful receptions.
	Deliveries int64
	// InformedAt, for global broadcast, maps each node to the round it
	// first held the message (source: 0; uninformed: -1). Nil for local.
	InformedAt []int
	// ReceiverDoneAt, for local broadcast, maps each node of R to the round
	// it was first satisfied (-1 if never, or not in R). Nil for global.
	ReceiverDoneAt []int
	// RumorAt, for gossip, maps [node][rumor index] to the round the node
	// first held the rumor (-1 if never). Rumor indices cover Spec.Sources
	// then Spec.Injections, in order. Nil for other problems.
	RumorAt [][]int
	// RumorStartAt, for gossip, maps each rumor index to the round it
	// entered the system: 0 for Spec.Sources, the injection round for
	// Spec.Injections. Nil for other problems.
	RumorStartAt []int
	// RumorDoneAt, for gossip, maps each rumor index to the round by which
	// every node held it (-1 if dissemination did not complete). Per-rumor
	// sojourn under contention is RumorDoneAt[i] - RumorStartAt[i].
	RumorDoneAt []int
	// TxByNode counts each node's transmissions: the energy profile of the
	// execution (radios spend most of their budget transmitting).
	TxByNode []int64
}

// Run executes the configuration to completion or MaxRounds.
func Run(cfg Config) (Result, error) {
	e, err := newEngine(cfg)
	if err != nil {
		return Result{}, err
	}
	res, err := e.run()
	e.release()
	return res, err
}

// ErrBadConfig wraps configuration validation failures.
var ErrBadConfig = errors.New("radio: bad config")

// maxDefaultRoundsNodes is the largest network the 64·n² MaxRounds default
// applies to. Every algorithm in this repository completes in far fewer
// rounds at that size, and beyond it the quadratic default stops being a
// safety net and becomes a footgun (6.4×10¹¹ rounds at n = 10⁵), so larger
// configurations must state their budget.
const maxDefaultRoundsNodes = 4096

type engine struct {
	cfg   Config
	net   *graph.Dual
	n     int
	procs []Process
	// epochs is the validated topology schedule (nil on the static path);
	// epochIdx is the index of the current epoch.
	epochs   []Epoch
	epochIdx int
	// probers[u] is non-nil when procs[u] implements TransmitProber.
	probers []TransmitProber

	master   bitrand.Source
	nodeRngs []*bitrand.Source

	mon monitor

	// Adversary, exactly one of these is set when Link != nil.
	committed Schedule
	online    OnlineAdaptiveLink
	offline   OfflineAdaptiveLink
	env       *Env
	// view is the per-round adaptive view, reused across rounds (the View
	// contract makes it call-scoped), so adaptive trials allocate exactly
	// what static trials do.
	view View

	accel *graph.CliqueCover

	// Flat CSR adjacency of the network, hoisted out of the Dual so the
	// delivery loop walks the backing arrays directly: gAdj[gOffs[v]:
	// gOffs[v+1]] is v's reliable neighbor row, exOffs/exAdj the E'\E rows.
	gOffs, exOffs []int32
	gAdj, exAdj   []graph.NodeID

	// Word-parallel delivery state, derived per epoch by setupPlan. plan is
	// the epoch's resolved delivery plan (never PlanAuto); when it is
	// PlanBitmap, maskW is the row stride in words, gRows/gpRows the hoisted
	// flat mask rows of the epoch's G and G' (gpRows nil without a link),
	// staticRows the combined rows of a committed static selector (else
	// nil), txWords the pooled transmitter bitmap, and bitmapTxMin the
	// per-round transmitter count below which the scalar walk is cheaper (0
	// when the plan is forced). bulkSteps[u] is non-nil when procs[u]
	// implements BulkStepper; allBulk reports whether every entry is.
	plan        DeliveryPlan
	maskW       int
	bitmapTxMin int
	gRows       []uint64
	gpRows      []uint64
	staticRows  []uint64
	staticSel   graph.EdgeSelector
	txWords     []uint64
	bulkSteps   []BulkStepper
	allBulk     bool

	// Block-sparse delivery state, set when plan is PlanBitmapSparse: the
	// epoch's sparse mask rows for G and G' (sparseGP nil without a link),
	// the cluster-major permutation pair they are stored under, the region
	// shift of the per-row occupancy summaries, and the current round's
	// transmitter-side summary (txSumm), rebuilt by every fill.
	sparseG  *graph.SparseNeighborMasks
	sparseGP *graph.SparseNeighborMasks
	newID    []graph.NodeID
	oldID    []graph.NodeID
	sumShift uint
	txSumm   uint64

	// Batched coin-fill state: batchCoins (derived by setupPlan) reports
	// that stepBatch may draw the round's coins straight into txWords;
	// txFilled marks a round whose transmitters live only in the bitmap
	// (txCount of them), consumed and cleared by deliver.
	batchCoins bool
	txFilled   bool
	txCount    int

	txByNode []int64

	// Per-round buffers, views into the pooled scratch (see scratch.go).
	sc        *scratch
	txFlag    []bool
	counts    []int32
	from      []graph.NodeID
	touched   []graph.NodeID
	tx        []graph.NodeID
	msgOf     []*Message
	probs     []float64
	lastTx    []graph.NodeID
	noise     []Message
	cliqueTx  []int32
	cliqueS   []graph.NodeID
	recordBuf []Delivery
}

func newEngine(cfg Config) (*engine, error) {
	if len(cfg.Epochs) > 0 {
		eps := cfg.Epochs
		if eps[0].Start != 0 {
			return nil, fmt.Errorf("%w: epoch schedule starts at round %d, want 0", ErrBadConfig, eps[0].Start)
		}
		for i, ep := range eps {
			if ep.Net == nil {
				return nil, fmt.Errorf("%w: epoch %d has nil network", ErrBadConfig, i)
			}
			if ep.Net.N() != eps[0].Net.N() {
				return nil, fmt.Errorf("%w: epoch %d has %d nodes, epoch 0 has %d (the vertex set is fixed across epochs)",
					ErrBadConfig, i, ep.Net.N(), eps[0].Net.N())
			}
			if i > 0 && ep.Start <= eps[i-1].Start {
				return nil, fmt.Errorf("%w: epoch %d starts at round %d, not after epoch %d (round %d)",
					ErrBadConfig, i, ep.Start, i-1, eps[i-1].Start)
			}
		}
		if cfg.Net != nil && cfg.Net != eps[0].Net {
			return nil, fmt.Errorf("%w: Net is set but differs from Epochs[0].Net; leave Net nil with an epoch schedule", ErrBadConfig)
		}
		// Normalize: the initial network is the schedule's first epoch, so
		// everything keyed off cfg.Net (process construction, the arena, the
		// adversary Env) sees the epoch-0 topology.
		cfg.Net = eps[0].Net
	}
	if cfg.Net == nil {
		return nil, fmt.Errorf("%w: nil network", ErrBadConfig)
	}
	if cfg.Algorithm == nil {
		return nil, fmt.Errorf("%w: nil algorithm", ErrBadConfig)
	}
	if len(cfg.Spec.Injections) > 0 && cfg.Spec.Problem != Gossip {
		return nil, fmt.Errorf("%w: rumor injections are only valid for gossip, not %v", ErrBadConfig, cfg.Spec.Problem)
	}
	n := cfg.Net.N()
	if cfg.MaxRounds <= 0 {
		if n > maxDefaultRoundsNodes {
			// int64 math: at n = 10⁶ the would-be default is 6.4×10¹³ rounds,
			// which must survive into the message intact on any platform.
			return nil, fmt.Errorf("%w: no MaxRounds set for n=%d nodes: the computed 64·n² default would be %d rounds, and the default is only allowed up to the %d-node cap — set an explicit round budget",
				ErrBadConfig, n, 64*int64(n)*int64(n), maxDefaultRoundsNodes)
		}
		cfg.MaxRounds = 64 * n * n
	}
	if cfg.Plan < PlanAuto || cfg.Plan > PlanBitmapSparse {
		return nil, fmt.Errorf("%w: unknown delivery plan %d", ErrBadConfig, cfg.Plan)
	}
	if (cfg.Plan == PlanBitmap || cfg.Plan == PlanBitmapSparse) && cfg.UseCliqueCover {
		return nil, fmt.Errorf("%w: %v and UseCliqueCover are mutually exclusive delivery accelerators", ErrBadConfig, cfg.Plan)
	}
	e := &engine{cfg: cfg, net: cfg.Net, n: n, epochs: cfg.Epochs, sc: getScratch(n)}
	//dglint:allow viewescape: engine-owned hoist, re-synced by swapEpoch at every epoch boundary
	e.gOffs, e.gAdj = cfg.Net.G().CSR()
	//dglint:allow viewescape: engine-owned hoist, re-synced by swapEpoch at every epoch boundary
	e.exOffs, e.exAdj = cfg.Net.ExtraCSR()
	e.master.Reseed(cfg.Seed)
	fail := func(err error) (*engine, error) {
		e.release()
		return nil, err
	}

	// Process arena: when the algorithm is a ProcessFactory and this scratch
	// last ran an identical configuration, reset the pooled slab in place.
	// Both paths draw from an identically derived construction stream
	// (SplitSeed does not advance the master), so arena hits and misses are
	// observationally identical.
	e.sc.algRng.Reseed(e.master.SplitSeed(0x0a16))
	if pf, ok := cfg.Algorithm.(ProcessFactory); ok {
		if slab := e.sc.arenaMatch(cfg, n); slab != nil {
			if pf.ResetProcesses(slab, cfg.Net, cfg.Spec, &e.sc.algRng) {
				e.procs = slab
			} else {
				e.sc.arenaDrop()
				e.sc.algRng.Reseed(e.master.SplitSeed(0x0a16))
			}
		}
	}
	if e.procs == nil {
		e.procs = cfg.Algorithm.NewProcesses(cfg.Net, cfg.Spec, &e.sc.algRng)
		if len(e.procs) != n {
			return fail(fmt.Errorf("%w: algorithm %q produced %d processes for %d nodes",
				ErrBadConfig, cfg.Algorithm.Name(), len(e.procs), n))
		}
		if _, ok := cfg.Algorithm.(ProcessFactory); ok {
			e.sc.arenaStore(cfg, e.procs)
		}
	}
	e.probers = e.sc.probers
	e.bulkSteps = e.sc.bulkSteps
	e.allBulk = true
	for u, p := range e.procs {
		if tp, ok := p.(TransmitProber); ok {
			e.probers[u] = tp
		} else {
			e.probers[u] = nil
		}
		bs, ok := p.(BulkStepper)
		e.bulkSteps[u] = bs
		e.allBulk = e.allBulk && ok
	}
	e.nodeRngs = e.sc.nodeRngs
	for u := range e.nodeRngs {
		e.nodeRngs[u].Reseed(e.master.SplitSeed(0x20de, uint64(u)))
	}

	var err error
	switch cfg.Spec.Problem {
	case GlobalBroadcast:
		var gm *globalMonitor
		gm, err = newGlobalMonitor(n, cfg.Spec.Source, e.sc)
		e.mon = gm
	case LocalBroadcast:
		var lm *localMonitor
		lm, err = newLocalMonitor(cfg.Net, cfg.Spec.Broadcasters, e.sc)
		e.mon = lm
	case Gossip:
		var gm *gossipMonitor
		gm, err = newGossipMonitor(n, cfg.Spec, cfg.MaxRounds, e.sc)
		e.mon = gm
	default:
		err = fmt.Errorf("unknown problem %v", cfg.Spec.Problem)
	}
	if err != nil {
		return fail(fmt.Errorf("%w: %v", ErrBadConfig, err))
	}

	if cfg.Link != nil {
		e.env = &Env{
			Net:       cfg.Net,
			Spec:      cfg.Spec,
			Algorithm: cfg.Algorithm,
			Rng:       e.master.Split(0xadf5),
			MaxRounds: cfg.MaxRounds,
			Epochs:    e.epochs,
		}
		switch link := cfg.Link.(type) {
		case ObliviousLink:
			e.committed = link.CommitSchedule(e.env)
			if e.committed == nil {
				return fail(fmt.Errorf("%w: oblivious link committed nil schedule", ErrBadConfig))
			}
		case OnlineAdaptiveLink:
			e.online = link
		case OfflineAdaptiveLink:
			e.offline = link
		default:
			return fail(fmt.Errorf("%w: link %T implements no adversary interface", ErrBadConfig, cfg.Link))
		}
	}

	if cfg.UseCliqueCover {
		// Memoized per graph: repeated trials on the same network share one
		// cover instead of rebuilding it per execution.
		e.accel = graph.CliqueCoverOf(cfg.Net.G())
	}

	e.txFlag = e.sc.txFlag
	e.txByNode = e.sc.txByNode
	e.counts = e.sc.counts
	e.from = e.sc.from
	e.touched = e.sc.touched[:0]
	e.tx = e.sc.tx[:0]
	e.msgOf = e.sc.msgOf
	e.probs = e.sc.probs
	e.lastTx = e.sc.lastTx[:0]
	e.noise = e.sc.noise
	e.recordBuf = e.sc.recordBuf[:0]
	if e.accel != nil {
		e.cliqueTx, e.cliqueS = e.sc.clique(e.accel.Count)
	}

	// A committed schedule that replays one fixed selector (neither all nor
	// none) gets its round topology precomputed as mask rows when the bitmap
	// plan is active. Detected here, once: the committed schedule is fixed
	// for the whole execution.
	if ss, ok := e.committed.(StaticSchedule); ok && ss.Selector != nil &&
		!ss.Selector.All() && !ss.Selector.None() {
		e.staticSel = ss.Selector
	}
	e.setupPlan()
	return e, nil
}

// release returns the engine's scratch to the pool. The engine (and the
// monitors built over the scratch) must not be used afterwards.
func (e *engine) release() {
	if e.sc == nil {
		return
	}
	// Hand the append-grown buffer back so its capacity is retained.
	if e.recordBuf != nil {
		e.sc.recordBuf = e.recordBuf
	}
	sc := e.sc
	e.sc = nil
	putScratch(sc)
}

func (e *engine) run() (Result, error) {
	var res Result
	for r := 0; r < e.cfg.MaxRounds; r++ {
		if e.epochIdx+1 < len(e.epochs) && e.epochs[e.epochIdx+1].Start == r {
			e.swapEpoch()
		}
		e.step(r, &res)
		if !res.Solved && e.mon.done() {
			res.Solved = true
			res.Rounds = r + 1
			if !e.cfg.IgnoreCompletion {
				e.fill(&res)
				return res, nil
			}
		}
	}
	if !res.Solved {
		res.Rounds = e.cfg.MaxRounds
	}
	e.fill(&res)
	return res, nil
}

// swapEpoch advances to the next epoch of the topology schedule: the
// current network pointer and its hoisted CSR views change, and the clique
// cover accelerator re-keys to the new revision (CliqueCoverOf memoizes per
// graph, so repeated trials over one schedule share the covers). Process and
// monitor state is untouched — nodes persist across topology churn. The
// adversary Env is deliberately untouched too: Env.Net stays pinned to the
// epoch-0 base (its documented contract) while adaptive links track the
// swap through View.EpochIdx/View.Net, which step rebuilds from e.epochIdx
// and e.net every round.
//
//dglint:noalloc gate=TestHotPathAllocs
func (e *engine) swapEpoch() {
	e.epochIdx++
	net := e.epochs[e.epochIdx].Net
	e.net = net
	//dglint:allow viewescape: this is the epoch-boundary re-hoist the contract requires
	e.gOffs, e.gAdj = net.G().CSR()
	//dglint:allow viewescape: this is the epoch-boundary re-hoist the contract requires
	e.exOffs, e.exAdj = net.ExtraCSR()
	if e.cfg.UseCliqueCover {
		e.accel = graph.CliqueCoverOf(net.G())
		e.cliqueTx, e.cliqueS = e.sc.clique(e.accel.Count)
	}
	// Re-derive the delivery plan for the new topology: density can differ
	// per revision, and the mask rows (memoized per graph) must re-hoist
	// exactly like the CSR views above.
	e.setupPlan()
	// Epoch-aware processes re-key their own topology-derived structure
	// (e.g. the derand decomposition memo). The type assertion allocates
	// nothing, and non-aware algorithms skip the loop body entirely.
	for _, p := range e.procs {
		if ea, ok := p.(EpochAware); ok {
			ea.OnEpoch(e.epochIdx, net)
		}
	}
}

func (e *engine) fill(res *Result) {
	res.TxByNode = append([]int64(nil), e.txByNode...)
	switch m := e.mon.(type) {
	case *globalMonitor:
		res.InformedAt = append([]int(nil), m.informedAt...)
	case *localMonitor:
		res.ReceiverDoneAt = append([]int(nil), m.doneAt...)
	case *gossipMonitor:
		// Copy the pooled n×k matrix out as rows over one flat backing
		// array: two allocations instead of one per node.
		n, k := len(m.haveAt), m.k
		flat := make([]int, 0, n*k)
		res.RumorAt = make([][]int, n)
		for u, row := range m.haveAt {
			flat = append(flat, row...)
			res.RumorAt[u] = flat[u*k : (u+1)*k : (u+1)*k]
		}
		// Per-rumor entry and completion rounds, over one backing array.
		meta := make([]int, 2*k)
		res.RumorStartAt = meta[:k:k]
		res.RumorDoneAt = meta[k:]
		for j, inj := range e.cfg.Spec.Injections {
			res.RumorStartAt[len(e.cfg.Spec.Sources)+j] = inj.Round
		}
		for i := 0; i < k; i++ {
			done := -1
			for u := 0; u < n; u++ {
				at := m.haveAt[u][i]
				if at < 0 {
					done = -1
					break
				}
				if at > done {
					done = at
				}
			}
			res.RumorDoneAt[i] = done
		}
	}
}

// step executes one round.
//
//dglint:noalloc gate=TestHotPathAllocs
func (e *engine) step(r int, res *Result) {
	// 1. Adaptive adversaries observe state-determined probabilities first.
	var view *View
	if e.online != nil || e.offline != nil {
		for u, tp := range e.probers {
			if tp != nil {
				e.probs[u] = tp.TransmitProb(r)
			} else {
				e.probs[u] = -1
			}
		}
		e.view = View{
			Round:            r,
			EpochIdx:         e.epochIdx,
			Net:              e.net,
			TransmitProbs:    e.probs,
			LastTransmitters: e.lastTx,
			Informed:         e.mon.progress(),
		}
		view = &e.view
	}
	var selector graph.EdgeSelector
	switch {
	case e.committed != nil:
		selector = e.committed.SelectorFor(r)
	case e.online != nil:
		selector = e.online.ChooseOnline(e.env, view)
	}

	// 2. Flip the coins: every process steps. When every process is a
	// BulkStepper and a bitmap plan is active, the engine runs the round's
	// Bernoulli trials itself — same per-node streams, same ascending order,
	// so the draws are bit-for-bit identical to the Step dispatch — and
	// fills the transmit set without constructing Actions. With no consumer
	// of the per-round transmitter list (batchCoins), the coins land
	// straight in the transmitter bitmap and e.tx is not built at all.
	e.tx = e.tx[:0]
	switch {
	case e.batchCoins:
		e.stepBatch(r, res)
	case e.allBulk && e.plan != PlanScalar:
		for u, bs := range e.bulkSteps {
			if e.nodeRngs[u].Coin(bs.TransmitProb(r)) {
				msg := bs.Frame(r)
				if msg == nil {
					msg = &e.noise[u]
				}
				e.tx = append(e.tx, u)
				e.msgOf[u] = msg
				e.txByNode[u]++
			}
		}
		res.Transmissions += int64(len(e.tx))
	default:
		for u, p := range e.procs {
			act := p.Step(r, e.nodeRngs[u])
			if act.Transmit {
				if act.Msg == nil {
					// A transmission without a message is treated as noise:
					// it occupies the channel but delivers nothing. The
					// cached per-node frame avoids an allocation per
					// transmission.
					act.Msg = &e.noise[u]
				}
				e.tx = append(e.tx, u)
				e.msgOf[u] = act.Msg
				e.txByNode[u]++
			}
		}
		res.Transmissions += int64(len(e.tx))
	}

	// 3. The offline adaptive adversary sees the realized transmitters.
	if e.offline != nil {
		selector = e.offline.ChooseOffline(e.env, view, e.tx)
	}
	if selector == nil {
		selector = graph.SelectNone{}
	}

	// 4. Compute deliveries and hand them out.
	deliveries := e.deliver(selector, r, res)

	if e.cfg.Recorder != nil {
		// Transmitters and Deliveries are engine-owned scratch: recorders
		// that retain them copy (see the RoundRecord contract).
		rec := RoundRecord{
			Round:        r,
			Transmitters: e.tx,
			Deliveries:   deliveries,
			SelectorKind: selectorKind(selector),
			Selector:     selector,
		}
		e.cfg.Recorder.Record(rec)
	}

	// Remember this round's transmitters for the next round's view. Only
	// adaptive adversaries read LastTransmitters, and batchCoins excludes
	// them, so batch-handled rounds (which never materialize e.tx) are safe.
	if e.online != nil || e.offline != nil {
		e.lastTx = append(e.lastTx[:0], e.tx...)
	}
}

// stepBatch is the batched transmit-coin fill: one pass over the nodes in
// ascending original id draws each node's round-r coin from its own stream
// (bit-for-bit the order the per-node paths use) and writes heads straight
// into the transmitter bitmap — whole words at a time on the dense plan,
// scattered cluster-major bits plus the incremental region summary on the
// sparse plan. No transmitter list is built; deliver reconstructs one only
// for rounds that fall off the bitmap kernels (see rebuildTx).
//
//dglint:noalloc gate=TestBitmapDeliveryAllocs
func (e *engine) stepBatch(r int, res *Result) {
	txw := e.txWords
	count := 0
	if len(txw) == 0 { // 0-node network under a forced plan
		e.txFilled, e.txCount = true, 0
		return
	}
	if e.plan == PlanBitmapSparse {
		clear(txw)
		var s uint64
		shift := e.sumShift
		for u, bs := range e.bulkSteps {
			if e.nodeRngs[u].Coin(bs.TransmitProb(r)) {
				msg := bs.Frame(r)
				if msg == nil {
					msg = &e.noise[u]
				}
				e.msgOf[u] = msg
				e.txByNode[u]++
				nv := e.newID[u]
				txw[nv>>6] |= 1 << (uint(nv) & 63)
				s |= 1 << (uint(nv>>6) >> shift)
				count++
			}
		}
		e.txSumm = s
	} else {
		// Dense: bits land at the original ids, so 64 consecutive coins fill
		// one register that is flushed as a single word store. Every word of
		// the bitmap is flushed exactly once, which doubles as the clear.
		var w uint64
		wi := 0
		for u, bs := range e.bulkSteps {
			if u>>6 != wi {
				txw[wi] = w
				w = 0
				wi = u >> 6
			}
			if e.nodeRngs[u].Coin(bs.TransmitProb(r)) {
				msg := bs.Frame(r)
				if msg == nil {
					msg = &e.noise[u]
				}
				e.msgOf[u] = msg
				e.txByNode[u]++
				w |= 1 << (uint(u) & 63)
				count++
			}
		}
		txw[wi] = w
	}
	e.txFilled = true
	e.txCount = count
	res.Transmissions += int64(count)
}

// deliver computes receptions under the round topology G ∪ selector(E'\E)
// and invokes Deliver on every process. It returns the delivery list only
// when a recorder is attached (nil otherwise); the list is backed by the
// engine's reusable buffer and is valid only until the next round.
//
//dglint:noalloc gate=TestHotPathAllocs
func (e *engine) deliver(selector graph.EdgeSelector, r int, res *Result) []Delivery {
	// Batch-filled rounds: the transmitters already live in the bitmap, so
	// rounds the word-parallel kernels can serve go straight there with no
	// refill. Rounds that fall off them — too few transmitters, a selector
	// without precomputed rows, or the complete-graph fast path — first
	// reconstruct the transmitter list the per-node fill would have built.
	if e.txFilled {
		e.txFilled = false
		if e.txCount >= e.bitmapTxMin && !(selector.All() && e.net.UnionComplete()) {
			if e.plan == PlanBitmapSparse {
				if m := e.roundSparse(selector); m != nil {
					return e.deliverSparse(r, res, m)
				}
			} else if rows := e.roundRows(selector); rows != nil {
				return e.scanBitmap(r, res, rows)
			}
		}
		e.rebuildTx()
	} else if len(e.tx) >= e.bitmapTxMin && !(selector.All() && e.net.UnionComplete()) {
		// Word-parallel dispatch: rounds whose selector has precomputed mask
		// rows and enough transmitters to beat the CSR walk go through a
		// bitmap kernel. The complete-graph fast path below stays first in
		// line (it is O(n) with no per-word work).
		switch e.plan {
		case PlanBitmap:
			if rows := e.roundRows(selector); rows != nil {
				return e.deliverBitmap(r, res, rows)
			}
		case PlanBitmapSparse:
			if m := e.roundSparse(selector); m != nil {
				e.fillTxSparse()
				return e.deliverSparse(r, res, m)
			}
		}
	}

	for _, v := range e.tx {
		e.txFlag[v] = true
	}
	e.touched = e.touched[:0]

	var recorded []Delivery
	record := e.cfg.Recorder != nil
	if record {
		recorded = e.recordBuf[:0]
	}
	defer func() {
		if record {
			// Keep the append-grown buffer for the next round.
			e.recordBuf = recorded[:0]
		}
	}()

	// Fast path: the round topology is the complete graph. Every listener
	// neighbors every transmitter, so with ≥2 transmitters everyone
	// collides, and with exactly one, everyone receives.
	if selector.All() && e.net.UnionComplete() {
		if len(e.tx) == 1 {
			v := e.tx[0]
			msg := e.msgOf[v]
			for u := 0; u < e.n; u++ {
				if u == v {
					e.procs[u].Deliver(r, nil)
					continue
				}
				e.procs[u].Deliver(r, msg)
				e.mon.observe(r, u, msg)
				res.Deliveries++
				if record {
					recorded = append(recorded, Delivery{To: u, From: v})
				}
			}
		} else {
			for u := 0; u < e.n; u++ {
				e.procs[u].Deliver(r, nil)
			}
		}
		for _, v := range e.tx {
			e.txFlag[v] = false
		}
		return recorded
	}

	add := func(u, v graph.NodeID) {
		if e.txFlag[u] {
			return
		}
		if e.counts[u] == 0 {
			e.touched = append(e.touched, u)
		}
		e.counts[u]++
		e.from[u] = v
	}

	// Reliable edges.
	if e.accel != nil {
		for i := range e.cliqueTx {
			e.cliqueTx[i] = 0
		}
		for _, v := range e.tx {
			c := e.accel.Of[v]
			e.cliqueTx[c]++
			e.cliqueS[c] = v
		}
		if len(e.tx) > 0 {
			for u := 0; u < e.n; u++ {
				if e.txFlag[u] {
					continue
				}
				k := e.cliqueTx[e.accel.Of[u]]
				if k == 0 {
					continue
				}
				if e.counts[u] == 0 {
					e.touched = append(e.touched, u)
				}
				e.counts[u] += k
				if k == 1 {
					e.from[u] = e.cliqueS[e.accel.Of[u]]
				}
			}
		}
		for _, edge := range e.accel.Residual {
			if e.txFlag[edge.U] {
				add(edge.V, edge.U)
			}
			if e.txFlag[edge.V] {
				add(edge.U, edge.V)
			}
		}
	} else {
		for _, v := range e.tx {
			for _, u := range e.gAdj[e.gOffs[v]:e.gOffs[v+1]] {
				add(u, v)
			}
		}
	}

	// Unreliable edges chosen this round.
	if !selector.None() {
		if selector.All() {
			for _, v := range e.tx {
				for _, u := range e.exAdj[e.exOffs[v]:e.exOffs[v+1]] {
					add(u, v)
				}
			}
		} else {
			for _, v := range e.tx {
				for _, u := range e.exAdj[e.exOffs[v]:e.exOffs[v+1]] {
					if selector.Includes(v, u) {
						add(u, v)
					}
				}
			}
		}
	}

	// Hand out results: touched listeners receive their message or a
	// collision; everyone else (silent listeners and all transmitters)
	// hears nil. counts[u] is set to -1 for touched nodes so the second
	// pass can tell them apart, then reset to 0 for the next round.
	for _, u := range e.touched {
		if e.counts[u] == 1 {
			msg := e.msgOf[e.from[u]]
			e.procs[u].Deliver(r, msg)
			e.mon.observe(r, u, msg)
			res.Deliveries++
			if record {
				recorded = append(recorded, Delivery{To: u, From: e.from[u]})
			}
		} else {
			e.procs[u].Deliver(r, nil) // collision
		}
		e.counts[u] = -1
	}
	for u := 0; u < e.n; u++ {
		if e.counts[u] == -1 {
			e.counts[u] = 0
			continue
		}
		e.procs[u].Deliver(r, nil)
	}

	for _, v := range e.tx {
		e.txFlag[v] = false
	}
	return recorded
}
