package radio_test

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/bitrand"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
)

// The word-parallel delivery paths must be observationally identical to the
// scalar CSR walk: same transmitters, same delivery set, same monitor
// verdicts, same per-node energy — for every adversary class and across
// epoch swaps. These tests run each configuration under PlanScalar,
// PlanBitmap, and PlanBitmapSparse with the same seed and compare everything
// the engine reports (a three-way differential).

// fixedLink commits a static schedule replaying one selector.
type fixedLink struct{ sel graph.EdgeSelector }

func (l fixedLink) CommitSchedule(*radio.Env) radio.Schedule {
	return radio.StaticSchedule{Selector: l.sel}
}

// flickerLink is an online adaptive adversary that rotates through all /
// none / a partial cross-cut, exercising the precomputed G and G' rows and
// the per-round scalar fallback (partial adaptive selectors have no mask).
type flickerLink struct{}

func (flickerLink) ChooseOnline(env *radio.Env, view *radio.View) graph.EdgeSelector {
	switch view.Round % 3 {
	case 0:
		return graph.SelectAll{}
	case 1:
		return graph.SelectNone{}
	}
	return graph.SelectCrossCut{InA: func(u graph.NodeID) bool { return u%3 == 0 }}
}

// denseDual builds the equivalence substrate: a circulant reliable core with
// sampled unreliable extras.
func denseDual(t testing.TB, n, deg, extra int, seed uint64) *graph.Dual {
	t.Helper()
	var src bitrand.Source
	src.Reseed(seed)
	d := graph.AugmentDual(&src, graph.Circulant(n, deg), extra)
	if d.G().NumEdges() == d.GPrime().NumEdges() {
		t.Fatal("substrate has no unreliable edges; the selector paths would be vacuous")
	}
	return d
}

// halfExtraEdges returns every other E'\E edge, for a partial static set.
func halfExtraEdges(d *graph.Dual) []graph.EdgeKey {
	var edges []graph.EdgeKey
	keep := true
	for u := 0; u < d.N(); u++ {
		for _, v := range d.ExtraNeighbors(u) {
			if v <= u {
				continue
			}
			if keep {
				edges = append(edges, graph.EdgeKey{U: u, V: v})
			}
			keep = !keep
		}
	}
	return edges
}

// runPlan executes cfg under the given plan with a fresh recorder attached.
func runPlan(t testing.TB, cfg radio.Config, plan radio.DeliveryPlan) (radio.Result, *radio.MemRecorder) {
	t.Helper()
	rec := &radio.MemRecorder{}
	cfg.Plan = plan
	cfg.Recorder = rec
	res, err := radio.Run(cfg)
	if err != nil {
		t.Fatalf("plan %d: %v", plan, err)
	}
	return res, rec
}

// comparePlans runs cfg under the scalar, dense-bitmap, and sparse-bitmap
// plans and fails on any observable difference. The bitmap paths report
// deliveries in ascending node order (dense) or cluster-major order (sparse)
// rather than discovery order, so per-round delivery lists compare as sets.
func comparePlans(t testing.TB, cfg radio.Config) {
	t.Helper()
	sres, srec := runPlan(t, cfg, radio.PlanScalar)
	for _, plan := range []radio.DeliveryPlan{radio.PlanBitmap, radio.PlanBitmapSparse} {
		bres, brec := runPlan(t, cfg, plan)
		if !reflect.DeepEqual(sres, bres) {
			t.Errorf("results differ:\n scalar: %+v\n %v: %+v", sres, plan, bres)
		}
		if len(srec.Rounds) != len(brec.Rounds) {
			t.Fatalf("round counts differ: scalar %d, %v %d", len(srec.Rounds), plan, len(brec.Rounds))
		}
		for i := range srec.Rounds {
			sr, br := srec.Rounds[i], brec.Rounds[i]
			if !reflect.DeepEqual(sr.Transmitters, br.Transmitters) {
				t.Fatalf("round %d transmitters differ: scalar %v, %v %v", sr.Round, sr.Transmitters, plan, br.Transmitters)
			}
			if sr.SelectorKind != br.SelectorKind {
				t.Fatalf("round %d selector kind differs: scalar %q, %v %q", sr.Round, sr.SelectorKind, plan, br.SelectorKind)
			}
			radio.SortDeliveries(sr.Deliveries)
			radio.SortDeliveries(br.Deliveries)
			if !reflect.DeepEqual(sr.Deliveries, br.Deliveries) {
				t.Fatalf("round %d deliveries differ:\n scalar: %v\n %v: %v", sr.Round, sr.Deliveries, plan, br.Deliveries)
			}
		}
	}
}

func TestBitmapScalarEquivalence(t *testing.T) {
	d := denseDual(t, 96, 10, 400, 0x5ca1e)
	global := radio.Spec{Problem: radio.GlobalBroadcast, Source: 3}
	local := radio.Spec{Problem: radio.LocalBroadcast, Broadcasters: []graph.NodeID{0, 7, 19, 40, 66, 91}}

	cases := []struct {
		name string
		cfg  radio.Config
	}{
		{"no-link", radio.Config{
			Net: d, Algorithm: core.DecayGlobal{}, Spec: global,
			Seed: 11, MaxRounds: 160,
		}},
		{"static-all", radio.Config{
			Net: d, Algorithm: core.DecayGlobal{}, Spec: global,
			Link: fixedLink{graph.SelectAll{}}, Seed: 12, MaxRounds: 160,
		}},
		{"static-set", radio.Config{
			Net: d, Algorithm: core.DecayGlobal{}, Spec: global,
			Link: fixedLink{graph.NewSelectSet(halfExtraEdges(d))}, Seed: 13, MaxRounds: 160,
		}},
		{"online-flicker", radio.Config{
			Net: d, Algorithm: core.DecayGlobal{}, Spec: global,
			Link: flickerLink{}, Seed: 14, MaxRounds: 160,
		}},
		{"aloha-local", radio.Config{
			Net: d, Algorithm: core.Aloha{P: 0.25}, Spec: local,
			Link: fixedLink{graph.NewSelectSet(halfExtraEdges(d))}, Seed: 15, MaxRounds: 160,
			IgnoreCompletion: true,
		}},
		{"decay-local", radio.Config{
			Net: d, Algorithm: core.DecayLocal{}, Spec: local,
			Link: flickerLink{}, Seed: 16, MaxRounds: 160,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { comparePlans(t, tc.cfg) })
	}
}

// TestBitmapEquivalenceAcrossEpochs pins the swapEpoch re-plan: the mask
// rows must re-hoist per revision exactly like the CSR views.
func TestBitmapEquivalenceAcrossEpochs(t *testing.T) {
	d0 := denseDual(t, 96, 10, 400, 0xe0)
	d1 := denseDual(t, 96, 6, 120, 0xe1)
	cfg := radio.Config{
		Epochs:    []radio.Epoch{{Start: 0, Net: d0}, {Start: 9, Net: d1}, {Start: 30, Net: d0}},
		Algorithm: core.DecayGlobal{},
		Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: 5},
		Link:      flickerLink{},
		Seed:      21,
		MaxRounds: 200,
	}
	comparePlans(t, cfg)
}

// TestBitmapMatchesReference replays every recorded round of a bitmap
// execution through the naive O(n·Δ) oracle.
func TestBitmapMatchesReference(t *testing.T) {
	d := denseDual(t, 80, 8, 300, 0x0f)
	rec := &radio.MemRecorder{}
	_, err := radio.Run(radio.Config{
		Net:       d,
		Algorithm: core.DecayGlobal{},
		Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
		Link:      fixedLink{graph.NewSelectSet(halfExtraEdges(d))},
		Seed:      31,
		MaxRounds: 120,
		Plan:      radio.PlanBitmap,
		Recorder:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rec.Rounds {
		want := radio.ReferenceDeliveries(d, r.Selector, r.Transmitters)
		radio.SortDeliveries(want)
		got := append([]radio.Delivery(nil), r.Deliveries...)
		radio.SortDeliveries(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d deliveries diverge from reference:\n got:  %v\n want: %v", r.Round, got, want)
		}
	}
}

// FuzzBitmapScalarEquivalence is the differential fuzzer: random sparse-ish
// duals, every adversary shape, both plans, cross-checked per round against
// the reference oracle. Wired into the CI fuzz-smoke job.
func FuzzBitmapScalarEquivalence(f *testing.F) {
	f.Add(uint64(1), uint16(64), uint16(40), uint16(120), uint8(0), false)
	f.Add(uint64(2), uint16(100), uint16(0), uint16(300), uint8(1), true)
	f.Add(uint64(3), uint16(33), uint16(50), uint16(80), uint8(2), false)
	f.Add(uint64(4), uint16(150), uint16(10), uint16(500), uint8(3), true)
	f.Add(uint64(5), uint16(70), uint16(70), uint16(0), uint8(4), false)
	f.Fuzz(func(t *testing.T, seed uint64, n, chords, extra uint16, selKind uint8, local bool) {
		nn := 8 + int(n)%250
		var src bitrand.Source
		src.Reseed(seed)
		d := graph.AugmentDual(&src, graph.RingChords(&src, nn, int(chords)%256), int(extra)%600)

		var link any
		switch selKind % 5 {
		case 1:
			link = fixedLink{graph.SelectAll{}}
		case 2:
			link = fixedLink{graph.SelectNone{}}
		case 3:
			edges := halfExtraEdges(d)
			if len(edges) == 0 {
				link = fixedLink{graph.SelectNone{}}
			} else {
				link = fixedLink{graph.NewSelectSet(edges)}
			}
		case 4:
			link = flickerLink{}
		}

		var alg radio.Algorithm
		var spec radio.Spec
		if local {
			alg = core.Aloha{P: 0.3}
			spec = radio.Spec{Problem: radio.LocalBroadcast,
				Broadcasters: []graph.NodeID{0, nn / 3, 2 * nn / 3}}
		} else {
			alg = core.DecayGlobal{}
			spec = radio.Spec{Problem: radio.GlobalBroadcast, Source: int(seed) % nn}
		}

		cfg := radio.Config{Net: d, Algorithm: alg, Spec: spec, Link: link,
			Seed: seed, MaxRounds: 64, IgnoreCompletion: local}
		comparePlans(t, cfg)

		for _, plan := range []radio.DeliveryPlan{radio.PlanBitmap, radio.PlanBitmapSparse} {
			_, brec := runPlan(t, cfg, plan)
			for _, r := range brec.Rounds {
				want := radio.ReferenceDeliveries(d, r.Selector, r.Transmitters)
				radio.SortDeliveries(want)
				got := append([]radio.Delivery(nil), r.Deliveries...)
				radio.SortDeliveries(got)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%v round %d deliveries diverge from reference:\n got:  %v\n want: %v", plan, r.Round, got, want)
				}
			}
		}
	})
}

// TestMaxRoundsGuard pins the large-n footgun fix: above
// maxDefaultRoundsNodes the 64·n² default is refused, an explicit budget is
// accepted.
func TestMaxRoundsGuard(t *testing.T) {
	big := graph.UniformDual(graph.Line(4200))
	cfg := radio.Config{
		Net:       big,
		Algorithm: core.RoundRobin{},
		Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
	}
	_, err := radio.Run(cfg)
	if !errors.Is(err, radio.ErrBadConfig) {
		t.Fatalf("n=4200 without MaxRounds: got err %v, want ErrBadConfig", err)
	}
	// Regression: the refusal must say what was exceeded — the computed
	// default budget (64·4200² = 1128960000 rounds) and the cap it is
	// allowed up to (4096 nodes) — so the caller can act on the message.
	for _, want := range []string{"1128960000", "4096"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("guard message %q does not report %q", err.Error(), want)
		}
	}
	cfg.MaxRounds = 50
	if _, err := radio.Run(cfg); err != nil {
		t.Fatalf("n=4200 with explicit MaxRounds: %v", err)
	}

	small := graph.UniformDual(graph.Line(64))
	cfg = radio.Config{
		Net:       small,
		Algorithm: core.RoundRobin{},
		Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
	}
	if _, err := radio.Run(cfg); err != nil {
		t.Fatalf("n=64 default MaxRounds: %v", err)
	}
}

// TestPlanValidation pins the Plan config checks.
func TestPlanValidation(t *testing.T) {
	d := graph.UniformDual(graph.Line(16))
	base := radio.Config{
		Net:       d,
		Algorithm: core.RoundRobin{},
		Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
		MaxRounds: 32,
	}

	cfg := base
	cfg.Plan = radio.DeliveryPlan(99)
	if _, err := radio.Run(cfg); !errors.Is(err, radio.ErrBadConfig) {
		t.Errorf("out-of-range plan: got err %v, want ErrBadConfig", err)
	}

	for _, plan := range []radio.DeliveryPlan{radio.PlanBitmap, radio.PlanBitmapSparse} {
		cfg = base
		cfg.Plan = plan
		cfg.UseCliqueCover = true
		if _, err := radio.Run(cfg); !errors.Is(err, radio.ErrBadConfig) {
			t.Errorf("%v+UseCliqueCover: got err %v, want ErrBadConfig", plan, err)
		}
	}
}
