package radio_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
)

// TestHotPathAllocs is the //dglint:noalloc gate for the engine's hot paths
// (step, deliver, swapEpoch): a warmed-up static trial must stay within the
// BENCH_pr2 allocation budget. The budget counts whole-trial allocations —
// the engine struct and Result bookkeeping — so any per-round allocation
// sneaking into the step/deliver loop blows it by ~MaxRounds and fails
// loudly, not marginally. AllocsPerRun's own warm-up call fills the scratch
// pool, so the measured runs see steady-state pooling, exactly like a sweep.
func TestHotPathAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate needs steady-state pooling")
	}
	dc, _ := graph.DualClique(128, 3)
	spec := radio.Spec{Problem: radio.GlobalBroadcast, Source: 0}

	seed := uint64(0)
	trial := func() {
		seed++
		_, err := radio.Run(radio.Config{
			Net:              dc,
			Algorithm:        core.DecayGlobal{},
			Spec:             spec,
			Seed:             seed,
			MaxRounds:        256,
			IgnoreCompletion: true,
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	// BENCH_pr2: a pooled static trial costs at most 6 allocs (engine,
	// Result slices, process-arena miss paths). 256 rounds of step/deliver
	// must contribute zero.
	const staticBudget = 6
	got := testing.AllocsPerRun(100, trial)
	t.Logf("static trial allocs/op = %v (budget %d)", got, staticBudget)
	if got > staticBudget {
		t.Errorf("static trial allocs/op = %v, budget %d", got, staticBudget)
	}
}
