package radio_test

import (
	"testing"

	"repro/internal/bitrand"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
)

// TestBitmapDeliveryAllocs is the //dglint:noalloc gate for the
// word-parallel delivery path (deliverBitmap) and the bulk transmit loop: a
// warmed-up bitmap trial must match the scalar path's whole-trial budget
// (TestHotPathAllocs). Any per-round allocation in the bitmap kernel blows
// the budget by ~MaxRounds and fails loudly. The dense circulant keeps every
// round in the bitmap path (the plan is forced, so bitmapTxMin is 0).
func TestBitmapDeliveryAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate needs steady-state pooling")
	}
	net := graph.UniformDual(graph.Circulant(512, 64))
	spec := radio.Spec{Problem: radio.GlobalBroadcast, Source: 0}

	seed := uint64(0)
	trial := func() {
		seed++
		_, err := radio.Run(radio.Config{
			Net:              net,
			Algorithm:        core.DecayGlobal{},
			Spec:             spec,
			Seed:             seed,
			MaxRounds:        256,
			Plan:             radio.PlanBitmap,
			IgnoreCompletion: true,
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	// Same whole-trial budget as the scalar gate: engine, Result slices,
	// process-arena miss paths. 256 bitmap rounds must contribute zero.
	const budget = 6
	got := testing.AllocsPerRun(100, trial)
	t.Logf("bitmap trial allocs/op = %v (budget %d)", got, budget)
	if got > budget {
		t.Errorf("bitmap trial allocs/op = %v, budget %d", got, budget)
	}
}

// TestSparseDeliveryAllocs is the //dglint:noalloc gate for the block-sparse
// delivery kernel (deliverSparse) and the batched sparse coin fill: once the
// per-graph memos (decomposition, cluster order, sparse mask rows) are warm
// — AllocsPerRun's untimed warm-up run builds them — a sparse-plan trial
// must match the dense gate's whole-trial budget, with the kernel, the
// summary pruning, and the cluster-major id translation contributing zero
// allocations per round.
func TestSparseDeliveryAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate needs steady-state pooling")
	}
	src := bitrand.New(0x59a5)
	net := graph.UniformDual(graph.RingChords(src, 4096, 8192))
	spec := radio.Spec{Problem: radio.GlobalBroadcast, Source: 0}

	seed := uint64(0)
	trial := func() {
		seed++
		_, err := radio.Run(radio.Config{
			Net:              net,
			Algorithm:        core.DecayGlobal{},
			Spec:             spec,
			Seed:             seed,
			MaxRounds:        256,
			Plan:             radio.PlanBitmapSparse,
			IgnoreCompletion: true,
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	const budget = 6
	got := testing.AllocsPerRun(100, trial)
	t.Logf("sparse trial allocs/op = %v (budget %d)", got, budget)
	if got > budget {
		t.Errorf("sparse trial allocs/op = %v, budget %d", got, budget)
	}
}
