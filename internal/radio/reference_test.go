package radio

import (
	"testing"

	"repro/internal/bitrand"
	"repro/internal/graph"
)

// validateRecorder cross-checks every recorded round against the naive
// reference implementation.
func validateTrace(t *testing.T, net *graph.Dual, rec *MemRecorder, label string) {
	t.Helper()
	for _, round := range rec.Rounds {
		want := ReferenceDeliveries(net, round.Selector, round.Transmitters)
		got := append([]Delivery(nil), round.Deliveries...)
		SortDeliveries(want)
		SortDeliveries(got)
		if len(want) != len(got) {
			t.Fatalf("%s round %d: %d deliveries, reference says %d\n engine: %v\n ref:    %v",
				label, round.Round, len(got), len(want), got, want)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%s round %d: delivery %d = %v, reference %v", label, round.Round, i, got[i], want[i])
			}
		}
	}
}

// TestEngineMatchesReference differential-tests the engine's delivery paths
// (generic, clique cover, complete-topology fast path) against the naive
// reference across random networks, selectors, and algorithms.
func TestEngineMatchesReference(t *testing.T) {
	src := bitrand.New(2024)
	mkNets := []func(seed uint64) *graph.Dual{
		func(seed uint64) *graph.Dual {
			d, _ := graph.DualClique(20, int(seed%10))
			return d
		},
		func(seed uint64) *graph.Dual {
			d, _ := graph.BraceletExplicit(3+int(seed%3), 3, 1)
			return d
		},
		func(seed uint64) *graph.Dual {
			s := src.Split(seed, 1)
			g := graph.ErdosRenyi(s, 18, 0.3)
			return graph.RandomDual(s, g, 0.3)
		},
		func(seed uint64) *graph.Dual {
			s := src.Split(seed, 2)
			return graph.Geographic(s, graph.GeographicConfig{N: 20, Side: 3, Radius: 1.8, GreyProb: 0.7})
		},
	}
	links := []func(seed uint64) any{
		func(uint64) any { return nil },
		func(uint64) any { return staticOblivious{sel: graph.SelectAll{}} },
		func(seed uint64) any { return hashLink{p: 0.4, seed: seed} },
		func(uint64) any { return jamLike{} },
	}
	for ni, mkNet := range mkNets {
		for li, mkLink := range links {
			for _, accel := range []bool{false, true} {
				for seed := uint64(0); seed < 3; seed++ {
					net := mkNet(seed)
					rec := &MemRecorder{}
					_, err := Run(Config{
						Net:            net,
						Algorithm:      coinAlg{p: 0.35},
						Spec:           Spec{Problem: GlobalBroadcast, Source: 0},
						Link:           mkLink(seed),
						Seed:           seed,
						MaxRounds:      40,
						Recorder:       rec,
						UseCliqueCover: accel,
					})
					if err != nil {
						t.Fatal(err)
					}
					label := map[bool]string{true: "accel", false: "plain"}[accel]
					validateTrace(t, net, rec, label+"-net"+itoa(ni)+"-link"+itoa(li))
				}
			}
		}
	}
}

func itoa(i int) string { return string(rune('0' + i)) }

// jamLike is an offline adaptive test adversary alternating behavior on the
// realized transmitter count.
type jamLike struct{}

func (jamLike) ChooseOffline(env *Env, view *View, tx []graph.NodeID) graph.EdgeSelector {
	if len(tx)%2 == 0 {
		return graph.SelectAll{}
	}
	return graph.SelectNone{}
}

func TestReferenceDeliveriesNilSelector(t *testing.T) {
	d := lineDual(3)
	got := ReferenceDeliveries(d, nil, []graph.NodeID{1})
	if len(got) != 2 {
		t.Fatalf("deliveries = %v", got)
	}
}

func TestReferenceDeliveriesTransmitterCannotReceive(t *testing.T) {
	d := lineDual(3)
	got := ReferenceDeliveries(d, nil, []graph.NodeID{0, 1})
	// 0 and 1 transmit: 0,1 can't receive; 2 neighbors only 1 → receives.
	if len(got) != 1 || got[0] != (Delivery{To: 2, From: 1}) {
		t.Fatalf("deliveries = %v", got)
	}
}

func TestSortDeliveries(t *testing.T) {
	ds := []Delivery{{To: 2, From: 1}, {To: 0, From: 5}, {To: 2, From: 0}}
	SortDeliveries(ds)
	if ds[0].To != 0 || ds[1] != (Delivery{To: 2, From: 0}) || ds[2] != (Delivery{To: 2, From: 1}) {
		t.Fatalf("sorted = %v", ds)
	}
}
