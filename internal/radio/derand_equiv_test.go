package radio_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
)

// Differential layer for the derandomized broadcast: the deterministic
// schedule must be observationally identical under PlanScalar and
// PlanBitmap, across epoch swaps, for every adversary shape — and every
// recorded round must replay exactly through the naive reference oracle.
// DerandBroadcast draws no coins, so any divergence here is an engine bug
// by construction, not schedule noise.

func TestDerandBitmapScalarEquivalence(t *testing.T) {
	d := denseDual(t, 96, 10, 400, 0xd3a)
	global := radio.Spec{Problem: radio.GlobalBroadcast, Source: 3}

	cases := []struct {
		name string
		cfg  radio.Config
	}{
		{"no-link", radio.Config{
			Net: d, Algorithm: core.DerandBroadcast{}, Spec: global,
			Seed: 41, MaxRounds: 64 * 96,
		}},
		{"static-all", radio.Config{
			Net: d, Algorithm: core.DerandBroadcast{}, Spec: global,
			Link: fixedLink{graph.SelectAll{}}, Seed: 42, MaxRounds: 64 * 96,
		}},
		{"static-set", radio.Config{
			Net: d, Algorithm: core.DerandBroadcast{}, Spec: global,
			Link: fixedLink{graph.NewSelectSet(halfExtraEdges(d))}, Seed: 43, MaxRounds: 64 * 96,
		}},
		{"online-flicker", radio.Config{
			Net: d, Algorithm: core.DerandBroadcast{}, Spec: global,
			Link: flickerLink{}, Seed: 44, MaxRounds: 64 * 96,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { comparePlans(t, tc.cfg) })
	}
}

// TestDerandEquivalenceAcrossEpochs covers the interaction the scalar/bitmap
// comparison alone cannot: EpochAware re-keying (the derand processes swap
// decompositions at the boundary) happening in lockstep with the engine's
// own mask re-hoist, under both plans.
func TestDerandEquivalenceAcrossEpochs(t *testing.T) {
	d0 := denseDual(t, 96, 10, 400, 0xd30)
	d1 := denseDual(t, 96, 6, 120, 0xd31)
	sweep := graph.DecompositionOf(d0.G()).SweepLen()
	for _, tc := range []struct {
		name string
		link any
	}{
		{"no-link", nil},
		{"static-set", fixedLink{graph.NewSelectSet(halfExtraEdges(d0))}},
		{"online-flicker", flickerLink{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			comparePlans(t, radio.Config{
				Epochs: []radio.Epoch{
					{Start: 0, Net: d0},
					{Start: sweep + 3, Net: d1},
					{Start: 3 * sweep, Net: d0},
				},
				Algorithm: core.DerandBroadcast{},
				Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: 5},
				Link:      tc.link,
				Seed:      51,
				MaxRounds: 64 * 96,
			})
		})
	}
}

// TestDerandBitmapMatchesReference replays every recorded round of a bitmap
// derand execution through the O(n·Δ) oracle, for a committed partial set
// and for the online flicker.
func TestDerandBitmapMatchesReference(t *testing.T) {
	d := denseDual(t, 80, 8, 300, 0xd3f)
	for _, tc := range []struct {
		name string
		link any
	}{
		{"static-set", fixedLink{graph.NewSelectSet(halfExtraEdges(d))}},
		{"online-flicker", flickerLink{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rec := &radio.MemRecorder{}
			_, err := radio.Run(radio.Config{
				Net:       d,
				Algorithm: core.DerandBroadcast{},
				Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
				Link:      tc.link,
				Seed:      61,
				MaxRounds: 64 * 80,
				Plan:      radio.PlanBitmap,
				Recorder:  rec,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rec.Rounds {
				want := radio.ReferenceDeliveries(d, r.Selector, r.Transmitters)
				radio.SortDeliveries(want)
				got := append([]radio.Delivery(nil), r.Deliveries...)
				radio.SortDeliveries(got)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("round %d deliveries diverge from reference:\n got:  %v\n want: %v", r.Round, got, want)
				}
			}
		})
	}
}
