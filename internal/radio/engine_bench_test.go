package radio_test

import (
	"testing"

	"repro/internal/bitrand"
	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/radio"
)

// allLink is an oblivious link that includes every unreliable edge each
// round, forcing the delivery loop over the extra-neighbor arrays.
type allLink struct{}

func (allLink) CommitSchedule(*radio.Env) radio.Schedule {
	return radio.StaticSchedule{Selector: graph.SelectAll{}}
}

// BenchmarkEngineRoundDelivery measures one full trial — engine setup
// (NewProcesses and per-node rng streams) plus a fixed 256-round delivery
// loop — on the paper's two lower-bound topologies. IgnoreCompletion pins the
// round count so ns/op and allocs/op compare across engine changes; the
// per-iteration seed varies so transmit patterns are realistic, not cached.
// Run with -benchmem: allocs/op is the tracked number (BENCH_pr2.json).
func BenchmarkEngineRoundDelivery(b *testing.B) {
	run := func(b *testing.B, net *graph.Dual, spec radio.Spec, link any, cover bool) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// IgnoreCompletion makes every iteration execute exactly
			// MaxRounds rounds (Result.Rounds still reports the solving
			// round), so the measured work is identical across iterations.
			_, err := radio.Run(radio.Config{
				Net:              net,
				Algorithm:        core.DecayGlobal{},
				Spec:             spec,
				Link:             link,
				Seed:             uint64(i),
				MaxRounds:        256,
				UseCliqueCover:   cover,
				IgnoreCompletion: true,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	globalSpec := radio.Spec{Problem: radio.GlobalBroadcast, Source: 0}

	dc, _ := graph.DualClique(128, 3)
	b.Run("dual-clique/n=128", func(b *testing.B) { run(b, dc, globalSpec, nil, false) })
	b.Run("dual-clique/n=128/cover", func(b *testing.B) { run(b, dc, globalSpec, nil, true) })

	br, _ := graph.Bracelet(512, 1)
	b.Run("bracelet/n=512", func(b *testing.B) { run(b, br, globalSpec, nil, false) })
	b.Run("bracelet/n=512/all-link", func(b *testing.B) { run(b, br, globalSpec, allLink{}, false) })

	// Word-parallel delivery on a SCALE-class circulant: n = 10⁴, degree
	// 2048, every node an aloha broadcaster at p = 1/2, so every round
	// carries ~n/2 transmitters — the regime the bitmap kernel exists for.
	// The scalar row walks ~10M adjacency entries per round; the bitmap row
	// classifies every listener in a couple of masked popcounts
	// (BENCH_pr7.json tracks the ratio). PlanAuto resolves to the same bitmap
	// path here (dense rounds, thresholds cleared), measured separately to
	// pin the hybrid dispatch overhead.
	// Built lazily: the benchmark function body re-runs for every selected
	// sub-benchmark, and the ~20M-entry CSR would otherwise bloat the live
	// heap (and every small sub-bench's GC bill) even when no dense row is
	// selected.
	var dense *graph.Dual
	var denseSpec radio.Spec
	mkDense := func() {
		if dense != nil {
			return
		}
		dense = graph.AugmentDual(bitrand.New(0xd), graph.Circulant(10000, 2048), 20000)
		everyone := make([]graph.NodeID, dense.N())
		for u := range everyone {
			everyone[u] = u
		}
		denseSpec = radio.Spec{Problem: radio.LocalBroadcast, Broadcasters: everyone}
	}
	runDense := func(b *testing.B, plan radio.DeliveryPlan) {
		b.Helper()
		mkDense()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, err := radio.Run(radio.Config{
				Net:              dense,
				Algorithm:        core.Aloha{P: 0.5},
				Spec:             denseSpec,
				Seed:             uint64(i),
				MaxRounds:        32,
				Plan:             plan,
				IgnoreCompletion: true,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("dense/n=10000/scalar", func(b *testing.B) { runDense(b, radio.PlanScalar) })
	b.Run("dense/n=10000/bitmap", func(b *testing.B) { runDense(b, radio.PlanBitmap) })
	b.Run("dense/n=10000/auto", func(b *testing.B) { runDense(b, radio.PlanAuto) })
}

// BenchmarkSparseDelivery measures full aloha trials on the SCALE-family
// ring-with-chords substrates across the delivery plans that can carry them:
// the scalar CSR walk, the dense word-parallel kernel (only legal up to the
// dense-mask node cap), and the block-sparse kernel the large sizes exist
// for. Every node transmits at p = 1/2, the bitmap regime; IgnoreCompletion
// pins the round count so ns/op compares across plans (BENCH_pr9.json tracks
// the dense/sparse and scalar/sparse ratios). The substrates are built
// lazily and memoized for the same reason as the dense circulant above — the
// 10⁶-node dual alone holds ~10⁷ CSR entries plus its memoized sparse masks.
func BenchmarkSparseDelivery(b *testing.B) {
	nets := map[int]*graph.Dual{}
	mk := func(n int) *graph.Dual {
		if d := nets[n]; d != nil {
			return d
		}
		src := bitrand.New(uint64(n))
		d := graph.AugmentDual(src, graph.RingChords(src, n, 2*n), n)
		nets[n] = d
		return d
	}
	run := func(b *testing.B, n, rounds int, plan radio.DeliveryPlan) {
		b.Helper()
		net := mk(n)
		everyone := make([]graph.NodeID, n)
		for u := range everyone {
			everyone[u] = u
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, err := radio.Run(radio.Config{
				Net:              net,
				Algorithm:        core.Aloha{P: 0.5},
				Spec:             radio.Spec{Problem: radio.LocalBroadcast, Broadcasters: everyone},
				Seed:             uint64(i),
				MaxRounds:        rounds,
				Plan:             plan,
				IgnoreCompletion: true,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("n=10000/scalar", func(b *testing.B) { run(b, 10000, 32, radio.PlanScalar) })
	b.Run("n=10000/dense", func(b *testing.B) { run(b, 10000, 32, radio.PlanBitmap) })
	b.Run("n=10000/sparse", func(b *testing.B) { run(b, 10000, 32, radio.PlanBitmapSparse) })
	b.Run("n=100000/scalar", func(b *testing.B) { run(b, 100000, 16, radio.PlanScalar) })
	b.Run("n=100000/sparse", func(b *testing.B) { run(b, 100000, 16, radio.PlanBitmapSparse) })
	b.Run("n=1000000/sparse", func(b *testing.B) { run(b, 1000000, 8, radio.PlanBitmapSparse) })
}

// BenchmarkEpochSwap measures full trials under a topology schedule against
// the identical static trial. The revisions are precompiled once (as the
// scenario layer does), so the only per-trial epoch cost is swapping hoisted
// CSR views and re-keying the memoized clique cover — the tracked number is
// allocs/op, which must stay within a few of the static path
// (BENCH_pr4.json).
func BenchmarkEpochSwap(b *testing.B) {
	dc, _ := graph.DualClique(128, 3)
	// Eight churn epochs inside the 256-round budget: every 32 rounds one
	// node leaves or rejoins and one reliable edge is demoted or restored.
	rv := graph.NewRevision(dc)
	epochs := []radio.Epoch{{Start: 0, Net: dc}}
	for e := 1; e < 8; e++ {
		ops := []graph.ChurnOp{
			{Kind: graph.ChurnLeave, U: 10 + e},
			{Kind: graph.ChurnRemoveEdge, U: 2 * e, V: 2*e + 1},
		}
		if e > 1 {
			ops = append(ops, graph.ChurnOp{Kind: graph.ChurnJoin, U: 10 + e - 1})
		}
		var err error
		if rv, err = rv.Apply(ops); err != nil {
			b.Fatal(err)
		}
		epochs = append(epochs, radio.Epoch{Start: 32 * e, Net: rv.Dual()})
	}
	spec := radio.Spec{Problem: radio.GlobalBroadcast, Source: 0}
	run := func(b *testing.B, static bool, cover bool) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := radio.Config{
				Algorithm:        core.DecayGlobal{},
				Spec:             spec,
				Seed:             uint64(i),
				MaxRounds:        256,
				UseCliqueCover:   cover,
				IgnoreCompletion: true,
			}
			if static {
				cfg.Net = dc
			} else {
				cfg.Epochs = epochs
			}
			if _, err := radio.Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("static/n=128", func(b *testing.B) { run(b, true, false) })
	b.Run("epochs/n=128", func(b *testing.B) { run(b, false, false) })
	b.Run("static/n=128/cover", func(b *testing.B) { run(b, true, true) })
	b.Run("epochs/n=128/cover", func(b *testing.B) { run(b, false, true) })
}

// BenchmarkContentionTrial measures a TDM gossip trial with staggered
// mid-run injections next to the same trial with all rumors present from
// round 0: the injection machinery (per-rumor activation, monitor
// pre-stamping, per-rumor completion in Result) must not add per-trial
// allocation churn beyond the two Result metadata slices.
func BenchmarkContentionTrial(b *testing.B) {
	net := graph.UniformDual(graph.Grid(12, 12))
	allUp := radio.Spec{Problem: radio.Gossip, Sources: []graph.NodeID{0, 37, 91, 140}}
	staggered := radio.Spec{
		Problem: radio.Gossip,
		Sources: []graph.NodeID{0, 37},
		Injections: []radio.Injection{
			{Source: 91, Round: 16},
			{Source: 140, Round: 32},
		},
	}
	run := func(b *testing.B, spec radio.Spec) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, err := radio.Run(radio.Config{
				Net:       net,
				Algorithm: gossip.TDM{},
				Spec:      spec,
				Seed:      uint64(i),
				MaxRounds: 64,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("all-up/k=4", func(b *testing.B) { run(b, allUp) })
	b.Run("staggered/k=4", func(b *testing.B) { run(b, staggered) })
}

// BenchmarkGossipTrial measures a full TDM gossip trial on a grid: the
// k-rumor monitor's Θ(n·k) matrices and the per-rumor process state dominate
// the setup allocations.
func BenchmarkGossipTrial(b *testing.B) {
	b.ReportAllocs()
	net := graph.UniformDual(graph.Grid(12, 12))
	spec := radio.Spec{Problem: radio.Gossip, Sources: []graph.NodeID{0, 37, 91, 140}}
	for i := 0; i < b.N; i++ {
		_, err := radio.Run(radio.Config{
			Net:       net,
			Algorithm: gossip.TDM{},
			Spec:      spec,
			Seed:      uint64(i),
			MaxRounds: 64,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
