package radio_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/radio"
)

// allLink is an oblivious link that includes every unreliable edge each
// round, forcing the delivery loop over the extra-neighbor arrays.
type allLink struct{}

func (allLink) CommitSchedule(*radio.Env) radio.Schedule {
	return radio.StaticSchedule{Selector: graph.SelectAll{}}
}

// BenchmarkEngineRoundDelivery measures one full trial — engine setup
// (NewProcesses and per-node rng streams) plus a fixed 256-round delivery
// loop — on the paper's two lower-bound topologies. IgnoreCompletion pins the
// round count so ns/op and allocs/op compare across engine changes; the
// per-iteration seed varies so transmit patterns are realistic, not cached.
// Run with -benchmem: allocs/op is the tracked number (BENCH_pr2.json).
func BenchmarkEngineRoundDelivery(b *testing.B) {
	run := func(b *testing.B, net *graph.Dual, spec radio.Spec, link any, cover bool) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// IgnoreCompletion makes every iteration execute exactly
			// MaxRounds rounds (Result.Rounds still reports the solving
			// round), so the measured work is identical across iterations.
			_, err := radio.Run(radio.Config{
				Net:              net,
				Algorithm:        core.DecayGlobal{},
				Spec:             spec,
				Link:             link,
				Seed:             uint64(i),
				MaxRounds:        256,
				UseCliqueCover:   cover,
				IgnoreCompletion: true,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	globalSpec := radio.Spec{Problem: radio.GlobalBroadcast, Source: 0}

	dc, _ := graph.DualClique(128, 3)
	b.Run("dual-clique/n=128", func(b *testing.B) { run(b, dc, globalSpec, nil, false) })
	b.Run("dual-clique/n=128/cover", func(b *testing.B) { run(b, dc, globalSpec, nil, true) })

	br, _ := graph.Bracelet(512, 1)
	b.Run("bracelet/n=512", func(b *testing.B) { run(b, br, globalSpec, nil, false) })
	b.Run("bracelet/n=512/all-link", func(b *testing.B) { run(b, br, globalSpec, allLink{}, false) })
}

// BenchmarkGossipTrial measures a full TDM gossip trial on a grid: the
// k-rumor monitor's Θ(n·k) matrices and the per-rumor process state dominate
// the setup allocations.
func BenchmarkGossipTrial(b *testing.B) {
	b.ReportAllocs()
	net := graph.UniformDual(graph.Grid(12, 12))
	spec := radio.Spec{Problem: radio.Gossip, Sources: []graph.NodeID{0, 37, 91, 140}}
	for i := 0; i < b.N; i++ {
		_, err := radio.Run(radio.Config{
			Net:       net,
			Algorithm: gossip.TDM{},
			Spec:      spec,
			Seed:      uint64(i),
			MaxRounds: 64,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
