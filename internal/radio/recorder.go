package radio

import "repro/internal/graph"

// Delivery records one successful reception.
type Delivery struct {
	To, From graph.NodeID
}

// RoundRecord is the trace of one executed round.
//
// Transmitters and Deliveries are backed by engine-owned scratch that is
// rewritten every round: they are valid only for the duration of the Record
// call, and implementations that retain them (MemRecorder) must copy.
// Streaming consumers (TxCountRecorder) read them allocation-free.
type RoundRecord struct {
	Round        int
	Transmitters []graph.NodeID
	Deliveries   []Delivery
	// SelectorKind summarizes the adversary's choice: "all", "none", or
	// "partial".
	SelectorKind string
	// Selector is the round's actual edge selection, retained so traces can
	// be replayed and validated against ReferenceDeliveries.
	Selector graph.EdgeSelector
}

// Recorder receives per-round trace records. Recording is optional; the
// engine skips all trace work when Config.Recorder is nil.
type Recorder interface {
	Record(rec RoundRecord)
}

// MemRecorder stores every round record in memory.
type MemRecorder struct {
	Rounds []RoundRecord
}

// Record implements Recorder, copying the engine-owned slices so the stored
// records stay valid after the engine moves to the next round.
func (m *MemRecorder) Record(rec RoundRecord) {
	rec.Transmitters = append([]graph.NodeID(nil), rec.Transmitters...)
	rec.Deliveries = append([]Delivery(nil), rec.Deliveries...)
	m.Rounds = append(m.Rounds, rec)
}

// TransmissionsIn counts transmissions in rounds [from, to).
func (m *MemRecorder) TransmissionsIn(from, to int) int {
	total := 0
	for _, r := range m.Rounds {
		if r.Round >= from && r.Round < to {
			total += len(r.Transmitters)
		}
	}
	return total
}

// TxCountRecorder records only the per-round transmitter counts. Sampling
// adversaries use it to build their dense/sparse labels without retaining
// full traces.
type TxCountRecorder struct {
	Counts []int
}

// Record implements Recorder.
func (t *TxCountRecorder) Record(rec RoundRecord) {
	t.Counts = append(t.Counts, len(rec.Transmitters))
}

func selectorKind(sel graph.EdgeSelector) string {
	switch {
	case sel.All():
		return "all"
	case sel.None():
		return "none"
	default:
		return "partial"
	}
}
