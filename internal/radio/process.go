// Package radio implements the round-synchronous dual graph radio network
// simulation engine of the PODC 2013 model.
//
// An execution proceeds in synchronous rounds. Each round, every node either
// transmits a message or listens. The communication topology of round r is
// the reliable graph G plus the subset of E' \ E chosen by the link process
// (the adversary). A listening node u receives message m from v iff v is the
// only transmitter among u's topology neighbors; otherwise u hears silence
// (collisions are indistinguishable from silence; no collision detection).
//
// The engine enforces adversary visibility by interface shape: oblivious
// link processes commit a full schedule before round 1, online adaptive ones
// see state-determined transmit probabilities but not coins, and offline
// adaptive ones additionally see the realized transmitter set.
package radio

import (
	"repro/internal/bitrand"
	"repro/internal/graph"
)

// Problem selects which broadcast problem an execution solves.
type Problem int

const (
	// GlobalBroadcast: a designated source disseminates one message to all.
	GlobalBroadcast Problem = iota + 1
	// LocalBroadcast: every node with a G-neighbor in the broadcaster set
	// must receive at least one message originating in the set.
	LocalBroadcast
	// Gossip (k-rumor spreading): every node must receive, for each of the
	// k sources, some message originating at that source. This is the
	// multi-message extension the paper's conclusion poses as future work.
	Gossip
)

// String implements fmt.Stringer.
func (p Problem) String() string {
	switch p {
	case GlobalBroadcast:
		return "global"
	case LocalBroadcast:
		return "local"
	case Gossip:
		return "gossip"
	default:
		return "unknown"
	}
}

// Spec describes a problem instance.
type Spec struct {
	Problem Problem
	// Source is the designated source for GlobalBroadcast.
	Source graph.NodeID
	// Broadcasters is the set B for LocalBroadcast.
	Broadcasters []graph.NodeID
	// Sources are the rumor origins for Gossip.
	Sources []graph.NodeID
	// Injections are additional Gossip rumors entering the system
	// mid-execution: rumor len(Sources)+j originates at Injections[j].Source
	// in round Injections[j].Round. The schedule is part of the problem
	// instance — algorithms may read it (injection-aware algorithms activate
	// the origin at its round), and the engine's gossip monitor counts every
	// injected rumor toward completion. A node may originate at most one
	// rumor: injection sources must be disjoint from Sources and from each
	// other. Only valid for Gossip.
	Injections []Injection
}

// Injection schedules one rumor's mid-execution entry for Gossip: Source
// learns (and starts disseminating) a fresh rumor at the start of Round.
// Round 0 is equivalent to listing the node in Spec.Sources.
type Injection struct {
	Source graph.NodeID
	Round  int
}

// NumRumors returns the total rumor count of a Gossip spec: initial sources
// plus scheduled injections.
func (s Spec) NumRumors() int { return len(s.Sources) + len(s.Injections) }

// Message is a transmitted frame. Messages are treated as opaque values by
// the engine; only Origin is inspected (by the problem monitors).
type Message struct {
	// Origin is the node whose problem input this message carries: the
	// global broadcast source, or the local broadcaster. Relays preserve it.
	Origin graph.NodeID
	// Payload is algorithm-defined (e.g. the shared permutation bits of the
	// Section 4.1 source message).
	Payload any
}

// Action is a node's choice for one round.
type Action struct {
	// Transmit is true to transmit Msg, false to listen.
	Transmit bool
	// Msg is the transmitted message; ignored when listening.
	Msg *Message
}

// Listen is the listening action.
func Listen() Action { return Action{} }

// Transmit returns a transmitting action.
func Transmit(m *Message) Action { return Action{Transmit: true, Msg: m} }

// Process is one node's randomized protocol. The engine calls Step exactly
// once per round (before delivery), then Deliver with the outcome.
type Process interface {
	// Step decides the round-r action. rng is the node's private randomness;
	// all random choices must come from it so executions are reproducible.
	Step(r int, rng *bitrand.Source) Action
	// Deliver reports the round-r outcome: the received message, or nil for
	// silence/collision. Transmitters always receive nil (a radio cannot
	// hear while transmitting).
	Deliver(r int, msg *Message)
}

// TransmitProber is implemented by processes whose transmit decision in the
// upcoming round is a Bernoulli trial with a probability determined by
// current state. This is exactly the information an online adaptive link
// process may use (Theorem 3.1: "E[|X| | S] ... requires only the state at
// the beginning of the round, not the random choices made during it").
//
// All algorithms in this repository implement it.
type TransmitProber interface {
	// TransmitProb returns the probability of transmitting in round r given
	// the state at the beginning of r.
	TransmitProb(r int) float64
}

// BulkStepper is an optional Process extension for probability-profile
// protocols: processes whose Step is exactly one Bernoulli trial — flip the
// round's coin with probability TransmitProb(r) via rng.Coin (which draws no
// bits at probability 0 or 1), transmit Frame(r) on heads, listen on tails —
// with no other state change and no other randomness. Decay-family and
// fixed-probability (ALOHA) processes are of this shape; processes with
// Step-side state or extra draws must not implement it.
//
// When every process of an execution is a BulkStepper and the bitmap
// delivery plan is active, the engine fills the round's transmit-bit vector
// itself instead of dispatching Step per node. The coins come from each
// node's own stream in ascending node order — exactly the scalar Step order
// — so the draws are bit-for-bit identical and the two paths produce the
// same execution (the bulk contract test enforces this).
type BulkStepper interface {
	Process
	TransmitProber
	// Frame returns the message the process would transmit on a heads coin
	// in round r; nil means a noise transmission, as in Action.Msg.
	Frame(r int) *Message
}

// EpochAware is an optional Process extension for algorithms that derive
// per-topology structure (a decomposition, a schedule) from the network.
// When an execution runs under an epoch schedule, the engine invokes OnEpoch
// on every implementing process at each epoch boundary, after the engine's
// own views have re-hoisted to the new revision, so the process can re-key
// its derived structure the same way the engine re-keys the clique cover.
// OnEpoch is never called for epoch 0 — NewProcesses already saw that
// network — and must not retain net-derived views beyond the next swap
// except through per-graph memos (which re-key by construction).
type EpochAware interface {
	Process
	// OnEpoch reports that the topology advanced to epoch index epoch with
	// network net.
	OnEpoch(epoch int, net *graph.Dual)
}

// Algorithm constructs the per-node processes for a network and problem
// instance. Factories are what oblivious adversaries are allowed to know:
// the algorithm description, not its coins. Sampling adversaries use the
// factory to pre-simulate executions with fresh randomness.
type Algorithm interface {
	// Name identifies the algorithm in traces and result tables.
	Name() string
	// NewProcesses returns one fresh process per node of the network.
	// Implementations draw any construction-time randomness (e.g. the
	// Section 4.1 source bits) from rng.
	NewProcesses(net *graph.Dual, spec Spec, rng *bitrand.Source) []Process
}

// ProcessFactory is an optional extension of Algorithm for the engine's
// process arena: the experiment harness runs tens of thousands of short
// trials of the same (algorithm, network, spec) configuration, and a factory
// lets the engine reinitialize the previous trial's process slab in place
// instead of allocating a fresh one per trial.
//
// The engine only offers a slab back to the factory whose Name produced it,
// on the same network pointer and an element-wise-equal spec. ResetProcesses
// must then leave every process in exactly the state NewProcesses would
// produce for (net, spec, rng) — all parameter-derived state recomputed from
// the receiver, all cross-trial state cleared, construction randomness drawn
// from rng in the same order — so that pooling is observationally invisible
// (the determinism tests enforce this). It reports false if the slab cannot
// be reused (e.g. a process has an unexpected type because two algorithms
// share a Name); the engine then discards the slab and falls back to
// NewProcesses with an identically derived rng, so a failed reset may leave
// the slab half-mutated and may even have consumed rng bits.
type ProcessFactory interface {
	Algorithm
	ResetProcesses(procs []Process, net *graph.Dual, spec Spec, rng *bitrand.Source) bool
}
