package radio

import (
	"repro/internal/bitrand"
	"repro/internal/graph"
)

// Env is the execution context handed to link processes. It contains exactly
// what every adversary class is entitled to before the execution begins: the
// network topology (including the full epoch schedule, which is fixed before
// round 1 and therefore public, exactly like the static topology), the
// problem instance, the algorithm description, and the adversary's own
// private randomness.
type Env struct {
	// Net is the base (epoch-0) topology. It never changes during the
	// execution, even when an epoch schedule swaps the live network — the
	// schedule itself is in Epochs, and adaptive link processes observe the
	// live topology through View.Net.
	Net       *graph.Dual
	Spec      Spec
	Algorithm Algorithm
	Rng       *bitrand.Source
	// MaxRounds is the engine's round budget, available so schedules can be
	// sized.
	MaxRounds int
	// Epochs is the execution's full topology schedule (nil for a static
	// run; Epochs[0].Net == Net otherwise). Like the network itself it is
	// part of the environment, not execution information: oblivious link
	// processes may commit against it — pre-simulating under the same churn
	// the real execution will see, or concentrating their schedule on the
	// rounds where the topology is degraded.
	Epochs []Epoch
}

// View is the execution information available to adaptive link processes at
// the start of a round. Oblivious processes never see a View.
//
// A View (and every slice it carries) is engine-owned scratch, valid only
// for the duration of the ChooseOnline/ChooseOffline call; link processes
// that retain any of it across rounds must copy.
type View struct {
	// Round is the current round index (0-based).
	Round int
	// EpochIdx is the index into Env.Epochs of the epoch the round runs
	// under (0 for static executions).
	EpochIdx int
	// Net is the live topology of the round: Env.Epochs[EpochIdx].Net under
	// a schedule, Env.Net otherwise. Adaptive adversaries reason over this
	// network, not the epoch-0 one.
	Net *graph.Dual
	// TransmitProbs[u] is the probability that node u transmits this round,
	// as determined by its state at the beginning of the round (before any
	// coin is flipped). Nodes whose process does not implement
	// TransmitProber report -1.
	TransmitProbs []float64
	// LastTransmitters is the realized transmitter set of the previous
	// round (nil in round 0). Part of the execution history.
	LastTransmitters []graph.NodeID
	// Informed is the number of problem-relevant deliveries so far (informed
	// nodes for global broadcast, satisfied receivers for local broadcast).
	Informed int
}

// SumTransmitProbs returns Σ_u TransmitProbs[u] over nodes with known
// probabilities: the E[|X| | S] quantity of Theorem 3.1.
func (v *View) SumTransmitProbs() float64 {
	total := 0.0
	for _, p := range v.TransmitProbs {
		if p >= 0 {
			total += p
		}
	}
	return total
}

// Schedule is a committed oblivious link schedule: a pure function of the
// round number fixed before the execution begins.
type Schedule interface {
	// SelectorFor returns the E'\E selection for the given round.
	SelectorFor(round int) graph.EdgeSelector
}

// ObliviousLink is a link process that must commit its entire behavior
// before round 1. CommitSchedule is invoked exactly once; the returned
// Schedule receives no execution information, enforcing obliviousness by
// construction.
type ObliviousLink interface {
	CommitSchedule(env *Env) Schedule
}

// OnlineAdaptiveLink chooses each round's links from the execution history
// and the state-determined transmit probabilities, but not the coins.
type OnlineAdaptiveLink interface {
	ChooseOnline(env *Env, view *View) graph.EdgeSelector
}

// OfflineAdaptiveLink additionally sees the realized transmitter set of the
// current round before fixing the links — the strongest classical adversary.
type OfflineAdaptiveLink interface {
	ChooseOffline(env *Env, view *View, transmitters []graph.NodeID) graph.EdgeSelector
}

// ScheduleFunc adapts a function to the Schedule interface.
type ScheduleFunc func(round int) graph.EdgeSelector

// SelectorFor implements Schedule.
func (f ScheduleFunc) SelectorFor(round int) graph.EdgeSelector { return f(round) }

// StaticSchedule replays the same selector every round.
type StaticSchedule struct {
	Selector graph.EdgeSelector
}

// SelectorFor implements Schedule.
func (s StaticSchedule) SelectorFor(int) graph.EdgeSelector { return s.Selector }
