package radio

import (
	"repro/internal/bitrand"
	"repro/internal/graph"
)

// Env is the execution context handed to link processes. It contains exactly
// what every adversary class is entitled to before the execution begins: the
// network topology, the problem instance, the algorithm description, and the
// adversary's own private randomness.
type Env struct {
	Net       *graph.Dual
	Spec      Spec
	Algorithm Algorithm
	Rng       *bitrand.Source
	// MaxRounds is the engine's round budget, available so schedules can be
	// sized.
	MaxRounds int
}

// View is the execution information available to adaptive link processes at
// the start of a round. Oblivious processes never see a View.
type View struct {
	// Round is the current round index (0-based).
	Round int
	// TransmitProbs[u] is the probability that node u transmits this round,
	// as determined by its state at the beginning of the round (before any
	// coin is flipped). Nodes whose process does not implement
	// TransmitProber report -1.
	TransmitProbs []float64
	// LastTransmitters is the realized transmitter set of the previous
	// round (nil in round 0). Part of the execution history.
	LastTransmitters []graph.NodeID
	// Informed is the number of problem-relevant deliveries so far (informed
	// nodes for global broadcast, satisfied receivers for local broadcast).
	Informed int
}

// SumTransmitProbs returns Σ_u TransmitProbs[u] over nodes with known
// probabilities: the E[|X| | S] quantity of Theorem 3.1.
func (v *View) SumTransmitProbs() float64 {
	total := 0.0
	for _, p := range v.TransmitProbs {
		if p >= 0 {
			total += p
		}
	}
	return total
}

// Schedule is a committed oblivious link schedule: a pure function of the
// round number fixed before the execution begins.
type Schedule interface {
	// SelectorFor returns the E'\E selection for the given round.
	SelectorFor(round int) graph.EdgeSelector
}

// ObliviousLink is a link process that must commit its entire behavior
// before round 1. CommitSchedule is invoked exactly once; the returned
// Schedule receives no execution information, enforcing obliviousness by
// construction.
type ObliviousLink interface {
	CommitSchedule(env *Env) Schedule
}

// OnlineAdaptiveLink chooses each round's links from the execution history
// and the state-determined transmit probabilities, but not the coins.
type OnlineAdaptiveLink interface {
	ChooseOnline(env *Env, view *View) graph.EdgeSelector
}

// OfflineAdaptiveLink additionally sees the realized transmitter set of the
// current round before fixing the links — the strongest classical adversary.
type OfflineAdaptiveLink interface {
	ChooseOffline(env *Env, view *View, transmitters []graph.NodeID) graph.EdgeSelector
}

// ScheduleFunc adapts a function to the Schedule interface.
type ScheduleFunc func(round int) graph.EdgeSelector

// SelectorFor implements Schedule.
func (f ScheduleFunc) SelectorFor(round int) graph.EdgeSelector { return f(round) }

// StaticSchedule replays the same selector every round.
type StaticSchedule struct {
	Selector graph.EdgeSelector
}

// SelectorFor implements Schedule.
func (s StaticSchedule) SelectorFor(int) graph.EdgeSelector { return s.Selector }
