package radio

import (
	"reflect"
	"testing"

	"repro/internal/bitrand"
	"repro/internal/graph"
)

// The batched transmit-coin fill (stepBatch) must be bit-for-bit identical
// to the per-node bulk loop: same coins from the same per-node streams in
// the same ascending order, same transmitters, same deliveries, same energy
// profile. These tests run identical configurations with the batch enabled
// and disabled (via the disableCoinBatch hook) and require identical
// Results — including rounds where the batch path reconstructs the
// transmitter list for the scalar fallback (rebuildTx).
//
// The probe algorithm is defined here rather than borrowed from
// internal/core (which imports this package): informed nodes flood with a
// fixed probability, the exact BulkStepper shape — Step is one Bernoulli
// trial, Frame the held rumor.

type batchProc struct {
	p   float64
	msg *Message
}

func (pr *batchProc) TransmitProb(int) float64 {
	if pr.msg == nil {
		return 0
	}
	return pr.p
}

func (pr *batchProc) Frame(int) *Message { return pr.msg }

func (pr *batchProc) Step(r int, rng *bitrand.Source) Action {
	if rng.Coin(pr.TransmitProb(r)) {
		return Transmit(pr.Frame(r))
	}
	return Listen()
}

func (pr *batchProc) Deliver(_ int, msg *Message) {
	if msg != nil && pr.msg == nil {
		pr.msg = msg
	}
}

type batchAlg struct{ p float64 }

func (batchAlg) Name() string { return "batch-flood" }

func (a batchAlg) NewProcesses(net *graph.Dual, spec Spec, _ *bitrand.Source) []Process {
	procs := make([]Process, net.N())
	for u := range procs {
		procs[u] = &batchProc{p: a.p}
	}
	informed := spec.Broadcasters
	if spec.Problem == GlobalBroadcast {
		informed = []graph.NodeID{spec.Source}
	}
	for _, u := range informed {
		procs[u].(*batchProc).msg = &Message{Origin: u}
	}
	return procs
}

// staticAllLink commits the all-edges schedule, lighting up the G' sparse
// rows under the batch path.
type staticAllLink struct{}

func (staticAllLink) CommitSchedule(*Env) Schedule {
	return StaticSchedule{Selector: graph.SelectAll{}}
}

// staticPartialLink commits a fixed partial selector, which has no
// precomputed sparse rows: sparse-plan rounds under it must rebuild the
// transmitter list and fall back to the scalar walk.
type staticPartialLink struct{}

func (staticPartialLink) CommitSchedule(*Env) Schedule {
	return StaticSchedule{Selector: graph.SelectCrossCut{
		InA: func(u graph.NodeID) bool { return u%2 == 0 },
	}}
}

// runBatched runs cfg with the batched coin fill forced on or off.
func runBatched(t *testing.T, cfg Config, disable bool) Result {
	t.Helper()
	prev := disableCoinBatch
	disableCoinBatch = disable
	defer func() { disableCoinBatch = prev }()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBatchCoinEquivalence(t *testing.T) {
	var src bitrand.Source
	src.Reseed(0xba7c4)
	sparseNet := graph.UniformDual(graph.RingChords(&src, 3000, 6000))
	sparseLinked := graph.AugmentDual(&src, graph.RingChords(&src, 2000, 4000), 3000)
	denseNet := graph.UniformDual(graph.Circulant(2500, 320))

	cases := []struct {
		name string
		cfg  Config
	}{
		// Forced plans keep every eligible round on a bitmap kernel; the
		// high-probability runs exercise the dense word-register fill and the
		// sparse scattered fill, while the low-probability runs spend most
		// rounds under bitmapTxMin on the auto plan and so exercise
		// rebuildTx.
		{"dense-flood", Config{
			Net: denseNet, Algorithm: batchAlg{p: 0.4},
			Spec: Spec{Problem: LocalBroadcast, Broadcasters: []graph.NodeID{1, 700, 1900}},
			Seed: 41, MaxRounds: 96, Plan: PlanBitmap, IgnoreCompletion: true,
		}},
		// Auto on the dense circulant keeps bitmapTxMin = WordsFor(n): the
		// trickle's early rounds fall under it and take the rebuildTx →
		// scalar-walk fallback, later rounds clear it and take the kernel.
		{"dense-auto-trickle", Config{
			Net: denseNet, Algorithm: batchAlg{p: 0.02},
			Spec: Spec{Problem: GlobalBroadcast, Source: 7},
			Seed: 42, MaxRounds: 256, Plan: PlanAuto,
		}},
		{"sparse-flood", Config{
			Net: sparseNet, Algorithm: batchAlg{p: 0.5},
			Spec: Spec{Problem: GlobalBroadcast, Source: 11},
			Seed: 43, MaxRounds: 400, Plan: PlanBitmapSparse,
		}},
		{"sparse-flood-linked", Config{
			Net: sparseLinked, Algorithm: batchAlg{p: 0.35},
			Spec: Spec{Problem: LocalBroadcast, Broadcasters: []graph.NodeID{0, 500, 1500}},
			Link: staticAllLink{},
			Seed: 44, MaxRounds: 96, Plan: PlanBitmapSparse, IgnoreCompletion: true,
		}},
		// A committed partial selector has no sparse rows: every round takes
		// rebuildTx (cluster-major bits sorted back to ascending ids) into
		// the scalar walk.
		{"sparse-static-partial", Config{
			Net: sparseLinked, Algorithm: batchAlg{p: 0.3},
			Spec: Spec{Problem: LocalBroadcast, Broadcasters: []graph.NodeID{0, 500, 1500}},
			Link: staticPartialLink{},
			Seed: 45, MaxRounds: 96, Plan: PlanBitmapSparse, IgnoreCompletion: true,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			batched := runBatched(t, tc.cfg, false)
			perNode := runBatched(t, tc.cfg, true)
			if !reflect.DeepEqual(batched, perNode) {
				t.Errorf("results differ:\n batched:  %+v\n per-node: %+v", batched, perNode)
			}
		})
	}
}
