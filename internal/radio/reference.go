package radio

import (
	"sort"

	"repro/internal/graph"
)

// ReferenceDeliveries computes, by direct enumeration, the set of successful
// receptions for one round of the dual graph model: listener u receives from
// v iff v is the unique transmitter among u's neighbors in G ∪ selector(E'\E).
//
// It is deliberately naive — O(n · Δ) with no shared state — and serves as
// the differential-testing oracle for the engine's optimized delivery paths
// (transmitter iteration, clique-cover tallies, complete-topology fast path).
func ReferenceDeliveries(net *graph.Dual, selector graph.EdgeSelector, transmitters []graph.NodeID) []Delivery {
	if selector == nil {
		selector = graph.SelectNone{}
	}
	isTx := make(map[graph.NodeID]bool, len(transmitters))
	for _, v := range transmitters {
		isTx[v] = true
	}
	var out []Delivery
	for u := 0; u < net.N(); u++ {
		if isTx[u] {
			continue // a radio cannot hear while transmitting
		}
		count := 0
		from := -1
		for _, v := range net.G().Neighbors(u) {
			if isTx[v] {
				count++
				from = v
			}
		}
		for _, v := range net.ExtraNeighbors(u) {
			if isTx[v] && selector.Includes(u, v) {
				count++
				from = v
			}
		}
		if count == 1 {
			out = append(out, Delivery{To: u, From: from})
		}
	}
	return out
}

// SortDeliveries orders deliveries for comparison.
func SortDeliveries(ds []Delivery) {
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].To != ds[j].To {
			return ds[i].To < ds[j].To
		}
		return ds[i].From < ds[j].From
	})
}
