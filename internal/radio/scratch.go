package radio

import (
	"math/bits"
	"slices"
	"sync"

	"repro/internal/bitrand"
	"repro/internal/graph"
)

// scratch holds every reusable per-execution buffer of the engine. The
// experiment harness runs tens of thousands of short trials; allocating
// these Θ(n) buffers (and one rng Source per node) for each trial dominated
// the allocation profile, so completed executions return their scratch to a
// pool and the next trial reuses it. grow re-clears everything an execution
// reads before writing, so pooling never leaks state between trials.
//
//dglint:pooled reset=grow,clique,rumor,arenaStore,arenaDrop,txBitmap,staticMask
type scratch struct {
	// class is the pool bucket this scratch belongs to (see getScratch), or
	// -1 for an oversized scratch that is never pooled.
	class int //dglint:allow scratchreset: getScratch stamps it on every checkout

	txFlag   []bool
	counts   []int32
	from     []graph.NodeID
	touched  []graph.NodeID
	tx       []graph.NodeID
	msgOf    []*Message
	probs    []float64
	lastTx   []graph.NodeID
	txByNode []int64
	// noise[u] is the messageless transmission delivered when a process
	// transmits with a nil Msg. Its content is a pure function of the index
	// (Origin: u), so reusing the entries across trials is observationally
	// identical to allocating fresh ones.
	noise []Message

	// clique-cover accelerator buffers, sized by the cover count on demand.
	cliqueTx []int32
	cliqueS  []graph.NodeID

	// word-parallel delivery slabs, sized on demand when an execution picks
	// the bitmap plan: the per-round transmitter bitmap (W words) and the
	// combined G ∪ selected-extra mask rows for a committed static selector
	// (n·W words). deliverBitmap clears txWords before every fill and
	// buildStaticRows overwrites every staticMask word, so neither leaks
	// state across trials.
	txWords []uint64
	selMask []uint64

	// monitor backing stores: the round-stamp slice shared by the global and
	// local monitors (and repurposed as the gossip monitor's source index),
	// the local monitor's two membership sets, and the gossip monitor's
	// per-rumor round-stamp matrix — rows over one flat n·k backing array,
	// resized in place by rumor().
	monInts  []int
	monB     []bool
	monR     []bool
	monRumor []int
	monRows  [][]int
	// pooled monitor structs.
	globalMon globalMonitor //dglint:allow scratchreset: newGlobalMonitor overwrites the whole struct each execution
	localMon  localMonitor  //dglint:allow scratchreset: newLocalMonitor overwrites the whole struct each execution
	gossipMon gossipMonitor //dglint:allow scratchreset: newGossipMonitor overwrites the whole struct each execution

	// per-node rng storage: nodeRngs[u] points into rngBlock, reseeded per
	// execution. algRng is the algorithm-construction stream, reseeded the
	// same way. probers and bulkSteps cache the per-node TransmitProber and
	// BulkStepper views.
	nodeRngs  []*bitrand.Source
	rngBlock  []bitrand.Source
	algRng    bitrand.Source //dglint:allow scratchreset: newEngine reseeds it before any draw, every execution
	probers   []TransmitProber
	bulkSteps []BulkStepper

	// Process arena: the slab of the last execution that used this scratch,
	// plus the identity it was built for. When the next execution matches
	// (same factory name, same network pointer, element-wise-equal spec), the
	// engine hands the slab to ProcessFactory.ResetProcesses instead of
	// allocating a fresh one. The stored spec slices are scratch-owned
	// copies, so later in-place mutation of a caller's spec cannot fake a
	// match. grow deliberately leaves the arena alone: its key is the
	// configuration, not n.
	arenaProcs []Process
	arenaAlg   string
	arenaNet   *graph.Dual
	arenaProb  Problem
	arenaSrc   graph.NodeID
	arenaB     []graph.NodeID
	arenaS     []graph.NodeID
	arenaInj   []Injection

	// recorder delivery buffer, reused each round; handed to Recorder.Record
	// and valid only during the call.
	recordBuf []Delivery //dglint:allow scratchreset: the engine reslices it to [:0] before first use each execution
}

// The scratch pool is bucketed by power-of-two node-count classes so the
// slabs a trial warms are sized for the trials that reuse them: before the
// bucketing, one large-n trial would permanently pin worst-case Θ(n) slabs
// that every later small-n trial dragged around. Classes above
// scratchMaxClass are not pooled at all — a huge trial allocates fresh and
// hands its slabs straight back to the GC.
const (
	// scratchMinClass is the smallest bucket; every n up to 1<<scratchMinClass
	// shares it.
	scratchMinClass = 6
	// scratchMaxClass is the largest pooled bucket (n ≤ 2²⁰, covering the
	// SCALE-n family's million-node trials); larger scratches are dropped on
	// release instead of pooled. The huge classes cost tens of MB of linear
	// slabs each while pooled, but a million-node experiment runs many
	// trials back to back and re-allocating ~50 MB per trial churned the GC
	// far harder than pinning one slab set per class — and sync.Pool
	// releases them under memory pressure anyway. The quadratic slab risk
	// stays bounded by maxPooledMaskWords below.
	scratchMaxClass = 20
	// maxPooledMaskWords bounds the static-selector mask slab a pooled
	// scratch may retain: the slab is n·W words (quadratic in n), so even
	// within a pooled class it can dwarf every linear slab combined. Larger
	// slabs are dropped on release and rebuilt on demand.
	maxPooledMaskWords = 1 << 22 // 32 MiB
)

var scratchPools [scratchMaxClass - scratchMinClass + 1]sync.Pool

func init() {
	for i := range scratchPools {
		scratchPools[i].New = func() any { return new(scratch) }
	}
}

// scratchClass returns the power-of-two size class of n: the smallest c with
// n ≤ 1<<c, clamped below to scratchMinClass. Values above scratchMaxClass
// mark the scratch as unpooled.
func scratchClass(n int) int {
	c := bits.Len(uint(n - 1))
	if c < scratchMinClass {
		c = scratchMinClass
	}
	return c
}

// getScratch takes a scratch from the pool sized and cleared for n nodes.
func getScratch(n int) *scratch {
	c := scratchClass(n)
	if c > scratchMaxClass {
		s := new(scratch)
		s.class = -1
		s.grow(n)
		return s
	}
	s := scratchPools[c-scratchMinClass].Get().(*scratch)
	s.class = c
	s.grow(n)
	return s
}

// putScratch returns a scratch to its class pool; oversized scratches (and
// oversized mask slabs within a pooled scratch) are dropped to the GC.
func putScratch(s *scratch) {
	if s.class < 0 {
		return
	}
	if cap(s.selMask) > maxPooledMaskWords {
		s.selMask = nil
	}
	scratchPools[s.class-scratchMinClass].Put(s)
}

// grow sizes every buffer for n nodes and clears the state an execution
// relies on: transmit flags and counts at zero, transmission tallies at
// zero, no retained message pointers, and membership sets empty.
func (s *scratch) grow(n int) {
	if cap(s.txFlag) < n {
		s.txFlag = make([]bool, n)
		s.counts = make([]int32, n)
		s.from = make([]graph.NodeID, n)
		s.touched = make([]graph.NodeID, 0, n)
		s.tx = make([]graph.NodeID, 0, n)
		s.msgOf = make([]*Message, n)
		s.probs = make([]float64, n)
		s.lastTx = make([]graph.NodeID, 0, n)
		s.txByNode = make([]int64, n)
		s.noise = make([]Message, n)
		s.monInts = make([]int, n)
		s.monB = make([]bool, n)
		s.monR = make([]bool, n)
		s.rngBlock = make([]bitrand.Source, n)
		s.nodeRngs = make([]*bitrand.Source, n)
		s.probers = make([]TransmitProber, n)
		s.bulkSteps = make([]BulkStepper, n)
		for u := range s.noise {
			s.noise[u] = Message{Origin: u}
			s.nodeRngs[u] = &s.rngBlock[u]
		}
		return
	}
	s.txFlag = s.txFlag[:n]
	clear(s.txFlag)
	s.counts = s.counts[:n]
	clear(s.counts)
	s.from = s.from[:n]
	s.touched = s.touched[:0]
	s.tx = s.tx[:0]
	// Clear message pointers over the full capacity, not just [:n]: a
	// scratch last used for a larger network must not pin that trial's
	// messages (and payloads) while it cycles through the pool.
	clear(s.msgOf[:cap(s.msgOf)])
	s.msgOf = s.msgOf[:n]
	s.probs = s.probs[:n]
	s.lastTx = s.lastTx[:0]
	s.txByNode = s.txByNode[:n]
	clear(s.txByNode)
	s.noise = s.noise[:n]
	s.monInts = s.monInts[:n]
	s.monB = s.monB[:n]
	clear(s.monB)
	s.monR = s.monR[:n]
	clear(s.monR)
	s.rngBlock = s.rngBlock[:n]
	s.nodeRngs = s.nodeRngs[:n]
	// probers and bulkSteps need no clear: the engine writes every entry.
	s.probers = s.probers[:n]
	s.bulkSteps = s.bulkSteps[:n]
}

// clique sizes the clique-cover accelerator buffers for count cliques.
func (s *scratch) clique(count int) ([]int32, []graph.NodeID) {
	if cap(s.cliqueTx) < count {
		s.cliqueTx = make([]int32, count)
		s.cliqueS = make([]graph.NodeID, count)
	}
	return s.cliqueTx[:count], s.cliqueS[:count]
}

// txBitmap sizes the round transmitter bitmap for w words. deliverBitmap
// clears it before every fill, so no cross-trial clear is needed here.
func (s *scratch) txBitmap(w int) []uint64 {
	if cap(s.txWords) < w {
		s.txWords = make([]uint64, w)
	}
	return s.txWords[:w]
}

// staticMask sizes the combined static-selector mask slab: n rows of w
// words. The engine overwrites every word when it builds the mask
// (buildStaticRows copies the G rows then ORs in selected edges), so no
// cross-trial clear is needed here.
func (s *scratch) staticMask(n, w int) []uint64 {
	if cap(s.selMask) < n*w {
		s.selMask = make([]uint64, n*w)
	}
	return s.selMask[:n*w]
}

// arenaMatch returns the pooled process slab if it was built by the same
// factory for an identical configuration, nil otherwise.
func (s *scratch) arenaMatch(cfg Config, n int) []Process {
	if s.arenaProcs == nil || len(s.arenaProcs) != n ||
		s.arenaNet != cfg.Net || s.arenaAlg != cfg.Algorithm.Name() ||
		s.arenaProb != cfg.Spec.Problem || s.arenaSrc != cfg.Spec.Source ||
		!slices.Equal(s.arenaB, cfg.Spec.Broadcasters) ||
		!slices.Equal(s.arenaS, cfg.Spec.Sources) ||
		!slices.Equal(s.arenaInj, cfg.Spec.Injections) {
		return nil
	}
	return s.arenaProcs
}

// arenaStore records a freshly built slab and the configuration it belongs
// to. Spec slices are copied into scratch-owned storage.
func (s *scratch) arenaStore(cfg Config, procs []Process) {
	s.arenaProcs = procs
	s.arenaAlg = cfg.Algorithm.Name()
	s.arenaNet = cfg.Net
	s.arenaProb = cfg.Spec.Problem
	s.arenaSrc = cfg.Spec.Source
	s.arenaB = append(s.arenaB[:0], cfg.Spec.Broadcasters...)
	s.arenaS = append(s.arenaS[:0], cfg.Spec.Sources...)
	s.arenaInj = append(s.arenaInj[:0], cfg.Spec.Injections...)
}

// arenaDrop discards the slab (a reset attempt failed; it may be
// half-mutated).
func (s *scratch) arenaDrop() {
	s.arenaProcs = nil
	s.arenaNet = nil
	s.arenaAlg = ""
}

// rumor sizes the gossip monitor's n×k round-stamp matrix: row views over
// one flat backing array, both resized in place on reuse. Rows are capped so
// an append on one row can never bleed into the next. The monitor clears the
// entries itself.
func (s *scratch) rumor(n, k int) [][]int {
	if cap(s.monRumor) < n*k {
		s.monRumor = make([]int, n*k)
	}
	s.monRumor = s.monRumor[:n*k]
	if cap(s.monRows) < n {
		s.monRows = make([][]int, n)
	}
	s.monRows = s.monRows[:n]
	for u := 0; u < n; u++ {
		s.monRows[u] = s.monRumor[u*k : (u+1)*k : (u+1)*k]
	}
	return s.monRows
}
