package radio

import (
	"sync"

	"repro/internal/bitrand"
	"repro/internal/graph"
)

// scratch holds every reusable per-execution buffer of the engine. The
// experiment harness runs tens of thousands of short trials; allocating
// these Θ(n) buffers (and one rng Source per node) for each trial dominated
// the allocation profile, so completed executions return their scratch to a
// pool and the next trial reuses it. grow re-clears everything an execution
// reads before writing, so pooling never leaks state between trials.
type scratch struct {
	txFlag   []bool
	counts   []int32
	from     []graph.NodeID
	touched  []graph.NodeID
	tx       []graph.NodeID
	msgOf    []*Message
	probs    []float64
	lastTx   []graph.NodeID
	txByNode []int64
	// noise[u] is the messageless transmission delivered when a process
	// transmits with a nil Msg. Its content is a pure function of the index
	// (Origin: u), so reusing the entries across trials is observationally
	// identical to allocating fresh ones.
	noise []Message

	// clique-cover accelerator buffers, sized by the cover count on demand.
	cliqueTx []int32
	cliqueS  []graph.NodeID

	// monitor backing stores: the round-stamp slice shared by the global and
	// local monitors, and the local monitor's two membership sets.
	monInts []int
	monB    []bool
	monR    []bool
	// pooled monitor structs (the gossip monitor allocates per run: its
	// buffers are keyed by rumor count, not n).
	globalMon globalMonitor
	localMon  localMonitor

	// per-node rng storage: nodeRngs[u] points into rngBlock, reseeded per
	// execution.
	nodeRngs []*bitrand.Source
	rngBlock []bitrand.Source

	// recorder delivery buffer, reused each round; handed to Recorder.Record
	// and valid only during the call.
	recordBuf []Delivery
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// getScratch takes a scratch from the pool sized and cleared for n nodes.
func getScratch(n int) *scratch {
	s := scratchPool.Get().(*scratch)
	s.grow(n)
	return s
}

// putScratch returns a scratch for reuse.
func putScratch(s *scratch) { scratchPool.Put(s) }

// grow sizes every buffer for n nodes and clears the state an execution
// relies on: transmit flags and counts at zero, transmission tallies at
// zero, no retained message pointers, and membership sets empty.
func (s *scratch) grow(n int) {
	if cap(s.txFlag) < n {
		s.txFlag = make([]bool, n)
		s.counts = make([]int32, n)
		s.from = make([]graph.NodeID, n)
		s.touched = make([]graph.NodeID, 0, n)
		s.tx = make([]graph.NodeID, 0, n)
		s.msgOf = make([]*Message, n)
		s.probs = make([]float64, n)
		s.lastTx = make([]graph.NodeID, 0, n)
		s.txByNode = make([]int64, n)
		s.noise = make([]Message, n)
		s.monInts = make([]int, n)
		s.monB = make([]bool, n)
		s.monR = make([]bool, n)
		s.rngBlock = make([]bitrand.Source, n)
		s.nodeRngs = make([]*bitrand.Source, n)
		for u := range s.noise {
			s.noise[u] = Message{Origin: u}
			s.nodeRngs[u] = &s.rngBlock[u]
		}
		return
	}
	s.txFlag = s.txFlag[:n]
	clear(s.txFlag)
	s.counts = s.counts[:n]
	clear(s.counts)
	s.from = s.from[:n]
	s.touched = s.touched[:0]
	s.tx = s.tx[:0]
	// Clear message pointers over the full capacity, not just [:n]: a
	// scratch last used for a larger network must not pin that trial's
	// messages (and payloads) while it cycles through the pool.
	clear(s.msgOf[:cap(s.msgOf)])
	s.msgOf = s.msgOf[:n]
	s.probs = s.probs[:n]
	s.lastTx = s.lastTx[:0]
	s.txByNode = s.txByNode[:n]
	clear(s.txByNode)
	s.noise = s.noise[:n]
	s.monInts = s.monInts[:n]
	s.monB = s.monB[:n]
	clear(s.monB)
	s.monR = s.monR[:n]
	clear(s.monR)
	s.rngBlock = s.rngBlock[:n]
	s.nodeRngs = s.nodeRngs[:n]
}

// clique sizes the clique-cover accelerator buffers for count cliques.
func (s *scratch) clique(count int) ([]int32, []graph.NodeID) {
	if cap(s.cliqueTx) < count {
		s.cliqueTx = make([]int32, count)
		s.cliqueS = make([]graph.NodeID, count)
	}
	return s.cliqueTx[:count], s.cliqueS[:count]
}
