package radio_test

import (
	"reflect"
	"testing"

	"repro/internal/bitrand"
	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/radio"
)

// plainAlg hides an algorithm's ProcessFactory implementation: only Name and
// NewProcesses promote, so the engine's arena never engages and every trial
// builds a fresh slab. Running the same seeds through both wrappers is the
// arena's observational-equivalence oracle.
type plainAlg struct{ radio.Algorithm }

// TestProcessArenaMatchesFresh runs every ProcessFactory algorithm through
// repeated same-config trials twice — once with the arena engaged, once
// forced down the NewProcesses path — and requires identical Results,
// including the per-node round stamps. Repeats of each seed make sure reset
// slabs, not just fresh ones, are exercised.
func TestProcessArenaMatchesFresh(t *testing.T) {
	geo := graph.GeographicGrid(bitrand.New(5), 5, 5, 0.7, 1.5)
	dc, _ := graph.DualClique(24, 3)
	var broadcasters []graph.NodeID
	for u := 0; u < geo.N(); u += 3 {
		broadcasters = append(broadcasters, u)
	}
	le := gossip.LeaderElect{RankSeed: 7}

	cases := []struct {
		name string
		alg  radio.Algorithm
		net  *graph.Dual
		spec radio.Spec
	}{
		{"decay-global", core.DecayGlobal{}, geo, radio.Spec{Problem: radio.GlobalBroadcast, Source: 0}},
		{"decay-global/dual-clique", core.DecayGlobal{}, dc, radio.Spec{Problem: radio.GlobalBroadcast, Source: 1}},
		{"permuted-global", core.PermutedGlobal{}, geo, radio.Spec{Problem: radio.GlobalBroadcast, Source: 2}},
		{"decay-local", core.DecayLocal{}, geo, radio.Spec{Problem: radio.LocalBroadcast, Broadcasters: broadcasters}},
		{"aloha", core.Aloha{P: 0.3}, geo, radio.Spec{Problem: radio.LocalBroadcast, Broadcasters: broadcasters}},
		{"permuted-local-uncoordinated", core.PermutedLocalUncoordinated{}, geo, radio.Spec{Problem: radio.LocalBroadcast, Broadcasters: broadcasters}},
		{"round-robin", core.RoundRobin{}, geo, radio.Spec{Problem: radio.LocalBroadcast, Broadcasters: broadcasters}},
		{"geo-local", core.GeoLocal{}, geo, radio.Spec{Problem: radio.LocalBroadcast, Broadcasters: broadcasters}},
		{"gossip-tdm", gossip.TDM{}, geo, radio.Spec{Problem: radio.Gossip, Sources: []graph.NodeID{0, 7, 13}}},
		{"gossip-tdm/injected", gossip.TDM{}, geo, radio.Spec{Problem: radio.Gossip,
			Sources: []graph.NodeID{0, 7}, Injections: []radio.Injection{{Source: 3, Round: 17}}}},
		{"leader-elect", le, geo, radio.Spec{Problem: radio.GlobalBroadcast, Source: le.Leader(geo.N())}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, ok := tc.alg.(radio.ProcessFactory); !ok {
				t.Fatalf("%s does not implement radio.ProcessFactory", tc.alg.Name())
			}
			run := func(alg radio.Algorithm, seed uint64) radio.Result {
				res, err := radio.Run(radio.Config{
					Net:       tc.net,
					Algorithm: alg,
					Spec:      tc.spec,
					Seed:      seed,
					MaxRounds: 400,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			// Two passes over the same seed sequence: the first pass fills
			// the arena, the second hits it on every trial. The plain
			// sequence rebuilds processes each time.
			seeds := []uint64{11, 12, 13, 11, 12, 13}
			for _, seed := range seeds {
				arena := run(tc.alg, seed)
				fresh := run(plainAlg{tc.alg}, seed)
				if !reflect.DeepEqual(arena, fresh) {
					t.Fatalf("seed %d: arena result diverged from fresh result\narena: %+v\nfresh: %+v", seed, arena, fresh)
				}
			}
		})
	}
}

// TestArenaKeyedByConfig interleaves two different configurations of the
// same algorithm on one goroutine (so trials contend for the same pooled
// scratch) and checks each still matches its solo sequence: a slab built for
// one config must never leak state into the other.
func TestArenaKeyedByConfig(t *testing.T) {
	netA := graph.UniformDual(graph.Line(20))
	netB, _ := graph.DualClique(20, 2)
	mk := func(net *graph.Dual, source graph.NodeID, seed uint64) radio.Config {
		return radio.Config{
			Net:       net,
			Algorithm: core.DecayGlobal{},
			Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: source},
			Seed:      seed,
			MaxRounds: 400,
		}
	}
	solo := func(cfgs ...radio.Config) []radio.Result {
		out := make([]radio.Result, len(cfgs))
		for i, cfg := range cfgs {
			res, err := radio.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = res
		}
		return out
	}
	wantA := solo(mk(netA, 0, 1), mk(netA, 0, 2), mk(netA, 0, 3))
	wantB := solo(mk(netB, 5, 1), mk(netB, 5, 2), mk(netB, 5, 3))
	var gotA, gotB []radio.Result
	for i := 0; i < 3; i++ {
		gotA = append(gotA, solo(mk(netA, 0, uint64(i+1)))...)
		gotB = append(gotB, solo(mk(netB, 5, uint64(i+1)))...)
	}
	if !reflect.DeepEqual(gotA, wantA) || !reflect.DeepEqual(gotB, wantB) {
		t.Fatal("interleaved configurations diverged from solo sequences")
	}
}
