package radio_test

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/radio"
)

// TestSingleEpochMatchesStatic pins the static-path regression contract at
// the engine level: a one-epoch schedule is byte-identical to passing the
// same network as Config.Net, across seeds and algorithms.
func TestSingleEpochMatchesStatic(t *testing.T) {
	dc, _ := graph.DualClique(32, 3)
	grid := graph.UniformDual(graph.Grid(5, 5))
	cases := []struct {
		name string
		net  *graph.Dual
		alg  radio.Algorithm
		spec radio.Spec
	}{
		{"decay/dual-clique", dc, core.DecayGlobal{}, radio.Spec{Problem: radio.GlobalBroadcast, Source: 1}},
		{"tdm/grid", grid, gossip.TDM{}, radio.Spec{Problem: radio.Gossip, Sources: []graph.NodeID{0, 12}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 5; seed++ {
				static, err := radio.Run(radio.Config{
					Net: tc.net, Algorithm: tc.alg, Spec: tc.spec, Seed: seed, MaxRounds: 2000,
				})
				if err != nil {
					t.Fatal(err)
				}
				epoch, err := radio.Run(radio.Config{
					Epochs:    []radio.Epoch{{Start: 0, Net: tc.net}},
					Algorithm: tc.alg, Spec: tc.spec, Seed: seed, MaxRounds: 2000,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(static, epoch) {
					t.Fatalf("seed %d: single-epoch result differs from static\nstatic: %+v\nepoch:  %+v", seed, static, epoch)
				}
			}
		})
	}
}

// TestEpochSwapChangesTopology uses a 3-node line whose middle link exists
// only in the second epoch: under round-robin the message cannot cross until
// the swap, so the completion round proves the engine really switched its
// hoisted CSR views.
func TestEpochSwapChangesTopology(t *testing.T) {
	// Epoch 0: G = {0-1}; node 2 isolated. Epoch 1 (round 8): G adds {1-2}.
	b0 := graph.NewBuilder(3)
	b0.AddEdge(0, 1)
	net0 := graph.UniformDual(b0.Build())
	rev, err := graph.NewRevision(net0).Apply([]graph.ChurnOp{{Kind: graph.ChurnAddEdge, U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := radio.Config{
		Epochs:    []radio.Epoch{{Start: 0, Net: net0}, {Start: 8, Net: rev.Dual()}},
		Algorithm: core.RoundRobin{},
		Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
		Seed:      1,
		MaxRounds: 64,
	}
	res, err := radio.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("broadcast unsolved after the joining epoch: %+v", res)
	}
	if res.InformedAt[2] < 8 {
		t.Fatalf("node 2 informed at round %d, before the epoch-1 link existed", res.InformedAt[2])
	}
	// Without the second epoch the run must be censored at MaxRounds.
	staticRes, err := radio.Run(radio.Config{
		Net: net0, Algorithm: core.RoundRobin{}, Spec: cfg.Spec, Seed: 1, MaxRounds: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if staticRes.Solved {
		t.Fatal("static epoch-0 topology should never inform the isolated node")
	}
}

// TestEpochScheduleValidation exercises the schedule validation errors.
func TestEpochScheduleValidation(t *testing.T) {
	net := graph.UniformDual(graph.Line(4))
	other := graph.UniformDual(graph.Line(5))
	spec := radio.Spec{Problem: radio.GlobalBroadcast, Source: 0}
	for name, cfg := range map[string]radio.Config{
		"nonzero-first-start": {Epochs: []radio.Epoch{{Start: 3, Net: net}}},
		"nil-epoch-net":       {Epochs: []radio.Epoch{{Start: 0, Net: net}, {Start: 4, Net: nil}}},
		"vertex-set-changes":  {Epochs: []radio.Epoch{{Start: 0, Net: net}, {Start: 4, Net: other}}},
		"non-increasing":      {Epochs: []radio.Epoch{{Start: 0, Net: net}, {Start: 4, Net: net}, {Start: 4, Net: net}}},
		"conflicting-net":     {Net: other, Epochs: []radio.Epoch{{Start: 0, Net: net}}},
		"injection-non-gossip": {Net: net,
			Spec: radio.Spec{Problem: radio.GlobalBroadcast, Injections: []radio.Injection{{Source: 1, Round: 2}}}},
	} {
		cfg := cfg
		cfg.Algorithm = core.RoundRobin{}
		if cfg.Spec.Problem == 0 {
			cfg.Spec = spec
		}
		if _, err := radio.Run(cfg); err == nil {
			t.Errorf("%s: accepted, want error", name)
		}
	}
}

// TestGossipInjection runs TDM with one initial and one injected rumor on a
// clique and checks the injection contract end to end: nobody holds the
// injected rumor before its round, the origin is stamped at exactly the
// injection round, and the per-rumor completion fields line up with RumorAt.
func TestGossipInjection(t *testing.T) {
	net := graph.UniformDual(graph.Clique(12))
	const injRound = 40
	spec := radio.Spec{
		Problem:    radio.Gossip,
		Sources:    []graph.NodeID{0},
		Injections: []radio.Injection{{Source: 5, Round: injRound}},
	}
	res, err := radio.Run(radio.Config{
		Net: net, Algorithm: gossip.TDM{}, Spec: spec, Seed: 9, MaxRounds: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("gossip with injection unsolved: %+v", res)
	}
	if want := []int{0, injRound}; !reflect.DeepEqual(res.RumorStartAt, want) {
		t.Fatalf("RumorStartAt = %v, want %v", res.RumorStartAt, want)
	}
	if res.RumorAt[5][1] != injRound {
		t.Fatalf("injected origin stamped at %d, want %d", res.RumorAt[5][1], injRound)
	}
	done := -1
	for u := range res.RumorAt {
		at := res.RumorAt[u][1]
		if u != 5 && at != -1 && at <= injRound {
			t.Fatalf("node %d held the injected rumor at round %d, before injection round %d", u, at, injRound)
		}
		if at > done {
			done = at
		}
	}
	if res.RumorDoneAt[1] != done {
		t.Fatalf("RumorDoneAt[1] = %d, want max stamp %d", res.RumorDoneAt[1], done)
	}
	if res.RumorDoneAt[0] < 0 || res.RumorDoneAt[0] > res.Rounds {
		t.Fatalf("RumorDoneAt[0] = %d out of range", res.RumorDoneAt[0])
	}
}

// TestGossipInjectionRejectsOverlap checks the one-rumor-per-node rule.
func TestGossipInjectionRejectsOverlap(t *testing.T) {
	net := graph.UniformDual(graph.Clique(6))
	for _, spec := range []radio.Spec{
		{Problem: radio.Gossip, Sources: []graph.NodeID{0},
			Injections: []radio.Injection{{Source: 0, Round: 4}}},
		{Problem: radio.Gossip, Sources: []graph.NodeID{0},
			Injections: []radio.Injection{{Source: 2, Round: 4}, {Source: 2, Round: 9}}},
		{Problem: radio.Gossip, Sources: []graph.NodeID{0},
			Injections: []radio.Injection{{Source: 1, Round: -3}}},
	} {
		if _, err := radio.Run(radio.Config{Net: net, Algorithm: gossip.TDM{}, Spec: spec, Seed: 1}); err == nil {
			t.Errorf("spec %+v accepted, want error", spec)
		}
	}
}

// TestGossipInjectionRejectsBeyondBudget pins the round-budget rule: an
// injection at or beyond MaxRounds would count toward completion while never
// entering the system, silently censoring every trial — the engine rejects
// it up front instead. The round just inside the budget is accepted.
func TestGossipInjectionRejectsBeyondBudget(t *testing.T) {
	net := graph.UniformDual(graph.Clique(6))
	mk := func(round, budget int) radio.Config {
		return radio.Config{
			Net: net, Algorithm: gossip.TDM{}, Seed: 1, MaxRounds: budget,
			Spec: radio.Spec{Problem: radio.Gossip, Sources: []graph.NodeID{0},
				Injections: []radio.Injection{{Source: 3, Round: round}}},
		}
	}
	for _, round := range []int{50, 51, 80} {
		_, err := radio.Run(mk(round, 50))
		if !errors.Is(err, radio.ErrBadConfig) {
			t.Errorf("injection at round %d of a 50-round budget: got %v, want ErrBadConfig", round, err)
		}
	}
	if _, err := radio.Run(mk(49, 50)); err != nil {
		t.Errorf("injection at round 49 of a 50-round budget rejected: %v", err)
	}
	// The default budget (64·n²) applies before validation, so an in-range
	// injection with MaxRounds 0 still runs.
	if _, err := radio.Run(mk(100, 0)); err != nil {
		t.Errorf("injection under the default budget rejected: %v", err)
	}
}
