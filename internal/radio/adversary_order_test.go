package radio

import (
	"math"
	"testing"

	"repro/internal/bitrand"
	"repro/internal/graph"
)

// countingOblivious records how many times CommitSchedule is invoked.
type countingOblivious struct {
	commits int
	rounds  []int
}

func (c *countingOblivious) CommitSchedule(env *Env) Schedule {
	c.commits++
	return ScheduleFunc(func(r int) graph.EdgeSelector {
		c.rounds = append(c.rounds, r)
		return graph.SelectNone{}
	})
}

func TestObliviousCommittedExactlyOnce(t *testing.T) {
	link := &countingOblivious{}
	_, err := Run(Config{
		Net:       lineDual(4),
		Algorithm: coinAlg{p: 0.5},
		Spec:      Spec{Problem: GlobalBroadcast, Source: 0},
		Link:      link,
		Seed:      1,
		MaxRounds: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if link.commits != 1 {
		t.Fatalf("CommitSchedule called %d times, want 1", link.commits)
	}
	if len(link.rounds) == 0 || link.rounds[0] != 0 {
		t.Fatalf("schedule queried rounds %v", link.rounds)
	}
}

// probCheckOnline verifies that the online adaptive view carries exact
// state-determined probabilities and no realized-coin information.
type probCheckOnline struct {
	t        *testing.T
	expected float64 // per informed node
	calls    int
}

func (o *probCheckOnline) ChooseOnline(env *Env, view *View) graph.EdgeSelector {
	o.calls++
	for _, p := range view.TransmitProbs {
		if p != 0 && math.Abs(p-o.expected) > 1e-12 {
			o.t.Fatalf("round %d: prob %v, want 0 or %v", view.Round, p, o.expected)
		}
	}
	if view.Round > 0 && view.LastTransmitters == nil {
		// LastTransmitters may legitimately be empty but not nil after
		// round 0 when someone transmitted earlier; we don't assert
		// non-nil strictly, only that probs are consistent.
		_ = view
	}
	return graph.SelectNone{}
}

func TestOnlineAdaptiveSeesProbs(t *testing.T) {
	link := &probCheckOnline{t: t, expected: 0.4}
	_, err := Run(Config{
		Net:       lineDual(5),
		Algorithm: coinAlg{p: 0.4},
		Spec:      Spec{Problem: GlobalBroadcast, Source: 0},
		Link:      link,
		Seed:      3,
		MaxRounds: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if link.calls == 0 {
		t.Fatal("online adversary never consulted")
	}
}

// txCheckOffline verifies the offline adaptive adversary sees the realized
// transmitter set matching what was actually transmitted.
type txCheckOffline struct {
	t    *testing.T
	seen [][]graph.NodeID
}

func (o *txCheckOffline) ChooseOffline(env *Env, view *View, tx []graph.NodeID) graph.EdgeSelector {
	cp := append([]graph.NodeID(nil), tx...)
	o.seen = append(o.seen, cp)
	// Realized transmitters must be a subset of nodes with positive
	// probability.
	for _, u := range tx {
		if view.TransmitProbs[u] <= 0 {
			o.t.Fatalf("round %d: node %d transmitted with prob 0", view.Round, u)
		}
	}
	return graph.SelectNone{}
}

func TestOfflineAdaptiveSeesTransmitters(t *testing.T) {
	link := &txCheckOffline{t: t}
	res, err := Run(Config{
		Net:       lineDual(5),
		Algorithm: coinAlg{p: 0.7},
		Spec:      Spec{Problem: GlobalBroadcast, Source: 0},
		Link:      link,
		Seed:      9,
		MaxRounds: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, tx := range link.seen {
		total += len(tx)
	}
	if int64(total) != res.Transmissions {
		t.Fatalf("offline adversary saw %d transmissions, engine counted %d", total, res.Transmissions)
	}
}

func TestSumTransmitProbs(t *testing.T) {
	v := &View{TransmitProbs: []float64{0.5, -1, 0.25, 0}}
	if got := v.SumTransmitProbs(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("SumTransmitProbs = %v, want 0.75", got)
	}
}

func TestRecorderCapturesRounds(t *testing.T) {
	rec := &MemRecorder{}
	_, err := Run(Config{
		Net:       lineDual(4),
		Algorithm: relayAlg{},
		Spec:      Spec{Problem: GlobalBroadcast, Source: 0},
		Recorder:  rec,
		MaxRounds: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Rounds) != 3 {
		t.Fatalf("recorded %d rounds, want 3 (line of 4 floods in 3)", len(rec.Rounds))
	}
	if len(rec.Rounds[0].Transmitters) != 1 || rec.Rounds[0].Transmitters[0] != 0 {
		t.Fatalf("round 0 transmitters = %v", rec.Rounds[0].Transmitters)
	}
	if len(rec.Rounds[0].Deliveries) != 1 || rec.Rounds[0].Deliveries[0] != (Delivery{To: 1, From: 0}) {
		t.Fatalf("round 0 deliveries = %v", rec.Rounds[0].Deliveries)
	}
	if rec.Rounds[0].SelectorKind != "none" {
		t.Fatalf("selector kind = %q", rec.Rounds[0].SelectorKind)
	}
	if rec.TransmissionsIn(0, 3) != 1+2+3 {
		t.Fatalf("TransmissionsIn = %d", rec.TransmissionsIn(0, 3))
	}
}

// epochViewOnline records, per round, which topology and epoch index the
// adaptive view carried, and checks the Env contract: Net pinned to the
// base, Epochs carrying the full schedule.
type epochViewOnline struct {
	t      *testing.T
	epochs []Epoch
	nets   []*graph.Dual
}

func (o *epochViewOnline) ChooseOnline(env *Env, view *View) graph.EdgeSelector {
	if env.Net != o.epochs[0].Net {
		o.t.Fatalf("round %d: Env.Net is not the epoch-0 base network", view.Round)
	}
	if len(env.Epochs) != len(o.epochs) || env.Epochs[0].Net != o.epochs[0].Net {
		o.t.Fatalf("round %d: Env.Epochs does not carry the schedule", view.Round)
	}
	want := 0
	for i, ep := range o.epochs {
		if view.Round >= ep.Start {
			want = i
		}
	}
	if view.EpochIdx != want {
		o.t.Fatalf("round %d: view.EpochIdx = %d, want %d", view.Round, view.EpochIdx, want)
	}
	if view.Net != o.epochs[want].Net {
		o.t.Fatalf("round %d: view.Net is not epoch %d's network", view.Round, want)
	}
	o.nets = append(o.nets, view.Net)
	return graph.SelectNone{}
}

// TestAdaptiveViewTracksEpochs pins the epoch-aware visibility contract for
// adaptive links: a multi-epoch run hands them the post-swap network (and
// epoch index) through the View every round, while Env.Net stays the base.
func TestAdaptiveViewTracksEpochs(t *testing.T) {
	net0 := lineDual(4)
	rev, err := graph.NewRevision(net0).Apply([]graph.ChurnOp{{Kind: graph.ChurnRemoveEdge, U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	epochs := []Epoch{{Start: 0, Net: net0}, {Start: 5, Net: rev.Dual()}, {Start: 11, Net: net0}}
	link := &epochViewOnline{t: t, epochs: epochs}
	_, err = Run(Config{
		Epochs:           epochs,
		Algorithm:        coinAlg{p: 0.5},
		Spec:             Spec{Problem: GlobalBroadcast, Source: 0},
		Link:             link,
		Seed:             7,
		MaxRounds:        16,
		IgnoreCompletion: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(link.nets) != 16 {
		t.Fatalf("online adversary consulted %d times, want 16", len(link.nets))
	}
	// The observed topology must actually change at each swap boundary.
	if link.nets[4] != net0 || link.nets[5] != rev.Dual() || link.nets[10] != rev.Dual() || link.nets[11] != net0 {
		t.Fatal("view.Net did not track the swap boundaries")
	}
}

// scheduleCheckOblivious asserts the oblivious side of the same boundary:
// CommitSchedule runs once, before round 1, and already sees the full epoch
// schedule in its Env — commitment against churn, not observation of it.
type scheduleCheckOblivious struct {
	t      *testing.T
	epochs []Epoch
	seen   bool
}

func (c *scheduleCheckOblivious) CommitSchedule(env *Env) Schedule {
	c.seen = true
	if len(env.Epochs) != len(c.epochs) {
		c.t.Fatalf("CommitSchedule saw %d epochs, want %d", len(env.Epochs), len(c.epochs))
	}
	for i, ep := range env.Epochs {
		if ep.Net != c.epochs[i].Net || ep.Start != c.epochs[i].Start {
			c.t.Fatalf("CommitSchedule epoch %d differs from the configured schedule", i)
		}
	}
	if env.Net != c.epochs[0].Net {
		c.t.Fatal("CommitSchedule Env.Net is not the epoch-0 base")
	}
	return StaticSchedule{Selector: graph.SelectNone{}}
}

func TestObliviousCommitSeesSchedule(t *testing.T) {
	net0 := lineDual(4)
	rev, err := graph.NewRevision(net0).Apply([]graph.ChurnOp{{Kind: graph.ChurnAddEdge, U: 0, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	epochs := []Epoch{{Start: 0, Net: net0}, {Start: 4, Net: rev.Dual()}}
	link := &scheduleCheckOblivious{t: t, epochs: epochs}
	_, err = Run(Config{
		Epochs:    epochs,
		Algorithm: coinAlg{p: 0.5},
		Spec:      Spec{Problem: GlobalBroadcast, Source: 0},
		Link:      link,
		Seed:      3,
		MaxRounds: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !link.seen {
		t.Fatal("oblivious adversary never committed")
	}
}

// hashLink is an oblivious link process including each extra edge with
// probability p, decided by a hash of (seed, round, edge) — deterministic
// and committed by construction.
type hashLink struct {
	p    float64
	seed uint64
}

func (h hashLink) CommitSchedule(env *Env) Schedule {
	seed := h.seed
	return ScheduleFunc(func(r int) graph.EdgeSelector {
		return graph.SelectFunc{F: func(u, v graph.NodeID) bool {
			k := graph.MakeEdgeKey(u, v)
			s := bitrand.New(seed^uint64(r)*0x9e3779b97f4a7c15).Split(uint64(k.U), uint64(k.V))
			return s.Coin(h.p)
		}}
	})
}

func TestCliqueCoverEquivalence(t *testing.T) {
	// The accelerated and generic delivery paths must produce identical
	// executions on clique-heavy and random dual graphs.
	src := bitrand.New(42)
	nets := []*graph.Dual{}
	d1, _ := graph.DualClique(16, 2)
	nets = append(nets, d1)
	d2, _ := graph.Bracelet(64, 1)
	nets = append(nets, d2)
	nets = append(nets, graph.RandomDual(src, graph.Ring(20), 0.2))

	for i, net := range nets {
		for seed := uint64(0); seed < 5; seed++ {
			run := func(accel bool) Result {
				res, err := Run(Config{
					Net:            net,
					Algorithm:      coinAlg{p: 0.3},
					Spec:           Spec{Problem: GlobalBroadcast, Source: 0},
					Link:           hashLink{p: 0.5, seed: seed},
					Seed:           seed,
					MaxRounds:      120,
					UseCliqueCover: accel,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			plain, fast := run(false), run(true)
			if plain.Rounds != fast.Rounds || plain.Transmissions != fast.Transmissions ||
				plain.Deliveries != fast.Deliveries || plain.Solved != fast.Solved {
				t.Fatalf("net %d seed %d: accel mismatch: %+v vs %+v", i, seed, plain, fast)
			}
			for u := range plain.InformedAt {
				if plain.InformedAt[u] != fast.InformedAt[u] {
					t.Fatalf("net %d seed %d: InformedAt[%d] differs", i, seed, u)
				}
			}
		}
	}
}

func TestCompleteFastPathEquivalence(t *testing.T) {
	// On a complete-G' network, SelectAll triggers the fast path; the
	// semantically identical all-true SelectFunc takes the generic path.
	// Executions must match exactly.
	d, _ := graph.DualClique(12, 0)
	type allFunc struct{}
	run := func(fast bool) Result {
		var sel graph.EdgeSelector = graph.SelectAll{}
		if !fast {
			sel = graph.SelectFunc{F: func(u, v graph.NodeID) bool { return true }}
		}
		res, err := Run(Config{
			Net:       d,
			Algorithm: coinAlg{p: 0.4},
			Spec:      Spec{Problem: GlobalBroadcast, Source: 0},
			Link:      staticOblivious{sel: sel},
			Seed:      11,
			MaxRounds: 400,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	_ = allFunc{}
	a, b := run(true), run(false)
	if a.Rounds != b.Rounds || a.Transmissions != b.Transmissions || a.Deliveries != b.Deliveries {
		t.Fatalf("fast path diverges from generic path: %+v vs %+v", a, b)
	}
}

func TestNilLinkMeansProtocolModel(t *testing.T) {
	// With Link nil, extra edges never appear: node 2 in extraDual never
	// receives over the (0,2) G' edge.
	alg := &scriptAlg{plans: map[graph.NodeID]map[int]bool{0: {0: true}}}
	_, err := Run(Config{
		Net:       extraDual(),
		Algorithm: alg,
		Spec:      Spec{Problem: GlobalBroadcast, Source: 0},
		MaxRounds: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if alg.procs[2].got[0] != nil {
		t.Fatal("protocol model must not use G'-only edges")
	}
}
