package radio

import (
	"runtime"
	"testing"
)

func TestScratchClass(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, scratchMinClass},
		{64, scratchMinClass},
		{65, 7},
		{100, 7},
		{128, 7},
		{129, 8},
		{1 << scratchMaxClass, scratchMaxClass},
		{1<<scratchMaxClass + 1, scratchMaxClass + 1},
	}
	for _, c := range cases {
		if got := scratchClass(c.n); got != c.want {
			t.Errorf("scratchClass(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

// TestScratchPoolClasses pins the size-class pooling contract: same-class
// checkouts reuse the released scratch, oversized scratches are never
// pooled, and an oversized static-selector mask slab is dropped on release
// even when the scratch itself stays pooled.
func TestScratchPoolClasses(t *testing.T) {
	// sync.Pool reuse is only deterministic on a single P (per-P private
	// slot, no GC between Put and Get).
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))

	// Same class (7 covers 65..128): the released scratch comes straight
	// back, regrown for the new n.
	s1 := getScratch(100)
	if s1.class != 7 {
		t.Fatalf("getScratch(100).class = %d, want 7", s1.class)
	}
	putScratch(s1)
	s2 := getScratch(128)
	if s2 != s1 {
		t.Errorf("same-class checkout did not reuse the pooled scratch")
	}
	if len(s2.txFlag) != 128 {
		t.Errorf("reused scratch sized for %d nodes, want 128", len(s2.txFlag))
	}

	// Different class: a class-12 checkout must not see the class-7 scratch.
	putScratch(s2)
	s3 := getScratch(4096)
	if s3 == s2 {
		t.Errorf("cross-class checkout returned a scratch from another class pool")
	}
	if s3.class != 12 {
		t.Errorf("getScratch(4096).class = %d, want 12", s3.class)
	}
	putScratch(s3)

	// Million-node trials land in the top pooled class (the PR 9 huge-class
	// policy: SCALE-n at n = 10⁶ must reuse its slabs across trials instead
	// of churning ~50 MB of fresh allocation per trial).
	mega := getScratch(1_000_000)
	if mega.class != 20 {
		t.Fatalf("getScratch(1e6).class = %d, want 20", mega.class)
	}
	putScratch(mega)
	mega2 := getScratch(1 << 20)
	if mega2 != mega {
		t.Errorf("million-node checkout did not reuse the pooled class-20 scratch")
	}
	putScratch(mega2)

	// Oversized (beyond scratchMaxClass): never pooled in either direction.
	huge := getScratch(1<<scratchMaxClass + 1)
	if huge.class != -1 {
		t.Fatalf("oversized scratch class = %d, want -1", huge.class)
	}
	putScratch(huge)
	huge2 := getScratch(1<<scratchMaxClass + 1)
	if huge2 == huge {
		t.Errorf("oversized scratch was pooled; it must go to the GC")
	}

	// An oversized mask slab is dropped on release; the scratch itself
	// stays pooled.
	s4 := getScratch(100)
	s4.selMask = make([]uint64, maxPooledMaskWords+1)
	putScratch(s4)
	if s4.selMask != nil {
		t.Errorf("oversized selMask survived putScratch; it must be dropped")
	}
	s5 := getScratch(100)
	if s5 != s4 {
		t.Errorf("scratch with dropped mask slab was not pooled")
	}
	putScratch(s5)
}
