package radio

import (
	"fmt"

	"repro/internal/graph"
)

// monitor tracks problem completion during an execution.
type monitor interface {
	// observe is called for every successful delivery.
	observe(round int, to graph.NodeID, msg *Message)
	// done reports whether the problem is solved.
	done() bool
	// progress returns the number of problem-relevant deliveries so far.
	progress() int
}

// globalMonitor tracks global broadcast: every node must hold the source
// message. A node holds it after receiving any message originating at the
// source (relays preserve Origin); the source holds it from the start.
type globalMonitor struct {
	source     graph.NodeID
	informedAt []int
	remaining  int
}

// newGlobalMonitor builds the monitor over the scratch's pooled buffers; the
// monitor is only valid until the owning engine releases its scratch.
func newGlobalMonitor(n int, source graph.NodeID, sc *scratch) (*globalMonitor, error) {
	if source < 0 || source >= n {
		return nil, fmt.Errorf("radio: global broadcast source %d out of range [0,%d)", source, n)
	}
	m := &sc.globalMon
	*m = globalMonitor{source: source, informedAt: sc.monInts, remaining: n - 1}
	for i := range m.informedAt {
		m.informedAt[i] = -1
	}
	m.informedAt[source] = 0
	return m, nil
}

func (m *globalMonitor) observe(round int, to graph.NodeID, msg *Message) {
	if msg.Origin != m.source || m.informedAt[to] != -1 {
		return
	}
	m.informedAt[to] = round
	m.remaining--
}

func (m *globalMonitor) done() bool { return m.remaining == 0 }

func (m *globalMonitor) progress() int { return len(m.informedAt) - 1 - m.remaining }

// localMonitor tracks local broadcast: every node of R (nodes with a
// G-neighbor in B) must receive at least one message originating in B.
type localMonitor struct {
	inB       []bool
	doneAt    []int // -1 until satisfied; only meaningful for receivers
	inR       []bool
	remaining int
}

// newLocalMonitor builds the monitor over the scratch's pooled buffers (the
// membership sets arrive cleared from grow); the monitor is only valid until
// the owning engine releases its scratch.
func newLocalMonitor(d *graph.Dual, broadcasters []graph.NodeID, sc *scratch) (*localMonitor, error) {
	n := d.N()
	m := &sc.localMon
	*m = localMonitor{inB: sc.monB, doneAt: sc.monInts, inR: sc.monR}
	for i := range m.doneAt {
		m.doneAt[i] = -1
	}
	if len(broadcasters) == 0 {
		return nil, fmt.Errorf("radio: local broadcast requires a non-empty broadcaster set")
	}
	for _, u := range broadcasters {
		if u < 0 || u >= n {
			return nil, fmt.Errorf("radio: broadcaster %d out of range [0,%d)", u, n)
		}
		m.inB[u] = true
	}
	// R = nodes with a G-neighbor in B, computed over the CSR rows into the
	// pooled membership set (graph.GNeighborsOf semantics, allocation-free).
	gOffs, gAdj := d.G().CSR()
	for u := 0; u < n; u++ {
		for _, v := range gAdj[gOffs[u]:gOffs[u+1]] {
			if m.inB[v] {
				m.inR[u] = true
				m.remaining++
				break
			}
		}
	}
	return m, nil
}

func (m *localMonitor) observe(round int, to graph.NodeID, msg *Message) {
	if !m.inR[to] || m.doneAt[to] != -1 || !m.inB[msg.Origin] {
		return
	}
	m.doneAt[to] = round
	m.remaining--
}

func (m *localMonitor) done() bool { return m.remaining == 0 }

func (m *localMonitor) progress() int {
	count := 0
	for u, at := range m.doneAt {
		if m.inR[u] && at != -1 {
			count++
		}
	}
	return count
}

// gossipMonitor tracks k-rumor spreading: every node must hold every rumor.
// A node holds rumor i after receiving any message originating at source i;
// each source starts holding its own rumor.
type gossipMonitor struct {
	k         int
	srcOf     []int   // node → rumor index, -1 for non-sources
	haveAt    [][]int // haveAt[u][i]: round node u first held rumor i, -1 if not
	remaining int
}

// newGossipMonitor builds the monitor over the scratch's pooled buffers: the
// Θ(n·k) round-stamp matrix is rows over one flat backing array resized in
// place on reuse, and the source index is the scratch's round-stamp slice
// repurposed as a node → rumor lookup (the gossip monitor is the only
// monitor of its engine, so the slice is free). Injected rumors
// (spec.Injections) count toward k; each injected origin is pre-stamped at
// its injection round — no other node can hold the rumor earlier, because
// nothing transmits it before the origin activates. Injection rounds must
// fall inside the execution's round budget: a rumor scheduled at or beyond
// maxRounds would count toward k while never entering the system, silently
// censoring every trial. Valid only until the owning engine releases its
// scratch.
func newGossipMonitor(n int, spec Spec, maxRounds int, sc *scratch) (*gossipMonitor, error) {
	sources := spec.Sources
	if len(sources) == 0 && len(spec.Injections) == 0 {
		return nil, fmt.Errorf("radio: gossip requires at least one source")
	}
	m := &sc.gossipMon
	*m = gossipMonitor{k: spec.NumRumors(), srcOf: sc.monInts}
	for i := range m.srcOf {
		m.srcOf[i] = -1
	}
	index := func(s graph.NodeID, i int) error {
		if s < 0 || s >= n {
			return fmt.Errorf("radio: gossip source %d out of range [0,%d)", s, n)
		}
		if m.srcOf[s] != -1 {
			return fmt.Errorf("radio: duplicate gossip source %d", s)
		}
		m.srcOf[s] = i
		return nil
	}
	for i, s := range sources {
		if err := index(s, i); err != nil {
			return nil, err
		}
	}
	for j, inj := range spec.Injections {
		if inj.Round < 0 {
			return nil, fmt.Errorf("radio: injection %d has negative round %d", j, inj.Round)
		}
		if inj.Round >= maxRounds {
			return nil, fmt.Errorf("radio: injection %d at round %d is at or beyond the %d-round budget; its rumor would count toward completion but never enter",
				j, inj.Round, maxRounds)
		}
		if err := index(inj.Source, len(sources)+j); err != nil {
			return nil, err
		}
	}
	k := m.k
	m.haveAt = sc.rumor(n, k)
	for u := range m.haveAt {
		row := m.haveAt[u]
		for i := range row {
			row[i] = -1
		}
	}
	for i, s := range sources {
		m.haveAt[s][i] = 0
	}
	for j, inj := range spec.Injections {
		m.haveAt[inj.Source][len(sources)+j] = inj.Round
	}
	m.remaining = n*k - k
	return m, nil
}

func (m *gossipMonitor) observe(round int, to graph.NodeID, msg *Message) {
	if msg.Origin < 0 || msg.Origin >= len(m.srcOf) {
		return // foreign origin, as the old map lookup treated it
	}
	i := m.srcOf[msg.Origin]
	if i < 0 || m.haveAt[to][i] != -1 {
		return
	}
	m.haveAt[to][i] = round
	m.remaining--
}

func (m *gossipMonitor) done() bool { return m.remaining == 0 }

func (m *gossipMonitor) progress() int {
	total := len(m.haveAt) * m.k
	return total - m.k - m.remaining
}
