package radio

import (
	"testing"

	"repro/internal/graph"
)

func TestTxByNodeAccounting(t *testing.T) {
	res, err := Run(Config{
		Net:       lineDual(5),
		Algorithm: relayAlg{},
		Spec:      Spec{Problem: GlobalBroadcast, Source: 0},
		MaxRounds: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TxByNode) != 5 {
		t.Fatalf("TxByNode length %d", len(res.TxByNode))
	}
	// Flood on a line of 5 completes in 4 rounds; node u is informed at
	// round u-1 and transmits every round afterwards: node 0 transmits 4
	// times, node 1 three times, ..., node 4 zero times (completion is
	// detected before node 4 ever steps as informed).
	var total int64
	for u, c := range res.TxByNode {
		want := int64(4 - u)
		if u == 4 {
			want = 0
		}
		if c != want {
			t.Fatalf("TxByNode[%d] = %d, want %d", u, c, want)
		}
		total += c
	}
	if total != res.Transmissions {
		t.Fatalf("TxByNode sum %d != Transmissions %d", total, res.Transmissions)
	}
}

func TestTxByNodeMatchesTotalRandomized(t *testing.T) {
	d, _ := graph.DualClique(24, 2)
	res, err := Run(Config{
		Net:       d,
		Algorithm: coinAlg{p: 0.4},
		Spec:      Spec{Problem: GlobalBroadcast, Source: 0},
		Link:      hashLink{p: 0.5, seed: 3},
		Seed:      7,
		MaxRounds: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range res.TxByNode {
		total += c
	}
	if total != res.Transmissions {
		t.Fatalf("TxByNode sum %d != Transmissions %d", total, res.Transmissions)
	}
}
