package radio

import (
	"repro/internal/bitrand"
	"repro/internal/graph"
)

// DeliveryPlan selects the engine's delivery implementation. The two paths
// compute the identical reception relation — a listener receives iff exactly
// one of its round-topology neighbors transmits, with collisions and silence
// indistinguishable — so the plan changes cost, never outcome (the
// differential equivalence tests enforce this bit for bit).
type DeliveryPlan int

const (
	// PlanAuto (the zero value) re-derives the plan at every epoch commit:
	// the bitmap path when the epoch's n and G' density clear the thresholds
	// below and no recorder or clique cover is attached, the CSR walk
	// otherwise. Within a bitmap epoch, rounds with fewer transmitters than
	// the bitmap row width fall back to the CSR walk per round — the scalar
	// walk is O(Σ deg(tx)) and beats the O(n·W) row scan on sparse rounds.
	PlanAuto DeliveryPlan = iota
	// PlanScalar forces the CSR walk.
	PlanScalar
	// PlanBitmap forces the word-parallel path for every round, at any n.
	// With a Recorder attached, deliveries are reported in ascending node
	// order rather than the CSR walk's discovery order (the set of
	// deliveries is identical).
	PlanBitmap
)

// Auto-plan thresholds. The bitmap path costs n·W words per round (W =
// WordsFor(n)) against the scalar walk's Σ_x deg(x) adds, so it wins when
// the average transmitting neighborhood clears ~n/64 — hence the density
// gate avg G' degree ≥ n/64 (E(G') ≥ n²/128). Below bitmapMinNodes the
// rounds are too cheap for the plan to matter; above bitmapMaxNodes the
// n²/64-bit masks (128 MiB per graph at the cap) cost more memory than the
// speedup is worth, and SCALE-scale sparse networks stay on the CSR walk.
const (
	bitmapMinNodes = 2048
	bitmapMaxNodes = 1 << 15
)

// setupPlan derives the delivery plan for the current epoch's topology:
// called once at engine construction and again at every epoch swap, so churn
// re-plans at O(revision) cost (masks memoize per graph revision; repeated
// trials and revisits share one build). It hoists the epoch's mask rows and,
// for a committed static selector, rebuilds the combined selector mask.
func (e *engine) setupPlan() {
	e.plan = PlanScalar
	e.gRows, e.gpRows, e.staticRows = nil, nil, nil
	switch e.cfg.Plan {
	case PlanScalar:
		return
	case PlanAuto:
		if e.cfg.UseCliqueCover || e.cfg.Recorder != nil {
			return
		}
		if e.n < bitmapMinNodes || e.n > bitmapMaxNodes {
			return
		}
		if e.net.GPrime().NumEdges() < e.n*e.n/128 {
			return
		}
		e.bitmapTxMin = bitrand.WordsFor(e.n)
	case PlanBitmap:
		e.bitmapTxMin = 0
	}
	e.plan = PlanBitmap
	e.maskW = bitrand.WordsFor(e.n)
	//dglint:allow viewescape: engine-owned hoist, re-synced by swapEpoch at every epoch boundary
	e.gRows = graph.NeighborMasksOf(e.net.G()).Rows()
	if e.cfg.Link != nil {
		//dglint:allow viewescape: engine-owned hoist, re-synced by swapEpoch at every epoch boundary
		e.gpRows = graph.NeighborMasksOf(e.net.GPrime()).Rows()
	}
	e.txWords = e.sc.txBitmap(e.maskW)
	if e.staticSel != nil {
		e.buildStaticRows()
	}
}

// buildStaticRows materializes the round topology of a committed static
// selector as mask rows: the G rows with the selected E'\E edges ORed in.
// Built once per epoch into the pooled slab (the committed selector never
// changes mid-execution), so each round intersects one precomputed row set
// instead of re-filtering extra edges per transmitter.
func (e *engine) buildStaticRows() {
	w := e.maskW
	rows := e.sc.staticMask(e.n, w)
	copy(rows, e.gRows)
	offs, adj := e.net.ExtraCSR()
	for v := 0; v < e.n; v++ {
		for _, u := range adj[offs[v]:offs[v+1]] {
			// v is a potential sender for u; selectors are symmetric, and the
			// CSR lists each undirected edge in both rows, so this single
			// orientation covers both directions across the outer loop.
			if e.staticSel.Includes(v, u) {
				rows[u*w+(v>>6)] |= 1 << (uint(v) & 63)
			}
		}
	}
	e.staticRows = rows
}

// roundRows returns the mask rows matching this round's topology, or nil
// when the selector has no precomputed mask (an adaptive selector that is
// neither all nor none), which keeps that round on the scalar walk.
func (e *engine) roundRows(selector graph.EdgeSelector) []uint64 {
	switch {
	case selector.None():
		return e.gRows
	case selector.All():
		return e.gpRows
	case e.staticRows != nil:
		// A non-nil staticRows means the committed schedule replays exactly
		// one selector every round, and this is it.
		return e.staticRows
	}
	return nil
}

// deliverBitmap is the word-parallel delivery path: fill the transmitter
// bitmap once (W words + one bit per transmitter), then classify every
// listener with a single masked-popcount scan of its neighbor row — 64
// candidate senders per word, early-exiting at the second hit. Exactly one
// set bit in txWords ∧ row(u) means u receives from the bit's index
// (trailing zeros); zero or ≥2 deliver nil, preserving collision/silence
// indistinguishability by construction.
//
//dglint:noalloc gate=TestBitmapDeliveryAllocs
func (e *engine) deliverBitmap(r int, res *Result, rows []uint64) []Delivery {
	w := e.maskW
	txw := e.txWords
	clear(txw)
	for _, v := range e.tx {
		txw[v>>6] |= 1 << (uint(v) & 63)
		e.txFlag[v] = true
	}

	var recorded []Delivery
	record := e.cfg.Recorder != nil
	if record {
		recorded = e.recordBuf[:0]
	}
	for u := 0; u < e.n; u++ {
		if e.txFlag[u] {
			// Transmitters hear nothing (a radio cannot receive while
			// transmitting), exactly as the scalar walk's txFlag guard.
			e.procs[u].Deliver(r, nil)
			continue
		}
		count, from := bitrand.IntersectOne(txw, rows[u*w:(u+1)*w])
		if count == 1 {
			msg := e.msgOf[from]
			e.procs[u].Deliver(r, msg)
			e.mon.observe(r, u, msg)
			res.Deliveries++
			if record {
				recorded = append(recorded, Delivery{To: u, From: from})
			}
		} else {
			e.procs[u].Deliver(r, nil)
		}
	}
	if record {
		// Keep the append-grown buffer for the next round.
		e.recordBuf = recorded[:0]
	}
	for _, v := range e.tx {
		e.txFlag[v] = false
	}
	return recorded
}
