package radio

import (
	"math/bits"
	"slices"
	"strconv"

	"repro/internal/bitrand"
	"repro/internal/graph"
)

// DeliveryPlan selects the engine's delivery implementation. All paths
// compute the identical reception relation — a listener receives iff exactly
// one of its round-topology neighbors transmits, with collisions and silence
// indistinguishable — so the plan changes cost, never outcome (the
// differential equivalence tests enforce this bit for bit).
type DeliveryPlan int

const (
	// PlanAuto (the zero value) re-derives the plan at every epoch commit:
	// the dense bitmap path when the epoch's n and G' density clear the
	// thresholds below, the block-sparse bitmap path when n outgrows the
	// dense mask slab but the sparse masks fit the memory budget, and the
	// CSR walk otherwise (always with a recorder or clique cover attached).
	// Within a bitmap epoch, rounds with fewer transmitters than the bitmap
	// row width fall back to the CSR walk per round — the scalar walk is
	// O(Σ deg(tx)) and beats the row scans on sparse rounds.
	PlanAuto DeliveryPlan = iota
	// PlanScalar forces the CSR walk.
	PlanScalar
	// PlanBitmap forces the word-parallel path for every round, at any n:
	// the dense mask slab up to denseMaskMaxNodes nodes, the block-sparse
	// layout beyond it (the dense n·⌈n/64⌉ slab would need ~125 GB at
	// n = 10⁶). With a Recorder attached, deliveries are reported in
	// ascending node order (dense) or cluster-major order (sparse) rather
	// than the CSR walk's discovery order (the set of deliveries is
	// identical).
	PlanBitmap
	// PlanBitmapSparse forces the block-sparse word-parallel path for every
	// round, at any n: per-node nonzero mask blocks under a cluster-major
	// renumbering (see graph.SparseMasksOf), with per-row and per-round
	// occupancy summaries pruning the kernel. Rounds whose selector is
	// neither all nor none have no precomputed sparse rows and fall back to
	// the CSR walk.
	PlanBitmapSparse
)

// String implements fmt.Stringer.
func (p DeliveryPlan) String() string {
	switch p {
	case PlanAuto:
		return "PlanAuto"
	case PlanScalar:
		return "PlanScalar"
	case PlanBitmap:
		return "PlanBitmap"
	case PlanBitmapSparse:
		return "PlanBitmapSparse"
	}
	return "DeliveryPlan(" + strconv.Itoa(int(p)) + ")"
}

// Auto-plan thresholds. The dense bitmap path costs n·W words per round (W =
// WordsFor(n)) against the scalar walk's Σ_x deg(x) adds, so it wins when
// the average transmitting neighborhood clears ~n/64 — hence the density
// gate avg G' degree ≥ n/64 (E(G') ≥ n²/128). Below bitmapMinNodes the
// rounds are too cheap for the plan to matter. Above denseMaskMaxNodes the
// n²/64-bit dense masks (128 MiB per graph at the cap) cost more memory than
// the speedup is worth, so PlanAuto switches to the block-sparse layout,
// gated on its estimated footprint (proportional to the edge count, not n²)
// fitting sparseMaskMaxBytes.
const (
	bitmapMinNodes    = 2048
	denseMaskMaxNodes = 1 << 15
	// sparseMaskMaxBytes caps the estimated block-sparse mask footprint
	// (graph.EstimateSparseMaskBytes) PlanAuto will commit to: 2 GiB covers
	// hundreds of millions of edges while keeping a runaway-dense G' from
	// silently eating the machine.
	sparseMaskMaxBytes = int64(1) << 31
)

// disableCoinBatch turns the batched transmit-coin fill off, forcing the
// per-node bulk loop even when the batch conditions hold. Tests and
// benchmarks toggle it to pin the bit-for-bit equivalence of the two fill
// orders and to measure the batch win; it is never set in production paths.
var disableCoinBatch = false

// setupPlan derives the delivery plan for the current epoch's topology:
// called once at engine construction and again at every epoch swap, so churn
// re-plans at O(revision) cost (masks memoize per graph revision; repeated
// trials and revisits share one build). It hoists the epoch's mask rows —
// dense slab rows or block-sparse row views plus the cluster-major
// permutation — and, for a committed static selector on the dense path,
// rebuilds the combined selector mask.
func (e *engine) setupPlan() {
	e.plan = PlanScalar
	e.bitmapTxMin = 0
	e.gRows, e.gpRows, e.staticRows = nil, nil, nil
	e.sparseG, e.sparseGP = nil, nil
	e.newID, e.oldID = nil, nil
	e.batchCoins = false
	sparse := false
	switch e.cfg.Plan {
	case PlanScalar:
		return
	case PlanAuto:
		if e.cfg.UseCliqueCover || e.cfg.Recorder != nil {
			return
		}
		if e.n < bitmapMinNodes {
			return
		}
		e.bitmapTxMin = bitrand.WordsFor(e.n)
		if e.n <= denseMaskMaxNodes {
			// Dense region: worth the n²/64-bit slab only on dense G'.
			if e.net.GPrime().NumEdges() < e.n*e.n/128 {
				e.bitmapTxMin = 0
				return
			}
		} else {
			// Sparse region: the gate is the estimated mask footprint, not n.
			if graph.EstimateSparseMaskBytes(e.net, e.cfg.Link != nil) > sparseMaskMaxBytes {
				e.bitmapTxMin = 0
				return
			}
			sparse = true
		}
	case PlanBitmap:
		sparse = e.n > denseMaskMaxNodes
	case PlanBitmapSparse:
		sparse = true
	}
	e.maskW = bitrand.WordsFor(e.n)
	e.txWords = e.sc.txBitmap(e.maskW)
	if sparse {
		e.plan = PlanBitmapSparse
		set := graph.SparseMasksOf(e.net)
		e.sparseG = set.G
		if e.cfg.Link != nil {
			e.sparseGP = set.GPrimeMasks()
		}
		//dglint:allow viewescape: engine-owned hoist, re-synced by swapEpoch at every epoch boundary
		e.newID, e.oldID = set.Order.NewID, set.Order.OldID
		e.sumShift = e.sparseG.RegionShift()
	} else {
		e.plan = PlanBitmap
		//dglint:allow viewescape: engine-owned hoist, re-synced by swapEpoch at every epoch boundary
		e.gRows = graph.NeighborMasksOf(e.net.G()).Rows()
		if e.cfg.Link != nil {
			//dglint:allow viewescape: engine-owned hoist, re-synced by swapEpoch at every epoch boundary
			e.gpRows = graph.NeighborMasksOf(e.net.GPrime()).Rows()
		}
		if e.staticSel != nil {
			e.buildStaticRows()
		}
	}
	// Batched coin fills: with every process a BulkStepper and no consumer of
	// the per-round transmitter list before delivery (no adaptive adversary
	// wanting lastTx views, no offline adversary reading the realized set, no
	// recorder), the engine draws the round's coins straight into the
	// transmitter bitmap and skips building e.tx. The draws come from the
	// same per-node streams in the same ascending order, so the fill is
	// bit-for-bit identical to the per-node path (the batch equivalence test
	// pins this).
	e.batchCoins = e.allBulk && e.online == nil && e.offline == nil &&
		e.cfg.Recorder == nil && !disableCoinBatch
}

// buildStaticRows materializes the round topology of a committed static
// selector as dense mask rows: the G rows with the selected E'\E edges ORed
// in. Built once per epoch into the pooled slab (the committed selector
// never changes mid-execution), so each round intersects one precomputed row
// set instead of re-filtering extra edges per transmitter. The sparse plan
// has no static-row analogue: static-selector rounds fall back to the CSR
// walk there.
func (e *engine) buildStaticRows() {
	w := e.maskW
	rows := e.sc.staticMask(e.n, w)
	copy(rows, e.gRows)
	offs, adj := e.net.ExtraCSR()
	for v := 0; v < e.n; v++ {
		for _, u := range adj[offs[v]:offs[v+1]] {
			// v is a potential sender for u; selectors are symmetric, and the
			// CSR lists each undirected edge in both rows, so this single
			// orientation covers both directions across the outer loop.
			if e.staticSel.Includes(v, u) {
				rows[u*w+(v>>6)] |= 1 << (uint(v) & 63)
			}
		}
	}
	e.staticRows = rows
}

// roundRows returns the dense mask rows matching this round's topology, or
// nil when the selector has no precomputed mask (an adaptive selector that
// is neither all nor none), which keeps that round on the scalar walk.
func (e *engine) roundRows(selector graph.EdgeSelector) []uint64 {
	switch {
	case selector.None():
		return e.gRows
	case selector.All():
		return e.gpRows
	case e.staticRows != nil:
		// A non-nil staticRows means the committed schedule replays exactly
		// one selector every round, and this is it.
		return e.staticRows
	}
	return nil
}

// roundSparse returns the block-sparse mask rows matching this round's
// topology, or nil when the selector is neither all nor none (no sparse
// static-row support), which keeps that round on the scalar walk.
func (e *engine) roundSparse(selector graph.EdgeSelector) *graph.SparseNeighborMasks {
	switch {
	case selector.None():
		return e.sparseG
	case selector.All():
		return e.sparseGP
	}
	return nil
}

// fillTxDense fills the transmitter bitmap from the round's transmitter
// list: bit v marks transmitter v.
func (e *engine) fillTxDense() {
	txw := e.txWords
	clear(txw)
	for _, v := range e.tx {
		txw[v>>6] |= 1 << (uint(v) & 63)
	}
}

// fillTxSparse fills the transmitter bitmap from the round's transmitter
// list in the cluster-major bit space of the sparse masks, maintaining the
// round's region-occupancy summary as bits are set.
func (e *engine) fillTxSparse() {
	txw := e.txWords
	clear(txw)
	var s uint64
	for _, v := range e.tx {
		nv := e.newID[v]
		txw[nv>>6] |= 1 << (uint(nv) & 63)
		s |= 1 << (uint(nv>>6) >> e.sumShift)
	}
	e.txSumm = s
}

// rebuildTx reconstructs the ascending transmitter list from a batch-filled
// transmitter bitmap, for rounds that fall off the bitmap kernels (fewer
// transmitters than bitmapTxMin, a selector without precomputed rows, or the
// complete-graph fast path). Sparse bitmaps are in cluster-major bit space,
// so the recovered ids are sorted back to the ascending original order the
// per-node fill would have produced — the fallback round is then identical
// in every observable to its non-batched counterpart.
func (e *engine) rebuildTx() {
	e.tx = e.tx[:0]
	if e.plan == PlanBitmapSparse {
		for i, w := range e.txWords {
			for w != 0 {
				nv := i<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				e.tx = append(e.tx, e.oldID[nv])
			}
		}
		slices.Sort(e.tx)
		return
	}
	for i, w := range e.txWords {
		for w != 0 {
			e.tx = append(e.tx, i<<6+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// deliverBitmap is the dense word-parallel delivery path: fill the
// transmitter bitmap once (W words + one bit per transmitter), then classify
// every listener with scanBitmap.
//
//dglint:noalloc gate=TestBitmapDeliveryAllocs
func (e *engine) deliverBitmap(r int, res *Result, rows []uint64) []Delivery {
	e.fillTxDense()
	return e.scanBitmap(r, res, rows)
}

// scanBitmap classifies every listener against the filled transmitter
// bitmap with a single masked-popcount scan of its dense neighbor row — 64
// candidate senders per word, early-exiting at the second hit. Exactly one
// set bit in txWords ∧ row(u) means u receives from the bit's index
// (trailing zeros); zero or ≥2 deliver nil, preserving collision/silence
// indistinguishability by construction. Transmitters are recognized by
// their own bit in the bitmap (a radio cannot receive while transmitting).
//
//dglint:noalloc gate=TestBitmapDeliveryAllocs
func (e *engine) scanBitmap(r int, res *Result, rows []uint64) []Delivery {
	w := e.maskW
	txw := e.txWords

	var recorded []Delivery
	record := e.cfg.Recorder != nil
	if record {
		recorded = e.recordBuf[:0]
	}
	for u := 0; u < e.n; u++ {
		if txw[u>>6]>>(uint(u)&63)&1 != 0 {
			e.procs[u].Deliver(r, nil)
			continue
		}
		count, from := bitrand.IntersectOne(txw, rows[u*w:(u+1)*w])
		if count == 1 {
			msg := e.msgOf[from]
			e.procs[u].Deliver(r, msg)
			e.mon.observe(r, u, msg)
			res.Deliveries++
			if record {
				recorded = append(recorded, Delivery{To: u, From: from})
			}
		} else {
			e.procs[u].Deliver(r, nil)
		}
	}
	if record {
		// Keep the append-grown buffer for the next round.
		e.recordBuf = recorded[:0]
	}
	return recorded
}

// deliverSparse is the block-sparse delivery kernel: every listener is
// classified by intersecting only its nonzero mask blocks with the
// transmitter bitmap (IntersectOneIndexed), after a one-word AND of the
// row's region summary against the round's transmitter summary rejects
// listeners whose neighborhood shares no region with any transmitter. Rows
// are walked in cluster-major order — the layout's cache order — and every
// id crossing the Deliver/record boundary is translated back to the
// original space, so observable output is independent of the renumbering.
//
//dglint:noalloc gate=TestSparseDeliveryAllocs
func (e *engine) deliverSparse(r int, res *Result, m *graph.SparseNeighborMasks) []Delivery {
	//dglint:allow viewescape: call-scoped row views of the epoch's memoized masks
	offs, idx, words := m.Rows()
	//dglint:allow viewescape: call-scoped row views of the epoch's memoized masks
	summ := m.Summaries()
	txw := e.txWords
	txSumm := e.txSumm
	oldID := e.oldID

	var recorded []Delivery
	record := e.cfg.Recorder != nil
	if record {
		recorded = e.recordBuf[:0]
	}
	for nu := 0; nu < e.n; nu++ {
		u := oldID[nu]
		if txw[nu>>6]>>(uint(nu)&63)&1 != 0 || summ[nu]&txSumm == 0 {
			// Transmitting, or no transmitter anywhere near the row's blocks.
			e.procs[u].Deliver(r, nil)
			continue
		}
		count, from := bitrand.IntersectOneIndexed(idx[offs[nu]:offs[nu+1]], words[offs[nu]:offs[nu+1]], txw)
		if count == 1 {
			v := oldID[from]
			msg := e.msgOf[v]
			e.procs[u].Deliver(r, msg)
			e.mon.observe(r, u, msg)
			res.Deliveries++
			if record {
				recorded = append(recorded, Delivery{To: u, From: v})
			}
		} else {
			e.procs[u].Deliver(r, nil)
		}
	}
	if record {
		e.recordBuf = recorded[:0]
	}
	return recorded
}
