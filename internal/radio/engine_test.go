package radio

import (
	"errors"
	"testing"

	"repro/internal/bitrand"
	"repro/internal/graph"
)

// scriptProc transmits according to a fixed plan and records deliveries.
type scriptProc struct {
	id   graph.NodeID
	plan map[int]bool
	msg  *Message
	got  map[int]*Message
}

func (p *scriptProc) Step(r int, rng *bitrand.Source) Action {
	if p.plan[r] {
		return Transmit(p.msg)
	}
	return Listen()
}

func (p *scriptProc) Deliver(r int, msg *Message) {
	if msg != nil {
		p.got[r] = msg
	}
}

// scriptAlg wires a per-node plan into an Algorithm.
type scriptAlg struct {
	plans map[graph.NodeID]map[int]bool
	procs []*scriptProc
}

func (a *scriptAlg) Name() string { return "script" }

func (a *scriptAlg) NewProcesses(net *graph.Dual, spec Spec, rng *bitrand.Source) []Process {
	n := net.N()
	a.procs = make([]*scriptProc, n)
	out := make([]Process, n)
	for u := 0; u < n; u++ {
		a.procs[u] = &scriptProc{
			id:   u,
			plan: a.plans[u],
			msg:  &Message{Origin: u},
			got:  make(map[int]*Message),
		}
		out[u] = a.procs[u]
	}
	return out
}

func lineDual(n int) *graph.Dual { return graph.UniformDual(graph.Line(n)) }

func TestSingleTransmitterDelivers(t *testing.T) {
	// 0-1-2-3: node 1 transmits in round 0; 0 and 2 receive, 3 does not.
	alg := &scriptAlg{plans: map[graph.NodeID]map[int]bool{1: {0: true}}}
	_, err := Run(Config{
		Net:       lineDual(4),
		Algorithm: alg,
		Spec:      Spec{Problem: GlobalBroadcast, Source: 1},
		MaxRounds: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if alg.procs[0].got[0] == nil || alg.procs[2].got[0] == nil {
		t.Fatal("neighbors of the lone transmitter must receive")
	}
	if alg.procs[3].got[0] != nil {
		t.Fatal("non-neighbor received")
	}
	if got := alg.procs[0].got[0].Origin; got != 1 {
		t.Fatalf("wrong origin %d", got)
	}
}

func TestCollisionSilences(t *testing.T) {
	// 0-1-2: 0 and 2 transmit; 1 hears a collision (nothing).
	alg := &scriptAlg{plans: map[graph.NodeID]map[int]bool{0: {0: true}, 2: {0: true}}}
	_, err := Run(Config{
		Net:       lineDual(3),
		Algorithm: alg,
		Spec:      Spec{Problem: GlobalBroadcast, Source: 0},
		MaxRounds: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if alg.procs[1].got[0] != nil {
		t.Fatal("node between two transmitters must hear a collision")
	}
}

func TestTransmittersDoNotReceive(t *testing.T) {
	// 0-1: both transmit... then neither receives. Also 0 transmits while 1
	// listens: 1 receives, 0 does not.
	alg := &scriptAlg{plans: map[graph.NodeID]map[int]bool{
		0: {0: true, 1: true},
		1: {0: true},
	}}
	_, err := Run(Config{
		Net:       lineDual(2),
		Algorithm: alg,
		Spec:      Spec{Problem: GlobalBroadcast, Source: 0},
		MaxRounds: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if alg.procs[0].got[0] != nil || alg.procs[1].got[0] != nil {
		t.Fatal("simultaneous transmitters must not receive")
	}
	if alg.procs[1].got[1] == nil {
		t.Fatal("listener must receive from lone neighbor")
	}
	if alg.procs[0].got[1] != nil {
		t.Fatal("round-1 transmitter must not receive")
	}
}

// extraDual returns a dual graph: G is the path 0-1-2, G' adds edge (0, 2).
func extraDual() *graph.Dual {
	g := graph.Line(3)
	gpb := graph.NewBuilder(3)
	g.ForEachEdge(gpb.AddEdge)
	gpb.AddEdge(0, 2)
	return graph.MustDual(g, gpb.Build())
}

func TestSelectorControlsExtraEdges(t *testing.T) {
	cases := []struct {
		name     string
		selector graph.EdgeSelector
		want     bool // does 2 receive 0's round-0 transmission via G' edge?
	}{
		{"none", graph.SelectNone{}, false},
		{"all", graph.SelectAll{}, true},
		{"set-hit", graph.NewSelectSet([]graph.EdgeKey{{U: 0, V: 2}}), true},
		{"set-miss", graph.NewSelectSet([]graph.EdgeKey{{U: 1, V: 2}}), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			alg := &scriptAlg{plans: map[graph.NodeID]map[int]bool{0: {0: true}}}
			_, err := Run(Config{
				Net:       extraDual(),
				Algorithm: alg,
				Spec:      Spec{Problem: GlobalBroadcast, Source: 0},
				Link:      staticOblivious{sel: tc.selector},
				MaxRounds: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			got := alg.procs[2].got[0] != nil
			if got != tc.want {
				t.Fatalf("delivery over extra edge = %v, want %v", got, tc.want)
			}
			// The G path neighbor always receives regardless of selector.
			if alg.procs[1].got[0] == nil {
				t.Fatal("reliable edge delivery must be unaffected")
			}
		})
	}
}

type staticOblivious struct{ sel graph.EdgeSelector }

func (s staticOblivious) CommitSchedule(env *Env) Schedule {
	return StaticSchedule{Selector: s.sel}
}

func TestExtraEdgeCanCauseCollision(t *testing.T) {
	// G: 0-1, isolated 2. G' adds (1,2). When 0 and 2 transmit and the
	// adversary includes (1,2), node 1 collides; excluded, node 1 receives
	// from 0.
	g := graph.Line(2 + 1 - 1) // placeholder to keep gofmt quiet
	_ = g
	gb := graph.NewBuilder(3)
	gb.AddEdge(0, 1)
	gg := gb.Build()
	gpb := graph.NewBuilder(3)
	gpb.AddEdge(0, 1)
	gpb.AddEdge(1, 2)
	d := graph.MustDual(gg, gpb.Build())

	for _, include := range []bool{true, false} {
		alg := &scriptAlg{plans: map[graph.NodeID]map[int]bool{0: {0: true}, 2: {0: true}}}
		var sel graph.EdgeSelector = graph.SelectNone{}
		if include {
			sel = graph.SelectAll{}
		}
		_, err := Run(Config{
			Net:       d,
			Algorithm: alg,
			Spec:      Spec{Problem: GlobalBroadcast, Source: 0},
			Link:      staticOblivious{sel: sel},
			MaxRounds: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		received := alg.procs[1].got[0] != nil
		if include && received {
			t.Fatal("included extra edge must cause a collision at node 1")
		}
		if !include && !received {
			t.Fatal("excluded extra edge must let node 1 receive from 0")
		}
	}
}

func TestGlobalMonitorCompletes(t *testing.T) {
	// Round robin on a line completes global broadcast.
	plans := map[graph.NodeID]map[int]bool{}
	alg := &scriptAlg{plans: plans}
	// Node u transmits in rounds where it is its turn and it is informed;
	// scripting that is awkward, so instead: node u transmits in round u
	// having been informed by u-1 in round u-1 (line propagation).
	for u := 0; u < 5; u++ {
		plans[u] = map[int]bool{u: true}
	}
	res, err := Run(Config{
		Net:       lineDual(5),
		Algorithm: alg,
		Spec:      Spec{Problem: GlobalBroadcast, Source: 0},
		MaxRounds: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait: scripted transmissions carry Origin=u, not the source message.
	// Node u's transmissions have Origin u, so the monitor should NOT count
	// them; broadcast never completes.
	if res.Solved {
		t.Fatal("messages with non-source origin must not satisfy global broadcast")
	}
}

// relayAlg floods: any informed node transmits every round.
type relayAlg struct{}

func (relayAlg) Name() string { return "relay" }

func (relayAlg) NewProcesses(net *graph.Dual, spec Spec, rng *bitrand.Source) []Process {
	out := make([]Process, net.N())
	for u := 0; u < net.N(); u++ {
		p := &relayProc{}
		if u == spec.Source {
			p.msg = &Message{Origin: spec.Source}
		}
		out[u] = p
	}
	return out
}

type relayProc struct{ msg *Message }

func (p *relayProc) TransmitProb(int) float64 {
	if p.msg != nil {
		return 1
	}
	return 0
}

func (p *relayProc) Step(r int, rng *bitrand.Source) Action {
	if p.msg != nil {
		return Transmit(p.msg)
	}
	return Listen()
}

func (p *relayProc) Deliver(r int, msg *Message) {
	if msg != nil && p.msg == nil {
		p.msg = msg
	}
}

func TestGlobalBroadcastOnLineWithFlood(t *testing.T) {
	// Deterministic flooding on a line: exactly one informed frontier
	// transmitter... actually all informed nodes transmit, so interior
	// receivers collide except at the frontier: node i+1 neighbors only
	// node i among informed nodes (i-1 is informed too but not adjacent to
	// i+1). So the message advances one hop per round.
	res, err := Run(Config{
		Net:       lineDual(6),
		Algorithm: relayAlg{},
		Spec:      Spec{Problem: GlobalBroadcast, Source: 0},
		MaxRounds: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("flood on a line must complete")
	}
	if res.Rounds != 5 {
		t.Fatalf("line flood rounds = %d, want 5", res.Rounds)
	}
	// The source is informed at 0; node i ≥ 1 receives in round index i-1.
	for i, at := range res.InformedAt {
		want := i - 1
		if i == 0 {
			want = 0
		}
		if at != want {
			t.Fatalf("InformedAt[%d] = %d, want %d", i, at, want)
		}
	}
}

func TestLocalMonitor(t *testing.T) {
	// 0-1-2-3, B={1}: R = {0, 2}. Node 1 transmits round 0: solved.
	alg := &scriptAlg{plans: map[graph.NodeID]map[int]bool{1: {0: true}}}
	res, err := Run(Config{
		Net:       lineDual(4),
		Algorithm: alg,
		Spec:      Spec{Problem: LocalBroadcast, Broadcasters: []graph.NodeID{1}},
		MaxRounds: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved || res.Rounds != 1 {
		t.Fatalf("local broadcast: solved=%v rounds=%d", res.Solved, res.Rounds)
	}
	if res.ReceiverDoneAt[0] != 0 || res.ReceiverDoneAt[2] != 0 {
		t.Fatalf("ReceiverDoneAt = %v", res.ReceiverDoneAt)
	}
	if res.ReceiverDoneAt[3] != -1 {
		t.Fatal("node 3 is not in R")
	}
}

func TestLocalMonitorIgnoresNonBOrigins(t *testing.T) {
	// B={0} on 0-1-2. Node 2 transmitting does not satisfy node 1.
	alg := &scriptAlg{plans: map[graph.NodeID]map[int]bool{2: {0: true}}}
	res, err := Run(Config{
		Net:       lineDual(3),
		Algorithm: alg,
		Spec:      Spec{Problem: LocalBroadcast, Broadcasters: []graph.NodeID{0}},
		MaxRounds: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solved {
		t.Fatal("delivery from a non-broadcaster must not satisfy local broadcast")
	}
}

func TestConfigValidation(t *testing.T) {
	alg := &scriptAlg{plans: nil}
	cases := []Config{
		{Algorithm: alg, Spec: Spec{Problem: GlobalBroadcast}},                                          // nil net
		{Net: lineDual(3), Spec: Spec{Problem: GlobalBroadcast}},                                        // nil algorithm
		{Net: lineDual(3), Algorithm: alg, Spec: Spec{Problem: GlobalBroadcast, Source: 9}},             // bad source
		{Net: lineDual(3), Algorithm: alg, Spec: Spec{Problem: LocalBroadcast}},                         // empty B
		{Net: lineDual(3), Algorithm: alg, Spec: Spec{Problem: LocalBroadcast, Broadcasters: []int{7}}}, // bad B
		{Net: lineDual(3), Algorithm: alg, Spec: Spec{Problem: Problem(99)}},                            // bad problem
		{Net: lineDual(3), Algorithm: alg, Spec: Spec{Problem: GlobalBroadcast}, Link: 42},              // bad link
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		} else if !errors.Is(err, ErrBadConfig) {
			t.Fatalf("case %d: error %v not ErrBadConfig", i, err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		res, err := Run(Config{
			Net:       lineDual(12),
			Algorithm: coinAlg{p: 0.4},
			Spec:      Spec{Problem: GlobalBroadcast, Source: 0},
			Seed:      777,
			MaxRounds: 200,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Rounds != b.Rounds || a.Transmissions != b.Transmissions || a.Deliveries != b.Deliveries {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c, err := Run(Config{
		Net:       lineDual(12),
		Algorithm: coinAlg{p: 0.4},
		Spec:      Spec{Problem: GlobalBroadcast, Source: 0},
		Seed:      778,
		MaxRounds: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Transmissions == a.Transmissions && c.Deliveries == a.Deliveries && c.Rounds == a.Rounds {
		t.Log("warning: different seeds produced identical summary (possible but unlikely)")
	}
}

// coinAlg: informed nodes transmit with fixed probability p.
type coinAlg struct{ p float64 }

func (coinAlg) Name() string { return "coin" }

func (a coinAlg) NewProcesses(net *graph.Dual, spec Spec, rng *bitrand.Source) []Process {
	out := make([]Process, net.N())
	for u := 0; u < net.N(); u++ {
		p := &coinProc{p: a.p}
		if u == spec.Source {
			p.msg = &Message{Origin: spec.Source}
		}
		out[u] = p
	}
	return out
}

type coinProc struct {
	p   float64
	msg *Message
}

func (p *coinProc) TransmitProb(int) float64 {
	if p.msg != nil {
		return p.p
	}
	return 0
}

func (p *coinProc) Step(r int, rng *bitrand.Source) Action {
	if p.msg != nil && rng.Coin(p.p) {
		return Transmit(p.msg)
	}
	return Listen()
}

func (p *coinProc) Deliver(r int, msg *Message) {
	if msg != nil && p.msg == nil {
		p.msg = msg
	}
}
