package radio

import (
	"testing"

	"repro/internal/bitrand"
	"repro/internal/graph"
)

// BenchmarkCoinFill measures the batched transmit-coin fill (stepBatch)
// against the per-node bulk loop it replaces, on both bitmap layouts. The
// flood probability is kept low so the delivery kernels see few transmitters
// and the coin draws dominate: the measured gap is the per-node dispatch
// overhead (interface call + txByNode bookkeeping per node) that the batch
// path folds into one pass over the per-node streams. Forced plans pin
// bitmapTxMin = 0 so every round stays on its kernel. Lives in the package
// so it can reach the disableCoinBatch hook; BENCH_pr9.json tracks the
// batched/per-node ratio.
func BenchmarkCoinFill(b *testing.B) {
	var src bitrand.Source
	src.Reseed(0xc01f)
	dense := graph.UniformDual(graph.Circulant(8192, 64))
	sparse := graph.UniformDual(graph.RingChords(&src, 65536, 131072))

	run := func(b *testing.B, net *graph.Dual, plan DeliveryPlan, disable bool) {
		b.Helper()
		b.ReportAllocs()
		prev := disableCoinBatch
		disableCoinBatch = disable
		defer func() { disableCoinBatch = prev }()
		everyone := make([]graph.NodeID, net.N())
		for u := range everyone {
			everyone[u] = u
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, err := Run(Config{
				Net:              net,
				Algorithm:        batchAlg{p: 0.05},
				Spec:             Spec{Problem: LocalBroadcast, Broadcasters: everyone},
				Seed:             uint64(i),
				MaxRounds:        64,
				Plan:             plan,
				IgnoreCompletion: true,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("dense/n=8192/batched", func(b *testing.B) { run(b, dense, PlanBitmap, false) })
	b.Run("dense/n=8192/per-node", func(b *testing.B) { run(b, dense, PlanBitmap, true) })
	b.Run("sparse/n=65536/batched", func(b *testing.B) { run(b, sparse, PlanBitmapSparse, false) })
	b.Run("sparse/n=65536/per-node", func(b *testing.B) { run(b, sparse, PlanBitmapSparse, true) })
}
