package core

import (
	"math"
	"testing"

	"repro/internal/bitrand"
)

func TestPermScheduleIndexRange(t *testing.T) {
	src := bitrand.New(1)
	for _, n := range []int{2, 8, 64, 1000} {
		bits := bitrand.NewBitString(src, GlobalBitsLen(n, 4))
		s := NewPermSchedule(bits, n, 4)
		logN := bitrand.LogN(n)
		for r := 0; r < 5*s.BlockLen(); r++ {
			i := s.Index(r)
			if i < 1 || i > logN {
				t.Fatalf("n=%d r=%d: index %d out of [1,%d]", n, r, i, logN)
			}
			p := s.Prob(r)
			if math.Abs(p-math.Ldexp(1, -i)) > 1e-15 {
				t.Fatalf("Prob(%d) = %v, want 2^-%d", r, p, i)
			}
		}
	}
}

func TestPermScheduleSharedAcrossReaders(t *testing.T) {
	src := bitrand.New(2)
	bits := bitrand.NewBitString(src, GlobalBitsLen(256, 8))
	a := NewPermSchedule(bits, 256, 8)
	b := NewPermSchedule(bits.Clone(), 256, 8)
	for r := 0; r < 1000; r++ {
		if a.Index(r) != b.Index(r) {
			t.Fatalf("round %d: readers of the same bits disagree", r)
		}
	}
}

func TestPermScheduleIndexUniform(t *testing.T) {
	// With log n a power of two, the index must be uniform over [1, log n].
	src := bitrand.New(3)
	n := 256 // log n = 8
	bits := bitrand.NewBitString(src, GlobalBitsLen(n, 2*bitrand.LogN(n)))
	s := NewPermSchedule(bits, n, 2*bitrand.LogN(n))
	counts := make([]int, 9)
	total := s.BitsLen() / bitrand.BitsFor(8)
	for r := 0; r < total; r++ {
		counts[s.Index(r)]++
	}
	want := float64(total) / 8
	for i := 1; i <= 8; i++ {
		if math.Abs(float64(counts[i])-want) > 5*math.Sqrt(want) {
			t.Fatalf("index %d occurred %d times, want ~%v", i, counts[i], want)
		}
	}
}

func TestPermScheduleEmptyBits(t *testing.T) {
	bits := bitrand.NewBitString(bitrand.New(1), 0)
	s := NewPermSchedule(bits, 16, 2)
	if got := s.Index(5); got != 1 {
		t.Fatalf("empty bits index = %d, want 1", got)
	}
}

func TestPermScheduleLevels(t *testing.T) {
	bits := bitrand.NewBitString(bitrand.New(4), 4096)
	s := NewPermScheduleLevels(bits, 4, 3, 8)
	if s.BlockLen() != 32 || s.Levels() != 4 {
		t.Fatalf("block %d levels %d", s.BlockLen(), s.Levels())
	}
	for r := 0; r < 200; r++ {
		if i := s.Index(r); i < 1 || i > 4 {
			t.Fatalf("index %d out of [1,4]", i)
		}
	}
	// Degenerate parameters clamp.
	s2 := NewPermScheduleLevels(bits, 0, 0, 0)
	if s2.Levels() != 1 || s2.BlockLen() != 1 {
		t.Fatalf("clamping failed: %d %d", s2.Levels(), s2.BlockLen())
	}
}

func TestGlobalBitsLenMatchesPaper(t *testing.T) {
	// For n a power of two, numBlocks = 2·log n gives the paper's
	// 32·log²n·loglogn bits.
	n := 1024
	logN := bitrand.LogN(n) // 10
	got := GlobalBitsLen(n, 2*logN)
	want := 32 * logN * logN * bitrand.BitsFor(logN)
	if got != want {
		t.Fatalf("GlobalBitsLen = %d, want %d", got, want)
	}
}

// TestLemma42ReceiveProbability Monte-Carlo checks Lemma 4.2: if a nonempty
// set I_G of reliable neighbors (plus any adversarial set I_G' of unreliable
// neighbors) runs one permuted decay call with shared bits, the receiver
// hears a message with probability > 1/2. The adversary here picks, each
// round, the worst prefix of I_G' to include, knowing the realized
// transmissions — which is stronger than the oblivious adversary the lemma
// assumes, so clearing 1/2 under it is conservative... except a fully
// realized-coin adversary could always block; we instead give the adversary
// a per-round random subset plus the always-on I_G, which matches the
// lemma's setting (adversary fixes I_r ⊇ I_G obliviously).
func TestLemma42ReceiveProbability(t *testing.T) {
	src := bitrand.New(99)
	n := 256
	logN := bitrand.LogN(n)
	const trials = 400
	for _, shape := range []struct {
		name    string
		ig, igp int
	}{
		{"one-reliable", 1, 0},
		{"many-reliable", 20, 0},
		{"mixed", 3, 40},
		{"huge-unreliable", 1, 150},
	} {
		success := 0
		for trial := 0; trial < trials; trial++ {
			bits := bitrand.NewBitString(src, GlobalBitsLen(n, 1))
			sched := NewPermSchedule(bits, n, 1)
			// The oblivious adversary fixes, per round, which unreliable
			// senders are connected (a hash of the round — independent of
			// the bits, which are drawn after it commits).
			got := false
			for r := 0; r < sched.BlockLen() && !got; r++ {
				p := sched.Prob(r)
				transmitters := 0
				for s := 0; s < shape.ig; s++ {
					if src.Coin(p) {
						transmitters++
					}
				}
				for s := 0; s < shape.igp; s++ {
					connected := bitrand.HashFloat(uint64(trial), uint64(r), uint64(s)) < 0.5
					if connected && src.Coin(p) {
						transmitters++
					}
				}
				if transmitters == 1 {
					got = true
				}
			}
			if got {
				success++
			}
		}
		rate := float64(success) / trials
		if rate <= 0.5 {
			t.Errorf("%s: receive rate %.3f, Lemma 4.2 wants > 0.5", shape.name, rate)
		}
	}
	_ = logN
}
