package core

import (
	"testing"

	"repro/internal/bitrand"
	"repro/internal/graph"
	"repro/internal/radio"
)

// captureAlg wraps an Algorithm and keeps the produced processes for
// white-box inspection.
type captureAlg struct {
	inner radio.Algorithm
	procs []radio.Process
}

func (c *captureAlg) Name() string { return c.inner.Name() }

func (c *captureAlg) NewProcesses(net *graph.Dual, spec radio.Spec, rng *bitrand.Source) []radio.Process {
	c.procs = c.inner.NewProcesses(net, spec, rng)
	return c.procs
}

func geoNet(t *testing.T, w, h int) *graph.Dual {
	t.Helper()
	src := bitrand.New(uint64(w*100 + h))
	d := graph.GeographicGrid(src, w, h, 0.7, 1.5)
	if !graph.Connected(d.G()) {
		t.Fatal("test geo network disconnected")
	}
	return d
}

func everyThird(n int) []graph.NodeID {
	var b []graph.NodeID
	for u := 0; u < n; u += 3 {
		b = append(b, u)
	}
	return b
}

func TestGeoLocalSolvesProtocolModel(t *testing.T) {
	net := geoNet(t, 6, 6)
	for seed := uint64(0); seed < 3; seed++ {
		res := runLocal(t, GeoLocal{}, net, everyThird(net.N()), nil, seed, 60000)
		if !res.Solved {
			t.Fatalf("seed %d: geo local incomplete after %d rounds", seed, res.Rounds)
		}
	}
}

func TestGeoLocalSolvesUnderRandomLoss(t *testing.T) {
	net := geoNet(t, 6, 6)
	link := struct{ radio.ObliviousLink }{randomLossLink(0.5)}
	for seed := uint64(0); seed < 2; seed++ {
		res := runLocal(t, GeoLocal{}, net, everyThird(net.N()), link, seed, 60000)
		if !res.Solved {
			t.Fatalf("seed %d: geo local incomplete under random loss", seed)
		}
	}
}

// randomLossLink is a minimal local copy to avoid an import cycle with the
// adversary package in tests (core must not depend on adversary).
type randomLossLink float64

func (p randomLossLink) CommitSchedule(env *radio.Env) radio.Schedule {
	seed := env.Rng.Uint64()
	return radio.ScheduleFunc(func(r int) graph.EdgeSelector {
		return graph.SelectFunc{F: func(u, v graph.NodeID) bool {
			k := graph.MakeEdgeKey(u, v)
			return bitrand.HashFloat(seed, uint64(r), uint64(k.U), uint64(k.V)) < float64(p)
		}}
	})
}

func TestGeoLocalEveryoneCommitsAfterInit(t *testing.T) {
	net := geoNet(t, 6, 6)
	cap := &captureAlg{inner: GeoLocal{}}
	par := GeoLocal{}.params(net)
	_, err := radio.Run(radio.Config{
		Net:       net,
		Algorithm: cap,
		Spec:      radio.Spec{Problem: radio.LocalBroadcast, Broadcasters: everyThird(net.N())},
		Seed:      5,
		MaxRounds: par.initRounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	for u, p := range cap.procs {
		gp := p.(*geoLocalProc)
		if gp.seed == nil {
			t.Fatalf("node %d uncommitted after initialization stage", u)
		}
	}
}

func TestGeoLocalSeedsAreShared(t *testing.T) {
	net := geoNet(t, 7, 7)
	cap := &captureAlg{inner: GeoLocal{}}
	par := GeoLocal{}.params(net)
	_, err := radio.Run(radio.Config{
		Net:       net,
		Algorithm: cap,
		Spec:      radio.Spec{Problem: radio.LocalBroadcast, Broadcasters: everyThird(net.N())},
		Seed:      6,
		MaxRounds: par.initRounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	seeds := make(map[*bitrand.BitString]int)
	for _, p := range cap.procs {
		gp := p.(*geoLocalProc)
		seeds[gp.seed]++
	}
	if len(seeds) >= net.N() {
		t.Fatalf("no seed sharing at all: %d distinct seeds for %d nodes", len(seeds), net.N())
	}
	shared := 0
	for _, count := range seeds {
		if count > 1 {
			shared += count
		}
	}
	if shared == 0 {
		t.Fatal("no node shares a seed with any other")
	}
}

func TestGeoLocalSeedAblationProducesDistinctSeeds(t *testing.T) {
	net := geoNet(t, 6, 6)
	cap := &captureAlg{inner: GeoLocal{DisableSeedSharing: true}}
	par := GeoLocal{}.params(net)
	_, err := radio.Run(radio.Config{
		Net:       net,
		Algorithm: cap,
		Spec:      radio.Spec{Problem: radio.LocalBroadcast, Broadcasters: everyThird(net.N())},
		Seed:      6,
		MaxRounds: par.initRounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	seeds := make(map[*bitrand.BitString]bool)
	for _, p := range cap.procs {
		gp := p.(*geoLocalProc)
		if gp.seed == nil {
			t.Fatal("uncommitted node in ablation run")
		}
		if seeds[gp.seed] {
			t.Fatal("seed ablation still shares seed objects")
		}
		seeds[gp.seed] = true
	}
}

func TestGeoLocalParams(t *testing.T) {
	net := geoNet(t, 6, 6)
	par := GeoLocal{}.params(net)
	if par.lDelta < 1 || par.logN < 1 {
		t.Fatalf("degenerate params: %+v", par)
	}
	if par.initRounds != par.lDelta*par.phaseLen {
		t.Fatal("init stage length inconsistent")
	}
	if par.blockLen != PermutedDecayGamma*par.lDelta {
		t.Fatal("block length inconsistent")
	}
	// Election probabilities sweep upward and end at 1/2.
	prev := 0.0
	for i := 0; i < par.lDelta; i++ {
		p := par.electionProb(i)
		if p <= prev {
			t.Fatalf("election prob not increasing at phase %d", i)
		}
		prev = p
	}
	if prev != 0.5 {
		t.Fatalf("final election prob = %v, want 0.5", prev)
	}
}

func TestGeoLocalTransmitProbZeroMeansSilent(t *testing.T) {
	net := geoNet(t, 5, 5)
	cap := &captureAlg{inner: GeoLocal{}}
	spec := radio.Spec{Problem: radio.LocalBroadcast, Broadcasters: everyThird(net.N())}
	procs := cap.NewProcesses(net, spec, bitrand.New(3))
	rng := bitrand.New(4)
	// Drive Step directly for a few rounds: whenever TransmitProb reports
	// 0, Step must listen.
	for r := 0; r < 200; r++ {
		for _, p := range procs {
			gp := p.(*geoLocalProc)
			prob := gp.TransmitProb(r)
			act := gp.Step(r, rng)
			if prob == 0 && act.Transmit {
				t.Fatalf("round %d: transmitted despite declared prob 0", r)
			}
		}
	}
}

func TestLdexp1(t *testing.T) {
	if ldexp1(0) != 1 || ldexp1(-1) != 0.5 || ldexp1(-3) != 0.125 {
		t.Fatal("ldexp1 wrong")
	}
}

func TestGeoLocalNames(t *testing.T) {
	if (GeoLocal{}).Name() == (GeoLocal{DisableSeedSharing: true}).Name() {
		t.Fatal("ablation must carry a distinct name")
	}
}

// TestGeoLocalElectionProbClamp covers the boundary past the sweep: phases
// at or beyond lDelta (possible when initRounds is not a multiple of
// phaseLen only in principle, but the clamp is the documented contract)
// saturate at 1/2 rather than racing past certainty.
func TestGeoLocalElectionProbClamp(t *testing.T) {
	par := GeoLocal{}.params(geoNet(t, 6, 6))
	for _, phase := range []int{par.lDelta - 1, par.lDelta, par.lDelta + 5} {
		if p := par.electionProb(phase); p != 0.5 {
			t.Fatalf("electionProb(%d) = %v, want the 1/2 clamp", phase, p)
		}
	}
}

// TestGeoLocalSeedBitsWrap pins seedBitsAt's two boundary cases: an
// undersized seed wraps (reads past Len fold back to the start), and a
// zero-length seed reads as all-zero instead of dividing by zero.
func TestGeoLocalSeedBitsWrap(t *testing.T) {
	p := &geoLocalProc{seed: bitrand.NewBitString(bitrand.New(9), 3)}
	n := p.seed.Len()
	if n != 3 {
		t.Fatalf("seed length %d, want 3", n)
	}
	// Reading 6 bits from offset 0 must repeat the 3-bit pattern.
	v := p.seedBitsAt(0, 6)
	lo, hi := v&0x7, (v>>3)&0x7
	if lo != hi {
		t.Fatalf("wrapped read %b does not repeat the seed", v)
	}
	if w := p.seedBitsAt(2, 1); w != p.seed.At(2) {
		t.Fatalf("offset read %d, want bit %d", w, p.seed.At(2))
	}
	empty := &geoLocalProc{seed: &bitrand.BitString{}}
	if got := empty.seedBitsAt(0, 8); got != 0 {
		t.Fatalf("zero-length seed read %d, want 0", got)
	}
}

// TestGeoLocalFinalInitSelfCommit covers the last-round fallback directly: a
// node that reaches the final initialization round without a seed commits to
// a fresh private one, so the broadcast stage never starts unseeded.
func TestGeoLocalFinalInitSelfCommit(t *testing.T) {
	net := geoNet(t, 5, 5)
	procs := GeoLocal{}.NewProcesses(net, radio.Spec{Problem: radio.LocalBroadcast}, bitrand.New(2))
	p := procs[0].(*geoLocalProc)
	p.leaderPhase = -2 // never this phase's leader; elections can't fire either
	rng := bitrand.New(0)
	p.Step(p.par.initRounds-2, rng)
	if p.seed != nil {
		t.Fatal("committed before the final init round without electing")
	}
	p.Step(p.par.initRounds-1, rng)
	if p.seed == nil {
		t.Fatal("final init round did not self-commit")
	}
	if p.ownSeed != p.seed {
		t.Fatal("self-commit must draw the node's own seed")
	}
}

// TestGeoLocalDeliverBoundaries covers the commit guards: nil frames,
// non-seed payloads, already-committed nodes, and deliveries after the
// initialization stage must all leave the seed untouched.
func TestGeoLocalDeliverBoundaries(t *testing.T) {
	net := geoNet(t, 5, 5)
	procs := GeoLocal{}.NewProcesses(net, radio.Spec{Problem: radio.LocalBroadcast}, bitrand.New(2))
	p := procs[1].(*geoLocalProc)
	seed := bitrand.NewBitString(bitrand.New(3), p.par.seedBits)

	p.Deliver(1, nil)
	p.Deliver(1, &radio.Message{Origin: 0})                               // no payload
	p.Deliver(p.par.initRounds, &radio.Message{Origin: 0, Payload: seed}) // too late
	if p.seed != nil {
		t.Fatal("a guarded delivery committed a seed")
	}
	p.Deliver(1, &radio.Message{Origin: 0, Payload: seed})
	if p.seed != seed {
		t.Fatal("an in-stage seed frame did not commit")
	}
	other := bitrand.NewBitString(bitrand.New(4), p.par.seedBits)
	p.Deliver(2, &radio.Message{Origin: 2, Payload: other})
	if p.seed != seed {
		t.Fatal("a second delivery overwrote the committed seed")
	}
}
