package core

import (
	"repro/internal/bitrand"
	"repro/internal/graph"
	"repro/internal/radio"
)

// RoundRobin is the adversary-proof baseline of the paper's footnotes 4 and
// 5: node u transmits (when it holds a message) exactly in rounds r with
// r mod n = u. Every round has at most one transmitter in the entire
// network, so no link process can cause a collision; any added edge only
// helps. Local broadcast completes within n rounds; global broadcast within
// n·D rounds. Deterministic and slow — the O(n) row of Figure 1.
type RoundRobin struct{}

var _ radio.ProcessFactory = RoundRobin{}

// Name implements radio.Algorithm.
func (RoundRobin) Name() string { return "round-robin" }

// NewProcesses implements radio.Algorithm.
func (RoundRobin) NewProcesses(net *graph.Dual, spec radio.Spec, rng *bitrand.Source) []radio.Process {
	n := net.N()
	procs := make([]radio.Process, n)
	for u := 0; u < n; u++ {
		procs[u] = &roundRobinProc{id: u, n: n}
	}
	assignRoundRobinMessages(procs, spec)
	return procs
}

// ResetProcesses implements radio.ProcessFactory.
func (RoundRobin) ResetProcesses(procs []radio.Process, net *graph.Dual, spec radio.Spec, rng *bitrand.Source) bool {
	n := net.N()
	for u := range procs {
		p, ok := procs[u].(*roundRobinProc)
		if !ok {
			return false
		}
		p.id, p.n = u, n
		p.msg = nil
	}
	assignRoundRobinMessages(procs, spec)
	return true
}

// assignRoundRobinMessages hands initial messages to the source (global) or
// the broadcasters (local), reusing each holder's own cached frame across
// trials (relays overwrite msg, never own).
func assignRoundRobinMessages(procs []radio.Process, spec radio.Spec) {
	hold := func(u graph.NodeID) {
		if u < 0 || u >= len(procs) {
			return // out-of-range spec; the engine's monitor reports it
		}
		p := procs[u].(*roundRobinProc)
		if p.own == nil || p.own.Origin != u {
			p.own = &radio.Message{Origin: u}
		}
		p.msg = p.own
	}
	switch spec.Problem {
	case radio.GlobalBroadcast:
		hold(spec.Source)
	default: // LocalBroadcast
		for _, u := range spec.Broadcasters {
			hold(u)
		}
	}
}

//dglint:pooled reset=RoundRobin.ResetProcesses
type roundRobinProc struct {
	id, n int
	msg   *radio.Message // nil until the node holds a message
	own   *radio.Message // the node's own initial frame, nil for relays
}

func (p *roundRobinProc) myTurn(r int) bool { return r%p.n == p.id }

// TransmitProb implements radio.TransmitProber.
func (p *roundRobinProc) TransmitProb(r int) float64 {
	if p.msg != nil && p.myTurn(r) {
		return 1
	}
	return 0
}

// Step implements radio.Process.
func (p *roundRobinProc) Step(r int, rng *bitrand.Source) radio.Action {
	if p.msg != nil && p.myTurn(r) {
		return radio.Transmit(p.msg)
	}
	return radio.Listen()
}

// Deliver implements radio.Process.
func (p *roundRobinProc) Deliver(r int, msg *radio.Message) {
	if msg != nil && p.msg == nil {
		p.msg = msg // relay for global broadcast
	}
}

// Frame implements radio.BulkStepper: the transmit decision is a 0/1
// probability (deterministic turn-taking), never a real coin, and the frame
// is the held message.
func (p *roundRobinProc) Frame(int) *radio.Message { return p.msg }

var _ radio.BulkStepper = (*roundRobinProc)(nil)

// Aloha is the uncoordinated fixed-probability local broadcast baseline:
// every broadcaster transmits each round with the same probability P. With
// P = 0 a sensible default of 1/2 is used. Aloha exhibits the
// Ω(√n / log n) behavior on the bracelet network: transmitting fast makes
// every round dense (blocked by the sampling adversary); transmitting at
// the sparse threshold rate means waiting ~√n/log n rounds for the clasp
// transmission.
type Aloha struct {
	// P is the per-round transmit probability of each broadcaster.
	P float64
}

var _ radio.ProcessFactory = Aloha{}

// Name implements radio.Algorithm.
func (Aloha) Name() string { return "aloha" }

func (a Aloha) prob() float64 {
	p := a.P
	if p <= 0 {
		p = 0.5
	}
	if p > 1 {
		p = 1
	}
	return p
}

// ResetProcesses implements radio.ProcessFactory. Membership is encoded in
// the process types and each broadcaster's frame is immutable, so only the
// transmit probability (an Aloha parameter, re-derived from the receiver) is
// refreshed.
func (a Aloha) ResetProcesses(procs []radio.Process, net *graph.Dual, spec radio.Spec, rng *bitrand.Source) bool {
	prob := a.prob()
	for u := range procs {
		switch p := procs[u].(type) {
		case *alohaProc:
			p.p = prob
		case silentProc:
		default:
			return false
		}
	}
	return true
}

// NewProcesses implements radio.Algorithm.
func (a Aloha) NewProcesses(net *graph.Dual, spec radio.Spec, rng *bitrand.Source) []radio.Process {
	p := a.prob()
	n := net.N()
	inB := make([]bool, n)
	for _, u := range spec.Broadcasters {
		inB[u] = true
	}
	procs := make([]radio.Process, n)
	for u := 0; u < n; u++ {
		if inB[u] {
			procs[u] = &alohaProc{p: p, msg: &radio.Message{Origin: u}}
		} else {
			procs[u] = silentProc{}
		}
	}
	return procs
}

//dglint:pooled reset=Aloha.ResetProcesses
type alohaProc struct {
	p   float64
	msg *radio.Message //dglint:allow scratchreset: broadcaster frame (Origin = itself) is immutable, reused across trials
}

// TransmitProb implements radio.TransmitProber.
func (p *alohaProc) TransmitProb(int) float64 { return p.p }

// Step implements radio.Process.
func (p *alohaProc) Step(r int, rng *bitrand.Source) radio.Action {
	if rng.Coin(p.p) {
		return radio.Transmit(p.msg)
	}
	return radio.Listen()
}

// Deliver implements radio.Process.
func (p *alohaProc) Deliver(int, *radio.Message) {}

// Frame implements radio.BulkStepper: Step is exactly one fixed-probability
// coin transmitting the broadcaster's own frame.
func (p *alohaProc) Frame(int) *radio.Message { return p.msg }

var _ radio.BulkStepper = (*alohaProc)(nil)
