package core

import (
	"testing"

	"repro/internal/bitrand"
	"repro/internal/graph"
	"repro/internal/radio"
)

// TestRoundRobinResetMatchesFresh exercises the pooled-slab contract of the
// deterministic baseline: after a trial's worth of relay adoptions a reset
// slab must be observationally identical to a fresh one, out-of-range specs
// must not panic (the engine's monitor reports them), and a slab of foreign
// processes must be refused.
func TestRoundRobinResetMatchesFresh(t *testing.T) {
	net := graph.TwoCliques(24)
	spec := radio.Spec{Problem: radio.GlobalBroadcast, Source: 3}
	rng := bitrand.New(11)
	alg := RoundRobin{}
	procs := alg.NewProcesses(net, spec, rng)
	for u, p := range procs {
		p.Deliver(5, &radio.Message{Origin: (u + 7) % net.N()})
	}
	if !alg.ResetProcesses(procs, net, spec, rng) {
		t.Fatal("reset of the factory's own slab refused")
	}
	fresh := alg.NewProcesses(net, spec, rng)
	for u := range procs {
		got, want := procs[u].(*roundRobinProc), fresh[u].(*roundRobinProc)
		if got.id != want.id || got.n != want.n ||
			(got.msg == nil) != (want.msg == nil) ||
			(got.msg != nil && got.msg.Origin != want.msg.Origin) {
			t.Fatalf("node %d: reset state differs from fresh state", u)
		}
		for r := 0; r < 2*net.N(); r++ {
			if got.TransmitProb(r) != want.TransmitProb(r) {
				t.Fatalf("node %d: transmit schedule differs at round %d after reset", u, r)
			}
		}
		if got.Frame(0) != got.msg {
			t.Fatalf("node %d: Frame does not return the held message", u)
		}
	}

	// Out-of-range sources are the monitor's problem, not a panic.
	for _, bad := range []graph.NodeID{-1, net.N()} {
		if !alg.ResetProcesses(procs, net, radio.Spec{Problem: radio.GlobalBroadcast, Source: bad}, rng) {
			t.Fatalf("reset with out-of-range source %d refused", bad)
		}
	}
	local := radio.Spec{Problem: radio.LocalBroadcast, Broadcasters: []graph.NodeID{1, net.N() + 4}}
	if !alg.ResetProcesses(procs, net, local, rng) {
		t.Fatal("reset with out-of-range broadcaster refused")
	}
	if procs[1].(*roundRobinProc).msg == nil {
		t.Fatal("in-range broadcaster not seeded")
	}

	foreign := Aloha{}.NewProcesses(net, radio.Spec{Problem: radio.LocalBroadcast, Broadcasters: []graph.NodeID{1}}, rng)
	if alg.ResetProcesses(foreign, net, spec, rng) {
		t.Fatal("reset accepted a foreign slab")
	}
}

// TestAlohaReset pins Aloha's slab reuse: a reset re-derives the transmit
// probability from the receiver (clamping exactly like NewProcesses), leaves
// silent listeners alone, and refuses foreign slabs.
func TestAlohaReset(t *testing.T) {
	net := graph.UniformDual(graph.Ring(12))
	spec := radio.Spec{Problem: radio.LocalBroadcast, Broadcasters: []graph.NodeID{0, 4, 8}}
	rng := bitrand.New(5)
	procs := Aloha{P: 0.25}.NewProcesses(net, spec, rng)

	cases := []struct {
		alg  Aloha
		want float64
	}{
		{Aloha{P: 0.75}, 0.75},
		{Aloha{}, 0.5},      // P <= 0 defaults to 1/2
		{Aloha{P: 3}, 1},    // P > 1 clamps to 1
		{Aloha{P: -1}, 0.5}, // negative is the same default
	}
	for _, tc := range cases {
		if !tc.alg.ResetProcesses(procs, net, spec, rng) {
			t.Fatalf("Aloha{P:%v}: reset refused", tc.alg.P)
		}
		for u, p := range procs {
			ap, ok := p.(*alohaProc)
			if !ok {
				continue // silent listener
			}
			if ap.p != tc.want {
				t.Fatalf("Aloha{P:%v}: node %d prob %v, want %v", tc.alg.P, u, ap.p, tc.want)
			}
			if ap.TransmitProb(0) != tc.want {
				t.Fatalf("Aloha{P:%v}: node %d TransmitProb disagrees with state", tc.alg.P, u)
			}
			if ap.Frame(0) != ap.msg || ap.msg.Origin != u {
				t.Fatalf("node %d: Frame is not the broadcaster's own message", u)
			}
			ap.Deliver(0, &radio.Message{Origin: 99}) // no-op for broadcasters
			if ap.msg.Origin != u {
				t.Fatalf("node %d: Deliver mutated the broadcaster frame", u)
			}
		}
	}

	foreign := RoundRobin{}.NewProcesses(net, spec, rng)
	if (Aloha{}).ResetProcesses(foreign, net, spec, rng) {
		t.Fatal("reset accepted a foreign slab")
	}
}
