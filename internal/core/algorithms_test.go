package core

import (
	"testing"

	"repro/internal/bitrand"
	"repro/internal/graph"
	"repro/internal/radio"
)

func runGlobal(t *testing.T, alg radio.Algorithm, net *graph.Dual, link any, seed uint64, maxRounds int) radio.Result {
	t.Helper()
	res, err := radio.Run(radio.Config{
		Net:       net,
		Algorithm: alg,
		Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
		Link:      link,
		Seed:      seed,
		MaxRounds: maxRounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func runLocal(t *testing.T, alg radio.Algorithm, net *graph.Dual, b []graph.NodeID, link any, seed uint64, maxRounds int) radio.Result {
	t.Helper()
	res, err := radio.Run(radio.Config{
		Net:       net,
		Algorithm: alg,
		Spec:      radio.Spec{Problem: radio.LocalBroadcast, Broadcasters: b},
		Link:      link,
		Seed:      seed,
		MaxRounds: maxRounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDecayGlobalSolvesProtocolModel(t *testing.T) {
	nets := map[string]*graph.Dual{
		"line-32":   graph.UniformDual(graph.Line(32)),
		"clique-64": graph.UniformDual(graph.Clique(64)),
		"grid-8x8":  graph.UniformDual(graph.Grid(8, 8)),
	}
	for name, net := range nets {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(0); seed < 3; seed++ {
				res := runGlobal(t, DecayGlobal{}, net, nil, seed, 20000)
				if !res.Solved {
					t.Fatalf("seed %d: decay global did not complete", seed)
				}
			}
		})
	}
}

func TestDecayGlobalRoundsScaleWithDiameter(t *testing.T) {
	// On lines, completion should be roughly linear in D (D·log n), far
	// below quadratic.
	short := runGlobal(t, DecayGlobal{}, graph.UniformDual(graph.Line(16)), nil, 1, 100000)
	long := runGlobal(t, DecayGlobal{}, graph.UniformDual(graph.Line(64)), nil, 1, 100000)
	if !short.Solved || !long.Solved {
		t.Fatal("decay global incomplete")
	}
	if long.Rounds <= short.Rounds {
		t.Fatalf("rounds did not grow with diameter: %d vs %d", short.Rounds, long.Rounds)
	}
	if long.Rounds > 40*short.Rounds {
		t.Fatalf("scaling way off: %d vs %d", short.Rounds, long.Rounds)
	}
}

func TestDecayLocalSolvesProtocolModel(t *testing.T) {
	src := bitrand.New(7)
	net := graph.GeographicGrid(src, 6, 6, 0.7, 1.5)
	// Broadcasters: every third node.
	var b []graph.NodeID
	for u := 0; u < net.N(); u += 3 {
		b = append(b, u)
	}
	for seed := uint64(0); seed < 3; seed++ {
		res := runLocal(t, DecayLocal{}, net, b, nil, seed, 20000)
		if !res.Solved {
			t.Fatalf("seed %d: decay local did not complete", seed)
		}
		// Polylog completion: generous cap well below n.
		if res.Rounds > 2000 {
			t.Fatalf("seed %d: decay local too slow: %d rounds", seed, res.Rounds)
		}
	}
}

func TestPermutedGlobalSolvesProtocolModel(t *testing.T) {
	nets := map[string]*graph.Dual{
		"line-32":   graph.UniformDual(graph.Line(32)),
		"clique-64": graph.UniformDual(graph.Clique(64)),
	}
	for name, net := range nets {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(0); seed < 3; seed++ {
				res := runGlobal(t, PermutedGlobal{}, net, nil, seed, 200000)
				if !res.Solved {
					t.Fatalf("seed %d: permuted global did not complete", seed)
				}
			}
		})
	}
}

func TestPermutedGlobalSourceTransmitsOnce(t *testing.T) {
	rec := &radio.MemRecorder{}
	net := graph.UniformDual(graph.Line(8))
	_, err := radio.Run(radio.Config{
		Net:       net,
		Algorithm: PermutedGlobal{},
		Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
		Seed:      5,
		MaxRounds: 50000,
		Recorder:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	sourceTx := 0
	for _, r := range rec.Rounds {
		for _, u := range r.Transmitters {
			if u == 0 {
				sourceTx++
			}
		}
	}
	if sourceTx != 1 {
		t.Fatalf("source transmitted %d times, want exactly 1", sourceTx)
	}
}

func TestPermutedGlobalMessageCarriesBits(t *testing.T) {
	net := graph.UniformDual(graph.Clique(16))
	procs := PermutedGlobal{}.NewProcesses(net, radio.Spec{Problem: radio.GlobalBroadcast, Source: 3}, bitrand.New(1))
	src, ok := procs[3].(*permGlobalProc)
	if !ok {
		t.Fatal("unexpected process type")
	}
	bits, ok := src.msg.Payload.(*bitrand.BitString)
	if !ok {
		t.Fatal("source message has no bit string payload")
	}
	if want := GlobalBitsLen(16, 2*bitrand.LogN(16)); bits.Len() != want {
		t.Fatalf("payload bits = %d, want %d", bits.Len(), want)
	}
	// Non-source nodes start uninformed.
	for u, p := range procs {
		gp := p.(*permGlobalProc)
		if u != 3 && gp.informedAt != -1 {
			t.Fatalf("node %d starts informed", u)
		}
	}
}

func TestRoundRobinLocalWithinNRounds(t *testing.T) {
	d, m := graph.DualClique(32, 1)
	var b []graph.NodeID
	for u := 0; u < m.SizeA; u++ {
		b = append(b, u)
	}
	res := runLocal(t, RoundRobin{}, d, b, nil, 1, 64)
	if !res.Solved || res.Rounds > d.N() {
		t.Fatalf("round robin local: solved=%v rounds=%d", res.Solved, res.Rounds)
	}
}

func TestRoundRobinGlobalOnLine(t *testing.T) {
	net := graph.UniformDual(graph.Line(10))
	res := runGlobal(t, RoundRobin{}, net, nil, 1, 200)
	if !res.Solved {
		t.Fatal("round robin global incomplete")
	}
	if res.Rounds > 10*10 {
		t.Fatalf("round robin too slow: %d", res.Rounds)
	}
}

func TestAlohaSolvesLocalOnLine(t *testing.T) {
	net := graph.UniformDual(graph.Line(16))
	res := runLocal(t, Aloha{P: 0.5}, net, []graph.NodeID{5, 11}, nil, 3, 2000)
	if !res.Solved {
		t.Fatal("aloha local incomplete")
	}
}

func TestAlohaProbClamping(t *testing.T) {
	net := graph.UniformDual(graph.Line(4))
	for _, p := range []float64{-1, 0, 2} {
		procs := Aloha{P: p}.NewProcesses(net, radio.Spec{Problem: radio.LocalBroadcast, Broadcasters: []graph.NodeID{0}}, bitrand.New(1))
		tp := procs[0].(radio.TransmitProber).TransmitProb(0)
		if tp <= 0 || tp > 1 {
			t.Fatalf("P=%v: clamped prob %v out of (0,1]", p, tp)
		}
	}
}

func TestTransmitProbMatchesEmpiricalRate(t *testing.T) {
	// The TransmitProber contract: over many rounds, realized transmissions
	// match the declared probabilities. Checked for decay local.
	net := graph.UniformDual(graph.Clique(8))
	spec := radio.Spec{Problem: radio.LocalBroadcast, Broadcasters: []graph.NodeID{0}}
	procs := DecayLocal{}.NewProcesses(net, spec, bitrand.New(1))
	p := procs[0].(*decayLocalProc)
	rng := bitrand.New(42)
	const rounds = 30000
	var expected float64
	actual := 0
	for r := 0; r < rounds; r++ {
		expected += p.TransmitProb(r)
		if p.Step(r, rng).Transmit {
			actual++
		}
	}
	if diff := expected - float64(actual); diff > 400 || diff < -400 {
		t.Fatalf("declared %.0f expected transmissions, observed %d", expected, actual)
	}
}

func TestSilentProcIsSilent(t *testing.T) {
	var s silentProc
	if s.TransmitProb(0) != 0 || s.Step(0, bitrand.New(1)).Transmit {
		t.Fatal("silent process transmitted")
	}
	s.Deliver(0, nil) // must not panic
}
