// Package core implements the broadcast algorithms of the paper and its
// baselines:
//
//   - Decay and the Bar-Yehuda–Goldreich–Itai (BGI) global broadcast [2],
//     the optimal protocol-model algorithm (O(D log n + log² n) rounds).
//   - Decay-based local broadcast [8] (O(log n log Δ) in the protocol model).
//   - Permuted decay and the oblivious-model global broadcast of Section
//     4.1: the source appends runtime-generated permutation bits to its
//     message; receivers use them to permute the decay probability schedule,
//     defeating oblivious link processes (Theorem 4.1).
//   - The geographic local broadcast algorithm of Section 4.3: a seed
//     dissemination stage coordinates nearby nodes, then seed groups run
//     permuted decay jointly (Theorem 4.6, O(log² n log Δ) rounds).
//   - Round robin and fixed-probability (ALOHA) baselines.
//
// Every process implements radio.TransmitProber: its transmit decision each
// round is a Bernoulli trial whose probability is determined by state, which
// is exactly the information the online adaptive adversary may use.
package core

import (
	"math"

	"repro/internal/bitrand"
	"repro/internal/graph"
	"repro/internal/radio"
)

// DecayGlobal is the BGI global broadcast algorithm [2]: once informed (and
// aligned to a phase boundary), a node cycles through the transmit
// probabilities 1/2, 1/4, ..., 1/n, one per round, restarting each phase.
// The fixed, globally known probability schedule is what adaptive and
// sampling-oblivious adversaries exploit; compare PermutedGlobal.
type DecayGlobal struct{}

var _ radio.ProcessFactory = DecayGlobal{}

// Name implements radio.Algorithm.
func (DecayGlobal) Name() string { return "decay-global" }

// NewProcesses implements radio.Algorithm.
func (DecayGlobal) NewProcesses(net *graph.Dual, spec radio.Spec, rng *bitrand.Source) []radio.Process {
	n := net.N()
	k := bitrand.LogN(n)
	procs := make([]radio.Process, n)
	for u := 0; u < n; u++ {
		p := &decayGlobalProc{levels: k}
		resetDecayGlobalProc(p, u, spec.Source)
		procs[u] = p
	}
	return procs
}

// ResetProcesses implements radio.ProcessFactory.
func (DecayGlobal) ResetProcesses(procs []radio.Process, net *graph.Dual, spec radio.Spec, rng *bitrand.Source) bool {
	k := bitrand.LogN(net.N())
	for u := range procs {
		p, ok := procs[u].(*decayGlobalProc)
		if !ok {
			return false
		}
		p.levels = k
		resetDecayGlobalProc(p, u, spec.Source)
	}
	return true
}

// resetDecayGlobalProc puts a process into its initial state for the given
// source, reusing the node's own source message across trials when it has
// one (the source never overwrites its message, so the cached frame is
// exactly what NewProcesses would allocate).
func resetDecayGlobalProc(p *decayGlobalProc, u, source graph.NodeID) {
	if u == source {
		if p.msg == nil || p.msg.Origin != u || p.msg.Payload != nil {
			p.msg = &radio.Message{Origin: u}
		}
		p.informedAt = 0
		p.isSource = true
		return
	}
	p.msg = nil
	p.informedAt = -1
	p.isSource = false
}

//dglint:pooled reset=DecayGlobal.ResetProcesses
type decayGlobalProc struct {
	levels     int
	msg        *radio.Message
	informedAt int // -1 until informed
	isSource   bool
}

// active reports whether the node participates in round r: it must be
// informed and past its first phase boundary after becoming informed.
func (p *decayGlobalProc) active(r int) bool {
	if p.informedAt < 0 {
		return false
	}
	// Align to the first multiple of levels at or after informedAt, except
	// the source (informedAt 0) which starts immediately.
	start := ((p.informedAt + p.levels - 1) / p.levels) * p.levels
	return r >= start
}

// prob returns the decay probability for round r: 2^{-(1 + r mod levels)}.
func (p *decayGlobalProc) prob(r int) float64 {
	i := r%p.levels + 1
	return math.Ldexp(1, -i)
}

// TransmitProb implements radio.TransmitProber.
func (p *decayGlobalProc) TransmitProb(r int) float64 {
	// As in [2], the source transmits deterministically in the first round;
	// every neighbor hears it uncontested, so the protocol starts from a
	// fixed informed frontier.
	if p.isSource && r == 0 {
		return 1
	}
	if !p.active(r) {
		return 0
	}
	return p.prob(r)
}

// Step implements radio.Process.
func (p *decayGlobalProc) Step(r int, rng *bitrand.Source) radio.Action {
	if p.isSource && r == 0 {
		return radio.Transmit(p.msg)
	}
	if !p.active(r) {
		return radio.Listen()
	}
	if rng.Coin(p.prob(r)) {
		return radio.Transmit(p.msg)
	}
	return radio.Listen()
}

// Deliver implements radio.Process.
func (p *decayGlobalProc) Deliver(r int, msg *radio.Message) {
	if msg == nil || p.informedAt >= 0 {
		return
	}
	p.msg = msg
	p.informedAt = r + 1 // usable from the next round
}

// Frame implements radio.BulkStepper: Step is exactly one TransmitProb(r)
// coin (the source's deterministic round-0 transmission is probability 1,
// which draws no bits either way) transmitting the held message.
func (p *decayGlobalProc) Frame(int) *radio.Message { return p.msg }

var _ radio.BulkStepper = (*decayGlobalProc)(nil)

// DecayLocal is the decay-based local broadcast of [8] for the protocol
// model: each broadcaster cycles through the probabilities 1/2, ...,
// 2^{-(log Δ + 1)} in lockstep, one per round, repeating forever. For every
// receiver, one probability level roughly inverts its broadcaster-neighbor
// count, so every receiver is served once per sweep with constant
// probability; O(log n) sweeps suffice w.h.p. (Θ(log n log Δ) rounds).
type DecayLocal struct{}

var _ radio.ProcessFactory = DecayLocal{}

// Name implements radio.Algorithm.
func (DecayLocal) Name() string { return "decay-local" }

// decayLocalLevels returns the probability level count: down to ~1/(2Δ),
// enough for the densest receiver neighborhood.
func decayLocalLevels(net *graph.Dual) int {
	levels := bitrand.Log2Ceil(net.MaxDegree()) + 1
	if levels < 1 {
		levels = 1
	}
	return levels
}

// NewProcesses implements radio.Algorithm.
func (DecayLocal) NewProcesses(net *graph.Dual, spec radio.Spec, rng *bitrand.Source) []radio.Process {
	n := net.N()
	levels := decayLocalLevels(net)
	inB := make([]bool, n)
	for _, u := range spec.Broadcasters {
		inB[u] = true
	}
	procs := make([]radio.Process, n)
	for u := 0; u < n; u++ {
		if inB[u] {
			procs[u] = &decayLocalProc{levels: levels, msg: &radio.Message{Origin: u}}
		} else {
			procs[u] = silentProc{}
		}
	}
	return procs
}

// ResetProcesses implements radio.ProcessFactory. Broadcaster membership is
// encoded in the slab's process types and the engine only offers slabs built
// for an identical spec, so the only state to refresh is the level count;
// each broadcaster's message frame (Origin = itself, never overwritten) is
// reused as is.
func (DecayLocal) ResetProcesses(procs []radio.Process, net *graph.Dual, spec radio.Spec, rng *bitrand.Source) bool {
	levels := decayLocalLevels(net)
	for u := range procs {
		switch p := procs[u].(type) {
		case *decayLocalProc:
			p.levels = levels
		case silentProc:
		default:
			return false
		}
	}
	return true
}

//dglint:pooled reset=DecayLocal.ResetProcesses
type decayLocalProc struct {
	levels int
	msg    *radio.Message //dglint:allow scratchreset: broadcaster frame (Origin = itself) is immutable, reused across trials
}

func (p *decayLocalProc) prob(r int) float64 {
	return math.Ldexp(1, -(r%p.levels + 1))
}

// TransmitProb implements radio.TransmitProber.
func (p *decayLocalProc) TransmitProb(r int) float64 { return p.prob(r) }

// Step implements radio.Process.
func (p *decayLocalProc) Step(r int, rng *bitrand.Source) radio.Action {
	if rng.Coin(p.prob(r)) {
		return radio.Transmit(p.msg)
	}
	return radio.Listen()
}

// Deliver implements radio.Process.
func (p *decayLocalProc) Deliver(int, *radio.Message) {}

// Frame implements radio.BulkStepper: Step is exactly one prob(r) coin
// transmitting the broadcaster's own frame.
func (p *decayLocalProc) Frame(int) *radio.Message { return p.msg }

var _ radio.BulkStepper = (*decayLocalProc)(nil)

// silentProc is a node with no role: it listens forever.
type silentProc struct{}

// TransmitProb implements radio.TransmitProber.
func (silentProc) TransmitProb(int) float64 { return 0 }

// Step implements radio.Process.
func (silentProc) Step(int, *bitrand.Source) radio.Action { return radio.Listen() }

// Deliver implements radio.Process.
func (silentProc) Deliver(int, *radio.Message) {}

// Frame implements radio.BulkStepper: probability 0, so it is never asked.
func (silentProc) Frame(int) *radio.Message { return nil }

var _ radio.BulkStepper = silentProc{}
