package core

import (
	"reflect"
	"testing"

	"repro/internal/adversary"
	"repro/internal/bitrand"
	"repro/internal/graph"
	"repro/internal/radio"
)

func derandNets() map[string]*graph.Dual {
	src := bitrand.New(0xde7a)
	dc, _ := graph.DualClique(64, 3)
	return map[string]*graph.Dual{
		"line":             graph.UniformDual(graph.Line(48)),
		"grid":             graph.UniformDual(graph.Grid(6, 8)),
		"twoclique":        graph.TwoCliques(64),
		"dualclique":       dc,
		"circulant+fringe": graph.AugmentDual(src, graph.Circulant(96, 6), 96),
	}
}

// TestDerandSolvesBroadcast runs the derandomized broadcast to completion on
// a spread of substrates in the static protocol model.
func TestDerandSolvesBroadcast(t *testing.T) {
	for name, net := range derandNets() {
		t.Run(name, func(t *testing.T) {
			res, err := radio.Run(radio.Config{
				Net:       net,
				Algorithm: DerandBroadcast{},
				Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: 0},
				Seed:      1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Solved {
				t.Fatalf("broadcast did not complete in %d rounds", res.Rounds)
			}
			for u, at := range res.InformedAt {
				if at < 0 {
					t.Fatalf("node %d never informed", u)
				}
			}
		})
	}
}

// TestDerandZeroRandomness pins the algorithm's headline property: the
// execution is a pure function of (network, spec, adversary), so changing
// the engine seed — which reseeds every node rng and the construction rng —
// changes nothing observable.
func TestDerandZeroRandomness(t *testing.T) {
	net := derandNets()["circulant+fringe"]
	fringe := adversary.Static{Selector: graph.SelectAll{}}
	for _, link := range []any{nil, fringe} {
		var base *radio.Result
		for _, seed := range []uint64{1, 2, 0xdeadbeef} {
			res, err := radio.Run(radio.Config{
				Net:       net,
				Algorithm: DerandBroadcast{},
				Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: 3},
				Link:      link,
				Seed:      seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			if base == nil {
				base = &res
				continue
			}
			if !reflect.DeepEqual(*base, res) {
				t.Fatalf("link %T: execution depends on the seed", link)
			}
		}
	}
}

// TestDerandResetMatchesFresh exercises the ProcessFactory contract
// directly: a reset slab must be observationally identical to a fresh one,
// and a slab of foreign processes must be refused.
func TestDerandResetMatchesFresh(t *testing.T) {
	net := graph.TwoCliques(32)
	spec := radio.Spec{Problem: radio.GlobalBroadcast, Source: 5}
	rng := bitrand.New(7)
	alg := DerandBroadcast{}
	procs := alg.NewProcesses(net, spec, rng)
	// Dirty the slab the way a trial would: relay adoptions everywhere.
	for u, p := range procs {
		p.Deliver(3, &radio.Message{Origin: (u + 1) % net.N()})
	}
	if !alg.ResetProcesses(procs, net, spec, rng) {
		t.Fatal("reset of the factory's own slab refused")
	}
	fresh := alg.NewProcesses(net, spec, rng)
	for u := range procs {
		got, want := procs[u].(*derandProc), fresh[u].(*derandProc)
		if got.id != want.id || got.dec != want.dec ||
			(got.msg == nil) != (want.msg == nil) ||
			(got.msg != nil && got.msg.Origin != want.msg.Origin) {
			t.Fatalf("node %d: reset state differs from fresh state", u)
		}
		for r := 0; r < 3*got.dec.SweepLen(); r++ {
			if got.TransmitProb(r) != want.TransmitProb(r) {
				t.Fatalf("node %d: transmit schedule differs at round %d after reset", u, r)
			}
		}
	}
	// Foreign slab: refuse, so the engine falls back to NewProcesses.
	foreign := RoundRobin{}.NewProcesses(net, spec, rng)
	if alg.ResetProcesses(foreign, net, spec, rng) {
		t.Fatal("reset accepted a foreign slab")
	}
}

// TestDerandOnEpoch checks the EpochAware re-keying: at an epoch swap every
// process re-points at the new revision's memoized decomposition, and the
// whole execution still completes across the churn.
func TestDerandOnEpoch(t *testing.T) {
	n := 40
	g0 := graph.Line(n)
	g1 := graph.Ring(n)
	net0, net1 := graph.UniformDual(g0), graph.UniformDual(g1)
	alg := DerandBroadcast{}
	procs := alg.NewProcesses(net0, radio.Spec{Problem: radio.GlobalBroadcast}, bitrand.New(1))
	p := procs[7].(*derandProc)
	if p.dec != graph.DecompositionOf(g0) {
		t.Fatal("fresh process not keyed to the base revision")
	}
	p.OnEpoch(1, net1)
	if p.dec != graph.DecompositionOf(g1) {
		t.Fatal("OnEpoch did not re-key the decomposition memo")
	}

	res, err := radio.Run(radio.Config{
		Epochs: []radio.Epoch{
			{Start: 0, Net: net0},
			{Start: 2 * graph.DecompositionOf(g0).SweepLen(), Net: net1},
			{Start: 4 * graph.DecompositionOf(g0).SweepLen(), Net: net0},
		},
		Algorithm: alg,
		Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: n / 2},
		Seed:      9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("broadcast did not survive the epoch schedule (rounds=%d)", res.Rounds)
	}
}

// derandReference is the naive single-threaded oracle for a derand
// execution: it re-derives the deterministic schedule directly from the
// decomposition and computes every round's deliveries by enumeration
// (radio.ReferenceDeliveries), with none of the engine's plans, bulk paths,
// arenas, or monitors. Epoch swaps re-key the decomposition at the boundary
// exactly as OnEpoch does.
type derandReference struct {
	epochs   []radio.Epoch
	sel      graph.EdgeSelector
	informed []bool
}

func (o *derandReference) round(r int) (tx []graph.NodeID, dels []radio.Delivery) {
	idx := 0
	for i, ep := range o.epochs {
		if ep.Start <= r {
			idx = i
		}
	}
	net := o.epochs[idx].Net
	dec := graph.DecompositionOf(net.G())
	for u := 0; u < net.N(); u++ {
		if o.informed[u] && dec.Owns(u, r) {
			tx = append(tx, u)
		}
	}
	dels = radio.ReferenceDeliveries(net, o.sel, tx)
	for _, d := range dels {
		o.informed[d.To] = true
	}
	return tx, dels
}

// FuzzDerandEquivalence races full engine executions of DerandBroadcast
// against the derandReference oracle on fuzzed ring+chords substrates with
// fringe, under no adversary / a committed full selection / a committed
// half-set, optionally across a two-epoch churn schedule. Per-round
// transmitter sets, delivery sets, and the final informed map must agree
// exactly.
func FuzzDerandEquivalence(f *testing.F) {
	f.Add(uint64(1), uint16(24), uint8(2), uint8(10), uint8(0), false)
	f.Add(uint64(2), uint16(48), uint8(5), uint8(30), uint8(1), true)
	f.Add(uint64(3), uint16(80), uint8(0), uint8(0), uint8(2), false)
	f.Fuzz(func(t *testing.T, seed uint64, n uint16, chords, extra, selKind uint8, churn bool) {
		nn := int(n)%96 + 4
		source := int(seed>>8) % nn
		src := bitrand.New(seed)
		net := graph.AugmentDual(src, graph.RingChords(src, nn, int(chords)%24), 2*int(extra))
		epochs := []radio.Epoch{{Start: 0, Net: net}}
		if churn {
			alt := graph.AugmentDual(src, graph.Circulant(nn, 2+int(chords)%6), int(extra))
			epochs = append(epochs, radio.Epoch{Start: nn/2 + 1, Net: alt})
		}
		var sel graph.EdgeSelector
		var link any
		switch selKind % 3 {
		case 0:
			sel = nil
		case 1:
			sel = graph.SelectAll{}
		default:
			var half []graph.EdgeKey
			keep := true
			for u := 0; u < net.N(); u++ {
				for _, v := range net.ExtraNeighbors(u) {
					if v > u {
						if keep {
							half = append(half, graph.EdgeKey{U: u, V: v})
						}
						keep = !keep
					}
				}
			}
			sel = graph.NewSelectSet(half)
		}
		if sel != nil {
			link = adversary.Static{Selector: sel}
		}
		rec := &radio.MemRecorder{}
		res, err := radio.Run(radio.Config{
			Epochs:    epochs,
			Algorithm: DerandBroadcast{},
			Spec:      radio.Spec{Problem: radio.GlobalBroadcast, Source: source},
			Link:      link,
			Seed:      seed,
			MaxRounds: 64 * nn,
			Recorder:  rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		oracle := &derandReference{epochs: epochs, sel: sel, informed: make([]bool, nn)}
		oracle.informed[source] = true
		for _, round := range rec.Rounds {
			tx, dels := oracle.round(round.Round)
			if !reflect.DeepEqual(tx, append([]graph.NodeID(nil), round.Transmitters...)) {
				t.Fatalf("round %d: engine transmitters %v, oracle %v", round.Round, round.Transmitters, tx)
			}
			got := append([]radio.Delivery(nil), round.Deliveries...)
			radio.SortDeliveries(got)
			radio.SortDeliveries(dels)
			if !reflect.DeepEqual(got, dels) {
				t.Fatalf("round %d: engine deliveries %v, oracle %v", round.Round, got, dels)
			}
		}
		for u, at := range res.InformedAt {
			if (at >= 0) != oracle.informed[u] {
				t.Fatalf("node %d: engine informed=%v, oracle informed=%v", u, at >= 0, oracle.informed[u])
			}
		}
	})
}
