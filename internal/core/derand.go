package core

import (
	"repro/internal/bitrand"
	"repro/internal/graph"
	"repro/internal/radio"
)

// DerandBroadcast is the derandomized broadcast family: broadcast scheduled
// over the deterministic network decomposition of the reliable graph
// (graph.DecompositionOf). Each round belongs to one color's phase; within a
// phase, every cluster of that color designates exactly one member as its
// transmitter (Decomposition.Owns), and a node transmits iff it holds a
// message and owns the slot. Same-color clusters are non-adjacent in G, so
// during a cluster's own phase its listeners hear their cluster-mate
// transmitter collision-free over reliable edges; cross-cluster delivery
// rides the other phases, with a per-sweep hashed rotation varying which
// owners coincide so fringe-edge collisions never lock into a cycle.
//
// The schedule is a pure function of (graph, round): the algorithm draws no
// randomness at all, at construction time or runtime. That is the property
// the EXT-derand experiment isolates — a sampling-oblivious adversary that
// presimulates the algorithm predicts it exactly, and so gains nothing over
// what it could precompute from the graph — and it is also why the detrand
// analyzer passes over this file with no allowances: there is nothing to
// allow. With transmit probabilities always 0 or 1, the BulkStepper coin
// draws no bits, and with no construction coins the process arena reset is
// trivially faithful.
type DerandBroadcast struct{}

var _ radio.ProcessFactory = DerandBroadcast{}

// Name implements radio.Algorithm.
func (DerandBroadcast) Name() string { return "derand" }

// NewProcesses implements radio.Algorithm. rng is never drawn from.
func (DerandBroadcast) NewProcesses(net *graph.Dual, spec radio.Spec, rng *bitrand.Source) []radio.Process {
	dec := graph.DecompositionOf(net.G())
	n := net.N()
	procs := make([]radio.Process, n)
	for u := 0; u < n; u++ {
		procs[u] = &derandProc{id: u, dec: dec}
	}
	assignDerandMessages(procs, spec)
	return procs
}

// ResetProcesses implements radio.ProcessFactory. The decomposition is
// re-fetched from the memo (same graph ⇒ same pointer) and all cross-trial
// state cleared; with no construction randomness the reset is exactly
// NewProcesses.
func (DerandBroadcast) ResetProcesses(procs []radio.Process, net *graph.Dual, spec radio.Spec, rng *bitrand.Source) bool {
	dec := graph.DecompositionOf(net.G())
	for u := range procs {
		p, ok := procs[u].(*derandProc)
		if !ok {
			return false
		}
		p.id, p.dec = u, dec
		p.msg = nil
	}
	assignDerandMessages(procs, spec)
	return true
}

// assignDerandMessages hands initial messages to the source (global) or the
// broadcasters (local), reusing each holder's own cached frame across trials
// (relays overwrite msg, never own).
func assignDerandMessages(procs []radio.Process, spec radio.Spec) {
	hold := func(u graph.NodeID) {
		if u < 0 || u >= len(procs) {
			return // out-of-range spec; the engine's monitor reports it
		}
		p := procs[u].(*derandProc)
		if p.own == nil || p.own.Origin != u {
			p.own = &radio.Message{Origin: u}
		}
		p.msg = p.own
	}
	switch spec.Problem {
	case radio.GlobalBroadcast:
		hold(spec.Source)
	default: // LocalBroadcast
		for _, u := range spec.Broadcasters {
			hold(u)
		}
	}
}

//dglint:pooled reset=DerandBroadcast.ResetProcesses
type derandProc struct {
	id  graph.NodeID
	dec *graph.Decomposition
	msg *radio.Message // nil until the node holds a message
	own *radio.Message // the node's own initial frame, nil for relays
}

// TransmitProb implements radio.TransmitProber: always 0 or 1, the schedule
// is deterministic.
func (p *derandProc) TransmitProb(r int) float64 {
	if p.msg != nil && p.dec.Owns(p.id, r) {
		return 1
	}
	return 0
}

// Step implements radio.Process.
func (p *derandProc) Step(r int, rng *bitrand.Source) radio.Action {
	if p.msg != nil && p.dec.Owns(p.id, r) {
		return radio.Transmit(p.msg)
	}
	return radio.Listen()
}

// Deliver implements radio.Process.
func (p *derandProc) Deliver(r int, msg *radio.Message) {
	if msg != nil && p.msg == nil {
		p.msg = msg // relay
	}
}

// Frame implements radio.BulkStepper: the transmit decision is a 0/1
// probability, never a real coin, and the frame is the held message.
func (p *derandProc) Frame(int) *radio.Message { return p.msg }

// OnEpoch implements radio.EpochAware: topology churn re-keys the
// decomposition to the new revision's memo, the same way the engine re-keys
// the clique cover at an epoch swap. Held messages persist — nodes survive
// churn; only the schedule re-derives.
func (p *derandProc) OnEpoch(epoch int, net *graph.Dual) {
	p.dec = graph.DecompositionOf(net.G())
}

var (
	_ radio.BulkStepper = (*derandProc)(nil)
	_ radio.EpochAware  = (*derandProc)(nil)
)
