package core

import (
	"repro/internal/bitrand"
	"repro/internal/graph"
	"repro/internal/radio"
)

// GeoLocal is the Section 4.3 local broadcast algorithm for geographic
// graphs in the oblivious dual graph model (Theorem 4.6: O(log²n·logΔ)
// rounds).
//
// The algorithm has two stages.
//
// Initialization ("seed dissemination"): rounds are divided into logΔ
// phases of O(log²n) rounds. In the first round of phase i, each still-
// active node elects itself leader with probability 2^{-(logΔ-i+1)} (the
// probabilities sweep 1/Δ ... 1/2). Each leader draws a seed of shared
// random bits and commits to it; for the rest of the phase it broadcasts the
// seed with probability 1/logn per round. Active non-leaders that receive a
// seed commit to the first one heard and become inactive. Nodes still
// uncommitted at the end of the stage draw their own seed.
//
// Broadcast: broadcasters run O(log²n) iterations; each iteration is one
// permuted decay call of γ·logΔ rounds. A broadcaster participates in an
// iteration with probability 1/logn, decided by its seed bits, and runs the
// call with permutation indices also drawn from the seed — so all
// broadcasters sharing a seed make identical participation and probability
// choices, recreating the coordination that Lemma 4.2 needs while remaining
// unpredictable to the oblivious adversary.
type GeoLocal struct {
	// Gamma is the permuted decay γ (default 16; Lemma 4.2 wants ≥ 16,
	// smaller values trade failure probability for speed in experiments).
	Gamma int
	// FloodFactor scales the per-phase flood length: FloodFactor·log²n
	// rounds (default 2).
	FloodFactor int
	// IterFactor scales the broadcast-stage iteration count:
	// IterFactor·log²n iterations (default 2).
	IterFactor int
	// DisableSeedSharing replaces every committed seed with a private one,
	// keeping the stage structure identical. This is the seed ablation: it
	// removes exactly the coordination the algorithm exists to provide.
	DisableSeedSharing bool
}

var _ radio.ProcessFactory = GeoLocal{}

// Name implements radio.Algorithm.
func (a GeoLocal) Name() string {
	if a.DisableSeedSharing {
		return "geo-local-noseeds"
	}
	return "geo-local"
}

func (a GeoLocal) params(net *graph.Dual) geoParams {
	gamma := a.Gamma
	if gamma <= 0 {
		gamma = PermutedDecayGamma
	}
	ff := a.FloodFactor
	if ff <= 0 {
		ff = 2
	}
	itf := a.IterFactor
	if itf <= 0 {
		itf = 2
	}
	n := net.N()
	logN := bitrand.LogN(n)
	lDelta := bitrand.Log2Ceil(net.MaxDegree())
	if lDelta < 1 {
		lDelta = 1
	}
	p := geoParams{
		n:           n,
		logN:        logN,
		lDelta:      lDelta,
		gamma:       gamma,
		floodRounds: ff * logN * logN,
		iterations:  itf * logN * logN,
	}
	p.phaseLen = 1 + p.floodRounds
	p.initRounds = lDelta * p.phaseLen
	p.blockLen = gamma * lDelta
	p.bitsPerIndex = bitrand.BitsFor(lDelta)
	p.partBits = bitrand.BitsFor(logN)
	p.bitsPerIter = p.partBits + p.blockLen*p.bitsPerIndex
	p.seedBits = p.iterations * p.bitsPerIter
	return p
}

type geoParams struct {
	n, logN, lDelta, gamma int
	floodRounds, phaseLen  int
	initRounds             int
	iterations             int
	blockLen               int
	bitsPerIndex, partBits int
	bitsPerIter, seedBits  int
}

// electionProb returns the leader election probability of 0-based phase i:
// 2^{-(lDelta-i)}, sweeping ≈1/Δ up to 1/2.
func (p geoParams) electionProb(phase int) float64 {
	exp := p.lDelta - phase
	if exp < 1 {
		exp = 1
	}
	return ldexp1(-exp)
}

func ldexp1(exp int) float64 {
	v := 1.0
	for ; exp < 0; exp++ {
		v /= 2
	}
	return v
}

// NewProcesses implements radio.Algorithm.
func (a GeoLocal) NewProcesses(net *graph.Dual, spec radio.Spec, rng *bitrand.Source) []radio.Process {
	p := a.params(net)
	n := net.N()
	inB := make([]bool, n)
	for _, u := range spec.Broadcasters {
		inB[u] = true
	}
	procs := make([]radio.Process, n)
	for u := 0; u < n; u++ {
		procs[u] = &geoLocalProc{
			id:          u,
			par:         p,
			inB:         inB[u],
			leaderPhase: -1,
			noShare:     a.DisableSeedSharing,
		}
	}
	return procs
}

// ResetProcesses implements radio.ProcessFactory. All construction-time
// randomness of this algorithm is drawn during the execution (seeds are
// generated in Step/Deliver), so a reset only clears per-trial state and
// re-derives the parameters from the receiver. Each node retains the seed
// storage it drew itself last trial so the next trial's seeds refill in
// place; shared (received) seeds are merely dropped, never retained, since
// their storage belongs to the node that drew them.
func (a GeoLocal) ResetProcesses(procs []radio.Process, net *graph.Dual, spec radio.Spec, rng *bitrand.Source) bool {
	par := a.params(net)
	for u := range procs {
		p, ok := procs[u].(*geoLocalProc)
		if !ok {
			return false
		}
		spare := p.ownSeed
		if spare == nil {
			spare = p.spareSeed
		}
		*p = geoLocalProc{
			id:          u,
			par:         par,
			inB:         p.inB,
			leaderPhase: -1,
			noShare:     a.DisableSeedSharing,
			spareSeed:   spare,
		}
	}
	return true
}

//dglint:pooled reset=GeoLocal.ResetProcesses
type geoLocalProc struct {
	id  graph.NodeID
	par geoParams
	inB bool
	// noShare implements the seed ablation: commit only to private seeds.
	noShare bool

	seed        *bitrand.BitString // nil until committed
	seedMsg     *radio.Message     // the message this node floods as leader
	leaderPhase int                // phase in which this node leads, or -1
	bcastMsg    *radio.Message     // lazy; Origin = self, for broadcast stage

	// Seed-storage reuse across arena resets: ownSeed is the bit string this
	// node drew itself (leader seed, self-commit, or the ablation's private
	// copy); spareSeed is retained storage from a previous trial that
	// freshSeed refills instead of allocating.
	ownSeed   *bitrand.BitString
	spareSeed *bitrand.BitString
}

// freshSeed draws this node's own seed of par.seedBits bits from src,
// refilling storage retained from a previous trial when available.
func (p *geoLocalProc) freshSeed(src *bitrand.Source) *bitrand.BitString {
	s := p.spareSeed
	p.spareSeed = nil
	if s != nil {
		s.Refill(src, p.par.seedBits)
	} else {
		s = bitrand.NewBitString(src, p.par.seedBits)
	}
	p.ownSeed = s
	return s
}

// stagePos decomposes round r.
type stagePos struct {
	init     bool
	phase    int // init: phase index
	within   int // init: 0 = election round, >0 = flood round
	iter     int // broadcast: iteration index
	iterOffs int // broadcast: round within the iteration
}

func (p *geoLocalProc) pos(r int) stagePos {
	if r < p.par.initRounds {
		return stagePos{init: true, phase: r / p.par.phaseLen, within: r % p.par.phaseLen}
	}
	t := r - p.par.initRounds
	return stagePos{iter: t / p.par.blockLen, iterOffs: t % p.par.blockLen}
}

// seedBitsAt reads k bits of the committed seed at the given offset,
// wrapping if the seed is undersized.
func (p *geoLocalProc) seedBitsAt(off, k int) uint64 {
	n := p.seed.Len()
	if n == 0 {
		return 0
	}
	var v uint64
	for b := 0; b < k; b++ {
		v |= p.seed.At((off+b)%n) << uint(b)
	}
	return v
}

// participates reports whether this node's seed group participates in the
// given broadcast iteration (probability ≈ 1/logn, identical across the
// seed group).
func (p *geoLocalProc) participates(iter int) bool {
	off := (iter % p.par.iterations) * p.par.bitsPerIter
	v := p.seedBitsAt(off, p.par.partBits)
	// v is uniform over [0, 2^partBits); participate on 0, probability
	// 2^{-ceil(log2 logn)} ≈ 1/logn.
	return v == 0
}

// probIndex returns the shared permuted decay index i ∈ [1, logΔ] for round
// j of the given iteration.
func (p *geoLocalProc) probIndex(iter, j int) int {
	off := (iter%p.par.iterations)*p.par.bitsPerIter + p.par.partBits + j*p.par.bitsPerIndex
	v := p.seedBitsAt(off, p.par.bitsPerIndex)
	return int(v%uint64(p.par.lDelta)) + 1
}

// TransmitProb implements radio.TransmitProber.
func (p *geoLocalProc) TransmitProb(r int) float64 {
	sp := p.pos(r)
	if sp.init {
		if sp.within > 0 && p.leaderPhase == sp.phase {
			return 1 / float64(p.par.logN)
		}
		return 0
	}
	if !p.inB || p.seed == nil {
		return 0
	}
	if !p.participates(sp.iter) {
		return 0
	}
	return ldexp1(-p.probIndex(sp.iter, sp.iterOffs))
}

// Step implements radio.Process.
func (p *geoLocalProc) Step(r int, rng *bitrand.Source) radio.Action {
	sp := p.pos(r)
	if sp.init {
		switch {
		case sp.within == 0 && p.seed == nil:
			// Election round: still-active nodes self-elect.
			if rng.Coin(p.par.electionProb(sp.phase)) {
				p.becomeLeader(sp.phase, rng)
			}
		case sp.within > 0 && p.leaderPhase == sp.phase:
			// Flood round for this phase's leaders.
			if rng.Coin(1 / float64(p.par.logN)) {
				return radio.Transmit(p.seedMsg)
			}
		}
		// Nodes still uncommitted in the final init round self-commit so the
		// broadcast stage starts with every node seeded (paper: "if a node
		// ends the initialization stage still active, it generates its own
		// seed and commits to it").
		if r == p.par.initRounds-1 && p.seed == nil {
			p.seed = p.freshSeed(rng)
		}
		return radio.Listen()
	}
	// Broadcast stage.
	if !p.inB || p.seed == nil || !p.participates(sp.iter) {
		return radio.Listen()
	}
	if rng.Coin(ldexp1(-p.probIndex(sp.iter, sp.iterOffs))) {
		if p.bcastMsg == nil {
			p.bcastMsg = &radio.Message{Origin: p.id}
		}
		return radio.Transmit(p.bcastMsg)
	}
	return radio.Listen()
}

func (p *geoLocalProc) becomeLeader(phase int, rng *bitrand.Source) {
	p.leaderPhase = phase
	p.seed = p.freshSeed(rng)
	p.seedMsg = &radio.Message{Origin: p.id, Payload: p.seed}
}

// Deliver implements radio.Process.
func (p *geoLocalProc) Deliver(r int, msg *radio.Message) {
	if msg == nil || p.seed != nil {
		return
	}
	sp := p.pos(r)
	if !sp.init {
		return
	}
	seed, ok := msg.Payload.(*bitrand.BitString)
	if !ok {
		return
	}
	if p.noShare {
		// Seed ablation: commit, but to a private re-randomized copy so the
		// coordination content of the seed is destroyed while timing and
		// message complexity stay identical. Deriving from the id keeps the
		// run deterministic.
		priv := bitrand.New(uint64(p.id)*0x9e3779b97f4a7c15 + 0x5eed)
		p.seed = p.freshSeed(priv)
		return
	}
	p.seed = seed
}
