package core

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/radio"
)

// probeLink is an offline adaptive link process used as a measurement probe:
// it checks that every realized transmitter declared a positive probability,
// and accumulates expected vs. actual transmission counts.
type probeLink struct {
	t        *testing.T
	expected float64
	actual   int
}

func (p *probeLink) ChooseOffline(env *radio.Env, view *radio.View, tx []graph.NodeID) graph.EdgeSelector {
	for _, prob := range view.TransmitProbs {
		if prob < 0 || prob > 1 {
			p.t.Fatalf("round %d: declared probability %v outside [0,1]", view.Round, prob)
		}
		p.expected += prob
	}
	for _, u := range tx {
		if view.TransmitProbs[u] <= 0 {
			p.t.Fatalf("round %d: node %d transmitted with declared probability 0", view.Round, u)
		}
	}
	p.actual += len(tx)
	return graph.SelectNone{}
}

// TestTransmitProberContract verifies, for every algorithm in the
// repository, that (a) nodes never transmit when their declared probability
// is zero and (b) the realized transmission count matches the declared
// expectation within sampling noise. This is the property the online
// adaptive adversary of Theorem 3.1 relies on: E[|X| | S] computed from
// declared probabilities really is the expected transmitter count.
func TestTransmitProberContract(t *testing.T) {
	type tc struct {
		name string
		alg  radio.Algorithm
		net  *graph.Dual
		spec radio.Spec
	}
	geo := geoNet(t, 5, 5)
	geoB := everyThird(geo.N())
	dual, m := graph.DualClique(32, 2)
	var dualB []graph.NodeID
	for u := 0; u < m.SizeA; u++ {
		dualB = append(dualB, u)
	}
	cases := []tc{
		{"decay-global", DecayGlobal{}, dual, radio.Spec{Problem: radio.GlobalBroadcast, Source: 0}},
		{"permuted-global", PermutedGlobal{}, dual, radio.Spec{Problem: radio.GlobalBroadcast, Source: 0}},
		{"decay-local", DecayLocal{}, dual, radio.Spec{Problem: radio.LocalBroadcast, Broadcasters: dualB}},
		{"geo-local", GeoLocal{}, geo, radio.Spec{Problem: radio.LocalBroadcast, Broadcasters: geoB}},
		{"geo-local-noseeds", GeoLocal{DisableSeedSharing: true}, geo, radio.Spec{Problem: radio.LocalBroadcast, Broadcasters: geoB}},
		{"round-robin", RoundRobin{}, dual, radio.Spec{Problem: radio.LocalBroadcast, Broadcasters: dualB}},
		{"aloha", Aloha{P: 0.3}, dual, radio.Spec{Problem: radio.LocalBroadcast, Broadcasters: dualB}},
		{"permuted-local-uncoordinated", PermutedLocalUncoordinated{}, dual, radio.Spec{Problem: radio.LocalBroadcast, Broadcasters: dualB}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			probe := &probeLink{t: t}
			_, err := radio.Run(radio.Config{
				Net:              c.net,
				Algorithm:        c.alg,
				Spec:             c.spec,
				Link:             probe,
				Seed:             13,
				MaxRounds:        3000,
				IgnoreCompletion: true, // keep sampling after completion
			})
			if err != nil {
				t.Fatal(err)
			}
			if probe.expected == 0 && probe.actual == 0 {
				t.Fatal("algorithm never declared nor made any transmission")
			}
			// 6σ binomial tolerance (σ ≤ sqrt(expected)).
			tol := 6 * math.Sqrt(probe.expected+1)
			if diff := math.Abs(probe.expected - float64(probe.actual)); diff > tol {
				t.Fatalf("declared expectation %.1f vs realized %d transmissions (diff %.1f > tol %.1f)",
					probe.expected, probe.actual, diff, tol)
			}
		})
	}
}
