package core

import (
	"math"

	"repro/internal/bitrand"
	"repro/internal/graph"
	"repro/internal/radio"
)

// PermutedDecayGamma is the paper's γ parameter for the permuted decay
// subroutine: each call runs for γ·log n rounds and succeeds with
// probability > 1/2 (Lemma 4.2 requires γ ≥ 16).
const PermutedDecayGamma = 16

// PermSchedule exposes the deterministic structure shared by every node that
// runs permuted decay from the same bit string: for a global round r, all
// participants must agree on the probability index so their behavior is
// coordinated (Lemma 4.2). Indices are derived from fixed positions of the
// bit string, so two nodes reading the same string at the same round agree
// without any cursor state.
//
//dglint:pooled reset=Reset
type PermSchedule struct {
	bits    *bitrand.BitString
	levels  int // probability indices range over [1, levels]
	bitsPer int // bits consumed per index (ceil(log2 levels))
	gamma   int
	// blockLen is the length in rounds of one permuted decay call.
	blockLen int
	// numBlocks is the number of distinct calls the string supports before
	// indices wrap (the paper's 2·log n calls for global broadcast).
	numBlocks int
}

// NewPermSchedule builds the Section 4.1 schedule over the given bits for
// networks of size n supporting numBlocks distinct calls: probability levels
// 2^{-1}..2^{-log n}, γ = 16, block length 16·log n.
func NewPermSchedule(bits *bitrand.BitString, n, numBlocks int) *PermSchedule {
	s := new(PermSchedule)
	s.Reset(bits, n, numBlocks)
	return s
}

// NewPermScheduleLevels builds a schedule with an explicit probability level
// count and γ. The Section 4.3 algorithm decays only over log Δ levels — the
// densest competing-broadcaster neighborhood — giving blocks of γ·log Δ
// rounds.
func NewPermScheduleLevels(bits *bitrand.BitString, levels, numBlocks, gamma int) *PermSchedule {
	s := new(PermSchedule)
	s.ResetLevels(bits, levels, numBlocks, gamma)
	return s
}

// Reset reinitializes the schedule in place, exactly as NewPermSchedule
// constructs it. Processes hold schedules by value and Reset them per
// execution, so the engine's process arena re-runs trials without a
// schedule allocation per informed node.
func (s *PermSchedule) Reset(bits *bitrand.BitString, n, numBlocks int) {
	s.ResetLevels(bits, bitrand.LogN(n), numBlocks, PermutedDecayGamma)
}

// ResetLevels is Reset with an explicit level count and γ, mirroring
// NewPermScheduleLevels.
func (s *PermSchedule) ResetLevels(bits *bitrand.BitString, levels, numBlocks, gamma int) {
	if levels < 1 {
		levels = 1
	}
	if numBlocks < 1 {
		numBlocks = 1
	}
	if gamma < 1 {
		gamma = 1
	}
	*s = PermSchedule{
		bits:      bits,
		levels:    levels,
		bitsPer:   bitrand.BitsFor(levels),
		gamma:     gamma,
		blockLen:  gamma * levels,
		numBlocks: numBlocks,
	}
}

// BlockLen returns the length in rounds of one permuted decay call.
func (s *PermSchedule) BlockLen() int { return s.blockLen }

// Levels returns the number of probability levels.
func (s *PermSchedule) Levels() int { return s.levels }

// BitsLen returns the number of bits the schedule reads before wrapping:
// numBlocks · blockLen · bitsPer.
func (s *PermSchedule) BitsLen() int { return s.numBlocks * s.blockLen * s.bitsPer }

// GlobalBitsLen returns the number of bits the Section 4.1 source string
// must carry for n and numBlocks: numBlocks · 16·log n · loglog n. The
// paper's 32·log²n·loglog n corresponds to numBlocks = 2·log n.
func GlobalBitsLen(n, numBlocks int) int {
	logN := bitrand.LogN(n)
	return numBlocks * PermutedDecayGamma * logN * bitrand.BitsFor(logN)
}

// Index returns the shared probability index i ∈ [1, levels] for global
// round r. All nodes holding the same bit string compute the same value.
func (s *PermSchedule) Index(r int) int {
	if r < 0 {
		r = 0
	}
	block := (r / s.blockLen) % s.numBlocks
	j := r % s.blockLen
	off := (block*s.blockLen + j) * s.bitsPer
	// Assemble the index bits read at fixed positions (wrapping within the
	// string if undersized).
	n := s.bits.Len()
	if n == 0 {
		return 1
	}
	var v uint64
	for b := 0; b < s.bitsPer; b++ {
		v |= s.bits.At((off+b)%n) << uint(b)
	}
	// Map to [1, levels]. With levels a power of two the map is uniform.
	return int(v%uint64(s.levels)) + 1
}

// Prob returns the shared transmit probability 2^{-Index(r)} for round r.
func (s *PermSchedule) Prob(r int) float64 {
	return math.Ldexp(1, -s.Index(r))
}

// PermutedGlobal is the oblivious-model global broadcast of Section 4.1. The
// source draws S = 32·log²n·loglogn random bits at runtime (after the
// adversary has committed) and appends them to its message. Informed nodes,
// aligned to 16·logn-round block boundaries, run permuted decay using the
// shared bits: every participant transmits with the same probability
// 2^{-i(r)} where i(r) is read from S, so the schedule is unpredictable to
// an oblivious adversary while remaining coordinated (Theorem 4.1:
// O(D log n + log² n) rounds).
type PermutedGlobal struct{}

var _ radio.ProcessFactory = PermutedGlobal{}

// Name implements radio.Algorithm.
func (PermutedGlobal) Name() string { return "permuted-global" }

// NewProcesses implements radio.Algorithm.
func (PermutedGlobal) NewProcesses(net *graph.Dual, spec radio.Spec, rng *bitrand.Source) []radio.Process {
	n := net.N()
	numBlocks := 2 * bitrand.LogN(n)
	bits := bitrand.NewBitString(rng, GlobalBitsLen(n, numBlocks))
	procs := make([]radio.Process, n)
	for u := 0; u < n; u++ {
		p := &permGlobalProc{n: n, numBlocks: numBlocks, informedAt: -1}
		if u == spec.Source {
			p.informedAt = 0
			p.sched.Reset(bits, n, numBlocks)
			p.msg = &radio.Message{Origin: spec.Source, Payload: bits}
			p.isSource = true
		}
		procs[u] = p
	}
	return procs
}

// ResetProcesses implements radio.ProcessFactory. The source redraws its
// permutation bits from rng — the same count, in the same order, that
// NewProcesses draws — refilling the previous trial's bit-string storage in
// place; every other process is cleared to uninformed.
func (PermutedGlobal) ResetProcesses(procs []radio.Process, net *graph.Dual, spec radio.Spec, rng *bitrand.Source) bool {
	n := net.N()
	numBlocks := 2 * bitrand.LogN(n)
	for u := range procs {
		p, ok := procs[u].(*permGlobalProc)
		if !ok {
			return false
		}
		if u == spec.Source {
			// Reuse the node's own bit string and message frame when intact:
			// the source never overwrites either during a trial.
			var bits *bitrand.BitString
			if p.isSource && p.msg != nil {
				bits, _ = p.msg.Payload.(*bitrand.BitString)
			}
			L := GlobalBitsLen(n, numBlocks)
			if bits != nil {
				bits.Refill(rng, L)
			} else {
				bits = bitrand.NewBitString(rng, L)
				p.msg = &radio.Message{Origin: u, Payload: bits}
			}
			msg := p.msg
			*p = permGlobalProc{n: n, numBlocks: numBlocks, isSource: true, msg: msg}
			p.sched.Reset(bits, n, numBlocks)
		} else {
			*p = permGlobalProc{n: n, numBlocks: numBlocks, informedAt: -1}
		}
	}
	return true
}

//dglint:pooled reset=PermutedGlobal.ResetProcesses
type permGlobalProc struct {
	n          int
	numBlocks  int
	isSource   bool
	informedAt int // -1 until informed; sched/msg are valid iff ≥ 0
	sched      PermSchedule
	msg        *radio.Message
}

// startRound returns the first block boundary at or after the node learned
// the message.
func (p *permGlobalProc) startRound() int {
	if p.informedAt <= 0 {
		return 0
	}
	bl := p.sched.BlockLen()
	return ((p.informedAt + bl - 1) / bl) * bl
}

func (p *permGlobalProc) activeProb(r int) float64 {
	if p.informedAt < 0 {
		return 0
	}
	if p.isSource {
		// The source transmits exactly once, in round 0, then is done.
		if r == 0 {
			return 1
		}
		return 0
	}
	if r < p.startRound() {
		return 0
	}
	return p.sched.Prob(r)
}

// TransmitProb implements radio.TransmitProber.
func (p *permGlobalProc) TransmitProb(r int) float64 { return p.activeProb(r) }

// Step implements radio.Process.
func (p *permGlobalProc) Step(r int, rng *bitrand.Source) radio.Action {
	prob := p.activeProb(r)
	if prob <= 0 {
		return radio.Listen()
	}
	if prob >= 1 || rng.Coin(prob) {
		return radio.Transmit(p.msg)
	}
	return radio.Listen()
}

// Deliver implements radio.Process.
func (p *permGlobalProc) Deliver(r int, msg *radio.Message) {
	if msg == nil || p.informedAt >= 0 {
		return
	}
	bits, ok := msg.Payload.(*bitrand.BitString)
	if !ok {
		return // foreign message; ignore
	}
	p.informedAt = r + 1
	p.sched.Reset(bits, p.n, p.numBlocks)
	p.msg = msg
}

// PermutedLocalUncoordinated is the natural-but-insufficient adaptation of
// permuted decay to local broadcast: every broadcaster draws its own private
// permutation bits and runs permuted decay independently. Without shared
// seeds nearby broadcasters cannot coordinate, and on high-independence
// topologies (the bracelet network) the oblivious sampling adversary defeats
// it: Theorem 4.3 shows Ω(√n/log n) is unavoidable. It serves as the
// seed-ablation baseline for the Section 4.3 algorithm.
type PermutedLocalUncoordinated struct{}

var _ radio.ProcessFactory = PermutedLocalUncoordinated{}

// Name implements radio.Algorithm.
func (PermutedLocalUncoordinated) Name() string { return "permuted-local-uncoordinated" }

// NewProcesses implements radio.Algorithm.
func (PermutedLocalUncoordinated) NewProcesses(net *graph.Dual, spec radio.Spec, rng *bitrand.Source) []radio.Process {
	n := net.N()
	numBlocks := 2 * bitrand.LogN(n)
	inB := make([]bool, n)
	for _, u := range spec.Broadcasters {
		inB[u] = true
	}
	procs := make([]radio.Process, n)
	for u := 0; u < n; u++ {
		if !inB[u] {
			procs[u] = silentProc{}
			continue
		}
		p := &permLocalProc{msg: &radio.Message{Origin: u}}
		bits := bitrand.NewBitString(rng, GlobalBitsLen(n, numBlocks))
		p.sched.Reset(bits, n, numBlocks)
		procs[u] = p
	}
	return procs
}

// ResetProcesses implements radio.ProcessFactory. Broadcasters redraw their
// private permutation bits in ascending node order — the order NewProcesses
// draws them — refilling each node's own bit-string storage in place.
func (PermutedLocalUncoordinated) ResetProcesses(procs []radio.Process, net *graph.Dual, spec radio.Spec, rng *bitrand.Source) bool {
	n := net.N()
	numBlocks := 2 * bitrand.LogN(n)
	L := GlobalBitsLen(n, numBlocks)
	for u := range procs {
		switch p := procs[u].(type) {
		case *permLocalProc:
			bits := p.sched.bits
			if bits != nil {
				bits.Refill(rng, L)
			} else {
				bits = bitrand.NewBitString(rng, L)
			}
			p.sched.Reset(bits, n, numBlocks)
		case silentProc:
		default:
			return false
		}
	}
	return true
}

//dglint:pooled reset=PermutedLocalUncoordinated.ResetProcesses
type permLocalProc struct {
	sched PermSchedule
	msg   *radio.Message //dglint:allow scratchreset: broadcaster frame (Origin = itself) is immutable, reused across trials
}

// TransmitProb implements radio.TransmitProber.
func (p *permLocalProc) TransmitProb(r int) float64 { return p.sched.Prob(r) }

// Step implements radio.Process.
func (p *permLocalProc) Step(r int, rng *bitrand.Source) radio.Action {
	if rng.Coin(p.sched.Prob(r)) {
		return radio.Transmit(p.msg)
	}
	return radio.Listen()
}

// Deliver implements radio.Process.
func (p *permLocalProc) Deliver(int, *radio.Message) {}
